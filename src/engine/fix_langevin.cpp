#include "engine/fix_langevin.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

FixLangevin::FixLangevin(double t_target, double damp, int seed)
    : t_target_(t_target), damp_(damp), rng_(seed) {
  require(damp > 0.0, "fix langevin: damp must be positive");
  require(t_target >= 0.0, "fix langevin: temperature must be >= 0");
}

void FixLangevin::parse_args(const std::vector<std::string>& args) {
  require(args.size() >= 3, "fix langevin: expected <T> <damp> <seed>");
  t_target_ = to_double(args[0]);
  damp_ = to_double(args[1]);
  rng_.reset(to_int(args[2]));
  require(damp_ > 0.0, "fix langevin: damp must be positive");
}

void FixLangevin::post_force(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<kk::Host>(V_MASK | F_MASK | TYPE_MASK);
  auto v = a.k_v.h_view;
  auto f = a.k_f.h_view;
  auto type = a.k_type.h_view;
  const double kT = sim.units.boltz * t_target_;
  const double mvv2e = sim.units.mvv2e;
  // Standard LAMMPS Langevin: F += -m*v*gamma + sqrt(24 kB T m gamma / dt)*u
  // with gamma = 1/damp and u uniform in [-0.5, 0.5].
  for (localint i = 0; i < a.nlocal; ++i) {
    const double m = a.mass_of_type(type(std::size_t(i)));
    const double gamma = mvv2e * m / damp_ / sim.units.ftm2v;
    const double sigma = std::sqrt(24.0 * kT * mvv2e * m / (damp_ * sim.dt)) /
                         sim.units.ftm2v;
    for (int d = 0; d < 3; ++d) {
      const double u = rng_.uniform() - 0.5;
      f(std::size_t(i), std::size_t(d)) +=
          -gamma * v(std::size_t(i), std::size_t(d)) + sigma * u;
    }
  }
  a.modified<kk::Host>(F_MASK);
}

void FixLangevin::pack_restart(io::BinaryWriter& w) const {
  w.put(t_target_);
  w.put(damp_);
  const RanPark::State s = rng_.state();
  w.put(s.seed);
  w.put(std::uint8_t(s.save ? 1 : 0));
  w.put(s.second);
}

void FixLangevin::unpack_restart(io::BinaryReader& r) {
  t_target_ = r.get<double>();
  damp_ = r.get<double>();
  RanPark::State s;
  s.seed = r.get<std::int64_t>();
  s.save = r.get<std::uint8_t>() != 0;
  s.second = r.get<double>();
  rng_.set_state(s);
}

void register_fix_langevin() {
  StyleRegistry::instance().add_fix(
      "langevin", [](ExecSpaceKind) -> std::unique_ptr<Fix> {
        // Default parameters; Input overrides via a dedicated path since fix
        // creation args flow through Input::execute_fix.
        return std::make_unique<FixLangevin>(1.0, 1.0, 48291);
      });
}

}  // namespace mlk
