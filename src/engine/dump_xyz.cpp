#include "engine/dump_xyz.hpp"

#include <vector>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

void DumpXYZ::parse_args(const std::vector<std::string>& args) {
  require(args.size() >= 2, "dump/xyz: expected <every> <filename>");
  every_ = to_bigint(args[0]);
  require(every_ > 0, "dump/xyz: interval must be positive");
  path_ = args[1];
}

void DumpXYZ::pack_restart(io::BinaryWriter& w) const {
  w.put(every_);
  w.put_string(path_);
  w.put(frames_);
}

void DumpXYZ::unpack_restart(io::BinaryReader& r) {
  every_ = r.get<bigint>();
  path_ = r.get_string();
  frames_ = r.get<bigint>();
}

void DumpXYZ::init(Simulation& sim) {
  const bool is_rank0 = sim.mpi == nullptr || sim.mpi->rank() == 0;
  if (is_rank0) {
    out_.open(path_);
    require(out_.good(), "dump/xyz: cannot open '" + path_ + "'");
  }
}

void DumpXYZ::write_frame(Simulation& sim) {
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK | TYPE_MASK | TAG_MASK);
  const auto x = atom.k_x.h_view;
  const auto type = atom.k_type.h_view;
  const auto tag = atom.k_tag.h_view;

  // Record: tag, type, x, y, z per owned atom.
  std::vector<double> mine;
  mine.reserve(std::size_t(atom.nlocal) * 5);
  for (localint i = 0; i < atom.nlocal; ++i) {
    mine.push_back(double(tag(std::size_t(i))));
    mine.push_back(double(type(std::size_t(i))));
    for (int d = 0; d < 3; ++d)
      mine.push_back(x(std::size_t(i), std::size_t(d)));
  }

  std::vector<double> all;
  if (sim.mpi == nullptr) {
    all = std::move(mine);
  } else if (sim.mpi->rank() == 0) {
    all = std::move(mine);
    for (int r = 1; r < sim.mpi->size(); ++r) {
      auto part = sim.mpi->recv<double>(r, 7100);
      all.insert(all.end(), part.begin(), part.end());
    }
  } else {
    sim.mpi->send(0, 7100, mine);
  }

  if (sim.mpi != nullptr && sim.mpi->rank() != 0) return;

  out_ << all.size() / 5 << "\n";
  out_ << "Lattice step=" << sim.ntimestep << " box=" << sim.domain.prd(0)
       << " " << sim.domain.prd(1) << " " << sim.domain.prd(2) << "\n";
  for (std::size_t k = 0; k < all.size(); k += 5) {
    out_ << int(all[k + 1]) << " " << all[k + 2] << " " << all[k + 3] << " "
         << all[k + 4] << "\n";
  }
  out_.flush();
  ++frames_;
}

void DumpXYZ::end_of_step(Simulation& sim) {
  if (sim.ntimestep % every_ == 0) write_frame(sim);
}

void register_dump_xyz() {
  StyleRegistry::instance().add_fix(
      "dump/xyz", [](ExecSpaceKind) -> std::unique_ptr<Fix> {
        return std::make_unique<DumpXYZ>();
      });
}

}  // namespace mlk
