// Unit systems (LAMMPS conventions).
//
//  lj    — reduced units: eps = sigma = mass = kB = 1.
//  metal — eV, Angstrom, ps, atomic mass units (SNAP, EAM).
//  real  — kcal/mol, Angstrom, fs, amu (ReaxFF).
#pragma once

#include <string>

#include "util/error.hpp"

namespace mlk {

struct Units {
  std::string name = "lj";
  double boltz = 1.0;    // kB in energy units
  double mvv2e = 1.0;    // m*v^2 -> energy conversion
  double ftm2v = 1.0;    // force/mass*time -> velocity conversion
  double nktv2p = 1.0;   // N*kB*T/V -> pressure conversion
  double dt_default = 0.005;
  double skin_default = 0.3;

  static Units make(const std::string& which) {
    Units u;
    u.name = which;
    if (which == "lj") {
      // all 1.0 defaults
      u.dt_default = 0.005;
      u.skin_default = 0.3;
    } else if (which == "metal") {
      u.boltz = 8.617343e-5;        // eV/K
      u.mvv2e = 1.0364269e-4;       // amu*(A/ps)^2 -> eV
      u.ftm2v = 1.0 / 1.0364269e-4; // eV/A / amu * ps -> A/ps
      u.nktv2p = 1.6021765e6;       // eV/A^3 -> bar
      u.dt_default = 0.001;
      u.skin_default = 2.0;
    } else if (which == "real") {
      u.boltz = 0.0019872067;                // kcal/mol/K
      u.mvv2e = 48.88821291 * 48.88821291;   // g/mol*(A/fs)^2 -> kcal/mol
      u.ftm2v = 1.0 / (48.88821291 * 48.88821291);
      u.nktv2p = 68568.415;  // kcal/mol/A^3 -> atm
      u.dt_default = 1.0;
      u.skin_default = 2.0;
    } else {
      fatal("unknown units '" + which + "'");
    }
    return u;
  }
};

}  // namespace mlk
