#include "engine/input.hpp"

#include <cstdio>
#include <cmath>
#include <fstream>

#include "engine/style_registry.hpp"
#include "io/fault.hpp"
#include "io/restart_reader.hpp"
#include "kokkos/profiling.hpp"
#include "kokkos/simd.hpp"
#include "tools/chrome_trace.hpp"
#include "tools/kernel_timer.hpp"
#include "tools/memory_tracker.hpp"
#include "tools/observability.hpp"
#include "tools/telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

void Input::file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open input script '" + path + "'");
  std::string text;
  while (std::getline(in, text)) line(text);
}

void Input::line(const std::string& text) {
  const auto words = tokenize(text);
  if (!words.empty()) execute(words);
}

Compute* Input::find_compute(const std::string& id) {
  auto it = computes_.find(id);
  return it == computes_.end() ? nullptr : it->second.get();
}

void Input::execute(const std::vector<std::string>& words) {
  const std::string& cmd = words[0];
  auto arg = [&](std::size_t i) -> const std::string& {
    require(i < words.size(), "command '" + cmd + "': missing argument");
    return words[i];
  };

  if (cmd == "units") {
    sim_.set_units(arg(1));
  } else if (cmd == "lattice") {
    lattice_.style = arg(1);
    const double scale = to_double(arg(2));
    require(scale > 0.0, "lattice: scale must be positive");
    if (sim_.units.name == "lj") {
      // LAMMPS convention: in lj units the scale argument is the reduced
      // density rho*, and a = (basis/rho*)^(1/3) for cubic cells.
      const int basis = lattice_basis_count(lattice_.style);
      lattice_.a = std::cbrt(double(basis) / scale);
    } else {
      lattice_.a = scale;
    }
  } else if (cmd == "create_atoms") {
    lattice_.nx = to_int(arg(1));
    lattice_.ny = to_int(arg(2));
    lattice_.nz = to_int(arg(3));
    lattice_.jitter = 0.0;
    lattice_.region = false;
    for (std::size_t i = 4; i < words.size(); ++i) {
      if (words[i] == "jitter") {
        lattice_.jitter = to_double(arg(i + 1));
        lattice_.seed = to_int(arg(i + 2));
        i += 2;
      } else if (words[i] == "region") {
        // region xlo xhi ylo yhi zlo zhi — keep only lattice sites inside
        // this fraction-of-box block (docs/DECOMPOSITION.md). Gives
        // non-uniform densities (droplet-in-vacuum) for load-balance tests.
        lattice_.region = true;
        for (int d = 0; d < 3; ++d) {
          lattice_.region_lo[d] = to_double(arg(i + 1 + 2 * std::size_t(d)));
          lattice_.region_hi[d] = to_double(arg(i + 2 + 2 * std::size_t(d)));
          require(lattice_.region_lo[d] < lattice_.region_hi[d],
                  "create_atoms region: lo must be < hi");
        }
        i += 6;
      } else {
        fatal("create_atoms: unknown keyword '" + words[i] + "'");
      }
    }
    if (sim_.mpi) sim_.domain.decompose(sim_.mpi->rank(), sim_.mpi->size());
    create_lattice(lattice_, sim_.domain, sim_.atom);
  } else if (cmd == "mass") {
    sim_.atom.set_mass(to_int(arg(1)), to_double(arg(2)));
  } else if (cmd == "velocity") {
    require(arg(1) == "all", "velocity: only group 'all' is supported");
    if (arg(2) == "create") {
      create_velocities(sim_.atom, to_double(arg(3)), sim_.units.boltz,
                        sim_.units.mvv2e, to_int(arg(4)), sim_.mpi);
    } else if (arg(2) == "scale") {
      const double t_target = to_double(arg(3));
      const double t_now = sim_.temperature();
      require(t_now > 0.0, "velocity scale: zero current temperature");
      const double s = std::sqrt(t_target / t_now);
      auto v = sim_.atom.k_v.h_view;
      sim_.atom.sync<kk::Host>(V_MASK);
      for (localint i = 0; i < sim_.atom.nlocal; ++i)
        for (int d = 0; d < 3; ++d)
          v(std::size_t(i), std::size_t(d)) *= s;
      sim_.atom.modified<kk::Host>(V_MASK);
    } else {
      fatal("velocity: unknown sub-command '" + arg(2) + "'");
    }
  } else if (cmd == "set") {
    require(arg(1) == "type" && arg(3) == "charge",
            "set: only 'set type <t> charge <q>' is supported");
    const int t = to_int(arg(2));
    const double qv = to_double(arg(4));
    sim_.atom.sync<kk::Host>(Q_MASK | TYPE_MASK);
    auto q = sim_.atom.k_q.h_view;
    auto type = sim_.atom.k_type.h_view;
    for (localint i = 0; i < sim_.atom.nlocal; ++i)
      if (type(std::size_t(i)) == t) q(std::size_t(i)) = qv;
    sim_.atom.modified<kk::Host>(Q_MASK);
  } else if (cmd == "pair_style") {
    sim_.pair = StyleRegistry::instance().create_pair(arg(1),
                                                      sim_.global_suffix);
    sim_.pair->settings({words.begin() + 2, words.end()});
  } else if (cmd == "pair_coeff") {
    require(sim_.pair != nullptr, "pair_coeff before pair_style");
    sim_.pair->ntypes_hint = sim_.atom.ntypes;
    sim_.pair->coeff({words.begin() + 1, words.end()});
  } else if (cmd == "neighbor") {
    // neighbor <skin> bin — set the skin; or neighbor style host|device —
    // select the list build path (docs/NEIGHBOR.md). MLK_NEIGH env is the
    // script-free equivalent of the latter.
    if (arg(1) == "style") {
      const std::string& which = arg(2);
      if (which == "host")
        sim_.neighbor.build_path = NeighBuildPath::Host;
      else if (which == "device")
        sim_.neighbor.build_path = NeighBuildPath::Device;
      else
        fatal("neighbor style: expected 'host' or 'device', got '" + which +
              "'");
    } else {
      sim_.neighbor.skin = to_double(arg(1));
    }
  } else if (cmd == "neigh_modify") {
    for (std::size_t i = 1; i + 1 < words.size(); i += 2) {
      if (words[i] == "every")
        sim_.neighbor.every = to_int(words[i + 1]);
      else if (words[i] == "delay")
        sim_.neighbor.delay = to_int(words[i + 1]);
      else if (words[i] == "check")
        sim_.neighbor.check = to_bool(words[i + 1]);
      else if (words[i] == "canonical")
        sim_.neighbor.canonical = to_bool(words[i + 1]);
      else
        fatal("neigh_modify: unknown keyword '" + words[i] + "'");
    }
  } else if (cmd == "sort") {
    // sort every <N> | sort off: spatially reorder owned atoms every N
    // neighbor rebuilds (docs/DECOMPOSITION.md). MLK_SORT=<N> is the
    // script-free equivalent; off (the default) is the bitwise reference.
    if (arg(1) == "off") {
      sim_.sorter.every = 0;
    } else {
      require(arg(1) == "every", "sort: expected 'sort every <N>' or "
              "'sort off'");
      sim_.sorter.every = to_int(arg(2));
      require(sim_.sorter.every >= 0, "sort every: N must be >= 0");
    }
  } else if (cmd == "balance") {
    // balance rcb <thresh> | balance off: recursive-coordinate-bisection
    // rebalancing of the sub-domain cut planes whenever the per-rank atom
    // imbalance (max/avg nlocal) exceeds thresh at a neighbor rebuild
    // (docs/DECOMPOSITION.md). Off (static uniform grid) is the reference.
    if (arg(1) == "off") {
      sim_.balancer.enabled = false;
    } else {
      require(arg(1) == "rcb", "balance: expected 'balance rcb <thresh>' or "
              "'balance off'");
      sim_.balancer.enabled = true;
      sim_.balancer.thresh = to_double(arg(2));
      require(sim_.balancer.thresh >= 1.0,
              "balance rcb: threshold must be >= 1.0");
    }
  } else if (cmd == "newton") {
    sim_.newton_override = to_bool(arg(1)) ? 1 : 0;
  } else if (cmd == "overlap") {
    // overlap on|off: comm/compute overlap in the Verlet force phase
    // (docs/EXECUTION_MODEL.md). Takes effect when the pair style supports
    // the interior/boundary split (full list + atom parallelism).
    sim_.overlap_enabled = to_bool(arg(1));
  } else if (cmd == "simd") {
    // simd on|off: route hot kernels through the kk::simd pack path
    // (docs/VECTORIZATION.md). Script-level equivalent of MLK_SIMD=on|off;
    // scalar remains the reference path and the default.
    kk::set_simd_enabled(to_bool(arg(1)));
  } else if (cmd == "suffix") {
    const std::string& s = arg(1);
    sim_.global_suffix = (s == "off") ? "" : s;
  } else if (cmd == "package") {
    // accepted for input compatibility (execution defaults handled by suffix)
  } else if (cmd == "fix") {
    const std::string& id = arg(1);
    require(arg(2) == "all", "fix: only group 'all' is supported");
    auto fix = StyleRegistry::instance().create_fix(arg(3), sim_.global_suffix);
    fix->id = id;
    fix->parse_args({words.begin() + 4, words.end()});
    sim_.fixes.push_back(std::move(fix));
  } else if (cmd == "unfix") {
    const std::string& id = arg(1);
    std::erase_if(sim_.fixes,
                  [&](const std::unique_ptr<Fix>& f) { return f->id == id; });
  } else if (cmd == "compute") {
    const std::string& id = arg(1);
    require(arg(2) == "all", "compute: only group 'all' is supported");
    auto c = StyleRegistry::instance().create_compute(arg(3));
    c->id = id;
    computes_[id] = std::move(c);
  } else if (cmd == "timestep") {
    sim_.dt = to_double(arg(1));
  } else if (cmd == "thermo") {
    sim_.thermo.every = to_bigint(arg(1));
  } else if (cmd == "run") {
    sim_.run(to_bigint(arg(1)));
  } else if (cmd == "write_restart") {
    sim_.write_restart(arg(1));
  } else if (cmd == "read_restart") {
    io::RestartReader().read(sim_, arg(1));
  } else if (cmd == "restart") {
    // restart <N> <base>: checkpoint every N steps to base.<step>[.<rank>];
    // restart 0 disables. For checkpoints that are bitwise-transparent to
    // the writer run, pick N a multiple of the neighbor rebuild cadence.
    sim_.restart_every = to_bigint(arg(1));
    require(sim_.restart_every >= 0, "restart: interval must be >= 0");
    sim_.restart_base = sim_.restart_every > 0 ? arg(2) : "";
  } else if (cmd == "profile") {
    // profile on | off | dump <file>: per-kernel timing + per-space memory
    // accounting via the KokkosP-style hook layer (src/tools).
    const std::string& sub = arg(1);
    if (sub == "on") {
      if (!sim_.profile_timer) {
        sim_.profile_timer = std::make_shared<tools::KernelTimer>();
        sim_.profile_memory = std::make_shared<tools::MemorySpaceTracker>();
        sim_.profile_memory->set_print_leaks(false);
        kk::profiling::register_tool(sim_.profile_timer);
        kk::profiling::register_tool(sim_.profile_memory);
      }
    } else if (sub == "off") {
      if (sim_.profile_timer) {
        kk::profiling::deregister_tool(sim_.profile_timer);
        kk::profiling::deregister_tool(sim_.profile_memory);
        sim_.profile_timer.reset();
        sim_.profile_memory.reset();
      }
    } else if (sub == "dump") {
      require(sim_.profile_timer != nullptr, "profile dump: profiling is off "
              "(use 'profile on' before the run)");
      std::string path = arg(2);
      if (sim_.mpi && sim_.mpi->size() > 1)
        path += ".rank" + std::to_string(sim_.mpi->rank());
      tools::write_profile_json(path, *sim_.profile_timer,
                                *sim_.profile_memory);
    } else {
      fatal("profile: unknown sub-command '" + sub + "'");
    }
  } else if (cmd == "trace") {
    // trace <file> | stop: chrome://tracing timeline of kernels, regions,
    // and deep copies. Under simmpi each rank traces to <file>.rank<r>.
    const std::string& sub = arg(1);
    if (sub == "stop") {
      if (sim_.tracer) {
        kk::profiling::deregister_tool(sim_.tracer);
        sim_.tracer->finalize();
        sim_.tracer.reset();
      }
    } else {
      require(sim_.tracer == nullptr, "trace: already tracing ('trace stop' "
              "first)");
      std::string path = sub;
      int only_tag = tools::ChromeTrace::kNoFilter;
      if (sim_.mpi && sim_.mpi->size() > 1) {
        path += ".rank" + std::to_string(sim_.mpi->rank());
        only_tag = sim_.mpi->rank();
      }
      sim_.tracer = std::make_shared<tools::ChromeTrace>(path, only_tag);
      kk::profiling::register_tool(sim_.tracer);
    }
  } else if (cmd == "telemetry") {
    // telemetry <path>[:key=val,...] | flush | stop: real-time streaming of
    // step timings / thermo / in-situ analysis to a live JSON snapshot and
    // an NDJSON tail (docs/OBSERVABILITY.md). The hub is process-global.
    const std::string& sub = arg(1);
    if (sub == "stop") {
      tools::telemetry::Hub::instance().stop();
    } else if (sub == "flush") {
      tools::telemetry::Hub::instance().drain_now();
    } else {
      require(tools::start_telemetry_from_spec(sub),
              "telemetry: bad spec '" + sub + "'");
    }
  } else if (cmd == "fault_inject") {
    sim_.fault.arm(arg(1) == "off" ? -1 : to_bigint(arg(1)));
  } else if (cmd == "recover") {
    const bigint step = io::recover_latest(sim_, arg(1));
    // Say which set was restored: a silent fallback past a torn newest
    // checkpoint would otherwise be indistinguishable from a normal resume.
    if (sim_.thermo.print && (!sim_.mpi || sim_.mpi->rank() == 0))
      std::printf("# recovered '%s' from step %lld\n", arg(1).c_str(),
                  static_cast<long long>(step));
  } else {
    fatal("unknown command '" + cmd + "'");
  }
}

}  // namespace mlk
