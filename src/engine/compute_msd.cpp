#include "engine/compute_msd.hpp"

#include <vector>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"

namespace mlk {

double ComputeMSD::compute_scalar(Simulation& sim) {
  require(sim.setup_done, "compute msd: run setup() first");
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK | TAG_MASK);
  const auto x = atom.k_x.h_view;
  const auto tag = atom.k_tag.h_view;
  const std::size_t n = std::size_t(atom.nlocal);

  // Pack into the tracker's layout (it also serves the telemetry sink,
  // which reads packed CoordCapture snapshots).
  std::vector<double> xp(3 * n);
  std::vector<std::int64_t> tp(n);
  for (std::size_t i = 0; i < n; ++i) {
    xp[3 * i + 0] = x(i, 0);
    xp[3 * i + 1] = x(i, 1);
    xp[3 * i + 2] = x(i, 2);
    tp[i] = tag(i);
  }
  const double prd[3] = {sim.domain.prd(0), sim.domain.prd(1),
                         sim.domain.prd(2)};
  const double local = tracker_.observe(xp.data(), tp.data(), n, prd);
  // Average of per-atom MSDs across ranks, weighted by local atom count.
  if (sim.mpi) {
    const double num = sim.allreduce_sum(local * double(n));
    const double den = double(sim.global_natoms());
    return den > 0.0 ? num / den : 0.0;
  }
  return local;
}

void register_compute_msd() {
  StyleRegistry::instance().add_compute(
      "msd", [] { return std::make_unique<ComputeMSD>(); });
}

}  // namespace mlk
