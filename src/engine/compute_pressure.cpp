// compute pressure — virial pressure diagnostic.
#include "engine/compute.hpp"
#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"

namespace mlk {

class ComputePressure : public Compute {
 public:
  double compute_scalar(Simulation& sim) override { return sim.pressure(); }
};

void register_compute_pressure() {
  StyleRegistry::instance().add_compute(
      "pressure", [] { return std::make_unique<ComputePressure>(); });
}

}  // namespace mlk
