// Lattice generators for initial configurations: the workloads of the
// paper's case studies.
//  * fcc     — Lennard-Jones melt (the classic "lj/cut" benchmark).
//  * bcc     — SNAP tungsten benchmark crystal.
//  * hns_like — synthetic two-species molecular crystal with HNS-like
//               density/coordination statistics for the ReaxFF benchmark
//               (substitution documented in DESIGN.md).
#pragma once

#include <string>

#include "comm/simmpi.hpp"
#include "engine/atom.hpp"
#include "engine/domain.hpp"

namespace mlk {

struct LatticeSpec {
  std::string style = "fcc";  // fcc | bcc | sc | hns_like
  double a = 1.0;             // cubic lattice constant
  int nx = 1, ny = 1, nz = 1; // unit-cell repetitions
  double jitter = 0.0;        // random displacement amplitude (fraction of a)
  int seed = 12345;           // jitter RNG seed

  // Optional fraction-of-box region filter: only lattice sites whose nominal
  // (unjittered) position falls inside [region_lo, region_hi) — expressed as
  // fractions of the global box — are created. The box still spans the full
  // nx*ny*nz cells, so the rest is vacuum: the non-uniform-density droplet
  // workload of the load-balancing tests (docs/DECOMPOSITION.md). Tags stay
  // contiguous (1..natoms) so create_velocities' tag-ordered global RNG walk
  // keeps working; the region test uses nominal positions so every rank
  // agrees on membership without communication.
  bool region = false;
  double region_lo[3] = {0.0, 0.0, 0.0};
  double region_hi[3] = {1.0, 1.0, 1.0};
};

/// Number of basis atoms per unit cell for a lattice style.
int lattice_basis_count(const std::string& style);

/// Set the domain's global box to span the lattice and create the atoms that
/// fall inside this rank's sub-box. Types: fcc/bcc/sc use type 1; hns_like
/// alternates types 1 (C-like backbone) and 2 (O/N-like substituent).
/// Returns the number of atoms created locally; atom->natoms is set to the
/// global total.
bigint create_lattice(const LatticeSpec& spec, Domain& domain, Atom& atom);

/// Assign Maxwell-Boltzmann velocities at temperature T, using per-type
/// masses and the unit system's mvv2e. Each atom's draw is seeded by its
/// global tag, so the velocity field is independent of the domain
/// decomposition (LAMMPS's "loop geom" behavior); net momentum is removed
/// globally (allreduced when `mpi` is given).
void create_velocities(Atom& atom, double temperature, double boltz,
                       double mvv2e, int seed, simmpi::Comm* mpi = nullptr);

}  // namespace mlk
