// Binned Verlet neighbor lists (paper §4.1).
//
// Two list styles exist exactly as in LAMMPS-KOKKOS:
//  * half — each pair appears once; with newton on, owned-ghost pairs are
//    assigned by a coordinate criterion and ghost forces fold back via
//    reverse communication; with newton off, every rank keeps its own side
//    of owned-ghost pairs (duplicate compute, no force communication).
//  * full — every atom lists all neighbors; forces are computed redundantly
//    for both partners but no write conflicts or reverse comm occur.
//
// Two *build paths* produce the same list (docs/NEIGHBOR.md): the serial
// host build (count-then-fill) and the device-parallel build
// (single-pass fill with resize-and-retry, src/engine/neighbor_kokkos.*).
// `Neighbor::build` routes by `build_path`; both paths share the
// PairAcceptance functor below so their half-list tie-break can never
// diverge, and both produce bitwise-identical tables.
//
// Storage is the 2-D neighbor table of Appendix B: a (natoms x maxneighs)
// DualView plus a per-atom count, so no flattened index can overflow 32 bits.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/atom.hpp"
#include "engine/domain.hpp"
#include "kokkos/dualview.hpp"

namespace mlk {

enum class NeighStyle { Half, Full };

///// Which builder `Neighbor::build` dispatches to: the serial host build or
/// the device-parallel NeighborKokkos build. Selected by the
/// `neighbor style host|device` input command or the MLK_NEIGH env var.
enum class NeighBuildPath { Host, Device };

class NeighborKokkos;

/// The pair-acceptance rule, shared verbatim by the host binned build, the
/// device binned build, and the brute-force reference builder so the
/// half-list tie-break is defined in exactly one place and the builders can
/// never silently diverge. Templated on the x view so it inlines into both
/// host (LayoutRight) and device (LayoutLeft) kernels.
struct PairAcceptance {
  localint nlocal = 0;
  bool full = true;
  bool newton = false;

  PairAcceptance() = default;
  PairAcceptance(localint nl, NeighStyle style, bool nw)
      : nlocal(nl), full(style == NeighStyle::Full), newton(nw) {}

  template <class XView>
  inline bool operator()(const XView& x, localint i, localint j) const {
    if (full) return j != i;
    if (j < nlocal) return j > i;
    // Owned-ghost pair of a half list. With newton off both ranks keep their
    // side; with newton on exactly one rank owns the pair: the one whose
    // ghost partner is "above" it in z, then y, then x (LAMMPS's standard
    // tie-break).
    if (!newton) return true;
    const double zi = x(std::size_t(i), 2), zj = x(std::size_t(j), 2);
    if (zj < zi) return false;
    if (zj > zi) return true;
    const double yi = x(std::size_t(i), 1), yj = x(std::size_t(j), 1);
    if (yj < yi) return false;
    if (yj > yi) return true;
    return x(std::size_t(j), 0) >= x(std::size_t(i), 0);
  }
};

struct NeighborList {
  NeighStyle style = NeighStyle::Full;
  bool newton = false;
  localint inum = 0;  // number of owned atoms with rows (== nlocal)
  localint gnum = 0;  // ghost atoms with rows (bonded styles, see ghost_rows)
  int maxneighs = 0;
  kk::DualView<int, 2> k_neighbors;  // (inum+gnum, maxneighs) neighbor indices
  kk::DualView<int, 1> k_numneigh;   // (inum+gnum)

  // Interior/boundary partition of the owned rows, the basis for the
  // comm/compute-overlapped force phase (docs/EXECUTION_MODEL.md): an owned
  // atom is *interior* when every neighbor index is < nlocal, i.e. its force
  // row is independent of ghost positions and can be computed before (or
  // while) the halo exchange updates ghosts. All remaining owned atoms are
  // *boundary*. ninterior + nboundary == inum always — both build paths
  // populate the partition (tier-1 enforced).
  kk::DualView<int, 1> k_interior;  // (ninterior) owned rows, ghost-free
  kk::DualView<int, 1> k_boundary;  // (nboundary) owned rows touching ghosts
  localint ninterior = 0;
  localint nboundary = 0;

  /// Total number of stored pairs (bigint: can exceed 2^31 at scale).
  /// Syncs the counts to host first (the device build writes device-side).
  bigint total_pairs() const;
  double avg_neighbors() const;
};

/// Uniform cell binning over the extended (sub-box + ghost margin) region.
struct BinGrid {
  double lo[3], hi[3];
  int nbin[3] = {1, 1, 1};
  double binsize[3] = {1, 1, 1};
  std::vector<std::vector<int>> bins;  // atom indices per cell

  int coord_to_bin(const double* x) const;
  void build(const Atom& atom, const Domain& domain, double cutghost);
  int index(int bx, int by, int bz) const {
    return (bx * nbin[1] + by) * nbin[2] + bz;
  }
};

class Neighbor {
 public:
  Neighbor();
  ~Neighbor();

  double cutoff = 0.0;  // force cutoff (max over pair styles)
  double skin = 0.3;
  NeighStyle style = NeighStyle::Full;
  bool newton = false;
  int every = 1;      // consider rebuild every N steps since last build
  int delay = 0;      // never rebuild before N steps since last build
  bool check = true;  // only rebuild if an atom moved > skin/2

  /// Host (serial count-then-fill) or Device (parallel resize-and-retry)
  /// build; both populate `list` identically (docs/NEIGHBOR.md).
  NeighBuildPath build_path = NeighBuildPath::Host;

  /// Also build rows for ghost atoms (full style only). Needed by bonded
  /// potentials (ReaxFF torsions walk bonds of bonded ghosts). Rows of
  /// ghosts deeper than cutghost - bond cutoff from the sub-box may be
  /// incomplete; callers must only consume rows within that margin.
  bool ghost_rows = false;

  /// Canonical row ordering (`neigh_modify canonical yes`,
  /// docs/DECOMPOSITION.md): after every build, sort each row's entries by
  /// the neighbor's global tag (position as the tie-break between periodic
  /// images of the same tag). Row *contents* are unchanged — only the
  /// traversal order becomes independent of atom storage order, which makes
  /// per-row force accumulation (full list, newton off) bitwise invariant
  /// under spatial sorting, migration, and rebalancing. Off by default: the
  /// storage order the builders produce is itself deterministic and is the
  /// historical bitwise reference.
  bool canonical = false;

  double cutghost() const { return cutoff + skin; }

  /// (Re)build the list for the current atom/ghost configuration, routed
  /// through the host or device builder per `build_path`.
  void build(const Atom& atom, const Domain& domain);

  /// Rebuild decision for `step` (LAMMPS Neighbor::decide): a rebuild is
  /// considered only when at least `delay` steps passed since the last build
  /// and the steps-since-build count is a multiple of `every`; with `check`
  /// it additionally requires an atom to have moved > skin/2. Pure decision
  /// — call note_dangerous() once the (globally agreed) rebuild happens.
  bool wants_rebuild(bigint step, const Atom& atom) const;

  /// Count a dangerous build: the distance check triggered on the *first*
  /// step `every`/`delay` permitted a rebuild, meaning atoms were likely
  /// past skin/2 while the stale list was still in use (LAMMPS heuristic).
  /// Call on every rank with the global rebuild decision so counts agree.
  void note_dangerous(bigint step);

  /// True if any owned atom moved more than skin/2 since the last build.
  bool check_distance(const Atom& atom) const;

  /// Record positions at build time (basis for check_distance).
  void store_build_positions(const Atom& atom);

  /// Device builder (created lazily), exposed for benches/tests that want
  /// to tweak the fill strategy or inspect retry counters.
  NeighborKokkos& device_builder();

  /// Resize-and-retry overflow count of the device builder (0 on host path).
  bigint nretries() const;

  NeighborList list;
  bigint nbuilds = 0;
  bigint ndanger = 0;       // dangerous builds (see note_dangerous)
  bigint last_build = 0;    // timestep of the last build
 private:
  void build_host(const Atom& atom, const Domain& domain);
  void canonicalize_rows(const Atom& atom);

  std::vector<double> xhold_;  // positions at last build (3*nlocal)
  std::unique_ptr<NeighborKokkos> device_builder_;
};

/// Reference O(N^2) list builder used by tests to validate the binned
/// builds. With `ghost_rows` it also fills rows for ghost atoms and sets
/// gnum, mirroring the binned builders.
NeighborList brute_force_list(const Atom& atom, const Domain& domain,
                              double cutoff, NeighStyle style, bool newton,
                              localint nlocal, bool ghost_rows = false);

}  // namespace mlk
