// Binned Verlet neighbor lists (paper §4.1).
//
// Two list styles exist exactly as in LAMMPS-KOKKOS:
//  * half — each pair appears once; with newton on, owned-ghost pairs are
//    assigned by a coordinate criterion and ghost forces fold back via
//    reverse communication; with newton off, every rank keeps its own side
//    of owned-ghost pairs (duplicate compute, no force communication).
//  * full — every atom lists all neighbors; forces are computed redundantly
//    for both partners but no write conflicts or reverse comm occur.
//
// Storage is the 2-D neighbor table of Appendix B: a (natoms x maxneighs)
// DualView plus a per-atom count, so no flattened index can overflow 32 bits.
#pragma once

#include <vector>

#include "engine/atom.hpp"
#include "engine/domain.hpp"
#include "kokkos/dualview.hpp"

namespace mlk {

enum class NeighStyle { Half, Full };

struct NeighborList {
  NeighStyle style = NeighStyle::Full;
  bool newton = false;
  localint inum = 0;  // number of owned atoms with rows (== nlocal)
  localint gnum = 0;  // ghost atoms with rows (bonded styles, see ghost_rows)
  int maxneighs = 0;
  kk::DualView<int, 2> k_neighbors;  // (inum, maxneighs) local+ghost indices
  kk::DualView<int, 1> k_numneigh;   // (inum)

  // Interior/boundary partition of the owned rows, the basis for the
  // comm/compute-overlapped force phase (docs/EXECUTION_MODEL.md): an owned
  // atom is *interior* when every neighbor index is < nlocal, i.e. its force
  // row is independent of ghost positions and can be computed before (or
  // while) the halo exchange updates ghosts. All remaining owned atoms are
  // *boundary*. ninterior + nboundary == inum always.
  kk::DualView<int, 1> k_interior;  // (ninterior) owned rows, ghost-free
  kk::DualView<int, 1> k_boundary;  // (nboundary) owned rows touching ghosts
  localint ninterior = 0;
  localint nboundary = 0;

  /// Total number of stored pairs (bigint: can exceed 2^31 at scale).
  bigint total_pairs() const;
  double avg_neighbors() const;
};

/// Uniform cell binning over the extended (sub-box + ghost margin) region.
struct BinGrid {
  double lo[3], hi[3];
  int nbin[3] = {1, 1, 1};
  double binsize[3] = {1, 1, 1};
  std::vector<std::vector<int>> bins;  // atom indices per cell

  int coord_to_bin(const double* x) const;
  void build(const Atom& atom, const Domain& domain, double cutghost);
  int index(int bx, int by, int bz) const {
    return (bx * nbin[1] + by) * nbin[2] + bz;
  }
};

class Neighbor {
 public:
  double cutoff = 0.0;  // force cutoff (max over pair styles)
  double skin = 0.3;
  NeighStyle style = NeighStyle::Full;
  bool newton = false;
  int every = 1;    // consider rebuild every N steps
  int delay = 0;    // never rebuild before N steps since last
  bool check = true;  // only rebuild if an atom moved > skin/2

  /// Also build rows for ghost atoms (full style only). Needed by bonded
  /// potentials (ReaxFF torsions walk bonds of bonded ghosts). Rows of
  /// ghosts deeper than cutghost - bond cutoff from the sub-box may be
  /// incomplete; callers must only consume rows within that margin.
  bool ghost_rows = false;

  double cutghost() const { return cutoff + skin; }

  /// (Re)build the list for the current atom/ghost configuration.
  /// Host-side serial binning; Kokkos styles sync the DualViews to device.
  void build(const Atom& atom, const Domain& domain);

  /// True if any owned atom moved more than skin/2 since the last build.
  bool check_distance(const Atom& atom) const;

  /// Record positions at build time (basis for check_distance).
  void store_build_positions(const Atom& atom);

  NeighborList list;
  bigint nbuilds = 0;

 private:
  std::vector<double> xhold_;  // positions at last build (3*nlocal)
};

/// Reference O(N^2) list builder used by tests to validate the binned build.
NeighborList brute_force_list(const Atom& atom, const Domain& domain,
                              double cutoff, NeighStyle style, bool newton,
                              localint nlocal);

}  // namespace mlk
