#include "engine/fix_nve.hpp"

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "kokkos/core.hpp"

namespace mlk {

void FixNVE::initial_integrate(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<kk::Host>(X_MASK | V_MASK | F_MASK | TYPE_MASK);
  auto x = a.k_x.h_view;
  auto v = a.k_v.h_view;
  auto f = a.k_f.h_view;
  auto type = a.k_type.h_view;
  const double dt = sim.dt;
  const double dtf = 0.5 * dt * sim.units.ftm2v;
  for (localint i = 0; i < a.nlocal; ++i) {
    const double dtfm = dtf / a.mass_of_type(type(std::size_t(i)));
    for (int d = 0; d < 3; ++d) {
      v(std::size_t(i), std::size_t(d)) += dtfm * f(std::size_t(i), std::size_t(d));
      x(std::size_t(i), std::size_t(d)) += dt * v(std::size_t(i), std::size_t(d));
    }
  }
  a.modified<kk::Host>(X_MASK | V_MASK);
}

void FixNVE::final_integrate(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<kk::Host>(V_MASK | F_MASK | TYPE_MASK);
  auto v = a.k_v.h_view;
  auto f = a.k_f.h_view;
  auto type = a.k_type.h_view;
  const double dtf = 0.5 * sim.dt * sim.units.ftm2v;
  for (localint i = 0; i < a.nlocal; ++i) {
    const double dtfm = dtf / a.mass_of_type(type(std::size_t(i)));
    for (int d = 0; d < 3; ++d)
      v(std::size_t(i), std::size_t(d)) += dtfm * f(std::size_t(i), std::size_t(d));
  }
  a.modified<kk::Host>(V_MASK);
}

template <class Space>
void FixNVEKokkos<Space>::initial_integrate(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<Space>(X_MASK | V_MASK | F_MASK | TYPE_MASK);
  a.k_mass.sync<Space>();
  auto x = a.k_x.view<Space>();
  auto v = a.k_v.view<Space>();
  auto f = a.k_f.view<Space>();
  auto type = a.k_type.view<Space>();
  auto mass = a.k_mass.view<Space>();
  const double dt = sim.dt;
  const double dtf = 0.5 * dt * sim.units.ftm2v;
  kk::parallel_for(
      "FixNVEKokkos::initial_integrate",
      kk::RangePolicy<Space>(0, std::size_t(a.nlocal)), [=](std::size_t i) {
        const double dtfm = dtf / mass(std::size_t(type(i)));
        for (std::size_t d = 0; d < 3; ++d) {
          v(i, d) += dtfm * f(i, d);
          x(i, d) += dt * v(i, d);
        }
      });
  a.modified<Space>(X_MASK | V_MASK);
}

template <class Space>
void FixNVEKokkos<Space>::final_integrate(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<Space>(V_MASK | F_MASK | TYPE_MASK);
  a.k_mass.sync<Space>();
  auto v = a.k_v.view<Space>();
  auto f = a.k_f.view<Space>();
  auto type = a.k_type.view<Space>();
  auto mass = a.k_mass.view<Space>();
  const double dtf = 0.5 * sim.dt * sim.units.ftm2v;
  kk::parallel_for("FixNVEKokkos::final_integrate",
                   kk::RangePolicy<Space>(0, std::size_t(a.nlocal)),
                   [=](std::size_t i) {
                     const double dtfm = dtf / mass(std::size_t(type(i)));
                     for (std::size_t d = 0; d < 3; ++d) v(i, d) += dtfm * f(i, d);
                   });
  a.modified<Space>(V_MASK);
}

template class FixNVEKokkos<kk::Host>;
template class FixNVEKokkos<kk::Device>;

void register_fix_nve() {
  auto& reg = StyleRegistry::instance();
  reg.add_fix("nve", [](ExecSpaceKind) -> std::unique_ptr<Fix> {
    return std::make_unique<FixNVE>();
  });
  reg.add_fix_kokkos("nve", [](ExecSpaceKind space) -> std::unique_ptr<Fix> {
    if (space == ExecSpaceKind::Host)
      return std::make_unique<FixNVEKokkos<kk::Host>>();
    return std::make_unique<FixNVEKokkos<kk::Device>>();
  });
}

}  // namespace mlk
