#include "engine/domain.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mlk {

void Domain::set_box(double xlo, double xhi, double ylo, double yhi,
                     double zlo, double zhi) {
  require(xhi > xlo && yhi > ylo && zhi > zlo, "box bounds must be ordered");
  boxlo[0] = xlo;
  boxlo[1] = ylo;
  boxlo[2] = zlo;
  boxhi[0] = xhi;
  boxhi[1] = yhi;
  boxhi[2] = zhi;
  for (int d = 0; d < 3; ++d) {
    sublo[d] = boxlo[d];
    subhi[d] = boxhi[d];
    cuts_[std::size_t(d)] = {boxlo[d], boxhi[d]};
  }
}

void Domain::decompose(int rank, int nranks) {
  grid_ = make_grid(rank, nranks, prd(0), prd(1), prd(2));
  for (int d = 0; d < 3; ++d) {
    subbox_bounds(grid_, d, boxlo[d], boxhi[d], &sublo[d], &subhi[d]);
    cuts_[std::size_t(d)] = uniform_cuts(grid_.np[d], boxlo[d], boxhi[d]);
  }
}

void Domain::set_cuts(int d, std::vector<double> cuts) {
  require(d >= 0 && d < 3, "set_cuts: bad dimension");
  require(cuts.size() == std::size_t(grid_.np[d]) + 1,
          "set_cuts: need np+1 cut planes");
  require(cuts.front() == boxlo[d] && cuts.back() == boxhi[d],
          "set_cuts: cuts must span the global box");
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
    require(cuts[i] < cuts[i + 1], "set_cuts: cuts must be ascending");
  cuts_[std::size_t(d)] = std::move(cuts);
  sublo[d] = cuts_[std::size_t(d)][std::size_t(grid_.coord[d])];
  subhi[d] = cuts_[std::size_t(d)][std::size_t(grid_.coord[d]) + 1];
}

void Domain::remap(double* x) const {
  for (int d = 0; d < 3; ++d) {
    if (!periodic[d]) continue;
    require(std::isfinite(x[d]),
            "remap: non-finite coordinate (simulation blew up?)");
    const double p = prd(d);
    while (x[d] >= boxhi[d]) x[d] -= p;
    while (x[d] < boxlo[d]) x[d] += p;
  }
}

void Domain::minimum_image(double* dx) const {
  for (int d = 0; d < 3; ++d) {
    if (!periodic[d]) continue;
    const double p = prd(d);
    const double half = 0.5 * p;
    while (dx[d] > half) dx[d] -= p;
    while (dx[d] < -half) dx[d] += p;
  }
}

bool Domain::inside_subbox(const double* x) const {
  for (int d = 0; d < 3; ++d)
    if (x[d] < sublo[d] || x[d] >= subhi[d]) return false;
  return true;
}

}  // namespace mlk
