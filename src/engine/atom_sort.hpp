// Spatial reorder of owned atoms (ExaMiniMD's "Kokkos Sort Binning"
// capability, docs/DECOMPOSITION.md): every `every` neighbor rebuilds the
// owned rows are permuted into bin-major order over a uniform grid of the
// sub-box, restoring the cache locality that particle diffusion destroys.
//
// Two permutation builders exist:
//  * Scalar — std::stable_sort by bin key; the bitwise reference.
//  * Binned — bin-count + exclusive-scan + ordered fill (the counting-sort
//    shape a device backend would use).
// Both are stable by prior index within a bin, so they produce the *same*
// permutation (tier-1 enforced); the sort never changes which permutation is
// applied, only how it is computed.
#pragma once

#include <vector>

#include "engine/atom.hpp"
#include "engine/domain.hpp"
#include "util/types.hpp"

namespace mlk {

class AtomSorter {
 public:
  /// Sort cadence in neighbor rebuilds (`sort every <N>` / MLK_SORT=N;
  /// 0 = off).
  int every = 0;

  /// Permutation builder: Scalar is the reference, Binned the default.
  enum class Path { Scalar, Binned };
  Path path = Path::Binned;

  bigint nsorts = 0;
  /// Rebuilds since the last sort — checkpointed (restart format v2) so a
  /// resumed run sorts on exactly the same rebuilds as the writer.
  int builds_since_sort = 0;

  /// Called once per neighbor rebuild, after exchange and before borders
  /// (nghost == 0). Counts the rebuild and applies the sort when the
  /// cadence comes due; returns true when a sort happened.
  bool maybe_sort(Atom& atom, const Domain& domain, double bin_width);

  /// Bin-major spatial permutation of the owned rows (new index -> old
  /// index), stable by old index within a bin.
  static std::vector<localint> permutation_scalar(const Atom& atom,
                                                  const Domain& domain,
                                                  double bin_width);
  static std::vector<localint> permutation_binned(const Atom& atom,
                                                  const Domain& domain,
                                                  double bin_width);
};

}  // namespace mlk
