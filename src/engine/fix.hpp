// Fix style base class (§2.2): persistent commands whose methods are
// invoked at fixed points in every timestep to modify the trajectory.
#pragma once

#include <string>
#include <vector>

namespace mlk {

class Simulation;

class Fix {
 public:
  virtual ~Fix() = default;

  /// Style-specific arguments from the input script (after "fix <id> <style>").
  virtual void parse_args(const std::vector<std::string>& args) { (void)args; }

  virtual void init(Simulation& sim) { (void)sim; }
  /// First half of velocity-Verlet (before force evaluation).
  virtual void initial_integrate(Simulation& sim) { (void)sim; }
  /// Second half of velocity-Verlet (after force evaluation).
  virtual void final_integrate(Simulation& sim) { (void)sim; }
  /// Force modification hook (thermostats, external fields).
  virtual void post_force(Simulation& sim) { (void)sim; }
  virtual void end_of_step(Simulation& sim) { (void)sim; }

  std::string id;
  std::string style_name;
  /// Set by the engine once init() has run (fixes added between `run`
  /// commands are initialized lazily at the next run).
  bool init_done = false;
};

}  // namespace mlk
