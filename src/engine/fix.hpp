// Fix style base class (§2.2): persistent commands whose methods are
// invoked at fixed points in every timestep to modify the trajectory.
#pragma once

#include <string>
#include <vector>

#include "io/binary_io.hpp"

namespace mlk {

class Simulation;

class Fix {
 public:
  virtual ~Fix() = default;

  /// Style-specific arguments from the input script (after "fix <id> <style>").
  virtual void parse_args(const std::vector<std::string>& args) { (void)args; }

  virtual void init(Simulation& sim) { (void)sim; }
  /// First half of velocity-Verlet (before force evaluation).
  virtual void initial_integrate(Simulation& sim) { (void)sim; }
  /// Second half of velocity-Verlet (after force evaluation).
  virtual void final_integrate(Simulation& sim) { (void)sim; }
  /// Force modification hook (thermostats, external fields).
  virtual void post_force(Simulation& sim) { (void)sim; }
  virtual void end_of_step(Simulation& sim) { (void)sim; }

  /// Serialize private state (thermostat variables, RNG streams) into a
  /// checkpoint. The default writes nothing: stateless fixes resume
  /// correctly with no override. Stateful fixes must round-trip everything
  /// the bitwise-identical-resume guarantee depends on.
  virtual void pack_restart(io::BinaryWriter& w) const { (void)w; }
  /// Restore state packed by pack_restart; called with this fix's own blob.
  virtual void unpack_restart(io::BinaryReader& r) { (void)r; }

  std::string id;
  std::string style_name;
  /// Set by the engine once init() has run (fixes added between `run`
  /// commands are initialized lazily at the next run).
  bool init_done = false;
};

}  // namespace mlk
