// compute temp / compute pe — scalar diagnostics exposed to input scripts.
#include "engine/compute.hpp"
#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"

namespace mlk {

class ComputeTemp : public Compute {
 public:
  double compute_scalar(Simulation& sim) override { return sim.temperature(); }
};

class ComputePE : public Compute {
 public:
  double compute_scalar(Simulation& sim) override {
    return sim.potential_energy();
  }
};

class ComputeKE : public Compute {
 public:
  double compute_scalar(Simulation& sim) override {
    return sim.kinetic_energy();
  }
};

void register_compute_temp() {
  auto& reg = StyleRegistry::instance();
  reg.add_compute("temp", [] { return std::make_unique<ComputeTemp>(); });
  reg.add_compute("pe", [] { return std::make_unique<ComputePE>(); });
  reg.add_compute("ke", [] { return std::make_unique<ComputeKE>(); });
}

}  // namespace mlk
