#include "engine/atom.hpp"

#include <algorithm>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk {

Atom::Atom()
    : k_x("atom::x", 0, 3),
      k_v("atom::v", 0, 3),
      k_f("atom::f", 0, 3),
      k_type("atom::type", 0),
      k_tag("atom::tag", 0),
      k_q("atom::q", 0),
      k_mass("atom::mass", 2) {}

void Atom::grow(localint n) {
  if (n <= nmax_) return;
  const localint newmax = std::max(n, nmax_ + nmax_ / 2 + 1024);
  k_x.resize_preserve(std::size_t(newmax));
  k_v.resize_preserve(std::size_t(newmax));
  k_f.resize_preserve(std::size_t(newmax));
  k_type.resize_preserve(std::size_t(newmax));
  k_tag.resize_preserve(std::size_t(newmax));
  k_q.resize_preserve(std::size_t(newmax));
  nmax_ = newmax;
}

void Atom::set_ntypes(int n) {
  require(n >= 1, "ntypes must be >= 1");
  ntypes = n;
  k_mass.realloc(std::size_t(n) + 1);
  for (std::size_t t = 0; t <= std::size_t(n); ++t) k_mass.h_view(t) = 1.0;
  k_mass.modify<kk::Host>();
}

void Atom::set_mass(int type, double mass) {
  require(type >= 1 && type <= ntypes, "set_mass: type out of range");
  require(mass > 0.0, "set_mass: mass must be positive");
  k_mass.h_view(std::size_t(type)) = mass;
  k_mass.modify<kk::Host>();
  k_mass.sync<kk::Device>();
}

localint Atom::add_atom(int type, tagint tag, double x, double y, double z) {
  require(type >= 1 && type <= ntypes, "add_atom: type out of range");
  grow(nlocal + nghost + 1);
  // Ghosts (if any) live at the tail; callers add owned atoms before borders.
  require(nghost == 0, "add_atom: cannot add owned atoms while ghosts exist");
  const localint i = nlocal++;
  k_x.h_view(std::size_t(i), 0) = x;
  k_x.h_view(std::size_t(i), 1) = y;
  k_x.h_view(std::size_t(i), 2) = z;
  for (int d = 0; d < 3; ++d) {
    k_v.h_view(std::size_t(i), std::size_t(d)) = 0.0;
    k_f.h_view(std::size_t(i), std::size_t(d)) = 0.0;
  }
  k_type.h_view(std::size_t(i)) = type;
  k_tag.h_view(std::size_t(i)) = tag;
  k_q.h_view(std::size_t(i)) = 0.0;
  modified<kk::Host>(X_MASK | V_MASK | F_MASK | TYPE_MASK | TAG_MASK | Q_MASK);
  return i;
}

template <class Space>
void Atom::zero_forces() {
  sync<Space>(F_MASK);
  auto f = k_f.view<Space>();
  const std::size_t n = std::size_t(nall());
  kk::parallel_for("Atom::zero_forces", kk::RangePolicy<Space>(0, n),
                   [=](std::size_t i) {
                     f(i, 0) = 0.0;
                     f(i, 1) = 0.0;
                     f(i, 2) = 0.0;
                   });
  modified<Space>(F_MASK);
}

template void Atom::zero_forces<kk::Host>();
template void Atom::zero_forces<kk::Device>();

}  // namespace mlk
