// Pair style base class (the "pair style" category of §2.2).
//
// Concrete potentials (LJ, EAM, ReaxFF-lite, SNAP) override compute();
// Kokkos-accelerated variants additionally set execution_space and their
// datamasks, which the engine uses to drive DualView sync before/after the
// force call — the flag mechanism of §3.2.
#pragma once

#include <string>
#include <vector>

#include "engine/atom.hpp"
#include "engine/neighbor.hpp"
#include "io/binary_io.hpp"
#include "util/error.hpp"

namespace kk {
class DeviceInstance;
}

namespace mlk {

class Simulation;
class PairBatch;  // cross-job fused dispatch (src/pair/pair_batch.hpp)

enum class ExecSpaceKind { Host, Device };

class Pair {
 public:
  virtual ~Pair() = default;

  /// Style-specific global settings (pair_style command args).
  virtual void settings(const std::vector<std::string>& args) { (void)args; }

  /// Per-type-pair coefficients (pair_coeff command args). The engine sets
  /// ntypes_hint from the atom store before calling, so wildcard ("*")
  /// specifications know the full type range.
  virtual void coeff(const std::vector<std::string>& args) { (void)args; }

  int ntypes_hint = 1;

  /// One-time initialization once box/types are known.
  virtual void init(Simulation& sim) { (void)sim; }

  /// Compute forces into atom.f; accumulate energy/virial when eflag.
  virtual void compute(Simulation& sim, bool eflag) = 0;

  // --- comm/compute overlap (docs/EXECUTION_MODEL.md) ---
  /// A style that can split its force kernel into ghost-independent
  /// *interior* rows and ghost-touching *boundary* rows returns true when
  /// the given list supports the split; the engine then calls
  /// compute_interior (asynchronously, before the halo exchange) followed by
  /// compute_boundary (after ghosts land) instead of compute().
  virtual bool supports_overlap(const NeighborList& list) const {
    (void)list;
    return false;
  }

  /// Launch the interior force pass on `instance` and return immediately.
  /// All DualView sync/modify bookkeeping must happen on the calling thread;
  /// the enqueued task may touch only raw captured views. Only called when
  /// supports_overlap() returned true.
  virtual void compute_interior(Simulation& sim, bool eflag,
                                kk::DeviceInstance& instance) {
    (void)sim, (void)eflag, (void)instance;
    require(false, style_name + " does not support overlapped compute");
  }

  /// Complete the force computation over boundary rows and fold the interior
  /// tallies into eng_vdwl/virial. Called only after the halo exchange
  /// finished AND the interior instance was fenced.
  virtual void compute_boundary(Simulation& sim, bool eflag) {
    (void)sim, (void)eflag;
    require(false, style_name + " does not support overlapped compute");
  }

  // --- cross-job batched dispatch (docs/SERVER.md) ---
  /// Non-empty when this style can contribute its force kernel for the
  /// current step to a cross-simulation fused launch: the batch server
  /// groups co-resident jobs whose signatures match into one PairBatch and
  /// dispatches a single launch over their concatenated rows. The signature
  /// must encode everything that makes rows fusable (kernel shape, execution
  /// space, write pattern) — styles return "" to compute solo this step.
  /// Styles must refuse (return "") whenever fusion could change results:
  /// in particular eflag steps, whose reductions join partials in
  /// rank order and would change summation order inside a shared launch.
  virtual std::string batch_signature(const Simulation& sim,
                                      bool eflag) const {
    (void)sim, (void)eflag;
    return "";
  }

  /// Append this style's force work for the step to `batch` instead of
  /// launching it. Same threading contract as compute_interior: all DualView
  /// sync/modify bookkeeping happens here on the calling thread; the
  /// enlisted per-row closures touch only raw captured views and each row
  /// writes only its own job's arrays. Only called when batch_signature()
  /// returned non-empty.
  virtual void batch_enlist(Simulation& sim, bool eflag, PairBatch& batch) {
    (void)sim, (void)eflag, (void)batch;
    require(false, style_name + " does not support batched compute");
  }

  /// Serialize settings + coefficients into a checkpoint; return true if the
  /// style fully round-trips (a read_restart then needs no pair_style /
  /// pair_coeff commands). Styles whose coefficients live in external tables
  /// (EAM, SNAP) keep the default false and are re-specified on resume.
  virtual bool pack_restart(io::BinaryWriter& w) const {
    (void)w;
    return false;
  }
  virtual void unpack_restart(io::BinaryReader& r) { (void)r; }

  /// Largest interaction cutoff (drives the neighbor list).
  virtual double cutoff() const = 0;

  /// Which neighbor list the style wants.
  virtual NeighStyle neigh_style() const { return NeighStyle::Half; }

  /// Half-list styles say whether they exploit Newton's third law for ghost
  /// pairs (requiring reverse force communication).
  virtual bool newton() const { return true; }

  /// Bonded styles that walk neighbor rows of ghost atoms (ReaxFF torsions).
  virtual bool ghost_rows_needed() const { return false; }

  // Declared data access, consumed by the engine's sync logic.
  unsigned datamask_read = X_MASK | TYPE_MASK;
  unsigned datamask_modify = F_MASK;

  /// Execution space of the compute kernels (Host for legacy styles).
  ExecSpaceKind execution_space = ExecSpaceKind::Host;

  /// True for styles that accumulate forces onto ghost atoms even with a
  /// full neighbor list (SNAP, ReaxFF bonded terms): the engine must fold
  /// ghost forces back to owners after compute().
  bool needs_reverse_comm = false;

  // Accumulated per-call results (this rank's share).
  double eng_vdwl = 0.0;
  double eng_coul = 0.0;
  double virial[6] = {0, 0, 0, 0, 0, 0};

  std::string style_name;

 protected:
  void reset_accumulators() {
    eng_vdwl = eng_coul = 0.0;
    for (double& v : virial) v = 0.0;
  }
};

}  // namespace mlk
