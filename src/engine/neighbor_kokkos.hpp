// Device-parallel neighbor list construction (the KOKKOS-package build).
//
// Binning metadata is staged into device-layout Views and the fill pass runs
// as a device parallel_for over atoms, the one-thread-per-atom pattern of
// §4.1. The default fill strategy is the paper's single-pass
// *resize-and-retry*: rows are written directly into a table of guessed
// capacity while full counts accumulate; an end-of-pass max-reduction
// detects overflow, and only then is the table regrown and the pass
// repeated. The capacity high-water mark persists across rebuilds
// (`maxneighs_hint`), so at steady state retries amortize to zero and each
// rebuild is a single traversal — versus the count-then-fill baseline's
// guaranteed two (kept selectable for bench_neigh_rebuild's comparison).
//
// Results are written into the device copies of the NeighborList DualViews
// — including the interior/boundary partition (a parallel_scan over a
// ghost-free flag) and ghost rows — and are bitwise-identical to the host
// build: both share PairAcceptance and visit bins in the same order, so
// every row lists the same neighbors in the same order (docs/NEIGHBOR.md).
#pragma once

#include "engine/neighbor.hpp"

namespace mlk {

/// Fill strategy of the device build. ResizeRetry is the production path;
/// CountThenFill is the two-traversal baseline kept for the §4.1 strategy
/// comparison (bench_neigh_rebuild). Both produce identical lists.
enum class DeviceFillStrategy { ResizeRetry, CountThenFill };

class NeighborKokkos {
 public:
  double cutoff = 0.0;
  double skin = 0.3;
  NeighStyle style = NeighStyle::Full;
  bool newton = false;
  bool ghost_rows = false;
  DeviceFillStrategy strategy = DeviceFillStrategy::ResizeRetry;

  double cutghost() const { return cutoff + skin; }

  /// Build on the Device execution space into `out`. On return, the list's
  /// device views are current and marked modified (host code syncs on
  /// demand). This is the entry point the engine uses, targeting the
  /// Simulation's own NeighborList so consumers see one list regardless of
  /// build path.
  void build_into(NeighborList& out, const Atom& atom, const Domain& domain);

  /// Standalone build into the member list (tests, benches).
  void build(const Atom& atom, const Domain& domain) {
    build_into(list, atom, domain);
  }

  NeighborList list;
  bigint nbuilds = 0;

  /// Number of overflow retries across all resize-and-retry builds. After
  /// warm-up the capacity high-water mark makes additional builds retry-free
  /// (the acceptance criterion bench_neigh_rebuild measures).
  bigint nretries = 0;

  /// Row-capacity high-water mark carried across rebuilds (0 = derive the
  /// first guess from the local density). Reset to re-measure cold builds.
  int maxneighs_hint = 0;
};

}  // namespace mlk
