// Device-parallel neighbor list construction (the KOKKOS-package build).
//
// Binning metadata is staged into device-layout Views and the count/fill
// passes run as device parallel_for over atoms, the one-thread-per-atom
// pattern of §4.1. Results are written directly into the device copies of
// the NeighborList DualViews and validated against the host build in tests.
#pragma once

#include "engine/neighbor.hpp"

namespace mlk {

class NeighborKokkos {
 public:
  double cutoff = 0.0;
  double skin = 0.3;
  NeighStyle style = NeighStyle::Full;
  bool newton = false;

  double cutghost() const { return cutoff + skin; }

  /// Build on the Device execution space. On return, the list's device views
  /// are current and marked modified (host code syncs on demand).
  void build(const Atom& atom, const Domain& domain);

  NeighborList list;
  bigint nbuilds = 0;
};

}  // namespace mlk
