// compute rdf — radial distribution function g(r), the standard structural
// diagnostic (LAMMPS `compute rdf`). Histogram over the current full/half
// neighbor list extended by a direct pair sweep within rcut.
#pragma once

#include <vector>

#include "engine/compute.hpp"
#include "util/types.hpp"

namespace mlk {

class Simulation;

class ComputeRDF : public Compute {
 public:
  explicit ComputeRDF(int nbins = 100, double rcut = 0.0)
      : nbins_(nbins), rcut_(rcut) {}

  /// Returns the height of the first peak of g(r) (scalar interface).
  double compute_scalar(Simulation& sim) override;

  /// Full histogram: evaluate then read bins.
  const std::vector<double>& gr() const { return gr_; }
  const std::vector<double>& r_centers() const { return r_; }
  void evaluate(Simulation& sim);

 private:
  int nbins_;
  double rcut_;
  std::vector<double> gr_, r_;
};

void register_compute_rdf();

}  // namespace mlk
