// Dynamic load balancing over simmpi ranks (`balance rcb <thresh>`,
// docs/DECOMPOSITION.md): when the measured per-rank atom imbalance
// (max/avg nlocal) exceeds the threshold at a neighbor rebuild, new
// rectilinear cut planes are computed by recursive coordinate bisection of
// per-axis atom-density histograms and the atoms migrate to their new home
// ranks through the existing exchange path (CommBrick::migrate).
#pragma once

#include <vector>

#include "comm/simmpi.hpp"
#include "engine/atom.hpp"
#include "engine/domain.hpp"
#include "util/types.hpp"

namespace mlk {

class Balancer {
 public:
  /// Armed by `balance rcb <thresh>`; `balance off` disarms.
  bool enabled = false;
  /// Rebalance when max/avg per-rank atom count exceeds this (> 1.0).
  double thresh = 1.2;
  /// Histogram resolution per axis for the RCB quantile cuts.
  int nbins = 512;

  bigint nbalances = 0;
  /// Most recently measured imbalance ratio (updated every rebuild while a
  /// communicator is attached; 1.0 in serial). Feeds telemetry and the
  /// end-of-run breakdown without extra collectives.
  double last_imbalance = 1.0;

  /// Global max/avg owned-atom ratio across ranks (collective; returns 1.0
  /// in serial or when no atoms exist).
  static double imbalance(const Atom& atom, simmpi::Comm* mpi);

  /// Recompute the cut planes from global per-axis histograms of the owned
  /// atoms and install them in the domain (collective: every rank computes
  /// identical cuts from the allreduced histograms). `min_width` is the
  /// minimum slab width per rank (the comm ghost cutoff). Atoms do NOT move;
  /// call CommBrick::migrate afterwards. No-op (returns false) in serial.
  bool recompute_cuts(const Atom& atom, Domain& domain, simmpi::Comm* mpi,
                      double min_width) const;
};

}  // namespace mlk
