#include "engine/compute_rdf.hpp"

#include <algorithm>
#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "tools/telemetry/insitu.hpp"
#include "util/error.hpp"

namespace mlk {

void ComputeRDF::evaluate(Simulation& sim) {
  require(sim.setup_done, "compute rdf: run setup() first");
  const double rcut = rcut_ > 0.0 ? rcut_ : sim.neighbor.cutoff;
  require(rcut > 0.0, "compute rdf: no cutoff available");

  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();
  const auto x = atom.k_x.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;

  std::vector<double> hist(std::size_t(nbins_), 0.0);
  const double dr = rcut / nbins_;
  // Count each unordered pair once regardless of list style.
  const double pair_weight = list.style == NeighStyle::Full ? 0.5 : 1.0;
  // Half newton-off lists double-count owned-ghost pairs; with the serial
  // periodic setup used here every list style yields each physical pair
  // with total weight 1 under these conventions (validated by tests).
  for (localint i = 0; i < list.inum; ++i) {
    for (int c = 0; c < numneigh(std::size_t(i)); ++c) {
      const int j = neigh(std::size_t(i), std::size_t(c));
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (r >= rcut) continue;
      const int b = std::min(int(r / dr), nbins_ - 1);
      const double w =
          list.style == NeighStyle::Full
              ? pair_weight
              : ((j < list.inum || list.newton) ? 1.0 : 0.5);
      hist[std::size_t(b)] += w;
    }
  }

  // Normalize through the shared in-situ helper: the live telemetry RDF
  // (tools/telemetry/insitu.cpp) and this scripted compute apply the same
  // ideal-gas shell normalization by construction.
  tools::telemetry::normalize_rdf_hist(hist, double(sim.global_natoms()),
                                       sim.domain.volume(), rcut, gr_, r_);
}

double ComputeRDF::compute_scalar(Simulation& sim) {
  evaluate(sim);
  return *std::max_element(gr_.begin(), gr_.end());
}

void register_compute_rdf() {
  StyleRegistry::instance().add_compute(
      "rdf", [] { return std::make_unique<ComputeRDF>(); });
}

}  // namespace mlk
