// Compute style base class (§2.2): read-only diagnostics exposed to the
// input script (never modify the system state).
#pragma once

#include <string>

namespace mlk {

class Simulation;

class Compute {
 public:
  virtual ~Compute() = default;
  virtual double compute_scalar(Simulation& sim) = 0;
  std::string id;
  std::string style_name;
};

}  // namespace mlk
