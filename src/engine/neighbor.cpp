#include "engine/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "engine/neighbor_kokkos.hpp"
#include "util/error.hpp"

namespace mlk {

Neighbor::Neighbor() = default;
Neighbor::~Neighbor() = default;

bigint NeighborList::total_pairs() const {
  auto& num = const_cast<NeighborList*>(this)->k_numneigh;
  num.sync<kk::Host>();
  bigint total = 0;
  for (localint i = 0; i < inum; ++i)
    total += num.h_view(std::size_t(i));
  return total;
}

double NeighborList::avg_neighbors() const {
  return inum == 0 ? 0.0 : double(total_pairs()) / double(inum);
}

int BinGrid::coord_to_bin(const double* x) const {
  int b[3];
  for (int d = 0; d < 3; ++d) {
    b[d] = int((x[d] - lo[d]) / binsize[d]);
    b[d] = std::clamp(b[d], 0, nbin[d] - 1);
  }
  return index(b[0], b[1], b[2]);
}

void BinGrid::build(const Atom& atom, const Domain& domain, double cutghost) {
  for (int d = 0; d < 3; ++d) {
    lo[d] = domain.sublo[d] - cutghost;
    hi[d] = domain.subhi[d] + cutghost;
    const double span = hi[d] - lo[d];
    nbin[d] = std::max(1, int(span / cutghost));
    binsize[d] = span / nbin[d];
  }
  bins.assign(std::size_t(nbin[0]) * nbin[1] * nbin[2], {});
  const auto x = atom.k_x.h_view;
  for (localint i = 0; i < atom.nall(); ++i) {
    const double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                          x(std::size_t(i), 2)};
    bins[std::size_t(coord_to_bin(xi))].push_back(i);
  }
}

NeighborKokkos& Neighbor::device_builder() {
  if (!device_builder_) device_builder_ = std::make_unique<NeighborKokkos>();
  return *device_builder_;
}

bigint Neighbor::nretries() const {
  return device_builder_ ? device_builder_->nretries : 0;
}

void Neighbor::build(const Atom& atom, const Domain& domain) {
  if (build_path == NeighBuildPath::Device) {
    NeighborKokkos& nk = device_builder();
    nk.cutoff = cutoff;
    nk.skin = skin;
    nk.style = style;
    nk.newton = newton;
    nk.ghost_rows = ghost_rows;
    nk.build_into(list, atom, domain);
    ++nbuilds;
    if (canonical) canonicalize_rows(atom);
    return;
  }
  build_host(atom, domain);
  if (canonical) canonicalize_rows(atom);
}

void Neighbor::canonicalize_rows(const Atom& atom) {
  // Both build paths emit bitwise-identical tables, so canonicalizing after
  // either yields the same rows. Sorting is by (tag, x, y, z) of the
  // neighbor: tags are storage-order invariant, and the coordinates break
  // ties between distinct periodic images of the same tag (their positions
  // differ by box lengths). The interior/boundary partition is unaffected —
  // it lists row indices, not positions within rows.
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();
  auto neigh = list.k_neighbors.h_view;
  const auto num = list.k_numneigh.h_view;
  const auto tag = atom.k_tag.h_view;
  const auto x = atom.k_x.h_view;
  const localint nrows = list.inum + list.gnum;
  std::vector<int> row;
  for (localint i = 0; i < nrows; ++i) {
    const int nn = num(std::size_t(i));
    row.assign(nn, 0);
    for (int jj = 0; jj < nn; ++jj)
      row[std::size_t(jj)] = neigh(std::size_t(i), std::size_t(jj));
    std::sort(row.begin(), row.end(), [&](int a, int b) {
      const std::size_t ja = std::size_t(a), jb = std::size_t(b);
      if (tag(ja) != tag(jb)) return tag(ja) < tag(jb);
      if (x(ja, 0) != x(jb, 0)) return x(ja, 0) < x(jb, 0);
      if (x(ja, 1) != x(jb, 1)) return x(ja, 1) < x(jb, 1);
      return x(ja, 2) < x(jb, 2);
    });
    for (int jj = 0; jj < nn; ++jj)
      neigh(std::size_t(i), std::size_t(jj)) = row[std::size_t(jj)];
  }
  list.k_neighbors.modify<kk::Host>();
}

void Neighbor::build_host(const Atom& atom, const Domain& domain) {
  require(cutoff > 0.0, "neighbor cutoff not set");
  const double cutneigh = cutghost();
  const double cutsq = cutneigh * cutneigh;

  BinGrid grid;
  grid.build(atom, domain, cutneigh);

  const auto x = atom.k_x.h_view;
  const localint nlocal = atom.nlocal;
  require(!ghost_rows || style == NeighStyle::Full,
          "ghost rows require a full neighbor list");
  const localint nrows = ghost_rows ? atom.nall() : nlocal;
  const PairAcceptance accept(nlocal, style, newton);

  list.style = style;
  list.newton = newton;
  list.inum = nlocal;
  list.gnum = nrows - nlocal;

  // Pass 1: count per-atom neighbors.
  std::vector<int> counts(std::size_t(std::max<localint>(nrows, 1)), 0);
  auto for_candidates = [&](localint i, auto&& fn) {
    const double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                          x(std::size_t(i), 2)};
    int bc[3];
    for (int d = 0; d < 3; ++d) {
      bc[d] = std::clamp(int((xi[d] - grid.lo[d]) / grid.binsize[d]), 0,
                         grid.nbin[d] - 1);
    }
    for (int bx = std::max(0, bc[0] - 1);
         bx <= std::min(grid.nbin[0] - 1, bc[0] + 1); ++bx)
      for (int by = std::max(0, bc[1] - 1);
           by <= std::min(grid.nbin[1] - 1, bc[1] + 1); ++by)
        for (int bz = std::max(0, bc[2] - 1);
             bz <= std::min(grid.nbin[2] - 1, bc[2] + 1); ++bz)
          for (int j : grid.bins[std::size_t(grid.index(bx, by, bz))]) {
            if (!accept(x, i, j)) continue;
            const double dx = xi[0] - x(std::size_t(j), 0);
            const double dy = xi[1] - x(std::size_t(j), 1);
            const double dz = xi[2] - x(std::size_t(j), 2);
            if (dx * dx + dy * dy + dz * dz <= cutsq) fn(j);
          }
  };

  int maxn = 0;
  for (localint i = 0; i < nrows; ++i) {
    int c = 0;
    for_candidates(i, [&](int) { ++c; });
    counts[std::size_t(i)] = c;
    maxn = std::max(maxn, c);
  }
  list.maxneighs = maxn;

  // Pass 2: fill the 2-D table.
  list.k_neighbors.realloc(std::size_t(std::max<localint>(nrows, 1)),
                           std::size_t(std::max(maxn, 1)));
  list.k_numneigh.realloc(std::size_t(std::max<localint>(nrows, 1)));
  auto neigh = list.k_neighbors.h_view;
  auto num = list.k_numneigh.h_view;
  for (localint i = 0; i < nrows; ++i) {
    int c = 0;
    for_candidates(i, [&](int j) { neigh(std::size_t(i), std::size_t(c++)) = j; });
    num(std::size_t(i)) = c;
  }
  list.k_neighbors.modify<kk::Host>();
  list.k_numneigh.modify<kk::Host>();

  // Pass 3: partition owned rows into interior (no ghost neighbor) and
  // boundary, enabling the overlapped force phase to start interior work
  // before the halo exchange lands.
  list.ninterior = 0;
  list.nboundary = 0;
  list.k_interior.realloc(std::size_t(std::max<localint>(nlocal, 1)));
  list.k_boundary.realloc(std::size_t(std::max<localint>(nlocal, 1)));
  auto interior = list.k_interior.h_view;
  auto boundary = list.k_boundary.h_view;
  for (localint i = 0; i < nlocal; ++i) {
    bool ghost_free = true;
    const int nn = num(std::size_t(i));
    for (int jj = 0; jj < nn; ++jj) {
      if (neigh(std::size_t(i), std::size_t(jj)) >= nlocal) {
        ghost_free = false;
        break;
      }
    }
    if (ghost_free)
      interior(std::size_t(list.ninterior++)) = i;
    else
      boundary(std::size_t(list.nboundary++)) = i;
  }
  list.k_interior.modify<kk::Host>();
  list.k_boundary.modify<kk::Host>();

  ++nbuilds;
}

bool Neighbor::wants_rebuild(bigint step, const Atom& atom) const {
  const bigint ago = step - last_build;
  if (ago < bigint(delay)) return false;
  if (ago % bigint(std::max(1, every)) != 0) return false;
  if (!check) return true;
  return check_distance(atom);
}

void Neighbor::note_dangerous(bigint step) {
  if (!check) return;
  // Triggered on the very first step the settings allowed a rebuild: the
  // atoms were probably past the trigger earlier, while forces were still
  // being computed from the stale list.
  const bigint earliest = std::max<bigint>(std::max(1, every), delay);
  if (step - last_build == earliest) ++ndanger;
}

bool Neighbor::check_distance(const Atom& atom) const {
  if (xhold_.size() != std::size_t(atom.nlocal) * 3) return true;
  const double trigger = 0.25 * skin * skin;  // (skin/2)^2
  const auto x = atom.k_x.h_view;
  for (localint i = 0; i < atom.nlocal; ++i) {
    double rsq = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double dd =
          x(std::size_t(i), std::size_t(d)) - xhold_[std::size_t(i) * 3 + std::size_t(d)];
      rsq += dd * dd;
    }
    if (rsq > trigger) return true;
  }
  return false;
}

void Neighbor::store_build_positions(const Atom& atom) {
  xhold_.resize(std::size_t(atom.nlocal) * 3);
  const auto x = atom.k_x.h_view;
  for (localint i = 0; i < atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      xhold_[std::size_t(i) * 3 + std::size_t(d)] =
          x(std::size_t(i), std::size_t(d));
}

NeighborList brute_force_list(const Atom& atom, const Domain& /*domain*/,
                              double cutoff, NeighStyle style, bool newton,
                              localint nlocal, bool ghost_rows) {
  const auto x = atom.k_x.h_view;
  const double cutsq = cutoff * cutoff;
  const PairAcceptance accept(nlocal, style, newton);
  const localint nrows = ghost_rows ? atom.nall() : nlocal;
  NeighborList out;
  out.style = style;
  out.newton = newton;
  out.inum = nlocal;
  out.gnum = nrows - nlocal;

  std::vector<std::vector<int>> rows{std::size_t(std::max<localint>(nrows, 1))};
  for (localint i = 0; i < nrows; ++i) {
    for (localint j = 0; j < atom.nall(); ++j) {
      if (!accept(x, i, j)) continue;
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      if (dx * dx + dy * dy + dz * dz <= cutsq)
        rows[std::size_t(i)].push_back(j);
    }
  }
  // maxneighs is the true max row length (host-build semantics: no floor);
  // the table itself still allocates at least one column.
  int maxn = 0;
  for (const auto& r : rows) maxn = std::max(maxn, int(r.size()));
  out.maxneighs = maxn;
  out.k_neighbors.realloc(std::size_t(std::max<localint>(nrows, 1)),
                          std::size_t(std::max(maxn, 1)));
  out.k_numneigh.realloc(std::size_t(std::max<localint>(nrows, 1)));
  for (localint i = 0; i < nrows; ++i) {
    out.k_numneigh.h_view(std::size_t(i)) = int(rows[std::size_t(i)].size());
    for (std::size_t c = 0; c < rows[std::size_t(i)].size(); ++c)
      out.k_neighbors.h_view(std::size_t(i), c) = rows[std::size_t(i)][c];
  }
  out.k_neighbors.modify<kk::Host>();
  out.k_numneigh.modify<kk::Host>();
  return out;
}

}  // namespace mlk
