// Simulation — the top-level container tying together atoms, domain,
// neighbor lists, communication, the pair style, fixes, and thermo output.
// Equivalent to the LAMMPS class of the same role; one instance per rank.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comm/simmpi.hpp"
#include "engine/atom.hpp"
#include "engine/comm_pair.hpp"
#include "engine/compute.hpp"
#include "engine/domain.hpp"
#include "engine/fix.hpp"
#include "engine/neighbor.hpp"
#include "engine/pair.hpp"
#include "engine/thermo.hpp"
#include "engine/units.hpp"
#include "io/fault.hpp"
#include "kokkos/instance.hpp"
#include "util/timer.hpp"

namespace mlk {

namespace tools {
class ChromeTrace;
class KernelTimer;
class MemorySpaceTracker;
}  // namespace tools

class Simulation {
 public:
  Simulation();
  /// Flushes and deregisters any profiling tools owned by this Simulation
  /// (registered via the `profile` / `trace` input commands).
  ~Simulation();

  Units units;
  double dt = 0.005;
  bigint ntimestep = 0;

  Atom atom;
  Domain domain;
  Neighbor neighbor;
  CommBrick comm;
  std::unique_ptr<Pair> pair;
  std::vector<std::unique_ptr<Fix>> fixes;
  Thermo thermo;
  TimerSet timers;

  /// Non-owning; null in serial runs.
  simmpi::Comm* mpi = nullptr;

  /// What an unsuffixed style resolves to when the global suffix is active
  /// ("" = plain host styles; "kk" = Kokkos device; "kk/host").
  std::string global_suffix;

  /// Input-script newton override: -1 = use the pair style's preference.
  int newton_override = -1;

  // --- comm/compute overlap (docs/EXECUTION_MODEL.md) ---
  /// Enabled by the `overlap on` input command or MLK_OVERLAP=1. When the
  /// pair style also supports the interior/boundary split for the current
  /// neighbor list, non-rebuild steps launch the interior force pass on one
  /// DeviceInstance while the halo exchange runs on another.
  bool overlap_enabled = false;

  /// True when the next force phase will actually take the overlapped path.
  bool overlap_active() const;

  /// Lazily created execution-space instances: one for asynchronous force
  /// kernels, one for the halo exchange. Per-Simulation (per-rank), so
  /// ChromeTrace shows a pair of instance tracks per rank.
  kk::DeviceInstance& instance_compute();
  kk::DeviceInstance& instance_comm();

  // --- checkpoint/restart (src/io) ---
  /// Periodic checkpointing: every `restart_every` steps the Verlet loop
  /// writes `restart_base.<step>[.<rank>]` (0 = off). Checkpoint steps force
  /// a neighbor rebuild so a resumed run reproduces the writer's neighbor
  /// list — the basis of the bitwise-identical-resume guarantee.
  bigint restart_every = 0;
  std::string restart_base;

  /// Fault injection hook, armed by `fault_inject <step>` or MLK_FAULT_STEP;
  /// fires mid-step (after the first integration half), where a crash loses
  /// the most state.
  io::FaultInjector fault;

  // --- observability (src/tools) ---
  /// Tools registered by the `profile on` / `trace <file>` input commands.
  /// Held here so `profile dump` can reach them and so the destructor can
  /// flush + deregister; the kk::profiling registry owns dispatch.
  std::shared_ptr<tools::KernelTimer> profile_timer;
  std::shared_ptr<tools::MemorySpaceTracker> profile_memory;
  std::shared_ptr<tools::ChromeTrace> tracer;

  /// Write a checkpoint of the current state to `base[.<rank>]`. Marks the
  /// next run for a full setup so the continuing process and a process
  /// resumed from this file take bitwise-identical trajectories.
  void write_restart(const std::string& base);

  void set_units(const std::string& which);

  /// Prepare for a run: decide neighbor settings from the pair style,
  /// build ghosts and the first neighbor list, evaluate initial forces.
  void setup();

  /// Velocity-Verlet time integration for nsteps (requires setup()).
  void run(bigint nsteps);

  /// Evaluate forces for the current configuration (zeroes, pair->compute,
  /// reverse communication when the list exploits Newton's third law).
  void compute_forces(bool eflag);

  // --- global diagnostics (allreduced across ranks when mpi is set) ---
  bigint global_natoms();
  double kinetic_energy();
  double temperature();
  double potential_energy();
  double pressure();

  double allreduce_sum(double v);
  bigint allreduce_sum(bigint v);

  bool setup_done = false;

 private:
  friend class Verlet;
  void rebuild_neighbors();

  /// Overlapped force phase for non-rebuild steps: interior pair kernel on
  /// instance_compute() concurrent with forward_positions on
  /// instance_comm(); per-instance fences (never a global kk::fence), then
  /// the boundary pass. Bitwise-identical forces to the serialized path.
  void compute_forces_overlap(bool eflag);

  std::unique_ptr<kk::DeviceInstance> instance_compute_;
  std::unique_ptr<kk::DeviceInstance> instance_comm_;
};

/// Velocity-Verlet driver (LAMMPS's Verlet integrate style).
class Verlet {
 public:
  explicit Verlet(Simulation& sim) : sim_(sim) {}
  void run(bigint nsteps);

 private:
  Simulation& sim_;
};

}  // namespace mlk
