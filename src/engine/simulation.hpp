// Simulation — the top-level container tying together atoms, domain,
// neighbor lists, communication, the pair style, fixes, and thermo output.
// Equivalent to the LAMMPS class of the same role; one instance per rank.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comm/simmpi.hpp"
#include "engine/atom.hpp"
#include "engine/atom_sort.hpp"
#include "engine/balance.hpp"
#include "engine/comm_pair.hpp"
#include "engine/compute.hpp"
#include "engine/domain.hpp"
#include "engine/fix.hpp"
#include "engine/neighbor.hpp"
#include "engine/pair.hpp"
#include "engine/thermo.hpp"
#include "engine/units.hpp"
#include "io/fault.hpp"
#include "kokkos/instance.hpp"
#include "util/timer.hpp"

namespace mlk {

namespace tools {
class ChromeTrace;
class KernelTimer;
class MemorySpaceTracker;
namespace telemetry {
struct SimTelemetry;
struct TelemetrySummary;
}  // namespace telemetry
}  // namespace tools

class Simulation {
 public:
  Simulation();
  /// Flushes and deregisters any profiling tools owned by this Simulation
  /// (registered via the `profile` / `trace` input commands).
  ~Simulation();

  Units units;
  double dt = 0.005;
  bigint ntimestep = 0;

  Atom atom;
  Domain domain;
  Neighbor neighbor;
  CommBrick comm;
  /// Spatial reorder of owned atoms every N rebuilds (`sort every <N>` /
  /// MLK_SORT; docs/DECOMPOSITION.md).
  AtomSorter sorter;
  /// RCB rebalancing of the sub-domain cuts (`balance rcb <thresh>`).
  Balancer balancer;
  std::unique_ptr<Pair> pair;
  std::vector<std::unique_ptr<Fix>> fixes;
  Thermo thermo;
  TimerSet timers;

  /// Non-owning; null in serial runs.
  simmpi::Comm* mpi = nullptr;

  /// What an unsuffixed style resolves to when the global suffix is active
  /// ("" = plain host styles; "kk" = Kokkos device; "kk/host").
  std::string global_suffix;

  /// Input-script newton override: -1 = use the pair style's preference.
  int newton_override = -1;

  // --- comm/compute overlap (docs/EXECUTION_MODEL.md) ---
  /// Enabled by the `overlap on` input command or MLK_OVERLAP=1. When the
  /// pair style also supports the interior/boundary split for the current
  /// neighbor list, non-rebuild steps launch the interior force pass on one
  /// DeviceInstance while the halo exchange runs on another.
  bool overlap_enabled = false;

  /// True when the next force phase will actually take the overlapped path.
  bool overlap_active() const;

  /// Lazily created execution-space instances: one for asynchronous force
  /// kernels, one for the halo exchange. Per-Simulation (per-rank), so
  /// ChromeTrace shows a pair of instance tracks per rank.
  kk::DeviceInstance& instance_compute();
  kk::DeviceInstance& instance_comm();

  // --- checkpoint/restart (src/io) ---
  /// Periodic checkpointing: every `restart_every` steps the Verlet loop
  /// writes `restart_base.<step>[.<rank>]` (0 = off). Checkpoint steps force
  /// a neighbor rebuild so a resumed run reproduces the writer's neighbor
  /// list — the basis of the bitwise-identical-resume guarantee.
  bigint restart_every = 0;
  std::string restart_base;

  /// Fault injection hook, armed by `fault_inject <step>` or MLK_FAULT_STEP;
  /// fires mid-step (after the first integration half), where a crash loses
  /// the most state.
  io::FaultInjector fault;

  // --- observability (src/tools) ---
  /// Tools registered by the `profile on` / `trace <file>` input commands.
  /// Held here so `profile dump` can reach them and so the destructor can
  /// flush + deregister; the kk::profiling registry owns dispatch.
  std::shared_ptr<tools::KernelTimer> profile_timer;
  std::shared_ptr<tools::MemorySpaceTracker> profile_memory;
  std::shared_ptr<tools::ChromeTrace> tracer;

  /// Live telemetry block (docs/OBSERVABILITY.md): Verlet::begin attaches
  /// it when the hub is streaming; the destructor — or, for server jobs,
  /// the scheduler at job retirement — detaches with a final drain. The
  /// label/job id tag every sample this Simulation publishes.
  std::shared_ptr<tools::telemetry::SimTelemetry> telemetry;
  std::string telemetry_label = "main";
  int telemetry_job_id = -1;

  /// Detach from the telemetry hub, final-draining this Simulation's rings
  /// into the stream; fills `summary` when non-null (the batch server
  /// copies it into JobResult). No-op when never attached.
  void detach_telemetry(tools::telemetry::TelemetrySummary* summary = nullptr);

  /// Flush and deregister the profiling tools this Simulation registered
  /// (profile/trace input commands). The destructor calls this, but the
  /// batch server calls it explicitly when a job retires so a long server
  /// run flushes per-job output at job end, not at process exit.
  void flush_tools();

  /// Write a checkpoint of the current state to `base[.<rank>]`. Marks the
  /// next run for a full setup so the continuing process and a process
  /// resumed from this file take bitwise-identical trajectories.
  void write_restart(const std::string& base);

  void set_units(const std::string& which);

  /// Prepare for a run: decide neighbor settings from the pair style,
  /// build ghosts and the first neighbor list, evaluate initial forces.
  void setup();

  /// Everything run() does before entering the Verlet loop: setup() when
  /// needed plus initialization of fixes added since the last run. The
  /// phase-driven stepping path (src/server's scheduler) calls this once,
  /// then drives a Verlet instance phase by phase.
  void prepare_run();

  /// Velocity-Verlet time integration for nsteps (requires setup()).
  void run(bigint nsteps);

  /// Evaluate forces for the current configuration (zeroes, pair->compute,
  /// reverse communication when the list exploits Newton's third law).
  void compute_forces(bool eflag);

  /// Force-phase epilogue when the pair kernel itself ran externally — the
  /// server's cross-job batched dispatch (docs/SERVER.md) computes pair
  /// forces in a fused launch and then calls this for the tail of
  /// compute_forces(): reverse force communication when the list needs it,
  /// then the fixes' post_force hooks.
  void finish_external_forces();

  // --- global diagnostics (allreduced across ranks when mpi is set) ---
  bigint global_natoms();
  double kinetic_energy();
  double temperature();
  double potential_energy();
  double pressure();

  double allreduce_sum(double v);
  bigint allreduce_sum(bigint v);

  bool setup_done = false;

 private:
  friend class Verlet;
  void rebuild_neighbors();

  /// Overlapped force phase for non-rebuild steps: interior pair kernel on
  /// instance_compute() concurrent with forward_positions on
  /// instance_comm(); per-instance fences (never a global kk::fence), then
  /// the boundary pass. Bitwise-identical forces to the serialized path.
  void compute_forces_overlap(bool eflag);

  std::unique_ptr<kk::DeviceInstance> instance_compute_;
  std::unique_ptr<kk::DeviceInstance> instance_comm_;
};

/// Velocity-Verlet driver (LAMMPS's Verlet integrate style).
///
/// Two ways to drive it:
///   * run(nsteps) — the classic single-simulation loop.
///   * phase by phase — begin(nsteps) once, then
///       { auto p = step_begin(); step_force(p); step_end(p); }
///     until done(), then finish(). run() is composed of exactly these
///     calls, so both drivings produce bitwise-identical trajectories. The
///     split exists for the batch server (src/server): a scheduler
///     interleaves the phases of many co-resident Simulations and may
///     replace step_force with a cross-job fused launch.
class Verlet {
 public:
  explicit Verlet(Simulation& sim) : sim_(sim) {}

  /// One step's decisions, made once in step_begin and consumed by the
  /// later phases of the same step.
  struct Phase {
    bool rebuild = false;     // neighbor list was rebuilt this step
    bool overlap = false;     // force phase takes the overlapped path
    bool eflag = false;       // energy/virial tallies requested
    bool checkpoint = false;  // periodic restart write at end of step
  };

  void begin(bigint nsteps);
  bool done() const { return step_ >= nsteps_; }
  /// Advance the step counter, decide rebuild/overlap/eflag/checkpoint,
  /// run the first integration half, and bring ghosts up to date (full
  /// rebuild or halo forward; the overlapped path defers the forward).
  Phase step_begin();
  /// Force evaluation for this step (pair + post_force fixes).
  void step_force(const Phase& p);
  /// Second integration half, end_of_step fixes, checkpoint/thermo output.
  void step_end(const Phase& p);
  void finish();

  void run(bigint nsteps);

 private:
  /// Push this step's StepSample (timing/launch deltas) into the sim's
  /// telemetry ring and take a coordinate capture on the configured
  /// cadence. No-op unless the hub is streaming.
  void publish_telemetry(const Phase& p);

  Simulation& sim_;
  bigint nsteps_ = 0;
  bigint step_ = 0;
  std::map<std::string, double> timers_before_;
  bigint nbuilds_before_ = 0;
  bigint ndanger_before_ = 0;
  bigint nretries_before_ = 0;
  Timer loop_timer_;
};

}  // namespace mlk
