// CommBrick — LAMMPS-style 6-swap brick communication.
//
// Works in two modes through the same code path:
//  * serial (mpi == nullptr): every swap is a self-exchange, producing
//    periodic-image ghost atoms;
//  * simmpi (mpi != nullptr): swaps are sendrecv pairs with the face
//    neighbors of this rank's brick, exactly the MPI pattern of the paper's
//    multi-node runs (packing, exchanging, unpacking, with pbc shifts
//    applied at the boundary bricks).
//
// Swaps are processed dimension by dimension (x, then y, then z), with
// atoms received in earlier dimensions eligible for later dimensions, which
// populates edge and corner ghost regions without diagonal messages.
#pragma once

#include <vector>

#include "comm/simmpi.hpp"
#include "engine/atom.hpp"
#include "engine/domain.hpp"

namespace mlk {

class CommBrick {
 public:
  simmpi::Comm* mpi = nullptr;  // not owned; null = serial
  double cutghost = 0.0;

  /// Validate decomposition against the ghost cutoff.
  void setup(const Domain& domain) const;

  /// Build ghost atoms and record the swap plan used by forward/reverse.
  void borders(Atom& atom, const Domain& domain);

  /// Update ghost positions from owners (every timestep between rebuilds).
  void forward_positions(Atom& atom);

  /// Update ghost charges from owners (QEq outer loop).
  void forward_charges(Atom& atom);

  /// Update ghost copies of an arbitrary per-atom scalar field from owners —
  /// the mid-evaluation communication EAM's embedding derivative needs
  /// (paper Fig. 1). `field` must have extent >= atom.nall().
  void forward_scalar(kk::DualView<double, 1>& field);

  /// Fold ghost forces back onto owners — required by half lists with
  /// newton on. Processes swaps in reverse order.
  void reverse_forces(Atom& atom);

  /// Migrate owned atoms whose positions left this rank's sub-box.
  /// Call after integration, before borders, on rebuild steps.
  void exchange(Atom& atom, const Domain& domain);

  /// Exchange to a fixed point: repeat exchange() passes until every owned
  /// atom sits inside its rank's sub-box globally. One exchange() pass moves
  /// an atom at most one rank per dimension — enough between neighbor
  /// rebuilds, but after `balance rcb` moves the cut planes an atom may
  /// belong several ranks away. Each pass strictly advances every misplaced
  /// atom toward its home rank, so convergence needs at most sum(np)-3
  /// passes (the allreduced misplaced count reaches zero sooner in
  /// practice). Requires nghost == 0, like exchange().
  void migrate(Atom& atom, const Domain& domain);

  // --- statistics (consumed by the perf/network model) ---
  localint nghost() const { return nghost_; }
  bigint forward_doubles_per_step() const;  // payload volume of one fwd pass

 private:
  struct Swap {
    int dim = 0;
    bool lo = false;              // sending toward the lo face neighbor
    std::vector<localint> sendlist;
    double shift = 0.0;           // pbc shift applied to dim coordinate
    localint recv_start = 0;
    localint recv_count = 0;
    int sendrank = -1;
    int recvrank = -1;
  };

  std::vector<Swap> swaps_;
  localint nghost_ = 0;
  int tag_seq_ = 0;

  /// `scan_limit`: only atoms with index < scan_limit are eligible to send —
  /// owned atoms plus ghosts received in *earlier* dimensions (prevents the
  /// hi swap from re-sending the lo swap's fresh ghosts).
  void do_border_swap(Atom& atom, const Domain& domain, int dim, bool lo,
                      localint scan_limit);
};

}  // namespace mlk
