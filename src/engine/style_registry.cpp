#include "engine/style_registry.hpp"

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

StyleRegistry& StyleRegistry::instance() {
  static StyleRegistry reg;
  return reg;
}

void StyleRegistry::add_pair(const std::string& name, PairCreator c) {
  pairs_[name] = {std::move(c), false};
}

void StyleRegistry::add_pair_kokkos(const std::string& base, PairCreator c) {
  pairs_[base + "/kk"] = {std::move(c), true};
}

void StyleRegistry::add_fix(const std::string& name, FixCreator c) {
  fixes_[name] = {std::move(c), false};
}

void StyleRegistry::add_fix_kokkos(const std::string& base, FixCreator c) {
  fixes_[base + "/kk"] = {std::move(c), true};
}

void StyleRegistry::add_compute(const std::string& name, ComputeCreator c) {
  computes_[name] = std::move(c);
}

namespace {

/// Resolve a possibly suffixed name to (registered key, exec space).
/// "lj/cut"           -> ("lj/cut", Host) or ("lj/cut/kk", space) w/ global sfx
/// "lj/cut/kk"        -> ("lj/cut/kk", Device)
/// "lj/cut/kk/host"   -> ("lj/cut/kk", Host)
/// "lj/cut/kk/device" -> ("lj/cut/kk", Device)
template <class Map>
std::pair<std::string, ExecSpaceKind> resolve(const Map& map,
                                              const std::string& name,
                                              const std::string& global_suffix,
                                              const char* what) {
  std::string sfx;
  const std::string base = strip_style_suffix(name, &sfx);
  if (!sfx.empty()) {
    const std::string key = base + "/kk";
    require(map.count(key) != 0,
            std::string(what) + " style '" + key + "' not registered");
    return {key, sfx == "/kk/host" ? ExecSpaceKind::Host
                                   : ExecSpaceKind::Device};
  }
  // Unsuffixed: honor the global suffix when a Kokkos variant exists.
  if (!global_suffix.empty()) {
    const std::string key = base + "/kk";
    if (map.count(key)) {
      return {key, global_suffix == "kk/host" || global_suffix == "host"
                       ? ExecSpaceKind::Host
                       : ExecSpaceKind::Device};
    }
  }
  require(map.count(base) != 0,
          std::string(what) + " style '" + base + "' not registered");
  return {base, ExecSpaceKind::Host};
}

/// The unambiguous re-creatable name for a resolved style: host-resident
/// Kokkos variants keep an explicit "/host" so a checkpoint can restore the
/// exact variant (host and device differ in neighbor-list style and newton
/// setting, which the bitwise-resume guarantee depends on).
std::string resolved_name(const std::string& key, ExecSpaceKind space) {
  if (space == ExecSpaceKind::Host && key.ends_with("/kk"))
    return key + "/host";
  return key;
}

}  // namespace

std::unique_ptr<Pair> StyleRegistry::create_pair(
    const std::string& name, const std::string& global_suffix) {
  auto [key, space] = resolve(pairs_, name, global_suffix, "pair");
  auto p = pairs_.at(key).create(space);
  p->style_name = resolved_name(key, space);
  return p;
}

std::unique_ptr<Fix> StyleRegistry::create_fix(
    const std::string& name, const std::string& global_suffix) {
  auto [key, space] = resolve(fixes_, name, global_suffix, "fix");
  auto f = fixes_.at(key).create(space);
  f->style_name = resolved_name(key, space);
  return f;
}

std::unique_ptr<Compute> StyleRegistry::create_compute(
    const std::string& name) {
  require(computes_.count(name) != 0,
          "compute style '" + name + "' not registered");
  auto c = computes_.at(name)();
  c->style_name = name;
  return c;
}

bool StyleRegistry::has_pair(const std::string& name) const {
  return pairs_.count(name) != 0;
}

std::vector<std::string> StyleRegistry::pair_names() const {
  std::vector<std::string> out;
  out.reserve(pairs_.size());
  for (const auto& [k, v] : pairs_) out.push_back(k);
  return out;
}

}  // namespace mlk
