#include "engine/simulation.hpp"

#include <cmath>
#include <cstdlib>

#include "io/restart.hpp"
#include "io/restart_writer.hpp"
#include "kokkos/profiling.hpp"
#include "tools/chrome_trace.hpp"
#include "tools/kernel_timer.hpp"
#include "tools/memory_tracker.hpp"
#include "tools/telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace mlk {

Simulation::Simulation() {
  units = Units::make("lj");
  fault.arm_from_env();
  if (const char* s = std::getenv("MLK_OVERLAP"))
    overlap_enabled = std::atoi(s) != 0;
  // MLK_SORT=<N> mirrors `sort every <N>` (0 = off), so CI smokes can turn
  // the spatial sort on without editing scripts.
  if (const char* s = std::getenv("MLK_SORT")) sorter.every = std::atoi(s);
  // MLK_NEIGH=host|device mirrors the `neighbor style` input command, so CI
  // smokes can flip the build path without editing scripts.
  if (const char* s = std::getenv("MLK_NEIGH")) {
    const std::string which(s);
    if (which == "device")
      neighbor.build_path = NeighBuildPath::Device;
    else if (which == "host" || which.empty())
      neighbor.build_path = NeighBuildPath::Host;
    else
      fatal("MLK_NEIGH: expected 'host' or 'device', got '" + which + "'");
  }
}

Simulation::~Simulation() {
  detach_telemetry();
  // Tools registered by input commands flush on owner destruction so tests
  // and scripted runs get their files without waiting for process exit.
  flush_tools();
}

void Simulation::flush_tools() {
  if (profile_timer) {
    kk::profiling::deregister_tool(profile_timer);
    profile_timer->finalize();
    profile_timer.reset();
  }
  if (profile_memory) {
    kk::profiling::deregister_tool(profile_memory);
    profile_memory->finalize();
    profile_memory.reset();
  }
  if (tracer) {
    kk::profiling::deregister_tool(tracer);
    tracer->finalize();
    tracer.reset();
  }
}

void Simulation::detach_telemetry(tools::telemetry::TelemetrySummary* summary) {
  if (!telemetry) return;
  tools::telemetry::Hub::instance().detach_sim(telemetry, summary);
  telemetry.reset();
}

void Simulation::write_restart(const std::string& base) {
  io::RestartWriter().write(*this, base);
  // A resumed process goes through setup() (ghost + neighbor rebuild from
  // the saved positions); force the same path on the writer's next run so
  // both trajectories stay bitwise-identical.
  setup_done = false;
}

void Simulation::set_units(const std::string& which) {
  units = Units::make(which);
  dt = units.dt_default;
  neighbor.skin = units.skin_default;
}

double Simulation::allreduce_sum(double v) {
  return mpi ? mpi->allreduce_sum(v) : v;
}

bigint Simulation::allreduce_sum(bigint v) {
  return mpi ? mpi->allreduce_sum(v) : v;
}

bigint Simulation::global_natoms() {
  return allreduce_sum(bigint(atom.nlocal));
}

void Simulation::rebuild_neighbors() {
  kk::profiling::ScopedRegion region("Verlet::neighbor");
  ScopedTimer t(timers, "Neigh");
  atom.clear_ghosts();

  // Load balancing happens at rebuilds, where ghosts are already dropped and
  // migration piggybacks on the exchange path. Rebuilds are a global
  // decision, so the collectives below run on every rank in lockstep; the
  // allreduced ratio makes the rebalance trigger identical everywhere.
  bool migrated = false;
  balancer.last_imbalance = Balancer::imbalance(atom, mpi);
  if (balancer.enabled) {
    kk::profiling::count_event("balance.imbalance_ratio",
                               balancer.last_imbalance);
    if (balancer.last_imbalance > balancer.thresh &&
        balancer.recompute_cuts(atom, domain, mpi,
                                /*min_width=*/comm.cutghost * 1.01)) {
      comm.setup(domain);  // validate the new cuts against the ghost cutoff
      comm.migrate(atom, domain);
      ++balancer.nbalances;
      migrated = true;
    }
  }
  if (!migrated) comm.exchange(atom, domain);

  // Spatial sort between exchange and borders: ghosts are gone, so only the
  // owned rows permute; the list and partition below are built fresh from
  // the new order. Setup's rebuild must not advance the cadence: resuming
  // from a checkpoint replays setup() (as does the writer's own next run),
  // and an extra count here would shift every later sort off the schedule
  // the uninterrupted run follows, breaking bitwise-transparent restarts.
  if (setup_done) sorter.maybe_sort(atom, domain, neighbor.cutghost());

  comm.borders(atom, domain);
  neighbor.build(atom, domain);
  neighbor.store_build_positions(atom);
  neighbor.last_build = ntimestep;  // basis for the every/delay/ago decision
}

void Simulation::setup() {
  kk::profiling::ScopedRegion region("Simulation::setup");
  require(pair != nullptr, "no pair style defined");
  require(atom.nlocal > 0 || mpi != nullptr, "no atoms created");

  comm.mpi = mpi;  // serial when no simmpi communicator is attached
  pair->init(*this);
  neighbor.cutoff = pair->cutoff();
  neighbor.style = pair->neigh_style();
  neighbor.ghost_rows = pair->ghost_rows_needed();
  neighbor.newton =
      newton_override >= 0 ? newton_override != 0 : pair->newton();
  comm.cutghost = neighbor.cutghost();
  comm.setup(domain);

  for (auto& fix : fixes) {
    if (!fix->init_done) {
      fix->init(*this);
      fix->init_done = true;
    }
  }

  rebuild_neighbors();
  compute_forces(/*eflag=*/true);
  setup_done = true;
}

bool Simulation::overlap_active() const {
  return overlap_enabled && pair != nullptr &&
         pair->supports_overlap(neighbor.list);
}

kk::DeviceInstance& Simulation::instance_compute() {
  if (!instance_compute_)
    instance_compute_ = std::make_unique<kk::DeviceInstance>("compute");
  return *instance_compute_;
}

kk::DeviceInstance& Simulation::instance_comm() {
  if (!instance_comm_)
    instance_comm_ = std::make_unique<kk::DeviceInstance>("comm");
  return *instance_comm_;
}

void Simulation::compute_forces_overlap(bool eflag) {
  kk::profiling::ScopedRegion region("Verlet::force_overlap");
  kk::DeviceInstance& ic = instance_compute();
  kk::DeviceInstance& cc = instance_comm();

  // Launch the interior pair kernel asynchronously: interior rows reference
  // only owned atoms, so they need no ghost data and can run concurrently
  // with the halo exchange below. All DualView flag bookkeeping happens
  // inside compute_interior on this thread before the task is enqueued.
  {
    ScopedTimer t(timers, "Pair");
    pair->compute_interior(*this, eflag, ic);
  }

  // Halo exchange on the comm instance. forward_positions writes only ghost
  // rows (index >= nlocal) that the interior kernel never reads, so the two
  // tasks are data-race free. The Comm bucket charges the caller's wait.
  {
    ScopedTimer t(timers, "Comm");
    Atom* a = &atom;
    CommBrick* c = &comm;
    cc.enqueue("CommBrick::forward_positions", [a, c] {
      kk::profiling::ScopedRegion r("CommBrick::forward_positions");
      c->forward_positions(*a);
    });
    cc.fence();
  }

  // Boundary pass: needs the fresh ghosts AND the interior pass's scatter
  // done. Fence only the instances this phase launched on — never the
  // global device — so an unrelated instance (e.g. a tool's) keeps running.
  {
    ScopedTimer t(timers, "Pair");
    ic.fence();
    pair->compute_boundary(*this, eflag);
  }

  for (auto& fix : fixes) fix->post_force(*this);
}

void Simulation::compute_forces(bool eflag) {
  kk::profiling::ScopedRegion region("Verlet::force");
  // Pair and Comm buckets are disjoint (the end-of-run breakdown sums them
  // against loop time), so the Pair timer closes before reverse comm runs.
  {
    ScopedTimer t(timers, "Pair");
    // Zero forces in the pair style's execution space over owned + ghosts.
    if (pair->execution_space == ExecSpaceKind::Device)
      atom.zero_forces<kk::Device>();
    else
      atom.zero_forces<kk::Host>();

    pair->compute(*this, eflag);
  }

  // Ghost forces fold back onto their owners: half lists exploiting
  // Newton's third law, plus any style that writes ghost forces directly.
  if ((neighbor.style == NeighStyle::Half && neighbor.newton) ||
      pair->needs_reverse_comm) {
    ScopedTimer tc(timers, "Comm");
    comm.reverse_forces(atom);
  }
  for (auto& fix : fixes) fix->post_force(*this);
}

void Simulation::prepare_run() {
  if (!setup_done) setup();
  // Fixes added by the script since the last run still need initializing.
  for (auto& fix : fixes) {
    if (!fix->init_done) {
      fix->init(*this);
      fix->init_done = true;
    }
  }
}

void Simulation::run(bigint nsteps) {
  prepare_run();
  Verlet(*this).run(nsteps);
}

void Simulation::finish_external_forces() {
  if ((neighbor.style == NeighStyle::Half && neighbor.newton) ||
      pair->needs_reverse_comm) {
    ScopedTimer tc(timers, "Comm");
    comm.reverse_forces(atom);
  }
  for (auto& fix : fixes) fix->post_force(*this);
}

double Simulation::kinetic_energy() {
  atom.sync<kk::Host>(V_MASK | TYPE_MASK);
  const auto v = atom.k_v.h_view;
  const auto type = atom.k_type.h_view;
  double ke = 0.0;
  for (localint i = 0; i < atom.nlocal; ++i) {
    const double m = atom.mass_of_type(type(std::size_t(i)));
    ke += m * (v(std::size_t(i), 0) * v(std::size_t(i), 0) +
               v(std::size_t(i), 1) * v(std::size_t(i), 1) +
               v(std::size_t(i), 2) * v(std::size_t(i), 2));
  }
  return 0.5 * units.mvv2e * allreduce_sum(ke);
}

double Simulation::temperature() {
  const bigint n = global_natoms();
  if (n == 0) return 0.0;
  const double dof = 3.0 * double(n);
  return 2.0 * kinetic_energy() / (dof * units.boltz);
}

double Simulation::potential_energy() {
  return allreduce_sum(pair->eng_vdwl + pair->eng_coul);
}

double Simulation::pressure() {
  const bigint n = global_natoms();
  const double vol = domain.volume();
  const double t = temperature();
  double vsum = 0.0;
  for (int k = 0; k < 3; ++k) vsum += pair->virial[k];
  vsum = allreduce_sum(vsum);
  return (double(n) * units.boltz * t + vsum / 3.0) / vol * units.nktv2p;
}

void Verlet::begin(bigint nsteps) {
  Simulation& sim = sim_;
  nsteps_ = nsteps;
  step_ = 0;

  // Attach to the telemetry hub when it is streaming. Producer bookkeeping
  // (prev_*) seeds here so the first step's deltas are against run start.
  namespace tel = tools::telemetry;
  if (tel::active() && !sim.telemetry)
    sim.telemetry = tel::Hub::instance().attach_sim(sim.telemetry_label,
                                                    sim.telemetry_job_id);
  if (sim.telemetry) {
    tel::SimTelemetry& t = *sim.telemetry;
    t.prev_wall_s = 0.0;
    t.prev_pair_s = sim.timers.total("Pair");
    t.prev_neigh_s = sim.timers.total("Neigh");
    t.prev_comm_s = sim.timers.total("Comm");
    t.prev_launches = kk::profiling::total_launches_relaxed();
    t.prev_device_launches = kk::profiling::total_device_launches_relaxed();
    t.prev_valid = true;
  }

  sim.thermo.header();
  sim.thermo.record(sim);

  // The end-of-run breakdown reports this run only: remember what each
  // bucket held when the loop started and subtract at the end.
  timers_before_ = sim.timers.all();
  nbuilds_before_ = sim.neighbor.nbuilds;
  ndanger_before_ = sim.neighbor.ndanger;
  nretries_before_ = sim.neighbor.nretries();
  loop_timer_.start();
}

Verlet::Phase Verlet::step_begin() {
  Simulation& sim = sim_;
  ++sim.ntimestep;
  ++step_;

  Phase p;
  // Periodic checkpoint this step? Decided up front: the write happens at
  // end of step, but the step must also force a neighbor rebuild so a run
  // resumed from the file rebuilds the *same* list at setup (the bitwise
  // guarantee; LAMMPS likewise re-neighbors on restart outputs).
  p.checkpoint = sim.restart_every > 0 && !sim.restart_base.empty() &&
                 sim.ntimestep % sim.restart_every == 0;

  {
    kk::profiling::ScopedRegion r("Verlet::initial_integrate");
    for (auto& fix : sim.fixes) fix->initial_integrate(sim);
  }

  // Fault injection fires here — mid-step, integration half done but
  // forces/thermo not yet — the worst place a real node can die.
  sim.fault.maybe_fail(sim.ntimestep);

  // Neighbor list maintenance. The decision must be *global*: if any rank
  // rebuilds (entering the exchange/borders message pattern) all must.
  // The every/delay gate is identical on all ranks (builds are global, so
  // `ago` agrees); only the distance check is local and needs the
  // allreduce. Dangerous builds are counted after the global decision so
  // every rank's counter matches.
  bool rebuild = p.checkpoint;
  if (!rebuild) {
    rebuild = sim.neighbor.wants_rebuild(sim.ntimestep, sim.atom);
    if (sim.mpi) rebuild = sim.mpi->allreduce_max(rebuild ? 1.0 : 0.0) > 0.5;
    if (rebuild) sim.neighbor.note_dangerous(sim.ntimestep);
  }
  p.rebuild = rebuild;
  const bool thermo_step =
      sim.thermo.every > 0 && (sim.ntimestep % sim.thermo.every == 0);
  p.eflag = thermo_step || step_ == nsteps_;

  if (rebuild) {
    // Rebuild steps re-communicate ghosts inside rebuild_neighbors; the
    // force phase has nothing to overlap with.
    sim.rebuild_neighbors();
  } else if (sim.overlap_active()) {
    // Ghost forward happens inside the overlapped force phase, concurrent
    // with the interior pair kernel (docs/EXECUTION_MODEL.md).
    p.overlap = true;
  } else {
    kk::profiling::ScopedRegion r("Verlet::comm");
    ScopedTimer t(sim.timers, "Comm");
    sim.comm.forward_positions(sim.atom);
  }
  return p;
}

void Verlet::step_force(const Phase& p) {
  Simulation& sim = sim_;
  if (p.overlap)
    sim.compute_forces_overlap(p.eflag);
  else
    sim.compute_forces(p.eflag);
}

void Verlet::step_end(const Phase& p) {
  Simulation& sim = sim_;
  {
    kk::profiling::ScopedRegion r("Verlet::final_integrate");
    for (auto& fix : sim.fixes) fix->final_integrate(sim);
    for (auto& fix : sim.fixes) fix->end_of_step(sim);
  }

  if (p.checkpoint) {
    kk::profiling::ScopedRegion r("Verlet::output");
    ScopedTimer t(sim.timers, "Output");
    io::RestartWriter().write(
        sim, io::checkpoint_base(sim.restart_base, sim.ntimestep));
  }

  if (p.eflag) {
    kk::profiling::ScopedRegion r("Verlet::output");
    sim.thermo.record(sim);
  }

  publish_telemetry(p);
}

void Verlet::publish_telemetry(const Phase& p) {
  namespace tel = tools::telemetry;
  Simulation& sim = sim_;
  if (!sim.telemetry || !tel::active()) return;
  tel::SimTelemetry& t = *sim.telemetry;

  // Per-step deltas against the producer bookkeeping. The launch counters
  // are process-global relaxed atomics, so under the batch server a step's
  // delta includes concurrent jobs' launches — live telemetry trades exact
  // attribution for a wait-free producer path. Clamp against reset().
  const double wall = loop_timer_.seconds();
  const double pair = sim.timers.total("Pair");
  const double neigh = sim.timers.total("Neigh");
  const double comm = sim.timers.total("Comm");
  const std::uint64_t launches = kk::profiling::total_launches_relaxed();
  const std::uint64_t dev = kk::profiling::total_device_launches_relaxed();

  tel::StepSample s;
  s.step = sim.ntimestep;
  s.job_id = sim.telemetry_job_id;
  s.wall_ms = float((wall - t.prev_wall_s) * 1e3);
  s.pair_ms = float((pair - t.prev_pair_s) * 1e3);
  s.neigh_ms = float((neigh - t.prev_neigh_s) * 1e3);
  s.comm_ms = float((comm - t.prev_comm_s) * 1e3);
  s.launches = launches >= t.prev_launches
                   ? std::uint32_t(launches - t.prev_launches)
                   : 0;
  s.device_launches = dev >= t.prev_device_launches
                          ? std::uint32_t(dev - t.prev_device_launches)
                          : 0;
  s.rebuild = p.rebuild ? 1 : 0;
  s.overlap = p.overlap ? 1 : 0;
  s.nlocal = sim.atom.nlocal;
  s.imbalance = float(sim.balancer.last_imbalance);
  t.steps.push(s);

  t.prev_wall_s = wall;
  t.prev_pair_s = pair;
  t.prev_neigh_s = neigh;
  t.prev_comm_s = comm;
  t.prev_launches = launches;
  t.prev_device_launches = dev;

  // Periodic coordinate capture for in-situ analysis. The step loop pays
  // for one packed copy (plus a host sync that thermo steps do anyway);
  // RDF/MSD run on the sink thread.
  const int every = tel::Hub::instance().config().coords_every;
  if (every > 0 && sim.ntimestep % every == 0) {
    sim.atom.sync<kk::Host>(X_MASK | TAG_MASK);
    const auto x = sim.atom.k_x.h_view;
    const auto tag = sim.atom.k_tag.h_view;
    const std::size_t n = std::size_t(sim.atom.nlocal);
    tel::CoordCapture::Buf buf = t.coords.begin(n);
    for (std::size_t i = 0; i < n; ++i) {
      buf.x[3 * i + 0] = x(i, 0);
      buf.x[3 * i + 1] = x(i, 1);
      buf.x[3 * i + 2] = x(i, 2);
      buf.tag[i] = tag(i);
    }
    const double prd[3] = {sim.domain.prd(0), sim.domain.prd(1),
                           sim.domain.prd(2)};
    t.coords.end(sim.ntimestep, prd);
  }
}

void Verlet::finish() {
  Simulation& sim = sim_;
  NeighSummary neigh;
  neigh.builds = sim.neighbor.nbuilds - nbuilds_before_;
  neigh.dangerous = sim.neighbor.ndanger - ndanger_before_;
  neigh.retries = sim.neighbor.nretries() - nretries_before_;
  neigh.device = sim.neighbor.build_path == NeighBuildPath::Device;

  // Collective per-rank atom extremes for the imbalance summary line; must
  // run on every rank before breakdown()'s rank-0 print gate.
  BalanceSummary balance;
  const double nlocal = double(sim.atom.nlocal);
  if (sim.mpi != nullptr) {
    balance.max_atoms = sim.mpi->allreduce_max(nlocal);
    balance.min_atoms = sim.mpi->allreduce_min(nlocal);
    balance.avg_atoms =
        sim.mpi->allreduce_sum(nlocal) / double(sim.mpi->size());
  } else {
    balance.max_atoms = balance.min_atoms = balance.avg_atoms = nlocal;
  }
  balance.nbalances = sim.balancer.nbalances;
  balance.nsorts = sim.sorter.nsorts;

  sim.thermo.breakdown(sim, loop_timer_.seconds(), nsteps_, timers_before_,
                       neigh, balance);
}

void Verlet::run(bigint nsteps) {
  kk::profiling::ScopedRegion loop_region("Verlet::run");
  begin(nsteps);
  while (!done()) {
    const Phase p = step_begin();
    step_force(p);
    step_end(p);
  }
  finish();
}

}  // namespace mlk
