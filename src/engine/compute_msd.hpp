// compute msd — mean-square displacement of the owned atoms (LAMMPS
// `compute msd`), the standard transport diagnostic. Displacements unwrap
// through periodic boundaries by minimum image between consecutive
// evaluations, via the same MsdTracker the live telemetry sink uses for its
// in-situ MSD (tools/telemetry/insitu.hpp) — one definition of the physics
// for the scripted and the streaming path.
#pragma once

#include "engine/compute.hpp"
#include "tools/telemetry/insitu.hpp"

namespace mlk {

class Simulation;

class ComputeMSD : public Compute {
 public:
  /// MSD since the first evaluation (the first call sets the reference
  /// configuration and returns 0). Call on a cadence shorter than atoms
  /// need to cross half a box length, like any minimum-image unwrapper.
  double compute_scalar(Simulation& sim) override;

  /// Restart accumulation from the next evaluation's configuration.
  void reset() { tracker_.reset(); }

 private:
  tools::telemetry::MsdTracker tracker_;
};

void register_compute_msd();

}  // namespace mlk
