#include "engine/atom_sort.hpp"

#include <algorithm>
#include <cmath>

#include "engine/atom_vec_kokkos.hpp"
#include "kokkos/profiling.hpp"
#include "util/error.hpp"

namespace mlk {

namespace {

struct SortGrid {
  double lo[3];
  double binsize[3];
  int nbin[3];

  SortGrid(const Domain& domain, double bin_width) {
    require(bin_width > 0.0, "atom sort: bin width must be positive");
    for (int d = 0; d < 3; ++d) {
      lo[d] = domain.sublo[d];
      const double span = domain.subhi[d] - domain.sublo[d];
      nbin[d] = std::max(1, int(span / bin_width));
      binsize[d] = span / nbin[d];
    }
  }

  // Bin-major key, z fastest — the same traversal order BinGrid::index uses,
  // so sorted atoms walk the neighbor bins near-sequentially.
  int key(const double* x) const {
    int b[3];
    for (int d = 0; d < 3; ++d) {
      b[d] = int((x[d] - lo[d]) / binsize[d]);
      b[d] = std::clamp(b[d], 0, nbin[d] - 1);
    }
    return (b[0] * nbin[1] + b[1]) * nbin[2] + b[2];
  }

  int nbins() const { return nbin[0] * nbin[1] * nbin[2]; }
};

std::vector<int> bin_keys(const Atom& atom, const SortGrid& grid) {
  const auto x = atom.k_x.h_view;
  std::vector<int> keys(std::size_t(atom.nlocal));
  for (localint i = 0; i < atom.nlocal; ++i) {
    const double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                          x(std::size_t(i), 2)};
    keys[std::size_t(i)] = grid.key(xi);
  }
  return keys;
}

}  // namespace

std::vector<localint> AtomSorter::permutation_scalar(const Atom& atom,
                                                     const Domain& domain,
                                                     double bin_width) {
  const SortGrid grid(domain, bin_width);
  const auto keys = bin_keys(atom, grid);
  std::vector<localint> perm(std::size_t(atom.nlocal));
  for (localint i = 0; i < atom.nlocal; ++i) perm[std::size_t(i)] = i;
  std::stable_sort(perm.begin(), perm.end(), [&](localint a, localint b) {
    return keys[std::size_t(a)] < keys[std::size_t(b)];
  });
  return perm;
}

std::vector<localint> AtomSorter::permutation_binned(const Atom& atom,
                                                     const Domain& domain,
                                                     double bin_width) {
  const SortGrid grid(domain, bin_width);
  const auto keys = bin_keys(atom, grid);
  const std::size_t nbins = std::size_t(grid.nbins());

  // Counting sort: per-bin counts, exclusive scan into bin offsets, then an
  // in-index-order fill — stable within a bin by construction, so the result
  // matches the scalar stable_sort bitwise.
  std::vector<localint> count(nbins, 0);
  for (int k : keys) ++count[std::size_t(k)];
  std::vector<localint> offset(nbins, 0);
  localint run = 0;
  for (std::size_t b = 0; b < nbins; ++b) {
    offset[b] = run;
    run += count[b];
  }
  std::vector<localint> perm(std::size_t(atom.nlocal));
  for (localint i = 0; i < atom.nlocal; ++i)
    perm[std::size_t(offset[std::size_t(keys[std::size_t(i)])]++)] = i;
  return perm;
}

bool AtomSorter::maybe_sort(Atom& atom, const Domain& domain,
                            double bin_width) {
  if (every <= 0) return false;
  if (++builds_since_sort < every) return false;
  builds_since_sort = 0;

  kk::profiling::ScopedRegion region("AtomSorter::sort");
  atom.sync<kk::Host>(X_MASK);
  const auto perm = path == Path::Scalar
                        ? permutation_scalar(atom, domain, bin_width)
                        : permutation_binned(atom, domain, bin_width);
  AtomVecKokkos::reorder_owned(atom, perm);
  ++nsorts;
  return true;
}

}  // namespace mlk
