// fix nvt — Nosé-Hoover thermostat (single chain), the standard canonical
// integrator. Velocity-Verlet with a thermostat half-kick on either side,
// LAMMPS-style:
//   zeta' = (T/T_target - 1) / damp^2
//   v    *= exp(-zeta * dt/2)
// The conserved quantity H' = E + 0.5 * g kB T_t damp^2 zeta^2 +
// g kB T_t * integral(zeta dt) is tracked for tests.
#pragma once

#include "engine/fix.hpp"

namespace mlk {

class FixNVT : public Fix {
 public:
  /// args: <Tstart> <damp>
  void parse_args(const std::vector<std::string>& args) override;
  void initial_integrate(Simulation& sim) override;
  void final_integrate(Simulation& sim) override;
  void pack_restart(io::BinaryWriter& w) const override;
  void unpack_restart(io::BinaryReader& r) override;

  double t_target = 1.0;
  double damp = 1.0;

  /// Thermostat degree of freedom and its accumulated work (for the
  /// conserved-quantity check).
  double zeta() const { return zeta_; }
  double conserved_correction(Simulation& sim) const;

 private:
  void half_kick(Simulation& sim);
  double zeta_ = 0.0;
  double zeta_integral_ = 0.0;
};

void register_fix_nvt();

}  // namespace mlk
