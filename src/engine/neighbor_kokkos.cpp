#include "engine/neighbor_kokkos.hpp"

#include <algorithm>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk {

void NeighborKokkos::build(const Atom& atom, const Domain& domain) {
  require(cutoff > 0.0, "neighbor cutoff not set");
  const double cutneigh = cutghost();
  const double cutsq = cutneigh * cutneigh;

  // Host-side binning (cheap, O(N)) staged into device views.
  BinGrid grid;
  grid.build(atom, domain, cutneigh);
  int max_per_bin = 1;
  for (const auto& b : grid.bins)
    max_per_bin = std::max(max_per_bin, int(b.size()));
  const std::size_t nbins = grid.bins.size();

  kk::View2D<int, kk::Device> bin_atoms("neigh::bin_atoms", nbins,
                                        std::size_t(max_per_bin));
  kk::View1D<int, kk::Device> bin_count("neigh::bin_count", nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    bin_count(b) = int(grid.bins[b].size());
    for (std::size_t k = 0; k < grid.bins[b].size(); ++k)
      bin_atoms(b, k) = grid.bins[b][k];
  }

  // Atom data must be current on device.
  const_cast<Atom&>(atom).sync<kk::Device>(X_MASK);
  auto x = atom.k_x.d_view;
  const localint nlocal = atom.nlocal;
  const bool full = style == NeighStyle::Full;
  const bool newt = newton;

  const int nbx = grid.nbin[0], nby = grid.nbin[1], nbz = grid.nbin[2];
  const double glo0 = grid.lo[0], glo1 = grid.lo[1], glo2 = grid.lo[2];
  const double bs0 = grid.binsize[0], bs1 = grid.binsize[1],
               bs2 = grid.binsize[2];

  auto visit = [=](localint i, auto&& fn) {
    const double xi0 = x(std::size_t(i), 0);
    const double xi1 = x(std::size_t(i), 1);
    const double xi2 = x(std::size_t(i), 2);
    int bc0 = std::clamp(int((xi0 - glo0) / bs0), 0, nbx - 1);
    int bc1 = std::clamp(int((xi1 - glo1) / bs1), 0, nby - 1);
    int bc2 = std::clamp(int((xi2 - glo2) / bs2), 0, nbz - 1);
    for (int bx = std::max(0, bc0 - 1); bx <= std::min(nbx - 1, bc0 + 1); ++bx)
      for (int by = std::max(0, bc1 - 1); by <= std::min(nby - 1, bc1 + 1);
           ++by)
        for (int bz = std::max(0, bc2 - 1); bz <= std::min(nbz - 1, bc2 + 1);
             ++bz) {
          const std::size_t bin = std::size_t((bx * nby + by) * nbz + bz);
          const int cnt = bin_count(bin);
          for (int k = 0; k < cnt; ++k) {
            const int j = bin_atoms(bin, std::size_t(k));
            // Pair acceptance (same rules as the host build).
            if (full) {
              if (j == i) continue;
            } else if (j < nlocal) {
              if (j <= i) continue;
            } else if (newt) {
              const double zj = x(std::size_t(j), 2);
              if (zj < xi2) continue;
              if (zj == xi2) {
                const double yj = x(std::size_t(j), 1);
                if (yj < xi1) continue;
                if (yj == xi1 && x(std::size_t(j), 0) < xi0) continue;
              }
            }
            const double dx = xi0 - x(std::size_t(j), 0);
            const double dy = xi1 - x(std::size_t(j), 1);
            const double dz = xi2 - x(std::size_t(j), 2);
            if (dx * dx + dy * dy + dz * dz <= cutsq) fn(j);
          }
        }
  };

  // Pass 1: device-parallel count + max-reduction for row width.
  kk::View1D<int, kk::Device> counts("neigh::counts",
                                     std::size_t(std::max<localint>(nlocal, 1)));
  kk::parallel_for("NeighborKokkos::count",
                   kk::RangePolicy<kk::Device>(0, std::size_t(nlocal)),
                   [=](std::size_t i) {
                     int c = 0;
                     visit(localint(i), [&](int) { ++c; });
                     counts(i) = c;
                   });
  int maxn = 0;
  kk::parallel_reduce_impl(
      "NeighborKokkos::maxneighs", kk::RangePolicy<kk::Device>(0, std::size_t(nlocal)),
      [=](std::size_t i, int& m) {
        if (counts(i) > m) m = counts(i);
      },
      kk::Max<int>(maxn));
  if (maxn < 1) maxn = 1;

  list.style = style;
  list.newton = newton;
  list.inum = nlocal;
  list.maxneighs = maxn;
  list.k_neighbors.realloc(std::size_t(std::max<localint>(nlocal, 1)),
                           std::size_t(maxn));
  list.k_numneigh.realloc(std::size_t(std::max<localint>(nlocal, 1)));

  auto neigh = list.k_neighbors.d_view;
  auto num = list.k_numneigh.d_view;

  // Pass 2: device-parallel fill.
  kk::parallel_for("NeighborKokkos::fill",
                   kk::RangePolicy<kk::Device>(0, std::size_t(nlocal)),
                   [=](std::size_t i) {
                     int c = 0;
                     visit(localint(i), [&](int j) {
                       neigh(i, std::size_t(c++)) = j;
                     });
                     num(i) = c;
                   });

  list.k_neighbors.modify<kk::Device>();
  list.k_numneigh.modify<kk::Device>();
  ++nbuilds;
}

}  // namespace mlk
