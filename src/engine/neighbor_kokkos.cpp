#include "engine/neighbor_kokkos.hpp"

#include <algorithm>
#include <cmath>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk {

void NeighborKokkos::build_into(NeighborList& out, const Atom& atom,
                                const Domain& domain) {
  require(cutoff > 0.0, "neighbor cutoff not set");
  require(!ghost_rows || style == NeighStyle::Full,
          "ghost rows require a full neighbor list");
  const double cutneigh = cutghost();
  const double cutsq = cutneigh * cutneigh;

  // Host-side binning (cheap, O(N)) staged into device views.
  BinGrid grid;
  grid.build(atom, domain, cutneigh);
  int max_per_bin = 1;
  for (const auto& b : grid.bins)
    max_per_bin = std::max(max_per_bin, int(b.size()));
  const std::size_t nbins = grid.bins.size();

  kk::View2D<int, kk::Device> bin_atoms("neigh::bin_atoms", nbins,
                                        std::size_t(max_per_bin));
  kk::View1D<int, kk::Device> bin_count("neigh::bin_count", nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    bin_count(b) = int(grid.bins[b].size());
    for (std::size_t k = 0; k < grid.bins[b].size(); ++k)
      bin_atoms(b, k) = grid.bins[b][k];
  }

  // Atom data must be current on device.
  const_cast<Atom&>(atom).sync<kk::Device>(X_MASK);
  auto x = atom.k_x.d_view;
  const localint nlocal = atom.nlocal;
  const localint nrows = ghost_rows ? atom.nall() : nlocal;
  const PairAcceptance accept(nlocal, style, newton);

  const int nbx = grid.nbin[0], nby = grid.nbin[1], nbz = grid.nbin[2];
  const double glo0 = grid.lo[0], glo1 = grid.lo[1], glo2 = grid.lo[2];
  const double bs0 = grid.binsize[0], bs1 = grid.binsize[1],
               bs2 = grid.binsize[2];

  // Stencil walk shared by both strategies: bins in (bx, by, bz) ascending
  // order, atoms in bin insertion order — the exact traversal of the host
  // build, so accepted neighbors land in rows in the same order and the two
  // builds are bitwise-identical.
  auto visit = [=](localint i, auto&& fn) {
    const double xi0 = x(std::size_t(i), 0);
    const double xi1 = x(std::size_t(i), 1);
    const double xi2 = x(std::size_t(i), 2);
    int bc0 = std::clamp(int((xi0 - glo0) / bs0), 0, nbx - 1);
    int bc1 = std::clamp(int((xi1 - glo1) / bs1), 0, nby - 1);
    int bc2 = std::clamp(int((xi2 - glo2) / bs2), 0, nbz - 1);
    for (int bx = std::max(0, bc0 - 1); bx <= std::min(nbx - 1, bc0 + 1); ++bx)
      for (int by = std::max(0, bc1 - 1); by <= std::min(nby - 1, bc1 + 1);
           ++by)
        for (int bz = std::max(0, bc2 - 1); bz <= std::min(nbz - 1, bc2 + 1);
             ++bz) {
          const std::size_t bin = std::size_t((bx * nby + by) * nbz + bz);
          const int cnt = bin_count(bin);
          for (int k = 0; k < cnt; ++k) {
            const int j = bin_atoms(bin, std::size_t(k));
            if (!accept(x, localint(i), localint(j))) continue;
            const double dx = xi0 - x(std::size_t(j), 0);
            const double dy = xi1 - x(std::size_t(j), 1);
            const double dz = xi2 - x(std::size_t(j), 2);
            if (dx * dx + dy * dy + dz * dz <= cutsq) fn(j);
          }
        }
  };

  out.style = style;
  out.newton = newton;
  out.inum = nlocal;
  out.gnum = nrows - nlocal;

  const std::size_t nrows_alloc = std::size_t(std::max<localint>(nrows, 1));
  out.k_numneigh.realloc(nrows_alloc);
  auto num = out.k_numneigh.d_view;

  if (strategy == DeviceFillStrategy::CountThenFill) {
    // Baseline: traverse the stencil twice — once to size the table, once
    // to fill it. Exact-fit allocation, no retries, double the work.
    kk::parallel_for("NeighborKokkos::count",
                     kk::RangePolicy<kk::Device>(0, std::size_t(nrows)),
                     [=](std::size_t i) {
                       int c = 0;
                       visit(localint(i), [&](int) { ++c; });
                       num(i) = c;
                     });
    int maxn = 0;
    kk::parallel_reduce_impl(
        "NeighborKokkos::maxneighs",
        kk::RangePolicy<kk::Device>(0, std::size_t(nrows)),
        [=](std::size_t i, int& m) {
          if (num(i) > m) m = num(i);
        },
        kk::Max<int>(maxn));
    if (maxn < 1) maxn = 1;
    out.maxneighs = maxn;
    out.k_neighbors.realloc(nrows_alloc, std::size_t(maxn));
    auto neigh = out.k_neighbors.d_view;
    kk::parallel_for("NeighborKokkos::fill",
                     kk::RangePolicy<kk::Device>(0, std::size_t(nrows)),
                     [=](std::size_t i) {
                       int c = 0;
                       visit(localint(i), [&](int j) {
                         neigh(i, std::size_t(c++)) = j;
                       });
                       num(i) = c;
                     });
  } else {
    // Resize-and-retry: one traversal fills rows into a guessed-capacity
    // table while counting the *full* row length; writes past capacity are
    // dropped. A max-reduction then detects overflow, and only an
    // overflowing build regrows the table (with headroom) and repeats the
    // pass. The high-water capacity survives in maxneighs_hint, so repeated
    // rebuilds of a quasi-stationary system never retry.
    int capacity = maxneighs_hint;
    if (capacity <= 0) {
      // Cold start: ideal-gas estimate from the local density of the
      // extended (sub-box + ghost margin) region, plus headroom.
      double vol = 1.0;
      for (int d = 0; d < 3; ++d) vol *= grid.hi[d] - grid.lo[d];
      const double rho = vol > 0.0 ? double(atom.nall()) / vol : 0.0;
      constexpr double kPi = 3.14159265358979323846;
      const double est = rho * 4.0 / 3.0 * kPi * cutneigh * cutneigh * cutneigh;
      capacity = std::max(8, int(est * 1.2) + 1);
    }
    for (;;) {
      out.k_neighbors.realloc(nrows_alloc, std::size_t(capacity));
      auto neigh = out.k_neighbors.d_view;
      const int cap = capacity;
      kk::parallel_for("NeighborKokkos::fill_retry",
                       kk::RangePolicy<kk::Device>(0, std::size_t(nrows)),
                       [=](std::size_t i) {
                         int c = 0;
                         visit(localint(i), [&](int j) {
                           if (c < cap) neigh(i, std::size_t(c)) = j;
                           ++c;
                         });
                         num(i) = c;  // full count: overflow detector
                       });
      int maxn = 0;
      kk::parallel_reduce_impl(
          "NeighborKokkos::overflow_check",
          kk::RangePolicy<kk::Device>(0, std::size_t(nrows)),
          [=](std::size_t i, int& m) {
            if (num(i) > m) m = num(i);
          },
          kk::Max<int>(maxn));
      if (maxn <= capacity) break;
      ++nretries;
      // ~12% headroom so steady-state density fluctuations stay under the
      // high-water mark instead of forcing a retry every few rebuilds.
      capacity = maxn + (maxn >> 3) + 1;
    }
    out.maxneighs = capacity;
    maxneighs_hint = capacity;
  }

  out.k_neighbors.modify<kk::Device>();
  out.k_numneigh.modify<kk::Device>();

  // Interior/boundary partition of the owned rows, device-side: flag
  // ghost-free rows, then a single parallel_scan packs interior rows (scan
  // rank) and boundary rows (row index minus scan rank) in ascending order —
  // the same ordering the host build produces.
  const std::size_t nloc_alloc = std::size_t(std::max<localint>(nlocal, 1));
  out.k_interior.realloc(nloc_alloc);
  out.k_boundary.realloc(nloc_alloc);
  {
    auto neigh = out.k_neighbors.d_view;
    kk::View1D<int, kk::Device> ghost_free("neigh::ghost_free", nloc_alloc);
    kk::parallel_for("NeighborKokkos::flag_interior",
                     kk::RangePolicy<kk::Device>(0, std::size_t(nlocal)),
                     [=](std::size_t i) {
                       int flag = 1;
                       const int nn = num(i);
                       for (int jj = 0; jj < nn; ++jj) {
                         if (neigh(i, std::size_t(jj)) >= nlocal) {
                           flag = 0;
                           break;
                         }
                       }
                       ghost_free(i) = flag;
                     });
    auto interior = out.k_interior.d_view;
    auto boundary = out.k_boundary.d_view;
    int ninterior = 0;
    kk::parallel_scan(
        "NeighborKokkos::partition",
        kk::RangePolicy<kk::Device>(0, std::size_t(nlocal)),
        [=](std::size_t i, int& update, bool final) {
          const int f = ghost_free(i);
          if (final) {
            if (f)
              interior(std::size_t(update)) = int(i);
            else
              boundary(i - std::size_t(update)) = int(i);
          }
          update += f;
        },
        ninterior);
    out.ninterior = ninterior;
    out.nboundary = nlocal - ninterior;
  }
  out.k_interior.modify<kk::Device>();
  out.k_boundary.modify<kk::Device>();

  ++nbuilds;
}

}  // namespace mlk
