#include "engine/thermo.hpp"

#include <cstdio>

#include "engine/simulation.hpp"

namespace mlk {

void Thermo::header() const {
  if (!print) return;
  std::printf("%10s %12s %14s %14s %14s %12s\n", "Step", "Temp", "PotEng",
              "KinEng", "TotEng", "Press");
}

void Thermo::record(Simulation& sim) {
  ThermoRow row;
  row.step = sim.ntimestep;
  row.temp = sim.temperature();
  row.pe = sim.potential_energy();
  row.ke = sim.kinetic_energy();
  row.etotal = row.pe + row.ke;
  row.press = sim.pressure();
  rows_.push_back(row);
  const bool is_rank0 = sim.mpi == nullptr || sim.mpi->rank() == 0;
  if (print && is_rank0)
    std::printf("%10lld %12.6g %14.8g %14.8g %14.8g %12.6g\n",
                static_cast<long long>(row.step), row.temp, row.pe, row.ke,
                row.etotal, row.press);
}

}  // namespace mlk
