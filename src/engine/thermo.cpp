#include "engine/thermo.hpp"

#include <cstdio>

#include "engine/simulation.hpp"
#include "tools/telemetry/telemetry.hpp"

namespace mlk {

void Thermo::header() const {
  if (!print) return;
  std::printf("%10s %12s %14s %14s %14s %12s\n", "Step", "Temp", "PotEng",
              "KinEng", "TotEng", "Press");
}

void Thermo::record(Simulation& sim) {
  ThermoRow row;
  row.step = sim.ntimestep;
  row.temp = sim.temperature();
  row.pe = sim.potential_energy();
  row.ke = sim.kinetic_energy();
  row.etotal = row.pe + row.ke;
  row.press = sim.pressure();
  rows_.push_back(row);

  // Live telemetry: mirror the row into the sim's thermo ring (wait-free).
  if (sim.telemetry && tools::telemetry::active()) {
    tools::telemetry::ThermoSample ts;
    ts.step = row.step;
    ts.job_id = sim.telemetry_job_id;
    ts.temp = row.temp;
    ts.pe = row.pe;
    ts.ke = row.ke;
    ts.press = row.press;
    sim.telemetry->thermo.push(ts);
  }

  const bool is_rank0 = sim.mpi == nullptr || sim.mpi->rank() == 0;
  if (print && is_rank0)
    std::printf("%10lld %12.6g %14.8g %14.8g %14.8g %12.6g\n",
                static_cast<long long>(row.step), row.temp, row.pe, row.ke,
                row.etotal, row.press);
}

void Thermo::breakdown(Simulation& sim, double loop_seconds, bigint nsteps,
                       const std::map<std::string, double>& before,
                       const NeighSummary& neigh,
                       const BalanceSummary& balance) const {
  const bool is_rank0 = sim.mpi == nullptr || sim.mpi->rank() == 0;
  if (!print || !is_rank0 || nsteps <= 0) return;

  auto delta = [&](const char* name) {
    double b = 0.0;
    auto it = before.find(name);
    if (it != before.end()) b = it->second;
    return sim.timers.total(name) - b;
  };

  static const char* kSections[] = {"Pair", "Neigh", "Comm", "Output"};
  double accounted = 0.0;
  for (const char* s : kSections) accounted += delta(s);
  const double other = loop_seconds > accounted ? loop_seconds - accounted : 0.0;
  const double per_step_ms = 1e3 / double(nsteps);
  const double pct = loop_seconds > 0.0 ? 100.0 / loop_seconds : 0.0;

  std::printf("\nLoop time of %g s for %lld steps (%g ms/step)\n\n",
              loop_seconds, static_cast<long long>(nsteps),
              loop_seconds * per_step_ms);
  std::printf("%-8s | %12s | %7s | %14s\n", "Section", "time (s)", "%loop",
              "per-step (ms)");
  std::printf("---------+--------------+---------+---------------\n");
  for (const char* s : kSections) {
    const double t = delta(s);
    std::printf("%-8s | %12.6f | %6.2f%% | %14.6f\n", s, t, t * pct,
                t * per_step_ms);
  }
  std::printf("%-8s | %12.6f | %6.2f%% | %14.6f\n", "Other", other,
              other * pct, other * per_step_ms);

  // LAMMPS-style neighbor maintenance summary. Dangerous builds (the
  // distance check fired on the first step every/delay allowed) mean the
  // run computed forces from a stale list — raise `every`/`delay` caution.
  std::printf("\nNeighbor builds: %lld  dangerous: %lld",
              static_cast<long long>(neigh.builds),
              static_cast<long long>(neigh.dangerous));
  if (neigh.device)
    std::printf("  device retries: %lld",
                static_cast<long long>(neigh.retries));
  std::printf("\n");

  // Per-rank atom imbalance (max/avg nlocal at run end): the load-balance
  // health metric `balance rcb` targets. Only meaningful with > 1 rank, but
  // the rebalance/sort counters print whenever those features ran.
  if (balance.avg_atoms > 0.0 &&
      (sim.mpi != nullptr || balance.nbalances > 0 || balance.nsorts > 0)) {
    std::printf(
        "Atom imbalance: %.3f max/avg (max %.0f min %.0f avg %.1f)  "
        "rebalances: %lld  sorts: %lld\n",
        balance.max_atoms / balance.avg_atoms, balance.max_atoms,
        balance.min_atoms, balance.avg_atoms,
        static_cast<long long>(balance.nbalances),
        static_cast<long long>(balance.nsorts));
  }
}

}  // namespace mlk
