#include "engine/atom_vec_kokkos.hpp"

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk {

kk::View1D<double, kk::Device> AtomVecKokkos::pack_positions_device(
    Atom& atom, const kk::View1D<int, kk::Device>& sendlist, int dim,
    double shift) {
  atom.sync<kk::Device>(X_MASK);
  auto x = atom.k_x.d_view;
  const std::size_t n = sendlist.extent(0);
  kk::View1D<double, kk::Device> buf("commbuf", n * 3);
  kk::parallel_for("AtomVecKokkos::pack_positions",
                   kk::RangePolicy<kk::Device>(0, n), [=](std::size_t k) {
                     const std::size_t i = std::size_t(sendlist(k));
                     for (std::size_t d = 0; d < 3; ++d) {
                       double v = x(i, d);
                       if (int(d) == dim) v += shift;
                       buf(k * 3 + d) = v;
                     }
                   });
  return buf;
}

void AtomVecKokkos::unpack_positions_device(
    Atom& atom, const kk::View1D<double, kk::Device>& buf, localint first) {
  atom.sync<kk::Device>(X_MASK);
  auto x = atom.k_x.d_view;
  const std::size_t n = buf.extent(0) / 3;
  kk::parallel_for("AtomVecKokkos::unpack_positions",
                   kk::RangePolicy<kk::Device>(0, n), [=](std::size_t k) {
                     const std::size_t i = std::size_t(first) + k;
                     for (std::size_t d = 0; d < 3; ++d)
                       x(i, d) = buf(k * 3 + d);
                   });
  atom.modified<kk::Device>(X_MASK);
}

std::vector<double> AtomVecKokkos::pack_positions_host(
    const Atom& atom, const std::vector<localint>& sendlist, int dim,
    double shift) {
  const auto x = atom.k_x.h_view;
  std::vector<double> buf;
  buf.reserve(sendlist.size() * 3);
  for (localint i : sendlist) {
    for (int d = 0; d < 3; ++d) {
      double v = x(std::size_t(i), std::size_t(d));
      if (d == dim) v += shift;
      buf.push_back(v);
    }
  }
  return buf;
}

void AtomVecKokkos::reorder_owned(Atom& atom,
                                  const std::vector<localint>& perm) {
  require(atom.nghost == 0, "reorder_owned: clear ghosts before sorting");
  require(perm.size() == std::size_t(atom.nlocal),
          "reorder_owned: permutation size mismatch");
  const std::size_t n = perm.size();
  atom.sync<kk::Host>(X_MASK | V_MASK | F_MASK | TYPE_MASK | TAG_MASK |
                      Q_MASK);
  auto x = atom.k_x.h_view;
  auto v = atom.k_v.h_view;
  auto f = atom.k_f.h_view;
  auto type = atom.k_type.h_view;
  auto tag = atom.k_tag.h_view;
  auto q = atom.k_q.h_view;

  std::vector<double> dtmp(3 * n);
  auto gather3 = [&](auto view) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < 3; ++d)
        dtmp[3 * i + d] = view(std::size_t(perm[i]), d);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < 3; ++d) view(i, d) = dtmp[3 * i + d];
  };
  gather3(x);
  gather3(v);
  gather3(f);

  std::vector<int> itmp(n);
  for (std::size_t i = 0; i < n; ++i) itmp[i] = type(std::size_t(perm[i]));
  for (std::size_t i = 0; i < n; ++i) type(i) = itmp[i];
  std::vector<tagint> ttmp(n);
  for (std::size_t i = 0; i < n; ++i) ttmp[i] = tag(std::size_t(perm[i]));
  for (std::size_t i = 0; i < n; ++i) tag(i) = ttmp[i];
  for (std::size_t i = 0; i < n; ++i) dtmp[i] = q(std::size_t(perm[i]));
  for (std::size_t i = 0; i < n; ++i) q(i) = dtmp[i];

  atom.modified<kk::Host>(X_MASK | V_MASK | F_MASK | TYPE_MASK | TAG_MASK |
                          Q_MASK);
}

}  // namespace mlk
