#include "engine/atom_vec_kokkos.hpp"

#include "kokkos/core.hpp"

namespace mlk {

kk::View1D<double, kk::Device> AtomVecKokkos::pack_positions_device(
    Atom& atom, const kk::View1D<int, kk::Device>& sendlist, int dim,
    double shift) {
  atom.sync<kk::Device>(X_MASK);
  auto x = atom.k_x.d_view;
  const std::size_t n = sendlist.extent(0);
  kk::View1D<double, kk::Device> buf("commbuf", n * 3);
  kk::parallel_for("AtomVecKokkos::pack_positions",
                   kk::RangePolicy<kk::Device>(0, n), [=](std::size_t k) {
                     const std::size_t i = std::size_t(sendlist(k));
                     for (std::size_t d = 0; d < 3; ++d) {
                       double v = x(i, d);
                       if (int(d) == dim) v += shift;
                       buf(k * 3 + d) = v;
                     }
                   });
  return buf;
}

void AtomVecKokkos::unpack_positions_device(
    Atom& atom, const kk::View1D<double, kk::Device>& buf, localint first) {
  atom.sync<kk::Device>(X_MASK);
  auto x = atom.k_x.d_view;
  const std::size_t n = buf.extent(0) / 3;
  kk::parallel_for("AtomVecKokkos::unpack_positions",
                   kk::RangePolicy<kk::Device>(0, n), [=](std::size_t k) {
                     const std::size_t i = std::size_t(first) + k;
                     for (std::size_t d = 0; d < 3; ++d)
                       x(i, d) = buf(k * 3 + d);
                   });
  atom.modified<kk::Device>(X_MASK);
}

std::vector<double> AtomVecKokkos::pack_positions_host(
    const Atom& atom, const std::vector<localint>& sendlist, int dim,
    double shift) {
  const auto x = atom.k_x.h_view;
  std::vector<double> buf;
  buf.reserve(sendlist.size() * 3);
  for (localint i : sendlist) {
    for (int d = 0; d < 3; ++d) {
      double v = x(std::size_t(i), std::size_t(d));
      if (d == dim) v += shift;
      buf.push_back(v);
    }
  }
  return buf;
}

}  // namespace mlk
