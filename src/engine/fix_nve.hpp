// fix nve — microcanonical velocity-Verlet integration.
//
// FixNVE is the legacy host implementation operating on host views;
// FixNVEKokkos is templated on the execution space and dual-instantiated
// (Host + Device), selectable as nve/kk, nve/kk/host, nve/kk/device (§3.3).
#pragma once

#include "engine/fix.hpp"
#include "engine/pair.hpp"

namespace mlk {

class FixNVE : public Fix {
 public:
  void initial_integrate(Simulation& sim) override;
  void final_integrate(Simulation& sim) override;
};

template <class Space>
class FixNVEKokkos : public Fix {
 public:
  void initial_integrate(Simulation& sim) override;
  void final_integrate(Simulation& sim) override;
};

void register_fix_nve();

}  // namespace mlk
