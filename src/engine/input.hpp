// Input — the LAMMPS-style script interface (§2.1): commands either execute
// immediately (lattice, create_atoms, mass, ...) or instantiate persistent
// styles (pair_style, fix) that act during subsequent `run` commands.
//
// Supported commands (a working subset of LAMMPS):
//   units <lj|metal|real>
//   lattice <fcc|bcc|sc|hns_like> <scale>     (lj units: scale = reduced
//                                              density; else lattice constant)
//   create_atoms <nx> <ny> <nz> [jitter <frac> <seed>]
//   mass <type> <m>
//   set type <t> charge <q>
//   velocity all create <T> <seed>
//   velocity all scale <T>
//   pair_style <style> [args...]
//   pair_coeff <args...>
//   neighbor <skin> bin
//   neighbor style <host|device>         (list build path, docs/NEIGHBOR.md;
//                                         MLK_NEIGH env overrides)
//   neigh_modify [every N] [delay N] [check yes|no]
//   newton <on|off>
//   overlap <on|off>                     (comm/compute overlap, see
//                                         docs/EXECUTION_MODEL.md)
//   suffix <kk|kk/host|off>
//   package kokkos [...]                       (accepted for compatibility)
//   fix <id> all <style> [args...]         (nve[/kk], nvt, langevin[/kk],
//                                            dump/xyz <every> <file>)
//   unfix <id>
//   compute <id> all <style>                (temp, pe, ke, pressure, rdf,
//                                            msd, snap/bispectrum)
//   timestep <dt>
//   thermo <N>
//   run <N>
//   write_restart <file>                       (one-shot checkpoint)
//   read_restart <file>                        (resume from a checkpoint)
//   restart <N> <base>                         (periodic: base.<step>[.rank];
//                                               restart 0 disables)
//   profile <on|off|dump <file>>               (per-kernel timing + memory,
//                                               docs/OBSERVABILITY.md)
//   trace <file|stop>                          (chrome://tracing timeline)
//   telemetry <path[:opts]|flush|stop>         (real-time streaming snapshot
//                                               + NDJSON + in-situ analysis,
//                                               docs/OBSERVABILITY.md)
//   fault_inject <step|off>                    (kill the run mid-step at
//                                               <step>; MLK_FAULT_STEP env
//                                               overrides)
//   recover <base>                             (resume from the newest
//                                               CRC-valid base.<step> set)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "engine/lattice.hpp"
#include "engine/simulation.hpp"

namespace mlk {

class Input {
 public:
  explicit Input(Simulation& sim) : sim_(sim) {}

  /// Execute every line of a script file.
  void file(const std::string& path);

  /// Execute one command line.
  void line(const std::string& text);

  /// Access a named compute declared by the script.
  Compute* find_compute(const std::string& id);

 private:
  void execute(const std::vector<std::string>& words);

  Simulation& sim_;
  LatticeSpec lattice_;
  std::map<std::string, std::unique_ptr<Compute>> computes_;
};

}  // namespace mlk
