// Style registry: the map from input-script command names to C++ classes
// described in §2.1 / Fig. 1, including the accelerator-suffix convention of
// §3.1/§3.3 — a Kokkos style registers under "<base>/kk" and is also
// reachable as "<base>/kk/host" and "<base>/kk/device", and a global suffix
// can upgrade plain style names automatically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/compute.hpp"
#include "engine/fix.hpp"
#include "engine/pair.hpp"

namespace mlk {

class Simulation;

class StyleRegistry {
 public:
  using PairCreator = std::function<std::unique_ptr<Pair>(ExecSpaceKind)>;
  using FixCreator = std::function<std::unique_ptr<Fix>(ExecSpaceKind)>;
  using ComputeCreator = std::function<std::unique_ptr<Compute>()>;

  static StyleRegistry& instance();

  /// Register a plain (non-suffixed) style.
  void add_pair(const std::string& name, PairCreator c);
  /// Register a Kokkos style; reachable as name/kk, name/kk/host,
  /// name/kk/device. The creator receives the requested execution space.
  void add_pair_kokkos(const std::string& base, PairCreator c);

  void add_fix(const std::string& name, FixCreator c);
  void add_fix_kokkos(const std::string& base, FixCreator c);
  void add_compute(const std::string& name, ComputeCreator c);

  /// Create a pair style by (possibly suffixed) name. If `global_suffix` is
  /// non-empty and `name` is unsuffixed, the suffixed variant is preferred
  /// when registered (LAMMPS's `suffix on` / `-sf kk` behavior).
  std::unique_ptr<Pair> create_pair(const std::string& name,
                                    const std::string& global_suffix = "");
  std::unique_ptr<Fix> create_fix(const std::string& name,
                                  const std::string& global_suffix = "");
  std::unique_ptr<Compute> create_compute(const std::string& name);

  bool has_pair(const std::string& name) const;
  std::vector<std::string> pair_names() const;

 private:
  struct PairEntry {
    PairCreator create;
    bool is_kokkos = false;
  };
  struct FixEntry {
    FixCreator create;
    bool is_kokkos = false;
  };
  std::map<std::string, PairEntry> pairs_;
  std::map<std::string, FixEntry> fixes_;
  std::map<std::string, ComputeCreator> computes_;
};

}  // namespace mlk
