// Simulation domain: orthogonal periodic box plus this rank's sub-box.
//
// The sub-box is one cell of a rectilinear grid: per-dimension cut planes
// shared by all ranks (uniform after decompose(); possibly non-uniform after
// `balance rcb` installs recursive-bisection cuts via set_cuts()). Keeping
// the cuts rectilinear preserves the brick 6-swap communication pattern.
#pragma once

#include <vector>

#include "comm/decomposition.hpp"
#include "util/types.hpp"

namespace mlk {

class Domain {
 public:
  // Global box bounds.
  double boxlo[3] = {0, 0, 0};
  double boxhi[3] = {1, 1, 1};
  // This rank's sub-box (equals the global box in serial runs).
  double sublo[3] = {0, 0, 0};
  double subhi[3] = {1, 1, 1};
  bool periodic[3] = {true, true, true};

  void set_box(double xlo, double xhi, double ylo, double yhi, double zlo,
               double zhi);

  /// Partition the box for `rank` of `nranks`; fills sublo/subhi and grid.
  /// Resets the cut planes to uniform.
  void decompose(int rank, int nranks);

  /// Install non-uniform cut planes along dimension d (np[d]+1 ascending
  /// values spanning [boxlo[d], boxhi[d]]) and re-derive sublo/subhi from
  /// this rank's grid coordinate. Every rank must install identical cuts.
  void set_cuts(int d, std::vector<double> cuts);

  /// Cut planes along dimension d: np[d]+1 ascending values. Before any
  /// decompose() this is the trivial {boxlo, boxhi} partition.
  const std::vector<double>& cuts(int d) const {
    return cuts_[std::size_t(d)];
  }

  double prd(int d) const { return boxhi[d] - boxlo[d]; }
  double volume() const { return prd(0) * prd(1) * prd(2); }

  /// Remap a position into the primary box (periodic wrap).
  void remap(double* x) const;

  /// Minimum-image displacement components for dx = xi - xj.
  void minimum_image(double* dx) const;

  /// True if position is inside this rank's sub-box ([lo, hi) convention).
  bool inside_subbox(const double* x) const;

  const ProcGrid& grid() const { return grid_; }

 private:
  ProcGrid grid_;
  std::vector<double> cuts_[3] = {{0, 1}, {0, 1}, {0, 1}};
};

}  // namespace mlk
