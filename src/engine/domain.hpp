// Simulation domain: orthogonal periodic box plus this rank's sub-box.
#pragma once

#include "comm/decomposition.hpp"
#include "util/types.hpp"

namespace mlk {

class Domain {
 public:
  // Global box bounds.
  double boxlo[3] = {0, 0, 0};
  double boxhi[3] = {1, 1, 1};
  // This rank's sub-box (equals the global box in serial runs).
  double sublo[3] = {0, 0, 0};
  double subhi[3] = {1, 1, 1};
  bool periodic[3] = {true, true, true};

  void set_box(double xlo, double xhi, double ylo, double yhi, double zlo,
               double zhi);

  /// Partition the box for `rank` of `nranks`; fills sublo/subhi and grid.
  void decompose(int rank, int nranks);

  double prd(int d) const { return boxhi[d] - boxlo[d]; }
  double volume() const { return prd(0) * prd(1) * prd(2); }

  /// Remap a position into the primary box (periodic wrap).
  void remap(double* x) const;

  /// Minimum-image displacement components for dx = xi - xj.
  void minimum_image(double* dx) const;

  /// True if position is inside this rank's sub-box ([lo, hi) convention).
  bool inside_subbox(const double* x) const;

  const ProcGrid& grid() const { return grid_; }

 private:
  ProcGrid grid_;
};

}  // namespace mlk
