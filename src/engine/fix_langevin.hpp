// fix langevin — Langevin thermostat (friction + random kicks), used by the
// melt examples to equilibrate before NVE production.
#pragma once

#include <memory>

#include "engine/fix.hpp"
#include "util/random.hpp"

namespace mlk {

class FixLangevin : public Fix {
 public:
  FixLangevin(double t_target, double damp, int seed);
  /// args: <Tstart> <damp> <seed>
  void parse_args(const std::vector<std::string>& args) override;
  void post_force(Simulation& sim) override;
  /// Round-trips the full RanPark stream state (seed, cached gaussian), so a
  /// resumed run draws the exact kicks the uninterrupted run would have.
  void pack_restart(io::BinaryWriter& w) const override;
  void unpack_restart(io::BinaryReader& r) override;

 private:
  double t_target_;
  double damp_;
  RanPark rng_;
};

void register_fix_langevin();

}  // namespace mlk
