// dump xyz — periodic trajectory output in the (extended) XYZ format, the
// simplest interoperable trajectory file (readable by OVITO/VMD/ASE).
// Rank 0 writes its own atoms in serial runs; decomposed runs gather
// owned-atom records to rank 0 through simmpi.
#pragma once

#include <fstream>
#include <string>

#include "engine/fix.hpp"
#include "util/types.hpp"

namespace mlk {

class DumpXYZ : public Fix {
 public:
  /// args: <every> <filename>
  void parse_args(const std::vector<std::string>& args) override;
  void init(Simulation& sim) override;
  void end_of_step(Simulation& sim) override;
  void pack_restart(io::BinaryWriter& w) const override;
  void unpack_restart(io::BinaryReader& r) override;

  bigint frames_written() const { return frames_; }

 private:
  void write_frame(Simulation& sim);

  bigint every_ = 100;
  std::string path_;
  std::ofstream out_;
  bigint frames_ = 0;
};

void register_dump_xyz();

}  // namespace mlk
