#include "engine/comm_pair.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mlk {

namespace {
// Per-atom border record: x(3), type, tag, q.
constexpr int kBorderDoubles = 6;

void pack_border(const Atom& atom, localint i, int dim, double shift,
                 std::vector<double>& buf) {
  const auto x = atom.k_x.h_view;
  double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                  x(std::size_t(i), 2)};
  xi[dim] += shift;
  buf.push_back(xi[0]);
  buf.push_back(xi[1]);
  buf.push_back(xi[2]);
  buf.push_back(double(atom.k_type.h_view(std::size_t(i))));
  buf.push_back(double(atom.k_tag.h_view(std::size_t(i))));
  buf.push_back(atom.k_q.h_view(std::size_t(i)));
}

localint unpack_border(Atom& atom, const std::vector<double>& buf) {
  const localint count = localint(buf.size() / kBorderDoubles);
  atom.grow(atom.nall() + count);
  auto x = atom.k_x.h_view;
  for (localint k = 0; k < count; ++k) {
    const std::size_t i = std::size_t(atom.nall());
    const double* r = buf.data() + std::size_t(k) * kBorderDoubles;
    x(i, 0) = r[0];
    x(i, 1) = r[1];
    x(i, 2) = r[2];
    atom.k_type.h_view(i) = int(r[3]);
    atom.k_tag.h_view(i) = tagint(r[4]);
    atom.k_q.h_view(i) = r[5];
    atom.nghost++;
  }
  return count;
}
}  // namespace

void CommBrick::setup(const Domain& domain) const {
  require(cutghost > 0.0, "CommBrick: cutghost not set");
  for (int d = 0; d < 3; ++d) {
    const double sub = domain.subhi[d] - domain.sublo[d];
    require(sub >= cutghost,
            "CommBrick: sub-domain thinner than ghost cutoff; use fewer ranks "
            "or a bigger box");
  }
}

void CommBrick::do_border_swap(Atom& atom, const Domain& domain, int dim,
                               bool lo, localint scan_limit) {
  Swap sw;
  sw.dim = dim;
  sw.lo = lo;

  const auto& g = domain.grid();
  const bool serial = (mpi == nullptr);
  const int np = serial ? 1 : g.np[dim];
  sw.sendrank = serial ? 0 : (lo ? g.neighbor_lo[dim] : g.neighbor_hi[dim]);
  // Messages we receive in this swap come from the opposite neighbor.
  sw.recvrank = serial ? 0 : (lo ? g.neighbor_hi[dim] : g.neighbor_lo[dim]);

  // Periodic shift: if this brick touches the boundary it is sending across,
  // shift coordinates into the receiver's frame.
  const bool at_lo_edge = serial || g.coord[dim] == 0;
  const bool at_hi_edge = serial || g.coord[dim] == np - 1;
  if (lo && at_lo_edge) sw.shift = domain.prd(dim);
  if (!lo && at_hi_edge) sw.shift = -domain.prd(dim);

  // Skip swaps across non-periodic boundaries.
  const bool crosses_boundary = lo ? at_lo_edge : at_hi_edge;
  if (crosses_boundary && !domain.periodic[dim] && np == 1) {
    swaps_.push_back(sw);
    return;
  }

  // Select atoms (owned + previously received ghosts) near the face.
  const auto x = atom.k_x.h_view;
  const double cut_lo = domain.sublo[dim] + cutghost;
  const double cut_hi = domain.subhi[dim] - cutghost;
  std::vector<double> buf;
  for (localint i = 0; i < scan_limit; ++i) {
    const double xd = x(std::size_t(i), std::size_t(dim));
    const bool send = lo ? (xd < cut_lo) : (xd >= cut_hi);
    if (send) {
      sw.sendlist.push_back(i);
      pack_border(atom, i, dim, sw.shift, buf);
    }
  }

  std::vector<double> incoming;
  if (serial || (sw.sendrank == g.rank && sw.recvrank == g.rank)) {
    incoming = std::move(buf);
  } else {
    incoming = mpi->sendrecv(sw.sendrank, sw.recvrank, 100 + tag_seq_, buf);
  }
  ++tag_seq_;

  sw.recv_start = atom.nall();
  sw.recv_count = unpack_border(atom, incoming);
  swaps_.push_back(sw);
}

void CommBrick::borders(Atom& atom, const Domain& domain) {
  atom.sync<kk::Host>(X_MASK | TYPE_MASK | TAG_MASK | Q_MASK);
  atom.clear_ghosts();
  swaps_.clear();
  tag_seq_ = 0;
  for (int dim = 0; dim < 3; ++dim) {
    const localint scan_limit = atom.nall();
    do_border_swap(atom, domain, dim, /*lo=*/true, scan_limit);
    do_border_swap(atom, domain, dim, /*lo=*/false, scan_limit);
  }
  nghost_ = atom.nghost;
  atom.modified<kk::Host>(X_MASK | TYPE_MASK | TAG_MASK | Q_MASK);
}

void CommBrick::forward_positions(Atom& atom) {
  atom.sync<kk::Host>(X_MASK);
  auto x = atom.k_x.h_view;
  int tag = 1000;
  const bool serial = (mpi == nullptr);
  for (const auto& sw : swaps_) {
    std::vector<double> buf;
    buf.reserve(sw.sendlist.size() * 3);
    for (localint i : sw.sendlist) {
      double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                      x(std::size_t(i), 2)};
      xi[sw.dim] += sw.shift;
      buf.push_back(xi[0]);
      buf.push_back(xi[1]);
      buf.push_back(xi[2]);
    }
    std::vector<double> in;
    if (serial || (sw.sendrank == sw.recvrank && mpi->rank() == sw.sendrank)) {
      in = std::move(buf);
    } else {
      in = mpi->sendrecv(sw.sendrank, sw.recvrank, tag, buf);
    }
    ++tag;
    require(localint(in.size() / 3) == sw.recv_count,
            "forward_positions: ghost count changed since borders()");
    for (localint k = 0; k < sw.recv_count; ++k) {
      const std::size_t g = std::size_t(sw.recv_start + k);
      x(g, 0) = in[std::size_t(k) * 3 + 0];
      x(g, 1) = in[std::size_t(k) * 3 + 1];
      x(g, 2) = in[std::size_t(k) * 3 + 2];
    }
  }
  atom.modified<kk::Host>(X_MASK);
}

void CommBrick::forward_charges(Atom& atom) {
  forward_scalar(atom.k_q);
}

void CommBrick::forward_scalar(kk::DualView<double, 1>& field) {
  field.sync<kk::Host>();
  auto q = field.h_view;
  int tag = 3000;
  const bool serial = (mpi == nullptr);
  for (const auto& sw : swaps_) {
    std::vector<double> buf;
    buf.reserve(sw.sendlist.size());
    for (localint i : sw.sendlist) buf.push_back(q(std::size_t(i)));
    std::vector<double> in;
    if (serial || (sw.sendrank == sw.recvrank && mpi->rank() == sw.sendrank)) {
      in = std::move(buf);
    } else {
      in = mpi->sendrecv(sw.sendrank, sw.recvrank, tag, buf);
    }
    ++tag;
    for (localint k = 0; k < sw.recv_count; ++k)
      q(std::size_t(sw.recv_start + k)) = in[std::size_t(k)];
  }
  field.modify<kk::Host>();
}

void CommBrick::reverse_forces(Atom& atom) {
  atom.sync<kk::Host>(F_MASK);
  auto f = atom.k_f.h_view;
  int tag = 2000 + int(swaps_.size());
  const bool serial = (mpi == nullptr);
  // Reverse order: later-dimension ghosts fold into earlier-dimension ghosts
  // before those fold into owned atoms.
  for (auto it = swaps_.rbegin(); it != swaps_.rend(); ++it) {
    const auto& sw = *it;
    --tag;
    std::vector<double> buf;
    buf.reserve(std::size_t(sw.recv_count) * 3);
    for (localint k = 0; k < sw.recv_count; ++k) {
      const std::size_t g = std::size_t(sw.recv_start + k);
      buf.push_back(f(g, 0));
      buf.push_back(f(g, 1));
      buf.push_back(f(g, 2));
    }
    std::vector<double> in;
    if (serial || (sw.sendrank == sw.recvrank && mpi->rank() == sw.sendrank)) {
      in = std::move(buf);
    } else {
      // Reverse path: ghosts travel back to the rank we received from.
      in = mpi->sendrecv(sw.recvrank, sw.sendrank, tag, buf);
    }
    require(in.size() == sw.sendlist.size() * 3,
            "reverse_forces: buffer size mismatch");
    for (std::size_t k = 0; k < sw.sendlist.size(); ++k) {
      const std::size_t i = std::size_t(sw.sendlist[k]);
      f(i, 0) += in[k * 3 + 0];
      f(i, 1) += in[k * 3 + 1];
      f(i, 2) += in[k * 3 + 2];
    }
  }
  atom.modified<kk::Host>(F_MASK);
}

void CommBrick::exchange(Atom& atom, const Domain& domain) {
  atom.sync<kk::Host>(X_MASK | V_MASK | TYPE_MASK | TAG_MASK | Q_MASK);
  require(atom.nghost == 0, "exchange: clear ghosts before exchanging");
  auto x = atom.k_x.h_view;

  // Remap everyone into the primary periodic box first.
  for (localint i = 0; i < atom.nlocal; ++i) {
    double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                    x(std::size_t(i), 2)};
    domain.remap(xi);
    for (int d = 0; d < 3; ++d) x(std::size_t(i), std::size_t(d)) = xi[d];
  }
  atom.modified<kk::Host>(X_MASK);
  if (mpi == nullptr) return;  // serial: remap is all that's needed

  const auto& g = domain.grid();
  constexpr int kExchDoubles = 9;  // x3 v3 type tag q
  auto pack_atom = [&](localint i, std::vector<double>& buf) {
    const auto v = atom.k_v.h_view;
    for (int d = 0; d < 3; ++d) buf.push_back(x(std::size_t(i), std::size_t(d)));
    for (int d = 0; d < 3; ++d) buf.push_back(v(std::size_t(i), std::size_t(d)));
    buf.push_back(double(atom.k_type.h_view(std::size_t(i))));
    buf.push_back(double(atom.k_tag.h_view(std::size_t(i))));
    buf.push_back(atom.k_q.h_view(std::size_t(i)));
  };
  auto remove_atom = [&](localint i) {
    const localint last = atom.nlocal - 1;
    if (i != last) {
      auto v = atom.k_v.h_view;
      for (int d = 0; d < 3; ++d) {
        x(std::size_t(i), std::size_t(d)) = x(std::size_t(last), std::size_t(d));
        v(std::size_t(i), std::size_t(d)) = v(std::size_t(last), std::size_t(d));
      }
      atom.k_type.h_view(std::size_t(i)) = atom.k_type.h_view(std::size_t(last));
      atom.k_tag.h_view(std::size_t(i)) = atom.k_tag.h_view(std::size_t(last));
      atom.k_q.h_view(std::size_t(i)) = atom.k_q.h_view(std::size_t(last));
    }
    atom.nlocal--;
  };
  auto add_atom_record = [&](const double* r) {
    atom.grow(atom.nlocal + 1);
    x = atom.k_x.h_view;  // may have been reallocated
    auto v = atom.k_v.h_view;
    const std::size_t i = std::size_t(atom.nlocal);
    for (int d = 0; d < 3; ++d) x(i, std::size_t(d)) = r[d];
    for (int d = 0; d < 3; ++d) v(i, std::size_t(d)) = r[3 + d];
    atom.k_type.h_view(i) = int(r[6]);
    atom.k_tag.h_view(i) = tagint(r[7]);
    atom.k_q.h_view(i) = r[8];
    atom.nlocal++;
  };

  int tag = 5000;
  for (int dim = 0; dim < 3; ++dim) {
    if (g.np[dim] == 1) continue;
    std::vector<double> send_lo, send_hi;
    for (localint i = 0; i < atom.nlocal; /*increment inside*/) {
      const double xd = x(std::size_t(i), std::size_t(dim));
      if (xd < domain.sublo[dim]) {
        pack_atom(i, send_lo);
        remove_atom(i);
      } else if (xd >= domain.subhi[dim]) {
        pack_atom(i, send_hi);
        remove_atom(i);
      } else {
        ++i;
      }
    }
    auto in_from_hi =
        mpi->sendrecv(g.neighbor_lo[dim], g.neighbor_hi[dim], tag, send_lo);
    ++tag;
    auto in_from_lo =
        mpi->sendrecv(g.neighbor_hi[dim], g.neighbor_lo[dim], tag, send_hi);
    ++tag;
    for (const auto* in : {&in_from_hi, &in_from_lo}) {
      require(in->size() % kExchDoubles == 0, "exchange: bad message size");
      for (std::size_t k = 0; k < in->size(); k += kExchDoubles)
        add_atom_record(in->data() + k);
    }
  }
  atom.modified<kk::Host>(X_MASK | V_MASK | TYPE_MASK | TAG_MASK | Q_MASK);
}

void CommBrick::migrate(Atom& atom, const Domain& domain) {
  exchange(atom, domain);  // remaps into the box; serial is done here
  if (mpi == nullptr) return;

  const auto& g = domain.grid();
  const int max_passes = g.np[0] + g.np[1] + g.np[2];
  for (int pass = 0; pass <= max_passes; ++pass) {
    atom.sync<kk::Host>(X_MASK);
    const auto x = atom.k_x.h_view;
    double misplaced = 0.0;
    for (localint i = 0; i < atom.nlocal; ++i) {
      const double xi[3] = {x(std::size_t(i), 0), x(std::size_t(i), 1),
                            x(std::size_t(i), 2)};
      if (!domain.inside_subbox(xi)) misplaced += 1.0;
    }
    if (mpi->allreduce_sum(misplaced) == 0.0) return;
    require(pass < max_passes,
            "migrate: atoms failed to reach their home ranks (inconsistent "
            "cut planes across ranks?)");
    exchange(atom, domain);
  }
}

bigint CommBrick::forward_doubles_per_step() const {
  bigint n = 0;
  for (const auto& sw : swaps_) n += bigint(sw.sendlist.size()) * 3;
  return n;
}

}  // namespace mlk
