#include "engine/lattice.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "util/error.hpp"
#include "util/random.hpp"

namespace mlk {

namespace {

struct Basis {
  double x, y, z;
  int type;
};

std::vector<Basis> basis_for(const std::string& style) {
  if (style == "sc") return {{0.0, 0.0, 0.0, 1}};
  if (style == "bcc") return {{0.0, 0.0, 0.0, 1}, {0.5, 0.5, 0.5, 1}};
  if (style == "fcc")
    return {{0.0, 0.0, 0.0, 1},
            {0.5, 0.5, 0.0, 1},
            {0.5, 0.0, 0.5, 1},
            {0.0, 0.5, 0.5, 1}};
  if (style == "hns_like") {
    // Synthetic molecular crystal: an 8-site cell mixing a "backbone"
    // species (type 1) and "substituent" species (type 2) with the dense,
    // low-symmetry packing characteristic of energetic molecular crystals
    // like HNS. Basis chosen so every type-1 atom has 2-3 type-1 bonded
    // neighbors at ~0.35a and several type-2 neighbors at ~0.3a.
    return {{0.10, 0.10, 0.10, 1}, {0.40, 0.15, 0.12, 1},
            {0.62, 0.40, 0.18, 1}, {0.85, 0.65, 0.22, 1},
            {0.25, 0.35, 0.30, 2}, {0.55, 0.62, 0.40, 2},
            {0.78, 0.12, 0.55, 2}, {0.15, 0.80, 0.70, 2}};
  }
  fatal("unknown lattice style '" + style + "'");
}

}  // namespace

int lattice_basis_count(const std::string& style) {
  return int(basis_for(style).size());
}

bigint create_lattice(const LatticeSpec& spec, Domain& domain, Atom& atom) {
  const auto basis = basis_for(spec.style);
  require(spec.a > 0.0, "lattice constant must be positive");
  require(spec.nx > 0 && spec.ny > 0 && spec.nz > 0,
          "lattice repetitions must be positive");

  domain.set_box(0.0, spec.nx * spec.a, 0.0, spec.ny * spec.a, 0.0,
                 spec.nz * spec.a);
  // Re-derive the sub-box if already decomposed (grid retains rank info).
  if (domain.grid().nranks > 1)
    domain.decompose(domain.grid().rank, domain.grid().nranks);

  int maxtype = 1;
  for (const auto& b : basis) maxtype = std::max(maxtype, b.type);
  if (atom.ntypes < maxtype) atom.set_ntypes(maxtype);

  RanPark jitter_rng(spec.seed);
  bigint tag = 0;
  const double ncell[3] = {double(spec.nx), double(spec.ny), double(spec.nz)};
  for (int ix = 0; ix < spec.nx; ++ix)
    for (int iy = 0; iy < spec.ny; ++iy)
      for (int iz = 0; iz < spec.nz; ++iz)
        for (const auto& b : basis) {
          double x[3] = {(ix + b.x) * spec.a, (iy + b.y) * spec.a,
                         (iz + b.z) * spec.a};
          if (spec.jitter > 0.0) {
            // Draw jitter deterministically for every site on every rank so
            // decomposed runs generate identical global configurations. Draw
            // even for region-excluded sites so the stream stays aligned.
            for (int d = 0; d < 3; ++d)
              x[d] += spec.jitter * spec.a * (2.0 * jitter_rng.uniform() - 1.0);
          }
          if (spec.region) {
            // Membership from the *nominal* fractional position: global,
            // jitter-independent, so all ranks agree without communication.
            const double frac[3] = {(ix + b.x) / ncell[0], (iy + b.y) / ncell[1],
                                    (iz + b.z) / ncell[2]};
            bool inside = true;
            for (int d = 0; d < 3; ++d)
              if (frac[d] < spec.region_lo[d] || frac[d] >= spec.region_hi[d])
                inside = false;
            if (!inside) continue;
          }
          ++tag;  // only created sites consume tags: contiguous 1..natoms
          if (spec.jitter > 0.0) domain.remap(x);
          if (domain.inside_subbox(x))
            atom.add_atom(b.type, tag, x[0], x[1], x[2]);
        }
  atom.natoms = tag;
  return atom.nlocal;
}

void create_velocities(Atom& atom, double temperature, double boltz,
                       double mvv2e, int seed, simmpi::Comm* mpi) {
  require(temperature >= 0.0, "temperature must be non-negative");
  auto v = atom.k_v.h_view;
  auto type = atom.k_type.h_view;
  const auto tag = atom.k_tag.h_view;
  const localint n = atom.nlocal;

  // Every rank walks one global stream over all tags in tag order (the
  // same approach the jitter generator uses), so each atom receives the
  // same unit gaussians regardless of which rank owns it.
  std::map<tagint, localint> local_of;
  for (localint i = 0; i < n; ++i) local_of[tag(std::size_t(i))] = i;

  double p[3] = {0, 0, 0};
  double mtot = 0.0;
  RanPark rng(seed);
  for (bigint t = 1; t <= atom.natoms; ++t) {
    double g[3];
    for (double& gk : g) gk = rng.gaussian();
    auto it = local_of.find(tagint(t));
    if (it == local_of.end()) continue;
    const localint i = it->second;
    const double m = atom.mass_of_type(type(std::size_t(i)));
    const double sd = std::sqrt(boltz * temperature / (m * mvv2e));
    for (int d = 0; d < 3; ++d) {
      v(std::size_t(i), std::size_t(d)) = sd * g[d];
      p[d] += m * sd * g[d];
    }
    mtot += m;
  }
  // Remove the *global* net momentum so the cell does not drift.
  if (mpi) {
    for (double& c : p) c = mpi->allreduce_sum(c);
    mtot = mpi->allreduce_sum(mtot);
  }
  if (mtot > 0.0)
    for (localint i = 0; i < n; ++i)
      for (int d = 0; d < 3; ++d)
        v(std::size_t(i), std::size_t(d)) -= p[d] / mtot;

  atom.k_v.modify<kk::Host>();
}

}  // namespace mlk
