// Device-side communication buffer pack/unpack kernels (§3.3): depending on
// problem size and hardware it can be better to pack halo buffers on the
// device rather than the host. These helpers implement the device path;
// CommBrick implements the host path. Tests verify both produce identical
// buffers; the ablation bench compares modelled costs.
#pragma once

#include <vector>

#include "engine/atom.hpp"
#include "kokkos/view.hpp"

namespace mlk {

class AtomVecKokkos {
 public:
  /// Pack positions of `sendlist` (device view) into a flat device buffer,
  /// applying `shift` to dimension `dim`. Runs on Device.
  static kk::View1D<double, kk::Device> pack_positions_device(
      Atom& atom, const kk::View1D<int, kk::Device>& sendlist, int dim,
      double shift);

  /// Unpack a flat device buffer into ghost slots [first, first+count).
  static void unpack_positions_device(
      Atom& atom, const kk::View1D<double, kk::Device>& buf, localint first);

  /// Host reference implementations (for round-trip tests).
  static std::vector<double> pack_positions_host(
      const Atom& atom, const std::vector<localint>& sendlist, int dim,
      double shift);

  /// Apply a permutation to the owned rows of every per-atom field:
  /// new row i takes old row perm[i] for x/v/f/type/tag/q. `perm` must be a
  /// bijection over [0, nlocal) and ghosts must be cleared (the spatial sort
  /// runs between exchange and borders, where nghost == 0). All fields are
  /// synced to host first and marked host-modified after, so both spaces
  /// stay coherent through the DualView flags.
  static void reorder_owned(Atom& atom, const std::vector<localint>& perm);
};

}  // namespace mlk
