#include "engine/fix_nvt.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

void FixNVT::parse_args(const std::vector<std::string>& args) {
  require(args.size() >= 2, "fix nvt: expected <T> <damp>");
  t_target = to_double(args[0]);
  damp = to_double(args[1]);
  require(t_target > 0.0, "fix nvt: T must be positive");
  require(damp > 0.0, "fix nvt: damp must be positive");
}

void FixNVT::half_kick(Simulation& sim) {
  // Update the thermostat variable from the instantaneous temperature and
  // rescale velocities (operator-split half step).
  const double dthalf = 0.5 * sim.dt;
  const double t_now = sim.temperature();
  zeta_ += dthalf * (t_now / t_target - 1.0) / (damp * damp);
  zeta_integral_ += dthalf * zeta_;
  const double scale = std::exp(-dthalf * zeta_);

  Atom& a = sim.atom;
  a.sync<kk::Host>(V_MASK);
  auto v = a.k_v.h_view;
  for (localint i = 0; i < a.nlocal; ++i)
    for (int d = 0; d < 3; ++d) v(std::size_t(i), std::size_t(d)) *= scale;
  a.modified<kk::Host>(V_MASK);
}

void FixNVT::initial_integrate(Simulation& sim) {
  half_kick(sim);
  // Standard velocity-Verlet first half.
  Atom& a = sim.atom;
  a.sync<kk::Host>(X_MASK | V_MASK | F_MASK | TYPE_MASK);
  auto x = a.k_x.h_view;
  auto v = a.k_v.h_view;
  auto f = a.k_f.h_view;
  auto type = a.k_type.h_view;
  const double dt = sim.dt;
  const double dtf = 0.5 * dt * sim.units.ftm2v;
  for (localint i = 0; i < a.nlocal; ++i) {
    const double dtfm = dtf / a.mass_of_type(type(std::size_t(i)));
    for (int d = 0; d < 3; ++d) {
      v(std::size_t(i), std::size_t(d)) += dtfm * f(std::size_t(i), std::size_t(d));
      x(std::size_t(i), std::size_t(d)) += dt * v(std::size_t(i), std::size_t(d));
    }
  }
  a.modified<kk::Host>(X_MASK | V_MASK);
}

void FixNVT::final_integrate(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<kk::Host>(V_MASK | F_MASK | TYPE_MASK);
  auto v = a.k_v.h_view;
  auto f = a.k_f.h_view;
  auto type = a.k_type.h_view;
  const double dtf = 0.5 * sim.dt * sim.units.ftm2v;
  for (localint i = 0; i < a.nlocal; ++i) {
    const double dtfm = dtf / a.mass_of_type(type(std::size_t(i)));
    for (int d = 0; d < 3; ++d)
      v(std::size_t(i), std::size_t(d)) += dtfm * f(std::size_t(i), std::size_t(d));
  }
  a.modified<kk::Host>(V_MASK);
  half_kick(sim);
}

void FixNVT::pack_restart(io::BinaryWriter& w) const {
  w.put(t_target);
  w.put(damp);
  w.put(zeta_);
  w.put(zeta_integral_);
}

void FixNVT::unpack_restart(io::BinaryReader& r) {
  t_target = r.get<double>();
  damp = r.get<double>();
  zeta_ = r.get<double>();
  zeta_integral_ = r.get<double>();
}

double FixNVT::conserved_correction(Simulation& sim) const {
  const double g = 3.0 * double(sim.global_natoms());
  const double kT = sim.units.boltz * t_target;
  return 0.5 * g * kT * damp * damp * zeta_ * zeta_ + g * kT * zeta_integral_;
}

void register_fix_nvt() {
  StyleRegistry::instance().add_fix(
      "nvt", [](ExecSpaceKind) -> std::unique_ptr<Fix> {
        return std::make_unique<FixNVT>();
      });
}

}  // namespace mlk
