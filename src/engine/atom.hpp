// Atom store — per-atom arrays held as kk::DualViews (the
// AtomVecAtomicKokkos of paper Fig. 1). Legacy, non-Kokkos styles access the
// same data through raw pointers aliased to the host views; Kokkos styles
// access whichever space they run in after calling sync with their datamask.
#pragma once

#include <cstdint>

#include "kokkos/dualview.hpp"
#include "util/types.hpp"

namespace mlk {

// Per-field datamask bits (paper §3.2): each style declares which fields it
// reads (sync) and writes (modified) so DualView transfers happen only when
// a field is stale in the space about to touch it.
enum DataMask : unsigned {
  X_MASK = 1u << 0,
  V_MASK = 1u << 1,
  F_MASK = 1u << 2,
  TYPE_MASK = 1u << 3,
  TAG_MASK = 1u << 4,
  Q_MASK = 1u << 5,
  ENERGY_MASK = 1u << 6,
  VIRIAL_MASK = 1u << 7,
  ALL_MASK = 0xffffffffu,
};

class Atom {
 public:
  Atom();

  // Counts. nlocal = owned, nghost = halo copies; nall() = both.
  localint nlocal = 0;
  localint nghost = 0;
  bigint natoms = 0;  // global count across all ranks (bigint: App. B)
  int ntypes = 1;

  localint nall() const { return nlocal + nghost; }
  localint nmax() const { return nmax_; }

  // Per-atom fields (extent nmax x ...).
  kk::DualView<double, 2> k_x;   // positions
  kk::DualView<double, 2> k_v;   // velocities
  kk::DualView<double, 2> k_f;   // forces
  kk::DualView<int, 1> k_type;   // 1-based atom type
  kk::DualView<tagint, 1> k_tag; // global IDs
  kk::DualView<double, 1> k_q;   // charges (ReaxFF / QEq)

  // Per-type mass, index 1..ntypes (slot 0 unused, LAMMPS convention).
  kk::DualView<double, 1> k_mass;

  /// Ensure capacity for at least n atoms (amortized growth). Preserves
  /// contents and sync state of every field.
  void grow(localint n);

  void set_ntypes(int ntypes);
  void set_mass(int type, double mass);
  double mass_of_type(int type) const { return k_mass.h_view(std::size_t(type)); }

  /// Append an owned atom (host-side); marks host modified.
  localint add_atom(int type, tagint tag, double x, double y, double z);

  /// Declare modification/synchronize helper over a datamask, host side.
  template <class Space>
  void sync(unsigned mask);
  template <class Space>
  void modified(unsigned mask);

  /// Drop all ghosts (before re-communicating borders).
  void clear_ghosts() { nghost = 0; }

  /// Zero the force array over nall in the given space and mark modified.
  template <class Space>
  void zero_forces();

 private:
  localint nmax_ = 0;
};

template <class Space>
void Atom::sync(unsigned mask) {
  if (mask & X_MASK) k_x.sync<Space>();
  if (mask & V_MASK) k_v.sync<Space>();
  if (mask & F_MASK) k_f.sync<Space>();
  if (mask & TYPE_MASK) k_type.sync<Space>();
  if (mask & TAG_MASK) k_tag.sync<Space>();
  if (mask & Q_MASK) k_q.sync<Space>();
}

template <class Space>
void Atom::modified(unsigned mask) {
  if (mask & X_MASK) k_x.modify<Space>();
  if (mask & V_MASK) k_v.modify<Space>();
  if (mask & F_MASK) k_f.modify<Space>();
  if (mask & TYPE_MASK) k_type.modify<Space>();
  if (mask & TAG_MASK) k_tag.modify<Space>();
  if (mask & Q_MASK) k_q.modify<Space>();
}

}  // namespace mlk
