// fix langevin/kk — device-space Langevin thermostat, dual-instantiated
// (§3.3). The stochastic kicks use per-atom tag-hashed counters instead of a
// shared RNG stream so the kernel is parallel-safe and the trajectory is
// independent of the execution space and decomposition.
#include <cmath>

#include "engine/fix.hpp"
#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "kokkos/core.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

namespace {

/// Counter-based uniform in [0,1): hash of (seed, tag, step, lane).
/// Stateless -> each atom's kick is reproducible anywhere.
inline double hash_uniform(unsigned seed, unsigned tag, unsigned step,
                           unsigned lane) {
  unsigned h = seed * 0x9E3779B9u ^ tag * 0x85EBCA6Bu ^ step * 0xC2B2AE35u ^
               lane * 0x27D4EB2Fu;
  h ^= h >> 16;
  h *= 0x45D9F3Bu;
  h ^= h >> 16;
  h *= 0x45D9F3Bu;
  h ^= h >> 16;
  return double(h) / 4294967296.0;
}

}  // namespace

template <class Space>
class FixLangevinKokkos : public Fix {
 public:
  void parse_args(const std::vector<std::string>& args) override {
    require(args.size() >= 3, "fix langevin/kk: expected <T> <damp> <seed>");
    t_target_ = to_double(args[0]);
    damp_ = to_double(args[1]);
    seed_ = unsigned(to_int(args[2]));
    require(damp_ > 0.0, "fix langevin/kk: damp must be positive");
  }

  // The counter-based RNG is stateless (keyed on seed/tag/step), so only
  // the parameters need to round-trip for a bitwise-identical resume.
  void pack_restart(io::BinaryWriter& w) const override {
    w.put(t_target_);
    w.put(damp_);
    w.put(seed_);
  }
  void unpack_restart(io::BinaryReader& r) override {
    t_target_ = r.get<double>();
    damp_ = r.get<double>();
    seed_ = r.get<unsigned>();
  }

  void post_force(Simulation& sim) override {
    Atom& a = sim.atom;
    a.sync<Space>(V_MASK | F_MASK | TYPE_MASK | TAG_MASK);
    a.k_mass.sync<Space>();
    auto v = a.k_v.template view<Space>();
    auto f = a.k_f.template view<Space>();
    auto type = a.k_type.template view<Space>();
    auto tag = a.k_tag.template view<Space>();
    auto mass = a.k_mass.template view<Space>();
    const double kT = sim.units.boltz * t_target_;
    const double mvv2e = sim.units.mvv2e;
    const double ftm2v = sim.units.ftm2v;
    const double damp = damp_;
    const double dt = sim.dt;
    const unsigned seed = seed_;
    const unsigned step = unsigned(sim.ntimestep & 0xffffffff);

    kk::parallel_for(
        std::string("FixLangevinKokkos<") + Space::name() + ">",
        kk::RangePolicy<Space>(0, std::size_t(a.nlocal)), [=](std::size_t i) {
          const double m = mass(std::size_t(type(i)));
          const double gamma = mvv2e * m / damp / ftm2v;
          const double sigma =
              std::sqrt(24.0 * kT * mvv2e * m / (damp * dt)) / ftm2v;
          const unsigned t = unsigned(tag(i) & 0xffffffff);
          for (std::size_t d = 0; d < 3; ++d) {
            const double u = hash_uniform(seed, t, step, unsigned(d)) - 0.5;
            f(i, d) += -gamma * v(i, d) + sigma * u;
          }
        });
    a.modified<Space>(F_MASK);
  }

 private:
  double t_target_ = 1.0;
  double damp_ = 1.0;
  unsigned seed_ = 48291;
};

template class FixLangevinKokkos<kk::Host>;
template class FixLangevinKokkos<kk::Device>;

void register_fix_langevin_kokkos() {
  StyleRegistry::instance().add_fix_kokkos(
      "langevin", [](ExecSpaceKind space) -> std::unique_ptr<Fix> {
        if (space == ExecSpaceKind::Host)
          return std::make_unique<FixLangevinKokkos<kk::Host>>();
        return std::make_unique<FixLangevinKokkos<kk::Device>>();
      });
}

}  // namespace mlk
