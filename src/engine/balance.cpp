#include "engine/balance.hpp"

#include <algorithm>
#include <cmath>

#include "comm/decomposition.hpp"
#include "util/error.hpp"

namespace mlk {

double Balancer::imbalance(const Atom& atom, simmpi::Comm* mpi) {
  if (mpi == nullptr || mpi->size() <= 1) return 1.0;
  const double n = double(atom.nlocal);
  const double nmax = mpi->allreduce_max(n);
  const double avg = mpi->allreduce_sum(n) / double(mpi->size());
  return avg > 0.0 ? nmax / avg : 1.0;
}

bool Balancer::recompute_cuts(const Atom& atom, Domain& domain,
                              simmpi::Comm* mpi, double min_width) const {
  if (mpi == nullptr || mpi->size() <= 1) return false;
  const auto& g = domain.grid();

  // One flat allreduce carries all three axis histograms of the owned-atom
  // coordinates. Binning is over the *global* box, so every rank derives
  // identical cuts from the identical summed histogram.
  const auto x = atom.k_x.h_view;
  std::vector<double> hist(std::size_t(3 * nbins), 0.0);
  for (int d = 0; d < 3; ++d) {
    if (g.np[d] == 1) continue;  // cuts along this axis stay trivial
    const double lo = domain.boxlo[d];
    const double inv = double(nbins) / domain.prd(d);
    for (localint i = 0; i < atom.nlocal; ++i) {
      const int b = std::clamp(
          int((x(std::size_t(i), std::size_t(d)) - lo) * inv), 0, nbins - 1);
      hist[std::size_t(d * nbins + b)] += 1.0;
    }
  }
  hist = mpi->allreduce_sum(hist);

  for (int d = 0; d < 3; ++d) {
    if (g.np[d] == 1) continue;
    const std::vector<double> axis(hist.begin() + d * nbins,
                                   hist.begin() + (d + 1) * nbins);
    domain.set_cuts(
        d, rcb_cuts(axis, g.np[d], domain.boxlo[d], domain.boxhi[d],
                    min_width));
  }
  return true;
}

}  // namespace mlk
