// Thermo output: periodic rows of step / temperature / energies / pressure,
// printed like LAMMPS and retained in memory so tests and benches can make
// assertions about conservation and trajectories.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace mlk {

class Simulation;

struct ThermoRow {
  bigint step = 0;
  double temp = 0.0;
  double pe = 0.0;
  double ke = 0.0;
  double etotal = 0.0;
  double press = 0.0;
};

class Thermo {
 public:
  bigint every = 100;   // output interval (0 = only first/last)
  bool print = true;    // write to stdout (rank 0 only)

  void header() const;
  /// Evaluate and record a row for the current step.
  void record(Simulation& sim);

  const std::vector<ThermoRow>& rows() const { return rows_; }
  void clear() { rows_.clear(); }

 private:
  std::vector<ThermoRow> rows_;
};

}  // namespace mlk
