// Thermo output: periodic rows of step / temperature / energies / pressure,
// printed like LAMMPS and retained in memory so tests and benches can make
// assertions about conservation and trajectories.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mlk {

class Simulation;

struct ThermoRow {
  bigint step = 0;
  double temp = 0.0;
  double pe = 0.0;
  double ke = 0.0;
  double etotal = 0.0;
  double press = 0.0;
};

/// Per-run neighbor-list maintenance counters for the end-of-run summary
/// (deltas over the run, computed by Verlet::run).
struct NeighSummary {
  bigint builds = 0;
  bigint dangerous = 0;  // see Neighbor::note_dangerous
  bigint retries = 0;    // device resize-and-retry overflows
  bool device = false;   // built via the device path (retries meaningful)
};

/// End-of-run load-balance summary (docs/DECOMPOSITION.md). The per-rank
/// atom extremes are collective, so Verlet::finish gathers them on every
/// rank *before* breakdown()'s rank-0 print gate.
struct BalanceSummary {
  double max_atoms = 0.0;  // max per-rank nlocal at run end
  double min_atoms = 0.0;
  double avg_atoms = 0.0;
  bigint nbalances = 0;    // RCB rebalances during the run
  bigint nsorts = 0;       // spatial sorts during the run
};

class Thermo {
 public:
  bigint every = 100;   // output interval (0 = only first/last)
  bool print = true;    // write to stdout (rank 0 only)

  void header() const;
  /// Evaluate and record a row for the current step.
  void record(Simulation& sim);

  /// LAMMPS-style end-of-run timing table (Pair/Neigh/Comm/Output/Other:
  /// seconds, % of loop time, per-step average) plus the neighbor-build
  /// summary (builds / dangerous builds / device retries), printed on rank 0
  /// after each `run`. `before` holds the TimerSet totals at loop start so
  /// only this run's accumulation is reported.
  void breakdown(Simulation& sim, double loop_seconds, bigint nsteps,
                 const std::map<std::string, double>& before,
                 const NeighSummary& neigh = {},
                 const BalanceSummary& balance = {}) const;

  const std::vector<ThermoRow>& rows() const { return rows_; }
  void clear() { rows_.clear(); }

 private:
  std::vector<ThermoRow> rows_;
};

}  // namespace mlk
