#include "snap/sna_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "pair/pair_compute_kokkos.hpp"  // EV reduction type
#include "snap/sna_recursion.hpp"
#include "util/error.hpp"

namespace mlk::snap {

template <class Space>
SNAKokkos<Space>::SNAKokkos(const SnaParams& p) : params_(p) {
  require(p.rcut > p.rmin0, "SNAKokkos: rcut must exceed rmin0");
  idx_.build(p.twojmax);
}

namespace {

double switching(const SnaParams& p, double r) {
  if (!p.switch_flag) return 1.0;
  if (r <= p.rmin0) return 1.0;
  if (r >= p.rcut) return 0.0;
  const double t = (r - p.rmin0) / (p.rcut - p.rmin0);
  return 0.5 * (std::cos(t * 3.14159265358979323846) + 1.0);
}

double dswitching(const SnaParams& p, double r) {
  if (!p.switch_flag) return 0.0;
  if (r <= p.rmin0 || r >= p.rcut) return 0.0;
  const double span = p.rcut - p.rmin0;
  const double t = (r - p.rmin0) / span;
  return -0.5 * 3.14159265358979323846 / span *
         std::sin(t * 3.14159265358979323846);
}

}  // namespace

template <class Space>
void SNAKokkos<Space>::stage_neighbors(Atom& atom, const NeighborList& list) {
  require(list.style == NeighStyle::Full,
          "SNAKokkos: requires a full neighbor list");
  atom.sync<Space>(X_MASK);
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();

  natom = list.inum;
  const double rcutsq = params_.rcut * params_.rcut;

  // Count pass (divergent, cheap) -> max reduction for table width.
  kk::View1D<int, Space> counts("snap::counts",
                                std::size_t(std::max<localint>(natom, 1)));
  kk::parallel_for("SNAP::stage_count",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     int c = 0;
                     const int jnum = numneigh(i);
                     for (int jj = 0; jj < jnum; ++jj) {
                       const int j = neigh(i, std::size_t(jj));
                       const double dx = x(std::size_t(j), 0) - x(i, 0);
                       const double dy = x(std::size_t(j), 1) - x(i, 1);
                       const double dz = x(std::size_t(j), 2) - x(i, 2);
                       const double rsq = dx * dx + dy * dy + dz * dz;
                       if (rsq < rcutsq && rsq > 1e-20) ++c;
                     }
                     counts(i) = c;
                   });
  int maxn = 1;
  kk::parallel_reduce_impl(
      "SNAP::stage_max", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i, int& m) {
        if (counts(i) > m) m = counts(i);
      },
      kk::Max<int>(maxn));
  maxneigh = std::max(maxn, 1);

  neigh_dr = kk::View3D<double, Space>("snap::neigh_dr",
                                       std::size_t(std::max<localint>(natom, 1)),
                                       std::size_t(maxneigh), 4);
  neigh_j = kk::View2D<int, Space>("snap::neigh_j",
                                   std::size_t(std::max<localint>(natom, 1)),
                                   std::size_t(maxneigh));
  nneigh = kk::View1D<int, Space>("snap::nneigh",
                                  std::size_t(std::max<localint>(natom, 1)));
  auto dr = neigh_dr;
  auto nj = neigh_j;
  auto nn = nneigh;

  // Fill pass: compressed per-atom tables (fully convergent afterwards).
  kk::parallel_for("SNAP::stage_fill",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     int c = 0;
                     const int jnum = numneigh(i);
                     for (int jj = 0; jj < jnum; ++jj) {
                       const int j = neigh(i, std::size_t(jj));
                       const double dx = x(std::size_t(j), 0) - x(i, 0);
                       const double dy = x(std::size_t(j), 1) - x(i, 1);
                       const double dz = x(std::size_t(j), 2) - x(i, 2);
                       const double rsq = dx * dx + dy * dy + dz * dz;
                       if (rsq >= rcutsq || rsq <= 1e-20) continue;
                       dr(i, std::size_t(c), 0) = dx;
                       dr(i, std::size_t(c), 1) = dy;
                       dr(i, std::size_t(c), 2) = dz;
                       dr(i, std::size_t(c), 3) = std::sqrt(rsq);
                       nj(i, std::size_t(c)) = j;
                       ++c;
                     }
                     nn(i) = c;
                   });

  // (Re)allocate per-atom quantum-number views.
  const std::size_t na = std::size_t(std::max<localint>(natom, 1));
  utot_r = kk::View2D<double, Space>("snap::utot_r", na,
                                     std::size_t(idx_.idxu_max));
  utot_i = kk::View2D<double, Space>("snap::utot_i", na,
                                     std::size_t(idx_.idxu_max));
  ylist_r = kk::View2D<double, Space>("snap::ylist_r", na,
                                      std::size_t(idx_.idxu_max));
  ylist_i = kk::View2D<double, Space>("snap::ylist_i", na,
                                      std::size_t(idx_.idxu_max));
}

template <class Space>
void SNAKokkos<Space>::compute_ui() {
  const SnaIndexes* idx = &idx_;
  const SnaParams p = params_;
  auto utr = utot_r;
  auto uti = utot_i;
  auto dr = neigh_dr;
  auto nn = nneigh;
  const int batch = std::max(1, ui_batch);
  const int nbatches = (maxneigh + batch - 1) / batch;
  const int iumax = idx_.idxu_max;

  // Self term.
  kk::parallel_for("SNAP::ComputeUi_self",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     for (int k = 0; k < iumax; ++k) {
                       utr(i, std::size_t(k)) = 0.0;
                       uti(i, std::size_t(k)) = 0.0;
                     }
                     for (int j = 0; j <= p.twojmax; ++j) {
                       const int base = idx->idxu_block[std::size_t(j)];
                       for (int mb = 0; mb <= j; ++mb)
                         utr(i, std::size_t(base + mb * (j + 1) + mb)) =
                             p.wself;
                     }
                   });

  // One team per (atom, neighbor-batch); recursion staged in team scratch;
  // `batch` neighbors summed locally before the atomic accumulation
  // (Table 2's ComputeUi work batching: fewer FP64 atomics + exposed ILP).
  const std::size_t league = std::size_t(natom) * std::size_t(nbatches);
  const std::size_t scratch =
      std::size_t(iumax) * 4 * sizeof(double);  // u pair + local accumulator
  auto policy =
      kk::TeamPolicy<Space>(league, 1, 32).set_scratch_size(scratch);
  kk::parallel_for("SNAP::ComputeUi", policy, [=](const kk::TeamMember& m) {
    const std::size_t i = m.league_rank() / std::size_t(nbatches);
    const int b = int(m.league_rank() % std::size_t(nbatches));
    const int jbeg = b * batch;
    const int jend = std::min(nn(i), jbeg + batch);
    if (jbeg >= jend) return;

    double* ur = m.team_scratch<double>(std::size_t(iumax));
    double* ui = m.team_scratch<double>(std::size_t(iumax));
    double* acc_r = m.team_scratch<double>(std::size_t(iumax));
    double* acc_i = m.team_scratch<double>(std::size_t(iumax));
    for (int k = 0; k < iumax; ++k) acc_r[k] = acc_i[k] = 0.0;

    for (int jj = jbeg; jj < jend; ++jj) {
      const double dx = dr(i, std::size_t(jj), 0);
      const double dy = dr(i, std::size_t(jj), 1);
      const double dz = dr(i, std::size_t(jj), 2);
      const double r = dr(i, std::size_t(jj), 3);
      double z0;
      cayley_klein(p.rfac0, p.rmin0, p.rcut, r, &z0, nullptr);
      compute_u_raw(*idx, dx, dy, dz, z0, r, ur, ui);
      const double s = switching(p, r);
      for (int k = 0; k < iumax; ++k) {
        acc_r[k] += s * ur[k];
        acc_i[k] += s * ui[k];
      }
    }
    // Single atomic accumulation per batch.
    for (int k = 0; k < iumax; ++k) {
      kk::atomic_add(&utr(i, std::size_t(k)), acc_r[k]);
      kk::atomic_add(&uti(i, std::size_t(k)), acc_i[k]);
    }
  });
}

template <class Space>
double SNAKokkos<Space>::compute_zi_bi_energy(const double* beta) {
  const SnaIndexes* idx = &idx_;
  const std::size_t na = std::size_t(std::max<localint>(natom, 1));
  if (!zlist_r.is_allocated() || zlist_r.extent(0) < na) {
    zlist_r = kk::View2D<double, Space>("snap::zlist_r", na,
                                        std::size_t(idx_.idxz_max));
    zlist_i = kk::View2D<double, Space>("snap::zlist_i", na,
                                        std::size_t(idx_.idxz_max));
    blist = kk::View2D<double, Space>("snap::blist", na,
                                      std::size_t(idx_.idxb_max));
  }
  auto utr = utot_r;
  auto uti = utot_i;
  auto zr = zlist_r;
  auto zi = zlist_i;
  auto bl = blist;

  // Z: parallel over atoms, serial over idxz within a thread.
  kk::parallel_for(
      "SNAP::ComputeZi", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i) {
        for (int jjz = 0; jjz < idx->idxz_max; ++jjz) {
          double z_r, z_i;
          compute_z_entry(
              *idx, idx->idxz[std::size_t(jjz)],
              [&](int k) { return utr(i, std::size_t(k)); },
              [&](int k) { return uti(i, std::size_t(k)); }, &z_r, &z_i);
          zr(i, std::size_t(jjz)) = z_r;
          zi(i, std::size_t(jjz)) = z_i;
        }
      });

  // B + energy reduction.
  double energy = 0.0;
  kk::parallel_reduce(
      "SNAP::ComputeBi", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i, double& esum) {
        for (int jjb = 0; jjb < idx->idxb_max; ++jjb) {
          const auto& t = idx->idxb[std::size_t(jjb)];
          int jjz = idx->z_block(t.j1, t.j2, t.j);
          int jju = idx->idxu_block[std::size_t(t.j)];
          double sumzu = 0.0;
          for (int mb = 0; 2 * mb < t.j; ++mb)
            for (int ma = 0; ma <= t.j; ++ma) {
              sumzu += utr(i, std::size_t(jju)) * zr(i, std::size_t(jjz)) +
                       uti(i, std::size_t(jju)) * zi(i, std::size_t(jjz));
              ++jjz;
              ++jju;
            }
          if (t.j % 2 == 0) {
            const int mb = t.j / 2;
            for (int ma = 0; ma < mb; ++ma) {
              sumzu += utr(i, std::size_t(jju)) * zr(i, std::size_t(jjz)) +
                       uti(i, std::size_t(jju)) * zi(i, std::size_t(jjz));
              ++jjz;
              ++jju;
            }
            sumzu +=
                0.5 * (utr(i, std::size_t(jju)) * zr(i, std::size_t(jjz)) +
                       uti(i, std::size_t(jju)) * zi(i, std::size_t(jjz)));
          }
          const double b = 2.0 * sumzu;
          bl(i, std::size_t(jjb)) = b;
          esum += beta[jjb] * b;
        }
      },
      energy);
  return energy;
}

template <class Space>
void SNAKokkos<Space>::compute_yi(const double* beta) {
  const SnaIndexes* idx = &idx_;
  auto utr = utot_r;
  auto uti = utot_i;
  auto yr = ylist_r;
  auto yi = ylist_i;

  kk::parallel_for("SNAP::Yi_zero",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     for (int k = 0; k < idx->idxu_max; ++k) {
                       yr(i, std::size_t(k)) = 0.0;
                       yi(i, std::size_t(k)) = 0.0;
                     }
                   });

  // Tiled (atom, flattened-Z) traversal: atom-tile width `yi_tile` is the
  // batch size v of §4.3.2 — small enough that the U rows for v atoms stay
  // cache-resident, large enough for convergent accesses.
  const std::size_t v = std::size_t(std::max(1, yi_tile));
  kk::MDRangePolicy<Space, 2> policy({std::size_t(natom),
                                      std::size_t(idx_.idxz_max)},
                                     {v, std::size_t(idx_.idxz_max)});
  kk::parallel_for(
      "SNAP::ComputeYi", policy, [=](std::size_t i, std::size_t jjz) {
        const auto& e = idx->idxz[jjz];
        double z_r, z_i;
        compute_z_entry(
            *idx, e, [&](int k) { return utr(i, std::size_t(k)); },
            [&](int k) { return uti(i, std::size_t(k)); }, &z_r, &z_i);
        const double betaj = beta[e.jjb] * e.beta_fac;
        kk::atomic_add(&yr(i, std::size_t(e.jju)), betaj * z_r);
        kk::atomic_add(&yi(i, std::size_t(e.jju)), betaj * z_i);
      });
}

template <class Space>
void SNAKokkos<Space>::compute_fused_deidrj(Atom& atom, double virial_out[6]) {
  const SnaIndexes* idx = &idx_;
  const SnaParams p = params_;
  atom.sync<Space>(F_MASK);
  auto f = atom.k_f.view<Space>();
  auto yr = ylist_r;
  auto yi = ylist_i;
  auto drv = neigh_dr;
  auto njv = neigh_j;
  auto nn = nneigh;
  const int iumax = idx_.idxu_max;

  // One team per (atom, neighbor): fused dU recursion over all three
  // directions with scratch staging, contraction with Y inlined into the
  // force accumulation (ComputeFusedDeidrj, Table 2).
  const std::size_t league = std::size_t(natom) * std::size_t(maxneigh);
  const std::size_t scratch = std::size_t(iumax) * 8 * sizeof(double);
  auto policy =
      kk::TeamPolicy<Space>(league, 1, 32).set_scratch_size(scratch);

  EV total;
  kk::parallel_reduce(
      "SNAP::ComputeFusedDeidrj", policy,
      [=](const kk::TeamMember& m, EV& ev) {
        const std::size_t i = m.league_rank() / std::size_t(maxneigh);
        const int jj = int(m.league_rank() % std::size_t(maxneigh));
        if (jj >= nn(i)) return;

        double* ur = m.team_scratch<double>(std::size_t(iumax));
        double* ui_ = m.team_scratch<double>(std::size_t(iumax));
        double* dur[3];
        double* dui[3];
        for (int k = 0; k < 3; ++k) {
          dur[k] = m.team_scratch<double>(std::size_t(iumax));
          dui[k] = m.team_scratch<double>(std::size_t(iumax));
        }

        const double dx = drv(i, std::size_t(jj), 0);
        const double dy = drv(i, std::size_t(jj), 1);
        const double dz = drv(i, std::size_t(jj), 2);
        const double r = drv(i, std::size_t(jj), 3);
        double z0, dz0dr;
        cayley_klein(p.rfac0, p.rmin0, p.rcut, r, &z0, &dz0dr);
        compute_du_raw(*idx, dx, dy, dz, z0, r, dz0dr, ur, ui_, dur, dui);

        const double s = switching(p, r);
        const double ds = dswitching(p, r);
        const double u3[3] = {dx / r, dy / r, dz / r};

        // Contract d(sfac*U)/dr with Y using the half-plus-middle-row
        // weighting (same traversal as ComputeDeidrj).
        double fij[3] = {0.0, 0.0, 0.0};
        auto accum = [&](int jju, double w) {
          for (int k = 0; k < 3; ++k) {
            const double dre = ds * ur[jju] * u3[k] + s * dur[k][jju];
            const double dim = ds * ui_[jju] * u3[k] + s * dui[k][jju];
            fij[k] += w * (dre * yr(i, std::size_t(jju)) +
                           dim * yi(i, std::size_t(jju)));
          }
        };
        for (int j = 0; j <= p.twojmax; ++j) {
          int jju = idx->idxu_block[std::size_t(j)];
          for (int mb = 0; 2 * mb < j; ++mb)
            for (int ma = 0; ma <= j; ++ma) accum(jju++, 1.0);
          if (j % 2 == 0) {
            const int mb = j / 2;
            for (int ma = 0; ma < mb; ++ma) accum(jju++, 1.0);
            accum(jju, 0.5);
          }
        }
        for (int k = 0; k < 3; ++k) fij[k] *= 2.0;

        const int jatom = njv(i, std::size_t(jj));
        for (std::size_t k = 0; k < 3; ++k) {
          kk::atomic_add(&f(i, k), fij[k]);
          kk::atomic_add(&f(std::size_t(jatom), k), -fij[k]);
        }
        ev.v[0] -= dx * fij[0];
        ev.v[1] -= dy * fij[1];
        ev.v[2] -= dz * fij[2];
        ev.v[3] -= dx * fij[1];
        ev.v[4] -= dx * fij[2];
        ev.v[5] -= dy * fij[2];
      },
      total);
  for (int k = 0; k < 6; ++k) virial_out[k] = total.v[k];
  atom.modified<Space>(F_MASK);
}

template class SNAKokkos<kk::Host>;
template class SNAKokkos<kk::Device>;

}  // namespace mlk::snap
