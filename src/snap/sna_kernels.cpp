#include "snap/sna_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "pair/pair_compute_kokkos.hpp"  // EV reduction type
#include "snap/sna_recursion.hpp"
#include "util/error.hpp"

namespace mlk::snap {

template <class Space>
SNAKokkos<Space>::SNAKokkos(const SnaParams& p) : params_(p) {
  require(p.rcut > p.rmin0, "SNAKokkos: rcut must exceed rmin0");
  idx_.build(p.twojmax);
}

namespace {

double switching(const SnaParams& p, double r) {
  if (!p.switch_flag) return 1.0;
  if (r <= p.rmin0) return 1.0;
  if (r >= p.rcut) return 0.0;
  const double t = (r - p.rmin0) / (p.rcut - p.rmin0);
  return 0.5 * (std::cos(t * 3.14159265358979323846) + 1.0);
}

double dswitching(const SnaParams& p, double r) {
  if (!p.switch_flag) return 0.0;
  if (r <= p.rmin0 || r >= p.rcut) return 0.0;
  const double span = p.rcut - p.rmin0;
  const double t = (r - p.rmin0) / span;
  return -0.5 * 3.14159265358979323846 / span *
         std::sin(t * 3.14159265358979323846);
}

}  // namespace

template <class Space>
void SNAKokkos<Space>::stage_neighbors(Atom& atom, const NeighborList& list) {
  require(list.style == NeighStyle::Full,
          "SNAKokkos: requires a full neighbor list");
  atom.sync<Space>(X_MASK);
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();

  natom = list.inum;
  const double rcutsq = params_.rcut * params_.rcut;

  // Count pass (divergent, cheap) -> max reduction for table width.
  kk::View1D<int, Space> counts("snap::counts",
                                std::size_t(std::max<localint>(natom, 1)));
  kk::parallel_for("SNAP::stage_count",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     int c = 0;
                     const int jnum = numneigh(i);
                     for (int jj = 0; jj < jnum; ++jj) {
                       const int j = neigh(i, std::size_t(jj));
                       const double dx = x(std::size_t(j), 0) - x(i, 0);
                       const double dy = x(std::size_t(j), 1) - x(i, 1);
                       const double dz = x(std::size_t(j), 2) - x(i, 2);
                       const double rsq = dx * dx + dy * dy + dz * dz;
                       if (rsq < rcutsq && rsq > 1e-20) ++c;
                     }
                     counts(i) = c;
                   });
  int maxn = 1;
  kk::parallel_reduce_impl(
      "SNAP::stage_max", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i, int& m) {
        if (counts(i) > m) m = counts(i);
      },
      kk::Max<int>(maxn));
  maxneigh = std::max(maxn, 1);

  neigh_dr = kk::View3D<double, Space>("snap::neigh_dr",
                                       std::size_t(std::max<localint>(natom, 1)),
                                       std::size_t(maxneigh), 4);
  neigh_j = kk::View2D<int, Space>("snap::neigh_j",
                                   std::size_t(std::max<localint>(natom, 1)),
                                   std::size_t(maxneigh));
  nneigh = kk::View1D<int, Space>("snap::nneigh",
                                  std::size_t(std::max<localint>(natom, 1)));
  auto dr = neigh_dr;
  auto nj = neigh_j;
  auto nn = nneigh;

  // Fill pass: compressed per-atom tables (fully convergent afterwards).
  kk::parallel_for("SNAP::stage_fill",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     int c = 0;
                     const int jnum = numneigh(i);
                     for (int jj = 0; jj < jnum; ++jj) {
                       const int j = neigh(i, std::size_t(jj));
                       const double dx = x(std::size_t(j), 0) - x(i, 0);
                       const double dy = x(std::size_t(j), 1) - x(i, 1);
                       const double dz = x(std::size_t(j), 2) - x(i, 2);
                       const double rsq = dx * dx + dy * dy + dz * dz;
                       if (rsq >= rcutsq || rsq <= 1e-20) continue;
                       dr(i, std::size_t(c), 0) = dx;
                       dr(i, std::size_t(c), 1) = dy;
                       dr(i, std::size_t(c), 2) = dz;
                       dr(i, std::size_t(c), 3) = std::sqrt(rsq);
                       nj(i, std::size_t(c)) = j;
                       ++c;
                     }
                     nn(i) = c;
                   });

  // (Re)allocate per-atom quantum-number views.
  const std::size_t na = std::size_t(std::max<localint>(natom, 1));
  utot_r = kk::View2D<double, Space>("snap::utot_r", na,
                                     std::size_t(idx_.idxu_max));
  utot_i = kk::View2D<double, Space>("snap::utot_i", na,
                                     std::size_t(idx_.idxu_max));
  ylist_r = kk::View2D<double, Space>("snap::ylist_r", na,
                                      std::size_t(idx_.idxu_max));
  ylist_i = kk::View2D<double, Space>("snap::ylist_i", na,
                                      std::size_t(idx_.idxu_max));
}

template <class Space>
void SNAKokkos<Space>::compute_ui() {
  const SnaIndexes* idx = &idx_;
  const SnaParams p = params_;
  auto utr = utot_r;
  auto uti = utot_i;
  auto dr = neigh_dr;
  auto nn = nneigh;
  const int batch = std::max(1, ui_batch);
  const int nbatches = (maxneigh + batch - 1) / batch;
  const int iumax = idx_.idxu_max;

  // Self term.
  kk::parallel_for("SNAP::ComputeUi_self",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     for (int k = 0; k < iumax; ++k) {
                       utr(i, std::size_t(k)) = 0.0;
                       uti(i, std::size_t(k)) = 0.0;
                     }
                     for (int j = 0; j <= p.twojmax; ++j) {
                       const int base = idx->idxu_block[std::size_t(j)];
                       for (int mb = 0; mb <= j; ++mb)
                         utr(i, std::size_t(base + mb * (j + 1) + mb)) =
                             p.wself;
                     }
                   });

  // One team per (atom, neighbor-batch); recursion staged in team scratch;
  // `batch` neighbors summed locally before the atomic accumulation
  // (Table 2's ComputeUi work batching: fewer FP64 atomics + exposed ILP).
  // The scratch accumulate below is elementwise (one add per flat index per
  // neighbor), so its packed form is bitwise-identical to scalar.
  const bool use_simd = kk::simd_enabled();
  if (use_simd) kk::simdstats::count_launch("SNAP::ComputeUi");
  const std::size_t league = std::size_t(natom) * std::size_t(nbatches);
  const std::size_t scratch =
      std::size_t(iumax) * 4 * sizeof(double);  // u pair + local accumulator
  auto policy =
      kk::TeamPolicy<Space>(league, 1, 32).set_scratch_size(scratch);
  kk::parallel_for("SNAP::ComputeUi", policy, [=](const kk::TeamMember& m) {
    const std::size_t i = m.league_rank() / std::size_t(nbatches);
    const int b = int(m.league_rank() % std::size_t(nbatches));
    const int jbeg = b * batch;
    const int jend = std::min(nn(i), jbeg + batch);
    if (jbeg >= jend) return;

    double* ur = m.team_scratch<double>(std::size_t(iumax));
    double* ui = m.team_scratch<double>(std::size_t(iumax));
    double* acc_r = m.team_scratch<double>(std::size_t(iumax));
    double* acc_i = m.team_scratch<double>(std::size_t(iumax));
    for (int k = 0; k < iumax; ++k) acc_r[k] = acc_i[k] = 0.0;

    for (int jj = jbeg; jj < jend; ++jj) {
      const double dx = dr(i, std::size_t(jj), 0);
      const double dy = dr(i, std::size_t(jj), 1);
      const double dz = dr(i, std::size_t(jj), 2);
      const double r = dr(i, std::size_t(jj), 3);
      double z0;
      cayley_klein(p.rfac0, p.rmin0, p.rcut, r, &z0, nullptr);
      compute_u_raw(*idx, dx, dy, dz, z0, r, ur, ui);
      const double s = switching(p, r);
      if (use_simd) {
        constexpr int W = kk::native_simd_width;
        using pd = kk::simd<double, W>;
        const pd sp(s);
        const int nfull = iumax & ~(W - 1);
        for (int k = 0; k < nfull; k += W) {
          (pd::load(acc_r + k) + sp * pd::load(ur + k)).store(acc_r + k);
          (pd::load(acc_i + k) + sp * pd::load(ui + k)).store(acc_i + k);
        }
        for (int k = nfull; k < iumax; ++k) {
          acc_r[k] += s * ur[k];
          acc_i[k] += s * ui[k];
        }
      } else {
        for (int k = 0; k < iumax; ++k) {
          acc_r[k] += s * ur[k];
          acc_i[k] += s * ui[k];
        }
      }
    }
    // Single atomic accumulation per batch.
    for (int k = 0; k < iumax; ++k) {
      kk::atomic_add(&utr(i, std::size_t(k)), acc_r[k]);
      kk::atomic_add(&uti(i, std::size_t(k)), acc_i[k]);
    }
  });
}

template <class Space>
double SNAKokkos<Space>::compute_zi_bi_energy(const double* beta) {
  const SnaIndexes* idx = &idx_;
  const std::size_t na = std::size_t(std::max<localint>(natom, 1));
  if (!zlist_r.is_allocated() || zlist_r.extent(0) < na) {
    zlist_r = kk::View2D<double, Space>("snap::zlist_r", na,
                                        std::size_t(idx_.idxz_max));
    zlist_i = kk::View2D<double, Space>("snap::zlist_i", na,
                                        std::size_t(idx_.idxz_max));
    blist = kk::View2D<double, Space>("snap::blist", na,
                                      std::size_t(idx_.idxb_max));
  }
  auto utr = utot_r;
  auto uti = utot_i;
  auto zr = zlist_r;
  auto zi = zlist_i;
  auto bl = blist;

  // Z: parallel over atoms, serial over idxz within a thread. SIMD assigns
  // lanes to *atoms* (the §4.3.2 batching axis): every lane shares the flat
  // index walk, so U rows load as packs — contiguous under Device
  // LayoutLeft — and each lane reproduces the scalar op order exactly
  // (bitwise policy; docs/VECTORIZATION.md).
  const bool use_simd = kk::simd_enabled();
  if (use_simd) {
    kk::simdstats::count_launch("SNAP::ComputeZi");
    constexpr int W = kk::native_simd_width;
    using pd = kk::simd<double, W>;
    const std::size_t na_sz = std::size_t(natom);
    const std::size_t nblk = (na_sz + W - 1) / W;
    kk::parallel_for(
        "SNAP::ComputeZi", kk::RangePolicy<Space>(0, nblk),
        [=](std::size_t blk) {
          const std::size_t i0 = blk * W;
          const int nlane = int(std::min<std::size_t>(W, na_sz - i0));
          if (nlane == W) {
            const bool contig = W == 1 || &utr(i0 + 1, 0) - &utr(i0, 0) == 1;
            const auto block = [&](const auto& lur, const auto& lui) {
              for (int jjz = 0; jjz < idx->idxz_max; ++jjz) {
                pd z_r, z_i;
                compute_z_entry_lanes<W>(*idx, idx->idxz[std::size_t(jjz)],
                                         lur, lui, &z_r, &z_i);
                for (int l = 0; l < W; ++l) {
                  zr(i0 + std::size_t(l), std::size_t(jjz)) = z_r[l];
                  zi(i0 + std::size_t(l), std::size_t(jjz)) = z_i[l];
                }
              }
            };
            if (contig)
              block([&](int k) { return pd::load(&utr(i0, std::size_t(k))); },
                    [&](int k) { return pd::load(&uti(i0, std::size_t(k))); });
            else
              block(
                  [&](int k) {
                    return pd::gather([&](int l) {
                      return utr(i0 + std::size_t(l), std::size_t(k));
                    });
                  },
                  [&](int k) {
                    return pd::gather([&](int l) {
                      return uti(i0 + std::size_t(l), std::size_t(k));
                    });
                  });
          } else {
            for (int l = 0; l < nlane; ++l) {
              const std::size_t i = i0 + std::size_t(l);
              for (int jjz = 0; jjz < idx->idxz_max; ++jjz) {
                double z_r, z_i;
                compute_z_entry(
                    *idx, idx->idxz[std::size_t(jjz)],
                    [&](int k) { return utr(i, std::size_t(k)); },
                    [&](int k) { return uti(i, std::size_t(k)); }, &z_r, &z_i);
                zr(i, std::size_t(jjz)) = z_r;
                zi(i, std::size_t(jjz)) = z_i;
              }
            }
          }
        });
  } else {
    kk::parallel_for(
        "SNAP::ComputeZi", kk::RangePolicy<Space>(0, std::size_t(natom)),
        [=](std::size_t i) {
          for (int jjz = 0; jjz < idx->idxz_max; ++jjz) {
            double z_r, z_i;
            compute_z_entry(
                *idx, idx->idxz[std::size_t(jjz)],
                [&](int k) { return utr(i, std::size_t(k)); },
                [&](int k) { return uti(i, std::size_t(k)); }, &z_r, &z_i);
            zr(i, std::size_t(jjz)) = z_r;
            zi(i, std::size_t(jjz)) = z_i;
          }
        });
  }

  // B + energy reduction.
  double energy = 0.0;
  kk::parallel_reduce(
      "SNAP::ComputeBi", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i, double& esum) {
        for (int jjb = 0; jjb < idx->idxb_max; ++jjb) {
          const auto& t = idx->idxb[std::size_t(jjb)];
          int jjz = idx->z_block(t.j1, t.j2, t.j);
          int jju = idx->idxu_block[std::size_t(t.j)];
          double sumzu = 0.0;
          for (int mb = 0; 2 * mb < t.j; ++mb)
            for (int ma = 0; ma <= t.j; ++ma) {
              sumzu += utr(i, std::size_t(jju)) * zr(i, std::size_t(jjz)) +
                       uti(i, std::size_t(jju)) * zi(i, std::size_t(jjz));
              ++jjz;
              ++jju;
            }
          if (t.j % 2 == 0) {
            const int mb = t.j / 2;
            for (int ma = 0; ma < mb; ++ma) {
              sumzu += utr(i, std::size_t(jju)) * zr(i, std::size_t(jjz)) +
                       uti(i, std::size_t(jju)) * zi(i, std::size_t(jjz));
              ++jjz;
              ++jju;
            }
            sumzu +=
                0.5 * (utr(i, std::size_t(jju)) * zr(i, std::size_t(jjz)) +
                       uti(i, std::size_t(jju)) * zi(i, std::size_t(jjz)));
          }
          const double b = 2.0 * sumzu;
          bl(i, std::size_t(jjb)) = b;
          esum += beta[jjb] * b;
        }
      },
      energy);
  return energy;
}

template <class Space>
void SNAKokkos<Space>::compute_yi(const double* beta) {
  const SnaIndexes* idx = &idx_;
  auto utr = utot_r;
  auto uti = utot_i;
  auto yr = ylist_r;
  auto yi = ylist_i;

  kk::parallel_for("SNAP::Yi_zero",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     for (int k = 0; k < idx->idxu_max; ++k) {
                       yr(i, std::size_t(k)) = 0.0;
                       yi(i, std::size_t(k)) = 0.0;
                     }
                   });

  // Tiled (atom, flattened-Z) traversal: atom-tile width `yi_tile` is the
  // batch size v of §4.3.2 — small enough that the U rows for v atoms stay
  // cache-resident, large enough for convergent accesses.
  const std::size_t v = std::size_t(std::max(1, yi_tile));
  const bool use_simd = kk::simd_enabled();
  if (use_simd) {
    // SIMD path: lanes over atoms (§4.3.2's batch axis — same shape as the
    // packed ComputeZi above). One block of W atoms walks all Z entries;
    // the W U rows (~idxu_max * W * 16 B) stay cache-resident, replacing
    // the MDRange atom tiling. Per (atom, jju) the adds still land in
    // ascending-jjz order and each block owns its atom rows outright, so
    // the accumulation is non-atomic and bitwise-identical to scalar.
    kk::simdstats::count_launch("SNAP::ComputeYi");
    constexpr int W = kk::native_simd_width;
    using pd = kk::simd<double, W>;
    const std::size_t na_sz = std::size_t(natom);
    const std::size_t nblk = (na_sz + W - 1) / W;
    kk::parallel_for(
        "SNAP::ComputeYi", kk::RangePolicy<Space>(0, nblk),
        [=](std::size_t blk) {
          const std::size_t i0 = blk * W;
          const int nlane = int(std::min<std::size_t>(W, na_sz - i0));
          if (nlane == W) {
            const bool contig = W == 1 || &utr(i0 + 1, 0) - &utr(i0, 0) == 1;
            const auto block = [&](const auto& lur, const auto& lui) {
              for (int jjz = 0; jjz < idx->idxz_max; ++jjz) {
                const auto& e = idx->idxz[std::size_t(jjz)];
                pd z_r, z_i;
                compute_z_entry_lanes<W>(*idx, e, lur, lui, &z_r, &z_i);
                const double betaj = beta[e.jjb] * e.beta_fac;
                for (int l = 0; l < W; ++l) {
                  yr(i0 + std::size_t(l), std::size_t(e.jju)) +=
                      betaj * z_r[l];
                  yi(i0 + std::size_t(l), std::size_t(e.jju)) +=
                      betaj * z_i[l];
                }
              }
            };
            if (contig)
              block([&](int k) { return pd::load(&utr(i0, std::size_t(k))); },
                    [&](int k) { return pd::load(&uti(i0, std::size_t(k))); });
            else
              block(
                  [&](int k) {
                    return pd::gather([&](int l) {
                      return utr(i0 + std::size_t(l), std::size_t(k));
                    });
                  },
                  [&](int k) {
                    return pd::gather([&](int l) {
                      return uti(i0 + std::size_t(l), std::size_t(k));
                    });
                  });
          } else {
            for (int l = 0; l < nlane; ++l) {
              const std::size_t i = i0 + std::size_t(l);
              for (int jjz = 0; jjz < idx->idxz_max; ++jjz) {
                const auto& e = idx->idxz[std::size_t(jjz)];
                double z_r, z_i;
                compute_z_entry(
                    *idx, e, [&](int k) { return utr(i, std::size_t(k)); },
                    [&](int k) { return uti(i, std::size_t(k)); }, &z_r, &z_i);
                const double betaj = beta[e.jjb] * e.beta_fac;
                yr(i, std::size_t(e.jju)) += betaj * z_r;
                yi(i, std::size_t(e.jju)) += betaj * z_i;
              }
            }
          }
        });
    return;
  }
  kk::MDRangePolicy<Space, 2> policy({std::size_t(natom),
                                      std::size_t(idx_.idxz_max)},
                                     {v, std::size_t(idx_.idxz_max)});
  kk::parallel_for(
      "SNAP::ComputeYi", policy, [=](std::size_t i, std::size_t jjz) {
        const auto& e = idx->idxz[jjz];
        double z_r, z_i;
        compute_z_entry(
            *idx, e, [&](int k) { return utr(i, std::size_t(k)); },
            [&](int k) { return uti(i, std::size_t(k)); }, &z_r, &z_i);
        const double betaj = beta[e.jjb] * e.beta_fac;
        kk::atomic_add(&yr(i, std::size_t(e.jju)), betaj * z_r);
        kk::atomic_add(&yi(i, std::size_t(e.jju)), betaj * z_i);
      });
}

template <class Space>
void SNAKokkos<Space>::compute_fused_deidrj(Atom& atom, double virial_out[6]) {
  const SnaIndexes* idx = &idx_;
  const SnaParams p = params_;
  atom.sync<Space>(F_MASK);
  auto f = atom.k_f.view<Space>();
  auto yr = ylist_r;
  auto yi = ylist_i;
  auto drv = neigh_dr;
  auto njv = neigh_j;
  auto nn = nneigh;
  const int iumax = idx_.idxu_max;

  // One team per (atom, neighbor): fused dU recursion over all three
  // directions with scratch staging, contraction with Y inlined into the
  // force accumulation (ComputeFusedDeidrj, Table 2).
  const bool use_simd = kk::simd_enabled();
  if (use_simd) kk::simdstats::count_launch("SNAP::ComputeFusedDeidrj");
  const std::size_t league = std::size_t(natom) * std::size_t(maxneigh);
  const std::size_t scratch = std::size_t(iumax) * 8 * sizeof(double);
  auto policy =
      kk::TeamPolicy<Space>(league, 1, 32).set_scratch_size(scratch);

  EV total;
  kk::parallel_reduce(
      "SNAP::ComputeFusedDeidrj", policy,
      [=](const kk::TeamMember& m, EV& ev) {
        const std::size_t i = m.league_rank() / std::size_t(maxneigh);
        const int jj = int(m.league_rank() % std::size_t(maxneigh));
        if (jj >= nn(i)) return;

        double* ur = m.team_scratch<double>(std::size_t(iumax));
        double* ui_ = m.team_scratch<double>(std::size_t(iumax));
        double* dur[3];
        double* dui[3];
        for (int k = 0; k < 3; ++k) {
          dur[k] = m.team_scratch<double>(std::size_t(iumax));
          dui[k] = m.team_scratch<double>(std::size_t(iumax));
        }

        const double dx = drv(i, std::size_t(jj), 0);
        const double dy = drv(i, std::size_t(jj), 1);
        const double dz = drv(i, std::size_t(jj), 2);
        const double r = drv(i, std::size_t(jj), 3);
        double z0, dz0dr;
        cayley_klein(p.rfac0, p.rmin0, p.rcut, r, &z0, &dz0dr);
        compute_du_raw(*idx, dx, dy, dz, z0, r, dz0dr, ur, ui_, dur, dui);

        const double s = switching(p, r);
        const double ds = dswitching(p, r);
        const double u3[3] = {dx / r, dy / r, dz / r};

        // Contract d(sfac*U)/dr with Y using the half-plus-middle-row
        // weighting (same traversal as ComputeDeidrj).
        double fij[3] = {0.0, 0.0, 0.0};
        auto accum = [&](int jju, double w) {
          for (int k = 0; k < 3; ++k) {
            const double dre = ds * ur[jju] * u3[k] + s * dur[k][jju];
            const double dim = ds * ui_[jju] * u3[k] + s * dui[k][jju];
            fij[k] += w * (dre * yr(i, std::size_t(jju)) +
                           dim * yi(i, std::size_t(jju)));
          }
        };
        if (use_simd) {
          // Packed contraction. Per j, all weight-1.0 entries are one
          // contiguous flat-index run starting at idxu_block[j]: the
          // 2mb<j rows back-to-back, plus (even j) the first j/2 entries
          // of the middle row; the lone 0.5-weighted middle entry follows
          // it. ur/dur live in contiguous team scratch (pack loads); Y is
          // a View row (gather). Lane partials reduce once at the end —
          // tolerance policy vs the scalar interleaved order.
          constexpr int W = kk::native_simd_width;
          using pd = kk::simd<double, W>;
          const pd sp(s), dsp(ds);
          pd facc[3];
          for (int j = 0; j <= p.twojmax; ++j) {
            const int jju0 = idx->idxu_block[std::size_t(j)];
            const int len =
                ((j + 1) / 2) * (j + 1) + (j % 2 == 0 ? j / 2 : 0);
            const int nfull = len & ~(W - 1);
            for (int off = 0; off < nfull; off += W) {
              const int base = jju0 + off;
              const pd urp = pd::load(ur + base);
              const pd uip = pd::load(ui_ + base);
              const pd yrp = pd::gather(
                  [&](int l) { return yr(i, std::size_t(base + l)); });
              const pd yip = pd::gather(
                  [&](int l) { return yi(i, std::size_t(base + l)); });
              for (int k = 0; k < 3; ++k) {
                const pd durp = pd::load(dur[k] + base);
                const pd duip = pd::load(dui[k] + base);
                const pd dre = dsp * urp * pd(u3[k]) + sp * durp;
                const pd dim = dsp * uip * pd(u3[k]) + sp * duip;
                facc[k] += dre * yrp + dim * yip;
              }
            }
            if (len > nfull) {
              const kk::simd_mask<W> m = kk::simd_mask<W>::first(len - nfull);
              const int base = jju0 + nfull;
              const pd urp = pd::load_masked(ur + base, m);
              const pd uip = pd::load_masked(ui_ + base, m);
              const pd yrp = pd::gather_masked(
                  m, [&](int l) { return yr(i, std::size_t(base + l)); });
              const pd yip = pd::gather_masked(
                  m, [&](int l) { return yi(i, std::size_t(base + l)); });
              for (int k = 0; k < 3; ++k) {
                const pd durp = pd::load_masked(dur[k] + base, m);
                const pd duip = pd::load_masked(dui[k] + base, m);
                const pd dre = dsp * urp * pd(u3[k]) + sp * durp;
                const pd dim = dsp * uip * pd(u3[k]) + sp * duip;
                facc[k] += dre * yrp + dim * yip;
              }
            }
            if (j % 2 == 0) accum(jju0 + len, 0.5);
          }
          for (int k = 0; k < 3; ++k) fij[k] += kk::reduce_sum(facc[k]);
        } else {
          for (int j = 0; j <= p.twojmax; ++j) {
            int jju = idx->idxu_block[std::size_t(j)];
            for (int mb = 0; 2 * mb < j; ++mb)
              for (int ma = 0; ma <= j; ++ma) accum(jju++, 1.0);
            if (j % 2 == 0) {
              const int mb = j / 2;
              for (int ma = 0; ma < mb; ++ma) accum(jju++, 1.0);
              accum(jju, 0.5);
            }
          }
        }
        for (int k = 0; k < 3; ++k) fij[k] *= 2.0;

        const int jatom = njv(i, std::size_t(jj));
        for (std::size_t k = 0; k < 3; ++k) {
          kk::atomic_add(&f(i, k), fij[k]);
          kk::atomic_add(&f(std::size_t(jatom), k), -fij[k]);
        }
        ev.v[0] -= dx * fij[0];
        ev.v[1] -= dy * fij[1];
        ev.v[2] -= dz * fij[2];
        ev.v[3] -= dx * fij[1];
        ev.v[4] -= dx * fij[2];
        ev.v[5] -= dy * fij[2];
      },
      total);
  for (int k = 0; k < 6; ++k) virial_out[k] = total.v[k];
  atom.modified<Space>(F_MASK);
}

template class SNAKokkos<kk::Host>;
template class SNAKokkos<kk::Device>;

}  // namespace mlk::snap
