#include "snap/clebsch_gordan.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mlk::snap {

double factorial(int n) {
  require(n >= 0 && n <= 170, "factorial argument out of range");
  static const auto table = [] {
    std::vector<double> t(171);
    t[0] = 1.0;
    for (int i = 1; i <= 170; ++i) t[std::size_t(i)] = t[std::size_t(i) - 1] * i;
    return t;
  }();
  return table[std::size_t(n)];
}

namespace {
/// Triangle coefficient sqrt-free part of the CG formula.
double deltacg(int j1, int j2, int j) {
  const double sfaccg = factorial((j1 + j2 + j) / 2 + 1);
  return std::sqrt(factorial((j1 + j2 - j) / 2) * factorial((j1 - j2 + j) / 2) *
                   factorial((-j1 + j2 + j) / 2) / sfaccg);
}
}  // namespace

double clebsch_gordan(int j1, int m1, int j2, int m2, int j, int m) {
  if (m != m1 + m2) return 0.0;
  // Doubled-argument parity: (j + m) must be even for valid projections.
  if ((j1 + m1) % 2 || (j2 + m2) % 2 || (j + m) % 2) return 0.0;
  if (std::abs(m1) > j1 || std::abs(m2) > j2 || std::abs(m) > j) return 0.0;
  if (j < std::abs(j1 - j2) || j > j1 + j2) return 0.0;

  const int z_min =
      std::max({0, (j2 - j - m1) / 2, (j1 - j + m2) / 2});
  const int z_max =
      std::min({(j1 + j2 - j) / 2, (j1 - m1) / 2, (j2 + m2) / 2});
  double sum = 0.0;
  for (int z = z_min; z <= z_max; ++z) {
    const int ifac = (z % 2) ? -1 : 1;
    sum += ifac /
           (factorial(z) * factorial((j1 + j2 - j) / 2 - z) *
            factorial((j1 - m1) / 2 - z) * factorial((j2 + m2) / 2 - z) *
            factorial((j - j2 + m1) / 2 + z) *
            factorial((j - j1 - m2) / 2 + z));
  }
  const double cc2 =
      deltacg(j1, j2, j) *
      std::sqrt(factorial((j1 + m1) / 2) * factorial((j1 - m1) / 2) *
                factorial((j2 + m2) / 2) * factorial((j2 - m2) / 2) *
                factorial((j + m) / 2) * factorial((j - m) / 2) * (j + 1));
  return cc2 * sum;
}

int SnaIndexes::idxb_index(int j1, int j2, int j) const {
  for (std::size_t k = 0; k < idxb.size(); ++k)
    if (idxb[k].j1 == j1 && idxb[k].j2 == j2 && idxb[k].j == j) return int(k);
  fatal("idxb_index: triple not stored");
}

void SnaIndexes::build(int tjm) {
  require(tjm >= 0 && tjm <= 24, "twojmax out of supported range");
  twojmax = tjm;

  // --- U index blocks ---
  idxu_block.assign(std::size_t(twojmax) + 1, 0);
  idxu_max = 0;
  for (int j = 0; j <= twojmax; ++j) {
    idxu_block[std::size_t(j)] = idxu_max;
    idxu_max += (j + 1) * (j + 1);
  }

  // --- B triples: j1 >= j2, |j1-j2| <= j <= min(twojmax, j1+j2), j >= j1 ---
  idxb.clear();
  for (int j1 = 0; j1 <= twojmax; ++j1)
    for (int j2 = 0; j2 <= j1; ++j2)
      for (int j = j1 - j2; j <= std::min(twojmax, j1 + j2); j += 2)
        if (j >= j1) idxb.push_back({j1, j2, j});
  idxb_max = int(idxb.size());

  // --- CG blocks ---
  const std::size_t nblk =
      std::size_t(twojmax + 1) * (twojmax + 1) * (twojmax + 1);
  idxcg_block.assign(nblk, -1);
  idxz_block.assign(nblk, -1);
  cglist.clear();
  for (int j1 = 0; j1 <= twojmax; ++j1)
    for (int j2 = 0; j2 <= j1; ++j2)
      for (int j = j1 - j2; j <= std::min(twojmax, j1 + j2); j += 2) {
        idxcg_block[std::size_t(((j1 * (twojmax + 1)) + j2) * (twojmax + 1) +
                                j)] = int(cglist.size());
        for (int m1 = 0; m1 <= j1; ++m1) {
          const int aa2 = 2 * m1 - j1;
          for (int m2 = 0; m2 <= j2; ++m2) {
            const int bb2 = 2 * m2 - j2;
            const int m = (aa2 + bb2 + j) / 2;
            if (m < 0 || m > j || (aa2 + bb2 + j) % 2 != 0) {
              cglist.push_back(0.0);
              continue;
            }
            cglist.push_back(clebsch_gordan(j1, aa2, j2, bb2, j, aa2 + bb2));
          }
        }
      }

  // --- Z entries ---
  idxz.clear();
  for (int j1 = 0; j1 <= twojmax; ++j1)
    for (int j2 = 0; j2 <= j1; ++j2)
      for (int j = j1 - j2; j <= std::min(twojmax, j1 + j2); j += 2) {
        idxz_block[std::size_t(((j1 * (twojmax + 1)) + j2) * (twojmax + 1) +
                               j)] = int(idxz.size());
        for (int mb = 0; 2 * mb <= j; ++mb)
          for (int ma = 0; ma <= j; ++ma) {
            ZEntry e;
            e.j1 = j1;
            e.j2 = j2;
            e.j = j;
            e.ma = ma;
            e.mb = mb;
            e.ma1min = std::max(0, (2 * ma - j - j2 + j1) / 2);
            e.ma2max = (2 * ma - j - (2 * e.ma1min - j1) + j2) / 2;
            e.na = std::min(j1, (2 * ma - j + j2 + j1) / 2) - e.ma1min + 1;
            e.mb1min = std::max(0, (2 * mb - j - j2 + j1) / 2);
            e.mb2max = (2 * mb - j - (2 * e.mb1min - j1) + j2) / 2;
            e.nb = std::min(j1, (2 * mb - j + j2 + j1) / 2) - e.mb1min + 1;
            e.jju = idxu_block[std::size_t(j)] + mb * (j + 1) + ma;
            // Pre-resolve the symmetry-weighted beta pickup (LAMMPS
            // compute_yi weighting over stored (j1,j2,j) permutations).
            if (j >= j1) {
              e.jjb = idxb_index(j1, j2, j);
              e.beta_fac = (j1 == j) ? ((j2 == j) ? 3.0 : 2.0) : 1.0;
            } else if (j >= j2) {
              e.jjb = idxb_index(j, j2, j1);
              e.beta_fac = ((j2 == j) ? 2.0 : 1.0) * (j1 + 1) / (j + 1.0);
            } else {
              e.jjb = idxb_index(j2, j, j1);
              e.beta_fac = double(j1 + 1) / (j + 1.0);
            }
            idxz.push_back(e);
          }
      }
  idxz_max = int(idxz.size());

  // --- rootpq ---
  rootpq = kk::View<double, 2>("sna::rootpq", std::size_t(twojmax) + 2,
                               std::size_t(twojmax) + 2);
  for (int p = 1; p <= twojmax + 1; ++p)
    for (int q = 1; q <= twojmax + 1; ++q)
      rootpq(std::size_t(p), std::size_t(q)) = std::sqrt(double(p) / double(q));
}

}  // namespace mlk::snap
