// Clebsch-Gordan coefficients and SU(2) index bookkeeping for SNAP (§4.3).
//
// Convention: all angular momenta are stored doubled ("2j" integers), so
// half-integer j are exact. j runs 0..twojmax; projection indices m are
// stored as row/column indices ma, mb in 0..j (m = 2*ma - j in doubled
// units), matching the LAMMPS SNA convention.
#pragma once

#include <vector>

#include "kokkos/view.hpp"

namespace mlk::snap {

/// factorial(n) as double (n up to ~170 before overflow; SNAP needs < 40).
double factorial(int n);

/// Clebsch-Gordan coefficient C^{j m}_{j1 m1 j2 m2} with doubled arguments
/// (j1, m1, j2, m2, j, m all 2x physical values; m = m1 + m2 required).
double clebsch_gordan(int j1, int m1, int j2, int m2, int j, int m);

/// Index bookkeeping shared by the host and Kokkos SNAP implementations.
struct SnaIndexes {
  int twojmax = 0;

  // U matrices: flattened (j, ma, mb) -> idxu_block[j] + mb*(j+1) + ma.
  std::vector<int> idxu_block;
  int idxu_max = 0;

  // B triples (j1 >= j2, j >= j1): idxb list and reverse lookup.
  struct BTriple {
    int j1, j2, j;
  };
  std::vector<BTriple> idxb;
  int idxb_max = 0;
  /// idxb_block(j1,j2,j) -> index into idxb (valid only for stored triples).
  int idxb_index(int j1, int j2, int j) const;

  // Z entries: every (j1,j2,j) with j1 >= j2, |j1-j2| <= j <= min(2J, j1+j2),
  // times (mb, ma) with 2*mb <= j. Each entry pre-resolves the CG summation
  // bounds (LAMMPS idxz layout).
  struct ZEntry {
    int j1, j2, j;
    int ma1min, ma2max, na;
    int mb1min, mb2max, nb;
    int jju;  // target flat U index for (j, ma, mb)
    int ma, mb;
    // Pre-resolved Y accumulation weight: betaj = beta[jjb] * beta_fac
    // (symmetry multiplicity over the up-to-three stored permutations).
    int jjb = 0;
    double beta_fac = 1.0;
  };
  std::vector<ZEntry> idxz;
  int idxz_max = 0;
  /// First idxz entry of a (j1,j2,j) block (entries are contiguous).
  std::vector<int> idxz_block;  // indexed like idxcg_block

  // CG coefficient storage: contiguous blocks per (j1,j2,j).
  std::vector<double> cglist;
  std::vector<int> idxcg_block;  // (j1,j2,j) -> offset into cglist
  int cg_offset(int j1, int j2, int j) const {
    return idxcg_block[std::size_t(((j1 * (twojmax + 1)) + j2) * (twojmax + 1) + j)];
  }
  int z_block(int j1, int j2, int j) const {
    return idxz_block[std::size_t(((j1 * (twojmax + 1)) + j2) * (twojmax + 1) + j)];
  }

  // rootpq(p, q) = sqrt(p/q), p,q in 1..twojmax (+1 padding).
  kk::View<double, 2> rootpq;

  void build(int twojmax);
};

}  // namespace mlk::snap
