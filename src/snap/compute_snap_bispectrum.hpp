// compute snap/bispectrum — per-atom bispectrum descriptors, the quantity a
// SNAP (or other ML) potential is trained on (paper Appendix A: generating
// descriptors for machine-learning workflows). Independent of any pair
// style: owns its own SNA calculator.
#pragma once

#include <memory>
#include <vector>

#include "engine/compute.hpp"
#include "snap/sna.hpp"
#include "util/types.hpp"

namespace mlk {

class ComputeSnapBispectrum : public Compute {
 public:
  ComputeSnapBispectrum(double rcut, int twojmax);

  /// Scalar interface: mean |B| over atoms and components.
  double compute_scalar(Simulation& sim) override;

  /// Per-atom descriptor matrix (nlocal x ncoeff), row-major.
  const std::vector<double>& descriptors() const { return desc_; }
  int ncoeff() const { return sna_->ncoeff(); }
  void evaluate(Simulation& sim);

 private:
  snap::SnaParams params_;
  std::unique_ptr<snap::SNA> sna_;
  std::vector<double> desc_;
};

void register_compute_snap_bispectrum();

}  // namespace mlk
