#include "snap/compute_snap_bispectrum.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"

namespace mlk {

ComputeSnapBispectrum::ComputeSnapBispectrum(double rcut, int twojmax) {
  params_.rcut = rcut;
  params_.twojmax = twojmax;
  sna_ = std::make_unique<snap::SNA>(params_);
}

void ComputeSnapBispectrum::evaluate(Simulation& sim) {
  require(sim.setup_done, "snap/bispectrum: run setup() first");
  require(params_.rcut <= sim.neighbor.cutghost(),
          "snap/bispectrum: descriptor cutoff exceeds the neighbor list");
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();

  const auto x = atom.k_x.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const double rcutsq = params_.rcut * params_.rcut;

  desc_.assign(std::size_t(atom.nlocal) * std::size_t(sna_->ncoeff()), 0.0);
  for (localint i = 0; i < list.inum; ++i) {
    sna_->zero_ui();
    for (int c = 0; c < numneigh(std::size_t(i)); ++c) {
      const int j = neigh(std::size_t(i), std::size_t(c));
      const double dr[3] = {x(std::size_t(j), 0) - x(std::size_t(i), 0),
                            x(std::size_t(j), 1) - x(std::size_t(i), 1),
                            x(std::size_t(j), 2) - x(std::size_t(i), 2)};
      const double rsq = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
      if (rsq >= rcutsq || rsq < 1e-20) continue;
      sna_->add_neighbor_ui(dr, std::sqrt(rsq));
    }
    sna_->compute_zi();
    sna_->compute_bi();
    for (int c = 0; c < sna_->ncoeff(); ++c)
      desc_[std::size_t(i) * std::size_t(sna_->ncoeff()) + std::size_t(c)] =
          sna_->blist()[std::size_t(c)];
  }
}

double ComputeSnapBispectrum::compute_scalar(Simulation& sim) {
  evaluate(sim);
  double acc = 0.0;
  for (double d : desc_) acc += std::abs(d);
  return desc_.empty() ? 0.0 : acc / double(desc_.size());
}

void register_compute_snap_bispectrum() {
  StyleRegistry::instance().add_compute("snap/bispectrum", [] {
    // Default: tungsten-like cutoff, 2Jmax = 6.
    return std::make_unique<ComputeSnapBispectrum>(4.7, 6);
  });
}

}  // namespace mlk
