// pair_style snap — the machine-learning SNAP potential (§4.3), host
// implementation: outer loop over atoms, four subroutines per atom, single
// shared staging arrays (the paper's "initial, non-Kokkos CPU
// implementation").
//
// Trained coefficient files do not ship with this repo; coefficients are
// deterministic synthetic values (see DESIGN.md) or set programmatically
// via set_beta(), which is what every correctness test and bench does.
#pragma once

#include <memory>

#include "engine/pair.hpp"
#include "snap/sna.hpp"

namespace mlk {

class PairSNAP : public Pair {
 public:
  PairSNAP();

  /// coeff: * * <rcut> <twojmax> [seed]
  void coeff(const std::vector<std::string>& args) override;
  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override { return params_.rcut; }
  NeighStyle neigh_style() const override { return NeighStyle::Full; }
  bool newton() const override { return false; }

  void set_beta(std::vector<double> beta) { beta_ = std::move(beta); }
  const std::vector<double>& beta() const { return beta_; }
  const snap::SnaParams& snap_params() const { return params_; }
  snap::SNA* sna() { return sna_.get(); }

  /// Per-atom bispectrum of the last eflag compute (tests).
  const std::vector<double>& last_bispectrum() const { return b_last_; }

 protected:
  snap::SnaParams params_;
  std::vector<double> beta_;
  std::unique_ptr<snap::SNA> sna_;
  std::vector<double> b_last_;
};

void register_pair_snap();

}  // namespace mlk
