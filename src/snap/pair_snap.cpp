#include "snap/pair_snap.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

PairSNAP::PairSNAP() {
  style_name = "snap";
  needs_reverse_comm = true;  // writes ghost forces (f[j] -= fij)
}

void PairSNAP::coeff(const std::vector<std::string>& args) {
  require(args.size() >= 4 && args[0] == "*" && args[1] == "*",
          "snap coeff: * * <rcut> <twojmax> [seed]");
  params_.rcut = to_double(args[2]);
  params_.twojmax = to_int(args[3]);
  require(params_.rcut > 0.0, "snap: rcut must be positive");
  require(params_.twojmax >= 0 && params_.twojmax <= 12,
          "snap: twojmax out of range");
  sna_ = std::make_unique<snap::SNA>(params_);
  const int seed = args.size() > 4 ? to_int(args[4]) : 7771;
  if (beta_.empty()) beta_ = snap::synthetic_beta(sna_->ncoeff(), seed);
}

void PairSNAP::init(Simulation&) {
  require(sna_ != nullptr, "snap: pair_coeff not given");
  require(int(beta_.size()) == sna_->ncoeff(),
          "snap: beta length does not match ncoeff");
}

void PairSNAP::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK | TYPE_MASK | F_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();
  require(list.style == NeighStyle::Full, "snap requires a full list");

  const auto x = atom.k_x.h_view;
  auto f = atom.k_f.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const double rcutsq = params_.rcut * params_.rcut;

  if (eflag) b_last_.assign(std::size_t(atom.nlocal) * std::size_t(sna_->ncoeff()), 0.0);

  std::vector<int> jlist;
  std::vector<double> drlist;  // 4 per neighbor: dx dy dz r
  for (localint i = 0; i < list.inum; ++i) {
    // Gather neighbors inside the SNAP cutoff.
    jlist.clear();
    drlist.clear();
    for (int jj = 0; jj < numneigh(std::size_t(i)); ++jj) {
      const int j = neigh(std::size_t(i), std::size_t(jj));
      const double dx = x(std::size_t(j), 0) - x(std::size_t(i), 0);
      const double dy = x(std::size_t(j), 1) - x(std::size_t(i), 1);
      const double dz = x(std::size_t(j), 2) - x(std::size_t(i), 2);
      const double rsq = dx * dx + dy * dy + dz * dz;
      if (rsq >= rcutsq || rsq < 1e-20) continue;
      jlist.push_back(j);
      drlist.push_back(dx);
      drlist.push_back(dy);
      drlist.push_back(dz);
      drlist.push_back(std::sqrt(rsq));
    }

    // Step 1: neighborhood decomposition U.
    sna_->zero_ui();
    for (std::size_t k = 0; k < jlist.size(); ++k)
      sna_->add_neighbor_ui(&drlist[4 * k], drlist[4 * k + 3]);

    // Energy path: Z then B, E_i = beta . B_i.
    if (eflag) {
      sna_->compute_zi();
      sna_->compute_bi();
      const auto& b = sna_->blist();
      double ei = 0.0;
      for (int c = 0; c < sna_->ncoeff(); ++c) {
        ei += beta_[std::size_t(c)] * b[std::size_t(c)];
        b_last_[std::size_t(i) * std::size_t(sna_->ncoeff()) + std::size_t(c)] =
            b[std::size_t(c)];
      }
      eng_vdwl += ei;
    }

    // Force path: adjoint Y, then per-neighbor contraction.
    sna_->compute_yi(beta_.data());
    for (std::size_t k = 0; k < jlist.size(); ++k) {
      double fij[3];
      sna_->compute_dedr(&drlist[4 * k], drlist[4 * k + 3], fij);
      const int j = jlist[k];
      // fij = dE_i/d(r_j): force on j is -fij, reaction lands on i.
      for (int d = 0; d < 3; ++d) {
        f(std::size_t(i), std::size_t(d)) += fij[d];
        f(std::size_t(j), std::size_t(d)) -= fij[d];
      }
      if (eflag) {
        const double* dr = &drlist[4 * k];
        virial[0] -= dr[0] * fij[0];
        virial[1] -= dr[1] * fij[1];
        virial[2] -= dr[2] * fij[2];
        virial[3] -= dr[0] * fij[1];
        virial[4] -= dr[0] * fij[2];
        virial[5] -= dr[1] * fij[2];
      }
    }
  }
  atom.modified<kk::Host>(F_MASK);
}

void register_pair_snap() {
  StyleRegistry::instance().add_pair(
      "snap", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
        return std::make_unique<PairSNAP>();
      });
}

}  // namespace mlk
