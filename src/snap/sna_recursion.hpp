// Raw-buffer Wigner-U recursion shared by the host SNA calculator and the
// SNAKokkos device kernels (which stage these buffers in team scratch —
// the software-managed cache of §4.4).
#pragma once

#include <cmath>

#include "kokkos/simd.hpp"
#include "snap/clebsch_gordan.hpp"

namespace mlk::snap {

/// Cayley-Klein parameters of the hypersphere map for one neighbor.
inline void cayley_klein(double rfac0, double rmin0, double rcut, double r,
                         double* z0, double* dz0dr) {
  const double rscale0 = rfac0 * 3.14159265358979323846 / (rcut - rmin0);
  const double theta0 = (r - rmin0) * rscale0;
  const double cs = std::cos(theta0), sn = std::sin(theta0);
  *z0 = r * cs / sn;
  if (dz0dr) *dz0dr = *z0 / r - (r * rscale0) * (r * r + *z0 * *z0) / (r * r);
}

/// U recursion for one neighbor into ur/ui (each idx.idxu_max doubles).
inline void compute_u_raw(const SnaIndexes& idx, double x, double y, double z,
                          double z0, double r, double* ur, double* ui) {
  const double r0inv = 1.0 / std::sqrt(r * r + z0 * z0);
  const double a_r = r0inv * z0, a_i = -r0inv * z;
  const double b_r = r0inv * y, b_i = -r0inv * x;
  const auto& rootpq = idx.rootpq;

  ur[0] = 1.0;
  ui[0] = 0.0;
  for (int j = 1; j <= idx.twojmax; ++j) {
    int jju = idx.idxu_block[std::size_t(j)];
    int jjup = idx.idxu_block[std::size_t(j) - 1];
    for (int mb = 0; 2 * mb <= j; ++mb) {
      ur[jju] = 0.0;
      ui[jju] = 0.0;
      for (int ma = 0; ma < j; ++ma) {
        double rpq = rootpq(std::size_t(j - ma), std::size_t(j - mb));
        const double pur = ur[jjup], pui = ui[jjup];
        ur[jju] += rpq * (a_r * pur + a_i * pui);
        ui[jju] += rpq * (a_r * pui - a_i * pur);
        rpq = rootpq(std::size_t(ma) + 1, std::size_t(j - mb));
        ur[jju + 1] = -rpq * (b_r * pur + b_i * pui);
        ui[jju + 1] = -rpq * (b_r * pui - b_i * pur);
        ++jju;
        ++jjup;
      }
      ++jju;
    }
    // u(j, j-ma, j-mb) = (-1)^(ma+mb) conj(u(j, ma, mb)).
    jju = idx.idxu_block[std::size_t(j)];
    int jjur = jju + (j + 1) * (j + 1) - 1;
    int mbpar = 1;
    for (int mb = 0; 2 * mb <= j; ++mb) {
      int mapar = mbpar;
      for (int ma = 0; ma <= j; ++ma) {
        if (mapar == 1) {
          ur[jjur] = ur[jju];
          ui[jjur] = -ui[jju];
        } else {
          ur[jjur] = -ur[jju];
          ui[jjur] = ui[jju];
        }
        mapar = -mapar;
        ++jju;
        --jjur;
      }
      mbpar = -mbpar;
    }
  }
}

/// Simultaneous U and dU recursion for one neighbor. dur/dui are arrays of
/// three buffers (x, y, z directions), each idx.idxu_max doubles. The
/// switching-function chain rule is applied by the caller.
inline void compute_du_raw(const SnaIndexes& idx, double x, double y, double z,
                           double z0, double r, double dz0dr, double* ur,
                           double* ui, double* const dur[3],
                           double* const dui[3]) {
  const double rinv = 1.0 / r;
  const double ux = x * rinv, uy = y * rinv, uz = z * rinv;
  const double r0inv = 1.0 / std::sqrt(r * r + z0 * z0);
  const double a_r = z0 * r0inv, a_i = -z * r0inv;
  const double b_r = y * r0inv, b_i = -x * r0inv;
  const double dr0invdr = -r0inv * r0inv * r0inv * (r + z0 * dz0dr);
  const double dr0inv[3] = {dr0invdr * ux, dr0invdr * uy, dr0invdr * uz};
  const double dz0[3] = {dz0dr * ux, dz0dr * uy, dz0dr * uz};

  double da_r[3], da_i[3], db_r[3], db_i[3];
  for (int k = 0; k < 3; ++k) {
    da_r[k] = dz0[k] * r0inv + z0 * dr0inv[k];
    da_i[k] = -z * dr0inv[k];
    db_r[k] = y * dr0inv[k];
    db_i[k] = -x * dr0inv[k];
  }
  da_i[2] += -r0inv;
  db_r[1] += r0inv;
  db_i[0] += -r0inv;

  ur[0] = 1.0;
  ui[0] = 0.0;
  for (int k = 0; k < 3; ++k) {
    dur[k][0] = 0.0;
    dui[k][0] = 0.0;
  }
  const auto& rootpq = idx.rootpq;

  for (int j = 1; j <= idx.twojmax; ++j) {
    int jju = idx.idxu_block[std::size_t(j)];
    int jjup = idx.idxu_block[std::size_t(j) - 1];
    for (int mb = 0; 2 * mb <= j; ++mb) {
      ur[jju] = 0.0;
      ui[jju] = 0.0;
      for (int k = 0; k < 3; ++k) {
        dur[k][jju] = 0.0;
        dui[k][jju] = 0.0;
      }
      for (int ma = 0; ma < j; ++ma) {
        const double pur = ur[jjup], pui = ui[jjup];
        double rpq = rootpq(std::size_t(j - ma), std::size_t(j - mb));
        ur[jju] += rpq * (a_r * pur + a_i * pui);
        ui[jju] += rpq * (a_r * pui - a_i * pur);
        for (int k = 0; k < 3; ++k) {
          const double pdur = dur[k][jjup], pdui = dui[k][jjup];
          dur[k][jju] +=
              rpq * (da_r[k] * pur + da_i[k] * pui + a_r * pdur + a_i * pdui);
          dui[k][jju] +=
              rpq * (da_r[k] * pui - da_i[k] * pur + a_r * pdui - a_i * pdur);
        }
        rpq = rootpq(std::size_t(ma) + 1, std::size_t(j - mb));
        ur[jju + 1] = -rpq * (b_r * pur + b_i * pui);
        ui[jju + 1] = -rpq * (b_r * pui - b_i * pur);
        for (int k = 0; k < 3; ++k) {
          const double pdur = dur[k][jjup], pdui = dui[k][jjup];
          dur[k][jju + 1] =
              -rpq * (db_r[k] * pur + db_i[k] * pui + b_r * pdur + b_i * pdui);
          dui[k][jju + 1] =
              -rpq * (db_r[k] * pui - db_i[k] * pur + b_r * pdui - b_i * pdur);
        }
        ++jju;
        ++jjup;
      }
      ++jju;
    }
    jju = idx.idxu_block[std::size_t(j)];
    int jjur = jju + (j + 1) * (j + 1) - 1;
    int mbpar = 1;
    for (int mb = 0; 2 * mb <= j; ++mb) {
      int mapar = mbpar;
      for (int ma = 0; ma <= j; ++ma) {
        if (mapar == 1) {
          ur[jjur] = ur[jju];
          ui[jjur] = -ui[jju];
          for (int k = 0; k < 3; ++k) {
            dur[k][jjur] = dur[k][jju];
            dui[k][jjur] = -dui[k][jju];
          }
        } else {
          ur[jjur] = -ur[jju];
          ui[jjur] = ui[jju];
          for (int k = 0; k < 3; ++k) {
            dur[k][jjur] = -dur[k][jju];
            dui[k][jjur] = dui[k][jju];
          }
        }
        mapar = -mapar;
        ++jju;
        --jjur;
      }
      mbpar = -mbpar;
    }
  }
}

/// Z triple product for one idxz entry from a U accessor (callable
/// u(flat_index) -> pair-like {re, im} via two callables).
template <class GetUr, class GetUi>
inline void compute_z_entry(const SnaIndexes& idx, const SnaIndexes::ZEntry& e,
                            const GetUr& get_ur, const GetUi& get_ui,
                            double* z_r, double* z_i) {
  const double* cgblock = idx.cglist.data() + idx.cg_offset(e.j1, e.j2, e.j);
  double zr = 0.0, zi = 0.0;
  int jju1 = idx.idxu_block[std::size_t(e.j1)] + (e.j1 + 1) * e.mb1min;
  int jju2 = idx.idxu_block[std::size_t(e.j2)] + (e.j2 + 1) * e.mb2max;
  int icgb = e.mb1min * (e.j2 + 1) + e.mb2max;
  for (int ib = 0; ib < e.nb; ++ib) {
    double suma1_r = 0.0, suma1_i = 0.0;
    int ma1 = e.ma1min, ma2 = e.ma2max;
    int icga = e.ma1min * (e.j2 + 1) + e.ma2max;
    for (int ia = 0; ia < e.na; ++ia) {
      const double u1r = get_ur(jju1 + ma1), u1i = get_ui(jju1 + ma1);
      const double u2r = get_ur(jju2 + ma2), u2i = get_ui(jju2 + ma2);
      const double cga = cgblock[icga];
      suma1_r += cga * (u1r * u2r - u1i * u2i);
      suma1_i += cga * (u1r * u2i + u1i * u2r);
      ++ma1;
      --ma2;
      icga += e.j2;
    }
    zr += cgblock[icgb] * suma1_r;
    zi += cgblock[icgb] * suma1_i;
    jju1 += e.j1 + 1;
    jju2 -= e.j2 + 1;
    icgb += e.j2;
  }
  *z_r = zr;
  *z_i = zi;
}

/// Z triple product for one idxz entry evaluated for W atoms at once — the
/// §4.3.2 batching axis. Every lane walks the *same* flat U indices, so the
/// only data that varies per lane is the atom row: LoadUr/LoadUi map a flat
/// index k to the pack of u[k] values across the W atoms (one contiguous
/// vector load under Device LayoutLeft, a gather otherwise), and the CG
/// coefficients broadcast. Each lane performs exactly the scalar
/// compute_z_entry operation sequence — no reassociation — so lane l's
/// result is bitwise-identical to the scalar evaluation for atom l
/// (docs/VECTORIZATION.md policy table).
template <int W, class LoadUr, class LoadUi>
inline void compute_z_entry_lanes(const SnaIndexes& idx,
                                  const SnaIndexes::ZEntry& e,
                                  const LoadUr& load_ur, const LoadUi& load_ui,
                                  kk::simd<double, W>* z_r,
                                  kk::simd<double, W>* z_i) {
  using pd = kk::simd<double, W>;
  const double* cgblock = idx.cglist.data() + idx.cg_offset(e.j1, e.j2, e.j);
  pd zr, zi;
  int jju1 = idx.idxu_block[std::size_t(e.j1)] + (e.j1 + 1) * e.mb1min;
  int jju2 = idx.idxu_block[std::size_t(e.j2)] + (e.j2 + 1) * e.mb2max;
  int icgb = e.mb1min * (e.j2 + 1) + e.mb2max;
  for (int ib = 0; ib < e.nb; ++ib) {
    pd suma1_r, suma1_i;
    int ma1 = e.ma1min, ma2 = e.ma2max;
    int icga = e.ma1min * (e.j2 + 1) + e.ma2max;
    for (int ia = 0; ia < e.na; ++ia) {
      const pd u1r = load_ur(jju1 + ma1), u1i = load_ui(jju1 + ma1);
      const pd u2r = load_ur(jju2 + ma2), u2i = load_ui(jju2 + ma2);
      const double cga = cgblock[icga];
      suma1_r += cga * (u1r * u2r - u1i * u2i);
      suma1_i += cga * (u1r * u2i + u1i * u2r);
      ++ma1;
      --ma2;
      icga += e.j2;
    }
    zr += cgblock[icgb] * suma1_r;
    zi += cgblock[icgb] * suma1_i;
    jju1 += e.j1 + 1;
    jju2 -= e.j2 + 1;
    icgb += e.j2;
  }
  *z_r = zr;
  *z_i = zi;
}

/// Symmetry-weighted beta lookup for the Y accumulation (§4.3.2),
/// pre-resolved at index-build time.
inline double beta_weight(const SnaIndexes&, const SnaIndexes::ZEntry& e,
                          const double* beta) {
  return beta[e.jjb] * e.beta_fac;
}

}  // namespace mlk::snap
