// pair_style snap/kk — Kokkos SNAP, dual-instantiated (Host + Device).
// Wraps the SNAKokkos kernel pipeline: stage -> ComputeUi -> (Zi+Bi for
// energy) -> ComputeYi -> ComputeFusedDeidrj.
#pragma once

#include <memory>

#include "snap/pair_snap.hpp"
#include "snap/sna_kernels.hpp"

namespace mlk {

template <class Space>
class PairSNAPKokkos : public PairSNAP {
 public:
  PairSNAPKokkos();
  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;

  /// Work-batching knobs (Table 2 reproduction).
  void set_ui_batch(int b);
  void set_yi_tile(int v);

  snap::SNAKokkos<Space>* kernels() { return snakk_.get(); }

 private:
  std::unique_ptr<snap::SNAKokkos<Space>> snakk_;
  int ui_batch_ = 4;
  int yi_tile_ = 32;
};

void register_pair_snap_kokkos();

}  // namespace mlk
