// SNAKokkos — device-parallel SNAP kernels (§4.3.1-§4.3.4).
//
// Per-atom data structures (the "atom index degree of freedom" the paper
// adds for parallelism) are Views in the execution space's layout: on the
// Device the atom index is fastest (coalescing), on the Host the quantum
// number index is fastest (cache lines), exactly §4.3.1.
//
// Kernels and their paper optimizations:
//   ComputeUi          — parallel over (atom, neighbor-batch); each thread
//                        evaluates the recursion for `ui_batch` neighbors,
//                        summing locally before atomically accumulating into
//                        U_tot (Table 2's ComputeUi work batching). Staging
//                        lives in team scratch (§4.4 software-managed cache).
//   ComputeZi/Bi       — energy path, parallel over atoms.
//   ComputeYi          — parallel over (atom-tile, flattened Z index) with a
//                        tiled traversal of batch size `yi_tile` (§4.3.2's
//                        3-d tiling, v = 32 on NVIDIA / 16 on Intel).
//   ComputeFusedDeidrj — per (atom, neighbor): fused dU recursion over all
//                        three directions + contraction with Y and inline
//                        force accumulation (Table 2's fused kernel).
#pragma once

#include "engine/atom.hpp"
#include "engine/neighbor.hpp"
#include "kokkos/core.hpp"
#include "kokkos/team.hpp"
#include "snap/sna.hpp"

namespace mlk::snap {

template <class Space>
class SNAKokkos {
 public:
  explicit SNAKokkos(const SnaParams& p);

  const SnaIndexes& idx() const { return idx_; }
  int ncoeff() const { return idx_.idxb_max; }

  // Tuning knobs (Table 2 / Fig. 2 of this reproduction).
  int ui_batch = 4;   // neighbors per thread in ComputeUi
  int yi_tile = 32;   // atom-tile width in ComputeYi ("v" of §4.3.2)

  /// Stage neighbor data for nlocal atoms from an engine neighbor list
  /// (full style) — positions must be current in this Space.
  void stage_neighbors(Atom& atom, const NeighborList& list);

  /// U_tot for all staged atoms (self term + neighbor sum).
  void compute_ui();

  /// Energy path: Z, then B; returns beta . B summed over atoms and fills
  /// per-atom bispectrum rows.
  double compute_zi_bi_energy(const double* beta);

  /// Adjoint Y from beta.
  void compute_yi(const double* beta);

  /// Fused dU/dE contraction: accumulates forces into atom.k_f (this Space)
  /// and returns the virial contribution.
  void compute_fused_deidrj(Atom& atom, double virial_out[6]);

  // Staged per-atom views (exposed for tests/benches).
  kk::View2D<double, Space> utot_r, utot_i;   // (natom, idxu_max)
  kk::View2D<double, Space> ylist_r, ylist_i; // (natom, idxu_max)
  kk::View2D<double, Space> zlist_r, zlist_i; // (natom, idxz_max)
  kk::View2D<double, Space> blist;            // (natom, idxb_max)
  kk::View3D<double, Space> neigh_dr;         // (natom, maxneigh, 4): dx dy dz r
  kk::View2D<int, Space> neigh_j;             // (natom, maxneigh): engine index
  kk::View1D<int, Space> nneigh;              // per-atom staged count
  localint natom = 0;
  int maxneigh = 0;

  const SnaParams& params() const { return params_; }

 private:
  SnaParams params_;
  SnaIndexes idx_;
};

}  // namespace mlk::snap
