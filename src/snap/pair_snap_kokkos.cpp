#include "snap/pair_snap_kokkos.hpp"

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"

namespace mlk {

template <class Space>
PairSNAPKokkos<Space>::PairSNAPKokkos() {
  style_name = "snap/kk";
  execution_space =
      Space::is_device ? ExecSpaceKind::Device : ExecSpaceKind::Host;
  needs_reverse_comm = true;
}

template <class Space>
void PairSNAPKokkos<Space>::set_ui_batch(int b) {
  ui_batch_ = b;
  if (snakk_) snakk_->ui_batch = b;
}

template <class Space>
void PairSNAPKokkos<Space>::set_yi_tile(int v) {
  yi_tile_ = v;
  if (snakk_) snakk_->yi_tile = v;
}

template <class Space>
void PairSNAPKokkos<Space>::init(Simulation& sim) {
  PairSNAP::init(sim);
  snakk_ = std::make_unique<snap::SNAKokkos<Space>>(params_);
  snakk_->ui_batch = ui_batch_;
  snakk_->yi_tile = yi_tile_;
}

template <class Space>
void PairSNAPKokkos<Space>::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  require(snakk_ != nullptr, "snap/kk: init not called");
  auto& ker = *snakk_;

  ker.stage_neighbors(sim.atom, sim.neighbor.list);
  ker.compute_ui();
  if (eflag) eng_vdwl = ker.compute_zi_bi_energy(beta_.data());
  ker.compute_yi(beta_.data());
  ker.compute_fused_deidrj(sim.atom, virial);
  if (!eflag)
    for (double& v : virial) v = 0.0;
}

template class PairSNAPKokkos<kk::Host>;
template class PairSNAPKokkos<kk::Device>;

void register_pair_snap_kokkos() {
  StyleRegistry::instance().add_pair_kokkos(
      "snap", [](ExecSpaceKind space) -> std::unique_ptr<Pair> {
        if (space == ExecSpaceKind::Host)
          return std::make_unique<PairSNAPKokkos<kk::Host>>();
        return std::make_unique<PairSNAPKokkos<kk::Device>>();
      });
}

}  // namespace mlk
