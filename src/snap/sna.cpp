#include "snap/sna.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mlk::snap {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

SNA::SNA(const SnaParams& p) : params_(p) {
  require(p.rcut > p.rmin0, "SNA: rcut must exceed rmin0");
  idx_.build(p.twojmax);
  const std::size_t n = std::size_t(idx_.idxu_max);
  ulist_r_.assign(n, 0.0);
  ulist_i_.assign(n, 0.0);
  utot_r_.assign(n, 0.0);
  utot_i_.assign(n, 0.0);
  zlist_r_.assign(std::size_t(idx_.idxz_max), 0.0);
  zlist_i_.assign(std::size_t(idx_.idxz_max), 0.0);
  ylist_r_.assign(n, 0.0);
  ylist_i_.assign(n, 0.0);
  blist_.assign(std::size_t(idx_.idxb_max), 0.0);
  for (int k = 0; k < 3; ++k) {
    dulist_r_[k].assign(n, 0.0);
    dulist_i_[k].assign(n, 0.0);
  }
}

double SNA::sfac(double r) const {
  if (!params_.switch_flag) return 1.0;
  if (r <= params_.rmin0) return 1.0;
  if (r >= params_.rcut) return 0.0;
  const double t = (r - params_.rmin0) / (params_.rcut - params_.rmin0);
  return 0.5 * (std::cos(t * kPi) + 1.0);
}

double SNA::dsfac(double r) const {
  if (!params_.switch_flag) return 0.0;
  if (r <= params_.rmin0 || r >= params_.rcut) return 0.0;
  const double span = params_.rcut - params_.rmin0;
  const double t = (r - params_.rmin0) / span;
  return -0.5 * kPi / span * std::sin(t * kPi);
}

void SNA::zero_ui() {
  std::fill(utot_r_.begin(), utot_r_.end(), 0.0);
  std::fill(utot_i_.begin(), utot_i_.end(), 0.0);
  // Self term: U starts from the identity representation.
  for (int j = 0; j <= params_.twojmax; ++j) {
    const int base = idx_.idxu_block[std::size_t(j)];
    for (int mb = 0; mb <= j; ++mb)
      utot_r_[std::size_t(base + mb * (j + 1) + mb)] = params_.wself;
  }
}

void SNA::compute_uarray(double x, double y, double z, double z0, double r) {
  const double r0inv = 1.0 / std::sqrt(r * r + z0 * z0);
  const double a_r = r0inv * z0;
  const double a_i = -r0inv * z;
  const double b_r = r0inv * y;
  const double b_i = -r0inv * x;
  const auto& rootpq = idx_.rootpq;

  ulist_r_[0] = 1.0;
  ulist_i_[0] = 0.0;

  for (int j = 1; j <= params_.twojmax; ++j) {
    int jju = idx_.idxu_block[std::size_t(j)];
    int jjup = idx_.idxu_block[std::size_t(j) - 1];

    for (int mb = 0; 2 * mb <= j; ++mb) {
      ulist_r_[std::size_t(jju)] = 0.0;
      ulist_i_[std::size_t(jju)] = 0.0;
      for (int ma = 0; ma < j; ++ma) {
        double rpq = rootpq(std::size_t(j - ma), std::size_t(j - mb));
        const double ur = ulist_r_[std::size_t(jjup)];
        const double ui = ulist_i_[std::size_t(jjup)];
        ulist_r_[std::size_t(jju)] += rpq * (a_r * ur + a_i * ui);
        ulist_i_[std::size_t(jju)] += rpq * (a_r * ui - a_i * ur);
        rpq = rootpq(std::size_t(ma) + 1, std::size_t(j - mb));
        ulist_r_[std::size_t(jju) + 1] = -rpq * (b_r * ur + b_i * ui);
        ulist_i_[std::size_t(jju) + 1] = -rpq * (b_r * ui - b_i * ur);
        ++jju;
        ++jjup;
      }
      ++jju;
    }

    // Second half via u(j, j-ma, j-mb) = (-1)^(ma+mb) conj(u(j, ma, mb)).
    jju = idx_.idxu_block[std::size_t(j)];
    int jjur = jju + (j + 1) * (j + 1) - 1;
    int mbpar = 1;
    for (int mb = 0; 2 * mb <= j; ++mb) {
      int mapar = mbpar;
      for (int ma = 0; ma <= j; ++ma) {
        if (mapar == 1) {
          ulist_r_[std::size_t(jjur)] = ulist_r_[std::size_t(jju)];
          ulist_i_[std::size_t(jjur)] = -ulist_i_[std::size_t(jju)];
        } else {
          ulist_r_[std::size_t(jjur)] = -ulist_r_[std::size_t(jju)];
          ulist_i_[std::size_t(jjur)] = ulist_i_[std::size_t(jju)];
        }
        mapar = -mapar;
        ++jju;
        --jjur;
      }
      mbpar = -mbpar;
    }
  }
}

void SNA::add_neighbor_ui(const double dr[3], double r) {
  require(r > 0.0, "add_neighbor_ui: zero distance");
  const double rscale0 =
      params_.rfac0 * kPi / (params_.rcut - params_.rmin0);
  const double theta0 = (r - params_.rmin0) * rscale0;
  const double z0 = r * std::cos(theta0) / std::sin(theta0);

  compute_uarray(dr[0], dr[1], dr[2], z0, r);

  const double s = sfac(r);
  for (int k = 0; k < idx_.idxu_max; ++k) {
    utot_r_[std::size_t(k)] += s * ulist_r_[std::size_t(k)];
    utot_i_[std::size_t(k)] += s * ulist_i_[std::size_t(k)];
  }
}

void SNA::compute_zi() {
  for (int jjz = 0; jjz < idx_.idxz_max; ++jjz) {
    const auto& e = idx_.idxz[std::size_t(jjz)];
    const double* cgblock = idx_.cglist.data() + idx_.cg_offset(e.j1, e.j2, e.j);

    double ztmp_r = 0.0, ztmp_i = 0.0;
    int jju1 = idx_.idxu_block[std::size_t(e.j1)] + (e.j1 + 1) * e.mb1min;
    int jju2 = idx_.idxu_block[std::size_t(e.j2)] + (e.j2 + 1) * e.mb2max;
    int icgb = e.mb1min * (e.j2 + 1) + e.mb2max;
    for (int ib = 0; ib < e.nb; ++ib) {
      double suma1_r = 0.0, suma1_i = 0.0;
      int ma1 = e.ma1min;
      int ma2 = e.ma2max;
      int icga = e.ma1min * (e.j2 + 1) + e.ma2max;
      for (int ia = 0; ia < e.na; ++ia) {
        const double u1r = utot_r_[std::size_t(jju1 + ma1)];
        const double u1i = utot_i_[std::size_t(jju1 + ma1)];
        const double u2r = utot_r_[std::size_t(jju2 + ma2)];
        const double u2i = utot_i_[std::size_t(jju2 + ma2)];
        const double cga = cgblock[icga];
        suma1_r += cga * (u1r * u2r - u1i * u2i);
        suma1_i += cga * (u1r * u2i + u1i * u2r);
        ++ma1;
        --ma2;
        icga += e.j2;
      }
      ztmp_r += cgblock[icgb] * suma1_r;
      ztmp_i += cgblock[icgb] * suma1_i;
      jju1 += e.j1 + 1;
      jju2 -= e.j2 + 1;
      icgb += e.j2;
    }
    zlist_r_[std::size_t(jjz)] = ztmp_r;
    zlist_i_[std::size_t(jjz)] = ztmp_i;
  }
}

void SNA::compute_bi() {
  for (int jjb = 0; jjb < idx_.idxb_max; ++jjb) {
    const auto& t = idx_.idxb[std::size_t(jjb)];
    int jjz = idx_.z_block(t.j1, t.j2, t.j);
    int jju = idx_.idxu_block[std::size_t(t.j)];
    double sumzu = 0.0;
    for (int mb = 0; 2 * mb < t.j; ++mb)
      for (int ma = 0; ma <= t.j; ++ma) {
        sumzu += utot_r_[std::size_t(jju)] * zlist_r_[std::size_t(jjz)] +
                 utot_i_[std::size_t(jju)] * zlist_i_[std::size_t(jjz)];
        ++jjz;
        ++jju;
      }
    if (t.j % 2 == 0) {  // contribution of the middle row, halved diagonal
      const int mb = t.j / 2;
      for (int ma = 0; ma < mb; ++ma) {
        sumzu += utot_r_[std::size_t(jju)] * zlist_r_[std::size_t(jjz)] +
                 utot_i_[std::size_t(jju)] * zlist_i_[std::size_t(jjz)];
        ++jjz;
        ++jju;
      }
      sumzu += 0.5 * (utot_r_[std::size_t(jju)] * zlist_r_[std::size_t(jjz)] +
                      utot_i_[std::size_t(jju)] * zlist_i_[std::size_t(jjz)]);
    }
    blist_[std::size_t(jjb)] = 2.0 * sumzu;
  }
}

void SNA::compute_yi(const double* beta) {
  std::fill(ylist_r_.begin(), ylist_r_.end(), 0.0);
  std::fill(ylist_i_.begin(), ylist_i_.end(), 0.0);

  for (int jjz = 0; jjz < idx_.idxz_max; ++jjz) {
    const auto& e = idx_.idxz[std::size_t(jjz)];
    const double* cgblock = idx_.cglist.data() + idx_.cg_offset(e.j1, e.j2, e.j);

    double ztmp_r = 0.0, ztmp_i = 0.0;
    int jju1 = idx_.idxu_block[std::size_t(e.j1)] + (e.j1 + 1) * e.mb1min;
    int jju2 = idx_.idxu_block[std::size_t(e.j2)] + (e.j2 + 1) * e.mb2max;
    int icgb = e.mb1min * (e.j2 + 1) + e.mb2max;
    for (int ib = 0; ib < e.nb; ++ib) {
      double suma1_r = 0.0, suma1_i = 0.0;
      int ma1 = e.ma1min;
      int ma2 = e.ma2max;
      int icga = e.ma1min * (e.j2 + 1) + e.ma2max;
      for (int ia = 0; ia < e.na; ++ia) {
        const double u1r = utot_r_[std::size_t(jju1 + ma1)];
        const double u1i = utot_i_[std::size_t(jju1 + ma1)];
        const double u2r = utot_r_[std::size_t(jju2 + ma2)];
        const double u2i = utot_i_[std::size_t(jju2 + ma2)];
        const double cga = cgblock[icga];
        suma1_r += cga * (u1r * u2r - u1i * u2i);
        suma1_i += cga * (u1r * u2i + u1i * u2r);
        ++ma1;
        --ma2;
        icga += e.j2;
      }
      ztmp_r += cgblock[icgb] * suma1_r;
      ztmp_i += cgblock[icgb] * suma1_i;
      jju1 += e.j1 + 1;
      jju2 -= e.j2 + 1;
      icgb += e.j2;
    }

    // Symmetry-weighted beta pickup: each stored B triple represents up to
    // three (j1,j2,j) permutations; weights pre-resolved at index build.
    const double betaj = beta[e.jjb] * e.beta_fac;

    ylist_r_[std::size_t(e.jju)] += betaj * ztmp_r;
    ylist_i_[std::size_t(e.jju)] += betaj * ztmp_i;
  }
}

void SNA::compute_duarray(double x, double y, double z, double z0, double r,
                          double dz0dr) {
  const double rinv = 1.0 / r;
  const double ux = x * rinv, uy = y * rinv, uz = z * rinv;
  const double r0inv = 1.0 / std::sqrt(r * r + z0 * z0);
  const double a_r = z0 * r0inv;
  const double a_i = -z * r0inv;
  const double b_r = y * r0inv;
  const double b_i = -x * r0inv;
  const double dr0invdr = -r0inv * r0inv * r0inv * (r + z0 * dz0dr);

  const double dr0inv[3] = {dr0invdr * ux, dr0invdr * uy, dr0invdr * uz};
  const double dz0[3] = {dz0dr * ux, dz0dr * uy, dz0dr * uz};

  double da_r[3], da_i[3], db_r[3], db_i[3];
  for (int k = 0; k < 3; ++k) {
    da_r[k] = dz0[k] * r0inv + z0 * dr0inv[k];
    da_i[k] = -z * dr0inv[k];
    db_r[k] = y * dr0inv[k];
    db_i[k] = -x * dr0inv[k];
  }
  da_i[2] += -r0inv;
  db_r[1] += r0inv;
  db_i[0] += -r0inv;

  // Simultaneous U and dU recursion (product rule on the U recursion).
  ulist_r_[0] = 1.0;
  ulist_i_[0] = 0.0;
  for (int k = 0; k < 3; ++k) {
    dulist_r_[k][0] = 0.0;
    dulist_i_[k][0] = 0.0;
  }
  const auto& rootpq = idx_.rootpq;

  for (int j = 1; j <= params_.twojmax; ++j) {
    int jju = idx_.idxu_block[std::size_t(j)];
    int jjup = idx_.idxu_block[std::size_t(j) - 1];
    for (int mb = 0; 2 * mb <= j; ++mb) {
      ulist_r_[std::size_t(jju)] = 0.0;
      ulist_i_[std::size_t(jju)] = 0.0;
      for (int k = 0; k < 3; ++k) {
        dulist_r_[k][std::size_t(jju)] = 0.0;
        dulist_i_[k][std::size_t(jju)] = 0.0;
      }
      for (int ma = 0; ma < j; ++ma) {
        const double ur = ulist_r_[std::size_t(jjup)];
        const double ui = ulist_i_[std::size_t(jjup)];
        double rpq = rootpq(std::size_t(j - ma), std::size_t(j - mb));
        ulist_r_[std::size_t(jju)] += rpq * (a_r * ur + a_i * ui);
        ulist_i_[std::size_t(jju)] += rpq * (a_r * ui - a_i * ur);
        for (int k = 0; k < 3; ++k) {
          const double dur = dulist_r_[k][std::size_t(jjup)];
          const double dui = dulist_i_[k][std::size_t(jjup)];
          dulist_r_[k][std::size_t(jju)] +=
              rpq * (da_r[k] * ur + da_i[k] * ui + a_r * dur + a_i * dui);
          dulist_i_[k][std::size_t(jju)] +=
              rpq * (da_r[k] * ui - da_i[k] * ur + a_r * dui - a_i * dur);
        }
        rpq = rootpq(std::size_t(ma) + 1, std::size_t(j - mb));
        ulist_r_[std::size_t(jju) + 1] = -rpq * (b_r * ur + b_i * ui);
        ulist_i_[std::size_t(jju) + 1] = -rpq * (b_r * ui - b_i * ur);
        for (int k = 0; k < 3; ++k) {
          const double dur = dulist_r_[k][std::size_t(jjup)];
          const double dui = dulist_i_[k][std::size_t(jjup)];
          dulist_r_[k][std::size_t(jju) + 1] =
              -rpq * (db_r[k] * ur + db_i[k] * ui + b_r * dur + b_i * dui);
          dulist_i_[k][std::size_t(jju) + 1] =
              -rpq * (db_r[k] * ui - db_i[k] * ur + b_r * dui - b_i * dur);
        }
        ++jju;
        ++jjup;
      }
      ++jju;
    }
    // Symmetry fill (same parity pattern as U).
    jju = idx_.idxu_block[std::size_t(j)];
    int jjur = jju + (j + 1) * (j + 1) - 1;
    int mbpar = 1;
    for (int mb = 0; 2 * mb <= j; ++mb) {
      int mapar = mbpar;
      for (int ma = 0; ma <= j; ++ma) {
        if (mapar == 1) {
          ulist_r_[std::size_t(jjur)] = ulist_r_[std::size_t(jju)];
          ulist_i_[std::size_t(jjur)] = -ulist_i_[std::size_t(jju)];
          for (int k = 0; k < 3; ++k) {
            dulist_r_[k][std::size_t(jjur)] = dulist_r_[k][std::size_t(jju)];
            dulist_i_[k][std::size_t(jjur)] = -dulist_i_[k][std::size_t(jju)];
          }
        } else {
          ulist_r_[std::size_t(jjur)] = -ulist_r_[std::size_t(jju)];
          ulist_i_[std::size_t(jjur)] = ulist_i_[std::size_t(jju)];
          for (int k = 0; k < 3; ++k) {
            dulist_r_[k][std::size_t(jjur)] = -dulist_r_[k][std::size_t(jju)];
            dulist_i_[k][std::size_t(jjur)] = dulist_i_[k][std::size_t(jju)];
          }
        }
        mapar = -mapar;
        ++jju;
        --jjur;
      }
      mbpar = -mbpar;
    }
  }

  // Chain in the switching function: d(sfac*u)/dr_k.
  const double s = sfac(r);
  const double ds = dsfac(r);
  const double u3[3] = {ux, uy, uz};
  for (int idx = 0; idx < idx_.idxu_max; ++idx)
    for (int k = 0; k < 3; ++k) {
      dulist_r_[k][std::size_t(idx)] =
          ds * ulist_r_[std::size_t(idx)] * u3[k] +
          s * dulist_r_[k][std::size_t(idx)];
      dulist_i_[k][std::size_t(idx)] =
          ds * ulist_i_[std::size_t(idx)] * u3[k] +
          s * dulist_i_[k][std::size_t(idx)];
    }
}

void SNA::compute_dedr(const double dr[3], double r, double f[3]) {
  const double rscale0 =
      params_.rfac0 * kPi / (params_.rcut - params_.rmin0);
  const double theta0 = (r - params_.rmin0) * rscale0;
  const double cs = std::cos(theta0), sn = std::sin(theta0);
  const double z0 = r * cs / sn;
  const double dz0dr = z0 / r - (r * rscale0) * (r * r + z0 * z0) / (r * r);

  compute_duarray(dr[0], dr[1], dr[2], z0, r, dz0dr);

  for (int k = 0; k < 3; ++k) f[k] = 0.0;
  for (int j = 0; j <= params_.twojmax; ++j) {
    int jju = idx_.idxu_block[std::size_t(j)];
    for (int mb = 0; 2 * mb < j; ++mb)
      for (int ma = 0; ma <= j; ++ma) {
        for (int k = 0; k < 3; ++k)
          f[k] += dulist_r_[k][std::size_t(jju)] * ylist_r_[std::size_t(jju)] +
                  dulist_i_[k][std::size_t(jju)] * ylist_i_[std::size_t(jju)];
        ++jju;
      }
    if (j % 2 == 0) {
      const int mb = j / 2;
      for (int ma = 0; ma < mb; ++ma) {
        for (int k = 0; k < 3; ++k)
          f[k] += dulist_r_[k][std::size_t(jju)] * ylist_r_[std::size_t(jju)] +
                  dulist_i_[k][std::size_t(jju)] * ylist_i_[std::size_t(jju)];
        ++jju;
      }
      for (int k = 0; k < 3; ++k)
        f[k] += 0.5 *
                (dulist_r_[k][std::size_t(jju)] * ylist_r_[std::size_t(jju)] +
                 dulist_i_[k][std::size_t(jju)] * ylist_i_[std::size_t(jju)]);
    }
  }
  for (int k = 0; k < 3; ++k) f[k] *= 2.0;
}

std::vector<double> synthetic_beta(int ncoeff, int seed, double scale) {
  std::vector<double> beta;
  beta.resize(std::size_t(ncoeff));
  unsigned state = unsigned(seed) * 2654435761u + 12345u;
  for (int k = 0; k < ncoeff; ++k) {
    state = state * 1664525u + 1013904223u;
    const double u = double(state >> 8) / double(1u << 24);  // [0,1)
    beta[std::size_t(k)] = scale * (2.0 * u - 1.0) / (1.0 + 0.25 * k);
  }
  return beta;
}

}  // namespace mlk::snap
