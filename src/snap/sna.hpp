// SNA — the SNAP bispectrum calculator (§4.3; Thompson et al. 2015).
//
// This is the serial, per-atom host implementation the paper describes as
// the "initial, non-Kokkos CPU implementation": one set of staging arrays
// *without* an atom index, reused across outer-loop iterations. The Kokkos
// implementation (sna_kernels.hpp) re-derives the same math with per-atom
// data structures and device data layouts.
//
// Pipeline per atom i (paper's four steps):
//   1. compute_ui      — Wigner U recursion per neighbor, accumulated U_j(i)
//   2. compute_zi/bi   — triple products (energy path)
//      compute_yi      — beta-weighted adjoint Y (force path)
//   3. compute_duidrj  — dU/dr_k per neighbor (recursion with product rule)
//   4. compute_deidrj  — force contraction Y : dU
#pragma once

#include <vector>

#include "snap/clebsch_gordan.hpp"

namespace mlk::snap {

struct SnaParams {
  int twojmax = 6;
  double rcut = 3.0;
  double rfac0 = 0.99363;
  double rmin0 = 0.0;
  double wself = 1.0;
  bool switch_flag = true;
};

class SNA {
 public:
  explicit SNA(const SnaParams& p);

  const SnaIndexes& idx() const { return idx_; }
  const SnaParams& params() const { return params_; }
  /// Number of bispectrum components (length of beta).
  int ncoeff() const { return idx_.idxb_max; }

  // --- Step 1: neighborhood decomposition -------------------------------
  /// Reset U accumulation and add the self term.
  void zero_ui();
  /// Add one neighbor at relative position dr (length r <= rcut).
  void add_neighbor_ui(const double dr[3], double r);

  // --- Step 2a (energy): Z then B ---------------------------------------
  void compute_zi();
  void compute_bi();
  const std::vector<double>& blist() const { return blist_; }

  // --- Step 2b (forces): adjoint Y --------------------------------------
  void compute_yi(const double* beta);

  // --- Steps 3+4: per-neighbor force ------------------------------------
  /// dE_i/d(r_k) for neighbor at dr: contracts Y with dU/dr_k.
  /// Returns the gradient in f[3] (caller applies signs).
  void compute_dedr(const double dr[3], double r, double f[3]);

  // Switching function (public for tests).
  double sfac(double r) const;
  double dsfac(double r) const;

  // Direct U access for invariance tests: flattened (j,ma,mb).
  const std::vector<double>& utot_r() const { return utot_r_; }
  const std::vector<double>& utot_i() const { return utot_i_; }

 private:
  void compute_uarray(double x, double y, double z, double z0, double r);
  void compute_duarray(double x, double y, double z, double z0, double r,
                       double dz0dr);

  SnaParams params_;
  SnaIndexes idx_;

  // Scratch (single copy, reused across atoms — host model).
  std::vector<double> ulist_r_, ulist_i_;      // per-neighbor U
  std::vector<double> utot_r_, utot_i_;        // accumulated U_j(i)
  std::vector<double> zlist_r_, zlist_i_;      // triple products
  std::vector<double> ylist_r_, ylist_i_;      // adjoint
  std::vector<double> blist_;                  // bispectrum
  std::vector<double> dulist_r_[3], dulist_i_[3];
};

/// Deterministic synthetic SNAP coefficients (no trained potentials ship
/// with this repo): smooth decaying, sign-alternating values.
std::vector<double> synthetic_beta(int ncoeff, int seed, double scale = 0.1);

}  // namespace mlk::snap
