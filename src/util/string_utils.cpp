#include "util/string_utils.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace mlk {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

double to_double(const std::string& tok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  require(end && *end == '\0' && end != tok.c_str(),
          "expected floating point number, got '" + tok + "'");
  return v;
}

int to_int(const std::string& tok) {
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  require(end && *end == '\0' && end != tok.c_str(),
          "expected integer, got '" + tok + "'");
  return static_cast<int>(v);
}

long long to_bigint(const std::string& tok) {
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  require(end && *end == '\0' && end != tok.c_str(),
          "expected integer, got '" + tok + "'");
  return v;
}

bool to_bool(const std::string& tok) {
  if (tok == "on" || tok == "yes" || tok == "true" || tok == "1") return true;
  if (tok == "off" || tok == "no" || tok == "false" || tok == "0") return false;
  fatal("expected on/off flag, got '" + tok + "'");
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string strip_style_suffix(const std::string& style, std::string* suffix) {
  for (const char* sfx : {"/kk/device", "/kk/host", "/kk"}) {
    if (ends_with(style, sfx)) {
      if (suffix) *suffix = sfx;
      return style.substr(0, style.size() - std::string(sfx).size());
    }
  }
  if (suffix) suffix->clear();
  return style;
}

}  // namespace mlk
