#include "util/error.hpp"

namespace mlk {

void fatal(const std::string& msg) { throw Error(msg); }

void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace mlk
