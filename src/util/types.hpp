// Fundamental scalar types used throughout miniLAMMPS-KK.
//
// Mirrors LAMMPS's compile-time `bigint` abstraction (paper, Appendix B):
// quantities that can exceed 2^31 in exascale-size runs — global atom counts,
// sparse-matrix row offsets, cumulative neighbor counts — are typed `bigint`
// (64-bit) while bounded per-row/per-atom quantities stay 32-bit for space
// efficiency.
#pragma once

#include <cstdint>

namespace mlk {

/// 64-bit integer for quantities that can overflow 32 bits at scale:
/// global atom counts, CSR row offsets, total pair counts.
using bigint = std::int64_t;

/// Atom tag (global identifier). 64-bit: exascale runs exceed 2^31 atoms.
using tagint = std::int64_t;

/// Local (per-rank) atom index. Bounded by per-rank atom count.
using localint = std::int32_t;

/// Default floating point type for coordinates, forces, energies.
using real = double;

/// A packed quadruple of 32-bit indices, the `int4` of §4.2.1 used for the
/// compressed torsion-quad interaction table.
struct int4 {
  std::int32_t i, j, k, l;
  friend bool operator==(const int4&, const int4&) = default;
};

/// A packed triple for three-body (angle) interaction tables.
struct int3 {
  std::int32_t i, j, k;
  friend bool operator==(const int3&, const int3&) = default;
};

}  // namespace mlk
