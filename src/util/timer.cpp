#include "util/timer.hpp"

namespace mlk {

void TimerSet::add(const std::string& name, double seconds) {
  acc_[name] += seconds;
}

double TimerSet::total(const std::string& name) const {
  auto it = acc_.find(name);
  return it == acc_.end() ? 0.0 : it->second;
}

}  // namespace mlk
