#include "util/random.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mlk {

namespace {
constexpr std::int64_t kIA = 16807;
constexpr std::int64_t kIM = 2147483647;
constexpr double kAM = 1.0 / double(kIM);
constexpr std::int64_t kIQ = 127773;
constexpr std::int64_t kIR = 2836;
}  // namespace

RanPark::RanPark(int seed) { reset(seed); }

void RanPark::reset(int seed) {
  require(seed > 0, "RanPark seed must be positive");
  seed_ = seed;
  save_ = false;
  second_ = 0.0;
}

void RanPark::set_state(const State& s) {
  require(s.seed > 0 && s.seed < kIM, "RanPark state: seed out of range");
  seed_ = s.seed;
  save_ = s.save;
  second_ = s.second;
}

double RanPark::uniform() {
  const std::int64_t k = seed_ / kIQ;
  seed_ = kIA * (seed_ - k * kIQ) - kIR * k;
  if (seed_ < 0) seed_ += kIM;
  return kAM * double(seed_);
}

double RanPark::gaussian() {
  if (save_) {
    save_ = false;
    return second_;
  }
  double v1, v2, rsq;
  do {
    v1 = 2.0 * uniform() - 1.0;
    v2 = 2.0 * uniform() - 1.0;
    rsq = v1 * v1 + v2 * v2;
  } while (rsq >= 1.0 || rsq == 0.0);
  const double fac = std::sqrt(-2.0 * std::log(rsq) / rsq);
  second_ = v1 * fac;
  save_ = true;
  return v2 * fac;
}

int RanPark::irandom(int lo, int hi) {
  const int span = hi - lo + 1;
  int r = lo + int(uniform() * span);
  return r > hi ? hi : r;
}

}  // namespace mlk
