// Wall-clock timing helpers used by the thermo output and the bench harness.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace mlk {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() { start(); }
  void start() { t0_ = clock::now(); }
  /// Seconds since start().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_;
};

/// Named accumulating timers, LAMMPS-style breakdown (Pair/Neigh/Comm/...).
class TimerSet {
 public:
  void add(const std::string& name, double seconds);
  double total(const std::string& name) const;
  const std::map<std::string, double>& all() const { return acc_; }
  void clear() { acc_.clear(); }

 private:
  std::map<std::string, double> acc_;
};

/// RAII region timer accumulating into a TimerSet entry.
class ScopedTimer {
 public:
  ScopedTimer(TimerSet& set, std::string name) : set_(set), name_(std::move(name)) {}
  ~ScopedTimer() { set_.add(name_, t_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerSet& set_;
  std::string name_;
  Timer t_;
};

}  // namespace mlk
