// Error handling: all fatal conditions throw mlk::Error so tests can assert
// on failure paths instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace mlk {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Throw mlk::Error with printf-style formatting.
[[noreturn]] void fatal(const std::string& msg);

/// Require `cond`; otherwise throw Error(msg). Used for user-input validation
/// (always on, unlike assert).
void require(bool cond, const std::string& msg);

}  // namespace mlk
