// Small string helpers for the input-script parser.
#pragma once

#include <string>
#include <vector>

namespace mlk {

/// Split on whitespace; '#' starts a comment that runs to end of line.
std::vector<std::string> tokenize(const std::string& line);

/// Parse helpers that throw mlk::Error with the offending token on failure.
double to_double(const std::string& tok);
int to_int(const std::string& tok);
long long to_bigint(const std::string& tok);
bool to_bool(const std::string& tok);  // "on|off|yes|no|true|false|1|0"

/// True if `s` ends with `suffix`.
bool ends_with(const std::string& s, const std::string& suffix);

/// Strip a trailing style suffix ("/kk", "/kk/host", "/kk/device") if present;
/// returns the base name and sets `suffix` to what was removed ("" if none).
std::string strip_style_suffix(const std::string& style, std::string* suffix);

}  // namespace mlk
