// Deterministic pseudo-random number generation.
//
// LAMMPS uses a Park-Miller / Marsaglia generator so that runs are bitwise
// reproducible across platforms independent of the C++ standard library;
// we follow the same approach with a Park-Miller minimal standard LCG plus a
// Marsaglia-polar gaussian, matching the classic RanPark/RanMars pairing.
#pragma once

#include <cstdint>

namespace mlk {

/// Park-Miller minimal-standard linear congruential generator (RanPark).
class RanPark {
 public:
  explicit RanPark(int seed);

  /// Uniform double in (0,1).
  double uniform();

  /// Standard normal variate (Marsaglia polar method).
  double gaussian();

  /// Uniform integer in [lo, hi].
  int irandom(int lo, int hi);

  /// Re-seed, e.g. to decorrelate per-rank streams.
  void reset(int seed);

 private:
  std::int64_t seed_;
  bool save_ = false;
  double second_ = 0.0;
};

}  // namespace mlk
