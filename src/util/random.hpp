// Deterministic pseudo-random number generation.
//
// LAMMPS uses a Park-Miller / Marsaglia generator so that runs are bitwise
// reproducible across platforms independent of the C++ standard library;
// we follow the same approach with a Park-Miller minimal standard LCG plus a
// Marsaglia-polar gaussian, matching the classic RanPark/RanMars pairing.
#pragma once

#include <cstdint>

namespace mlk {

/// Park-Miller minimal-standard linear congruential generator (RanPark).
class RanPark {
 public:
  explicit RanPark(int seed);

  /// Uniform double in (0,1).
  double uniform();

  /// Standard normal variate (Marsaglia polar method).
  double gaussian();

  /// Uniform integer in [lo, hi].
  int irandom(int lo, int hi);

  /// Re-seed, e.g. to decorrelate per-rank streams. Clears the cached
  /// Marsaglia second variate — this starts a *new* stream; to resume an
  /// existing stream mid-sequence use state()/set_state(), which round-trip
  /// the cache instead of discarding it.
  void reset(int seed);

  /// Full internal state, exposed so checkpoints can resume the stream
  /// bitwise-exactly (the gaussian cache included).
  struct State {
    std::int64_t seed = 0;
    bool save = false;
    double second = 0.0;
  };
  State state() const { return {seed_, save_, second_}; }
  void set_state(const State& s);

 private:
  std::int64_t seed_;
  bool save_ = false;
  double second_ = 0.0;
};

}  // namespace mlk
