// miniLAMMPS-KK umbrella header: include this and call mlk::init_all() once
// before constructing Simulations (registers every built-in style with the
// registry, the role LAMMPS's per-header registration macros play).
#pragma once

#include "engine/input.hpp"
#include "engine/lattice.hpp"
#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"

namespace mlk {

/// Register all built-in pair/fix/compute styles. Idempotent.
void init_all();

}  // namespace mlk
