#include "reaxff/pair_reaxff_lite.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk {

using reaxff::ReaxParams;

template <class Space>
PairReaxFFLite<Space>::PairReaxFFLite() {
  style_name = Space::is_device ? "reaxff-lite/kk" : "reaxff-lite";
  execution_space =
      Space::is_device ? ExecSpaceKind::Device : ExecSpaceKind::Host;
  needs_reverse_comm = true;  // bonded terms write ghost forces
  datamask_read = X_MASK | TYPE_MASK | Q_MASK;
  datamask_modify = F_MASK | Q_MASK;
}

template <class Space>
void PairReaxFFLite<Space>::coeff(const std::vector<std::string>& args) {
  require(args.size() >= 2 && args[0] == "*" && args[1] == "*",
          "reaxff-lite coeff: * * [preset]");
  const std::string preset = args.size() > 2 ? args[2] : "default";
  params_ = ReaxParams{};
  if (preset == "hns") {
    // Parameterization tuned to the hns_like molecular crystal: denser
    // bonding so that torsion quads appear with realistic (<5%) survival.
    params_.r0 = 1.6;
    params_.pbo1 = -0.06;
    params_.pbo2 = 5.0;
    params_.De = 90.0;
    params_.k_th = 25.0;
    params_.k_tors = 4.0;
    params_.bo_cut_tors = 0.5;
  } else {
    require(preset == "default", "reaxff-lite: unknown preset '" + preset + "'");
  }
  // Bond search distance = where BO crosses bo_cut: keeps the dynamic bond
  // list consistent with the threshold-shifted energies (no discontinuity).
  params_.rcut_bond = reaxff::bond_cut_distance(params_);
}

template <class Space>
void PairReaxFFLite<Space>::init(Simulation& sim) {
  const double cutghost = params_.rcut_nonb + sim.neighbor.skin;
  require(cutghost >= 2.0 * params_.rcut_bond,
          "reaxff-lite: ghost region must cover two bond lengths "
          "(rcut_nonb + skin >= 2 * rcut_bond)");
  qeq_ = reaxff::QEq<Space>(params_);
  qeq_.build_mode = qeq_build;
  qeq_.fused_solve = qeq_fused;
}

template <class Space>
EV PairReaxFFLite<Space>::compute_bond_energy(Atom& atom, bool eflag) {
  atom.sync<Space>(F_MASK);
  auto f = atom.k_f.view<Space>();
  const ReaxParams p = params_;
  const reaxff::BondList<Space> b = bonds_;
  const localint nlocal = atom.nlocal;

  EV total;
  kk::parallel_reduce(
      "ReaxFF::BondEnergy", kk::RangePolicy<Space>(0, std::size_t(nlocal)),
      [=](std::size_t i, EV& ev) {
        const int n = b.nbonds(i);
        for (int s = 0; s < n; ++s) {
          const std::size_t j = std::size_t(b.j(i, std::size_t(s)));
          // Threshold-shifted: E -> 0 continuously as the bond leaves the
          // list at BO == bo_cut.
          const double bo = b.bo(i, std::size_t(s)) - p.bo_cut;
          const double dbo = b.dbo(i, std::size_t(s));
          const double r = b.dr(i, std::size_t(s), 3);
          // E = -De * BO per bond; half per directed occurrence.
          // F_i = dE/dr * (xj - xi)/r with dE/dr = -De * dBO/dr.
          const double fpr = 0.5 * (-p.De * dbo) / r;
          const double fx = fpr * b.dr(i, std::size_t(s), 0);
          const double fy = fpr * b.dr(i, std::size_t(s), 1);
          const double fz = fpr * b.dr(i, std::size_t(s), 2);
          kk::atomic_add(&f(i, std::size_t(0)), fx);
          kk::atomic_add(&f(i, std::size_t(1)), fy);
          kk::atomic_add(&f(i, std::size_t(2)), fz);
          kk::atomic_add(&f(j, std::size_t(0)), -fx);
          kk::atomic_add(&f(j, std::size_t(1)), -fy);
          kk::atomic_add(&f(j, std::size_t(2)), -fz);
          if (eflag) {
            ev.evdwl += 0.5 * -p.De * bo;
            // Virial with r_ij = x_i - x_j = -dr.
            ev.v[0] += -b.dr(i, std::size_t(s), 0) * fx;
            ev.v[1] += -b.dr(i, std::size_t(s), 1) * fy;
            ev.v[2] += -b.dr(i, std::size_t(s), 2) * fz;
            ev.v[3] += -b.dr(i, std::size_t(s), 0) * fy;
            ev.v[4] += -b.dr(i, std::size_t(s), 0) * fz;
            ev.v[5] += -b.dr(i, std::size_t(s), 1) * fz;
          }
        }
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

template <class Space>
void PairReaxFFLite<Space>::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  const NeighborList& list = sim.neighbor.list;
  require(list.gnum > 0 || sim.atom.nghost == 0,
          "reaxff-lite requires ghost neighbor rows");

  // 1. Bond-order list (divergent pre-processing -> compressed table).
  reaxff::build_bond_list(params_, atom, list, bonds_);

  // 2. Two-body bond energy.
  const EV ebond = compute_bond_energy(atom, eflag);

  // 3. Three-body angles.
  EV eangle;
  if (use_preprocessing) {
    reaxff::build_triples(bonds_, atom.nlocal, triples_);
    eangle = reaxff::compute_angles_preprocessed(params_, atom, bonds_,
                                                 triples_, eflag);
  } else {
    eangle = reaxff::compute_angles_direct(params_, atom, bonds_, eflag);
  }

  // 4. Four-body torsions over constrained quads.
  EV etors;
  if (use_preprocessing) {
    reaxff::build_quads(params_, atom, bonds_, quads_);
    etors = reaxff::compute_torsions_preprocessed(params_, atom, quads_, eflag);
  } else {
    etors = reaxff::compute_torsions_direct(params_, atom, bonds_, eflag);
  }

  // 5. Charge equilibration + Coulomb.
  qeq_.build_matrix(atom, list);
  qeq_.solve(atom, sim.comm, sim.mpi);
  double ecoul = 0.0;
  if (eflag) ecoul = qeq_.energy(atom);
  qeq_.add_forces(atom, virial);

  // 6. Tapered Morse vdW.
  const EV evdw = reaxff::compute_vdw<Space>(params_, atom, list, eflag);

  if (eflag) {
    last_ebond = ebond.evdwl;
    last_eangle = eangle.evdwl;
    last_etors = etors.evdwl;
    last_evdw = evdw.evdwl;
    last_ecoul = ecoul;
    eng_vdwl = ebond.evdwl + eangle.evdwl + etors.evdwl + evdw.evdwl;
    eng_coul = ecoul;
    for (int k = 0; k < 6; ++k)
      virial[k] += ebond.v[k] + eangle.v[k] + etors.v[k] + evdw.v[k];
  }
}

template class PairReaxFFLite<kk::Host>;
template class PairReaxFFLite<kk::Device>;

void register_pair_reaxff_lite() {
  auto& reg = StyleRegistry::instance();
  reg.add_pair("reaxff-lite", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
    return std::make_unique<PairReaxFFLite<kk::Host>>();
  });
  reg.add_pair_kokkos("reaxff-lite",
                      [](ExecSpaceKind space) -> std::unique_ptr<Pair> {
                        if (space == ExecSpaceKind::Host)
                          return std::make_unique<PairReaxFFLite<kk::Host>>();
                        return std::make_unique<PairReaxFFLite<kk::Device>>();
                      });
}

}  // namespace mlk
