// pair_style reaxff-lite — the reactive force field case study (§4.2),
// orchestrating every kernel the paper analyzes:
//   dynamic bond-order lists        (divergent pre-processing, §4.2.1)
//   valence angles over triples     (three-body, pre-processed)
//   torsions over constrained quads (four-body, int4 table, <5% survival)
//   charge equilibration            (over-allocated CSR + fused dual CG,
//                                    §4.2.2-4.2.3, Appendix B)
//   tapered Morse vdW + shielded Coulomb (non-bonded, all neighbors)
//
// Dual-instantiated on the execution space and registered as reaxff-lite
// (host) and reaxff-lite/kk (+/kk/host, /kk/device).
#pragma once

#include "engine/pair.hpp"
#include "reaxff/angle.hpp"
#include "reaxff/nonbonded.hpp"
#include "reaxff/qeq.hpp"
#include "reaxff/torsion.hpp"

namespace mlk {

template <class Space>
class PairReaxFFLite : public Pair {
 public:
  PairReaxFFLite();

  /// coeff: * * [preset]   (preset: "default" | "hns")
  void coeff(const std::vector<std::string>& args) override;
  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override { return params_.rcut_nonb; }
  NeighStyle neigh_style() const override { return NeighStyle::Full; }
  bool newton() const override { return false; }
  bool ghost_rows_needed() const override { return true; }

  reaxff::ReaxParams& params() { return params_; }

  /// Experiment knobs (§4.2 ablations).
  bool use_preprocessing = true;       // compressed tables vs direct loops
  reaxff::MatrixBuildMode qeq_build = reaxff::MatrixBuildMode::Flat;
  bool qeq_fused = true;

  // Last-step diagnostics for tests/benches.
  const reaxff::QuadList<Space>& quads() const { return quads_; }
  const reaxff::BondList<Space>& bonds() const { return bonds_; }
  reaxff::QEq<Space>& qeq() { return qeq_; }
  double last_ebond = 0.0, last_eangle = 0.0, last_etors = 0.0,
         last_evdw = 0.0, last_ecoul = 0.0;

 private:
  EV compute_bond_energy(Atom& atom, bool eflag);

  reaxff::ReaxParams params_;
  reaxff::BondList<Space> bonds_;
  reaxff::TripleList<Space> triples_;
  reaxff::QuadList<Space> quads_;
  reaxff::QEq<Space> qeq_{params_};
};

void register_pair_reaxff_lite();

}  // namespace mlk
