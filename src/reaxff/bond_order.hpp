// Dynamic bond-order neighbor list (§4.2.1 pre-processing pattern).
//
// The bond list is rebuilt every step from the geometric neighbor list via
// the two-phase divergent pre-processing the paper describes: a count kernel
// evaluates the cheap conditionals (distance + bond-order threshold) and a
// fill kernel writes a *compressed* 2-D bond table, after which every
// consumer kernel is fully convergent. 2-D storage per Appendix B (no flat
// 1-D offsets that could overflow 32-bit indexing).
#pragma once

#include "engine/atom.hpp"
#include "engine/neighbor.hpp"
#include "kokkos/view.hpp"
#include "reaxff/reaxff_types.hpp"

namespace mlk::reaxff {

template <class Space>
struct BondList {
  kk::View2D<int, Space> j;       // (natom, maxbonds) partner local index
  kk::View2D<double, Space> bo;   // bond order per bond
  kk::View2D<double, Space> dbo;  // dBO/dr per bond
  kk::View3D<double, Space> dr;   // (natom, maxbonds, 4): dx dy dz r
  kk::View1D<int, Space> nbonds;  // per-atom bond count
  localint natom = 0;             // rows (owned atoms + ghosts)
  localint nlocal = 0;            // owned-atom rows
  int maxbonds = 0;

  /// Total directed bonds of *owned* atoms (each local i-j bond appears in
  /// both rows).
  bigint total_bonds() const;
};

/// Build the bond list for owned atoms from a *full* neighbor list.
/// Bonds to ghosts are kept (the partner index may be >= nlocal).
template <class Space>
void build_bond_list(const ReaxParams& p, Atom& atom, const NeighborList& list,
                     BondList<Space>& bonds);

}  // namespace mlk::reaxff
