// Charge equilibration (QEq), §4.2.2-§4.2.3.
//
// Minimize  E(q) = sum_i (chi_i q_i + eta_i q_i^2 / 2) + sum_{i<j} H_ij q_i q_j
// subject to sum_i q_i = 0. Stationarity gives (H + diag(eta)) q = -chi - mu
// with Lagrange multiplier mu; solving the two linear systems
//    A s = -chi      and      A t = -1,     A = H + diag(eta)
// yields q = s - t * (sum s / sum t).
//
// The two Krylov (conjugate gradient) solves share the matrix; the fused
// dual-RHS path reuses every matrix load across both solves (§4.2.3).
// The matrix build exists in two forms: flat one-row-per-work-item (host
// friendly) and hierarchical team-per-row (device friendly, §4.2.2) — the
// host/device bifurcation of §3.3. Both are kept and tested for equality.
#pragma once

#include "comm/simmpi.hpp"
#include "engine/atom.hpp"
#include "engine/comm_pair.hpp"
#include "engine/neighbor.hpp"
#include "reaxff/reaxff_types.hpp"
#include "reaxff/sparse.hpp"

namespace mlk::reaxff {

enum class MatrixBuildMode { Flat, Hierarchical };

template <class Space>
class QEq {
 public:
  explicit QEq(const ReaxParams& p) : params_(p) {}

  MatrixBuildMode build_mode = MatrixBuildMode::Flat;
  bool fused_solve = true;

  /// Build H from the geometric neighbor list (pairs within rcut_nonb):
  /// a parallel scan over the *full* neighbor counts sets the over-allocated
  /// row offsets; a second kernel computes values/columns/row counts
  /// (§4.2.2's two-stage build).
  void build_matrix(Atom& atom, const NeighborList& list);

  /// Solve for charges; writes atom.k_q for owned atoms and forward-comms
  /// ghost charges. Returns CG iterations used (max over the two solves).
  int solve(Atom& atom, CommBrick& comm, simmpi::Comm* mpi);

  /// Electrostatic energy with current charges: self (chi/eta) + pair
  /// (0.5 q^T H q over owned rows; globally each pair once).
  double energy(Atom& atom) const;

  /// Coulomb forces F += -q_i q_j dH_ij/dr; half per directed entry so the
  /// row mirror (local or remote) supplies the rest. Adds to virial[6].
  void add_forces(Atom& atom, double virial[6]) const;

  const OACSR<Space>& matrix() const { return H_; }
  int last_iterations() const { return last_iters_; }

 private:
  void matvec(Atom& atom, CommBrick& comm,
              const kk::View1D<double, Space>& x,
              const kk::View1D<double, Space>& y);

  ReaxParams params_;
  OACSR<Space> H_;
  int last_iters_ = 0;

  // Ghost-gather scratch for the CG matvecs (nall-sized, grown on demand).
  // Members, not function-local `static thread_local` buffers: those were
  // shared by every QEq on the same thread, so two co-resident Simulations
  // (the batch server) would overwrite each other's staged vectors.
  kk::DualView<double, 1> xg_;    // single-RHS matvec
  kk::DualView<double, 1> xg1_, xg2_;  // fused dual-RHS solve
};

}  // namespace mlk::reaxff
