#include "reaxff/qeq.hpp"

#include <algorithm>
#include <cmath>

#include "kokkos/core.hpp"
#include "kokkos/team.hpp"
#include "pair/pair_compute_kokkos.hpp"
#include "util/error.hpp"

namespace mlk::reaxff {

namespace {

/// Pairwise electrostatic coefficient H(r) and its radial derivative.
inline double h_value(const ReaxParams& p, double r, double gij) {
  return kCoulombConst * taper7(r, p.rcut_nonb) * shielded_coulomb(r, gij);
}

inline double dh_dr(const ReaxParams& p, double r, double gij) {
  return kCoulombConst * (dtaper7(r, p.rcut_nonb) * shielded_coulomb(r, gij) +
                          taper7(r, p.rcut_nonb) * dshielded_coulomb(r, gij));
}

}  // namespace

template <class Space>
void QEq<Space>::build_matrix(Atom& atom, const NeighborList& list) {
  require(list.style == NeighStyle::Full, "QEq needs a full neighbor list");
  atom.sync<Space>(X_MASK | TYPE_MASK);
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto type = atom.k_type.view<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();

  const localint n = atom.nlocal;
  H_.allocate_rows(n);
  auto ro = H_.row_offset;

  // Stage 1: over-allocated row offsets from the FULL neighbor counts —
  // independent of the interaction cutoff (paper §4.2.2). Offsets are
  // bigint so total capacity can exceed 2^31 entries (Appendix B).
  bigint capacity = 0;
  kk::parallel_scan("QEq::offsets", kk::RangePolicy<Space>(0, std::size_t(n)),
                    [=](std::size_t i, bigint& update, bool final) {
                      if (final) ro(i) = update;
                      update += numneigh(i);
                    },
                    capacity);
  ro(std::size_t(n)) = capacity;
  H_.capacity = capacity;
  H_.col = kk::View1D<int, Space>("oacsr::col",
                                  std::size_t(std::max<bigint>(capacity, 1)));
  H_.val = kk::View1D<double, Space>(
      "oacsr::val", std::size_t(std::max<bigint>(capacity, 1)));

  auto rc = H_.row_count;
  auto col = H_.col;
  auto val = H_.val;
  const ReaxParams p = params_;
  const double cutsq = p.rcut_nonb * p.rcut_nonb;

  if (build_mode == MatrixBuildMode::Flat) {
    // One row per work item (host-friendly; divergent on devices).
    kk::parallel_for(
        "QEq::BuildFlat", kk::RangePolicy<Space>(0, std::size_t(n)),
        [=](std::size_t i) {
          const bigint beg = ro(i);
          int c = 0;
          const int jnum = numneigh(i);
          const double gi = p.gamma[type(i)];
          for (int jj = 0; jj < jnum; ++jj) {
            const int j = neigh(i, std::size_t(jj));
            const double dx = x(i, 0) - x(std::size_t(j), 0);
            const double dy = x(i, 1) - x(std::size_t(j), 1);
            const double dz = x(i, 2) - x(std::size_t(j), 2);
            const double rsq = dx * dx + dy * dy + dz * dz;
            if (rsq >= cutsq || rsq < 1e-20) continue;
            const double r = std::sqrt(rsq);
            const double gij = std::sqrt(gi * p.gamma[type(std::size_t(j))]);
            const std::size_t w = std::size_t(beg + c);
            col(w) = j;
            val(w) = h_value(p, r, gij);
            ++c;
          }
          rc(i) = c;
        });
  } else {
    // Hierarchical: one team per row; entries counted with a vector-range
    // reduction and slotted with a vector-range scan (§4.2.2). On real GPUs
    // this restores convergent memory access across lanes of a row.
    kk::TeamPolicy<Space> policy(std::size_t(n), 1, 32);
    kk::parallel_for(
        "QEq::BuildHierarchical", policy, [=](const kk::TeamMember& m) {
          const std::size_t i = m.league_rank();
          const bigint beg = ro(i);
          const int jnum = numneigh(i);
          const double gi = p.gamma[type(i)];
          // Hierarchical reduction: number of nonzeros in the row.
          int cnt = 0;
          kk::parallel_reduce(kk::ThreadVectorRange(m, std::size_t(jnum)),
                              [&](std::size_t jj, int& c) {
                                const int j = neigh(i, jj);
                                const double dx = x(i, 0) - x(std::size_t(j), 0);
                                const double dy = x(i, 1) - x(std::size_t(j), 1);
                                const double dz = x(i, 2) - x(std::size_t(j), 2);
                                const double rsq = dx * dx + dy * dy + dz * dz;
                                if (rsq < cutsq && rsq > 1e-20) ++c;
                              },
                              cnt);
          rc(i) = cnt;
          // Hierarchical scan: slot values into the over-allocated row.
          int total = 0;
          kk::parallel_scan(
              kk::TeamThreadRange(m, std::size_t(jnum)),
              [&](std::size_t jj, int& update, bool final) {
                const int j = neigh(i, jj);
                const double dx = x(i, 0) - x(std::size_t(j), 0);
                const double dy = x(i, 1) - x(std::size_t(j), 1);
                const double dz = x(i, 2) - x(std::size_t(j), 2);
                const double rsq = dx * dx + dy * dy + dz * dz;
                if (rsq >= cutsq || rsq < 1e-20) return;
                if (final) {
                  const double r = std::sqrt(rsq);
                  const double gij =
                      std::sqrt(gi * p.gamma[type(std::size_t(j))]);
                  const std::size_t w = std::size_t(beg + update);
                  col(w) = j;
                  val(w) = h_value(p, r, gij);
                }
                update += 1;
              },
              total);
        });
  }
}

template <class Space>
void QEq<Space>::matvec(Atom& atom, CommBrick& comm,
                        const kk::View1D<double, Space>& x,
                        const kk::View1D<double, Space>& y) {
  // Ghost columns need the owner's value: stage into a DualView-backed
  // buffer covering nall and forward-communicate.
  const localint nlocal = atom.nlocal;
  const localint nall = atom.nall();
  kk::DualView<double, 1>& xg = xg_;
  if (!xg.is_allocated() || xg.extent(0) < std::size_t(nall))
    xg.realloc(std::size_t(nall) + 256);
  auto xgv = xg.template view<Space>();
  kk::parallel_for("QEq::gather", kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                   [=](std::size_t i) { xgv(i) = x(i); });
  xg.template modify<Space>();
  comm.forward_scalar(xg);
  xg.template sync<Space>();
  xgv = xg.template view<Space>();

  H_.spmv(xgv, y);
  // + diag(eta) x.
  auto type = atom.k_type.view<Space>();
  const ReaxParams p = params_;
  kk::parallel_for("QEq::eta", kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                   [=](std::size_t i) { y(i) += p.eta[type(i)] * x(i); });
}

namespace {
template <class Space, class V>
double dot_local(const V& a, const V& b, std::size_t n) {
  double out = 0.0;
  kk::parallel_reduce("QEq::dot", kk::RangePolicy<Space>(0, n),
                      [=](std::size_t i, double& s) { s += a(i) * b(i); },
                      out);
  return out;
}
}  // namespace

template <class Space>
int QEq<Space>::solve(Atom& atom, CommBrick& comm, simmpi::Comm* mpi) {
  const localint n = atom.nlocal;
  const std::size_t ns = std::size_t(std::max<localint>(n, 1));
  atom.sync<Space>(TYPE_MASK | Q_MASK);
  auto type = atom.k_type.view<Space>();
  const ReaxParams p = params_;
  auto reduce = [&](double v) { return mpi ? mpi->allreduce_sum(v) : v; };

  // Two RHS: b1 = -chi (per type), b2 = -1.
  kk::View1D<double, Space> s("qeq::s", ns), t("qeq::t", ns);
  kk::View1D<double, Space> r1("qeq::r1", ns), r2("qeq::r2", ns);
  kk::View1D<double, Space> p1("qeq::p1", ns), p2("qeq::p2", ns);
  kk::View1D<double, Space> ap1("qeq::ap1", ns), ap2("qeq::ap2", ns);

  kk::parallel_for("QEq::init", kk::RangePolicy<Space>(0, std::size_t(n)),
                   [=](std::size_t i) {
                     s(i) = 0.0;
                     t(i) = 0.0;
                     r1(i) = -p.chi[type(i)];
                     r2(i) = -1.0;
                     p1(i) = r1(i);
                     p2(i) = r2(i);
                   });

  double rr1 = reduce(dot_local<Space>(r1, r1, std::size_t(n)));
  double rr2 = reduce(dot_local<Space>(r2, r2, std::size_t(n)));
  const double b1norm = std::sqrt(std::max(rr1, 1e-300));
  const double b2norm = std::sqrt(std::max(rr2, 1e-300));
  bool conv1 = false, conv2 = false;

  int iters = 0;
  for (; iters < params_.qeq_maxiter; ++iters) {
    conv1 = std::sqrt(rr1) / b1norm < params_.qeq_tolerance;
    conv2 = std::sqrt(rr2) / b2norm < params_.qeq_tolerance;
    if (conv1 && conv2) break;

    if (fused_solve) {
      // Fused dual matvec: single pass over the matrix for both systems.
      // Gather+forward both vectors, then spmv_dual (the §4.2.3 fusion).
      const localint nall = atom.nall();
      kk::DualView<double, 1>& xg1 = xg1_;
      kk::DualView<double, 1>& xg2 = xg2_;
      if (!xg1.is_allocated() || xg1.extent(0) < std::size_t(nall)) {
        xg1.realloc(std::size_t(nall) + 256);
        xg2.realloc(std::size_t(nall) + 256);
      }
      auto x1v = xg1.template view<Space>();
      auto x2v = xg2.template view<Space>();
      auto p1v = p1, p2v = p2;
      kk::parallel_for("QEq::gather2",
                       kk::RangePolicy<Space>(0, std::size_t(n)),
                       [=](std::size_t i) {
                         x1v(i) = p1v(i);
                         x2v(i) = p2v(i);
                       });
      xg1.template modify<Space>();
      xg2.template modify<Space>();
      comm.forward_scalar(xg1);
      comm.forward_scalar(xg2);
      xg1.template sync<Space>();
      xg2.template sync<Space>();
      H_.spmv_dual(xg1.template view<Space>(), xg2.template view<Space>(),
                   ap1, ap2);
      auto ap1v = ap1, ap2v = ap2;
      kk::parallel_for("QEq::eta2", kk::RangePolicy<Space>(0, std::size_t(n)),
                       [=](std::size_t i) {
                         ap1v(i) += p.eta[type(i)] * p1v(i);
                         ap2v(i) += p.eta[type(i)] * p2v(i);
                       });
    } else {
      matvec(atom, comm, p1, ap1);
      matvec(atom, comm, p2, ap2);
    }

    // Independent CG updates per system (frozen once converged).
    if (!conv1) {
      const double alpha = rr1 / reduce(dot_local<Space>(p1, ap1, std::size_t(n)));
      auto sv = s, r1v = r1, p1v = p1, ap1v = ap1;
      kk::parallel_for("QEq::upd1", kk::RangePolicy<Space>(0, std::size_t(n)),
                       [=](std::size_t i) {
                         sv(i) += alpha * p1v(i);
                         r1v(i) -= alpha * ap1v(i);
                       });
      const double rr_new = reduce(dot_local<Space>(r1, r1, std::size_t(n)));
      const double beta = rr_new / rr1;
      rr1 = rr_new;
      kk::parallel_for("QEq::dir1", kk::RangePolicy<Space>(0, std::size_t(n)),
                       [=](std::size_t i) { p1v(i) = r1v(i) + beta * p1v(i); });
    }
    if (!conv2) {
      const double alpha = rr2 / reduce(dot_local<Space>(p2, ap2, std::size_t(n)));
      auto tv = t, r2v = r2, p2v = p2, ap2v = ap2;
      kk::parallel_for("QEq::upd2", kk::RangePolicy<Space>(0, std::size_t(n)),
                       [=](std::size_t i) {
                         tv(i) += alpha * p2v(i);
                         r2v(i) -= alpha * ap2v(i);
                       });
      const double rr_new = reduce(dot_local<Space>(r2, r2, std::size_t(n)));
      const double beta = rr_new / rr2;
      rr2 = rr_new;
      kk::parallel_for("QEq::dir2", kk::RangePolicy<Space>(0, std::size_t(n)),
                       [=](std::size_t i) { p2v(i) = r2v(i) + beta * p2v(i); });
    }
  }
  last_iters_ = iters;

  // q = s - t * (sum s / sum t); charge neutrality by construction.
  double ssum = 0.0, tsum = 0.0;
  kk::parallel_reduce("QEq::ssum", kk::RangePolicy<Space>(0, std::size_t(n)),
                      [=](std::size_t i, double& a) { a += s(i); }, ssum);
  kk::parallel_reduce("QEq::tsum", kk::RangePolicy<Space>(0, std::size_t(n)),
                      [=](std::size_t i, double& a) { a += t(i); }, tsum);
  ssum = reduce(ssum);
  tsum = reduce(tsum);
  require(std::abs(tsum) > 1e-300, "QEq: singular neutrality projection");
  const double mu = ssum / tsum;

  atom.sync<Space>(Q_MASK);
  auto q = atom.k_q.view<Space>();
  kk::parallel_for("QEq::setq", kk::RangePolicy<Space>(0, std::size_t(n)),
                   [=](std::size_t i) { q(i) = s(i) - mu * t(i); });
  atom.modified<Space>(Q_MASK);
  comm.forward_charges(atom);
  return iters;
}

template <class Space>
double QEq<Space>::energy(Atom& atom) const {
  const localint n = atom.nlocal;
  atom.sync<Space>(Q_MASK | TYPE_MASK);
  auto q = atom.k_q.view<Space>();
  auto type = atom.k_type.view<Space>();
  const ReaxParams p = params_;

  // Pair part: 0.5 q^T H q over owned rows (ghost q already current).
  kk::View1D<double, Space> hq("qeq::hq",
                               std::size_t(std::max<localint>(n, 1)));
  H_.spmv(q, hq);
  double e = 0.0;
  kk::parallel_reduce("QEq::energy", kk::RangePolicy<Space>(0, std::size_t(n)),
                      [=](std::size_t i, double& a) {
                        a += p.chi[type(i)] * q(i) +
                             0.5 * p.eta[type(i)] * q(i) * q(i) +
                             0.5 * q(i) * hq(i);
                      },
                      e);
  return e;
}

template <class Space>
void QEq<Space>::add_forces(Atom& atom, double virial[6]) const {
  atom.sync<Space>(X_MASK | Q_MASK | TYPE_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto q = atom.k_q.view<Space>();
  auto type = atom.k_type.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto ro = H_.row_offset;
  auto rc = H_.row_count;
  auto col = H_.col;
  const ReaxParams p = params_;
  const localint n = atom.nlocal;

  EV total;
  kk::parallel_reduce(
      "QEq::CoulombForce", kk::RangePolicy<Space>(0, std::size_t(n)),
      [=](std::size_t i, EV& ev) {
        const bigint beg = ro(i);
        const int cnt = rc(i);
        const double gi = p.gamma[type(i)];
        for (int k = 0; k < cnt; ++k) {
          const std::size_t j = std::size_t(col(std::size_t(beg + k)));
          const double dx = x(i, 0) - x(j, 0);
          const double dy = x(i, 1) - x(j, 1);
          const double dz = x(i, 2) - x(j, 2);
          const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
          const double gij = std::sqrt(gi * p.gamma[type(j)]);
          // Half per directed entry; the mirrored row supplies the rest.
          const double fmag = -0.5 * q(i) * q(j) * dh_dr(p, r, gij) / r;
          const double fx = fmag * dx, fy = fmag * dy, fz = fmag * dz;
          kk::atomic_add(&f(i, std::size_t(0)), fx);
          kk::atomic_add(&f(i, std::size_t(1)), fy);
          kk::atomic_add(&f(i, std::size_t(2)), fz);
          kk::atomic_add(&f(j, std::size_t(0)), -fx);
          kk::atomic_add(&f(j, std::size_t(1)), -fy);
          kk::atomic_add(&f(j, std::size_t(2)), -fz);
          ev.v[0] += dx * fx;
          ev.v[1] += dy * fy;
          ev.v[2] += dz * fz;
          ev.v[3] += dx * fy;
          ev.v[4] += dx * fz;
          ev.v[5] += dy * fz;
        }
      },
      total);
  for (int k = 0; k < 6; ++k) virial[k] += total.v[k];
  atom.modified<Space>(F_MASK);
}

template class QEq<kk::Host>;
template class QEq<kk::Device>;

}  // namespace mlk::reaxff
