// Four-body torsion term with quad pre-processing (§4.2.1).
//
// The torsion of quads (i, j, k, l) requires (i,j), (j,k), (k,l) bonded and
// the product of the three bond orders above a threshold; in molecular
// crystals fewer than ~5% of candidate quads survive, so the direct
// triply-nested kernel is highly divergent. The paper's fix is reproduced
// exactly: two inexpensive pre-processing kernels (count per atom, then
// exclusive scan + fill into a compressed Kokkos View of int4, all quads of
// an atom contiguous) feed a fully convergent compute kernel parallelized
// over *quads*.
#pragma once

#include "engine/atom.hpp"
#include "pair/pair_compute_kokkos.hpp"
#include "reaxff/bond_order.hpp"

namespace mlk::reaxff {

template <class Space>
struct QuadList {
  kk::View1D<int4, Space> quads;
  bigint count = 0;       // surviving quads
  bigint candidates = 0;  // all (i,j,k,l) combinations examined
  double survival_fraction() const {
    return candidates == 0 ? 0.0 : double(count) / double(candidates);
  }
};

/// Pre-processing: enumerate surviving quads. Center bonds (j,k) are owned
/// by the coordinate tie-break so each physical torsion is counted once
/// across ranks/images. Requires ghost bond rows.
template <class Space>
void build_quads(const ReaxParams& p, Atom& atom, const BondList<Space>& bonds,
                 QuadList<Space>& out);

/// Convergent compute over pre-built quads.
template <class Space>
EV compute_torsions_preprocessed(const ReaxParams& p, Atom& atom,
                                 const QuadList<Space>& quads, bool eflag);

/// Divergent baseline: triply-nested loop with inline constraints
/// (energy/forces identical to the pre-processed path; used by tests and
/// the divergence bench).
template <class Space>
EV compute_torsions_direct(const ReaxParams& p, Atom& atom,
                           const BondList<Space>& bonds, bool eflag);

}  // namespace mlk::reaxff
