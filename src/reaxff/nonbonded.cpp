#include "reaxff/nonbonded.hpp"

#include <cmath>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk::reaxff {

template <class Space>
EV compute_vdw(const ReaxParams& p, Atom& atom, const NeighborList& list,
               bool eflag) {
  require(list.style == NeighStyle::Full, "reaxff vdW needs a full list");
  atom.sync<Space>(X_MASK | F_MASK);
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();
  const ReaxParams params = p;
  const double cutsq = p.rcut_nonb * p.rcut_nonb;

  EV total;
  kk::parallel_reduce(
      "ReaxFF::VdW", kk::RangePolicy<Space>(0, std::size_t(list.inum)),
      [=](std::size_t i, EV& ev) {
        double fx = 0.0, fy = 0.0, fz = 0.0;
        const int jnum = numneigh(i);
        for (int jj = 0; jj < jnum; ++jj) {
          const int j = neigh(i, std::size_t(jj));
          const double dx = x(i, 0) - x(std::size_t(j), 0);
          const double dy = x(i, 1) - x(std::size_t(j), 1);
          const double dz = x(i, 2) - x(std::size_t(j), 2);
          const double rsq = dx * dx + dy * dy + dz * dz;
          if (rsq >= cutsq || rsq < 1e-20) continue;
          const double r = std::sqrt(rsq);
          const double tap = taper7(r, params.rcut_nonb);
          const double dtap = dtaper7(r, params.rcut_nonb);
          const double em = morse_energy(params, r);
          const double dem = dmorse_energy(params, r);
          // fpair = -(dE/dr)/r; full-list redundant compute, force on i only.
          const double fpair = -(dtap * em + tap * dem) / r;
          fx += dx * fpair;
          fy += dy * fpair;
          fz += dz * fpair;
          if (eflag) {
            ev.evdwl += 0.5 * tap * em;
            ev.v[0] += 0.5 * dx * dx * fpair;
            ev.v[1] += 0.5 * dy * dy * fpair;
            ev.v[2] += 0.5 * dz * dz * fpair;
            ev.v[3] += 0.5 * dx * dy * fpair;
            ev.v[4] += 0.5 * dx * dz * fpair;
            ev.v[5] += 0.5 * dy * dz * fpair;
          }
        }
        f(i, 0) += fx;
        f(i, 1) += fy;
        f(i, 2) += fz;
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

template EV compute_vdw<kk::Host>(const ReaxParams&, Atom&,
                                  const NeighborList&, bool);
template EV compute_vdw<kk::Device>(const ReaxParams&, Atom&,
                                    const NeighborList&, bool);

}  // namespace mlk::reaxff
