#include "reaxff/nonbonded.hpp"

#include <cmath>

#include "kokkos/core.hpp"
#include "kokkos/simd.hpp"
#include "util/error.hpp"

namespace mlk::reaxff {

template <class Space>
EV compute_vdw(const ReaxParams& p, Atom& atom, const NeighborList& list,
               bool eflag) {
  require(list.style == NeighStyle::Full, "reaxff vdW needs a full list");
  atom.sync<Space>(X_MASK | F_MASK);
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();
  const ReaxParams params = p;
  const double cutsq = p.rcut_nonb * p.rcut_nonb;

  // SIMD path: lanes over neighbors, taper/Morse polynomials evaluated on
  // packs (the r>=rcut early-outs in taper7/dtaper7 never fire on active
  // lanes — the cutoff mask already excludes them, so the polynomial is
  // inlined unguarded). i-row sums reassociate across lanes — tolerance
  // policy (docs/VECTORIZATION.md).
  const bool use_simd = kk::simd_enabled();
  if (use_simd) kk::simdstats::count_launch("ReaxFF::VdW");

  EV total;
  kk::parallel_reduce(
      "ReaxFF::VdW", kk::RangePolicy<Space>(0, std::size_t(list.inum)),
      [=](std::size_t i, EV& ev) {
        double fx = 0.0, fy = 0.0, fz = 0.0;
        const int jnum = numneigh(i);
        if (use_simd && jnum > 0) {
          constexpr int W = kk::native_simd_width;
          using pd = kk::simd<double, W>;
          const pd xi0(x(i, 0)), xi1(x(i, 1)), xi2(x(i, 2));
          const pd rcut_p(params.rcut_nonb);
          const pd morse_a(params.alpha_vdw / params.r_vdw * 0.5);
          pd afx, afy, afz, aev, av[6];
          const kk::simd_mask<W> all(true);
          int j[W];
          const auto chunk = [&](const kk::simd_mask<W>& act) {
            const pd dx =
                xi0 - pd::gather([&](int l) { return x(std::size_t(j[l]), 0); });
            const pd dy =
                xi1 - pd::gather([&](int l) { return x(std::size_t(j[l]), 1); });
            const pd dz =
                xi2 - pd::gather([&](int l) { return x(std::size_t(j[l]), 2); });
            const pd rsq = dx * dx + dy * dy + dz * dz;
            const kk::simd_mask<W> m =
                act && (rsq < cutsq) && (rsq >= pd(1e-20));
            if (m.none()) return;
            const pd r = kk::sqrt(kk::select(m, rsq, pd(1.0)));
            // taper7/dtaper7 on packs (s = r/rcut; Horner as in the scalars).
            const pd s = r / rcut_p;
            const pd s3 = s * s * s;
            const pd tap =
                pd(1.0) +
                s3 * s * (pd(-35.0) + s * (pd(84.0) + s * (pd(-70.0) + s * 20.0)));
            const pd dtap =
                s3 * (pd(-140.0) + s * (pd(420.0) + s * (pd(-420.0) + s * 140.0))) /
                params.rcut_nonb;
            // Morse: e = exp(-alpha*(r/r_vdw - 1)/2); em = D(e^2 - 2e).
            const pd e = kk::exp(pd(-params.alpha_vdw * 0.5) *
                                 (r / params.r_vdw - 1.0));
            const pd em = params.D_vdw * (e * e - 2.0 * e);
            const pd dem =
                params.D_vdw * (pd(-2.0) * morse_a * e * e + 2.0 * morse_a * e);
            const pd fpair = kk::select(m, -(dtap * em + tap * dem) / r, pd(0.0));
            afx += dx * fpair;
            afy += dy * fpair;
            afz += dz * fpair;
            if (eflag) {
              aev += kk::select(m, pd(0.5) * tap * em, pd(0.0));
              av[0] += 0.5 * dx * dx * fpair;
              av[1] += 0.5 * dy * dy * fpair;
              av[2] += 0.5 * dz * dz * fpair;
              av[3] += 0.5 * dx * dy * fpair;
              av[4] += 0.5 * dx * dz * fpair;
              av[5] += 0.5 * dy * dz * fpair;
            }
          };
          const int nfull = jnum & ~(W - 1);
          for (int jj = 0; jj < nfull; jj += W) {
            for (int l = 0; l < W; ++l) j[l] = neigh(i, std::size_t(jj + l));
            chunk(all);
          }
          const int rem = jnum - nfull;
          if (rem > 0) {
            j[0] = neigh(i, std::size_t(nfull));
            for (int l = 1; l < W; ++l)
              j[l] = l < rem ? neigh(i, std::size_t(nfull + l)) : j[0];
            chunk(kk::simd_mask<W>::first(rem));
          }
          fx = kk::reduce_sum(afx);
          fy = kk::reduce_sum(afy);
          fz = kk::reduce_sum(afz);
          if (eflag) {
            ev.evdwl += kk::reduce_sum(aev);
            for (int k = 0; k < 6; ++k) ev.v[k] += kk::reduce_sum(av[k]);
          }
          f(i, 0) += fx;
          f(i, 1) += fy;
          f(i, 2) += fz;
          return;
        }
        for (int jj = 0; jj < jnum; ++jj) {
          const int j = neigh(i, std::size_t(jj));
          const double dx = x(i, 0) - x(std::size_t(j), 0);
          const double dy = x(i, 1) - x(std::size_t(j), 1);
          const double dz = x(i, 2) - x(std::size_t(j), 2);
          const double rsq = dx * dx + dy * dy + dz * dz;
          if (rsq >= cutsq || rsq < 1e-20) continue;
          const double r = std::sqrt(rsq);
          const double tap = taper7(r, params.rcut_nonb);
          const double dtap = dtaper7(r, params.rcut_nonb);
          const double em = morse_energy(params, r);
          const double dem = dmorse_energy(params, r);
          // fpair = -(dE/dr)/r; full-list redundant compute, force on i only.
          const double fpair = -(dtap * em + tap * dem) / r;
          fx += dx * fpair;
          fy += dy * fpair;
          fz += dz * fpair;
          if (eflag) {
            ev.evdwl += 0.5 * tap * em;
            ev.v[0] += 0.5 * dx * dx * fpair;
            ev.v[1] += 0.5 * dy * dy * fpair;
            ev.v[2] += 0.5 * dz * dz * fpair;
            ev.v[3] += 0.5 * dx * dy * fpair;
            ev.v[4] += 0.5 * dx * dz * fpair;
            ev.v[5] += 0.5 * dy * dz * fpair;
          }
        }
        f(i, 0) += fx;
        f(i, 1) += fy;
        f(i, 2) += fz;
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

template EV compute_vdw<kk::Host>(const ReaxParams&, Atom&,
                                  const NeighborList&, bool);
template EV compute_vdw<kk::Device>(const ReaxParams&, Atom&,
                                    const NeighborList&, bool);

}  // namespace mlk::reaxff
