// Nonbonded ReaxFF terms: tapered Morse van der Waals over the full
// geometric neighbor list (all neighboring atoms interact — §4's "pairwise
// non-bonded interactions in which all neighboring atoms interact").
// Coulomb lives with QEq (qeq.hpp) since it shares the H matrix.
#pragma once

#include "engine/atom.hpp"
#include "engine/neighbor.hpp"
#include "pair/pair_compute_kokkos.hpp"
#include "reaxff/reaxff_types.hpp"

namespace mlk::reaxff {

/// Accumulates vdW forces into atom.k_f (owned atoms only, redundant-compute
/// full-list style) and returns energy/virial.
template <class Space>
EV compute_vdw(const ReaxParams& p, Atom& atom, const NeighborList& list,
               bool eflag);

}  // namespace mlk::reaxff
