#include "reaxff/sparse.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mlk::reaxff {

template <class Space>
void OACSR<Space>::allocate_rows(localint n) {
  nrows = n;
  row_offset = kk::View1D<bigint, Space>("oacsr::row_offset",
                                         std::size_t(std::max<localint>(n, 1)) + 1);
  row_count =
      kk::View1D<int, Space>("oacsr::row_count",
                             std::size_t(std::max<localint>(n, 1)));
}

template <class Space>
bigint OACSR<Space>::total_nonzeros() const {
  bigint total = 0;
  for (localint i = 0; i < nrows; ++i) total += row_count(std::size_t(i));
  return total;
}

template <class Space>
void OACSR<Space>::spmv(const kk::View1D<double, Space>& x,
                        const kk::View1D<double, Space>& y) const {
  auto ro = row_offset;
  auto rc = row_count;
  auto c = col;
  auto v = val;
  kk::parallel_for("OACSR::spmv", kk::RangePolicy<Space>(0, std::size_t(nrows)),
                   [=](std::size_t i) {
                     const bigint beg = ro(i);
                     const int cnt = rc(i);
                     double acc = 0.0;
                     for (int k = 0; k < cnt; ++k) {
                       const std::size_t idx = std::size_t(beg + k);
                       acc += v(idx) * x(std::size_t(c(idx)));
                     }
                     y(i) = acc;
                   });
}

template <class Space>
void OACSR<Space>::spmv_dual(const kk::View1D<double, Space>& x1,
                             const kk::View1D<double, Space>& x2,
                             const kk::View1D<double, Space>& y1,
                             const kk::View1D<double, Space>& y2) const {
  auto ro = row_offset;
  auto rc = row_count;
  auto c = col;
  auto v = val;
  kk::parallel_for("OACSR::spmv_dual",
                   kk::RangePolicy<Space>(0, std::size_t(nrows)),
                   [=](std::size_t i) {
                     const bigint beg = ro(i);
                     const int cnt = rc(i);
                     double acc1 = 0.0, acc2 = 0.0;
                     for (int k = 0; k < cnt; ++k) {
                       const std::size_t idx = std::size_t(beg + k);
                       const double a = v(idx);       // single matrix load
                       const std::size_t j = std::size_t(c(idx));
                       acc1 += a * x1(j);             // two independent
                       acc2 += a * x2(j);             // accumulations (ILP)
                     }
                     y1(i) = acc1;
                     y2(i) = acc2;
                   });
}

template <class Space>
void OACSR<Space>::spmv_team(const kk::View1D<double, Space>& x,
                             const kk::View1D<double, Space>& y) const {
  auto ro = row_offset;
  auto rc = row_count;
  auto c = col;
  auto v = val;
  kk::TeamPolicy<Space> policy(std::size_t(nrows), 1, 32);
  kk::parallel_for("OACSR::spmv_team", policy, [=](const kk::TeamMember& m) {
    const std::size_t i = m.league_rank();
    const bigint beg = ro(i);
    const int cnt = rc(i);
    double acc = 0.0;
    kk::parallel_reduce(kk::ThreadVectorRange(m, std::size_t(cnt)),
                        [&](std::size_t k, double& a) {
                          const std::size_t idx = std::size_t(beg + bigint(k));
                          a += v(idx) * x(std::size_t(c(idx)));
                        },
                        acc);
    y(i) = acc;
  });
}

template struct OACSR<kk::Host>;
template struct OACSR<kk::Device>;

}  // namespace mlk::reaxff
