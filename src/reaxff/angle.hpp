// Three-body valence-angle term (§4.2.1's discussion "carries over exactly
// to the three-body force"). Two interchangeable implementations:
//   * compute_angles_direct   — the divergent baseline: nested loop over all
//                               bond pairs with the conditionals inline;
//   * build_triples + compute_angles_preprocessed — the paper's pattern:
//     count/fill a compressed int3 triple table, then a fully convergent
//     compute kernel parallel over triples.
// Both produce identical energies/forces (tested); the bench compares their
// modelled GPU cost.
#pragma once

#include "engine/atom.hpp"
#include "pair/pair_compute_kokkos.hpp"
#include "reaxff/bond_order.hpp"

namespace mlk::reaxff {

/// Compressed triple list: (j center, a, b) as bond slot indices of row j.
template <class Space>
struct TripleList {
  kk::View1D<int3, Space> triples;
  bigint count = 0;
};

template <class Space>
void build_triples(const BondList<Space>& bonds, localint nlocal,
                   TripleList<Space>& out);

/// Divergent baseline: returns energy/virial, accumulates forces (atomic).
template <class Space>
EV compute_angles_direct(const ReaxParams& p, Atom& atom,
                         const BondList<Space>& bonds, bool eflag);

/// Convergent compute over a pre-built triple table.
template <class Space>
EV compute_angles_preprocessed(const ReaxParams& p, Atom& atom,
                               const BondList<Space>& bonds,
                               const TripleList<Space>& triples, bool eflag);

}  // namespace mlk::reaxff
