// reaxff-lite parameter set and bond-order functional forms (§4.2).
//
// The full ReaxFF force field (Van Duin 2001) has dozens of empirical terms;
// this reproduction keeps every *computational pattern* the paper discusses
// — dynamic bond lists via divergent pre-processing, three-body terms over
// bonded triples, four-body torsions over constrained quads (<5% survival),
// charge equilibration with over-allocated CSR and fused Krylov solves —
// with simplified, analytically differentiable functional forms:
//
//   bond order   BO(r)   = exp(pbo1 * (r/r0)^pbo2),  bond if BO > bo_cut
//   bond energy  E_b     = -De * BO
//   angle        E_a     = k_th * BO_ji BO_jk (cos th - cos th0)^2
//   torsion      E_t     = k_t * BO_ij BO_jk BO_kl (1 + cos phi),
//                          quad kept if BO product > bo_cut_tors
//   vdW          E_v     = Morse(D, alpha, rv) * taper(r)
//   Coulomb      E_c     = C q_i q_j / (r^3 + (1/gij)^3)^(1/3) * taper(r)
//   QEq          min_q [ sum chi_i q_i + eta_i q_i^2 / 2 + sum H_ij q_i q_j ]
//                s.t. sum q = 0   (two CG solves, paper §4.2.2-4.2.3)
#pragma once

#include <cmath>

#include "util/types.hpp"

namespace mlk::reaxff {

/// kcal/mol * A / e^2 (real units Coulomb constant, as LAMMPS).
constexpr double kCoulombConst = 332.06371;

struct ReaxParams {
  // Bond order (sigma only).
  double r0 = 1.4;        // equilibrium sigma-bond length (A)
  double pbo1 = -0.08;    // always negative
  double pbo2 = 6.0;
  double bo_cut = 0.01;   // bond-list threshold
  double rcut_bond = 3.0; // hard bond-search cutoff

  // Bond energy.
  double De = 120.0;  // kcal/mol

  // Valence angle.
  double k_th = 35.0;
  double theta0 = 2.0944;  // 120 degrees

  // Torsion.
  double k_tors = 5.0;
  double bo_cut_tors = 0.35;  // product-of-BO constraint (drives <5% survival)

  // Nonbonded.
  double rcut_nonb = 8.0;
  double D_vdw = 0.15;
  double alpha_vdw = 10.0;
  double r_vdw = 3.6;

  // QEq per-type (1-based, up to 2 species). Magnitudes follow real ReaxFF
  // (chi ~ 6/8.5 eV, hardness 2*eta ~ 14/18 eV, in kcal/mol): the large
  // diagonal keeps H + diag(eta) positive definite so CG converges.
  double chi[3] = {0.0, 136.0, 196.0};   // electronegativity (kcal/mol/e)
  double eta[3] = {0.0, 322.0, 410.0};   // hardness (kcal/mol/e^2)
  double gamma[3] = {0.0, 0.8, 1.0};     // shielding (1/A)

  double qeq_tolerance = 1e-8;
  int qeq_maxiter = 200;
};

// --- bond order -----------------------------------------------------------

inline double bond_order(const ReaxParams& p, double r) {
  return std::exp(p.pbo1 * std::pow(r / p.r0, p.pbo2));
}

/// Distance at which BO(r) == bo_cut: used as the bond-search cutoff so
/// that bonds enter/leave the dynamic list exactly where the (threshold-
/// shifted) bond energy vanishes — the potential stays continuous.
inline double bond_cut_distance(const ReaxParams& p) {
  return p.r0 * std::pow(std::log(p.bo_cut) / p.pbo1, 1.0 / p.pbo2);
}

/// dBO/dr.
inline double dbond_order(const ReaxParams& p, double r) {
  const double t = std::pow(r / p.r0, p.pbo2);
  return bond_order(p, r) * p.pbo1 * p.pbo2 * t / r;
}

// --- taper (7th order, smooth at both ends, as real ReaxFF) ----------------

/// T(r) = 1 - 35s^4 + 84s^5 - 70s^6 + 20s^7, s = r/rcut.
inline double taper7(double r, double rcut) {
  if (r >= rcut) return 0.0;
  const double s = r / rcut;
  const double s4 = s * s * s * s;
  return 1.0 + s4 * (-35.0 + s * (84.0 + s * (-70.0 + s * 20.0)));
}

inline double dtaper7(double r, double rcut) {
  if (r >= rcut) return 0.0;
  const double s = r / rcut;
  const double s3 = s * s * s;
  return (s3 * (-140.0 + s * (420.0 + s * (-420.0 + s * 140.0)))) / rcut;
}

// --- shielded Coulomb kernel (gamma_ij = sqrt(g_i g_j)) --------------------

inline double shielded_coulomb(double r, double gij) {
  const double g3 = 1.0 / (gij * gij * gij);
  return 1.0 / std::cbrt(r * r * r + g3);
}

/// d/dr of shielded_coulomb.
inline double dshielded_coulomb(double r, double gij) {
  const double g3 = 1.0 / (gij * gij * gij);
  const double denom = r * r * r + g3;
  return -r * r * std::pow(denom, -4.0 / 3.0);
}

// --- Morse vdW -------------------------------------------------------------

inline double morse_energy(const ReaxParams& p, double r) {
  const double e = std::exp(-p.alpha_vdw * (r / p.r_vdw - 1.0) * 0.5);
  return p.D_vdw * (e * e - 2.0 * e);
}

inline double dmorse_energy(const ReaxParams& p, double r) {
  const double a = p.alpha_vdw / p.r_vdw * 0.5;
  const double e = std::exp(-p.alpha_vdw * (r / p.r_vdw - 1.0) * 0.5);
  return p.D_vdw * (-2.0 * a * e * e + 2.0 * a * e);
}

}  // namespace mlk::reaxff
