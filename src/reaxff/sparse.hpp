// Over-allocated CSR sparse matrix (§4.2.2, Appendix B).
//
// The QEq electrostatics matrix uses a modified CSR where each row is
// allocated space for the *maximum possible* number of neighbors (from the
// full geometric neighbor list) while a separate per-row count records the
// actual number of nonzeros within the interaction cutoff. Four data
// structures describe the matrix: values, column indices, row offsets, and
// row counts. Only the row offsets — length N_atoms, cumulative and
// therefore able to exceed 2^31 — are 64-bit; column indices and row counts
// stay 32-bit (the space-efficient choice Appendix B describes).
#pragma once

#include "kokkos/core.hpp"
#include "kokkos/team.hpp"
#include "util/types.hpp"

namespace mlk::reaxff {

template <class Space>
struct OACSR {
  kk::View1D<bigint, Space> row_offset;  // (nrows+1), 64-bit (App. B)
  kk::View1D<int, Space> row_count;      // actual nnz per row
  kk::View1D<int, Space> col;            // (capacity), 32-bit
  kk::View1D<double, Space> val;         // (capacity)
  localint nrows = 0;
  bigint capacity = 0;

  void allocate_rows(localint n);

  /// y = A x. `x` must cover every column index (locals + ghosts).
  void spmv(const kk::View1D<double, Space>& x,
            const kk::View1D<double, Space>& y) const;

  /// Fused dual matrix-vector product: y1 = A x1 and y2 = A x2 with a single
  /// pass over the matrix (the §4.2.3 kernel fusion — the matrix load is
  /// reused, and the two independent accumulations expose ILP, §4.3.4).
  void spmv_dual(const kk::View1D<double, Space>& x1,
                 const kk::View1D<double, Space>& x2,
                 const kk::View1D<double, Space>& y1,
                 const kk::View1D<double, Space>& y2) const;

  /// Row-parallel hierarchical SpMV: one team per row, matrix entries over
  /// vector lanes (§4.2.2's device-friendly variant; identical result).
  void spmv_team(const kk::View1D<double, Space>& x,
                 const kk::View1D<double, Space>& y) const;

  bigint total_nonzeros() const;
};

}  // namespace mlk::reaxff
