#include "reaxff/torsion.hpp"

#include <cmath>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk::reaxff {

namespace {

inline void cross(const double a[3], const double b[3], double out[3]) {
  out[0] = a[1] * b[2] - a[2] * b[1];
  out[1] = a[2] * b[0] - a[0] * b[2];
  out[2] = a[0] * b[1] - a[1] * b[0];
}

/// Directed center-bond ownership: consistent across ranks and periodic
/// images (compare physical coordinates, z then y then x).
template <class XView>
inline bool owns_center_bond(const XView& x, std::size_t j, std::size_t k) {
  if (x(k, 2) != x(j, 2)) return x(k, 2) > x(j, 2);
  if (x(k, 1) != x(j, 1)) return x(k, 1) > x(j, 1);
  return x(k, 0) > x(j, 0);
}

/// Full torsion energy/force for quad (i,j,k,l). Forces atomic.
template <class XView, class FView>
inline void torsion_term(const ReaxParams& p, const XView& x, const FView& f,
                         std::size_t i, std::size_t j, std::size_t k,
                         std::size_t l, bool eflag, EV& ev) {
  double b1[3], b2[3], b3[3];
  for (int d = 0; d < 3; ++d) {
    b1[d] = x(j, std::size_t(d)) - x(i, std::size_t(d));
    b2[d] = x(k, std::size_t(d)) - x(j, std::size_t(d));
    b3[d] = x(l, std::size_t(d)) - x(k, std::size_t(d));
  }
  const double r1 = std::sqrt(b1[0] * b1[0] + b1[1] * b1[1] + b1[2] * b1[2]);
  const double r2 = std::sqrt(b2[0] * b2[0] + b2[1] * b2[1] + b2[2] * b2[2]);
  const double r3 = std::sqrt(b3[0] * b3[0] + b3[1] * b3[1] + b3[2] * b3[2]);

  const double bo1 = bond_order(p, r1);
  const double bo2 = bond_order(p, r2);
  const double bo3 = bond_order(p, r3);

  double A[3], B[3];
  cross(b1, b2, A);
  cross(b2, b3, B);
  const double na = std::sqrt(A[0] * A[0] + A[1] * A[1] + A[2] * A[2]);
  const double nb = std::sqrt(B[0] * B[0] + B[1] * B[1] + B[2] * B[2]);
  if (na < 1e-10 || nb < 1e-10) return;  // collinear: torsion undefined

  const double inv_ab = 1.0 / (na * nb);
  const double cosphi =
      (A[0] * B[0] + A[1] * B[1] + A[2] * B[2]) * inv_ab;

  // Threshold-shifted product: the torsion switches on continuously where
  // the quad enters the list (prod == bo_cut_tors).
  const double prod = bo1 * bo2 * bo3;
  const double pref = p.k_tors * (prod - p.bo_cut_tors);
  const double g = 1.0 + cosphi;

  // dcos/dA and dcos/dB.
  double u[3], v[3];
  for (int d = 0; d < 3; ++d) {
    u[d] = B[d] * inv_ab - cosphi * A[d] / (na * na);
    v[d] = A[d] * inv_ab - cosphi * B[d] / (nb * nb);
  }
  // Bond-vector gradients of cos phi (triple-product identities).
  double db1[3], db2[3], db3[3], tmp1[3], tmp2[3];
  cross(b2, u, db1);
  cross(u, b1, tmp1);
  cross(b3, v, tmp2);
  for (int d = 0; d < 3; ++d) db2[d] = tmp1[d] + tmp2[d];
  cross(v, b2, db3);

  // dE/dx for the four sites: chain rule through cos phi and the three BO.
  const double dbo1 = dbond_order(p, r1) / r1;  // times b1 gives dBO1/d b1
  const double dbo2 = dbond_order(p, r2) / r2;
  const double dbo3 = dbond_order(p, r3) / r3;
  const double c1 = p.k_tors * bo2 * bo3 * g * dbo1;
  const double c2 = p.k_tors * bo1 * bo3 * g * dbo2;
  const double c3 = p.k_tors * bo1 * bo2 * g * dbo3;

  double Fi[3], Fj[3], Fk[3], Fl[3];
  for (int d = 0; d < 3; ++d) {
    const double dEdb1 = c1 * b1[d] + pref * db1[d];
    const double dEdb2 = c2 * b2[d] + pref * db2[d];
    const double dEdb3 = c3 * b3[d] + pref * db3[d];
    Fi[d] = dEdb1;                 // = -dE/dxi
    Fj[d] = -dEdb1 + dEdb2;        // = -dE/dxj
    Fk[d] = -dEdb2 + dEdb3;
    Fl[d] = -dEdb3;
  }
  for (std::size_t d = 0; d < 3; ++d) {
    kk::atomic_add(&f(i, d), Fi[d]);
    kk::atomic_add(&f(j, d), Fj[d]);
    kk::atomic_add(&f(k, d), Fk[d]);
    kk::atomic_add(&f(l, d), Fl[d]);
  }
  if (eflag) {
    ev.evdwl += pref * g;
    // Site virial relative to j (forces sum to zero).
    double ri[3], rk[3], rl[3];
    for (int d = 0; d < 3; ++d) {
      ri[d] = -b1[d];
      rk[d] = b2[d];
      rl[d] = b2[d] + b3[d];
    }
    ev.v[0] += ri[0] * Fi[0] + rk[0] * Fk[0] + rl[0] * Fl[0];
    ev.v[1] += ri[1] * Fi[1] + rk[1] * Fk[1] + rl[1] * Fl[1];
    ev.v[2] += ri[2] * Fi[2] + rk[2] * Fk[2] + rl[2] * Fl[2];
    ev.v[3] += ri[0] * Fi[1] + rk[0] * Fk[1] + rl[0] * Fl[1];
    ev.v[4] += ri[0] * Fi[2] + rk[0] * Fk[2] + rl[0] * Fl[2];
    ev.v[5] += ri[1] * Fi[2] + rk[1] * Fk[2] + rl[1] * Fl[2];
  }
}

/// Shared quad enumeration: calls fn(i, j, k, l) for every surviving quad
/// with owned center bond starting at owned atom j; counts candidates.
template <class XView, class BondsT, class Fn>
inline void for_quads_of(const ReaxParams& p, const XView& x, const BondsT& b,
                         std::size_t j, bigint* candidates, const Fn& fn) {
  const int nj = b.nbonds(j);
  for (int s_jk = 0; s_jk < nj; ++s_jk) {
    const std::size_t k = std::size_t(b.j(j, std::size_t(s_jk)));
    if (!owns_center_bond(x, j, k)) continue;
    const double bo_jk = b.bo(j, std::size_t(s_jk));
    const int nk = b.nbonds(k);
    for (int s_ji = 0; s_ji < nj; ++s_ji) {
      const std::size_t i = std::size_t(b.j(j, std::size_t(s_ji)));
      if (i == k) continue;
      const double bo_ij = b.bo(j, std::size_t(s_ji));
      for (int s_kl = 0; s_kl < nk; ++s_kl) {
        const std::size_t l = std::size_t(b.j(k, std::size_t(s_kl)));
        if (l == j || l == i) continue;
        if (candidates) ++*candidates;
        const double bo_kl = b.bo(k, std::size_t(s_kl));
        if (bo_ij * bo_jk * bo_kl <= p.bo_cut_tors) continue;
        fn(i, j, k, l);
      }
    }
  }
}

}  // namespace

template <class Space>
void build_quads(const ReaxParams& p, Atom& atom, const BondList<Space>& bonds,
                 QuadList<Space>& out) {
  require(bonds.natom >= atom.nall(),
          "build_quads: bond list must include ghost rows");
  atom.sync<Space>(X_MASK);
  auto x = atom.k_x.view<Space>();
  const localint nlocal = atom.nlocal;
  const ReaxParams params = p;
  const BondList<Space> b = bonds;

  // Kernel 1: per-atom quad counts (+ candidate census for the divergence
  // statistics the paper quotes).
  kk::View1D<bigint, Space> counts("reax::quad_counts",
                                   std::size_t(std::max<localint>(nlocal, 1)));
  bigint candidates = 0;
  kk::parallel_reduce(
      "ReaxFF::QuadCount", kk::RangePolicy<Space>(0, std::size_t(nlocal)),
      [=](std::size_t j, bigint& cand) {
        bigint c = 0;
        bigint my_cand = 0;
        for_quads_of(params, x, b, j, &my_cand,
                     [&](std::size_t, std::size_t, std::size_t, std::size_t) {
                       ++c;
                     });
        counts(j) = c;
        cand += my_cand;
      },
      candidates);
  out.candidates = candidates;

  // Exclusive scan -> contiguous per-atom slots (bigint offsets, App. B).
  kk::View1D<bigint, Space> offsets("reax::quad_offsets",
                                    std::size_t(std::max<localint>(nlocal, 1)));
  bigint total = 0;
  kk::parallel_scan("ReaxFF::QuadScan",
                    kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                    [=](std::size_t j, bigint& update, bool final) {
                      if (final) offsets(j) = update;
                      update += counts(j);
                    },
                    total);
  out.count = total;
  out.quads = kk::View1D<int4, Space>("reax::quads",
                                      std::size_t(std::max<bigint>(total, 1)));
  auto quads = out.quads;

  // Kernel 2: fill. All quads of atom j are contiguous (promotes reuse of
  // i/j/k/l data in the convergent compute kernel, §4.2.1).
  kk::parallel_for("ReaxFF::QuadFill",
                   kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                   [=](std::size_t j) {
                     bigint w = offsets(j);
                     for_quads_of(params, x, b, j, nullptr,
                                  [&](std::size_t i, std::size_t jj,
                                      std::size_t k, std::size_t l) {
                                    quads(std::size_t(w++)) =
                                        int4{int(i), int(jj), int(k), int(l)};
                                  });
                   });
}

template <class Space>
EV compute_torsions_preprocessed(const ReaxParams& p, Atom& atom,
                                 const QuadList<Space>& quads, bool eflag) {
  atom.sync<Space>(X_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  const ReaxParams params = p;
  auto q = quads.quads;

  EV total;
  kk::parallel_reduce(
      "ReaxFF::TorsionPreprocessed",
      kk::RangePolicy<Space>(0, std::size_t(quads.count)),
      [=](std::size_t t, EV& ev) {
        const int4 e = q(t);
        torsion_term(params, x, f, std::size_t(e.i), std::size_t(e.j),
                     std::size_t(e.k), std::size_t(e.l), eflag, ev);
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

template <class Space>
EV compute_torsions_direct(const ReaxParams& p, Atom& atom,
                           const BondList<Space>& bonds, bool eflag) {
  atom.sync<Space>(X_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  const localint nlocal = atom.nlocal;
  const ReaxParams params = p;
  const BondList<Space> b = bonds;

  EV total;
  kk::parallel_reduce(
      "ReaxFF::TorsionDirect", kk::RangePolicy<Space>(0, std::size_t(nlocal)),
      [=](std::size_t j, EV& ev) {
        for_quads_of(params, x, b, j, nullptr,
                     [&](std::size_t i, std::size_t jj, std::size_t k,
                         std::size_t l) {
                       torsion_term(params, x, f, i, jj, k, l, eflag, ev);
                     });
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

#define INSTANTIATE(S)                                                       \
  template void build_quads<S>(const ReaxParams&, Atom&, const BondList<S>&, \
                               QuadList<S>&);                                \
  template EV compute_torsions_preprocessed<S>(const ReaxParams&, Atom&,    \
                                               const QuadList<S>&, bool);   \
  template EV compute_torsions_direct<S>(const ReaxParams&, Atom&,          \
                                         const BondList<S>&, bool);
INSTANTIATE(kk::Host)
INSTANTIATE(kk::Device)
#undef INSTANTIATE

}  // namespace mlk::reaxff
