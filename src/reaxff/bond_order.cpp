#include "reaxff/bond_order.hpp"

#include <algorithm>
#include <cmath>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk::reaxff {

template <class Space>
bigint BondList<Space>::total_bonds() const {
  bigint total = 0;
  for (localint i = 0; i < nlocal; ++i) total += nbonds(std::size_t(i));
  return total;
}

template <class Space>
void build_bond_list(const ReaxParams& p, Atom& atom, const NeighborList& list,
                     BondList<Space>& bonds) {
  require(list.style == NeighStyle::Full,
          "reaxff: bond list needs a full neighbor list");
  atom.sync<Space>(X_MASK);
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();

  // Rows for owned atoms plus ghosts (torsions walk bonds of bonded ghosts).
  const localint natom = list.inum + list.gnum;
  bonds.natom = natom;
  bonds.nlocal = list.inum;
  const double rc = p.rcut_bond;
  const double rcsq = rc * rc;
  const ReaxParams params = p;

  // Phase 1 (divergent, cheap): count surviving bonds per atom.
  kk::View1D<int, Space> counts("reax::bond_counts",
                                std::size_t(std::max<localint>(natom, 1)));
  kk::parallel_for("ReaxFF::BondCount",
                   kk::RangePolicy<Space>(0, std::size_t(natom)),
                   [=](std::size_t i) {
                     int c = 0;
                     const int jnum = numneigh(i);
                     for (int jj = 0; jj < jnum; ++jj) {
                       const int j = neigh(i, std::size_t(jj));
                       const double dx = x(std::size_t(j), 0) - x(i, 0);
                       const double dy = x(std::size_t(j), 1) - x(i, 1);
                       const double dz = x(std::size_t(j), 2) - x(i, 2);
                       const double rsq = dx * dx + dy * dy + dz * dz;
                       if (rsq >= rcsq || rsq < 1e-20) continue;
                       if (bond_order(params, std::sqrt(rsq)) > params.bo_cut)
                         ++c;
                     }
                     counts(i) = c;
                   });
  int maxb = 0;
  kk::parallel_reduce_impl(
      "ReaxFF::BondMax", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i, int& m) {
        if (counts(i) > m) m = counts(i);
      },
      kk::Max<int>(maxb));
  bonds.maxbonds = std::max(maxb, 1);

  const std::size_t rows = std::size_t(std::max<localint>(natom, 1));
  bonds.j = kk::View2D<int, Space>("reax::bond_j", rows,
                                   std::size_t(bonds.maxbonds));
  bonds.bo = kk::View2D<double, Space>("reax::bond_bo", rows,
                                       std::size_t(bonds.maxbonds));
  bonds.dbo = kk::View2D<double, Space>("reax::bond_dbo", rows,
                                        std::size_t(bonds.maxbonds));
  bonds.dr = kk::View3D<double, Space>("reax::bond_dr", rows,
                                       std::size_t(bonds.maxbonds), 4);
  bonds.nbonds = kk::View1D<int, Space>("reax::nbonds", rows);

  auto bj = bonds.j;
  auto bbo = bonds.bo;
  auto bdbo = bonds.dbo;
  auto bdr = bonds.dr;
  auto bn = bonds.nbonds;

  // Phase 2: fill the compressed table (consumers are convergent).
  kk::parallel_for(
      "ReaxFF::BondFill", kk::RangePolicy<Space>(0, std::size_t(natom)),
      [=](std::size_t i) {
        int c = 0;
        const int jnum = numneigh(i);
        for (int jj = 0; jj < jnum; ++jj) {
          const int j = neigh(i, std::size_t(jj));
          const double dx = x(std::size_t(j), 0) - x(i, 0);
          const double dy = x(std::size_t(j), 1) - x(i, 1);
          const double dz = x(std::size_t(j), 2) - x(i, 2);
          const double rsq = dx * dx + dy * dy + dz * dz;
          if (rsq >= rcsq || rsq < 1e-20) continue;
          const double r = std::sqrt(rsq);
          const double bo = bond_order(params, r);
          if (bo <= params.bo_cut) continue;
          bj(i, std::size_t(c)) = j;
          bbo(i, std::size_t(c)) = bo;
          bdbo(i, std::size_t(c)) = dbond_order(params, r);
          bdr(i, std::size_t(c), 0) = dx;
          bdr(i, std::size_t(c), 1) = dy;
          bdr(i, std::size_t(c), 2) = dz;
          bdr(i, std::size_t(c), 3) = r;
          ++c;
        }
        bn(i) = c;
      });
}

template struct BondList<kk::Host>;
template struct BondList<kk::Device>;
template void build_bond_list<kk::Host>(const ReaxParams&, Atom&,
                                        const NeighborList&,
                                        BondList<kk::Host>&);
template void build_bond_list<kk::Device>(const ReaxParams&, Atom&,
                                          const NeighborList&,
                                          BondList<kk::Device>&);

}  // namespace mlk::reaxff
