#include "reaxff/angle.hpp"

#include <cmath>

#include "kokkos/core.hpp"
#include "util/error.hpp"

namespace mlk::reaxff {

namespace {

/// Energy + forces of one valence angle (center c, bond slots a and b).
/// Forces are accumulated atomically; energy/virial into ev.
template <class BondsT, class FView>
inline void angle_term(const ReaxParams& p, const BondsT& bonds,
                       const FView& f, std::size_t c, int a, int b, bool eflag,
                       EV& ev) {
  const double rax = bonds.dr(c, std::size_t(a), 0);
  const double ray = bonds.dr(c, std::size_t(a), 1);
  const double raz = bonds.dr(c, std::size_t(a), 2);
  const double la = bonds.dr(c, std::size_t(a), 3);
  const double rbx = bonds.dr(c, std::size_t(b), 0);
  const double rby = bonds.dr(c, std::size_t(b), 1);
  const double rbz = bonds.dr(c, std::size_t(b), 2);
  const double lb = bonds.dr(c, std::size_t(b), 3);

  // Threshold-shifted bond-order factors: (BO - bo_cut) vanishes exactly
  // where the bond leaves the list, keeping the potential continuous as
  // bonds form and break.
  const double boa = bonds.bo(c, std::size_t(a)) - p.bo_cut;
  const double bob = bonds.bo(c, std::size_t(b)) - p.bo_cut;
  const double dboa = bonds.dbo(c, std::size_t(a));
  const double dbob = bonds.dbo(c, std::size_t(b));

  const double inv_ab = 1.0 / (la * lb);
  const double cosq = (rax * rbx + ray * rby + raz * rbz) * inv_ab;
  const double c0 = std::cos(p.theta0);
  const double dc = cosq - c0;
  const double g = dc * dc;
  const double gp = 2.0 * dc;

  // dE/dra and dE/drb (vectors).
  const double pre_boa = p.k_th * dboa * bob * g / la;  // along ra
  const double pre_bob = p.k_th * boa * dbob * g / lb;  // along rb
  const double pre_c = p.k_th * boa * bob * gp;

  double dEdra[3], dEdrb[3];
  const double ra[3] = {rax, ray, raz}, rb[3] = {rbx, rby, rbz};
  for (int d = 0; d < 3; ++d) {
    const double dcos_da = rb[d] * inv_ab - cosq * ra[d] / (la * la);
    const double dcos_db = ra[d] * inv_ab - cosq * rb[d] / (lb * lb);
    dEdra[d] = pre_boa * ra[d] + pre_c * dcos_da;
    dEdrb[d] = pre_bob * rb[d] + pre_c * dcos_db;
  }

  const std::size_t j = std::size_t(bonds.j(c, std::size_t(a)));
  const std::size_t k = std::size_t(bonds.j(c, std::size_t(b)));
  for (std::size_t d = 0; d < 3; ++d) {
    kk::atomic_add(&f(j, d), -dEdra[d]);
    kk::atomic_add(&f(k, d), -dEdrb[d]);
    kk::atomic_add(&f(c, d), dEdra[d] + dEdrb[d]);
  }
  if (eflag) {
    ev.evdwl += p.k_th * boa * bob * g;
    // Site virial: W = ra (x) F_j + rb (x) F_k.
    ev.v[0] += ra[0] * -dEdra[0] + rb[0] * -dEdrb[0];
    ev.v[1] += ra[1] * -dEdra[1] + rb[1] * -dEdrb[1];
    ev.v[2] += ra[2] * -dEdra[2] + rb[2] * -dEdrb[2];
    ev.v[3] += ra[0] * -dEdra[1] + rb[0] * -dEdrb[1];
    ev.v[4] += ra[0] * -dEdra[2] + rb[0] * -dEdrb[2];
    ev.v[5] += ra[1] * -dEdra[2] + rb[1] * -dEdrb[2];
  }
}

}  // namespace

template <class Space>
void build_triples(const BondList<Space>& bonds, localint nlocal,
                   TripleList<Space>& out) {
  auto nb = bonds.nbonds;
  // Count pass (divergent, cheap).
  kk::View1D<bigint, Space> counts("reax::triple_counts",
                                   std::size_t(std::max<localint>(nlocal, 1)));
  kk::parallel_for("ReaxFF::TripleCount",
                   kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                   [=](std::size_t c) {
                     const int n = nb(c);
                     counts(c) = bigint(n) * (n - 1) / 2;
                   });
  // Offsets via exclusive scan (bigint: can exceed 2^31 at scale, App. B).
  kk::View1D<bigint, Space> offsets("reax::triple_offsets",
                                    std::size_t(std::max<localint>(nlocal, 1)));
  bigint total = 0;
  kk::parallel_scan("ReaxFF::TripleScan",
                    kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                    [=](std::size_t c, bigint& update, bool final) {
                      if (final) offsets(c) = update;
                      update += counts(c);
                    },
                    total);
  out.count = total;
  out.triples = kk::View1D<int3, Space>("reax::triples",
                                        std::size_t(std::max<bigint>(total, 1)));
  auto triples = out.triples;
  // Fill pass: triples of an atom are contiguous (cache reuse downstream).
  kk::parallel_for("ReaxFF::TripleFill",
                   kk::RangePolicy<Space>(0, std::size_t(nlocal)),
                   [=](std::size_t c) {
                     bigint w = offsets(c);
                     const int n = nb(c);
                     for (int a = 0; a < n; ++a)
                       for (int b = a + 1; b < n; ++b)
                         triples(std::size_t(w++)) = int3{int(c), a, b};
                   });
}

template <class Space>
EV compute_angles_direct(const ReaxParams& p, Atom& atom,
                         const BondList<Space>& bonds, bool eflag) {
  atom.sync<Space>(F_MASK);
  auto f = atom.k_f.view<Space>();
  const localint nlocal = atom.nlocal;
  const ReaxParams params = p;
  const BondList<Space> b = bonds;

  EV total;
  kk::parallel_reduce(
      "ReaxFF::AnglesDirect", kk::RangePolicy<Space>(0, std::size_t(nlocal)),
      [=](std::size_t c, EV& ev) {
        const int n = b.nbonds(c);
        // Divergent nested loop: most (a, b) slots idle past nbonds.
        for (int a = 0; a < b.maxbonds; ++a)
          for (int bb = a + 1; bb < b.maxbonds; ++bb) {
            if (a >= n || bb >= n) continue;  // the divergence being measured
            angle_term(params, b, f, c, a, bb, eflag, ev);
          }
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

template <class Space>
EV compute_angles_preprocessed(const ReaxParams& p, Atom& atom,
                               const BondList<Space>& bonds,
                               const TripleList<Space>& triples, bool eflag) {
  atom.sync<Space>(F_MASK);
  auto f = atom.k_f.view<Space>();
  const ReaxParams params = p;
  const BondList<Space> b = bonds;
  auto trip = triples.triples;

  EV total;
  kk::parallel_reduce(
      "ReaxFF::AnglesPreprocessed",
      kk::RangePolicy<Space>(0, std::size_t(triples.count)),
      [=](std::size_t t, EV& ev) {
        const int3 e = trip(t);
        angle_term(params, b, f, std::size_t(e.i), e.j, e.k, eflag, ev);
      },
      total);
  atom.modified<Space>(F_MASK);
  return total;
}

#define INSTANTIATE(S)                                                    \
  template void build_triples<S>(const BondList<S>&, localint,           \
                                 TripleList<S>&);                        \
  template EV compute_angles_direct<S>(const ReaxParams&, Atom&,         \
                                       const BondList<S>&, bool);        \
  template EV compute_angles_preprocessed<S>(const ReaxParams&, Atom&,   \
                                             const BondList<S>&,         \
                                             const TripleList<S>&, bool);
INSTANTIATE(kk::Host)
INSTANTIATE(kk::Device)
#undef INSTANTIATE

}  // namespace mlk::reaxff
