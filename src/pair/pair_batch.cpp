#include "pair/pair_batch.hpp"

#include <algorithm>
#include <memory>

#include "kokkos/core.hpp"

namespace mlk {

std::size_t PairBatch::total_rows() const {
  std::size_t n = 0;
  for (const Slice& s : slices_) n += s.rows;
  return n;
}

void PairBatch::launch() {
  if (slices_.empty()) return;

  // Cumulative row offsets: global row r belongs to the slice whose range
  // [offsets[s], offsets[s+1]) contains it. Slices and offsets move into
  // shared ownership so the per-thread functor copies stay two pointers.
  auto slices = std::make_shared<std::vector<Slice>>(std::move(slices_));
  slices_.clear();
  auto offsets = std::make_shared<std::vector<std::size_t>>();
  offsets->reserve(slices->size() + 1);
  offsets->push_back(0);
  for (const Slice& s : *slices) offsets->push_back(offsets->back() + s.rows);
  const std::size_t total = offsets->back();
  if (total == 0) {
    for (Slice& s : *slices)
      if (s.epilogue) s.epilogue();
    return;
  }

  const std::string name =
      "PairBatch::force[" + std::to_string(slices->size()) + "]";
  kk::parallel_for(
      name, kk::RangePolicy<kk::Device>(0, total), [slices, offsets](std::size_t r) {
        const auto& off = *offsets;
        const std::size_t s =
            std::size_t(std::upper_bound(off.begin(), off.end(), r) -
                        off.begin()) -
            1;
        (*slices)[s].row(r - off[s]);
      });

  for (Slice& s : *slices)
    if (s.epilogue) s.epilogue();
}

}  // namespace mlk
