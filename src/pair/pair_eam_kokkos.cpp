#include "pair/pair_eam_kokkos.hpp"

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "kokkos/core.hpp"
#include "pair/pair_compute_kokkos.hpp"
#include "util/error.hpp"

namespace mlk {

template <class Space>
PairEAMKokkos<Space>::PairEAMKokkos() {
  style_name = "eam/kk";
  execution_space =
      Space::is_device ? ExecSpaceKind::Device : ExecSpaceKind::Host;
}

template <class Space>
void PairEAMKokkos<Space>::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  auto& list = sim.neighbor.list;
  require(list.style == NeighStyle::Full, "eam/kk requires a full list");

  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  list.k_neighbors.sync<Space>();
  list.k_numneigh.sync<Space>();
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto neigh = list.k_neighbors.view<Space>();
  auto numneigh = list.k_numneigh.view<Space>();
  const localint nlocal = atom.nlocal;
  const double cutsq = cut_ * cut_;
  const double A = A_, B = B_;

  ensure_peratom(atom.nall());
  auto rho = k_rho_.view<Space>();
  auto fp = k_fp_.view<Space>();

  // Kernel 1: per-atom density + embedding energy (reduction).
  double e_embed = 0.0;
  kk::parallel_reduce(
      std::string("PairEAMKokkos::rho<") + Space::name() + ">",
      kk::RangePolicy<Space>(0, std::size_t(nlocal)),
      [=](std::size_t i, double& esum) {
        double acc = 0.0;
        const int jnum = numneigh(i);
        for (int jj = 0; jj < jnum; ++jj) {
          const int j = neigh(i, std::size_t(jj));
          const double dx = x(i, 0) - x(std::size_t(j), 0);
          const double dy = x(i, 1) - x(std::size_t(j), 1);
          const double dz = x(i, 2) - x(std::size_t(j), 2);
          acc += rho_a(dx * dx + dy * dy + dz * dz, cutsq);
        }
        rho(i) = acc;
        fp(i) = dembed(acc, A);
        esum += embed(acc, A);
      },
      e_embed);
  if (eflag) eng_vdwl += e_embed;
  k_rho_.modify<Space>();
  k_fp_.modify<Space>();

  // Ghost fp exchange runs on the host: DualView sync handles the transfer
  // in each direction only when actually stale.
  sim.comm.forward_scalar(k_fp_);
  k_fp_.sync<Space>();
  fp = k_fp_.view<Space>();

  // Kernel 2: forces (+ pair energy/virial reduction).
  EV total;
  kk::parallel_reduce(
      std::string("PairEAMKokkos::force<") + Space::name() + ">",
      kk::RangePolicy<Space>(0, std::size_t(nlocal)),
      [=](std::size_t i, EV& ev) {
        double fxi = 0.0, fyi = 0.0, fzi = 0.0;
        const int jnum = numneigh(i);
        for (int jj = 0; jj < jnum; ++jj) {
          const int j = neigh(i, std::size_t(jj));
          const double dx = x(i, 0) - x(std::size_t(j), 0);
          const double dy = x(i, 1) - x(std::size_t(j), 1);
          const double dz = x(i, 2) - x(std::size_t(j), 2);
          const double rsq = dx * dx + dy * dy + dz * dz;
          if (rsq >= cutsq) continue;
          const double psip =
              (fp(i) + fp(std::size_t(j))) * drho_a(rsq, cutsq) +
              dphi(rsq, cutsq, B);
          const double fpair = -psip;
          fxi += dx * fpair;
          fyi += dy * fpair;
          fzi += dz * fpair;
          ev.evdwl += 0.5 * phi(rsq, cutsq, B);
          ev.v[0] += 0.5 * dx * dx * fpair;
          ev.v[1] += 0.5 * dy * dy * fpair;
          ev.v[2] += 0.5 * dz * dz * fpair;
          ev.v[3] += 0.5 * dx * dy * fpair;
          ev.v[4] += 0.5 * dx * dz * fpair;
          ev.v[5] += 0.5 * dy * dz * fpair;
        }
        f(i, 0) += fxi;
        f(i, 1) += fyi;
        f(i, 2) += fzi;
      },
      total);
  if (eflag) {
    eng_vdwl += total.evdwl;
    for (int k = 0; k < 6; ++k) virial[k] = total.v[k];
  }
  atom.modified<Space>(F_MASK);
}

template class PairEAMKokkos<kk::Host>;
template class PairEAMKokkos<kk::Device>;

void register_pair_eam_kokkos() {
  StyleRegistry::instance().add_pair_kokkos(
      "eam", [](ExecSpaceKind space) -> std::unique_ptr<Pair> {
        if (space == ExecSpaceKind::Host)
          return std::make_unique<PairEAMKokkos<kk::Host>>();
        return std::make_unique<PairEAMKokkos<kk::Device>>();
      });
}

}  // namespace mlk
