#include "pair/pair_eam.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

PairEAM::PairEAM() {
  style_name = "eam";
  datamask_read = X_MASK | TYPE_MASK;
  datamask_modify = F_MASK;
}

double PairEAM::rho_a(double rsq, double cutsq) {
  const double d = cutsq - rsq;
  return d > 0.0 ? d * d / (cutsq * cutsq) : 0.0;
}

double PairEAM::drho_a(double rsq, double cutsq) {
  // d(rho_a)/dr / r = -4 (cutsq - rsq) / cutsq^2
  const double d = cutsq - rsq;
  return d > 0.0 ? -4.0 * d / (cutsq * cutsq) : 0.0;
}

double PairEAM::phi(double rsq, double cutsq, double B) {
  const double d = cutsq - rsq;
  return d > 0.0 ? B * d * d / (cutsq * cutsq) : 0.0;
}

double PairEAM::dphi(double rsq, double cutsq, double B) {
  const double d = cutsq - rsq;
  return d > 0.0 ? -4.0 * B * d / (cutsq * cutsq) : 0.0;
}

double PairEAM::embed(double rho, double A) {
  return rho > 1e-30 ? -A * std::sqrt(rho) : 0.0;
}

double PairEAM::dembed(double rho, double A) {
  return rho > 1e-30 ? -0.5 * A / std::sqrt(rho) : 0.0;
}

void PairEAM::settings(const std::vector<std::string>& args) {
  if (!args.empty()) cut_ = to_double(args[0]);
  require(cut_ > 0.0, "eam: cutoff must be positive");
}

void PairEAM::coeff(const std::vector<std::string>& args) {
  require(args.size() >= 4 && args[0] == "*" && args[1] == "*",
          "eam coeff: * * <A> <B> [cut]");
  A_ = to_double(args[2]);
  B_ = to_double(args[3]);
  if (args.size() > 4) cut_ = to_double(args[4]);
  require(A_ > 0.0, "eam: embedding strength A must be positive");
}

void PairEAM::init(Simulation&) {}

void PairEAM::ensure_peratom(localint nall) {
  if (!k_rho_.is_allocated() || k_rho_.extent(0) < std::size_t(nall)) {
    k_rho_.realloc(std::size_t(nall) + 256);
    k_fp_.realloc(std::size_t(nall) + 256);
  }
}

void PairEAM::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK | TYPE_MASK | F_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();
  require(list.style == NeighStyle::Full, "eam requires a full neighbor list");

  const auto x = atom.k_x.h_view;
  auto f = atom.k_f.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const localint nlocal = atom.nlocal;
  const double cutsq = cut_ * cut_;

  ensure_peratom(atom.nall());
  auto rho = k_rho_.h_view;
  auto fp = k_fp_.h_view;

  // Pass 1: densities of owned atoms.
  for (localint i = 0; i < nlocal; ++i) {
    double acc = 0.0;
    for (int jj = 0; jj < numneigh(std::size_t(i)); ++jj) {
      const int j = neigh(std::size_t(i), std::size_t(jj));
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      acc += rho_a(dx * dx + dy * dy + dz * dz, cutsq);
    }
    rho(std::size_t(i)) = acc;
    fp(std::size_t(i)) = dembed(acc, A_);
    if (eflag) eng_vdwl += embed(acc, A_);
  }
  k_fp_.modify<kk::Host>();

  // Mid-evaluation communication: ghosts need their owner's F'(rho)
  // (the "additional communication" of paper Fig. 1).
  sim.comm.forward_scalar(k_fp_);
  k_fp_.sync<kk::Host>();

  // Pass 2: forces. Full list: each directed pair handled once per owner.
  for (localint i = 0; i < nlocal; ++i) {
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    for (int jj = 0; jj < numneigh(std::size_t(i)); ++jj) {
      const int j = neigh(std::size_t(i), std::size_t(jj));
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      const double rsq = dx * dx + dy * dy + dz * dz;
      if (rsq >= cutsq) continue;
      // d/dr [F_i(rho_i) + F_j(rho_j) + phi] projected on r, divided by r.
      const double psip = (fp(std::size_t(i)) + fp(std::size_t(j))) *
                              drho_a(rsq, cutsq) +
                          dphi(rsq, cutsq, B_);
      const double fpair = -psip;
      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (eflag) {
        eng_vdwl += 0.5 * phi(rsq, cutsq, B_);
        virial[0] += 0.5 * dx * dx * fpair;
        virial[1] += 0.5 * dy * dy * fpair;
        virial[2] += 0.5 * dz * dz * fpair;
        virial[3] += 0.5 * dx * dy * fpair;
        virial[4] += 0.5 * dx * dz * fpair;
        virial[5] += 0.5 * dy * dz * fpair;
      }
    }
    f(std::size_t(i), 0) += fxi;
    f(std::size_t(i), 1) += fyi;
    f(std::size_t(i), 2) += fzi;
  }
  atom.modified<kk::Host>(F_MASK);
}

void register_pair_eam() {
  StyleRegistry::instance().add_pair(
      "eam", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
        return std::make_unique<PairEAM>();
      });
}

}  // namespace mlk
