// pair_style lj/cut/kk — Kokkos Lennard-Jones, dual-instantiated for Host
// and Device execution spaces (§3.3). Inherits coefficient handling from the
// base PairLJCut (paper Fig. 1's PairEAM / PairEAMKokkos relationship) and
// replaces the compute kernels with the generic pair_kokkos implementation.
//
// Exposes every §4.1 knob for the Fig. 2 experiments:
//   * full vs half neighbor lists, newton on/off,
//   * atomics vs duplication vs serial force deconflicting,
//   * atom-parallel vs hierarchical (neighbors-of-atom) parallelism.
#pragma once

#include "pair/pair_compute_kokkos.hpp"
#include "pair/pair_lj_cut.hpp"

namespace mlk {

/// Device-copyable coefficient functor for LJ.
struct LJFunctor {
  kk::View<double, 2> d_cutsq, d_lj1, d_lj2, d_lj3, d_lj4;

  double cutsq(int itype, int jtype) const {
    return d_cutsq(std::size_t(itype), std::size_t(jtype));
  }
  double fpair(double rsq, int itype, int jtype) const {
    const double r2inv = 1.0 / rsq;
    const double r6inv = r2inv * r2inv * r2inv;
    return r6inv *
           (d_lj1(std::size_t(itype), std::size_t(jtype)) * r6inv -
            d_lj2(std::size_t(itype), std::size_t(jtype))) *
           r2inv;
  }
  double evdwl(double rsq, int itype, int jtype) const {
    const double r2inv = 1.0 / rsq;
    const double r6inv = r2inv * r2inv * r2inv;
    return r6inv * (d_lj3(std::size_t(itype), std::size_t(jtype)) * r6inv -
                    d_lj4(std::size_t(itype), std::size_t(jtype)));
  }
  /// Fused force+energy evaluation: shares the r^-2/r^-6 intermediates
  /// between the two results instead of recomputing them per tally. The
  /// returned force magnitude is the same expression as fpair(), so fused
  /// and unfused paths produce bitwise-identical forces.
  double fpair_ev(double rsq, int itype, int jtype, double& evdwl_out) const {
    const double r2inv = 1.0 / rsq;
    const double r6inv = r2inv * r2inv * r2inv;
    evdwl_out = r6inv * (d_lj3(std::size_t(itype), std::size_t(jtype)) * r6inv -
                         d_lj4(std::size_t(itype), std::size_t(jtype)));
    return r6inv *
           (d_lj1(std::size_t(itype), std::size_t(jtype)) * r6inv -
            d_lj2(std::size_t(itype), std::size_t(jtype))) *
           r2inv;
  }

  // Pack-native evaluation (docs/VECTORIZATION.md): lane l holds neighbor l
  // of the chunk. Coefficients gather per lane (jtype varies); the r^-2/r^-6
  // algebra is identical op-for-op to the scalar expressions, so the W == 1
  // instantiation is bitwise-equal to fpair()/fpair_ev().
  template <int W>
  kk::simd<double, W> fpair_simd(const kk::simd<double, W>& rsq, int itype,
                                 const int* jtype) const {
    using pd = kk::simd<double, W>;
    const pd r2inv = pd(1.0) / rsq;
    const pd r6inv = r2inv * r2inv * r2inv;
    const pd lj1 = pd::gather([&](int l) {
      return d_lj1(std::size_t(itype), std::size_t(jtype[l]));
    });
    const pd lj2 = pd::gather([&](int l) {
      return d_lj2(std::size_t(itype), std::size_t(jtype[l]));
    });
    return r6inv * (lj1 * r6inv - lj2) * r2inv;
  }
  template <int W>
  kk::simd<double, W> fpair_ev_simd(const kk::simd<double, W>& rsq, int itype,
                                    const int* jtype,
                                    kk::simd<double, W>& evdwl_out) const {
    using pd = kk::simd<double, W>;
    const pd r2inv = pd(1.0) / rsq;
    const pd r6inv = r2inv * r2inv * r2inv;
    const pd lj3 = pd::gather([&](int l) {
      return d_lj3(std::size_t(itype), std::size_t(jtype[l]));
    });
    const pd lj4 = pd::gather([&](int l) {
      return d_lj4(std::size_t(itype), std::size_t(jtype[l]));
    });
    evdwl_out = r6inv * (lj3 * r6inv - lj4);
    const pd lj1 = pd::gather([&](int l) {
      return d_lj1(std::size_t(itype), std::size_t(jtype[l]));
    });
    const pd lj2 = pd::gather([&](int l) {
      return d_lj2(std::size_t(itype), std::size_t(jtype[l]));
    });
    return r6inv * (lj1 * r6inv - lj2) * r2inv;
  }
};

template <class Space>
class PairLJCutKokkos : public PairLJCut {
 public:
  PairLJCutKokkos();

  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;

  // Comm/compute overlap: interior rows launch asynchronously on a
  // DeviceInstance while the halo exchange runs; boundary rows finish after
  // ghosts land (docs/EXECUTION_MODEL.md).
  bool supports_overlap(const NeighborList& list) const override;
  void compute_interior(Simulation& sim, bool eflag,
                        kk::DeviceInstance& instance) override;
  void compute_boundary(Simulation& sim, bool eflag) override;

  // Cross-job batched dispatch: the server fuses the zero+force work of
  // co-resident LJ jobs into one launch (docs/SERVER.md).
  std::string batch_signature(const Simulation& sim,
                              bool eflag) const override;
  void batch_enlist(Simulation& sim, bool eflag, PairBatch& batch) override;

  NeighStyle neigh_style() const override { return cfg_.neigh; }
  bool newton() const override { return cfg_.newton; }

  /// Experiment knobs (Fig. 2a/2b, ScatterView ablation).
  void set_neighbor_mode(NeighStyle style, bool newton_flag) {
    cfg_.neigh = style;
    cfg_.newton = newton_flag;
  }
  void set_parallelism(PairParallelism p) { cfg_.parallelism = p; }
  void set_scatter_mode(kk::ScatterMode m) { cfg_.scatter = m; }
  void set_vector_length(int v) { cfg_.vector_length = v; }

 private:
  PairComputeConfig cfg_;
  LJFunctor functor_;
  // Interior-pass tallies, written by the async task through a captured
  // pointer; defined once the engine fences the interior instance.
  EV ev_interior_;
};

void register_pair_lj_cut_kokkos();

}  // namespace mlk
