// pair_style lj/cut/coul/cut — Lennard-Jones plus cutoff Coulomb, the
// "electrically charged systems may add the Coulomb potential" variant the
// paper's §4 mentions. Demonstrates a style with two cutoffs and per-atom
// charge access (Q_MASK datamask).
#pragma once

#include "pair/pair_lj_cut.hpp"

namespace mlk {

class PairLJCutCoulCut : public PairLJCut {
 public:
  PairLJCutCoulCut();

  /// settings: [lj cutoff] [coul cutoff]
  void settings(const std::vector<std::string>& args) override;
  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override;

  /// Extends the LJ round-trip with the Coulomb cutoff.
  bool pack_restart(io::BinaryWriter& w) const override {
    PairLJCut::pack_restart(w);
    w.put(cut_coul_);
    w.put(qqr2e);
    return true;
  }
  void unpack_restart(io::BinaryReader& r) override {
    PairLJCut::unpack_restart(r);
    cut_coul_ = r.get<double>();
    qqr2e = r.get<double>();
  }

  /// Coulomb constant in the active unit system (qqr2e). LJ units: 1.
  double qqr2e = 1.0;

 private:
  double cut_coul_ = 2.5;
};

void register_pair_lj_cut_coul_cut();

}  // namespace mlk
