#include "pair/pair_external.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"

namespace mlk {

PairExternal::PairExternal() {
  style_name = "external";
  needs_reverse_comm = true;  // writes ghost forces like SNAP
}

void PairExternal::set_model(ExternalPotential model, double cutoff) {
  require(cutoff > 0.0, "external: cutoff must be positive");
  model_ = std::move(model);
  cutoff_ = cutoff;
}

void PairExternal::init(Simulation&) {
  require(static_cast<bool>(model_),
          "external: no model registered (call set_model)");
}

void PairExternal::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK | TYPE_MASK | F_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();
  require(list.style == NeighStyle::Full, "external requires a full list");

  const auto x = atom.k_x.h_view;
  auto f = atom.k_f.h_view;
  const auto type = atom.k_type.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const double cutsq = cutoff_ * cutoff_;

  std::vector<ExternalNeighbor> nbrs;
  std::vector<int> jidx;
  std::vector<double> fij;
  for (localint i = 0; i < list.inum; ++i) {
    nbrs.clear();
    jidx.clear();
    for (int c = 0; c < numneigh(std::size_t(i)); ++c) {
      const int j = neigh(std::size_t(i), std::size_t(c));
      const double dx = x(std::size_t(j), 0) - x(std::size_t(i), 0);
      const double dy = x(std::size_t(j), 1) - x(std::size_t(i), 1);
      const double dz = x(std::size_t(j), 2) - x(std::size_t(i), 2);
      const double rsq = dx * dx + dy * dy + dz * dz;
      if (rsq >= cutsq || rsq < 1e-20) continue;
      nbrs.push_back({dx, dy, dz, std::sqrt(rsq), type(std::size_t(j))});
      jidx.push_back(j);
    }
    fij.assign(nbrs.size() * 3, 0.0);
    const double ei = model_(type(std::size_t(i)), nbrs, fij.data());
    if (eflag) eng_vdwl += ei;

    // fij[k] = dE_i/d(r_j): reaction on i, action on j.
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::size_t j = std::size_t(jidx[k]);
      for (int d = 0; d < 3; ++d) {
        f(std::size_t(i), std::size_t(d)) += fij[3 * k + std::size_t(d)];
        f(j, std::size_t(d)) -= fij[3 * k + std::size_t(d)];
      }
      if (eflag) {
        const double* g = &fij[3 * k];
        virial[0] -= nbrs[k].dx * g[0];
        virial[1] -= nbrs[k].dy * g[1];
        virial[2] -= nbrs[k].dz * g[2];
        virial[3] -= nbrs[k].dx * g[1];
        virial[4] -= nbrs[k].dx * g[2];
        virial[5] -= nbrs[k].dy * g[2];
      }
    }
  }
  atom.modified<kk::Host>(F_MASK);
}

void register_pair_external() {
  StyleRegistry::instance().add_pair(
      "external", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
        return std::make_unique<PairExternal>();
      });
}

}  // namespace mlk
