#include "pair/pair_lj_cut_coul_cut.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

PairLJCutCoulCut::PairLJCutCoulCut() {
  style_name = "lj/cut/coul/cut";
  datamask_read = X_MASK | TYPE_MASK | Q_MASK;
}

void PairLJCutCoulCut::settings(const std::vector<std::string>& args) {
  if (!args.empty()) cut_global_ = to_double(args[0]);
  cut_coul_ = args.size() > 1 ? to_double(args[1]) : cut_global_;
  require(cut_global_ > 0.0 && cut_coul_ > 0.0,
          "lj/cut/coul/cut: cutoffs must be positive");
}

double PairLJCutCoulCut::cutoff() const {
  return std::max(max_cut_, cut_coul_);
}

void PairLJCutCoulCut::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(datamask_read | F_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();

  const auto x = atom.k_x.h_view;
  auto f = atom.k_f.h_view;
  const auto type = atom.k_type.h_view;
  const auto q = atom.k_q.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const localint nlocal = atom.nlocal;
  const bool half = list.style == NeighStyle::Half;
  const bool newton = list.newton;
  const double cutsq_coul = cut_coul_ * cut_coul_;

  for (localint i = 0; i < list.inum; ++i) {
    const int itype = type(std::size_t(i));
    const double qi = q(std::size_t(i));
    double fxi = 0, fyi = 0, fzi = 0;
    for (int jj = 0; jj < numneigh(std::size_t(i)); ++jj) {
      const int j = neigh(std::size_t(i), std::size_t(jj));
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      const double rsq = dx * dx + dy * dy + dz * dz;
      const int jtype = type(std::size_t(j));

      double fpair = 0.0, epair = 0.0, ecoul_pair = 0.0;
      if (rsq < cutsq_(std::size_t(itype), std::size_t(jtype))) {
        fpair += pair_force(rsq, lj1_(std::size_t(itype), std::size_t(jtype)),
                            lj2_(std::size_t(itype), std::size_t(jtype)));
        if (eflag)
          epair = pair_energy(rsq, lj3_(std::size_t(itype), std::size_t(jtype)),
                              lj4_(std::size_t(itype), std::size_t(jtype)));
      }
      if (rsq < cutsq_coul) {
        const double r = std::sqrt(rsq);
        const double ec = qqr2e * qi * q(std::size_t(j)) / r;
        fpair += ec / rsq;  // F/r = qq/r^3
        if (eflag) ecoul_pair = ec;
      }
      if (fpair == 0.0 && epair == 0.0 && ecoul_pair == 0.0) continue;

      const double fx = dx * fpair, fy = dy * fpair, fz = dz * fpair;
      fxi += fx;
      fyi += fy;
      fzi += fz;
      if (half) {
        f(std::size_t(j), 0) -= fx;
        f(std::size_t(j), 1) -= fy;
        f(std::size_t(j), 2) -= fz;
      }
      if (eflag) {
        const double factor = half ? ((j < nlocal || newton) ? 1.0 : 0.5) : 0.5;
        eng_vdwl += factor * epair;
        eng_coul += factor * ecoul_pair;
        virial[0] += factor * dx * fx;
        virial[1] += factor * dy * fy;
        virial[2] += factor * dz * fz;
        virial[3] += factor * dx * fy;
        virial[4] += factor * dx * fz;
        virial[5] += factor * dy * fz;
      }
    }
    f(std::size_t(i), 0) += fxi;
    f(std::size_t(i), 1) += fyi;
    f(std::size_t(i), 2) += fzi;
  }
  atom.modified<kk::Host>(F_MASK);
}

void register_pair_lj_cut_coul_cut() {
  StyleRegistry::instance().add_pair(
      "lj/cut/coul/cut", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
        return std::make_unique<PairLJCutCoulCut>();
      });
}

}  // namespace mlk
