#include "pair/pair_lj_cut.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

PairLJCut::PairLJCut() { style_name = "lj/cut"; }

double PairLJCut::pair_force(double rsq, double lj1, double lj2) {
  const double r2inv = 1.0 / rsq;
  const double r6inv = r2inv * r2inv * r2inv;
  return r6inv * (lj1 * r6inv - lj2) * r2inv;
}

double PairLJCut::pair_energy(double rsq, double lj3, double lj4) {
  const double r2inv = 1.0 / rsq;
  const double r6inv = r2inv * r2inv * r2inv;
  return r6inv * (lj3 * r6inv - lj4);
}

void PairLJCut::settings(const std::vector<std::string>& args) {
  if (!args.empty()) cut_global_ = to_double(args[0]);
  require(cut_global_ > 0.0, "lj/cut: cutoff must be positive");
}

void PairLJCut::allocate(int ntypes) {
  if (ntypes_ >= ntypes) return;
  ntypes_ = ntypes;
  const std::size_t n = std::size_t(ntypes) + 1;
  epsilon_ = kk::View<double, 2>("lj::epsilon", n, n);
  sigma_ = kk::View<double, 2>("lj::sigma", n, n);
  cut_ = kk::View<double, 2>("lj::cut", n, n);
  cutsq_ = kk::View<double, 2>("lj::cutsq", n, n);
  lj1_ = kk::View<double, 2>("lj::lj1", n, n);
  lj2_ = kk::View<double, 2>("lj::lj2", n, n);
  lj3_ = kk::View<double, 2>("lj::lj3", n, n);
  lj4_ = kk::View<double, 2>("lj::lj4", n, n);
}

void PairLJCut::set_coeff(int t1, int t2, double eps, double sigma,
                          double cut) {
  const std::size_t a = std::size_t(t1), b = std::size_t(t2);
  for (auto [i, j] : {std::pair{a, b}, std::pair{b, a}}) {
    epsilon_(i, j) = eps;
    sigma_(i, j) = sigma;
    cut_(i, j) = cut;
    cutsq_(i, j) = cut * cut;
    lj1_(i, j) = 48.0 * eps * std::pow(sigma, 12.0);
    lj2_(i, j) = 24.0 * eps * std::pow(sigma, 6.0);
    lj3_(i, j) = 4.0 * eps * std::pow(sigma, 12.0);
    lj4_(i, j) = 4.0 * eps * std::pow(sigma, 6.0);
  }
  max_cut_ = std::max(max_cut_, cut);
  coeffs_set_ = true;
}

void PairLJCut::coeff(const std::vector<std::string>& args) {
  require(args.size() >= 4, "lj/cut coeff: <t1> <t2> <eps> <sigma> [cut]");
  const double eps = to_double(args[2]);
  const double sigma = to_double(args[3]);
  const double cut = args.size() > 4 ? to_double(args[4]) : cut_global_;
  // Wildcards require ntypes known; allocate lazily large enough.
  const bool wild1 = args[0] == "*";
  const bool wild2 = args[1] == "*";
  const int t1 = wild1 ? 1 : to_int(args[0]);
  const int t2 = wild2 ? 1 : to_int(args[1]);
  const int hi = std::max({t1, t2, ntypes_, ntypes_hint, 1});
  allocate(hi);
  for (int a = wild1 ? 1 : t1; a <= (wild1 ? ntypes_ : t1); ++a)
    for (int b = wild2 ? 1 : t2; b <= (wild2 ? ntypes_ : t2); ++b)
      set_coeff(a, b, eps, sigma, cut);
}

bool PairLJCut::pack_restart(io::BinaryWriter& w) const {
  w.put(cut_global_);
  w.put(std::int32_t(ntypes_));
  w.put(std::uint8_t(coeffs_set_ ? 1 : 0));
  for (int a = 1; a <= ntypes_; ++a)
    for (int b = 1; b <= ntypes_; ++b) {
      w.put(epsilon_(std::size_t(a), std::size_t(b)));
      w.put(sigma_(std::size_t(a), std::size_t(b)));
      w.put(cut_(std::size_t(a), std::size_t(b)));
    }
  return true;
}

void PairLJCut::unpack_restart(io::BinaryReader& r) {
  cut_global_ = r.get<double>();
  const int ntypes = int(r.get<std::int32_t>());
  const bool coeffs_set = r.get<std::uint8_t>() != 0;
  allocate(ntypes);
  max_cut_ = 0.0;
  for (int a = 1; a <= ntypes; ++a)
    for (int b = 1; b <= ntypes; ++b) {
      const double eps = r.get<double>();
      const double sigma = r.get<double>();
      const double cut = r.get<double>();
      // set_coeff would re-mark coeffs_set_ and symmetrize; write the slots
      // directly so an (a,b)/(b,a) asymmetry never silently heals and the
      // unset-marker (eps == 0) survives for init()'s mixing pass.
      epsilon_(std::size_t(a), std::size_t(b)) = eps;
      sigma_(std::size_t(a), std::size_t(b)) = sigma;
      cut_(std::size_t(a), std::size_t(b)) = cut;
      cutsq_(std::size_t(a), std::size_t(b)) = cut * cut;
      lj1_(std::size_t(a), std::size_t(b)) = 48.0 * eps * std::pow(sigma, 12.0);
      lj2_(std::size_t(a), std::size_t(b)) = 24.0 * eps * std::pow(sigma, 6.0);
      lj3_(std::size_t(a), std::size_t(b)) = 4.0 * eps * std::pow(sigma, 12.0);
      lj4_(std::size_t(a), std::size_t(b)) = 4.0 * eps * std::pow(sigma, 6.0);
      max_cut_ = std::max(max_cut_, cut);
    }
  coeffs_set_ = coeffs_set;
}

void PairLJCut::init(Simulation& sim) {
  allocate(sim.atom.ntypes);
  require(coeffs_set_, "lj/cut: no pair_coeff given");
  // Geometric mixing for any unset cross terms (eps==0 marks unset).
  for (int a = 1; a <= ntypes_; ++a)
    for (int b = a + 1; b <= ntypes_; ++b) {
      if (epsilon_(std::size_t(a), std::size_t(b)) == 0.0 &&
          epsilon_(std::size_t(a), std::size_t(a)) > 0.0 &&
          epsilon_(std::size_t(b), std::size_t(b)) > 0.0) {
        const double eps = std::sqrt(epsilon_(std::size_t(a), std::size_t(a)) *
                                     epsilon_(std::size_t(b), std::size_t(b)));
        const double sig = 0.5 * (sigma_(std::size_t(a), std::size_t(a)) +
                                  sigma_(std::size_t(b), std::size_t(b)));
        set_coeff(a, b, eps, sig, cut_global_);
      }
    }
  // Recompute the global maximum cutoff over all set type pairs.
  max_cut_ = 0.0;
  for (int a = 1; a <= ntypes_; ++a)
    for (int b = 1; b <= ntypes_; ++b)
      max_cut_ = std::max(max_cut_, cut_(std::size_t(a), std::size_t(b)));
  require(max_cut_ > 0.0, "lj/cut: no positive cutoffs set");
}

void PairLJCut::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(datamask_read);
  const NeighborList& list = sim.neighbor.list;
  const_cast<NeighborList&>(list).k_neighbors.sync<kk::Host>();
  const_cast<NeighborList&>(list).k_numneigh.sync<kk::Host>();

  const auto x = atom.k_x.h_view;
  auto f = atom.k_f.h_view;
  const auto type = atom.k_type.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const localint nlocal = atom.nlocal;
  const bool half = list.style == NeighStyle::Half;
  const bool newton = list.newton;

  for (localint i = 0; i < list.inum; ++i) {
    const double xi = x(std::size_t(i), 0);
    const double yi = x(std::size_t(i), 1);
    const double zi = x(std::size_t(i), 2);
    const int itype = type(std::size_t(i));
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    const int jnum = numneigh(std::size_t(i));
    for (int jj = 0; jj < jnum; ++jj) {
      const int j = neigh(std::size_t(i), std::size_t(jj));
      const double dx = xi - x(std::size_t(j), 0);
      const double dy = yi - x(std::size_t(j), 1);
      const double dz = zi - x(std::size_t(j), 2);
      const double rsq = dx * dx + dy * dy + dz * dz;
      const int jtype = type(std::size_t(j));
      if (rsq >= cutsq_(std::size_t(itype), std::size_t(jtype))) continue;

      const double fpair = pair_force(rsq, lj1_(std::size_t(itype), std::size_t(jtype)),
                                      lj2_(std::size_t(itype), std::size_t(jtype)));
      const double fx = dx * fpair, fy = dy * fpair, fz = dz * fpair;
      fxi += fx;
      fyi += fy;
      fzi += fz;
      if (half) {
        f(std::size_t(j), 0) -= fx;
        f(std::size_t(j), 1) -= fy;
        f(std::size_t(j), 2) -= fz;
      }
      if (eflag) {
        const double e = pair_energy(rsq, lj3_(std::size_t(itype), std::size_t(jtype)),
                                     lj4_(std::size_t(itype), std::size_t(jtype)));
        const double factor =
            half ? ((j < nlocal || newton) ? 1.0 : 0.5) : 0.5;
        eng_vdwl += factor * e;
        virial[0] += factor * dx * fx;
        virial[1] += factor * dy * fy;
        virial[2] += factor * dz * fz;
        virial[3] += factor * dx * fy;
        virial[4] += factor * dx * fz;
        virial[5] += factor * dy * fz;
      }
    }
    f(std::size_t(i), 0) += fxi;
    f(std::size_t(i), 1) += fyi;
    f(std::size_t(i), 2) += fzi;
  }
  atom.modified<kk::Host>(F_MASK);
}

void register_pair_lj_cut() {
  StyleRegistry::instance().add_pair(
      "lj/cut", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
        return std::make_unique<PairLJCut>();
      });
}

}  // namespace mlk
