#include "pair/pair_table.hpp"

#include <cmath>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk {

PairTable::PairTable() { style_name = "table"; }

void PairTable::settings(const std::vector<std::string>& args) {
  require(!args.empty(), "table: settings need <npoints> [cutoff]");
  n_ = to_int(args[0]);
  require(n_ >= 2, "table: need at least 2 points");
  if (args.size() > 1) cut_ = to_double(args[1]);
  require(cut_ > 0.0, "table: cutoff must be positive");
}

void PairTable::tabulate(std::function<double(double)> energy_of_r,
                         std::function<double(double)> force_over_r_of_r) {
  e_tab_ = kk::View<double, 1>("table::e", std::size_t(n_));
  f_tab_ = kk::View<double, 1>("table::f", std::size_t(n_));
  const double hi = cut_ * cut_;
  for (int k = 0; k < n_; ++k) {
    const double rsq =
        rsq_min_ + (hi - rsq_min_) * double(k) / double(n_ - 1);
    const double r = std::sqrt(rsq);
    e_tab_(std::size_t(k)) = energy_of_r(r);
    f_tab_(std::size_t(k)) = force_over_r_of_r(r);
  }
}

void PairTable::coeff(const std::vector<std::string>& args) {
  require(args.size() >= 5 && args[0] == "*" && args[1] == "*",
          "table coeff: * * <lj|morse> <p1> <p2>");
  const std::string& form = args[2];
  const double p1 = to_double(args[3]);
  const double p2 = to_double(args[4]);
  if (form == "lj") {
    const double eps = p1, sigma = p2;
    tabulate(
        [=](double r) {
          const double sr6 = std::pow(sigma / r, 6.0);
          return 4.0 * eps * (sr6 * sr6 - sr6);
        },
        [=](double r) {
          const double sr6 = std::pow(sigma / r, 6.0);
          return 24.0 * eps * (2.0 * sr6 * sr6 - sr6) / (r * r);
        });
  } else if (form == "morse") {
    const double D = p1, alpha = p2, r0 = 1.0;
    tabulate(
        [=](double r) {
          const double e = std::exp(-alpha * (r - r0));
          return D * (e * e - 2.0 * e);
        },
        [=](double r) {
          const double e = std::exp(-alpha * (r - r0));
          return 2.0 * D * alpha * (e * e - e) / r;
        });
  } else {
    fatal("table: unknown source form '" + form + "'");
  }
}

void PairTable::interpolate(double rsq, double* e, double* fpair) const {
  const double hi = cut_ * cut_;
  const double t =
      (rsq - rsq_min_) / (hi - rsq_min_) * double(n_ - 1);
  int k = int(t);
  if (k < 0) k = 0;
  if (k > n_ - 2) k = n_ - 2;
  const double frac = t - double(k);
  *e = e_tab_(std::size_t(k)) * (1.0 - frac) + e_tab_(std::size_t(k) + 1) * frac;
  *fpair =
      f_tab_(std::size_t(k)) * (1.0 - frac) + f_tab_(std::size_t(k) + 1) * frac;
}

void PairTable::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  require(e_tab_.is_allocated(), "table: no tabulation set");
  Atom& atom = sim.atom;
  atom.sync<kk::Host>(X_MASK | TYPE_MASK | F_MASK);
  auto& list = sim.neighbor.list;
  list.k_neighbors.sync<kk::Host>();
  list.k_numneigh.sync<kk::Host>();

  const auto x = atom.k_x.h_view;
  auto f = atom.k_f.h_view;
  const auto neigh = list.k_neighbors.h_view;
  const auto numneigh = list.k_numneigh.h_view;
  const localint nlocal = atom.nlocal;
  const double cutsq = cut_ * cut_;
  const bool half = list.style == NeighStyle::Half;
  const bool newton = list.newton;

  for (localint i = 0; i < list.inum; ++i) {
    double fxi = 0, fyi = 0, fzi = 0;
    for (int jj = 0; jj < numneigh(std::size_t(i)); ++jj) {
      const int j = neigh(std::size_t(i), std::size_t(jj));
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      const double rsq = dx * dx + dy * dy + dz * dz;
      if (rsq >= cutsq) continue;
      double e, fpair;
      interpolate(rsq, &e, &fpair);
      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      if (half) {
        f(std::size_t(j), 0) -= dx * fpair;
        f(std::size_t(j), 1) -= dy * fpair;
        f(std::size_t(j), 2) -= dz * fpair;
      }
      if (eflag) {
        const double factor = half ? ((j < nlocal || newton) ? 1.0 : 0.5) : 0.5;
        eng_vdwl += factor * e;
        virial[0] += factor * dx * dx * fpair;
        virial[1] += factor * dy * dy * fpair;
        virial[2] += factor * dz * dz * fpair;
        virial[3] += factor * dx * dy * fpair;
        virial[4] += factor * dx * dz * fpair;
        virial[5] += factor * dy * dz * fpair;
      }
    }
    f(std::size_t(i), 0) += fxi;
    f(std::size_t(i), 1) += fyi;
    f(std::size_t(i), 2) += fzi;
  }
  atom.modified<kk::Host>(F_MASK);
}

void register_pair_table() {
  StyleRegistry::instance().add_pair(
      "table", [](ExecSpaceKind) -> std::unique_ptr<Pair> {
        return std::make_unique<PairTable>();
      });
}

}  // namespace mlk
