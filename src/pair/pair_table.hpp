// pair_style table — tabulated pairwise potential with linear interpolation
// on r^2 (LAMMPS's fastest table mode). Tables are generated from a
// registered analytic source function, which lets tests verify the
// interpolation machinery against closed forms and gives the bench harness
// a way to sweep arithmetic intensity independent of functional form.
#pragma once

#include <functional>

#include "engine/pair.hpp"
#include "kokkos/view.hpp"

namespace mlk {

class PairTable : public Pair {
 public:
  PairTable();

  /// settings: <npoints> [cutoff]
  void settings(const std::vector<std::string>& args) override;
  /// coeff: * * <lj|morse> <p1> <p2> — tabulates 4 eps [...] or Morse.
  void coeff(const std::vector<std::string>& args) override;

  /// Programmatic tabulation of an arbitrary source (public API).
  void tabulate(std::function<double(double)> energy_of_r,
                std::function<double(double)> force_over_r_of_r);

  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override { return cut_; }
  NeighStyle neigh_style() const override { return NeighStyle::Half; }
  bool newton() const override { return true; }

  int npoints() const { return n_; }

 private:
  int n_ = 1000;
  double cut_ = 2.5;
  double rsq_min_ = 0.01;
  kk::View<double, 1> e_tab_, f_tab_;  // indexed on rsq grid

  void interpolate(double rsq, double* e, double* fpair) const;
};

void register_pair_table();

}  // namespace mlk
