// pair_style external — the Appendix A integration strategy for potentials
// implemented *outside* the MD code (PyTorch/JAX models behind a C++
// interface, embedded interpreters, ...): the engine hands each atom's
// neighborhood to a user-registered callback that returns the per-atom
// energy and per-neighbor force contributions. The engine still owns
// neighbor lists, ghosts, and communication — exactly the division of labor
// the paper describes for NequIP/MACE/Allegro-style couplings.
#pragma once

#include <functional>

#include "engine/pair.hpp"

namespace mlk {

/// One neighbor handed to the callback.
struct ExternalNeighbor {
  double dx, dy, dz;  // x_j - x_i
  double r;
  int type;
};

/// Per-atom callback: given the neighborhood, return E_i and write
/// dE_i/d(r_j) into fij (3 doubles per neighbor).
using ExternalPotential = std::function<double(
    int itype, const std::vector<ExternalNeighbor>& neighbors, double* fij)>;

class PairExternal : public Pair {
 public:
  PairExternal();

  /// The cutoff must be declared by the external model.
  void set_model(ExternalPotential model, double cutoff);

  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override { return cutoff_; }
  NeighStyle neigh_style() const override { return NeighStyle::Full; }
  bool newton() const override { return false; }

 private:
  ExternalPotential model_;
  double cutoff_ = 0.0;
};

void register_pair_external();

}  // namespace mlk
