// PairBatch — cross-simulation fused force dispatch (docs/SERVER.md).
//
// The paper's Table 2 lesson is that small systems starve per-kernel
// parallelism (Fig. 2a) and batching work items recovers it. Applied across
// jobs: co-resident Simulations whose pair styles report the same batch
// signature enlist one Slice each — a per-row closure covering the style's
// zero+force work plus an epilogue — and launch() dispatches ONE fused
// parallel_for over the concatenated row ranges with a per-slice offset
// table, instead of a handful of small launches per job.
//
// Bitwise contract: an enlisted row must perform exactly the arithmetic the
// job's solo kernels would perform for that row, and write only that row of
// its own job's arrays (full-list atom parallelism: row i accumulates into
// atom i, never scatters to j). Under that contract the fused launch is
// bitwise-identical to the solo launches for ANY partitioning of the row
// space across pool threads. Work whose result depends on reduction order
// (eflag energy/virial tallies) must not enlist — the style's
// batch_signature() returns "" on those steps and the scheduler falls back
// to the solo path.
//
// Styles with multi-pass pipelines (SNAP's stage/ui/yi/deidrj) would need
// one PairBatch per pass with a barrier between launches; the slice
// structure supports that shape, but only the single-pass LJ enlistment is
// wired up so far (docs/SERVER.md "batching semantics").
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace mlk {

class PairBatch {
 public:
  /// One job's contribution: `rows` closures indexed [0, rows) that run
  /// inside the fused launch, plus an epilogue run on the launching thread
  /// after the launch completes (scatter contribute, tally fold-back).
  struct Slice {
    std::string label;
    std::size_t rows = 0;
    std::function<void(std::size_t)> row;
    std::function<void()> epilogue;
  };

  void add(Slice s) { slices_.push_back(std::move(s)); }

  std::size_t size() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }
  std::size_t total_rows() const;

  /// Dispatch one fused parallel_for over every enlisted slice's rows, then
  /// run the epilogues in enlistment order and clear the batch. The kernel
  /// name is "PairBatch::force[k]" with k the slice count, so profiling
  /// tools show fused launches distinctly from per-job kernels.
  void launch();

 private:
  std::vector<Slice> slices_;
};

}  // namespace mlk
