#include "pair/pair_lj_cut_kokkos.hpp"

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "kokkos/instance.hpp"

namespace mlk {

template <class Space>
PairLJCutKokkos<Space>::PairLJCutKokkos() {
  style_name = "lj/cut/kk";
  execution_space =
      Space::is_device ? ExecSpaceKind::Device : ExecSpaceKind::Host;
  // Paper §4.1 defaults: full list + newton off on GPUs (redundant compute
  // beats atomics for cheap pair styles); half + newton on for CPUs.
  if (Space::is_device) {
    cfg_.neigh = NeighStyle::Full;
    cfg_.newton = false;
    cfg_.scatter = kk::ScatterMode::Atomic;
  } else {
    cfg_.neigh = NeighStyle::Half;
    cfg_.newton = true;
    cfg_.scatter = kk::ScatterMode::Sequential;
  }
}

template <class Space>
void PairLJCutKokkos<Space>::init(Simulation& sim) {
  PairLJCut::init(sim);
  // Coefficient tables were filled on the host; hand copies to the functor.
  // (Host-resident Views stand in for device mirrors; layout polymorphism is
  // exercised by the atom/neighbor DualViews.)
  functor_.d_cutsq = cutsq_;
  functor_.d_lj1 = lj1_;
  functor_.d_lj2 = lj2_;
  functor_.d_lj3 = lj3_;
  functor_.d_lj4 = lj4_;
}

template <class Space>
void PairLJCutKokkos<Space>::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  cfg_.eflag = eflag;
  const EV ev = pair_compute_dispatch<Space>(
      std::string("PairComputeLJCut<") + Space::name() + ">", sim.atom,
      sim.neighbor.list, functor_, cfg_);
  eng_vdwl = ev.evdwl;
  eng_coul = ev.ecoul;
  for (int k = 0; k < 6; ++k) virial[k] = ev.v[k];
}

template <class Space>
bool PairLJCutKokkos<Space>::supports_overlap(const NeighborList& list) const {
  // The split needs a full list computed atom-parallel: each owned row's
  // force is then one complete accumulation independent of every other row,
  // so interior rows started before the halo exchange produce bitwise the
  // same forces as the fused kernel. Half lists fold ghost forces back and
  // cannot start early. The partition must also be *valid* for this list
  // (ninterior + nboundary == inum): a builder that skipped the partition
  // would otherwise make the split silently compute forces from stale or
  // empty row sets.
  return list.style == NeighStyle::Full &&
         cfg_.parallelism == PairParallelism::Atom && !needs_reverse_comm &&
         list.ninterior + list.nboundary == list.inum;
}

template <class Space>
void PairLJCutKokkos<Space>::compute_interior(Simulation& sim, bool eflag,
                                              kk::DeviceInstance& instance) {
  reset_accumulators();
  cfg_.eflag = eflag;
  ev_interior_ = EV{};

  Atom& atom = sim.atom;
  NeighborList& l = sim.neighbor.list;
  // All DualView flag bookkeeping happens here on the caller thread; the
  // async task below touches only the raw views captured after the syncs
  // (docs/EXECUTION_MODEL.md: "flags stay on the submitting thread").
  atom.zero_forces<Space>();
  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  l.k_interior.sync<Space>();

  const auto x = atom.k_x.template view<Space>();
  const auto f = atom.k_f.template view<Space>();
  const auto type = atom.k_type.template view<Space>();
  const auto neigh = l.k_neighbors.template view<Space>();
  const auto numneigh = l.k_numneigh.template view<Space>();
  const auto interior = l.k_interior.template view<Space>();
  const localint nlocal = atom.nlocal;
  const std::size_t nsub = std::size_t(l.ninterior);
  const LJFunctor func = functor_;
  const kk::ScatterMode scatter = cfg_.scatter;
  EV* out = &ev_interior_;

  const std::string name =
      std::string("PairComputeLJCut<") + Space::name() + ">::interior";
  instance.enqueue(name, [=] {
    *out = pair_compute_sublist_views<Space, true, false>(
        name, x, f, type, neigh, numneigh, interior, nsub, nlocal, func,
        scatter, eflag);
  });
  atom.template modified<Space>(F_MASK);
}

template <class Space>
void PairLJCutKokkos<Space>::compute_boundary(Simulation& sim, bool eflag) {
  Atom& atom = sim.atom;
  NeighborList& l = sim.neighbor.list;
  atom.sync<Space>(X_MASK);  // pick up the freshly exchanged ghost rows
  l.k_boundary.sync<Space>();

  const EV ev_boundary = pair_compute_sublist_views<Space, true, false>(
      std::string("PairComputeLJCut<") + Space::name() + ">::boundary",
      atom.k_x.template view<Space>(), atom.k_f.template view<Space>(),
      atom.k_type.template view<Space>(),
      l.k_neighbors.template view<Space>(),
      l.k_numneigh.template view<Space>(), l.k_boundary.template view<Space>(),
      std::size_t(l.nboundary), atom.nlocal, functor_, cfg_.scatter, eflag);
  atom.template modified<Space>(F_MASK);

  // ev_interior_ is defined: the engine fenced the interior instance before
  // calling compute_boundary.
  eng_vdwl = ev_interior_.evdwl + ev_boundary.evdwl;
  eng_coul = ev_interior_.ecoul + ev_boundary.ecoul;
  for (int k = 0; k < 6; ++k)
    virial[k] = ev_interior_.v[k] + ev_boundary.v[k];
}

template class PairLJCutKokkos<kk::Host>;
template class PairLJCutKokkos<kk::Device>;

void register_pair_lj_cut_kokkos() {
  StyleRegistry::instance().add_pair_kokkos(
      "lj/cut", [](ExecSpaceKind space) -> std::unique_ptr<Pair> {
        if (space == ExecSpaceKind::Host)
          return std::make_unique<PairLJCutKokkos<kk::Host>>();
        return std::make_unique<PairLJCutKokkos<kk::Device>>();
      });
}

}  // namespace mlk
