#include "pair/pair_lj_cut_kokkos.hpp"

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"

namespace mlk {

template <class Space>
PairLJCutKokkos<Space>::PairLJCutKokkos() {
  style_name = "lj/cut/kk";
  execution_space =
      Space::is_device ? ExecSpaceKind::Device : ExecSpaceKind::Host;
  // Paper §4.1 defaults: full list + newton off on GPUs (redundant compute
  // beats atomics for cheap pair styles); half + newton on for CPUs.
  if (Space::is_device) {
    cfg_.neigh = NeighStyle::Full;
    cfg_.newton = false;
    cfg_.scatter = kk::ScatterMode::Atomic;
  } else {
    cfg_.neigh = NeighStyle::Half;
    cfg_.newton = true;
    cfg_.scatter = kk::ScatterMode::Sequential;
  }
}

template <class Space>
void PairLJCutKokkos<Space>::init(Simulation& sim) {
  PairLJCut::init(sim);
  // Coefficient tables were filled on the host; hand copies to the functor.
  // (Host-resident Views stand in for device mirrors; layout polymorphism is
  // exercised by the atom/neighbor DualViews.)
  functor_.d_cutsq = cutsq_;
  functor_.d_lj1 = lj1_;
  functor_.d_lj2 = lj2_;
  functor_.d_lj3 = lj3_;
  functor_.d_lj4 = lj4_;
}

template <class Space>
void PairLJCutKokkos<Space>::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  cfg_.eflag = eflag;
  const EV ev = pair_compute_dispatch<Space>(
      std::string("PairComputeLJCut<") + Space::name() + ">", sim.atom,
      sim.neighbor.list, functor_, cfg_);
  eng_vdwl = ev.evdwl;
  eng_coul = ev.ecoul;
  for (int k = 0; k < 6; ++k) virial[k] = ev.v[k];
}

template class PairLJCutKokkos<kk::Host>;
template class PairLJCutKokkos<kk::Device>;

void register_pair_lj_cut_kokkos() {
  StyleRegistry::instance().add_pair_kokkos(
      "lj/cut", [](ExecSpaceKind space) -> std::unique_ptr<Pair> {
        if (space == ExecSpaceKind::Host)
          return std::make_unique<PairLJCutKokkos<kk::Host>>();
        return std::make_unique<PairLJCutKokkos<kk::Device>>();
      });
}

}  // namespace mlk
