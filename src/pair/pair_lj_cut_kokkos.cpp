#include "pair/pair_lj_cut_kokkos.hpp"

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "kokkos/instance.hpp"
#include "pair/pair_batch.hpp"

namespace mlk {

template <class Space>
PairLJCutKokkos<Space>::PairLJCutKokkos() {
  style_name = "lj/cut/kk";
  execution_space =
      Space::is_device ? ExecSpaceKind::Device : ExecSpaceKind::Host;
  // Paper §4.1 defaults: full list + newton off on GPUs (redundant compute
  // beats atomics for cheap pair styles); half + newton on for CPUs.
  if (Space::is_device) {
    cfg_.neigh = NeighStyle::Full;
    cfg_.newton = false;
    cfg_.scatter = kk::ScatterMode::Atomic;
  } else {
    cfg_.neigh = NeighStyle::Half;
    cfg_.newton = true;
    cfg_.scatter = kk::ScatterMode::Sequential;
  }
}

template <class Space>
void PairLJCutKokkos<Space>::init(Simulation& sim) {
  PairLJCut::init(sim);
  // Coefficient tables were filled on the host; hand copies to the functor.
  // (Host-resident Views stand in for device mirrors; layout polymorphism is
  // exercised by the atom/neighbor DualViews.)
  functor_.d_cutsq = cutsq_;
  functor_.d_lj1 = lj1_;
  functor_.d_lj2 = lj2_;
  functor_.d_lj3 = lj3_;
  functor_.d_lj4 = lj4_;
}

template <class Space>
void PairLJCutKokkos<Space>::compute(Simulation& sim, bool eflag) {
  reset_accumulators();
  cfg_.eflag = eflag;
  const EV ev = pair_compute_dispatch<Space>(
      std::string("PairComputeLJCut<") + Space::name() + ">", sim.atom,
      sim.neighbor.list, functor_, cfg_);
  eng_vdwl = ev.evdwl;
  eng_coul = ev.ecoul;
  for (int k = 0; k < 6; ++k) virial[k] = ev.v[k];
}

template <class Space>
bool PairLJCutKokkos<Space>::supports_overlap(const NeighborList& list) const {
  // The split needs a full list computed atom-parallel: each owned row's
  // force is then one complete accumulation independent of every other row,
  // so interior rows started before the halo exchange produce bitwise the
  // same forces as the fused kernel. Half lists fold ghost forces back and
  // cannot start early. The partition must also be *valid* for this list
  // (ninterior + nboundary == inum): a builder that skipped the partition
  // would otherwise make the split silently compute forces from stale or
  // empty row sets.
  return list.style == NeighStyle::Full &&
         cfg_.parallelism == PairParallelism::Atom && !needs_reverse_comm &&
         list.ninterior + list.nboundary == list.inum;
}

template <class Space>
void PairLJCutKokkos<Space>::compute_interior(Simulation& sim, bool eflag,
                                              kk::DeviceInstance& instance) {
  reset_accumulators();
  cfg_.eflag = eflag;
  ev_interior_ = EV{};

  Atom& atom = sim.atom;
  NeighborList& l = sim.neighbor.list;
  // All DualView flag bookkeeping happens here on the caller thread; the
  // async task below touches only the raw views captured after the syncs
  // (docs/EXECUTION_MODEL.md: "flags stay on the submitting thread").
  atom.zero_forces<Space>();
  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  l.k_interior.sync<Space>();

  const auto x = atom.k_x.template view<Space>();
  const auto f = atom.k_f.template view<Space>();
  const auto type = atom.k_type.template view<Space>();
  const auto neigh = l.k_neighbors.template view<Space>();
  const auto numneigh = l.k_numneigh.template view<Space>();
  const auto interior = l.k_interior.template view<Space>();
  const localint nlocal = atom.nlocal;
  const std::size_t nsub = std::size_t(l.ninterior);
  const LJFunctor func = functor_;
  const kk::ScatterMode scatter = cfg_.scatter;
  EV* out = &ev_interior_;

  const std::string name =
      std::string("PairComputeLJCut<") + Space::name() + ">::interior";
  instance.enqueue(name, [=] {
    *out = pair_compute_sublist_views<Space, true, false>(
        name, x, f, type, neigh, numneigh, interior, nsub, nlocal, func,
        scatter, eflag);
  });
  atom.template modified<Space>(F_MASK);
}

template <class Space>
void PairLJCutKokkos<Space>::compute_boundary(Simulation& sim, bool eflag) {
  Atom& atom = sim.atom;
  NeighborList& l = sim.neighbor.list;
  atom.sync<Space>(X_MASK);  // pick up the freshly exchanged ghost rows
  l.k_boundary.sync<Space>();

  const EV ev_boundary = pair_compute_sublist_views<Space, true, false>(
      std::string("PairComputeLJCut<") + Space::name() + ">::boundary",
      atom.k_x.template view<Space>(), atom.k_f.template view<Space>(),
      atom.k_type.template view<Space>(),
      l.k_neighbors.template view<Space>(),
      l.k_numneigh.template view<Space>(), l.k_boundary.template view<Space>(),
      std::size_t(l.nboundary), atom.nlocal, functor_, cfg_.scatter, eflag);
  atom.template modified<Space>(F_MASK);

  // ev_interior_ is defined: the engine fenced the interior instance before
  // calling compute_boundary.
  eng_vdwl = ev_interior_.evdwl + ev_boundary.evdwl;
  eng_coul = ev_interior_.ecoul + ev_boundary.ecoul;
  for (int k = 0; k < 6; ++k)
    virial[k] = ev_interior_.v[k] + ev_boundary.v[k];
}

template <class Space>
std::string PairLJCutKokkos<Space>::batch_signature(const Simulation& sim,
                                                    bool eflag) const {
  // Fusable only when the solo path would be a plain parallel_for whose
  // rows are independent and write just their own atom:
  //   * no tallies — eflag reductions join per-rank partials in rank order,
  //     so fusing them would change the summation order vs. solo;
  //   * full list + atom parallelism — row i accumulates into atom i only
  //     (pair_accumulate<FULL> never scatters to j), which is what makes
  //     the fused launch bitwise-identical under any row partitioning;
  //   * atomic scatter — duplicated/sequential modes assume the launch
  //     shape the solo kernel would have had;
  //   * no ghost-force fold-back.
  if (eflag) return "";
  if (cfg_.neigh != NeighStyle::Full ||
      cfg_.parallelism != PairParallelism::Atom ||
      cfg_.scatter != kk::ScatterMode::Atomic || needs_reverse_comm)
    return "";
  if (sim.neighbor.list.style != NeighStyle::Full) return "";
  // Structural signature: any two LJ jobs in this configuration can share a
  // launch (coefficients and cutoffs are per-slice captures, not shape).
  return std::string("pairwise/full/atom/atomic/") + Space::name();
}

template <class Space>
void PairLJCutKokkos<Space>::batch_enlist(Simulation& sim, bool eflag,
                                          PairBatch& batch) {
  (void)eflag;  // only no-tally steps enlist (batch_signature refuses eflag)
  reset_accumulators();
  cfg_.eflag = false;

  Atom& atom = sim.atom;
  NeighborList& l = sim.neighbor.list;
  // Same threading contract as compute_interior: every DualView sync runs
  // here on the calling thread; the fused kernel touches only the raw views
  // captured below. The solo path syncs F then zeroes it (Atom::zero_forces)
  // — replicated here by syncing at enlistment and zeroing inside the fused
  // kernel, so both paths leave bitwise-identical state.
  atom.template sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();

  const auto x = atom.k_x.template view<Space>();
  const auto f = atom.k_f.template view<Space>();
  const auto type = atom.k_type.template view<Space>();
  const auto neigh = l.k_neighbors.template view<Space>();
  const auto numneigh = l.k_numneigh.template view<Space>();
  const localint nlocal = atom.nlocal;
  const std::size_t nforce = std::size_t(l.inum);
  const LJFunctor func = functor_;

  // Per-job ScatterView (Atomic: adds land directly in this job's force
  // array). Heap-owned so it outlives enlistment; the epilogue keeps the
  // shared_ptr alive through the launch and runs contribute afterwards.
  auto fscatter = std::make_shared<kk::ScatterView<double, 2, Space>>(
      f, cfg_.scatter);
  const auto facc = fscatter->access();

  const bool use_simd = kk::simd_enabled();
  if (use_simd)
    kk::simdstats::count_launch(std::string("PairComputeLJCut<") +
                                Space::name() + ">::batch");

  PairBatch::Slice s;
  s.label = std::string("PairComputeLJCut<") + Space::name() + ">";
  // Row space covers all nall force rows: rows < inum zero their own atom
  // then accumulate its neighbors (the add lands on the freshly zeroed
  // entry, exactly the value the solo zero-kernel + force-kernel sequence
  // produces); ghost rows only zero. No row reads f, so zeroing needs no
  // barrier against the force work of other rows.
  s.rows = std::size_t(atom.nall());
  s.row = [=](std::size_t i) {
    f(i, 0) = 0.0;
    f(i, 1) = 0.0;
    f(i, 2) = 0.0;
    if (i >= nforce) return;
    EV unused;
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    const int jnum = numneigh(i);
    if (use_simd) {
      detail::pair_row_packed<kk::native_simd_width, true, false>(
          x, facc, type, neigh, func, i, jnum, nlocal, /*eflag=*/false, fxi,
          fyi, fzi, unused);
    } else {
      for (int jj = 0; jj < jnum; ++jj) {
        const int j = neigh(i, std::size_t(jj));
        detail::pair_accumulate<true, false>(x, facc, type, func, i, j, nlocal,
                                             /*eflag=*/false, fxi, fyi, fzi,
                                             unused);
      }
    }
    facc.add(i, 0, fxi);
    facc.add(i, 1, fyi);
    facc.add(i, 2, fzi);
  };
  s.epilogue = [fscatter] { fscatter->contribute(); };
  batch.add(std::move(s));
  atom.template modified<Space>(F_MASK);
}

template class PairLJCutKokkos<kk::Host>;
template class PairLJCutKokkos<kk::Device>;

void register_pair_lj_cut_kokkos() {
  StyleRegistry::instance().add_pair_kokkos(
      "lj/cut", [](ExecSpaceKind space) -> std::unique_ptr<Pair> {
        if (space == ExecSpaceKind::Host)
          return std::make_unique<PairLJCutKokkos<kk::Host>>();
        return std::make_unique<PairLJCutKokkos<kk::Device>>();
      });
}

}  // namespace mlk
