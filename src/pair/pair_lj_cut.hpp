// pair_style lj/cut — the legacy (non-Kokkos) Lennard-Jones 12-6 potential,
// computed with a half neighbor list and Newton's third law, one MPI rank
// per core: the CPU baseline configuration of the paper (§4.1, Fig. 5).
//
//   E = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ],  r < r_c     (paper eq. 1)
#pragma once

#include "engine/pair.hpp"
#include "kokkos/view.hpp"

namespace mlk {

class PairLJCut : public Pair {
 public:
  PairLJCut();

  /// settings: [global cutoff]
  void settings(const std::vector<std::string>& args) override;
  /// coeff: <t1|*> <t2|*> <eps> <sigma> [cut]
  void coeff(const std::vector<std::string>& args) override;
  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override { return max_cut_; }

  /// Full coefficient round-trip (also inherited by the Kokkos variants):
  /// a read_restart needs no pair_style/pair_coeff commands to resume.
  bool pack_restart(io::BinaryWriter& w) const override;
  void unpack_restart(io::BinaryReader& r) override;

  NeighStyle neigh_style() const override { return NeighStyle::Half; }
  bool newton() const override { return true; }

  // Pairwise force magnitude / r and energy, shared with tests.
  static double pair_force(double rsq, double lj1, double lj2);
  static double pair_energy(double rsq, double lj3, double lj4);

 protected:
  void allocate(int ntypes);
  void set_coeff(int t1, int t2, double eps, double sigma, double cut);

  int ntypes_ = 0;
  double cut_global_ = 2.5;
  double max_cut_ = 2.5;
  // Host coefficient tables, (ntypes+1)^2; mixed by geometric/arithmetic
  // rules when not given explicitly (LAMMPS "mix geometric" for lj/cut).
  kk::View<double, 2> epsilon_, sigma_, cut_, cutsq_;
  kk::View<double, 2> lj1_, lj2_, lj3_, lj4_;
  bool coeffs_set_ = false;
};

void register_pair_lj_cut();

}  // namespace mlk
