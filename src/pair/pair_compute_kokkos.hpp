// pair_kokkos — the generic two-body force computation of §4.1.
//
// Every simple pairwise Kokkos style derives its force/energy kernels from a
// single implementation that handles:
//   * neighbor list style (FULL redundant-compute vs HALF with Newton's 3rd
//     law) — the Fig. 2b trade-off,
//   * write deconflicting through kk::ScatterView (atomics on Device,
//     duplication/serial on Host),
//   * atom-parallel (one work item per atom) vs hierarchical team-parallel
//     (concurrency over the neighbors of each atom) dispatch — the Fig. 2a
//     trade-off for small problems,
//   * energy/virial tallies with the correct half/full weighting.
//
// The concrete style supplies a device-copyable functor exposing:
//   double cutsq(itype, jtype)
//   double fpair(rsq, itype, jtype)   — force magnitude divided by r
//   double evdwl(rsq, itype, jtype)   — pair energy
//
// A functor may additionally provide the fused evaluation
//   double fpair_ev(rsq, itype, jtype, double& evdwl_out)
// which returns the force magnitude (bitwise-identical to fpair) while
// computing the pair energy from the shared intermediates in one pass; when
// present it replaces the separate fpair + evdwl evaluations whenever
// energy/virial tallies are requested. When they are NOT requested, the
// kernels below drop the reduction machinery entirely and dispatch a plain
// parallel_for — the "fuse force+energy, eliminate the separate reduce
// pass" optimization of the source paper.
#pragma once

#include <cstddef>
#include <string>

#include "engine/atom.hpp"
#include "engine/neighbor.hpp"
#include "kokkos/core.hpp"
#include "kokkos/scatterview.hpp"
#include "kokkos/team.hpp"

namespace mlk {

/// Energy + virial accumulator usable as a kk reduction value type.
struct EV {
  double evdwl = 0.0;
  double ecoul = 0.0;
  double v[6] = {0, 0, 0, 0, 0, 0};
  EV() = default;
  explicit EV(int) {}  // T(0) for reducers
  EV& operator+=(const EV& o) {
    evdwl += o.evdwl;
    ecoul += o.ecoul;
    for (int k = 0; k < 6; ++k) v[k] += o.v[k];
    return *this;
  }
};

enum class PairParallelism { Atom, Team };

struct PairComputeConfig {
  NeighStyle neigh = NeighStyle::Full;
  bool newton = false;
  PairParallelism parallelism = PairParallelism::Atom;
  kk::ScatterMode scatter = kk::ScatterMode::Atomic;
  int vector_length = 32;  // logical lanes for the team variant
  bool eflag = true;
};

namespace detail {

template <bool FULL, bool NEWTON, class XView, class FAcc, class TView,
          class Functor>
inline void pair_accumulate(const XView& x, const FAcc& facc,
                            const TView& type, const Functor& func,
                            std::size_t i, int j, localint nlocal, bool eflag,
                            double& fxi, double& fyi, double& fzi, EV& ev) {
  const double dx = x(i, 0) - x(std::size_t(j), 0);
  const double dy = x(i, 1) - x(std::size_t(j), 1);
  const double dz = x(i, 2) - x(std::size_t(j), 2);
  const double rsq = dx * dx + dy * dy + dz * dz;
  const int itype = type(i);
  const int jtype = type(std::size_t(j));
  if (rsq >= func.cutsq(itype, jtype)) return;

  double fpair;
  double epair = 0.0;
  if constexpr (requires(double& e) { func.fpair_ev(rsq, itype, jtype, e); }) {
    // Fused force+energy evaluation sharing the r^-2/r^-6 intermediates.
    fpair = eflag ? func.fpair_ev(rsq, itype, jtype, epair)
                  : func.fpair(rsq, itype, jtype);
  } else {
    fpair = func.fpair(rsq, itype, jtype);
    if (eflag) epair = func.evdwl(rsq, itype, jtype);
  }
  const double fx = dx * fpair, fy = dy * fpair, fz = dz * fpair;
  fxi += fx;
  fyi += fy;
  fzi += fz;
  if constexpr (!FULL) {
    facc.add(std::size_t(j), 0, -fx);
    facc.add(std::size_t(j), 1, -fy);
    facc.add(std::size_t(j), 2, -fz);
  }
  if (eflag) {
    const double factor =
        FULL ? 0.5 : ((j < nlocal || NEWTON) ? 1.0 : 0.5);
    ev.evdwl += factor * epair;
    ev.v[0] += factor * dx * fx;
    ev.v[1] += factor * dy * fy;
    ev.v[2] += factor * dz * fz;
    ev.v[3] += factor * dx * fy;
    ev.v[4] += factor * dx * fz;
    ev.v[5] += factor * dy * fz;
  }
}

}  // namespace detail

/// Atom-parallel kernel: one work item per atom, serial loop over neighbors.
template <class Space, bool FULL, bool NEWTON, class Functor>
EV pair_compute_atom(const std::string& name, Atom& atom,
                     const NeighborList& list, const Functor& func,
                     kk::ScatterMode scatter, bool eflag) {
  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto type = atom.k_type.view<Space>();
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();
  const localint nlocal = atom.nlocal;

  kk::ScatterView<double, 2, Space> fscatter(f, scatter);
  auto facc = fscatter.access();

  EV total;
  const auto row = [=](std::size_t i, EV& ev) {
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    const int jnum = numneigh(i);
    for (int jj = 0; jj < jnum; ++jj) {
      const int j = neigh(i, std::size_t(jj));
      detail::pair_accumulate<FULL, NEWTON>(x, facc, type, func, i, j, nlocal,
                                            eflag, fxi, fyi, fzi, ev);
    }
    facc.add(i, 0, fxi);
    facc.add(i, 1, fyi);
    facc.add(i, 2, fzi);
  };
  if (eflag) {
    kk::parallel_reduce(name, kk::RangePolicy<Space>(0, std::size_t(list.inum)),
                        row, total);
  } else {
    // No tallies requested: plain parallel_for, no reduction machinery.
    kk::parallel_for(name, kk::RangePolicy<Space>(0, std::size_t(list.inum)),
                     [=](std::size_t i) {
                       EV unused;
                       row(i, unused);
                     });
  }
  fscatter.contribute();
  atom.modified<Space>(F_MASK);
  return total;
}

/// Atom-parallel kernel over an explicit sublist of owned rows, operating on
/// raw pre-synced views. Performs NO DualView sync/modify bookkeeping — the
/// caller orchestrates flags on its own thread — which makes this variant
/// safe to run inside an asynchronous kk::DeviceInstance task (the
/// comm/compute-overlapped force phase, docs/EXECUTION_MODEL.md). Returns
/// the energy/virial contribution of the sublist rows.
template <class Space, bool FULL, bool NEWTON, class XView, class FView,
          class TView, class NeighView, class NumView, class SubView,
          class Functor>
EV pair_compute_sublist_views(const std::string& name, const XView& x,
                              const FView& f, const TView& type,
                              const NeighView& neigh, const NumView& numneigh,
                              const SubView& sublist, std::size_t nsub,
                              localint nlocal, const Functor& func,
                              kk::ScatterMode scatter, bool eflag) {
  kk::ScatterView<double, 2, Space> fscatter(f, scatter);
  auto facc = fscatter.access();
  EV total;
  const auto row = [=](std::size_t s, EV& ev) {
    const std::size_t i = std::size_t(sublist(s));
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    const int jnum = numneigh(i);
    for (int jj = 0; jj < jnum; ++jj) {
      const int j = neigh(i, std::size_t(jj));
      detail::pair_accumulate<FULL, NEWTON>(x, facc, type, func, i, j, nlocal,
                                            eflag, fxi, fyi, fzi, ev);
    }
    facc.add(i, 0, fxi);
    facc.add(i, 1, fyi);
    facc.add(i, 2, fzi);
  };
  if (eflag) {
    kk::parallel_reduce(name, kk::RangePolicy<Space>(0, nsub), row, total);
  } else {
    kk::parallel_for(name, kk::RangePolicy<Space>(0, nsub), [=](std::size_t s) {
      EV unused;
      row(s, unused);
    });
  }
  fscatter.contribute();
  return total;
}

/// Team-parallel kernel: one team per atom, neighbor loop distributed over
/// (logical) vector lanes — exposes enough concurrency to saturate a GPU on
/// small systems (§4.1, Fig. 2a).
template <class Space, bool FULL, bool NEWTON, class Functor>
EV pair_compute_team(const std::string& name, Atom& atom,
                     const NeighborList& list, const Functor& func,
                     kk::ScatterMode scatter, int vector_length, bool eflag) {
  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto type = atom.k_type.view<Space>();
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();
  const localint nlocal = atom.nlocal;

  kk::ScatterView<double, 2, Space> fscatter(f, scatter);
  auto facc = fscatter.access();

  EV total;
  kk::TeamPolicy<Space> policy(std::size_t(list.inum), 1, vector_length);
  kk::parallel_reduce(
      name, policy,
      [=](const kk::TeamMember& member, EV& ev) {
        const std::size_t i = member.league_rank();
        const int jnum = numneigh(i);
        // Per-lane partial forces on atom i reduced across the vector range.
        double fxi = 0.0, fyi = 0.0, fzi = 0.0;
        EV ev_local;
        kk::parallel_for(kk::ThreadVectorRange(member, std::size_t(jnum)),
                         [&](std::size_t jj) {
                           const int j = neigh(i, jj);
                           detail::pair_accumulate<FULL, NEWTON>(
                               x, facc, type, func, i, j, nlocal, eflag, fxi,
                               fyi, fzi, ev_local);
                         });
        member.team_barrier();
        facc.add(i, 0, fxi);
        facc.add(i, 1, fyi);
        facc.add(i, 2, fzi);
        ev += ev_local;
      },
      total);
  fscatter.contribute();
  atom.modified<Space>(F_MASK);
  return total;
}

/// Runtime-configured dispatcher over list style, newton flag, parallelism.
template <class Space, class Functor>
EV pair_compute_dispatch(const std::string& name, Atom& atom,
                         const NeighborList& list, const Functor& func,
                         const PairComputeConfig& cfg) {
  const bool full = list.style == NeighStyle::Full;
  const bool newton = list.newton;
  if (cfg.parallelism == PairParallelism::Atom) {
    if (full)
      return pair_compute_atom<Space, true, false>(name, atom, list, func,
                                                   cfg.scatter, cfg.eflag);
    if (newton)
      return pair_compute_atom<Space, false, true>(name, atom, list, func,
                                                   cfg.scatter, cfg.eflag);
    return pair_compute_atom<Space, false, false>(name, atom, list, func,
                                                  cfg.scatter, cfg.eflag);
  }
  if (full)
    return pair_compute_team<Space, true, false>(
        name, atom, list, func, cfg.scatter, cfg.vector_length, cfg.eflag);
  if (newton)
    return pair_compute_team<Space, false, true>(
        name, atom, list, func, cfg.scatter, cfg.vector_length, cfg.eflag);
  return pair_compute_team<Space, false, false>(
      name, atom, list, func, cfg.scatter, cfg.vector_length, cfg.eflag);
}

}  // namespace mlk
