// pair_kokkos — the generic two-body force computation of §4.1.
//
// Every simple pairwise Kokkos style derives its force/energy kernels from a
// single implementation that handles:
//   * neighbor list style (FULL redundant-compute vs HALF with Newton's 3rd
//     law) — the Fig. 2b trade-off,
//   * write deconflicting through kk::ScatterView (atomics on Device,
//     duplication/serial on Host),
//   * atom-parallel (one work item per atom) vs hierarchical team-parallel
//     (concurrency over the neighbors of each atom) dispatch — the Fig. 2a
//     trade-off for small problems,
//   * energy/virial tallies with the correct half/full weighting.
//
// The concrete style supplies a device-copyable functor exposing:
//   double cutsq(itype, jtype)
//   double fpair(rsq, itype, jtype)   — force magnitude divided by r
//   double evdwl(rsq, itype, jtype)   — pair energy
//
// A functor may additionally provide the fused evaluation
//   double fpair_ev(rsq, itype, jtype, double& evdwl_out)
// which returns the force magnitude (bitwise-identical to fpair) while
// computing the pair energy from the shared intermediates in one pass; when
// present it replaces the separate fpair + evdwl evaluations whenever
// energy/virial tallies are requested. When they are NOT requested, the
// kernels below drop the reduction machinery entirely and dispatch a plain
// parallel_for — the "fuse force+energy, eliminate the separate reduce
// pass" optimization of the source paper.
//
// SIMD: with kk::simd_enabled() (MLK_SIMD / `simd on`), every kernel below
// walks each atom row's neighbors kk::native_simd_width lanes at a time
// with kk::simd packs — distance math, the cutoff test, and the functor
// evaluation run masked across lanes (docs/VECTORIZATION.md). A functor may
// provide the pack interface
//   simd<double,W> fpair_simd<W>(rsq_pack, itype, const int* jtype)
//   simd<double,W> fpair_ev_simd<W>(rsq_pack, itype, const int* jtype,
//                                   simd<double,W>& evdwl_out)
// (lane l of rsq/jtype is neighbor l of the chunk); without it, the
// neighbor geometry still vectorizes and the functor is evaluated per
// active lane. The scalar path stays the reference: SIMD off runs the
// original per-neighbor loops untouched.
#pragma once

#include <cstddef>
#include <string>

#include "engine/atom.hpp"
#include "engine/neighbor.hpp"
#include "kokkos/core.hpp"
#include "kokkos/scatterview.hpp"
#include "kokkos/simd.hpp"
#include "kokkos/team.hpp"

namespace mlk {

/// Energy + virial accumulator usable as a kk reduction value type.
struct EV {
  double evdwl = 0.0;
  double ecoul = 0.0;
  double v[6] = {0, 0, 0, 0, 0, 0};
  EV() = default;
  explicit EV(int) {}  // T(0) for reducers
  EV& operator+=(const EV& o) {
    evdwl += o.evdwl;
    ecoul += o.ecoul;
    for (int k = 0; k < 6; ++k) v[k] += o.v[k];
    return *this;
  }
};

enum class PairParallelism { Atom, Team };

struct PairComputeConfig {
  NeighStyle neigh = NeighStyle::Full;
  bool newton = false;
  PairParallelism parallelism = PairParallelism::Atom;
  kk::ScatterMode scatter = kk::ScatterMode::Atomic;
  int vector_length = 32;  // logical lanes for the team variant
  bool eflag = true;
};

namespace detail {

template <bool FULL, bool NEWTON, class XView, class FAcc, class TView,
          class Functor>
inline void pair_accumulate(const XView& x, const FAcc& facc,
                            const TView& type, const Functor& func,
                            std::size_t i, int j, localint nlocal, bool eflag,
                            double& fxi, double& fyi, double& fzi, EV& ev) {
  const double dx = x(i, 0) - x(std::size_t(j), 0);
  const double dy = x(i, 1) - x(std::size_t(j), 1);
  const double dz = x(i, 2) - x(std::size_t(j), 2);
  const double rsq = dx * dx + dy * dy + dz * dz;
  const int itype = type(i);
  const int jtype = type(std::size_t(j));
  if (rsq >= func.cutsq(itype, jtype)) return;

  double fpair;
  double epair = 0.0;
  if constexpr (requires(double& e) { func.fpair_ev(rsq, itype, jtype, e); }) {
    // Fused force+energy evaluation sharing the r^-2/r^-6 intermediates.
    fpair = eflag ? func.fpair_ev(rsq, itype, jtype, epair)
                  : func.fpair(rsq, itype, jtype);
  } else {
    fpair = func.fpair(rsq, itype, jtype);
    if (eflag) epair = func.evdwl(rsq, itype, jtype);
  }
  const double fx = dx * fpair, fy = dy * fpair, fz = dz * fpair;
  fxi += fx;
  fyi += fy;
  fzi += fz;
  if constexpr (!FULL) {
    facc.add(std::size_t(j), 0, -fx);
    facc.add(std::size_t(j), 1, -fy);
    facc.add(std::size_t(j), 2, -fz);
  }
  if (eflag) {
    const double factor =
        FULL ? 0.5 : ((j < nlocal || NEWTON) ? 1.0 : 0.5);
    ev.evdwl += factor * epair;
    ev.v[0] += factor * dx * fx;
    ev.v[1] += factor * dy * fy;
    ev.v[2] += factor * dz * fz;
    ev.v[3] += factor * dx * fy;
    ev.v[4] += factor * dx * fz;
    ev.v[5] += factor * dy * fz;
  }
}

/// SIMD counterpart of pair_accumulate: evaluates one chunk of up to W
/// neighbors of atom i. `j` holds W neighbor indices (inactive lanes padded
/// with j[0], a valid index, so gathers never read out of bounds); `act`
/// marks real lanes. Forces and EV terms accumulate into caller-held packs;
/// inactive/out-of-cutoff lanes have fpair forced to 0 so their
/// contributions vanish. The j-side half-list scatter stays per-active-lane
/// (one add per (i,j) pair, row order preserved — bitwise-identical to the
/// scalar loop; see VECTORIZATION.md's equivalence policy).
template <int W, bool FULL, bool NEWTON, class XView, class FAcc, class TView,
          class Functor>
inline void pair_chunk_packed(const XView& x, const FAcc& facc,
                              const TView& type, const Functor& func,
                              std::size_t i, double xi0, double xi1, double xi2,
                              int itype, const int* j,
                              const kk::simd_mask<W>& act, localint nlocal,
                              bool eflag, kk::simd<double, W>& afx,
                              kk::simd<double, W>& afy,
                              kk::simd<double, W>& afz, kk::simd<double, W>& ae,
                              kk::simd<double, W>* av) {
  using pd = kk::simd<double, W>;
  const pd dx =
      pd(xi0) - pd::gather([&](int l) { return x(std::size_t(j[l]), 0); });
  const pd dy =
      pd(xi1) - pd::gather([&](int l) { return x(std::size_t(j[l]), 1); });
  const pd dz =
      pd(xi2) - pd::gather([&](int l) { return x(std::size_t(j[l]), 2); });
  const pd rsq = dx * dx + dy * dy + dz * dz;
  int jt[W];
  for (int l = 0; l < W; ++l) jt[l] = type(std::size_t(j[l]));
  const pd cut = pd::gather([&](int l) { return func.cutsq(itype, jt[l]); });
  const auto m = act && (rsq < cut);
  if (m.none()) return;
  // Inactive lanes divide a benign 1.0, never rsq garbage (NaN/UB safety).
  const pd rsq_s = kk::select(m, rsq, pd(1.0));

  pd fpair, epair;
  if constexpr (requires(pd& e) {
                  func.template fpair_ev_simd<W>(rsq_s, itype, jt, e);
                }) {
    // Pack-native functor: whole chunk evaluated in SIMD registers.
    fpair = eflag ? func.template fpair_ev_simd<W>(rsq_s, itype, jt, epair)
                  : func.template fpair_simd<W>(rsq_s, itype, jt);
  } else {
    // Generic fallback: distance math above vectorized, functor per lane.
    for (int l = 0; l < W; ++l) {
      if (!m[l]) continue;
      double e = 0.0, fp;
      if constexpr (requires(double& ee) {
                      func.fpair_ev(rsq_s[l], itype, jt[l], ee);
                    }) {
        fp = eflag ? func.fpair_ev(rsq_s[l], itype, jt[l], e)
                   : func.fpair(rsq_s[l], itype, jt[l]);
      } else {
        fp = func.fpair(rsq_s[l], itype, jt[l]);
        if (eflag) e = func.evdwl(rsq_s[l], itype, jt[l]);
      }
      fpair.set_lane(l, fp);
      epair.set_lane(l, e);
    }
  }
  fpair = kk::select(m, fpair, pd(0.0));
  const pd fx = dx * fpair, fy = dy * fpair, fz = dz * fpair;
  afx += fx;
  afy += fy;
  afz += fz;
  if constexpr (!FULL) {
    for (int l = 0; l < W; ++l) {
      if (!m[l]) continue;
      facc.add(std::size_t(j[l]), 0, -fx[l]);
      facc.add(std::size_t(j[l]), 1, -fy[l]);
      facc.add(std::size_t(j[l]), 2, -fz[l]);
    }
  }
  if (eflag) {
    epair = kk::select(m, epair, pd(0.0));
    pd factor;
    if constexpr (FULL) {
      factor = pd(0.5);
    } else if constexpr (NEWTON) {
      factor = pd(1.0);
    } else {
      kk::simd_mask<W> owned;
      for (int l = 0; l < W; ++l) owned.set(l, j[l] < nlocal);
      factor = kk::select(owned, pd(1.0), pd(0.5));
    }
    ae += factor * epair;
    av[0] += factor * (dx * fx);
    av[1] += factor * (dy * fy);
    av[2] += factor * (dz * fz);
    av[3] += factor * (dx * fy);
    av[4] += factor * (dx * fz);
    av[5] += factor * (dy * fz);
  }
}

/// Packed neighbor-row walk: a full-width main loop (hoisted all-true mask,
/// unpadded j loads — the structure the compiler turns into straight-line
/// vector code) plus one lane-padded masked remainder chunk. Pack
/// accumulators persist across the whole row and horizontally reduce once
/// at the end.
template <int W, bool FULL, bool NEWTON, class XView, class FAcc, class TView,
          class NeighView, class Functor>
inline void pair_row_packed(const XView& x, const FAcc& facc,
                            const TView& type, const NeighView& neigh,
                            const Functor& func, std::size_t i, int jnum,
                            localint nlocal, bool eflag, double& fxi,
                            double& fyi, double& fzi, EV& ev) {
  if (jnum <= 0) return;
  using pd = kk::simd<double, W>;
  const double xi0 = x(i, 0), xi1 = x(i, 1), xi2 = x(i, 2);
  const int itype = type(i);
  const kk::simd_mask<W> all(true);
  pd afx, afy, afz, ae;
  pd av[6];
  int j[W];
  const int nfull = jnum & ~(W - 1);
  for (int jj = 0; jj < nfull; jj += W) {
    for (int l = 0; l < W; ++l) j[l] = neigh(i, std::size_t(jj + l));
    pair_chunk_packed<W, FULL, NEWTON>(x, facc, type, func, i, xi0, xi1, xi2,
                                       itype, j, all, nlocal, eflag, afx, afy,
                                       afz, ae, av);
  }
  if (nfull < jnum) {
    const int rem = jnum - nfull;
    for (int l = 0; l < rem; ++l) j[l] = neigh(i, std::size_t(nfull + l));
    for (int l = rem; l < W; ++l) j[l] = j[0];  // pad with a valid index
    pair_chunk_packed<W, FULL, NEWTON>(
        x, facc, type, func, i, xi0, xi1, xi2, itype, j,
        kk::simd_mask<W>::first(rem), nlocal, eflag, afx, afy, afz, ae, av);
  }
  fxi += kk::reduce_sum(afx);
  fyi += kk::reduce_sum(afy);
  fzi += kk::reduce_sum(afz);
  if (eflag) {
    ev.evdwl += kk::reduce_sum(ae);
    for (int k = 0; k < 6; ++k) ev.v[k] += kk::reduce_sum(av[k]);
  }
}

}  // namespace detail

/// Atom-parallel kernel: one work item per atom, serial loop over neighbors.
template <class Space, bool FULL, bool NEWTON, class Functor>
EV pair_compute_atom(const std::string& name, Atom& atom,
                     const NeighborList& list, const Functor& func,
                     kk::ScatterMode scatter, bool eflag) {
  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto type = atom.k_type.view<Space>();
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();
  const localint nlocal = atom.nlocal;

  kk::ScatterView<double, 2, Space> fscatter(f, scatter);
  auto facc = fscatter.access();

  const bool use_simd = kk::simd_enabled();
  if (use_simd) kk::simdstats::count_launch(name);

  EV total;
  const auto row = [=](std::size_t i, EV& ev) {
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    const int jnum = numneigh(i);
    if (use_simd) {
      detail::pair_row_packed<kk::native_simd_width, FULL, NEWTON>(
          x, facc, type, neigh, func, i, jnum, nlocal, eflag, fxi, fyi, fzi,
          ev);
    } else {
      for (int jj = 0; jj < jnum; ++jj) {
        const int j = neigh(i, std::size_t(jj));
        detail::pair_accumulate<FULL, NEWTON>(x, facc, type, func, i, j, nlocal,
                                              eflag, fxi, fyi, fzi, ev);
      }
    }
    facc.add(i, 0, fxi);
    facc.add(i, 1, fyi);
    facc.add(i, 2, fzi);
  };
  if (eflag) {
    kk::parallel_reduce(name, kk::RangePolicy<Space>(0, std::size_t(list.inum)),
                        row, total);
  } else {
    // No tallies requested: plain parallel_for, no reduction machinery.
    kk::parallel_for(name, kk::RangePolicy<Space>(0, std::size_t(list.inum)),
                     [=](std::size_t i) {
                       EV unused;
                       row(i, unused);
                     });
  }
  fscatter.contribute();
  atom.modified<Space>(F_MASK);
  return total;
}

/// Atom-parallel kernel over an explicit sublist of owned rows, operating on
/// raw pre-synced views. Performs NO DualView sync/modify bookkeeping — the
/// caller orchestrates flags on its own thread — which makes this variant
/// safe to run inside an asynchronous kk::DeviceInstance task (the
/// comm/compute-overlapped force phase, docs/EXECUTION_MODEL.md). Returns
/// the energy/virial contribution of the sublist rows.
template <class Space, bool FULL, bool NEWTON, class XView, class FView,
          class TView, class NeighView, class NumView, class SubView,
          class Functor>
EV pair_compute_sublist_views(const std::string& name, const XView& x,
                              const FView& f, const TView& type,
                              const NeighView& neigh, const NumView& numneigh,
                              const SubView& sublist, std::size_t nsub,
                              localint nlocal, const Functor& func,
                              kk::ScatterMode scatter, bool eflag) {
  kk::ScatterView<double, 2, Space> fscatter(f, scatter);
  auto facc = fscatter.access();
  const bool use_simd = kk::simd_enabled();
  if (use_simd) kk::simdstats::count_launch(name);
  EV total;
  const auto row = [=](std::size_t s, EV& ev) {
    const std::size_t i = std::size_t(sublist(s));
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    const int jnum = numneigh(i);
    if (use_simd) {
      detail::pair_row_packed<kk::native_simd_width, FULL, NEWTON>(
          x, facc, type, neigh, func, i, jnum, nlocal, eflag, fxi, fyi, fzi,
          ev);
    } else {
      for (int jj = 0; jj < jnum; ++jj) {
        const int j = neigh(i, std::size_t(jj));
        detail::pair_accumulate<FULL, NEWTON>(x, facc, type, func, i, j, nlocal,
                                              eflag, fxi, fyi, fzi, ev);
      }
    }
    facc.add(i, 0, fxi);
    facc.add(i, 1, fyi);
    facc.add(i, 2, fzi);
  };
  if (eflag) {
    kk::parallel_reduce(name, kk::RangePolicy<Space>(0, nsub), row, total);
  } else {
    kk::parallel_for(name, kk::RangePolicy<Space>(0, nsub), [=](std::size_t s) {
      EV unused;
      row(s, unused);
    });
  }
  fscatter.contribute();
  return total;
}

/// Team-parallel kernel: one team per atom, neighbor loop distributed over
/// (logical) vector lanes — exposes enough concurrency to saturate a GPU on
/// small systems (§4.1, Fig. 2a).
template <class Space, bool FULL, bool NEWTON, class Functor>
EV pair_compute_team(const std::string& name, Atom& atom,
                     const NeighborList& list, const Functor& func,
                     kk::ScatterMode scatter, int vector_length, bool eflag) {
  atom.sync<Space>(X_MASK | TYPE_MASK | F_MASK);
  auto x = atom.k_x.view<Space>();
  auto f = atom.k_f.view<Space>();
  auto type = atom.k_type.view<Space>();
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<Space>();
  l.k_numneigh.sync<Space>();
  auto neigh = l.k_neighbors.view<Space>();
  auto numneigh = l.k_numneigh.view<Space>();
  const localint nlocal = atom.nlocal;

  kk::ScatterView<double, 2, Space> fscatter(f, scatter);
  auto facc = fscatter.access();

  const bool use_simd = kk::simd_enabled();
  if (use_simd) kk::simdstats::count_launch(name);

  EV total;
  kk::TeamPolicy<Space> policy(std::size_t(list.inum), 1, vector_length);
  kk::parallel_reduce(
      name, policy,
      [=](const kk::TeamMember& member, EV& ev) {
        const std::size_t i = member.league_rank();
        const int jnum = numneigh(i);
        // Per-lane partial forces on atom i reduced across the vector range.
        double fxi = 0.0, fyi = 0.0, fzi = 0.0;
        EV ev_local;
        const double xi0 = x(i, 0), xi1 = x(i, 1), xi2 = x(i, 2);
        const int itype = type(i);
        // Single-source vector level: W = native width with SIMD on, 1 off.
        kk::vector_for(
            kk::ThreadVectorRange(member, std::size_t(jnum)),
            [&](auto lanes) {
              constexpr int W = decltype(lanes)::width;
              using pd = kk::simd<double, W>;
              int j[W];
              j[0] = neigh(i, lanes.index(0));  // lane 0 is always active
              for (int l = 1; l < W; ++l)
                j[l] = lanes.mask[l] ? neigh(i, lanes.index(l)) : j[0];
              pd afx, afy, afz, ae;
              pd av[6];
              detail::pair_chunk_packed<W, FULL, NEWTON>(
                  x, facc, type, func, i, xi0, xi1, xi2, itype, j, lanes.mask,
                  nlocal, eflag, afx, afy, afz, ae, av);
              fxi += kk::reduce_sum(afx);
              fyi += kk::reduce_sum(afy);
              fzi += kk::reduce_sum(afz);
              if (eflag) {
                ev_local.evdwl += kk::reduce_sum(ae);
                for (int k = 0; k < 6; ++k)
                  ev_local.v[k] += kk::reduce_sum(av[k]);
              }
            });
        member.team_barrier();
        facc.add(i, 0, fxi);
        facc.add(i, 1, fyi);
        facc.add(i, 2, fzi);
        ev += ev_local;
      },
      total);
  fscatter.contribute();
  atom.modified<Space>(F_MASK);
  return total;
}

/// Runtime-configured dispatcher over list style, newton flag, parallelism.
template <class Space, class Functor>
EV pair_compute_dispatch(const std::string& name, Atom& atom,
                         const NeighborList& list, const Functor& func,
                         const PairComputeConfig& cfg) {
  const bool full = list.style == NeighStyle::Full;
  const bool newton = list.newton;
  if (cfg.parallelism == PairParallelism::Atom) {
    if (full)
      return pair_compute_atom<Space, true, false>(name, atom, list, func,
                                                   cfg.scatter, cfg.eflag);
    if (newton)
      return pair_compute_atom<Space, false, true>(name, atom, list, func,
                                                   cfg.scatter, cfg.eflag);
    return pair_compute_atom<Space, false, false>(name, atom, list, func,
                                                  cfg.scatter, cfg.eflag);
  }
  if (full)
    return pair_compute_team<Space, true, false>(
        name, atom, list, func, cfg.scatter, cfg.vector_length, cfg.eflag);
  if (newton)
    return pair_compute_team<Space, false, true>(
        name, atom, list, func, cfg.scatter, cfg.vector_length, cfg.eflag);
  return pair_compute_team<Space, false, false>(
      name, atom, list, func, cfg.scatter, cfg.vector_length, cfg.eflag);
}

}  // namespace mlk
