// pair_style eam/kk — Kokkos EAM, dual-instantiated for Host and Device.
//
// Mirrors PairEAMKokkos in LAMMPS (paper Fig. 1): density kernel on the
// execution space, DualView-mediated sync of the embedding derivative to the
// host for the ghost forward communication, then the force kernel back on
// the execution space.
#pragma once

#include "pair/pair_eam.hpp"

namespace mlk {

template <class Space>
class PairEAMKokkos : public PairEAM {
 public:
  PairEAMKokkos();
  void compute(Simulation& sim, bool eflag) override;
};

void register_pair_eam_kokkos();

}  // namespace mlk
