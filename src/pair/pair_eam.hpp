// pair_style eam — Embedded Atom Method (Daw & Baskes), the many-body
// potential of the paper's Fig. 1 whose Kokkos port (PairEAMKokkos) requires
// additional per-atom communication mid-force-evaluation.
//
//   E = sum_i F(rho_i) + 1/2 sum_{i != j} phi(r_ij)
//   rho_i = sum_j rho_a(r_ij)
//
// The paper's runs read tabulated alloy files; no such data ships here, so
// this style uses a smooth analytic parameterization with the same
// computational structure (density pass -> embedding derivative ->
// ghost-fp forward communication -> force pass):
//   rho_a(r) = (rc^2 - r^2)^2 / rc^4                (smooth to zero at rc)
//   F(rho)   = -A sqrt(rho)
//   phi(r)   = B (rc^2 - r^2)^2 / rc^4
#pragma once

#include "engine/pair.hpp"
#include "kokkos/dualview.hpp"

namespace mlk {

class PairEAM : public Pair {
 public:
  PairEAM();

  /// settings: [cutoff]
  void settings(const std::vector<std::string>& args) override;
  /// coeff: * * <A> <B> [cut]
  void coeff(const std::vector<std::string>& args) override;
  void init(Simulation& sim) override;
  void compute(Simulation& sim, bool eflag) override;
  double cutoff() const override { return cut_; }

  /// EAM needs every neighbor of every atom for the density sum.
  NeighStyle neigh_style() const override { return NeighStyle::Full; }
  bool newton() const override { return false; }

  // Analytic kernel pieces (shared with the Kokkos variant and tests).
  static double rho_a(double rsq, double cutsq);
  static double drho_a(double rsq, double cutsq);  // d(rho_a)/dr / r
  static double phi(double rsq, double cutsq, double B);
  static double dphi(double rsq, double cutsq, double B);  // dphi/dr / r
  static double embed(double rho, double A);
  static double dembed(double rho, double A);

  /// Per-atom embedding derivative F'(rho_i), exposed for tests.
  const kk::DualView<double, 1>& fp() const { return k_fp_; }

 protected:
  double cut_ = 2.5;
  double A_ = 1.0;
  double B_ = 1.0;
  kk::DualView<double, 1> k_rho_;
  kk::DualView<double, 1> k_fp_;
  void ensure_peratom(localint nall);
};

void register_pair_eam();

}  // namespace mlk
