#include "minilammps.hpp"

#include <mutex>

#include "tools/observability.hpp"

namespace mlk {

// Registration hooks exported by each style translation unit.
void register_fix_nve();
void register_fix_langevin();
void register_compute_temp();
void register_compute_pressure();
void register_pair_lj_cut();
void register_pair_lj_cut_kokkos();
void register_pair_eam();
void register_pair_eam_kokkos();
void register_pair_table();
void register_pair_snap();
void register_pair_snap_kokkos();
void register_pair_reaxff_lite();
void register_pair_lj_cut_coul_cut();
void register_fix_nvt();
void register_compute_rdf();
void register_compute_msd();
void register_dump_xyz();
void register_pair_external();
void register_compute_snap_bispectrum();
void register_fix_langevin_kokkos();

void init_all() {
  // call_once, not a bare bool: the batch server constructs Simulations from
  // multiple threads, and a second thread racing init_all must block until
  // registration finished rather than proceed against a half-filled registry.
  static std::once_flag once;
  std::call_once(once, [] {
  tools::init_from_env();  // MLK_PROFILE/MLK_TRACE/MLK_TELEMETRY hooks
  register_fix_nve();
  register_fix_langevin();
  register_compute_temp();
  register_compute_pressure();
  register_pair_lj_cut();
  register_pair_lj_cut_kokkos();
  register_pair_eam();
  register_pair_eam_kokkos();
  register_pair_table();
  register_pair_snap();
  register_pair_snap_kokkos();
  register_pair_reaxff_lite();
  register_pair_lj_cut_coul_cut();
  register_fix_nvt();
  register_compute_rdf();
  register_compute_msd();
  register_dump_xyz();
  register_pair_external();
  register_compute_snap_bispectrum();
  register_fix_langevin_kokkos();
  });
}

}  // namespace mlk
