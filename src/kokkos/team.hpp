// Hierarchical (team) parallelism (§3.3): TeamPolicy, TeamMember,
// TeamThreadRange / ThreadVectorRange / TeamVectorRange nested loops, and
// team scratch memory (the software-managed cache of §4.4).
//
// Emulation model: each *team* is one unit of pool work — leagues are
// distributed across pool threads; within a team, *thread* lanes execute
// sequentially on the owning pool thread (the standard serial-team
// emulation). The *vector* level is real: vector_for maps ThreadVectorRange
// iterations onto kk::simd lanes (docs/VECTORIZATION.md) — native pack
// width with SIMD on, width 1 (the scalar reference) with it off — so
// single-source kernels vectorize without per-kernel intrinsics. The plain
// parallel_for over a ThreadVectorRange remains the scalar per-lane loop.
// The logical team/vector sizes are preserved so that the perf model can
// price occupancy and convergence, and so algorithms are written exactly
// as they would be for a GPU.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "kokkos/core.hpp"
#include "kokkos/simd.hpp"

namespace kk {

template <class Space = DefaultExecutionSpace>
struct TeamPolicy {
  using space = Space;
  std::size_t league_size = 0;
  int team_size = 1;
  int vector_length = 1;
  std::size_t scratch_bytes = 0;

  TeamPolicy(std::size_t league, int team, int vec = 1)
      : league_size(league), team_size(team), vector_length(vec) {}

  TeamPolicy& set_scratch_size(std::size_t bytes) {
    scratch_bytes = bytes;
    return *this;
  }
};

class TeamMember {
 public:
  TeamMember(std::size_t league_rank, std::size_t league_size, int team_size,
             int vector_length, char* scratch, std::size_t scratch_bytes)
      : league_rank_(league_rank),
        league_size_(league_size),
        team_size_(team_size),
        vector_length_(vector_length),
        scratch_(scratch),
        scratch_bytes_(scratch_bytes) {}

  std::size_t league_rank() const { return league_rank_; }
  std::size_t league_size() const { return league_size_; }
  int team_rank() const { return 0; }  // serial-team emulation
  int team_size() const { return team_size_; }
  int vector_length() const { return vector_length_; }
  void team_barrier() const {}  // team executes sequentially

  /// Carve `count` elements of T from team scratch (aligned).
  template <class T>
  T* team_scratch(std::size_t count) const {
    const std::size_t align = alignof(T);
    std::size_t off = (scratch_off_ + align - 1) / align * align;
    T* p = reinterpret_cast<T*>(scratch_ + off);
    scratch_off_ = off + count * sizeof(T);
    if (scratch_off_ > scratch_bytes_) return nullptr;  // over-subscribed
    return p;
  }

  std::size_t scratch_bytes() const { return scratch_bytes_; }

 private:
  std::size_t league_rank_;
  std::size_t league_size_;
  int team_size_;
  int vector_length_;
  char* scratch_;
  std::size_t scratch_bytes_;
  mutable std::size_t scratch_off_ = 0;
};

// Nested iteration ranges -----------------------------------------------

struct TeamThreadRange {
  const TeamMember& m;
  std::size_t begin, end;
  TeamThreadRange(const TeamMember& mem, std::size_t n)
      : m(mem), begin(0), end(n) {}
  TeamThreadRange(const TeamMember& mem, std::size_t b, std::size_t e)
      : m(mem), begin(b), end(e) {}
};

struct ThreadVectorRange {
  const TeamMember& m;
  std::size_t begin, end;
  ThreadVectorRange(const TeamMember& mem, std::size_t n)
      : m(mem), begin(0), end(n) {}
  ThreadVectorRange(const TeamMember& mem, std::size_t b, std::size_t e)
      : m(mem), begin(b), end(e) {}
};

struct TeamVectorRange {
  const TeamMember& m;
  std::size_t begin, end;
  TeamVectorRange(const TeamMember& mem, std::size_t n)
      : m(mem), begin(0), end(n) {}
};

template <class Range, class F>
void parallel_for(const Range& r, const F& f) {
  for (std::size_t i = r.begin; i < r.end; ++i) f(i);
}

template <class Range, class F, class T>
void parallel_reduce(const Range& r, const F& f, T& sum) {
  T local = T(0);
  for (std::size_t i = r.begin; i < r.end; ++i) f(i, local);
  sum = local;
}

/// Team-level exclusive scan, Kokkos convention (update holds the prefix
/// when final == true; callable must add its own contribution).
template <class Range, class F, class T>
void parallel_scan(const Range& r, const F& f, T& total) {
  T local = T(0);
  for (std::size_t i = r.begin; i < r.end; ++i) f(i, local, true);
  total = local;
}

/// Execute `f(member)` once per vector lane collapsed — Kokkos single().
template <class F>
void single(const TeamMember&, const F& f) {
  f();
}

// Vector-lane dispatch --------------------------------------------------

/// One block of W logical vector lanes handed to a vector_for body: lanes
/// cover indices [base, base+W), with `mask` deactivating lanes past the
/// range end (the remainder block). `width == 1` is the scalar reference
/// instantiation.
template <int W>
struct LaneBlock {
  static constexpr int width = W;
  std::size_t base;
  simd_mask<W> mask;
  std::size_t index(int lane) const { return base + std::size_t(lane); }
};

/// Iterate a range W lanes at a time at a fixed width; `f` receives a
/// LaneBlock<W> per block, the last one remainder-masked.
template <int W, class Range, class F>
void vector_for_width(const Range& r, const F& f) {
  std::size_t i = r.begin;
  for (; i + W <= r.end; i += W) f(LaneBlock<W>{i, simd_mask<W>(true)});
  if (i < r.end) f(LaneBlock<W>{i, simd_mask<W>::first(int(r.end - i))});
}

/// Single-source SIMD dispatch over the vector-lane level: the body is a
/// generic callable `f(auto lane_block)` written against kk::simd packs of
/// `decltype(lane_block)::width` lanes. With SIMD on (`MLK_SIMD`, `simd on`)
/// it instantiates at the native pack width; off, at width 1 — where every
/// pack op is one scalar op in the original order, i.e. the scalar
/// reference path. See docs/VECTORIZATION.md for the porting recipe.
template <class Range, class F>
void vector_for(const Range& r, const F& f) {
  if (simd_enabled())
    vector_for_width<native_simd_width>(r, f);
  else
    vector_for_width<1>(r, f);
}

// League dispatch --------------------------------------------------------

template <class Space, class F>
void parallel_for(const std::string& name, const TeamPolicy<Space>& p,
                  const F& f) {
  profiling::ScopedKernel ev(
      profiling::KernelType::ParallelFor, name, Space::is_device,
      p.league_size * std::size_t(p.team_size) * std::size_t(p.vector_length));
  if (p.league_size == 0) return;

  if constexpr (Space::is_device) {
    auto& pool = ThreadPool::instance();
    const int nmax = pool.concurrency();
    // One scratch arena per pool participant.
    std::vector<std::unique_ptr<char[]>> scratch;
    scratch.resize(std::size_t(nmax));
    if (p.scratch_bytes > 0)
      for (auto& s : scratch) s = std::make_unique<char[]>(p.scratch_bytes);
    pool.parallel(p.league_size, [&](std::size_t b, std::size_t e, int rank) {
      profiling::ScopedWorkerChunk wc(ev.id(), rank, b, e);
      char* sp = p.scratch_bytes ? scratch[std::size_t(rank)].get() : nullptr;
      for (std::size_t lr = b; lr < e; ++lr) {
        TeamMember member(lr, p.league_size, p.team_size, p.vector_length, sp,
                          p.scratch_bytes);
        f(member);
      }
    });
  } else {
    std::unique_ptr<char[]> scratch;
    if (p.scratch_bytes > 0) scratch = std::make_unique<char[]>(p.scratch_bytes);
    for (std::size_t lr = 0; lr < p.league_size; ++lr) {
      TeamMember member(lr, p.league_size, p.team_size, p.vector_length,
                        scratch.get(), p.scratch_bytes);
      f(member);
    }
  }
}

/// League-level reduction: f(member, T&).
template <class Space, class F, class T>
void parallel_reduce(const std::string& name, const TeamPolicy<Space>& p,
                     const F& f, T& sum) {
  profiling::ScopedKernel ev(profiling::KernelType::ParallelReduce, name,
                             Space::is_device,
                             p.league_size * std::size_t(p.team_size));
  T result = T(0);
  if constexpr (Space::is_device) {
    auto& pool = ThreadPool::instance();
    const int nmax = pool.concurrency();
    std::vector<T> partial;
    partial.assign(std::size_t(nmax), T(0));
    std::vector<std::unique_ptr<char[]>> scratch;
    scratch.resize(std::size_t(nmax));
    if (p.scratch_bytes > 0)
      for (auto& s : scratch) s = std::make_unique<char[]>(p.scratch_bytes);
    pool.parallel(p.league_size, [&](std::size_t b, std::size_t e, int rank) {
      profiling::ScopedWorkerChunk wc(ev.id(), rank, b, e);
      char* sp = p.scratch_bytes ? scratch[std::size_t(rank)].get() : nullptr;
      T local = T(0);
      for (std::size_t lr = b; lr < e; ++lr) {
        TeamMember member(lr, p.league_size, p.team_size, p.vector_length, sp,
                          p.scratch_bytes);
        f(member, local);
      }
      partial[std::size_t(rank)] += local;
    });
    for (const T& v : partial) result += v;
  } else {
    std::unique_ptr<char[]> scratch;
    if (p.scratch_bytes > 0) scratch = std::make_unique<char[]>(p.scratch_bytes);
    for (std::size_t lr = 0; lr < p.league_size; ++lr) {
      TeamMember member(lr, p.league_size, p.team_size, p.vector_length,
                        scratch.get(), p.scratch_bytes);
      f(member, result);
    }
  }
  sum = result;
}

}  // namespace kk
