// kk::DualView — paired host/device views with modify/sync tracking (§3.2).
//
// The host view is always LayoutRight so that legacy pointer-based LAMMPS
// code can alias its allocation (x[i][0..2] row-major); the device view uses
// the Device default layout (LayoutLeft), so syncing really transposes, just
// as a GPU Kokkos build transposes between CPU mirrors and coalesced device
// arrays. `sync<Space>()` is a no-op unless the *other* space holds newer
// data — callers simply declare what they touch, no global knowledge of
// transfer patterns is needed (the flag mechanism the paper describes).
#pragma once

#include "kokkos/view.hpp"

namespace kk {

template <class T, int Rank>
class DualView {
 public:
  using host_view_type = View<T, Rank, LayoutRight>;
  using device_view_type = View<T, Rank, typename Device::default_layout>;

  DualView() = default;

  explicit DualView(std::string label, std::size_t n0 = 0, std::size_t n1 = 0,
                    std::size_t n2 = 0, std::size_t n3 = 0)
      : h_view(label + "::host", n0, n1, n2, n3),
        d_view(label + "::device", n0, n1, n2, n3) {}

  template <class Space>
  auto view() const {
    if constexpr (Space::is_device)
      return d_view;
    else
      return h_view;
  }

  /// Declare that the Space copy has been modified (is now the newest).
  template <class Space>
  void modify() {
    if constexpr (Space::is_device)
      device_modified_ = true;
    else
      host_modified_ = true;
  }

  /// True if the other space has newer data than Space.
  template <class Space>
  bool need_sync() const {
    if constexpr (Space::is_device)
      return host_modified_;
    else
      return device_modified_;
  }

  /// Bring the Space copy up to date; transfers (and counts a transfer)
  /// only when actually stale.
  template <class Space>
  void sync() {
    const std::uint64_t bytes = std::uint64_t(h_view.size()) * sizeof(T);
    if constexpr (Space::is_device) {
      if (host_modified_) {
        profiling::ScopedDeepCopy dc("Device", d_view.label(), "Host",
                                     h_view.label(), bytes);
        deep_copy(d_view, h_view);
        host_modified_ = false;
        ++transfer_count_;
      }
    } else {
      if (device_modified_) {
        profiling::ScopedDeepCopy dc("Host", h_view.label(), "Device",
                                     d_view.label(), bytes);
        deep_copy(h_view, d_view);
        device_modified_ = false;
        ++transfer_count_;
      }
    }
  }

  /// Number of actual host<->device copies performed (test/bench hook: the
  /// paper's claim is that flag-driven sync eliminates redundant transfers).
  std::size_t transfer_count() const { return transfer_count_; }

  std::size_t extent(int r) const { return h_view.extent(r); }

  bool is_allocated() const { return h_view.is_allocated(); }

  /// Discard contents, reallocate both copies, clear flags.
  void realloc(std::size_t n0, std::size_t n1 = 0, std::size_t n2 = 0,
               std::size_t n3 = 0) {
    h_view.realloc(n0, n1, n2, n3);
    d_view.realloc(n0, n1, n2, n3);
    host_modified_ = device_modified_ = false;
  }

  /// Grow/shrink the leading extent preserving contents of the up-to-date
  /// copy, then mark that copy modified so the other will sync.
  void resize_preserve(std::size_t n0) {
    if (device_modified_ && !host_modified_) {
      d_view.resize_preserve(n0);
      View<T, Rank, LayoutRight> nh(h_view.label(), n0,
                                    Rank > 1 ? h_view.extent(1) : 0,
                                    Rank > 2 ? h_view.extent(2) : 0,
                                    Rank > 3 ? h_view.extent(3) : 0);
      h_view = nh;
    } else {
      h_view.resize_preserve(n0);
      device_view_type nd(d_view.label(), n0, Rank > 1 ? d_view.extent(1) : 0,
                          Rank > 2 ? d_view.extent(2) : 0,
                          Rank > 3 ? d_view.extent(3) : 0);
      d_view = nd;
      if (host_modified_ || !device_modified_) {
        // host copy is authoritative: refresh device
        deep_copy(d_view, h_view);
      }
    }
  }

  host_view_type h_view;
  device_view_type d_view;

 private:
  bool host_modified_ = false;
  bool device_modified_ = false;
  std::size_t transfer_count_ = 0;
};

}  // namespace kk
