// kk::View — the minikokkos multi-dimensional array.
//
// Mirrors Kokkos::View semantics that the paper relies on (§3.2):
//  * reference-counted shared ownership (views are cheap handles),
//  * compile-time Layout (LayoutRight = C order / host default,
//    LayoutLeft = Fortran order / device default) so that the same code
//    transparently gets cache-friendly layouts on CPU and coalescing-friendly
//    layouts on the simulated GPU,
//  * interoperability with raw pointers (data()) so legacy array code can
//    alias a host View, as LAMMPS's AtomVecAtomic does (paper Fig. 1).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>

#include "kokkos/profiling.hpp"

namespace kk {

struct LayoutRight {};  // row-major, last index fastest (host default)
struct LayoutLeft {};   // column-major, first index fastest (device default)

/// Execution/memory space tags. All memory is physically host DRAM in this
/// simulation; the tags select default layouts and dispatch backends.
struct Host {
  static constexpr bool is_device = false;
  static const char* name() { return "Host"; }
  using default_layout = LayoutRight;
};
struct Device {
  static constexpr bool is_device = true;
  static const char* name() { return "Device"; }
  using default_layout = LayoutLeft;
};

using DefaultExecutionSpace = Device;
using DefaultHostExecutionSpace = Host;

/// Memory-space attribution for profiling tools. View is parameterized on
/// Layout, not Space; the space-defaulted aliases pick LayoutLeft for Device
/// and LayoutRight for Host (as does DualView), so the layout is the memory
/// space's fingerprint in this simulation.
template <class Layout>
constexpr const char* layout_space_name() {
  return std::is_same_v<Layout, LayoutLeft> ? "Device" : "Host";
}

template <class T, int Rank, class Layout = LayoutRight>
class View {
  static_assert(Rank >= 1 && Rank <= 4, "View supports rank 1..4");

 public:
  using value_type = T;
  using layout = Layout;
  static constexpr int rank = Rank;

  View() = default;

  /// Allocating constructor; extents beyond Rank must be omitted.
  explicit View(std::string label, std::size_t n0 = 0, std::size_t n1 = 0,
                std::size_t n2 = 0, std::size_t n3 = 0)
      : label_(std::move(label)) {
    std::size_t e[4] = {n0, n1, n2, n3};
    for (int r = 0; r < Rank; ++r) ext_[r] = e[r];
    allocate();
  }

  const std::string& label() const { return label_; }

  std::size_t extent(int r) const {
    assert(r >= 0 && r < Rank);
    return ext_[r];
  }

  std::size_t size() const {
    std::size_t s = 1;
    for (int r = 0; r < Rank; ++r) s *= ext_[r];
    return s;
  }

  bool is_allocated() const { return static_cast<bool>(data_); }

  T* data() const { return data_.get(); }

  // ---- element access -------------------------------------------------
  T& operator()(std::size_t i0) const {
    static_assert(Rank == 1);
    assert(i0 < ext_[0]);
    return data_[i0];
  }
  T& operator()(std::size_t i0, std::size_t i1) const {
    static_assert(Rank == 2);
    assert(i0 < ext_[0] && i1 < ext_[1]);
    return data_[i0 * str_[0] + i1 * str_[1]];
  }
  T& operator()(std::size_t i0, std::size_t i1, std::size_t i2) const {
    static_assert(Rank == 3);
    assert(i0 < ext_[0] && i1 < ext_[1] && i2 < ext_[2]);
    return data_[i0 * str_[0] + i1 * str_[1] + i2 * str_[2]];
  }
  T& operator()(std::size_t i0, std::size_t i1, std::size_t i2,
                std::size_t i3) const {
    static_assert(Rank == 4);
    assert(i0 < ext_[0] && i1 < ext_[1] && i2 < ext_[2] && i3 < ext_[3]);
    return data_[i0 * str_[0] + i1 * str_[1] + i2 * str_[2] + i3 * str_[3]];
  }

  /// Rank-1 convenience (matches Kokkos operator[]).
  T& operator[](std::size_t i0) const {
    static_assert(Rank == 1);
    return (*this)(i0);
  }

  /// Reallocate with new extents, discarding contents (Kokkos::realloc).
  void realloc(std::size_t n0, std::size_t n1 = 0, std::size_t n2 = 0,
               std::size_t n3 = 0) {
    std::size_t e[4] = {n0, n1, n2, n3};
    for (int r = 0; r < Rank; ++r) ext_[r] = e[r];
    allocate();
  }

  /// Resize preserving the leading-extent prefix of contents
  /// (Kokkos::resize for the common grow-the-first-dimension case).
  void resize_preserve(std::size_t n0) {
    View other(label_, n0, Rank > 1 ? ext_[1] : 0, Rank > 2 ? ext_[2] : 0,
               Rank > 3 ? ext_[3] : 0);
    const std::size_t keep0 = n0 < ext_[0] ? n0 : ext_[0];
    copy_prefix(other, keep0);
    *this = other;
  }

  void fill(const T& v) const {
    T* p = data_.get();
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) p[i] = v;
  }

 private:
  void allocate() {
    compute_strides();
    const std::size_t n = size();
    if (n == 0) {
      data_ = nullptr;
      return;
    }
    T* raw = new T[n]();
    const std::uint64_t bytes = std::uint64_t(n) * sizeof(T);
    profiling::allocate_data(layout_space_name<Layout>(), label_, raw, bytes);
    // The deallocate event must fire when the *allocation* dies (last handle
    // released), not when this View handle does — hence the custom deleter.
    data_ = std::shared_ptr<T[]>(raw, [label = label_, bytes](T* p) {
      profiling::deallocate_data(layout_space_name<Layout>(), label, p, bytes);
      delete[] p;
    });
  }

  void compute_strides() {
    if constexpr (std::is_same_v<Layout, LayoutRight>) {
      std::size_t s = 1;
      for (int r = Rank - 1; r >= 0; --r) {
        str_[r] = s;
        s *= ext_[r];
      }
    } else {
      std::size_t s = 1;
      for (int r = 0; r < Rank; ++r) {
        str_[r] = s;
        s *= ext_[r];
      }
    }
  }

  void copy_prefix(View& dst, std::size_t keep0) const {
    if (!data_ || !dst.data_) return;
    // Element-wise copy over the preserved index space (layouts may differ
    // in stride pattern once extents change, so memcpy is not safe).
    if constexpr (Rank == 1) {
      for (std::size_t i = 0; i < keep0; ++i) dst(i) = (*this)(i);
    } else if constexpr (Rank == 2) {
      for (std::size_t i = 0; i < keep0; ++i)
        for (std::size_t j = 0; j < ext_[1]; ++j) dst(i, j) = (*this)(i, j);
    } else if constexpr (Rank == 3) {
      for (std::size_t i = 0; i < keep0; ++i)
        for (std::size_t j = 0; j < ext_[1]; ++j)
          for (std::size_t k = 0; k < ext_[2]; ++k)
            dst(i, j, k) = (*this)(i, j, k);
    } else {
      for (std::size_t i = 0; i < keep0; ++i)
        for (std::size_t j = 0; j < ext_[1]; ++j)
          for (std::size_t k = 0; k < ext_[2]; ++k)
            for (std::size_t l = 0; l < ext_[3]; ++l)
              dst(i, j, k, l) = (*this)(i, j, k, l);
    }
  }

  std::shared_ptr<T[]> data_;
  std::size_t ext_[Rank] = {};
  std::size_t str_[Rank] = {};
  std::string label_;
};

/// deep_copy between views of identical extents (layouts may differ) —
/// the host<->device transfer primitive underlying DualView::sync.
template <class T, int Rank, class LA, class LB>
void deep_copy(const View<T, Rank, LA>& dst, const View<T, Rank, LB>& src) {
  for (int r = 0; r < Rank; ++r) assert(dst.extent(r) == src.extent(r));
  if constexpr (Rank == 1) {
    for (std::size_t i = 0; i < src.extent(0); ++i) dst(i) = src(i);
  } else if constexpr (Rank == 2) {
    for (std::size_t i = 0; i < src.extent(0); ++i)
      for (std::size_t j = 0; j < src.extent(1); ++j) dst(i, j) = src(i, j);
  } else if constexpr (Rank == 3) {
    for (std::size_t i = 0; i < src.extent(0); ++i)
      for (std::size_t j = 0; j < src.extent(1); ++j)
        for (std::size_t k = 0; k < src.extent(2); ++k)
          dst(i, j, k) = src(i, j, k);
  } else {
    for (std::size_t i = 0; i < src.extent(0); ++i)
      for (std::size_t j = 0; j < src.extent(1); ++j)
        for (std::size_t k = 0; k < src.extent(2); ++k)
          for (std::size_t l = 0; l < src.extent(3); ++l)
            dst(i, j, k, l) = src(i, j, k, l);
  }
}

template <class T, int Rank, class L>
void deep_copy(const View<T, Rank, L>& dst, const T& value) {
  dst.fill(value);
}

// Space-defaulted aliases used across the codebase.
template <class T, class Space = DefaultExecutionSpace>
using View1D = View<T, 1, typename Space::default_layout>;
template <class T, class Space = DefaultExecutionSpace>
using View2D = View<T, 2, typename Space::default_layout>;
template <class T, class Space = DefaultExecutionSpace>
using View3D = View<T, 3, typename Space::default_layout>;

}  // namespace kk
