#include "kokkos/threadpool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "kokkos/profiling.hpp"

namespace kk {

namespace {
thread_local int t_rank = 0;
thread_local bool t_in_parallel = false;

int pool_size_from_env() {
  if (const char* s = std::getenv("MLK_NUM_THREADS")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : int(hc);
}
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(pool_size_from_env() - 1);
  return pool;
}

ThreadPool::ThreadPool(int nworkers) {
  workers_.reserve(std::size_t(std::max(nworkers, 0)));
  for (int r = 0; r < nworkers; ++r) {
    workers_.emplace_back([this, r] { worker_loop(r + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::this_thread_rank() { return t_rank; }

void ThreadPool::parallel(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, int)>& body) {
  if (n == 0) return;

  // Nested dispatch: run inline on this participant to avoid deadlock.
  if (t_in_parallel || workers_.empty()) {
    const bool was = t_in_parallel;
    t_in_parallel = true;
    body(0, n, t_rank);
    t_in_parallel = was;
    return;
  }

  // Top-level dispatches from different threads (e.g. two DeviceInstance
  // stream threads) serialize here — the pool is one device, so concurrent
  // instances share it exactly as concurrent CUDA streams share a GPU's SMs.
  // Without this gate two callers would clobber job_/pending_/epoch_.
  std::lock_guard<std::mutex> dispatch_lk(dispatch_mu_);

  const int nparts = std::min<std::size_t>(std::size_t(size()), n) > 0
                         ? int(std::min<std::size_t>(std::size_t(size()), n))
                         : 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_.body = &body;
    job_.n = n;
    job_.nparts = nparts;
    pending_ = nparts - 1;  // caller handles part 0
    ++epoch_;
  }
  cv_start_.notify_all();

  // Caller executes chunk 0.
  t_in_parallel = true;
  t_rank = 0;
  const std::size_t chunk = (n + std::size_t(nparts) - 1) / std::size_t(nparts);
  body(0, std::min(chunk, n), 0);
  t_in_parallel = false;

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return pending_ == 0; });
  job_.body = nullptr;
}

void ThreadPool::worker_loop(int rank) {
  t_rank = rank;
  profiling::set_thread_name("pool-worker-" + std::to_string(rank));
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, int)>* body = nullptr;
    std::size_t n = 0;
    int nparts = 1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      body = job_.body;
      n = job_.n;
      nparts = job_.nparts;
    }
    if (body && rank < nparts) {
      const std::size_t chunk =
          (n + std::size_t(nparts) - 1) / std::size_t(nparts);
      const std::size_t b = std::min(n, chunk * std::size_t(rank));
      const std::size_t e = std::min(n, b + chunk);
      t_in_parallel = true;
      if (b < e) (*body)(b, e, rank);
      t_in_parallel = false;
    }
    if (rank < nparts) {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace kk
