#include "kokkos/profiling.hpp"

#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace kk::profiling {

namespace {

// ---------------------------------------------------------------------------
// Launch counting: per-thread shards. A shard's mutex is uncontended on the
// owning thread's hot path (only snapshot/reset/merge ever take it from
// another thread), so recording costs one uncontended lock + one hash lookup
// instead of a process-global serialization point. Shards outlive their
// threads (owned by the registry) so counts from finished simmpi rank
// threads still appear in snapshots.
// ---------------------------------------------------------------------------

struct Shard {
  std::mutex mu;
  std::unordered_map<std::string, LaunchStat> stats;
  std::uint64_t total = 0;
  std::uint64_t total_device = 0;
};

struct CountState {
  std::mutex registry_mu;
  std::vector<std::unique_ptr<Shard>> shards;
};

std::atomic<bool> g_count_enabled{true};

// Lock-free aggregate mirrors of the shard totals, for callers that cannot
// afford the shard locks (the telemetry step publisher reads these on the
// wait-free producer path).
std::atomic<std::uint64_t> g_total_relaxed{0};
std::atomic<std::uint64_t> g_total_device_relaxed{0};

// Leaked on purpose: View deallocation events and shard merges can fire from
// static destructors (e.g. cached PotentialStats holding Views); a leaked
// state object keeps every ordering safe.
CountState& count_state() {
  static CountState* s = new CountState;
  return *s;
}

Shard& my_shard() {
  thread_local Shard* tl = nullptr;
  if (!tl) {
    auto owned = std::make_unique<Shard>();
    tl = owned.get();
    auto& cs = count_state();
    std::lock_guard<std::mutex> lk(cs.registry_mu);
    cs.shards.push_back(std::move(owned));
  }
  return *tl;
}

// ---------------------------------------------------------------------------
// Tool registry. The registered set is published as an immutable vector
// behind a shared_ptr so event dispatch never holds the registry lock while
// running tool callbacks.
// ---------------------------------------------------------------------------

using ToolVec = std::vector<std::shared_ptr<Tool>>;

struct ToolState {
  std::mutex mu;
  std::shared_ptr<const ToolVec> tools = std::make_shared<const ToolVec>();
  bool atexit_installed = false;
};

std::atomic<bool> g_have_tools{false};

ToolState& tool_state() {
  static ToolState* s = new ToolState;
  return *s;
}

std::shared_ptr<const ToolVec> current_tools() {
  auto& ts = tool_state();
  std::lock_guard<std::mutex> lk(ts.mu);
  return ts.tools;
}

std::atomic<std::uint64_t> g_next_id{1};

// Per-thread region stack so pop_region can hand tools the region name and
// stay balanced (pops on an empty stack are ignored).
thread_local std::vector<std::string> t_region_stack;

// Thread identity.
std::atomic<int> g_next_track{0};
thread_local int t_track_id = -1;
thread_local int t_tag = -1;

struct TrackNames {
  std::mutex mu;
  std::map<int, std::string> names;
};
TrackNames& track_names() {
  static TrackNames* s = new TrackNames;
  return *s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Launch counting
// ---------------------------------------------------------------------------

bool set_enabled(bool on) {
  return g_count_enabled.exchange(on, std::memory_order_relaxed);
}

bool enabled() { return g_count_enabled.load(std::memory_order_relaxed); }

void record_launch(const std::string& name, bool is_device,
                   std::uint64_t items) {
  if (!g_count_enabled.load(std::memory_order_relaxed)) return;
  g_total_relaxed.fetch_add(1, std::memory_order_relaxed);
  if (is_device) g_total_device_relaxed.fetch_add(1, std::memory_order_relaxed);
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  auto& s = sh.stats[name];
  s.launches++;
  s.total_items += items;
  sh.total++;
  if (is_device) {
    s.device_launches++;
    sh.total_device++;
  }
}

std::uint64_t total_launches_relaxed() {
  return g_total_relaxed.load(std::memory_order_relaxed);
}

std::uint64_t total_device_launches_relaxed() {
  return g_total_device_relaxed.load(std::memory_order_relaxed);
}

std::map<std::string, LaunchStat> snapshot() {
  std::map<std::string, LaunchStat> out;
  auto& cs = count_state();
  std::lock_guard<std::mutex> rk(cs.registry_mu);
  for (auto& sh : cs.shards) {
    std::lock_guard<std::mutex> lk(sh->mu);
    for (const auto& [name, st] : sh->stats) {
      auto& o = out[name];
      o.launches += st.launches;
      o.device_launches += st.device_launches;
      o.total_items += st.total_items;
    }
  }
  return out;
}

std::uint64_t total_launches() {
  std::uint64_t t = 0;
  auto& cs = count_state();
  std::lock_guard<std::mutex> rk(cs.registry_mu);
  for (auto& sh : cs.shards) {
    std::lock_guard<std::mutex> lk(sh->mu);
    t += sh->total;
  }
  return t;
}

std::uint64_t total_device_launches() {
  std::uint64_t t = 0;
  auto& cs = count_state();
  std::lock_guard<std::mutex> rk(cs.registry_mu);
  for (auto& sh : cs.shards) {
    std::lock_guard<std::mutex> lk(sh->mu);
    t += sh->total_device;
  }
  return t;
}

void reset() {
  g_total_relaxed.store(0, std::memory_order_relaxed);
  g_total_device_relaxed.store(0, std::memory_order_relaxed);
  auto& cs = count_state();
  std::lock_guard<std::mutex> rk(cs.registry_mu);
  for (auto& sh : cs.shards) {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->stats.clear();
    sh->total = 0;
    sh->total_device = 0;
  }
}

// ---------------------------------------------------------------------------
// Tool registry
// ---------------------------------------------------------------------------

void register_tool(std::shared_ptr<Tool> tool) {
  if (!tool) return;
  auto& ts = tool_state();
  std::lock_guard<std::mutex> lk(ts.mu);
  auto next = std::make_shared<ToolVec>(*ts.tools);
  next->push_back(std::move(tool));
  ts.tools = std::move(next);
  g_have_tools.store(true, std::memory_order_relaxed);
  if (!ts.atexit_installed) {
    ts.atexit_installed = true;
    std::atexit(finalize_tools);
  }
}

void deregister_tool(const std::shared_ptr<Tool>& tool) {
  auto& ts = tool_state();
  std::lock_guard<std::mutex> lk(ts.mu);
  auto next = std::make_shared<ToolVec>(*ts.tools);
  std::erase(*next, tool);
  g_have_tools.store(!next->empty(), std::memory_order_relaxed);
  ts.tools = std::move(next);
}

bool tooling_active() {
  return g_have_tools.load(std::memory_order_relaxed);
}

void finalize_tools() {
  std::shared_ptr<const ToolVec> tools;
  {
    auto& ts = tool_state();
    std::lock_guard<std::mutex> lk(ts.mu);
    tools = ts.tools;
    ts.tools = std::make_shared<const ToolVec>();
    g_have_tools.store(false, std::memory_order_relaxed);
  }
  for (const auto& t : *tools) t->finalize();
}

// ---------------------------------------------------------------------------
// Event dispatch
// ---------------------------------------------------------------------------

std::uint64_t begin_kernel(KernelType t, const std::string& name, bool device,
                           std::uint64_t items) {
  record_launch(name, device, items);
  if (!tooling_active()) return 0;
  const std::uint64_t kid =
      g_next_id.fetch_add(1, std::memory_order_relaxed);
  auto tools = current_tools();
  for (const auto& tool : *tools) {
    switch (t) {
      case KernelType::ParallelFor:
        tool->begin_parallel_for(name, device, items, kid);
        break;
      case KernelType::ParallelReduce:
        tool->begin_parallel_reduce(name, device, items, kid);
        break;
      case KernelType::ParallelScan:
        tool->begin_parallel_scan(name, device, items, kid);
        break;
    }
  }
  return kid;
}

void end_kernel(KernelType t, std::uint64_t kid) {
  if (kid == 0 || !tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) {
    switch (t) {
      case KernelType::ParallelFor:
        tool->end_parallel_for(kid);
        break;
      case KernelType::ParallelReduce:
        tool->end_parallel_reduce(kid);
        break;
      case KernelType::ParallelScan:
        tool->end_parallel_scan(kid);
        break;
    }
  }
}

void push_region(const std::string& name) {
  if (!tooling_active()) {
    // Keep the stack balanced even while no tool listens, so a tool
    // registered mid-region still sees matched pops.
    t_region_stack.push_back(name);
    return;
  }
  t_region_stack.push_back(name);
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->push_region(name);
}

void pop_region() {
  if (t_region_stack.empty()) return;
  const std::string name = std::move(t_region_stack.back());
  t_region_stack.pop_back();
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->pop_region(name);
}

void allocate_data(const char* space, const std::string& label,
                   const void* ptr, std::uint64_t bytes) {
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->allocate_data(space, label, ptr, bytes);
}

void deallocate_data(const char* space, const std::string& label,
                     const void* ptr, std::uint64_t bytes) {
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools)
    tool->deallocate_data(space, label, ptr, bytes);
}

std::uint64_t begin_deep_copy(const char* dst_space,
                              const std::string& dst_label,
                              const char* src_space,
                              const std::string& src_label,
                              std::uint64_t bytes) {
  if (!tooling_active()) return 0;
  const std::uint64_t id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  auto tools = current_tools();
  for (const auto& tool : *tools)
    tool->begin_deep_copy(dst_space, dst_label, src_space, src_label, bytes,
                          id);
  return id;
}

void end_deep_copy(std::uint64_t id) {
  if (id == 0 || !tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->end_deep_copy(id);
}

void fence_event(const std::string& name) {
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->fence(name);
}

void count_event(const std::string& name, double value) {
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->counter(name, value);
}

void begin_worker_chunk(std::uint64_t kid, int worker, std::uint64_t begin,
                        std::uint64_t end) {
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools)
    tool->begin_worker_chunk(kid, worker, begin, end);
}

void end_worker_chunk(std::uint64_t kid, int worker) {
  if (!tooling_active()) return;
  auto tools = current_tools();
  for (const auto& tool : *tools) tool->end_worker_chunk(kid, worker);
}

// ---------------------------------------------------------------------------
// Thread identity
// ---------------------------------------------------------------------------

int thread_track_id() {
  if (t_track_id < 0)
    t_track_id = g_next_track.fetch_add(1, std::memory_order_relaxed);
  return t_track_id;
}

void set_thread_name(const std::string& name) {
  auto& tn = track_names();
  std::lock_guard<std::mutex> lk(tn.mu);
  tn.names[thread_track_id()] = name;
}

std::map<int, std::string> thread_track_names() {
  auto& tn = track_names();
  std::lock_guard<std::mutex> lk(tn.mu);
  return tn.names;
}

void set_thread_tag(int tag) { t_tag = tag; }

int thread_tag() { return t_tag; }

}  // namespace kk::profiling
