#include "kokkos/profiling.hpp"

#include <mutex>

namespace kk::profiling {

namespace {
std::mutex g_mu;
std::map<std::string, LaunchStat> g_stats;
std::uint64_t g_total = 0;
std::uint64_t g_total_device = 0;
bool g_enabled = true;
}  // namespace

bool set_enabled(bool on) {
  std::lock_guard<std::mutex> lk(g_mu);
  const bool prev = g_enabled;
  g_enabled = on;
  return prev;
}

bool enabled() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_enabled;
}

void record_launch(const std::string& name, bool is_device,
                   std::uint64_t items) {
  std::lock_guard<std::mutex> lk(g_mu);
  if (!g_enabled) return;
  auto& s = g_stats[name];
  s.launches++;
  s.total_items += items;
  g_total++;
  if (is_device) {
    s.device_launches++;
    g_total_device++;
  }
}

std::map<std::string, LaunchStat> snapshot() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_stats;
}

std::uint64_t total_launches() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_total;
}

std::uint64_t total_device_launches() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_total_device;
}

void reset() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_stats.clear();
  g_total = 0;
  g_total_device = 0;
}

}  // namespace kk::profiling
