// kk::simd — the explicit SIMD vector backend of minikokkos
// (docs/VECTORIZATION.md).
//
// A fixed-width pack type `kk::simd<T, W>` with where()-masking, gathers,
// and ordered horizontal reductions, plus the runtime `MLK_SIMD` toggle and
// the per-kernel vectorized-launch counters surfaced in bench metrics.
//
// The pack is the single source of vector semantics for the whole engine:
// kernels written against it instantiate at the native width (AVX-512: 8
// doubles, otherwise 4) when SIMD is on, and at W == 1 — where every pack
// op degrades to exactly one scalar op in the same order — when it is off.
// The W == 1 instantiation therefore *is* the scalar reference path, which
// is what makes the per-kernel equivalence policy of VECTORIZATION.md
// checkable.
//
// Arithmetic lowers through GNU vector extensions (guaranteed SIMD codegen
// at any optimization level); lane-structured operations (gather, select,
// masks, reductions) are fixed-trip-count lane loops the compiler unrolls
// and blends. A plain-array fallback keeps non-GNU compilers building.
//
// Floating-point semantics: every lane op is plain IEEE double/float math,
// identical to the scalar expression; only *horizontal* reductions impose
// an order (lane 0..W-1, lowest first), so any reassociation relative to a
// scalar loop comes from the accumulation pattern of the calling kernel,
// never from the pack layer itself.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>

#if defined(__GNUC__) || defined(__clang__)
#define MLK_SIMD_VECTOR_EXT 1
#endif

namespace kk {

/// Native pack width for double precision on this build's target ISA.
#if defined(__AVX512F__)
inline constexpr int native_simd_width = 8;
#else
inline constexpr int native_simd_width = 4;
#endif

// ---------------------------------------------------------------------------
// Runtime toggle: MLK_SIMD=on|1 enables the vectorized kernel paths;
// default (unset/off/0) keeps the scalar reference path. The input-script
// command `simd on|off` calls set_simd_enabled.
// ---------------------------------------------------------------------------

namespace simd_detail {
inline std::atomic<int>& enabled_flag() {
  static std::atomic<int> f{-1};  // -1: not yet read from the environment
  return f;
}

#if defined(MLK_SIMD_VECTOR_EXT)
/// Dependent-context factory for GNU vector types: the element type being a
/// template parameter keeps the vector_size attribute deferred until
/// instantiation (a bare `long long __attribute__((vector_size(W * 8)))`
/// inside a class template silently drops the attribute).
template <class T, int W>
struct vec_storage {
  typedef T type __attribute__((vector_size(W * sizeof(T))));
};
#endif
}  // namespace simd_detail

inline bool simd_enabled() {
  int v = simd_detail::enabled_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    bool on = false;
    if (const char* e = std::getenv("MLK_SIMD")) {
      const std::string s(e);
      on = !(s.empty() || s == "0" || s == "off" || s == "OFF");
    }
    v = on ? 1 : 0;
    simd_detail::enabled_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

inline void set_simd_enabled(bool on) {
  simd_detail::enabled_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// simd_mask<W> — per-lane boolean, the value type of where() and of pack
// comparisons. Stored as a 64-bit-lane integer vector (all-ones = true) so
// that pack comparisons assign their result directly and select() lowers to
// bitwise blends — the branchless masking that makes the pair kernels fast.
// ---------------------------------------------------------------------------

template <int W>
class simd_mask {
  static_assert(W >= 1);

 public:
  static constexpr int width = W;

#if defined(MLK_SIMD_VECTOR_EXT)
  using storage = typename simd_detail::vec_storage<long long, W>::type;
#else
  struct storage {
    long long e[W];
    long long operator[](int l) const { return e[l]; }
    long long& operator[](int l) { return e[l]; }
  };
#endif

  simd_mask() : m_{} {}  // all lanes false
  explicit simd_mask(bool v) {
    const long long s = v ? -1 : 0;
    for (int l = 0; l < W; ++l) m_[l] = s;
  }
  explicit simd_mask(const storage& s) : m_(s) {}

  /// Lanes [0, n) active — the remainder-loop mask.
  static simd_mask first(int n) {
    simd_mask m;
    for (int l = 0; l < W; ++l) m.m_[l] = l < n ? -1 : 0;
    return m;
  }

  bool operator[](int lane) const { return m_[lane] != 0; }
  void set(int lane, bool v) { m_[lane] = v ? -1 : 0; }

  /// Raw lane bits (all-ones/zero per lane) for bitwise blends.
  const storage& bits() const { return m_; }

  bool any() const {
    long long acc = 0;
    for (int l = 0; l < W; ++l) acc |= m_[l];
    return acc != 0;
  }
  bool all() const {
    long long acc = -1;
    for (int l = 0; l < W; ++l) acc &= m_[l];
    return acc != 0;
  }
  bool none() const { return !any(); }
  int count() const {
    int c = 0;
    for (int l = 0; l < W; ++l) c += m_[l] != 0 ? 1 : 0;
    return c;
  }

  friend simd_mask operator&&(const simd_mask& a, const simd_mask& b) {
    simd_mask m;
#if defined(MLK_SIMD_VECTOR_EXT)
    m.m_ = a.m_ & b.m_;
#else
    for (int l = 0; l < W; ++l) m.m_[l] = a.m_[l] & b.m_[l];
#endif
    return m;
  }
  friend simd_mask operator||(const simd_mask& a, const simd_mask& b) {
    simd_mask m;
#if defined(MLK_SIMD_VECTOR_EXT)
    m.m_ = a.m_ | b.m_;
#else
    for (int l = 0; l < W; ++l) m.m_[l] = a.m_[l] | b.m_[l];
#endif
    return m;
  }
  friend simd_mask operator!(const simd_mask& a) {
    simd_mask m;
#if defined(MLK_SIMD_VECTOR_EXT)
    m.m_ = ~a.m_;
#else
    for (int l = 0; l < W; ++l) m.m_[l] = ~a.m_[l];
#endif
    return m;
  }

 private:
  storage m_;
};

// ---------------------------------------------------------------------------
// simd<T, W> — the pack.
// ---------------------------------------------------------------------------

template <class T, int W>
class simd {
  static_assert(W >= 1 && (W & (W - 1)) == 0, "pack width must be 2^k");

 public:
  using value_type = T;
  static constexpr int width = W;

#if defined(MLK_SIMD_VECTOR_EXT)
  typedef T storage __attribute__((vector_size(W * sizeof(T))));
#else
  struct storage {
    T e[W];
    T operator[](int l) const { return e[l]; }
    T& operator[](int l) { return e[l]; }
  };
#endif

  simd() : v_{} {}  // all lanes zero
  explicit simd(T s) {
#if defined(MLK_SIMD_VECTOR_EXT)
    // Scalar-to-vector broadcast (one splat, no per-lane subscript stores).
    const storage z = {};
    v_ = z + s;
#else
    for (int l = 0; l < W; ++l) v_[l] = s;
#endif
  }
  explicit simd(const storage& s) : v_(s) {}

  /// Raw lane storage, for bitwise blends in select()/masked math.
  const storage& raw() const { return v_; }

  /// Unaligned load/store of W contiguous elements.
  static simd load(const T* p) {
    simd r;
    std::memcpy(&r.v_, p, W * sizeof(T));
    return r;
  }
  void store(T* p) const { std::memcpy(p, &v_, W * sizeof(T)); }

  /// Masked load: inactive lanes get `fill` (contiguous source, only the
  /// active prefix/lanes are dereferenced).
  static simd load_masked(const T* p, const simd_mask<W>& m, T fill = T(0)) {
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = m[l] ? p[l] : fill;
    return r;
  }

  /// Gather through a callable `fn(lane) -> T` for every lane (use when all
  /// lane sources are valid, e.g. padded index arrays). The lanes build a
  /// vector braced-init via pack expansion (left-to-right, so lane order is
  /// deterministic): the pack assembles in registers, avoiding the
  /// store-forwarding stalls of a stack-buffer round trip.
  template <class F>
  static simd gather(F&& fn) {
#if defined(MLK_SIMD_VECTOR_EXT)
    return gather_impl(fn, std::make_integer_sequence<int, W>{});
#else
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = fn(l);
    return r;
#endif
  }

  /// Masked gather: `fn` is invoked for active lanes only; inactive lanes
  /// get `fill`. The guarantee that masked-off sources are never
  /// dereferenced is what makes remainder loops safe.
  template <class F>
  static simd gather_masked(const simd_mask<W>& m, F&& fn, T fill = T(0)) {
#if defined(MLK_SIMD_VECTOR_EXT)
    return gather_masked_impl(m, fn, fill,
                              std::make_integer_sequence<int, W>{});
#else
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = m[l] ? fn(l) : fill;
    return r;
#endif
  }

  /// {base, base+step, base+2*step, ...} — lane index packs.
  static simd iota(T base, T step = T(1)) {
    return gather([&](int l) { return base + T(l) * step; });
  }

  T operator[](int lane) const { return v_[lane]; }
  void set_lane(int lane, T s) { v_[lane] = s; }

  // Arithmetic — vector-extension expressions, one SIMD op each (no
  // default-construct-then-assign: results are built from storage directly).
#if defined(MLK_SIMD_VECTOR_EXT)
  friend simd operator+(const simd& a, const simd& b) {
    return simd(storage(a.v_ + b.v_));
  }
  friend simd operator-(const simd& a, const simd& b) {
    return simd(storage(a.v_ - b.v_));
  }
  friend simd operator*(const simd& a, const simd& b) {
    return simd(storage(a.v_ * b.v_));
  }
  friend simd operator/(const simd& a, const simd& b) {
    return simd(storage(a.v_ / b.v_));
  }
#else
  friend simd operator+(const simd& a, const simd& b) {
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = a.v_[l] + b.v_[l];
    return r;
  }
  friend simd operator-(const simd& a, const simd& b) {
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = a.v_[l] - b.v_[l];
    return r;
  }
  friend simd operator*(const simd& a, const simd& b) {
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = a.v_[l] * b.v_[l];
    return r;
  }
  friend simd operator/(const simd& a, const simd& b) {
    simd r;
    for (int l = 0; l < W; ++l) r.v_[l] = a.v_[l] / b.v_[l];
    return r;
  }
#endif
  friend simd operator-(const simd& a) { return simd(T(0)) - a; }

  // Pack (x) scalar conveniences.
  friend simd operator+(const simd& a, T s) { return a + simd(s); }
  friend simd operator-(const simd& a, T s) { return a - simd(s); }
  friend simd operator*(const simd& a, T s) { return a * simd(s); }
  friend simd operator/(const simd& a, T s) { return a / simd(s); }
  friend simd operator+(T s, const simd& a) { return simd(s) + a; }
  friend simd operator-(T s, const simd& a) { return simd(s) - a; }
  friend simd operator*(T s, const simd& a) { return simd(s) * a; }
  friend simd operator/(T s, const simd& a) { return simd(s) / a; }

  simd& operator+=(const simd& o) { return *this = *this + o; }
  simd& operator-=(const simd& o) { return *this = *this - o; }
  simd& operator*=(const simd& o) { return *this = *this * o; }
  simd& operator/=(const simd& o) { return *this = *this / o; }

  // Comparisons — native vector compares producing all-ones/zero lane bits
  // assigned straight into the mask (one instruction on the hot path).
#if defined(MLK_SIMD_VECTOR_EXT)
 private:
  template <class VC>
  static simd_mask<W> mask_from(const VC& c) {
    using ms = typename simd_mask<W>::storage;
    if constexpr (std::is_same_v<VC, ms>) {
      return simd_mask<W>(c);
    } else {
      // Narrow-element T: widen the compare-result lanes to 64-bit.
      return simd_mask<W>(__builtin_convertvector(c, ms));
    }
  }

 public:
  friend simd_mask<W> operator<(const simd& a, const simd& b) {
    return mask_from(a.v_ < b.v_);
  }
  friend simd_mask<W> operator<=(const simd& a, const simd& b) {
    return mask_from(a.v_ <= b.v_);
  }
  friend simd_mask<W> operator>(const simd& a, const simd& b) {
    return mask_from(a.v_ > b.v_);
  }
  friend simd_mask<W> operator>=(const simd& a, const simd& b) {
    return mask_from(a.v_ >= b.v_);
  }
#else
  friend simd_mask<W> operator<(const simd& a, const simd& b) {
    simd_mask<W> m;
    for (int l = 0; l < W; ++l) m.set(l, a.v_[l] < b.v_[l]);
    return m;
  }
  friend simd_mask<W> operator<=(const simd& a, const simd& b) {
    simd_mask<W> m;
    for (int l = 0; l < W; ++l) m.set(l, a.v_[l] <= b.v_[l]);
    return m;
  }
  friend simd_mask<W> operator>(const simd& a, const simd& b) {
    simd_mask<W> m;
    for (int l = 0; l < W; ++l) m.set(l, a.v_[l] > b.v_[l]);
    return m;
  }
  friend simd_mask<W> operator>=(const simd& a, const simd& b) {
    simd_mask<W> m;
    for (int l = 0; l < W; ++l) m.set(l, a.v_[l] >= b.v_[l]);
    return m;
  }
#endif
  friend simd_mask<W> operator<(const simd& a, T s) { return a < simd(s); }
  friend simd_mask<W> operator>=(const simd& a, T s) { return a >= simd(s); }

 private:
#if defined(MLK_SIMD_VECTOR_EXT)
  template <class F, int... Ls>
  static simd gather_impl(F&& fn, std::integer_sequence<int, Ls...>) {
    return simd(storage{fn(Ls)...});
  }
  template <class F, int... Ls>
  static simd gather_masked_impl(const simd_mask<W>& m, F&& fn, T fill,
                                 std::integer_sequence<int, Ls...>) {
    return simd(storage{(m[Ls] ? fn(Ls) : fill)...});
  }
#endif

  storage v_;
};

// ---------------------------------------------------------------------------
// Free functions over packs.
// ---------------------------------------------------------------------------

/// Per-lane blend: m ? a : b. Branchless — lowers to bitwise and/andnot/or
/// (or native blend instructions) for 64-bit element types.
template <class T, int W>
inline simd<T, W> select(const simd_mask<W>& m, const simd<T, W>& a,
                         const simd<T, W>& b) {
#if defined(MLK_SIMD_VECTOR_EXT)
  if constexpr (sizeof(T) == sizeof(long long)) {
    using ms = typename simd_mask<W>::storage;
    using vs = typename simd<T, W>::storage;
    const ms bits = m.bits();
    const ms av = (ms)a.raw();
    const ms bv = (ms)b.raw();
    return simd<T, W>((vs)((av & bits) | (bv & ~bits)));
  } else {
    simd<T, W> r;
    for (int l = 0; l < W; ++l) r.set_lane(l, m[l] ? a[l] : b[l]);
    return r;
  }
#else
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.set_lane(l, m[l] ? a[l] : b[l]);
  return r;
#endif
}

template <class T, int W>
inline simd<T, W> select(const simd_mask<W>& m, const simd<T, W>& a, T b) {
  return select(m, a, simd<T, W>(b));
}

/// Ordered horizontal sum, lane 0 first — the one place the pack layer
/// fixes an FP association order.
template <class T, int W>
inline T reduce_sum(const simd<T, W>& a) {
  T s = a[0];
  for (int l = 1; l < W; ++l) s += a[l];
  return s;
}

template <class T, int W>
inline T reduce_max(const simd<T, W>& a) {
  T s = a[0];
  for (int l = 1; l < W; ++l)
    if (a[l] > s) s = a[l];
  return s;
}

/// Masked ordered sum: inactive lanes contribute nothing (not even +0.0, so
/// signed-zero behaviour matches the scalar loop that skipped them).
template <class T, int W>
inline T reduce_sum_masked(const simd_mask<W>& m, const simd<T, W>& a) {
  T s = T(0);
  bool seeded = false;
  for (int l = 0; l < W; ++l) {
    if (!m[l]) continue;
    if (!seeded) {
      s = a[l];
      seeded = true;
    } else {
      s += a[l];
    }
  }
  return s;
}

template <class T, int W>
inline simd<T, W> sqrt(const simd<T, W>& a) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.set_lane(l, std::sqrt(a[l]));
  return r;
}

/// Lane-serial transcendental (no vector libm in the toolchain): exp runs
/// one scalar call per lane; the surrounding polynomial/rational math still
/// vectorizes. Documented in VECTORIZATION.md's porting notes.
template <class T, int W>
inline simd<T, W> exp(const simd<T, W>& a) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.set_lane(l, std::exp(a[l]));
  return r;
}

template <class T, int W>
inline simd<T, W> min(const simd<T, W>& a, const simd<T, W>& b) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.set_lane(l, a[l] < b[l] ? a[l] : b[l]);
  return r;
}

template <class T, int W>
inline simd<T, W> max(const simd<T, W>& a, const simd<T, W>& b) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.set_lane(l, a[l] > b[l] ? a[l] : b[l]);
  return r;
}

// ---------------------------------------------------------------------------
// where() masking — Kokkos-SIMD-style masked assignment:
//   kk::where(mask, acc) += contribution;   // inactive lanes unchanged
// ---------------------------------------------------------------------------

template <class T, int W>
class where_expr {
 public:
  where_expr(const simd_mask<W>& m, simd<T, W>& v) : m_(m), v_(v) {}

  // Branchless: evaluate on every lane, blend the result in where active
  // (IEEE default environment — no traps on the discarded lanes).
  void operator=(const simd<T, W>& o) { v_ = select(m_, o, v_); }
  void operator+=(const simd<T, W>& o) { v_ = select(m_, v_ + o, v_); }
  void operator-=(const simd<T, W>& o) { v_ = select(m_, v_ - o, v_); }
  void operator*=(const simd<T, W>& o) { v_ = select(m_, v_ * o, v_); }

 private:
  const simd_mask<W>& m_;
  simd<T, W>& v_;
};

template <class T, int W>
inline where_expr<T, W> where(const simd_mask<W>& m, simd<T, W>& v) {
  return where_expr<T, W>(m, v);
}

// ---------------------------------------------------------------------------
// Vectorized-launch accounting: each kernel that takes its SIMD path calls
// count_launch(name) once per dispatch. Benches attach the counters to
// their metrics JSON as the "simd" section (docs/OBSERVABILITY.md).
// ---------------------------------------------------------------------------

namespace simdstats {

namespace detail {
struct Registry {
  std::mutex mu;
  std::map<std::string, std::uint64_t> launches;
};
inline Registry& registry() {
  static Registry r;
  return r;
}
}  // namespace detail

/// Record one vectorized dispatch of `kernel` (launch granularity, not per
/// row — negligible cost next to the kernel body).
inline void count_launch(const std::string& kernel) {
  auto& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.launches[kernel];
}

inline std::map<std::string, std::uint64_t> launches() {
  auto& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.launches;
}

inline void reset() {
  auto& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.launches.clear();
}

/// `{"name": count, ...}` for bench metrics composition.
inline std::string launches_json() {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, n] : launches()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(n);
  }
  return out + "}";
}

/// The full "simd" metrics section: lane width, enabled flag, per-kernel
/// vectorized launch counts.
inline std::string json_fragment() {
  return std::string("{\"width\":") + std::to_string(native_simd_width) +
         ",\"enabled\":" + (simd_enabled() ? "true" : "false") +
         ",\"launches\":" + launches_json() + "}";
}

}  // namespace simdstats

}  // namespace kk
