// minikokkos execution patterns: parallel_for / parallel_reduce /
// parallel_scan over RangePolicy and MDRangePolicy, plus atomic helpers and
// kernel-launch profiling hooks consumed by the performance model.
//
// Host space executes serially on the calling thread (the "one MPI rank per
// core" CPU model of the paper); Device space dispatches to the thread pool
// with GPU-like semantics (unordered work items, atomics required for
// write conflicts).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "kokkos/instance.hpp"
#include "kokkos/profiling.hpp"
#include "kokkos/threadpool.hpp"
#include "kokkos/view.hpp"

namespace kk {

// Global fence: drains the work queue of every live DeviceInstance.
// Dispatches without an instance argument are synchronous (the implicit
// "default instance" fences on return), so with no async instances live
// this degenerates to the KokkosP fence event alone.
inline void fence() {
  DeviceInstance::fence_all();
  profiling::fence_event("kk::fence");
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

template <class Space = DefaultExecutionSpace>
struct RangePolicy {
  using space = Space;
  std::size_t begin = 0;
  std::size_t end = 0;
  RangePolicy(std::size_t b, std::size_t e) : begin(b), end(e) {}
  explicit RangePolicy(std::size_t e) : begin(0), end(e) {}
};

/// Rank-2 / rank-3 multidimensional iteration with tiling, used by the SNAP
/// tiled traversals (§4.3.2). Iteration order: tiles in row-major order of
/// the tile grid; within a tile, row-major. The *first* policy dimension is
/// distributed over threads on Device.
template <class Space = DefaultExecutionSpace, int Rank = 2>
struct MDRangePolicy {
  using space = Space;
  static constexpr int rank = Rank;
  std::size_t lower[Rank] = {};
  std::size_t upper[Rank] = {};
  std::size_t tile[Rank] = {};
  MDRangePolicy(std::initializer_list<std::size_t> up,
                std::initializer_list<std::size_t> tiles = {}) {
    int r = 0;
    for (auto u : up) upper[r++] = u;
    r = 0;
    for (auto t : tiles) tile[r++] = t;
    for (int i = 0; i < Rank; ++i)
      if (tile[i] == 0) tile[i] = upper[i] > lower[i] ? upper[i] - lower[i] : 1;
  }
};

// ---------------------------------------------------------------------------
// Reducers
// ---------------------------------------------------------------------------

template <class T>
struct Sum {
  using value_type = T;
  T& ref;
  explicit Sum(T& r) : ref(r) {}
  static void init(T& v) { v = T(0); }
  static void join(T& a, const T& b) { a += b; }
};

template <class T>
struct Max {
  using value_type = T;
  T& ref;
  explicit Max(T& r) : ref(r) {}
  static void init(T& v) { v = std::numeric_limits<T>::lowest(); }
  static void join(T& a, const T& b) {
    if (b > a) a = b;
  }
};

template <class T>
struct Min {
  using value_type = T;
  T& ref;
  explicit Min(T& r) : ref(r) {}
  static void init(T& v) { v = std::numeric_limits<T>::max(); }
  static void join(T& a, const T& b) {
    if (b < a) a = b;
  }
};

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

template <class Space, class F>
void parallel_for(const std::string& name, RangePolicy<Space> p, const F& f) {
  const std::size_t n = p.end > p.begin ? p.end - p.begin : 0;
  profiling::ScopedKernel ev(profiling::KernelType::ParallelFor, name,
                             Space::is_device, n);
  if (n == 0) return;
  if constexpr (Space::is_device) {
    ThreadPool::instance().parallel(
        n, [&](std::size_t b, std::size_t e, int rank) {
          profiling::ScopedWorkerChunk wc(ev.id(), rank, b, e);
          for (std::size_t i = b; i < e; ++i) f(p.begin + i);
        });
  } else {
    for (std::size_t i = p.begin; i < p.end; ++i) f(i);
  }
}

template <class F>
void parallel_for(const std::string& name, std::size_t n, const F& f) {
  parallel_for(name, RangePolicy<DefaultExecutionSpace>(n), f);
}

template <class Space, int Rank, class F>
void parallel_for(const std::string& name, MDRangePolicy<Space, Rank> p,
                  const F& f) {
  static_assert(Rank == 2 || Rank == 3);
  std::size_t span[Rank], ntile[Rank];
  std::size_t total_tiles = 1;
  for (int r = 0; r < Rank; ++r) {
    span[r] = p.upper[r] - p.lower[r];
    ntile[r] = (span[r] + p.tile[r] - 1) / p.tile[r];
    if (ntile[r] == 0) ntile[r] = 1;
    total_tiles *= ntile[r];
  }
  std::size_t items = 1;
  for (int r = 0; r < Rank; ++r) items *= span[r];
  profiling::ScopedKernel ev(profiling::KernelType::ParallelFor, name,
                             Space::is_device, items);
  if (items == 0) return;

  auto run_tile = [&](std::size_t t) {
    std::size_t tc[Rank];
    std::size_t rem = t;
    for (int r = Rank - 1; r >= 0; --r) {
      tc[r] = rem % ntile[r];
      rem /= ntile[r];
    }
    std::size_t lo[Rank], hi[Rank];
    for (int r = 0; r < Rank; ++r) {
      lo[r] = p.lower[r] + tc[r] * p.tile[r];
      hi[r] = lo[r] + p.tile[r];
      if (hi[r] > p.upper[r]) hi[r] = p.upper[r];
    }
    if constexpr (Rank == 2) {
      for (std::size_t i = lo[0]; i < hi[0]; ++i)
        for (std::size_t j = lo[1]; j < hi[1]; ++j) f(i, j);
    } else {
      for (std::size_t i = lo[0]; i < hi[0]; ++i)
        for (std::size_t j = lo[1]; j < hi[1]; ++j)
          for (std::size_t k = lo[2]; k < hi[2]; ++k) f(i, j, k);
    }
  };

  if constexpr (Space::is_device) {
    ThreadPool::instance().parallel(
        total_tiles, [&](std::size_t b, std::size_t e, int rank) {
          profiling::ScopedWorkerChunk wc(ev.id(), rank, b, e);
          for (std::size_t t = b; t < e; ++t) run_tile(t);
        });
  } else {
    for (std::size_t t = 0; t < total_tiles; ++t) run_tile(t);
  }
}

// ---------------------------------------------------------------------------
// parallel_reduce
// ---------------------------------------------------------------------------

template <class Space, class F, class Reducer>
void parallel_reduce_impl(const std::string& name, RangePolicy<Space> p,
                          const F& f, Reducer red) {
  using T = typename Reducer::value_type;
  const std::size_t n = p.end > p.begin ? p.end - p.begin : 0;
  profiling::ScopedKernel ev(profiling::KernelType::ParallelReduce, name,
                             Space::is_device, n);
  T result;
  Reducer::init(result);
  if constexpr (Space::is_device) {
    const int nmax = ThreadPool::instance().concurrency();
    std::vector<T> partial;
    partial.resize(std::size_t(nmax));
    for (auto& v : partial) Reducer::init(v);
    ThreadPool::instance().parallel(
        n, [&](std::size_t b, std::size_t e, int rank) {
          profiling::ScopedWorkerChunk wc(ev.id(), rank, b, e);
          T local;
          Reducer::init(local);
          for (std::size_t i = b; i < e; ++i) f(p.begin + i, local);
          Reducer::join(partial[std::size_t(rank)], local);
        });
    for (const auto& v : partial) Reducer::join(result, v);
  } else {
    for (std::size_t i = p.begin; i < p.end; ++i) f(i, result);
  }
  red.ref = result;
}

/// Sum-reduction form: f(i, T& update).
template <class Space, class F, class T>
void parallel_reduce(const std::string& name, RangePolicy<Space> p, const F& f,
                     T& sum) {
  parallel_reduce_impl(name, p, f, Sum<T>(sum));
}

template <class Space, class F, class T>
void parallel_reduce(const std::string& name, RangePolicy<Space> p, const F& f,
                     Max<T> red) {
  parallel_reduce_impl(name, p, f, red);
}

template <class Space, class F, class T>
void parallel_reduce(const std::string& name, RangePolicy<Space> p, const F& f,
                     Min<T> red) {
  parallel_reduce_impl(name, p, f, red);
}

template <class F, class T>
void parallel_reduce(const std::string& name, std::size_t n, const F& f,
                     T& sum) {
  parallel_reduce(name, RangePolicy<DefaultExecutionSpace>(n), f, sum);
}

// ---------------------------------------------------------------------------
// parallel_scan (exclusive prefix sum semantics, Kokkos convention:
// f(i, update, final) sees `update` = sum of values for indices < i when
// `final` is true, and must add its own value to `update`.)
// ---------------------------------------------------------------------------

template <class Space, class F, class T>
void parallel_scan(const std::string& name, RangePolicy<Space> p, const F& f,
                   T& total) {
  const std::size_t n = p.end > p.begin ? p.end - p.begin : 0;
  profiling::ScopedKernel ev(profiling::KernelType::ParallelScan, name,
                             Space::is_device, n);
  if (n == 0) {
    total = T(0);
    return;
  }
  if constexpr (Space::is_device) {
    auto& pool = ThreadPool::instance();
    const int nmax = pool.concurrency();
    std::vector<T> chunk_sum(std::size_t(nmax) + 1, T(0));
    // Pass 1: per-chunk partial sums. Chunk boundaries must match pass 2, so
    // compute them identically from pool size.
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ranges.resize(std::size_t(nmax));
    pool.parallel(n, [&](std::size_t b, std::size_t e, int rank) {
      ranges[std::size_t(rank)] = {b, e};
      T local = T(0);
      for (std::size_t i = b; i < e; ++i) f(p.begin + i, local, false);
      chunk_sum[std::size_t(rank) + 1] = local;
    });
    for (int r = 0; r < nmax; ++r) chunk_sum[r + 1] += chunk_sum[r];
    // Pass 2: final scan with chunk offsets.
    pool.parallel(n, [&](std::size_t b, std::size_t e, int rank) {
      T local = chunk_sum[std::size_t(rank)];
      (void)b;
      (void)e;
      auto [rb, re] = ranges[std::size_t(rank)];
      for (std::size_t i = rb; i < re; ++i) f(p.begin + i, local, true);
    });
    total = chunk_sum[std::size_t(nmax)];
  } else {
    T local = T(0);
    for (std::size_t i = p.begin; i < p.end; ++i) f(i, local, true);
    total = local;
  }
}

template <class F, class T>
void parallel_scan(const std::string& name, std::size_t n, const F& f,
                   T& total) {
  parallel_scan(name, RangePolicy<DefaultExecutionSpace>(n), f, total);
}

// ---------------------------------------------------------------------------
// Asynchronous dispatch onto a DeviceInstance. The functor and policy are
// copied into the task (Kokkos capture-by-value semantics); the call returns
// immediately and the kernel runs on the instance's stream thread in
// submission order. Reduction results are written through the caller's
// reference when the task executes — read them only after instance.fence().
// ---------------------------------------------------------------------------

template <class Space, class F>
void parallel_for(DeviceInstance& instance, const std::string& name,
                  RangePolicy<Space> p, const F& f) {
  instance.enqueue(name, [name, p, f] { parallel_for(name, p, f); });
}

template <class F>
void parallel_for(DeviceInstance& instance, const std::string& name,
                  std::size_t n, const F& f) {
  parallel_for(instance, name, RangePolicy<DefaultExecutionSpace>(n), f);
}

template <class Space, class F, class T>
void parallel_reduce(DeviceInstance& instance, const std::string& name,
                     RangePolicy<Space> p, const F& f, T& sum) {
  T* out = &sum;
  instance.enqueue(name,
                   [name, p, f, out] { parallel_reduce(name, p, f, *out); });
}

// ---------------------------------------------------------------------------
// Atomics (C++20 atomic_ref over plain storage, as GPU atomics over global
// memory). Counted via profiling so the perf model can price atomic traffic.
// ---------------------------------------------------------------------------

template <class T>
inline void atomic_add(T* addr, T val) {
  std::atomic_ref<T>(*addr).fetch_add(val, std::memory_order_relaxed);
}

template <class T>
inline T atomic_fetch_add(T* addr, T val) {
  return std::atomic_ref<T>(*addr).fetch_add(val, std::memory_order_relaxed);
}

template <class T>
inline void atomic_max(T* addr, T val) {
  std::atomic_ref<T> a(*addr);
  T cur = a.load(std::memory_order_relaxed);
  while (val > cur &&
         !a.compare_exchange_weak(cur, val, std::memory_order_relaxed)) {
  }
}

}  // namespace kk
