// Persistent worker-thread pool backing the kk::Device execution space.
//
// The pool plays the role a GPU runtime plays for real Kokkos: kernels are
// dispatched to it as blocked index ranges, and each worker has a stable
// rank used by ScatterView data duplication and per-team scratch allocation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kk {

class ThreadPool {
 public:
  /// Global pool. Size = MLK_NUM_THREADS env var if set, else
  /// hardware_concurrency (min 1). Created on first use.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return int(workers_.size()) + 1; }  // workers + caller

  /// Execute `body(begin, end, rank)` over [0, n) split into one contiguous
  /// chunk per participant. Blocks until all chunks complete. The calling
  /// thread executes rank 0. Re-entrant dispatch (from inside a kernel) is
  /// executed inline on the calling participant.
  void parallel(std::size_t n,
                const std::function<void(std::size_t, std::size_t, int)>& body);

  /// Rank of the calling thread within the most recent dispatch (0 if not a
  /// pool thread). Stable during a kernel; used for duplication buffers.
  static int this_thread_rank();

  /// Largest number of concurrent participants any dispatch can have.
  int concurrency() const { return size(); }

 private:
  explicit ThreadPool(int nworkers);

  void worker_loop(int rank);

  struct Job {
    const std::function<void(std::size_t, std::size_t, int)>* body = nullptr;
    std::size_t n = 0;
    int nparts = 1;
  };

  std::vector<std::thread> workers_;
  std::mutex dispatch_mu_;  // serializes concurrent top-level dispatches
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  std::uint64_t epoch_ = 0;   // incremented per dispatch
  int pending_ = 0;           // workers not yet finished with current job
  bool shutdown_ = false;
};

}  // namespace kk
