// kk::DeviceInstance — asynchronous execution-space instances (the
// minikokkos analogue of Kokkos's `Kokkos::Cuda(stream)` / partitioned
// execution space instances, and the enabling mechanism for the paper's
// comm/compute overlap in the Verlet loop).
//
// Each instance owns a FIFO work queue drained by a dedicated stream thread.
// Kernels dispatched onto an instance (the `parallel_for(instance, ...)`
// overloads in core.hpp) enqueue and return immediately; work submitted to
// the *same* instance executes in submission order, while work on
// *different* instances executes concurrently. Device kernels still run on
// the one shared ThreadPool — concurrent instances serialize at the pool's
// dispatch gate exactly as concurrent CUDA streams serialize on a device's
// SMs — but a host-side task (e.g. halo packing/exchange) on one instance
// genuinely overlaps a pool kernel running on another.
//
// Fencing rules (see docs/EXECUTION_MODEL.md):
//   * instance.fence()        — blocks until THIS instance's queue is empty
//                               and its in-flight task finished; other
//                               instances are not drained.
//   * kk::fence()             — drains every live instance (global fence).
//   * results of an async parallel_reduce are defined only after a fence of
//     the instance it was submitted to.
//
// Profiling integration: the stream thread names itself
// "instance-<id>[:<label>]" via kk::profiling::set_thread_name, so
// ChromeTrace renders one timeline track per instance; fences emit
// KokkosP-style fence events carrying the instance name. The simmpi rank
// tag of the enqueuing thread is captured per task and applied while it
// runs, so per-rank trace scoping survives asynchronous execution.
//
// Error model: an exception escaping a task is captured; the next fence()
// on that instance rethrows it (subsequent queued tasks still run).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace kk {

class DeviceInstance {
 public:
  /// Creates the instance and starts its stream thread. `label` is purely
  /// cosmetic (trace track names, fence events).
  explicit DeviceInstance(std::string label = "");

  /// Fences (dropping any deferred task exception to stderr), then stops
  /// and joins the stream thread.
  ~DeviceInstance();

  DeviceInstance(const DeviceInstance&) = delete;
  DeviceInstance& operator=(const DeviceInstance&) = delete;

  /// Submit a task; returns immediately. Tasks on one instance run FIFO on
  /// the stream thread. `label` is recorded for diagnostics only (kernels
  /// inside the task emit their own profiling events).
  void enqueue(std::string label, std::function<void()> task);

  /// Block until every task enqueued so far has finished. Rethrows the
  /// first exception a task raised since the last fence. Emits a
  /// KokkosP-style fence event ("DeviceInstance[<name>]::fence").
  void fence();

  /// True when no task is queued or running (racy snapshot; use fence() to
  /// synchronize).
  bool idle() const;

  /// Process-unique instance id (0, 1, ... in construction order).
  int id() const { return id_; }

  /// "instance-<id>" or "instance-<id>:<label>".
  const std::string& name() const { return name_; }

  /// Tasks fully executed since construction.
  std::uint64_t tasks_completed() const;

  /// Fence every live instance (the global kk::fence() path). Safe against
  /// concurrent construction/destruction of instances.
  static void fence_all();

  /// Number of currently live instances (tests/tools).
  static int live_count();

  /// One row per live instance, for monitoring consumers (the telemetry
  /// snapshot's per-instance kernel-launch/task table). Racy by nature —
  /// counts are whatever each instance reports at the moment of the walk.
  struct Stat {
    int id = -1;
    std::string name;
    std::uint64_t tasks = 0;  // tasks fully executed since construction
  };
  static std::vector<Stat> live_stats();

 private:
  struct Task {
    std::string label;
    std::function<void()> fn;
    int tag;  // simmpi rank tag of the enqueuing thread, applied while running
  };

  void stream_loop();

  const int id_;
  const std::string name_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // stream thread waits for tasks
  std::condition_variable cv_idle_;   // fencers wait for drain
  std::deque<Task> queue_;
  bool running_task_ = false;
  bool shutdown_ = false;
  std::uint64_t completed_ = 0;
  std::exception_ptr error_;

  std::thread stream_;
};

/// Pool of reusable DeviceInstances — the batch server's per-job stream
/// handles (docs/SERVER.md). A stream thread is comparatively expensive to
/// create and jobs churn, so released instances are fenced and kept for the
/// next acquirer instead of being destroyed. Thread-safe.
class InstancePool {
 public:
  explicit InstancePool(std::string label = "pool") : label_(std::move(label)) {}

  /// Hand out an idle pooled instance, creating one when none is free.
  DeviceInstance& acquire();

  /// Fence `inst` — rethrowing any deferred task exception to the caller,
  /// after which the instance is clean — and return it to the free list.
  /// `inst` must have come from acquire() on this pool.
  void release(DeviceInstance& inst);

  /// Instances created over the pool's lifetime.
  int size() const;
  /// Instances currently idle in the free list.
  int available() const;

 private:
  const std::string label_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DeviceInstance>> all_;
  std::vector<DeviceInstance*> free_;
};

}  // namespace kk
