// Kernel-launch profiling registry.
//
// Every parallel dispatch records (name, space, iteration count). The
// performance model (src/perfmodel) consumes these counts to price kernel
// launch latency and exposed parallelism per architecture, which is what
// produces the small-system latency limit of the paper's Fig. 4 and the
// deep-strong-scaling divergence of Fig. 7.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace kk::profiling {

struct LaunchStat {
  std::uint64_t launches = 0;
  std::uint64_t device_launches = 0;
  std::uint64_t total_items = 0;
};

/// Enable/disable collection (enabled by default; negligible cost because
/// dispatches are coarse). Returns the previous state.
bool set_enabled(bool on);
bool enabled();

void record_launch(const std::string& name, bool is_device, std::uint64_t items);

/// Snapshot of all stats since the last reset, keyed by kernel name.
std::map<std::string, LaunchStat> snapshot();

/// Aggregate counters since last reset.
std::uint64_t total_launches();
std::uint64_t total_device_launches();

void reset();

}  // namespace kk::profiling
