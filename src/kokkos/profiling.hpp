// KokkosP-style profiling hook layer (the minikokkos analogue of
// kokkosp_*-callback tools, §2.3 of the Kokkos tools ecosystem the paper's
// evaluation leans on).
//
// Two independent mechanisms live here:
//
//  1. Launch *counting* (the original registry): every parallel dispatch
//     records (name, space, iteration count) into per-thread shards that are
//     merged at snapshot() time. The performance model (src/perfmodel)
//     consumes these counts to price kernel launch latency and exposed
//     parallelism per architecture. Disabled mode is a single relaxed atomic
//     load — no lock, no map touch (bench/bench_overhead.cpp gates this).
//
//  2. Event *tools* (new): a registerable callback table mirroring the real
//     KokkosP interface. Dispatch sites emit begin/end events for
//     parallel_for / parallel_reduce / parallel_scan (returning kernel IDs),
//     named regions (push_region/pop_region), View allocations
//     (allocate_data/deallocate_data), DualView syncs
//     (begin/end_deep_copy), and fences. Built-in tools live in src/tools/
//     (KernelTimer, ChromeTrace, MemorySpaceTracker); anything implementing
//     Tool can be registered. When no tool is registered the event path is a
//     single relaxed atomic load.
//
// Mapping to real KokkosP callbacks (see DESIGN.md "Observability"):
//   begin_parallel_for     <-> kokkosp_begin_parallel_for(name, devid, &kID)
//   end_parallel_for       <-> kokkosp_end_parallel_for(kID)
//   begin/end_parallel_reduce, begin/end_parallel_scan  (likewise)
//   push_region/pop_region <-> kokkosp_push/pop_profile_region
//   allocate_data          <-> kokkosp_allocate_data(space, label, ptr, size)
//   deallocate_data        <-> kokkosp_deallocate_data(...)
//   begin/end_deep_copy    <-> kokkosp_begin/end_deep_copy
//   fence                  <-> kokkosp_profile_fence_event
// begin/end_worker_chunk is a minikokkos extension (there is no per-SM
// callback in KokkosP): it exposes the per-pool-thread execution of a device
// kernel so timeline tools can draw per-worker tracks.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace kk::profiling {

// ---------------------------------------------------------------------------
// Launch counting (perfmodel feed)
// ---------------------------------------------------------------------------

struct LaunchStat {
  std::uint64_t launches = 0;
  std::uint64_t device_launches = 0;
  std::uint64_t total_items = 0;
};

/// Enable/disable launch counting (enabled by default). Returns the previous
/// state. Disabled dispatch is a fast early-out: one relaxed atomic load.
bool set_enabled(bool on);
bool enabled();

void record_launch(const std::string& name, bool is_device, std::uint64_t items);

/// Snapshot of all stats since the last reset, keyed by kernel name
/// (merges the per-thread shards).
std::map<std::string, LaunchStat> snapshot();

/// Aggregate counters since last reset.
std::uint64_t total_launches();
std::uint64_t total_device_launches();

/// Aggregate counters from plain relaxed atomics — safe on wait-free paths
/// (the telemetry step publisher), unlike the shard-merging totals above
/// which take per-shard locks. Monotonic except across reset().
std::uint64_t total_launches_relaxed();
std::uint64_t total_device_launches_relaxed();

void reset();

// ---------------------------------------------------------------------------
// Tool callback table
// ---------------------------------------------------------------------------

enum class KernelType { ParallelFor, ParallelReduce, ParallelScan };

/// Base class for profiling tools. Default implementations are no-ops, so a
/// tool overrides only the callbacks it cares about. Callbacks may fire
/// concurrently from multiple threads (simmpi ranks are threads); tools must
/// be thread-safe.
class Tool {
 public:
  virtual ~Tool() = default;

  virtual void begin_parallel_for(const std::string& /*name*/, bool /*device*/,
                                  std::uint64_t /*items*/,
                                  std::uint64_t /*kid*/) {}
  virtual void end_parallel_for(std::uint64_t /*kid*/) {}
  virtual void begin_parallel_reduce(const std::string& /*name*/,
                                     bool /*device*/, std::uint64_t /*items*/,
                                     std::uint64_t /*kid*/) {}
  virtual void end_parallel_reduce(std::uint64_t /*kid*/) {}
  virtual void begin_parallel_scan(const std::string& /*name*/,
                                   bool /*device*/, std::uint64_t /*items*/,
                                   std::uint64_t /*kid*/) {}
  virtual void end_parallel_scan(std::uint64_t /*kid*/) {}

  virtual void push_region(const std::string& /*name*/) {}
  virtual void pop_region(const std::string& /*name*/) {}

  virtual void allocate_data(const char* /*space*/,
                             const std::string& /*label*/,
                             const void* /*ptr*/, std::uint64_t /*bytes*/) {}
  virtual void deallocate_data(const char* /*space*/,
                               const std::string& /*label*/,
                               const void* /*ptr*/, std::uint64_t /*bytes*/) {}

  virtual void begin_deep_copy(const char* /*dst_space*/,
                               const std::string& /*dst_label*/,
                               const char* /*src_space*/,
                               const std::string& /*src_label*/,
                               std::uint64_t /*bytes*/, std::uint64_t /*id*/) {}
  virtual void end_deep_copy(std::uint64_t /*id*/) {}

  virtual void fence(const std::string& /*name*/) {}

  /// A named counter sample (KokkosP has no direct analogue; Chrome traces
  /// render these as "ph":"C" counter tracks). Emitted by the telemetry
  /// sink (ring drop totals) and the batch scheduler (queue depth).
  virtual void counter(const std::string& /*name*/, double /*value*/) {}

  /// Extension: a device kernel's chunk [begin,end) executing on pool worker
  /// `worker`. Fires on the worker's own thread.
  virtual void begin_worker_chunk(std::uint64_t /*kid*/, int /*worker*/,
                                  std::uint64_t /*begin*/,
                                  std::uint64_t /*end*/) {}
  virtual void end_worker_chunk(std::uint64_t /*kid*/, int /*worker*/) {}

  /// Called once when the tool is flushed (deregistration, explicit
  /// finalize_tools(), or process exit) — write output files here.
  virtual void finalize() {}
};

void register_tool(std::shared_ptr<Tool> tool);
void deregister_tool(const std::shared_ptr<Tool>& tool);

/// True when at least one tool is registered (relaxed load; the fast-path
/// guard every event site uses).
bool tooling_active();

/// finalize() every registered tool (idempotent per tool by convention) and
/// clear the registry. Installed via atexit on first registration so traces
/// are flushed even when nobody deregisters explicitly.
void finalize_tools();

// ---------------------------------------------------------------------------
// Event dispatch (called by core.hpp / team.hpp / view.hpp / dualview.hpp /
// engine code). All return immediately when no tool is registered; kernel and
// deep-copy IDs are 0 in that case and the matching end_* is a no-op.
// ---------------------------------------------------------------------------

std::uint64_t begin_kernel(KernelType t, const std::string& name, bool device,
                           std::uint64_t items);
void end_kernel(KernelType t, std::uint64_t kid);

void push_region(const std::string& name);
void pop_region();

void allocate_data(const char* space, const std::string& label,
                   const void* ptr, std::uint64_t bytes);
void deallocate_data(const char* space, const std::string& label,
                     const void* ptr, std::uint64_t bytes);

std::uint64_t begin_deep_copy(const char* dst_space,
                              const std::string& dst_label,
                              const char* src_space,
                              const std::string& src_label,
                              std::uint64_t bytes);
void end_deep_copy(std::uint64_t id);

void fence_event(const std::string& name);

/// Broadcast a counter sample to every registered tool (no-op when none).
void count_event(const std::string& name, double value);

void begin_worker_chunk(std::uint64_t kid, int worker, std::uint64_t begin,
                        std::uint64_t end);
void end_worker_chunk(std::uint64_t kid, int worker);

// ---------------------------------------------------------------------------
// Thread identity (timeline tracks + per-rank output scoping)
// ---------------------------------------------------------------------------

/// Small dense id for the calling OS thread (assigned on first use) — the
/// timeline track id ChromeTrace uses.
int thread_track_id();

/// Human name for this thread's track ("rank-2", "pool-worker-3"); recorded
/// globally, retrievable via thread_track_names().
void set_thread_name(const std::string& name);
std::map<int, std::string> thread_track_names();

/// Logical owner tag for events emitted by this thread (simmpi sets the rank
/// id on rank threads). -1 = untagged (main thread, pool workers).
void set_thread_tag(int tag);
int thread_tag();

// ---------------------------------------------------------------------------
// RAII helpers
// ---------------------------------------------------------------------------

/// Scoped kernel event: begin in the constructor, end in the destructor, so
/// ends balance begins even when a functor throws.
class ScopedKernel {
 public:
  ScopedKernel(KernelType t, const std::string& name, bool device,
               std::uint64_t items)
      : type_(t), kid_(begin_kernel(t, name, device, items)) {}
  ~ScopedKernel() { end_kernel(type_, kid_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;
  std::uint64_t id() const { return kid_; }

 private:
  KernelType type_;
  std::uint64_t kid_;
};

/// Scoped named region (push/pop balanced under exceptions).
class ScopedRegion {
 public:
  explicit ScopedRegion(const std::string& name) { push_region(name); }
  ~ScopedRegion() { pop_region(); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;
};

/// Scoped deep-copy event.
class ScopedDeepCopy {
 public:
  ScopedDeepCopy(const char* dst_space, const std::string& dst_label,
                 const char* src_space, const std::string& src_label,
                 std::uint64_t bytes)
      : id_(begin_deep_copy(dst_space, dst_label, src_space, src_label,
                            bytes)) {}
  ~ScopedDeepCopy() { end_deep_copy(id_); }
  ScopedDeepCopy(const ScopedDeepCopy&) = delete;
  ScopedDeepCopy& operator=(const ScopedDeepCopy&) = delete;

 private:
  std::uint64_t id_;
};

/// Scoped worker-chunk event (fires on the pool worker's thread). No-op when
/// kid == 0 (no tool was registered at kernel begin).
class ScopedWorkerChunk {
 public:
  ScopedWorkerChunk(std::uint64_t kid, int worker, std::uint64_t begin,
                    std::uint64_t end)
      : kid_(kid), worker_(worker) {
    if (kid_) begin_worker_chunk(kid_, worker_, begin, end);
  }
  ~ScopedWorkerChunk() {
    if (kid_) end_worker_chunk(kid_, worker_);
  }
  ScopedWorkerChunk(const ScopedWorkerChunk&) = delete;
  ScopedWorkerChunk& operator=(const ScopedWorkerChunk&) = delete;

 private:
  std::uint64_t kid_;
  int worker_;
};

}  // namespace kk::profiling
