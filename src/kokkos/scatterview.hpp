// kk::ScatterView — write-conflict-free unstructured accumulation (§3.2).
//
// Transparently swaps between three deconflicting strategies:
//   * Atomic     — every contribution is a thread-atomic add (GPU default:
//                  with O(100k) active threads duplication is infeasible),
//   * Duplicated — one private replica per pool thread, combined by
//                  contribute() (CPU default, best with modest thread counts),
//   * Sequential — plain adds (serial host execution).
// The access handle pattern matches Kokkos: create, access() inside the
// kernel, contribute() after.
#pragma once

#include <vector>

#include "kokkos/core.hpp"
#include "kokkos/threadpool.hpp"
#include "kokkos/view.hpp"

namespace kk {

enum class ScatterMode { Atomic, Duplicated, Sequential };

/// Default deconflicting strategy per space, as the paper describes.
template <class Space>
constexpr ScatterMode default_scatter_mode() {
  return Space::is_device ? ScatterMode::Atomic : ScatterMode::Sequential;
}

template <class T, int Rank, class Space = DefaultExecutionSpace>
class ScatterView {
  using target_view = View<T, Rank, typename Space::default_layout>;

 public:
  ScatterView() = default;

  explicit ScatterView(target_view target,
                       ScatterMode mode = default_scatter_mode<Space>())
      : target_(target), mode_(mode) {
    if (mode_ == ScatterMode::Duplicated) {
      const int nrep = ThreadPool::instance().concurrency();
      replicas_.assign(std::size_t(nrep), {});
      for (auto& r : replicas_) {
        r = target_view("scatter_replica", target_.extent(0),
                        Rank > 1 ? target_.extent(1) : 0,
                        Rank > 2 ? target_.extent(2) : 0);
        r.fill(T(0));
      }
    }
  }

  ScatterMode mode() const { return mode_; }

  class Access {
   public:
    Access(const ScatterView* sv) : sv_(sv) {}
    void add(std::size_t i0, T v) const {
      static_assert(Rank == 1);
      T* addr = sv_->slot(i0, 0, 0);
      sv_->accumulate(addr, v);
    }
    void add(std::size_t i0, std::size_t i1, T v) const {
      static_assert(Rank == 2);
      T* addr = sv_->slot(i0, i1, 0);
      sv_->accumulate(addr, v);
    }
    void add(std::size_t i0, std::size_t i1, std::size_t i2, T v) const {
      static_assert(Rank == 3);
      T* addr = sv_->slot(i0, i1, i2);
      sv_->accumulate(addr, v);
    }

   private:
    const ScatterView* sv_;
  };

  Access access() const { return Access(this); }

  /// Combine replicas into the target (no-op for Atomic/Sequential, whose
  /// adds already landed in the target).
  void contribute() {
    if (mode_ != ScatterMode::Duplicated) return;
    const std::size_t n = target_.size();
    for (auto& r : replicas_) {
      T* dst = target_.data();
      const T* src = r.data();
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      r.fill(T(0));
    }
  }

  /// Zero replicas (Duplicated) so the handle can be reused next timestep.
  void reset() {
    if (mode_ == ScatterMode::Duplicated)
      for (auto& r : replicas_) r.fill(T(0));
  }

 private:
  friend class Access;

  T* slot(std::size_t i0, std::size_t i1, std::size_t i2) const {
    const target_view& v =
        mode_ == ScatterMode::Duplicated
            ? replicas_[std::size_t(ThreadPool::this_thread_rank())]
            : target_;
    if constexpr (Rank == 1)
      return &v(i0);
    else if constexpr (Rank == 2)
      return &v(i0, i1);
    else
      return &v(i0, i1, i2);
  }

  void accumulate(T* addr, T v) const {
    if (mode_ == ScatterMode::Atomic)
      atomic_add(addr, v);
    else
      *addr += v;
  }

  target_view target_;
  ScatterMode mode_ = ScatterMode::Sequential;
  std::vector<target_view> replicas_;
};

}  // namespace kk
