#include "kokkos/instance.hpp"

#include <atomic>
#include <cstdio>
#include <vector>

#include "kokkos/profiling.hpp"

namespace kk {

namespace {

std::atomic<int> g_next_instance_id{0};

// Registry of live instances, consumed by fence_all() (the global
// kk::fence()). Leaked like the profiling registries so ordering against
// static destructors is never an issue.
struct InstanceRegistry {
  std::mutex mu;
  std::vector<DeviceInstance*> live;
};

InstanceRegistry& registry() {
  static InstanceRegistry* r = new InstanceRegistry;
  return *r;
}

void registry_add(DeviceInstance* inst) {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.live.push_back(inst);
}

void registry_remove(DeviceInstance* inst) {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::erase(r.live, inst);
}

}  // namespace

DeviceInstance::DeviceInstance(std::string label)
    : id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      name_("instance-" + std::to_string(id_) +
            (label.empty() ? "" : ":" + label)) {
  registry_add(this);
  stream_ = std::thread([this] { stream_loop(); });
}

DeviceInstance::~DeviceInstance() {
  // Drain, but never throw from a destructor: a deferred task exception
  // that nobody fenced for is reported and dropped.
  try {
    fence();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: dropped task exception at destruction: %s\n",
                 name_.c_str(), e.what());
  } catch (...) {
    std::fprintf(stderr, "%s: dropped task exception at destruction\n",
                 name_.c_str());
  }
  registry_remove(this);
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  stream_.join();
}

void DeviceInstance::enqueue(std::string label, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(
        Task{std::move(label), std::move(task), profiling::thread_tag()});
  }
  cv_work_.notify_one();
}

void DeviceInstance::fence() {
  profiling::fence_event("DeviceInstance[" + name_ + "]::fence");
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && !running_task_; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool DeviceInstance::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && !running_task_;
}

std::uint64_t DeviceInstance::tasks_completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return completed_;
}

void DeviceInstance::fence_all() {
  // Holding the registry lock during the fences also blocks instance
  // destruction mid-iteration; instance fences cannot re-enter fence_all.
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (DeviceInstance* inst : r.live) inst->fence();
}

int DeviceInstance::live_count() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return int(r.live.size());
}

std::vector<DeviceInstance::Stat> DeviceInstance::live_stats() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<Stat> out;
  out.reserve(r.live.size());
  for (DeviceInstance* inst : r.live)
    out.push_back(Stat{inst->id(), inst->name(), inst->tasks_completed()});
  return out;
}

DeviceInstance& InstancePool::acquire() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_.empty()) {
      DeviceInstance* inst = free_.back();
      free_.pop_back();
      return *inst;
    }
  }
  // Create outside the lock (instance construction spawns a thread). The
  // label numbers instances by creation order within this pool.
  auto inst = std::make_unique<DeviceInstance>(label_);
  DeviceInstance& ref = *inst;
  std::lock_guard<std::mutex> lk(mu_);
  all_.push_back(std::move(inst));
  return ref;
}

void InstancePool::release(DeviceInstance& inst) {
  // Fence first: a deferred exception belongs to the releasing job, not to
  // whoever acquires the instance next. If fence throws, the instance is
  // clean afterwards (the error slot is consumed), so still return it.
  struct Return {
    InstancePool* pool;
    DeviceInstance* inst;
    ~Return() {
      std::lock_guard<std::mutex> lk(pool->mu_);
      pool->free_.push_back(inst);
    }
  } ret{this, &inst};
  inst.fence();
}

int InstancePool::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return int(all_.size());
}

int InstancePool::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  return int(free_.size());
}

void DeviceInstance::stream_loop() {
  profiling::set_thread_name(name_);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      running_task_ = true;
    }
    // Carry the submitting thread's simmpi rank tag so profiling tools
    // attribute this task's events to the right rank.
    profiling::set_thread_tag(task.tag);
    std::exception_ptr err;
    try {
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    profiling::set_thread_tag(-1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_task_ = false;
      ++completed_;
      if (err && !error_) error_ = err;
      if (queue_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace kk
