// Minimal JSON support for the profiling tools: an escaping writer used by
// the report/trace emitters and a strict recursive-descent parser used by
// tests and the tier-1 trace validator. Deliberately tiny — no external
// dependency, UTF-8 passed through verbatim.
#pragma once

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mlk::json {

/// Escape a string for embedding in a JSON document (adds no quotes).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string quote(const std::string& s) {
  return "\"" + escape(s) + "\"";
}

/// Format a double the way JSON expects (no inf/nan — clamped to 0).
inline std::string num(double v) {
  if (!(v == v) || v > 1e300 || v < -1e300) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_string() const { return type == Type::String; }
  bool is_number() const { return type == Type::Number; }

  /// Object member access; returns a shared Null value when absent.
  const Value& operator[](const std::string& key) const {
    static const Value null_value;
    auto it = obj.find(key);
    return it == obj.end() ? null_value : it->second;
  }
};

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::String;
        v.str = parse_string();
        return v;
      }
      case 't': parse_literal("true"); return make_bool(true);
      case 'f': parse_literal("false"); return make_bool(false);
      case 'n': parse_literal("null"); return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::Bool;
    v.boolean = b;
    return v;
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            // Decode only to validate; non-BMP not needed for our output.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            if (code < 0x80) out += char(code);
            else out += '?';  // tools never emit non-ASCII
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document; throws ParseError on malformed input.
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse_document();
}

}  // namespace mlk::json
