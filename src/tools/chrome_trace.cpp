#include "tools/chrome_trace.hpp"

#include <chrono>
#include <fstream>
#include <set>

#include "tools/json.hpp"

namespace mlk::tools {

namespace {

double steady_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Worker-chunk spans share the open-span map with kernels/deep copies; give
// them a disjoint key space: high bit set, worker rank in the low bits.
std::uint64_t chunk_key(std::uint64_t kid, int worker) {
  return (1ULL << 63) | (kid << 12) | (std::uint64_t(worker) & 0xFFF);
}

}  // namespace

ChromeTrace::ChromeTrace(std::string path, int only_tag)
    : path_(std::move(path)), only_tag_(only_tag), t0_us_(steady_us()) {}

ChromeTrace::~ChromeTrace() { finalize(); }

double ChromeTrace::now_us() const { return steady_us() - t0_us_; }

bool ChromeTrace::accepts_current_thread() const {
  return only_tag_ == kNoFilter ||
         kk::profiling::thread_tag() == only_tag_;
}

void ChromeTrace::open(std::uint64_t key, const std::string& name,
                       const char* cat, std::uint64_t items) {
  if (!accepts_current_thread()) return;
  OpenSpan span{name, cat, now_us(), kk::profiling::thread_track_id(),
                kk::profiling::thread_tag(), items};
  std::lock_guard<std::mutex> lk(mu_);
  if (finalized_) return;
  open_[key] = std::move(span);
}

void ChromeTrace::close(std::uint64_t key) {
  const double t1 = now_us();
  std::lock_guard<std::mutex> lk(mu_);
  if (finalized_) return;
  auto it = open_.find(key);
  if (it == open_.end()) return;
  const OpenSpan& o = it->second;
  events_.push_back(Event{o.name, o.cat, 'X', o.ts_us, t1 - o.ts_us, o.tid,
                          o.tag, o.items});
  open_.erase(it);
}

void ChromeTrace::begin_parallel_for(const std::string& name, bool device,
                                     std::uint64_t items, std::uint64_t kid) {
  open(kid, name, device ? "kernel,device" : "kernel", items);
}
void ChromeTrace::end_parallel_for(std::uint64_t kid) { close(kid); }
void ChromeTrace::begin_parallel_reduce(const std::string& name, bool device,
                                        std::uint64_t items,
                                        std::uint64_t kid) {
  open(kid, name, device ? "kernel,device" : "kernel", items);
}
void ChromeTrace::end_parallel_reduce(std::uint64_t kid) { close(kid); }
void ChromeTrace::begin_parallel_scan(const std::string& name, bool device,
                                      std::uint64_t items, std::uint64_t kid) {
  open(kid, name, device ? "kernel,device" : "kernel", items);
}
void ChromeTrace::end_parallel_scan(std::uint64_t kid) { close(kid); }

void ChromeTrace::push_region(const std::string& name) {
  if (!accepts_current_thread()) return;
  Event e{name, "region", 'B', now_us(), 0.0,
          kk::profiling::thread_track_id(), kk::profiling::thread_tag(), 0};
  std::lock_guard<std::mutex> lk(mu_);
  if (!finalized_) events_.push_back(std::move(e));
}

void ChromeTrace::pop_region(const std::string& name) {
  if (!accepts_current_thread()) return;
  Event e{name, "region", 'E', now_us(), 0.0,
          kk::profiling::thread_track_id(), kk::profiling::thread_tag(), 0};
  std::lock_guard<std::mutex> lk(mu_);
  if (!finalized_) events_.push_back(std::move(e));
}

void ChromeTrace::begin_deep_copy(const char* dst_space,
                                  const std::string& /*dst_label*/,
                                  const char* src_space,
                                  const std::string& /*src_label*/,
                                  std::uint64_t bytes, std::uint64_t id) {
  open(id, std::string("deep_copy[") + dst_space + "<-" + src_space + "]",
       "deep_copy", bytes);
}
void ChromeTrace::end_deep_copy(std::uint64_t id) { close(id); }

void ChromeTrace::fence(const std::string& name) {
  if (!accepts_current_thread()) return;
  Event e{name, "fence", 'i', now_us(), 0.0,
          kk::profiling::thread_track_id(), kk::profiling::thread_tag(), 0};
  std::lock_guard<std::mutex> lk(mu_);
  if (!finalized_) events_.push_back(std::move(e));
}

void ChromeTrace::counter(const std::string& name, double value) {
  if (!accepts_current_thread()) return;
  Event e{name, "counter", 'C', now_us(), 0.0,
          kk::profiling::thread_track_id(), kk::profiling::thread_tag(), 0};
  e.arg_value = value;
  std::lock_guard<std::mutex> lk(mu_);
  if (!finalized_) events_.push_back(std::move(e));
}

void ChromeTrace::allocate_data(const char* /*space*/,
                                const std::string& /*label*/,
                                const void* /*ptr*/, std::uint64_t bytes) {
  if (!accepts_current_thread()) return;
  const double t = now_us();
  const int tid = kk::profiling::thread_track_id();
  const int tag = kk::profiling::thread_tag();
  std::lock_guard<std::mutex> lk(mu_);
  if (finalized_) return;
  live_bytes_ += bytes;
  if (live_bytes_ > hwm_bytes_) hwm_bytes_ = live_bytes_;
  Event live{"mem.live_bytes", "counter", 'C', t, 0.0, tid, tag, 0};
  live.arg_value = double(live_bytes_);
  events_.push_back(std::move(live));
  Event hwm{"mem.hwm_bytes", "counter", 'C', t, 0.0, tid, tag, 0};
  hwm.arg_value = double(hwm_bytes_);
  events_.push_back(std::move(hwm));
}

void ChromeTrace::deallocate_data(const char* /*space*/,
                                  const std::string& /*label*/,
                                  const void* /*ptr*/, std::uint64_t bytes) {
  if (!accepts_current_thread()) return;
  const double t = now_us();
  const int tid = kk::profiling::thread_track_id();
  const int tag = kk::profiling::thread_tag();
  std::lock_guard<std::mutex> lk(mu_);
  if (finalized_) return;
  live_bytes_ = bytes <= live_bytes_ ? live_bytes_ - bytes : 0;
  Event live{"mem.live_bytes", "counter", 'C', t, 0.0, tid, tag, 0};
  live.arg_value = double(live_bytes_);
  events_.push_back(std::move(live));
}

void ChromeTrace::begin_worker_chunk(std::uint64_t kid, int worker,
                                     std::uint64_t begin, std::uint64_t end) {
  std::string name;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = open_.find(kid);
    // Inherit the kernel's name (begin_parallel_* precedes worker chunks on
    // the dispatching thread). The kernel span may be filtered out when
    // only_tag_ scopes to a rank; chunks then vanish with it.
    if (it == open_.end()) return;
    name = it->second.name;
  }
  open(chunk_key(kid, worker), name, "chunk", end - begin);
}

void ChromeTrace::end_worker_chunk(std::uint64_t kid, int worker) {
  close(chunk_key(kid, worker));
}

std::size_t ChromeTrace::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void ChromeTrace::write_file(const std::string& path,
                             const std::vector<const Event*>& events,
                             const std::map<int, std::string>& names) {
  std::ofstream f(path);
  f << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::set<int> tids;
  for (const Event* e : events) tids.insert(e->tid);
  for (const int tid : tids) {
    std::string name = "thread-" + std::to_string(tid);
    auto it = names.find(tid);
    if (it != names.end()) name = it->second;
    if (!first) f << ",";
    first = false;
    f << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
      << ",\"args\":{\"name\":" << json::quote(name) << "}}";
  }
  for (const Event* e : events) {
    if (!first) f << ",";
    first = false;
    f << "{\"name\":" << json::quote(e->name) << ",\"cat\":\"" << e->cat
      << "\",\"ph\":\"" << e->ph << "\",\"pid\":0,\"tid\":" << e->tid
      << ",\"ts\":" << json::num(e->ts_us);
    if (e->ph == 'X') f << ",\"dur\":" << json::num(e->dur_us);
    if (e->ph == 'i') f << ",\"s\":\"t\"";
    if (e->ph == 'C')
      f << ",\"args\":{\"value\":" << json::num(e->arg_value) << "}";
    else if (e->arg_items)
      f << ",\"args\":{\"items\":" << e->arg_items << "}";
    f << "}";
  }
  f << "]}\n";
}

void ChromeTrace::finalize() {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (finalized_) return;
    finalized_ = true;
    events.swap(events_);
    open_.clear();
  }
  const auto names = kk::profiling::thread_track_names();

  if (only_tag_ != kNoFilter) {
    std::vector<const Event*> all;
    all.reserve(events.size());
    for (const Event& e : events) all.push_back(&e);
    write_file(path_, all, names);
    return;
  }

  // Split mode: rank-tagged events go to path.rank<r>; untagged events
  // (serial main thread, pool workers) go to the base path.
  std::set<int> tags;
  for (const Event& e : events)
    if (e.tag >= 0) tags.insert(e.tag);

  std::vector<const Event*> base;
  for (const Event& e : events)
    if (e.tag < 0) base.push_back(&e);
  // A serial run has no tagged events: the base file is the whole trace.
  // With ranks present the base file still gets the shared worker tracks.
  write_file(path_, base, names);
  for (const int tag : tags) {
    std::vector<const Event*> sel;
    for (const Event& e : events)
      if (e.tag == tag) sel.push_back(&e);
    write_file(path_ + ".rank" + std::to_string(tag), sel, names);
  }
}

}  // namespace mlk::tools
