// MemorySpaceTracker — a built-in tool accounting View memory per space
// ("Host" / "Device"): live bytes, allocation/deallocation counts, and the
// high-water mark, plus a leak report listing allocations still live at
// finalize. This is the minikokkos analogue of Kokkos Tools' MemoryUsage /
// MemoryEvents tools, and what the paper's host<->device residency claims
// (§3.2) are audited with.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kokkos/profiling.hpp"

namespace mlk::tools {

class MemorySpaceTracker : public kk::profiling::Tool {
 public:
  struct SpaceStat {
    std::uint64_t live_bytes = 0;
    std::uint64_t live_allocs = 0;
    std::uint64_t alloc_count = 0;
    std::uint64_t dealloc_count = 0;
    std::uint64_t high_water_bytes = 0;
    std::uint64_t total_alloc_bytes = 0;
  };

  struct LiveAlloc {
    std::string space;
    std::string label;
    std::uint64_t bytes = 0;
  };

  void allocate_data(const char* space, const std::string& label,
                     const void* ptr, std::uint64_t bytes) override;
  void deallocate_data(const char* space, const std::string& label,
                       const void* ptr, std::uint64_t bytes) override;

  /// Prints the leak report to stderr if any tracked allocation is still
  /// live (and print_leaks is enabled).
  void finalize() override;

  std::map<std::string, SpaceStat> stats() const;
  std::vector<LiveAlloc> live_allocations() const;

  /// Human-readable per-space table plus leak list.
  std::string text_report() const;
  /// JSON object string: {"Host": {live_bytes, ...}, "Device": {...}}.
  std::string json_fragment() const;

  void set_print_leaks(bool on) { print_leaks_ = on; }
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SpaceStat> spaces_;
  std::map<const void*, LiveAlloc> live_;
  bool print_leaks_ = true;
};

}  // namespace mlk::tools
