// KernelTimer — a built-in KokkosP-style tool that times every kernel
// dispatch: per-kernel call count, total/min/max/mean seconds, and an
// items-per-second rate (the per-kernel measurement the paper's Figs. 2-7
// are built from). DualView deep copies are accumulated as pseudo-kernels
// named "deep_copy[DST<-SRC]" so transfer time shows up in the same table.
//
// Stats are kept per (thread tag, kernel name); under simmpi each rank
// thread carries its rank as the tag, so report()/write_json() can emit
// per-rank output files exactly like one-process-per-rank MPI tools do.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kokkos/profiling.hpp"

namespace mlk::tools {

class KernelTimer : public kk::profiling::Tool {
 public:
  struct Stat {
    std::uint64_t count = 0;
    std::uint64_t device_count = 0;
    std::uint64_t total_items = 0;
    double total_s = 0.0;
    double min_s = 0.0;
    double max_s = 0.0;
    double mean_s() const { return count ? total_s / double(count) : 0.0; }
    double items_per_s() const {
      return total_s > 0.0 ? double(total_items) / total_s : 0.0;
    }
  };

  void begin_parallel_for(const std::string& name, bool device,
                          std::uint64_t items, std::uint64_t kid) override;
  void end_parallel_for(std::uint64_t kid) override;
  void begin_parallel_reduce(const std::string& name, bool device,
                             std::uint64_t items, std::uint64_t kid) override;
  void end_parallel_reduce(std::uint64_t kid) override;
  void begin_parallel_scan(const std::string& name, bool device,
                           std::uint64_t items, std::uint64_t kid) override;
  void end_parallel_scan(std::uint64_t kid) override;
  void begin_deep_copy(const char* dst_space, const std::string& dst_label,
                       const char* src_space, const std::string& src_label,
                       std::uint64_t bytes, std::uint64_t id) override;
  void end_deep_copy(std::uint64_t id) override;
  void finalize() override;

  /// Merged-across-tags stats, keyed by kernel name.
  std::map<std::string, Stat> stats() const;
  /// Stats for one thread tag only (-1 = untagged events).
  std::map<std::string, Stat> stats_for_tag(int tag) const;
  /// Distinct tags seen (>= 0 only; rank ids under simmpi).
  std::vector<int> tags() const;

  /// Human-readable table, sorted by total time descending.
  std::string text_report() const;
  /// JSON object string: {"kernel": {count, total_s, ...}, ...}.
  std::string json_fragment() const;

  /// Write {"kernels": ...} to `path`. With per-rank tags present, also
  /// writes path.rank<r> files scoped to each rank's events.
  void write_json(const std::string& path) const;

  void clear();

  /// Where finalize() dumps: "" = nowhere, "-" = text to stderr, else a
  /// JSON file path (the MLK_PROFILE wiring).
  void set_output(std::string path) { output_ = std::move(path); }

 private:
  struct Open {
    int tag;
    std::string name;
    bool device;
    std::uint64_t items;
    double t0;
  };

  void begin(const std::string& name, bool device, std::uint64_t items,
             std::uint64_t kid);
  void end(std::uint64_t kid);
  static std::string json_for(const std::map<std::string, Stat>& stats);

  mutable std::mutex mu_;
  std::map<std::uint64_t, Open> open_;
  std::map<std::pair<int, std::string>, Stat> stats_;
  std::string output_;
};

}  // namespace mlk::tools
