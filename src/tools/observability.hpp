// Observability wiring: environment-variable activation of the built-in
// profiling tools and the combined profile report used by the `profile dump`
// input command.
//
//   MLK_PROFILE=1|on      register KernelTimer + MemorySpaceTracker; text
//                         report to stderr at process exit
//   MLK_PROFILE=<path>    same, but dump JSON to <path> at exit (plus
//                         <path>.rank<r> per simmpi rank when ranks ran)
//   MLK_TRACE=<path>      register ChromeTrace; write chrome://tracing JSON
//                         to <path> at exit (plus <path>.rank<r> per rank)
//
// Tools registered here are global (they observe every Simulation in the
// process) and are flushed by kk::profiling::finalize_tools() via atexit.
#pragma once

#include <memory>
#include <string>

#include "tools/kernel_timer.hpp"
#include "tools/memory_tracker.hpp"

namespace mlk::tools {

/// Read MLK_PROFILE / MLK_TRACE and register the corresponding tools.
/// Idempotent; called from mlk::init_all().
void init_from_env();

/// Write the combined {"kernels": ..., "memory": ...} profile report.
void write_profile_json(const std::string& path, const KernelTimer& timer,
                        const MemorySpaceTracker& mem);

}  // namespace mlk::tools
