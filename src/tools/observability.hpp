// Observability wiring: environment-variable activation of the built-in
// profiling tools and the combined profile report used by the `profile dump`
// input command.
//
//   MLK_PROFILE=1|on      register KernelTimer + MemorySpaceTracker; text
//                         report to stderr at process exit
//   MLK_PROFILE=<path>    same, but dump JSON to <path> at exit (plus
//                         <path>.rank<r> per simmpi rank when ranks ran)
//   MLK_TRACE=<path>      register ChromeTrace; write chrome://tracing JSON
//                         to <path> at exit (plus <path>.rank<r> per rank)
//   MLK_TELEMETRY=<path>[:key=val,...]
//                         start the real-time telemetry hub streaming a live
//                         JSON snapshot to <path> and an NDJSON tail to
//                         <path>.ndjson (src/tools/telemetry/). Options:
//                         interval_ms, coords_every, rdf_bins, rdf_rcut,
//                         insitu_max_atoms — e.g.
//                         MLK_TELEMETRY=/tmp/t.json:interval_ms=20,coords_every=25
//
// The full observability surface is documented in docs/OBSERVABILITY.md.
// Tools registered here are global (they observe every Simulation in the
// process) and are flushed by kk::profiling::finalize_tools() via atexit.
#pragma once

#include <memory>
#include <string>

#include "tools/kernel_timer.hpp"
#include "tools/memory_tracker.hpp"

namespace mlk::tools {

/// Read MLK_PROFILE / MLK_TRACE / MLK_TELEMETRY and register the
/// corresponding tools. Idempotent; called from mlk::init_all().
void init_from_env();

/// Parse "<path>[:key=val,...]" into a telemetry Config and start the hub.
/// Shared by the MLK_TELEMETRY hook and the `telemetry` input command.
/// Returns false (with a message to stderr) on a malformed option.
bool start_telemetry_from_spec(const std::string& spec);

/// Write the combined {"kernels": ..., "memory": ...} profile report.
void write_profile_json(const std::string& path, const KernelTimer& timer,
                        const MemorySpaceTracker& mem);

}  // namespace mlk::tools
