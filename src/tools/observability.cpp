#include "tools/observability.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "tools/chrome_trace.hpp"
#include "tools/json.hpp"
#include "tools/telemetry/telemetry.hpp"

namespace mlk::tools {

namespace {

// Emits the combined kernels+memory report when the tool set registered by
// MLK_PROFILE is flushed at process exit. Registered after the two
// collecting tools so its finalize() sees their final state.
class EnvProfileDump : public kk::profiling::Tool {
 public:
  EnvProfileDump(std::string path, std::shared_ptr<KernelTimer> timer,
                 std::shared_ptr<MemorySpaceTracker> mem)
      : path_(std::move(path)),
        timer_(std::move(timer)),
        mem_(std::move(mem)) {}

  void finalize() override {
    if (path_ == "-") {
      std::fputs(timer_->text_report().c_str(), stderr);
      std::fputs(mem_->text_report().c_str(), stderr);
    } else {
      write_profile_json(path_, *timer_, *mem_);
      // Per-rank kernel timings when simmpi ranks ran (path.rank<r>).
      for (const int tag : timer_->tags()) {
        std::ofstream f(path_ + ".rank" + std::to_string(tag));
        f << "{\"kernels\":" << timer_json_for_tag(tag) << "}\n";
      }
    }
  }

 private:
  std::string timer_json_for_tag(int tag) const {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, s] : timer_->stats_for_tag(tag)) {
      if (!first) out += ",";
      first = false;
      out += json::quote(name) + ":{\"count\":" + std::to_string(s.count) +
             ",\"total_s\":" + json::num(s.total_s) +
             ",\"min_s\":" + json::num(s.min_s) +
             ",\"max_s\":" + json::num(s.max_s) +
             ",\"mean_s\":" + json::num(s.mean_s()) +
             ",\"items_per_s\":" + json::num(s.items_per_s()) + "}";
    }
    return out + "}";
  }

  std::string path_;
  std::shared_ptr<KernelTimer> timer_;
  std::shared_ptr<MemorySpaceTracker> mem_;
};

}  // namespace

void init_from_env() {
  // Process-level env hooks register exactly once; call_once (rather than a
  // bare bool) so concurrent first callers — the batch server initializes
  // from its scheduler thread — can't double-register or see a half-done
  // registration.
  static std::once_flag once;
  std::call_once(once, [] {

  if (const char* p = std::getenv("MLK_PROFILE")) {
    const std::string val(p);
    if (!val.empty() && val != "0" && val != "off") {
      auto timer = std::make_shared<KernelTimer>();
      auto mem = std::make_shared<MemorySpaceTracker>();
      kk::profiling::register_tool(timer);
      kk::profiling::register_tool(mem);
      kk::profiling::register_tool(std::make_shared<EnvProfileDump>(
          val == "1" || val == "on" ? "-" : val, std::move(timer),
          std::move(mem)));
    }
  }

  if (const char* t = std::getenv("MLK_TRACE")) {
    const std::string val(t);
    if (!val.empty() && val != "0" && val != "off")
      kk::profiling::register_tool(std::make_shared<ChromeTrace>(val));
  }

  if (const char* t = std::getenv("MLK_TELEMETRY")) {
    const std::string val(t);
    if (!val.empty() && val != "0" && val != "off")
      start_telemetry_from_spec(val);
  }
  });
}

bool start_telemetry_from_spec(const std::string& spec) {
  telemetry::Config cfg;
  std::string::size_type opt = spec.find(':');
  cfg.path = spec.substr(0, opt);
  while (opt != std::string::npos) {
    const std::string::size_type start = opt + 1;
    opt = spec.find(',', start);
    const std::string kv = spec.substr(
        start, opt == std::string::npos ? std::string::npos : opt - start);
    const std::string::size_type eq = kv.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "telemetry: malformed option '%s'\n", kv.c_str());
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "interval_ms")
      cfg.interval_ms = std::atoi(val.c_str());
    else if (key == "coords_every")
      cfg.coords_every = std::atoi(val.c_str());
    else if (key == "rdf_bins")
      cfg.rdf_bins = std::atoi(val.c_str());
    else if (key == "rdf_rcut")
      cfg.rdf_rcut = std::atof(val.c_str());
    else if (key == "insitu_max_atoms")
      cfg.insitu_max_atoms = std::size_t(std::atoll(val.c_str()));
    else {
      std::fprintf(stderr, "telemetry: unknown option '%s'\n", key.c_str());
      return false;
    }
  }
  if (cfg.interval_ms <= 0) cfg.interval_ms = 50;
  telemetry::Hub::instance().start(cfg);
  return true;
}

void write_profile_json(const std::string& path, const KernelTimer& timer,
                        const MemorySpaceTracker& mem) {
  std::ofstream f(path);
  f << "{\"kernels\":" << timer.json_fragment()
    << ",\"memory\":" << mem.json_fragment() << "}\n";
}

}  // namespace mlk::tools
