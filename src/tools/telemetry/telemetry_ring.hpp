// TelemetryRing<T> — fixed-capacity lock-free SPSC ring buffer for the
// real-time telemetry layer (docs/OBSERVABILITY.md).
//
// Design goals, in priority order:
//
//   1. The producer (a Verlet step loop, the batch scheduler) is WAIT-FREE:
//      push() is a bounded straight-line sequence of plain stores and atomic
//      stores — no loops, no CAS retries, no locks, no allocation, no
//      syscalls. A stalled (or absent) consumer can never slow a step.
//   2. Backpressure is DROP-OLDEST: when the consumer falls behind by more
//      than the capacity, the producer simply overwrites the oldest unread
//      slot. Freshness beats completeness for live observability — a
//      dashboard wants the latest step, not a complete history (the NDJSON
//      tail is best-effort by construction; the drop counter says exactly
//      how best).
//   3. Reads are never torn: every slot carries a seqlock-style generation
//      stamp written around the payload. A consumer that loses the race with
//      a lapping producer detects the overwrite and accounts the sample as
//      dropped instead of returning a frankensample.
//
// Memory layout: head (producer cursor), tail (consumer cursor) and the drop
// counter live on separate cache lines so the producer's store stream never
// false-shares with the consumer's.
//
// Sequence/stamp protocol, for slot i = seq & mask:
//   producer:  slot.stamp <- 2*seq+1 (odd: write in progress)
//              release fence; slot.value <- v; release fence
//              slot.stamp <- 2*seq+2 (even: generation seq complete)
//              head <- seq+1 (release)
//   consumer:  a read of generation seq is valid iff slot.stamp == 2*seq+2
//              both before and after the payload copy (acquire ordering).
//
// Single producer, single consumer. "Single producer" means no two threads
// push concurrently; handing the producer role across threads is fine when
// the handoff itself synchronizes (the batch scheduler's per-wave fences do
// exactly that for a job's stepping thread).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace mlk::tools::telemetry {

template <typename T>
class TelemetryRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "TelemetryRing payloads must be trivially copyable: the "
                "consumer copies them concurrently with producer overwrites "
                "and relies on the stamp (not the type) for integrity");

 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TelemetryRing(std::size_t capacity_hint = 1024)
      : cap_(round_up_pow2(capacity_hint)),
        mask_(cap_ - 1),
        slots_(cap_) {}

  TelemetryRing(const TelemetryRing&) = delete;
  TelemetryRing& operator=(const TelemetryRing&) = delete;

  std::size_t capacity() const { return cap_; }

  /// Producer side. Wait-free: bounded straight-line code, no loops.
  void push(const T& v) {
    const std::uint64_t w = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[w & mask_];
    s.stamp.store(2 * w + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.value = v;
    std::atomic_thread_fence(std::memory_order_release);
    s.stamp.store(2 * w + 2, std::memory_order_release);
    head_.store(w + 1, std::memory_order_release);
  }

  /// Consumer side. Returns false when no unread sample is available.
  /// Samples lost to drop-oldest overwrites are added to drops() exactly
  /// once: every sequence number ever pushed is either returned by pop()
  /// or counted dropped, never both, never neither.
  bool pop(T& out) {
    std::uint64_t r = tail_.load(std::memory_order_relaxed);
    const std::uint64_t w = head_.load(std::memory_order_acquire);
    if (r == w) return false;

    // Producer lapped us: everything older than w - cap_ is gone.
    if (w - r > cap_) {
      drops_.fetch_add(w - cap_ - r, std::memory_order_relaxed);
      r = w - cap_;
    }

    while (r != w) {
      if (read_slot(r, out)) {
        tail_.store(r + 1, std::memory_order_release);
        return true;
      }
      // Stamp mismatch: the producer overwrote (or is overwriting)
      // generation r while we looked. That sample is lost — count it and
      // try the next one.
      drops_.fetch_add(1, std::memory_order_relaxed);
      ++r;
    }
    tail_.store(r, std::memory_order_release);
    return false;
  }

  /// Unread samples right now (racy snapshot, consumer/monitoring use).
  std::size_t approx_size() const {
    const std::uint64_t w = head_.load(std::memory_order_acquire);
    const std::uint64_t r = tail_.load(std::memory_order_acquire);
    const std::uint64_t n = w - r;
    return n > cap_ ? cap_ : std::size_t(n);
  }

  /// Total samples ever pushed (producer cursor).
  std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Samples lost to drop-oldest backpressure (exact, see pop()).
  std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // 0 = never written
    T value{};
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  bool read_slot(std::uint64_t seq, T& out) {
    const Slot& s = slots_[seq & mask_];
    const std::uint64_t want = 2 * seq + 2;
    if (s.stamp.load(std::memory_order_acquire) != want) return false;
    out = s.value;
    std::atomic_thread_fence(std::memory_order_acquire);
    return s.stamp.load(std::memory_order_relaxed) == want;
  }

  const std::size_t cap_;
  const std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> drops_{0};
  std::vector<Slot> slots_;
};

}  // namespace mlk::tools::telemetry
