// In-situ analysis math for the telemetry sink: RDF and MSD computed from a
// packed coordinate sample (CoordCapture snapshot) on the consumer thread.
//
// These are pure functions of (coords, box) so they can run concurrently
// with the step loop that produced the sample. The engine-side computes
// share them: ComputeRDF (src/engine/compute_rdf.cpp) normalizes its
// neighbor-list histogram through normalize_rdf_hist, and the MSD compute
// (src/engine/compute_msd.cpp) accumulates displacement through MsdTracker
// — one definition of the physics for the scripted and the live path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mlk::tools::telemetry {

/// Minimum-image convention for one displacement component in a periodic
/// box of length `prd`.
inline double min_image(double d, double prd) {
  if (prd <= 0.0) return d;
  while (d > 0.5 * prd) d -= prd;
  while (d < -0.5 * prd) d += prd;
  return d;
}

/// Normalize a raw pair-distance histogram into g(r): divide each bin by
/// the ideal-gas pair count in its shell. `npairs_weighted` conventions are
/// the caller's; `n` is the atom count the histogram was built over and
/// `volume` the box volume it lives in. Writes g(r) and the bin centers.
void normalize_rdf_hist(const std::vector<double>& hist, double n,
                        double volume, double rcut, std::vector<double>& gr,
                        std::vector<double>& r_centers);

struct RdfResult {
  std::vector<double> r;   // bin centers
  std::vector<double> gr;  // g(r)
  double peak = 0.0;       // max g(r)
  double r_peak = 0.0;     // its location
  std::size_t atoms_used = 0;
};

/// Brute-force O(n^2) g(r) over packed coordinates with minimum-image
/// periodic boundaries. When n exceeds `max_atoms`, atoms are strided
/// uniformly down to at most that many — a live diagnostic wants a stable
/// estimate at bounded consumer-thread cost, not an exact census.
RdfResult rdf_from_coords(const double* x, std::size_t n, const double prd[3],
                          int nbins, double rcut, std::size_t max_atoms = 0);

/// Mean-square displacement across a sequence of coordinate samples.
/// Displacements are accumulated per atom tag with minimum-image unwrapping
/// between *consecutive* samples — correct as long as no atom moves more
/// than half a box length between observations (the telemetry coordinate
/// cadence easily satisfies this for MD timesteps). Atoms appearing or
/// vanishing between samples (migration in multirank captures) simply
/// enter/leave the tracked set.
class MsdTracker {
 public:
  /// Observe the next sample; returns the MSD over atoms tracked since
  /// their first observation.
  double observe(const double* x, const std::int64_t* tag, std::size_t n,
                 const double prd[3]);

  double msd() const { return msd_; }
  std::size_t tracked() const { return atoms_.size(); }
  void reset();

 private:
  struct PerAtom {
    double prev[3];  // last observed (wrapped) position
    double disp[3];  // accumulated unwrapped displacement
  };
  std::unordered_map<std::int64_t, PerAtom> atoms_;
  double msd_ = 0.0;
};

}  // namespace mlk::tools::telemetry
