#include "tools/telemetry/insitu.hpp"

#include <algorithm>
#include <cmath>

namespace mlk::tools::telemetry {

void normalize_rdf_hist(const std::vector<double>& hist, double n,
                        double volume, double rcut, std::vector<double>& gr,
                        std::vector<double>& r_centers) {
  const int nbins = int(hist.size());
  const double dr = rcut / nbins;
  const double rho = volume > 0.0 ? n / volume : 0.0;
  gr.assign(hist.size(), 0.0);
  r_centers.assign(hist.size(), 0.0);
  constexpr double kPi = 3.14159265358979323846;
  for (int b = 0; b < nbins; ++b) {
    const double r_lo = b * dr, r_hi = (b + 1) * dr;
    r_centers[std::size_t(b)] = 0.5 * (r_lo + r_hi);
    const double shell =
        4.0 / 3.0 * kPi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal_pairs = 0.5 * n * rho * shell;
    gr[std::size_t(b)] =
        ideal_pairs > 0.0 ? hist[std::size_t(b)] / ideal_pairs : 0.0;
  }
}

RdfResult rdf_from_coords(const double* x, std::size_t n, const double prd[3],
                          int nbins, double rcut, std::size_t max_atoms) {
  RdfResult out;
  if (n == 0 || nbins <= 0 || rcut <= 0.0) return out;

  // Uniform stride subsample: bounded O(m^2) cost on the consumer thread.
  std::size_t stride = 1;
  if (max_atoms > 0 && n > max_atoms) stride = (n + max_atoms - 1) / max_atoms;
  std::vector<std::size_t> idx;
  idx.reserve(n / stride + 1);
  for (std::size_t i = 0; i < n; i += stride) idx.push_back(i);
  const std::size_t m = idx.size();
  out.atoms_used = m;
  if (m < 2) return out;

  const double dr = rcut / nbins;
  std::vector<double> hist(std::size_t(nbins), 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    const double* xi = x + 3 * idx[a];
    for (std::size_t b = a + 1; b < m; ++b) {
      const double* xj = x + 3 * idx[b];
      const double dx = min_image(xi[0] - xj[0], prd[0]);
      const double dy = min_image(xi[1] - xj[1], prd[1]);
      const double dz = min_image(xi[2] - xj[2], prd[2]);
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (r >= rcut) continue;
      hist[std::size_t(std::min(int(r / dr), nbins - 1))] += 1.0;
    }
  }

  const double volume = prd[0] * prd[1] * prd[2];
  normalize_rdf_hist(hist, double(m), volume, rcut, out.gr, out.r);
  const auto it = std::max_element(out.gr.begin(), out.gr.end());
  out.peak = *it;
  out.r_peak = out.r[std::size_t(it - out.gr.begin())];
  return out;
}

double MsdTracker::observe(const double* x, const std::int64_t* tag,
                           std::size_t n, const double prd[3]) {
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = x + 3 * i;
    auto [it, fresh] = atoms_.try_emplace(tag[i]);
    PerAtom& a = it->second;
    if (fresh) {
      for (int d = 0; d < 3; ++d) {
        a.prev[d] = xi[d];
        a.disp[d] = 0.0;
      }
      ++counted;  // contributes 0 — first observation is the reference
      continue;
    }
    double r2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      a.disp[d] += min_image(xi[d] - a.prev[d], prd[d]);
      a.prev[d] = xi[d];
      r2 += a.disp[d] * a.disp[d];
    }
    sum += r2;
    ++counted;
  }
  msd_ = counted > 0 ? sum / double(counted) : 0.0;
  return msd_;
}

void MsdTracker::reset() {
  atoms_.clear();
  msd_ = 0.0;
}

}  // namespace mlk::tools::telemetry
