// Real-time telemetry hub (docs/OBSERVABILITY.md): hot paths publish
// fixed-size samples into wait-free SPSC rings (telemetry_ring.hpp); one
// consumer thread (the sink) drains the rings on an interval and serves
//
//   * a point-in-time JSON snapshot, atomically replaced (tmp + rename) at
//     the configured path — poll it with `watch cat`, a dashboard, or the
//     tier-1 validator;
//   * an appendable NDJSON tail at <path>.ndjson — one JSON object per
//     sample, streamable with `tail -f`;
//   * in-situ analysis (RDF + MSD, tools/telemetry/insitu.hpp) computed on
//     the consumer thread from coordinates the step loop captured, so the
//     structural diagnostics run live without stalling a single step.
//
// Activation: MLK_TELEMETRY=<path> (src/tools/observability.cpp) or the
// `telemetry <path> [...]` input command. When the hub is inactive every
// producer site is a single relaxed atomic load.
//
// Producer topology (the SPSC discipline):
//   * each Simulation owns a SimTelemetry block: a step ring and a thermo
//     ring whose producer is whichever thread drives that Simulation's
//     Verlet phases (one at a time — the batch scheduler's wave fences
//     order handoffs), plus a CoordCapture double buffer;
//   * each Scheduler owns a SchedTelemetry block: one ring of scheduler
//     events whose producer is the scheduler thread.
// The sink is the single consumer of every ring.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tools/telemetry/insitu.hpp"
#include "tools/telemetry/telemetry_ring.hpp"

namespace mlk::tools::telemetry {

// ---------------------------------------------------------------------------
// Sample types — PODs, trivially copyable (TelemetryRing requirement).
// ---------------------------------------------------------------------------

/// One Verlet step: wall time plus the Pair/Neigh/Comm bucket deltas and the
/// kernel-launch delta (kk::profiling relaxed totals) for this step.
struct StepSample {
  std::int64_t step = 0;
  std::int32_t job_id = -1;  // batch-server job id; -1 outside the server
  float wall_ms = 0.0f;
  float pair_ms = 0.0f;
  float neigh_ms = 0.0f;
  float comm_ms = 0.0f;
  std::uint32_t launches = 0;         // kernel launches during this step
  std::uint32_t device_launches = 0;  // ... of which device-space
  std::uint8_t rebuild = 0;           // neighbor list rebuilt this step
  std::uint8_t overlap = 0;           // force phase took the overlapped path
  std::int32_t nlocal = 0;            // owned atoms on this rank
  float imbalance = 1.0f;  // max/avg per-rank nlocal at the last rebuild
};

/// One recorded thermo row (T / PE / KE / pressure).
struct ThermoSample {
  std::int64_t step = 0;
  std::int32_t job_id = -1;
  double temp = 0.0;
  double pe = 0.0;
  double ke = 0.0;
  double press = 0.0;
};

/// Batch-server scheduler events (src/server/scheduler.cpp).
enum class SchedKind : std::int32_t {
  Admit = 0,      // job admitted to the resident cohort
  Round = 1,      // one lockstep scheduling round completed
  JobFinish = 2,  // job retired (completed or failed)
};

struct SchedSample {
  std::int32_t kind = std::int32_t(SchedKind::Round);
  std::int32_t job_id = -1;     // Admit / JobFinish
  std::int64_t round = 0;
  std::int32_t queue_depth = 0; // jobs still waiting in the queue
  std::int32_t in_flight = 0;   // resident (co-scheduled) jobs
  float wave_a_ms = 0.0f;       // per-wave latency of this round (Round)
  float wave_b_ms = 0.0f;
  float wave_c_ms = 0.0f;
  std::int64_t fused_launches = 0;  // cumulative PairBatch launches
};

// ---------------------------------------------------------------------------
// CoordCapture — seqlock-stamped double buffer for sampled coordinates.
// ---------------------------------------------------------------------------

/// The step loop periodically copies owned-atom coordinates (and tags, so
/// the consumer can follow identities across reorders) into one of two
/// slots; the sink copies the newest complete slot out for in-situ
/// analysis. Latest-wins by design: an unread capture overwritten by a
/// newer one is not a "drop" — the analysis only ever wants the freshest
/// configuration.
///
/// The producer is wait-free except when a capture needs a larger buffer
/// (first capture, or atom count grew): the regrow allocates fresh arrays
/// and retires the old ones to a keep-alive list that is only freed on
/// destruction, so a concurrently reading consumer dereferences valid (if
/// stale) memory and the stamp check rejects the torn copy.
class CoordCapture {
 public:
  struct Snapshot {
    std::int64_t step = -1;
    std::uint64_t gen = 0;  // capture generation (monotonic)
    std::vector<double> x;  // packed x0,y0,z0,x1,...
    std::vector<std::int64_t> tag;
    double prd[3] = {0.0, 0.0, 0.0};
    std::size_t natoms() const { return tag.size(); }
  };

  /// Producer: begin a capture of `natoms` atoms; fill the returned buffers
  /// (x: 3*natoms doubles, tag: natoms entries), then call end().
  struct Buf {
    double* x = nullptr;
    std::int64_t* tag = nullptr;
  };
  Buf begin(std::size_t natoms);
  void end(std::int64_t step, const double prd[3]);

  /// Consumer: copy out the newest complete capture. False when nothing was
  /// ever captured, nothing newer than out.gen exists, or every bounded
  /// retry lost the race with the producer.
  bool read(Snapshot& out) const;

  /// Completed captures (producer cursor).
  std::uint64_t captures() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<double*> x{nullptr};
    std::atomic<std::int64_t*> tag{nullptr};
    std::size_t cap = 0;  // atoms the arrays can hold (producer-only)
    std::size_t n = 0;    // atoms in this capture (stamp-guarded)
    std::int64_t step = -1;
    double prd[3] = {0.0, 0.0, 0.0};
  };

  Slot slots_[2];
  alignas(64) std::atomic<std::uint64_t> count_{0};  // completed captures
  // Producer-owned storage; retired (regrown-away) arrays stay alive here.
  std::vector<std::unique_ptr<double[]>> x_storage_;
  std::vector<std::unique_ptr<std::int64_t[]>> tag_storage_;
};

// ---------------------------------------------------------------------------
// Per-producer blocks
// ---------------------------------------------------------------------------

/// Everything one Simulation publishes. Producer-side bookkeeping (prev_*)
/// is only touched by the stepping thread.
struct SimTelemetry {
  std::string label = "main";
  std::int32_t job_id = -1;

  TelemetryRing<StepSample> steps{1024};
  TelemetryRing<ThermoSample> thermo{512};
  CoordCapture coords;

  // Producer bookkeeping for per-step deltas (set by Verlet::begin /
  // updated by the step publisher).
  double prev_wall_s = 0.0;
  double prev_pair_s = 0.0;
  double prev_neigh_s = 0.0;
  double prev_comm_s = 0.0;
  std::uint64_t prev_launches = 0;
  std::uint64_t prev_device_launches = 0;
  bool prev_valid = false;
};

/// Everything one batch-server Scheduler publishes.
struct SchedTelemetry {
  std::string label = "server";
  TelemetryRing<SchedSample> events{512};
};

/// Terminal accounting handed back when a producer detaches — the batch
/// server copies this into JobResult so per-job telemetry attribution
/// survives long server runs (no reliance on the atexit flush).
struct TelemetrySummary {
  std::uint64_t steps_published = 0;
  std::uint64_t thermo_published = 0;
  std::uint64_t coord_captures = 0;
  std::uint64_t drops = 0;  // ring samples lost to drop-oldest backpressure
  std::int64_t last_step = -1;
};

// ---------------------------------------------------------------------------
// Hub
// ---------------------------------------------------------------------------

struct Config {
  std::string path;        // snapshot file; NDJSON tail at <path>.ndjson
  int interval_ms = 50;    // sink drain interval
  int coords_every = 50;   // steps between coordinate captures (0 = off)
  int rdf_bins = 50;       // in-situ RDF bins
  double rdf_rcut = 2.5;   // in-situ RDF cutoff (distance units)
  /// Subsample cap for the O(n^2) in-situ RDF. Sized so a sink pass stays
  /// well under a millisecond: the consumer thread competes for cores with
  /// the step loop, and bench_overhead gates the whole stream (default
  /// config) at <2% step time even on a single-core host.
  std::size_t insitu_max_atoms = 256;
};

/// True when the hub is streaming — the producer-side fast-path guard
/// (single relaxed atomic load).
bool active();

class Hub {
 public:
  /// Process-wide hub (leaked on purpose, like the profiling registries, so
  /// atexit flushes never race static destruction).
  static Hub& instance();

  /// Start the sink thread streaming to cfg.path. Idempotent while running
  /// (reconfiguring requires stop() first). Registers an atexit flush.
  void start(const Config& cfg);

  /// Drain everything, write a final snapshot, stop the sink. Idempotent.
  void stop();

  bool running() const;
  const Config& config() const { return cfg_; }

  /// Register a Simulation's telemetry block. The caller (and the hub)
  /// share ownership; the producer keeps publishing through the returned
  /// pointer until detach.
  std::shared_ptr<SimTelemetry> attach_sim(std::string label,
                                           std::int32_t job_id);
  /// Final-drain a Simulation's rings (with attribution) into the stream,
  /// fill `summary` (may be null), and unregister. Safe concurrently with
  /// the sink: consumer-side work is serialized on one mutex.
  void detach_sim(const std::shared_ptr<SimTelemetry>& st,
                  TelemetrySummary* summary);

  std::shared_ptr<SchedTelemetry> attach_sched(std::string label);
  void detach_sched(const std::shared_ptr<SchedTelemetry>& st);

  /// One synchronous drain + snapshot pass on the caller's thread (tests,
  /// and the `telemetry flush` input command).
  void drain_now();

  /// Ring samples lost to backpressure across all producers ever attached
  /// (detached producers' drops are folded in at detach).
  std::uint64_t total_drops() const;

  /// Snapshot passes completed (tests / smoke sanity).
  std::uint64_t passes() const {
    return passes_.load(std::memory_order_relaxed);
  }

 private:
  Hub() = default;

  struct SinkSimState;  // consumer-side per-sim aggregation (telemetry.cpp)

  void sink_loop();
  void drain_pass();
  void drain_sim(SimTelemetry& st, SinkSimState& state);
  void drain_sched(SchedTelemetry& st);
  void write_snapshot();
  void append_line(const std::string& line);
  void flush_pending();

  Config cfg_;

  mutable std::mutex reg_mu_;  // producer registry
  std::vector<std::shared_ptr<SimTelemetry>> sims_;
  std::vector<std::shared_ptr<SchedTelemetry>> scheds_;

  // Serializes every consumer-side operation (sink pass, detach drains,
  // drain_now). Producers never touch it.
  mutable std::mutex drain_mu_;
  std::vector<std::unique_ptr<SinkSimState>> sim_states_;
  /// Recently detached producers, kept (capped) so snapshots still show a
  /// job that just finished — a dashboard polling a long server run sees
  /// terminal summaries, not vanishing entries.
  struct FinishedSim {
    std::string name;
    std::int32_t job_id = -1;
    TelemetrySummary sum;
  };
  std::vector<FinishedSim> finished_;
  SchedSample last_sched_;       // newest scheduler event seen
  bool have_sched_ = false;
  std::uint64_t detached_drops_ = 0;
  std::uint64_t ndjson_lines_ = 0;
  std::string pending_;  // NDJSON lines awaiting flush
  std::atomic<std::uint64_t> passes_{0};

  std::mutex run_mu_;  // start/stop lifecycle
  std::condition_variable wake_;
  bool stop_requested_ = false;
  std::thread sink_;
  bool running_ = false;
};

}  // namespace mlk::tools::telemetry
