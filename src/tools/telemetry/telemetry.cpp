#include "tools/telemetry/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "kokkos/instance.hpp"
#include "kokkos/profiling.hpp"
#include "tools/json.hpp"

namespace mlk::tools::telemetry {

namespace {

std::atomic<bool> g_active{false};

const char* sched_kind_name(std::int32_t k) {
  switch (SchedKind(k)) {
    case SchedKind::Admit: return "admit";
    case SchedKind::Round: return "round";
    case SchedKind::JobFinish: return "finish";
  }
  return "?";
}

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// CoordCapture
// ---------------------------------------------------------------------------

CoordCapture::Buf CoordCapture::begin(std::size_t natoms) {
  const std::uint64_t w = count_.load(std::memory_order_relaxed);
  Slot& s = slots_[w & 1];
  s.stamp.store(2 * w + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  if (s.cap < natoms) {
    // Regrow with ~50% headroom. The old arrays are retired, not freed: a
    // consumer mid-copy keeps dereferencing valid memory and the stamp
    // recheck rejects its torn result.
    const std::size_t cap = natoms + natoms / 2 + 16;
    auto x = std::make_unique<double[]>(3 * cap);
    auto tag = std::make_unique<std::int64_t[]>(cap);
    s.x.store(x.get(), std::memory_order_relaxed);
    s.tag.store(tag.get(), std::memory_order_relaxed);
    s.cap = cap;
    x_storage_.push_back(std::move(x));
    tag_storage_.push_back(std::move(tag));
  }
  s.n = natoms;
  return Buf{s.x.load(std::memory_order_relaxed),
             s.tag.load(std::memory_order_relaxed)};
}

void CoordCapture::end(std::int64_t step, const double prd[3]) {
  const std::uint64_t w = count_.load(std::memory_order_relaxed);
  Slot& s = slots_[w & 1];
  s.step = step;
  for (int d = 0; d < 3; ++d) s.prd[d] = prd[d];
  std::atomic_thread_fence(std::memory_order_release);
  s.stamp.store(2 * w + 2, std::memory_order_release);
  count_.store(w + 1, std::memory_order_release);
}

bool CoordCapture::read(Snapshot& out) const {
  // Bounded retries: the consumer may loop, the producer never does.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t c = count_.load(std::memory_order_acquire);
    if (c == 0 || c <= out.gen) return false;
    const std::uint64_t w = c - 1;
    const Slot& s = slots_[w & 1];
    const std::uint64_t want = 2 * w + 2;
    if (s.stamp.load(std::memory_order_acquire) != want) continue;
    const std::size_t n = s.n;
    const double* x = s.x.load(std::memory_order_relaxed);
    const std::int64_t* tag = s.tag.load(std::memory_order_relaxed);
    const std::int64_t step = s.step;
    double prd[3] = {s.prd[0], s.prd[1], s.prd[2]};
    out.x.assign(x, x + 3 * n);
    out.tag.assign(tag, tag + n);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.stamp.load(std::memory_order_relaxed) != want) continue;  // torn
    out.step = step;
    out.gen = w + 1;
    for (int d = 0; d < 3; ++d) out.prd[d] = prd[d];
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Hub — consumer-side per-sim aggregation
// ---------------------------------------------------------------------------

struct Hub::SinkSimState {
  SimTelemetry* key = nullptr;
  StepSample last_step{};
  bool have_step = false;
  ThermoSample last_thermo{};
  bool have_thermo = false;
  std::uint64_t steps_drained = 0;
  std::uint64_t thermo_drained = 0;
  CoordCapture::Snapshot coords;  // .gen doubles as "last analyzed" cursor
  RdfResult rdf;
  MsdTracker msd;
  bool have_insitu = false;
};

Hub& Hub::instance() {
  // Leaked on purpose: producers may publish from threads that outlive
  // main()'s statics, and the atexit flush must find the hub alive.
  static Hub* hub = new Hub;
  return *hub;
}

void Hub::start(const Config& cfg) {
  std::lock_guard<std::mutex> lk(run_mu_);
  if (running_) return;
  cfg_ = cfg;
  stop_requested_ = false;
  g_active.store(true, std::memory_order_relaxed);
  // Truncate a stale NDJSON tail from a previous run at this path.
  if (!cfg_.path.empty()) std::ofstream(cfg_.path + ".ndjson");
  sink_ = std::thread([this] {
    kk::profiling::set_thread_name("telemetry-sink");
    sink_loop();
  });
  running_ = true;
  static bool atexit_installed = false;
  if (!atexit_installed) {
    atexit_installed = true;
    std::atexit([] { Hub::instance().stop(); });
  }
}

void Hub::stop() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  sink_.join();
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    running_ = false;
  }
  // Final drain + snapshot so a full ring at shutdown still lands on disk.
  drain_pass();
  g_active.store(false, std::memory_order_relaxed);
}

bool Hub::running() const {
  std::lock_guard<std::mutex> lk(const_cast<std::mutex&>(run_mu_));
  return running_;
}

void Hub::sink_loop() {
  std::unique_lock<std::mutex> lk(run_mu_);
  while (!stop_requested_) {
    wake_.wait_for(lk, std::chrono::milliseconds(cfg_.interval_ms),
                   [this] { return stop_requested_; });
    if (stop_requested_) break;
    lk.unlock();
    drain_pass();
    lk.lock();
  }
}

std::uint64_t Hub::total_drops() const {
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    for (const auto& s : sims_) total += s->steps.drops() + s->thermo.drops();
    for (const auto& s : scheds_) total += s->events.drops();
  }
  std::lock_guard<std::mutex> dk(drain_mu_);
  return total + detached_drops_;
}

std::shared_ptr<SimTelemetry> Hub::attach_sim(std::string label,
                                              std::int32_t job_id) {
  auto st = std::make_shared<SimTelemetry>();
  st->label = std::move(label);
  st->job_id = job_id;
  std::lock_guard<std::mutex> lk(reg_mu_);
  sims_.push_back(st);
  return st;
}

void Hub::detach_sim(const std::shared_ptr<SimTelemetry>& st,
                     TelemetrySummary* summary) {
  if (!st) return;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    std::erase(sims_, st);
  }
  std::lock_guard<std::mutex> dk(drain_mu_);
  // Final drain with attribution, on the detaching thread (consumer-side
  // work is serialized by drain_mu_, so this cannot race the sink).
  SinkSimState* state = nullptr;
  for (auto& s : sim_states_)
    if (s->key == st.get()) state = s.get();
  std::unique_ptr<SinkSimState> local;
  if (!state) {
    local = std::make_unique<SinkSimState>();
    local->key = st.get();
    state = local.get();
  }
  drain_sim(*st, *state);
  TelemetrySummary sum;
  sum.steps_published = st->steps.pushed();
  sum.thermo_published = st->thermo.pushed();
  sum.coord_captures = st->coords.captures();
  sum.drops = st->steps.drops() + st->thermo.drops();
  sum.last_step = state->have_step ? state->last_step.step : -1;
  if (summary) *summary = sum;
  finished_.push_back(FinishedSim{st->label, st->job_id, sum});
  if (finished_.size() > 8) finished_.erase(finished_.begin());
  detached_drops_ += st->steps.drops() + st->thermo.drops();
  std::erase_if(sim_states_,
                [&](const auto& s) { return s->key == st.get(); });
  flush_pending();
}

std::shared_ptr<SchedTelemetry> Hub::attach_sched(std::string label) {
  auto st = std::make_shared<SchedTelemetry>();
  st->label = std::move(label);
  std::lock_guard<std::mutex> lk(reg_mu_);
  scheds_.push_back(st);
  return st;
}

void Hub::detach_sched(const std::shared_ptr<SchedTelemetry>& st) {
  if (!st) return;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    std::erase(scheds_, st);
  }
  std::lock_guard<std::mutex> dk(drain_mu_);
  drain_sched(*st);
  detached_drops_ += st->events.drops();
  flush_pending();
}

void Hub::drain_now() { drain_pass(); }

// ---------------------------------------------------------------------------
// Draining and serialization (all under drain_mu_)
// ---------------------------------------------------------------------------

void Hub::drain_pass() {
  std::vector<std::shared_ptr<SimTelemetry>> sims;
  std::vector<std::shared_ptr<SchedTelemetry>> scheds;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    sims = sims_;
    scheds = scheds_;
  }
  std::lock_guard<std::mutex> dk(drain_mu_);
  for (const auto& st : sims) {
    SinkSimState* state = nullptr;
    for (auto& s : sim_states_)
      if (s->key == st.get()) state = s.get();
    if (!state) {
      sim_states_.push_back(std::make_unique<SinkSimState>());
      state = sim_states_.back().get();
      state->key = st.get();
    }
    drain_sim(*st, *state);
  }
  for (const auto& st : scheds) drain_sched(*st);
  write_snapshot();
  // Surface backpressure on any live Chrome trace as a counter track.
  std::uint64_t drops = detached_drops_;
  for (const auto& s : sims) drops += s->steps.drops() + s->thermo.drops();
  for (const auto& s : scheds) drops += s->events.drops();
  kk::profiling::count_event("telemetry.ring_drops", double(drops));
  passes_.fetch_add(1, std::memory_order_relaxed);
}

void Hub::drain_sim(SimTelemetry& st, SinkSimState& state) {
  StepSample step;
  while (st.steps.pop(step)) {
    state.last_step = step;
    state.have_step = true;
    ++state.steps_drained;
    append_line("{\"type\":\"step\",\"job\":" + std::to_string(step.job_id) +
                ",\"name\":" + json::quote(st.label) +
                ",\"step\":" + std::to_string(step.step) +
                ",\"wall_ms\":" + json::num(step.wall_ms) +
                ",\"pair_ms\":" + json::num(step.pair_ms) +
                ",\"neigh_ms\":" + json::num(step.neigh_ms) +
                ",\"comm_ms\":" + json::num(step.comm_ms) +
                ",\"launches\":" + std::to_string(step.launches) +
                ",\"device_launches\":" + std::to_string(step.device_launches) +
                ",\"rebuild\":" + std::to_string(int(step.rebuild)) +
                ",\"overlap\":" + std::to_string(int(step.overlap)) +
                ",\"nlocal\":" + std::to_string(step.nlocal) +
                ",\"imbalance\":" + json::num(step.imbalance) + "}");
  }
  ThermoSample th;
  while (st.thermo.pop(th)) {
    state.last_thermo = th;
    state.have_thermo = true;
    ++state.thermo_drained;
    append_line("{\"type\":\"thermo\",\"job\":" + std::to_string(th.job_id) +
                ",\"name\":" + json::quote(st.label) +
                ",\"step\":" + std::to_string(th.step) +
                ",\"temp\":" + json::num(th.temp) +
                ",\"pe\":" + json::num(th.pe) + ",\"ke\":" + json::num(th.ke) +
                ",\"press\":" + json::num(th.press) + "}");
  }

  // In-situ analysis off the newest coordinate capture (consumer thread;
  // the step loop only paid for the buffer copy).
  if (st.coords.read(state.coords)) {
    const auto& c = state.coords;
    state.rdf = rdf_from_coords(c.x.data(), c.natoms(), c.prd, cfg_.rdf_bins,
                                cfg_.rdf_rcut, cfg_.insitu_max_atoms);
    const double msd =
        state.msd.observe(c.x.data(), c.tag.data(), c.natoms(), c.prd);
    state.have_insitu = true;
    append_line("{\"type\":\"insitu\",\"job\":" + std::to_string(st.job_id) +
                ",\"name\":" + json::quote(st.label) +
                ",\"step\":" + std::to_string(c.step) +
                ",\"atoms\":" + std::to_string(c.natoms()) +
                ",\"rdf_peak\":" + json::num(state.rdf.peak) +
                ",\"rdf_r_peak\":" + json::num(state.rdf.r_peak) +
                ",\"msd\":" + json::num(msd) + "}");
  }
}

void Hub::drain_sched(SchedTelemetry& st) {
  SchedSample ev;
  while (st.events.pop(ev)) {
    if (SchedKind(ev.kind) == SchedKind::Round) {
      last_sched_ = ev;
      have_sched_ = true;
    }
    append_line(std::string("{\"type\":\"sched\",\"kind\":\"") +
                sched_kind_name(ev.kind) +
                "\",\"round\":" + std::to_string(ev.round) +
                ",\"job\":" + std::to_string(ev.job_id) +
                ",\"queue_depth\":" + std::to_string(ev.queue_depth) +
                ",\"in_flight\":" + std::to_string(ev.in_flight) +
                ",\"wave_ms\":[" + json::num(ev.wave_a_ms) + "," +
                json::num(ev.wave_b_ms) + "," + json::num(ev.wave_c_ms) +
                "],\"fused_launches\":" + std::to_string(ev.fused_launches) +
                "}");
  }
}

void Hub::append_line(const std::string& line) {
  pending_ += line;
  pending_ += '\n';
  ++ndjson_lines_;
}

void Hub::flush_pending() {
  if (pending_.empty() || cfg_.path.empty()) return;
  std::ofstream f(cfg_.path + ".ndjson", std::ios::app);
  f << pending_;
  pending_.clear();
}

void Hub::write_snapshot() {
  flush_pending();
  if (cfg_.path.empty()) return;

  std::uint64_t drops = detached_drops_;
  std::string sims_json = "[";
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    bool first = true;
    for (const auto& st : sims_) {
      drops += st->steps.drops() + st->thermo.drops();
      SinkSimState* state = nullptr;
      for (auto& s : sim_states_)
        if (s->key == st.get()) state = s.get();
      if (!first) sims_json += ",";
      first = false;
      sims_json += "{\"job\":" + std::to_string(st->job_id) +
                   ",\"name\":" + json::quote(st->label) +
                   ",\"drops\":" +
                   std::to_string(st->steps.drops() + st->thermo.drops());
      if (state && state->have_step) {
        const StepSample& s = state->last_step;
        sims_json += ",\"step\":{\"step\":" + std::to_string(s.step) +
                     ",\"wall_ms\":" + json::num(s.wall_ms) +
                     ",\"pair_ms\":" + json::num(s.pair_ms) +
                     ",\"neigh_ms\":" + json::num(s.neigh_ms) +
                     ",\"comm_ms\":" + json::num(s.comm_ms) +
                     ",\"launches\":" + std::to_string(s.launches) +
                     ",\"nlocal\":" + std::to_string(s.nlocal) +
                     ",\"imbalance\":" + json::num(s.imbalance) + "}";
      }
      if (state && state->have_thermo) {
        const ThermoSample& t = state->last_thermo;
        sims_json += ",\"thermo\":{\"step\":" + std::to_string(t.step) +
                     ",\"temp\":" + json::num(t.temp) +
                     ",\"pe\":" + json::num(t.pe) +
                     ",\"ke\":" + json::num(t.ke) +
                     ",\"press\":" + json::num(t.press) + "}";
      }
      if (state && state->have_insitu) {
        sims_json += ",\"insitu\":{\"step\":" +
                     std::to_string(state->coords.step) +
                     ",\"atoms\":" + std::to_string(state->coords.natoms()) +
                     ",\"captures\":" + std::to_string(st->coords.captures()) +
                     ",\"rdf_peak\":" + json::num(state->rdf.peak) +
                     ",\"rdf_r_peak\":" + json::num(state->rdf.r_peak) +
                     ",\"msd\":" + json::num(state->msd.msd()) + "}";
      }
      sims_json += "}";
    }
    for (const auto& st : scheds_) drops += st->events.drops();
  }
  sims_json += "]";

  std::string out = "{\"schema\":\"mlk-telemetry-1\"";
  out += ",\"pass\":" + std::to_string(passes_.load() + 1);
  out += ",\"interval_ms\":" + std::to_string(cfg_.interval_ms);
  out += ",\"ndjson_lines\":" + std::to_string(ndjson_lines_);
  out += ",\"drops\":{\"total\":" + std::to_string(drops) + "}";
  out += ",\"launches\":{\"total\":" +
         std::to_string(kk::profiling::total_launches_relaxed()) +
         ",\"device\":" +
         std::to_string(kk::profiling::total_device_launches_relaxed()) + "}";
  out += ",\"instances\":[";
  {
    bool first = true;
    for (const auto& s : kk::DeviceInstance::live_stats()) {
      if (!first) out += ",";
      first = false;
      out += "{\"id\":" + std::to_string(s.id) +
             ",\"name\":" + json::quote(s.name) +
             ",\"tasks\":" + std::to_string(s.tasks) + "}";
    }
  }
  out += "]";
  out += ",\"sims\":" + sims_json;
  out += ",\"finished\":[";
  {
    bool first = true;
    for (const auto& f : finished_) {
      if (!first) out += ",";
      first = false;
      out += "{\"job\":" + std::to_string(f.job_id) +
             ",\"name\":" + json::quote(f.name) +
             ",\"steps\":" + std::to_string(f.sum.steps_published) +
             ",\"thermo\":" + std::to_string(f.sum.thermo_published) +
             ",\"captures\":" + std::to_string(f.sum.coord_captures) +
             ",\"drops\":" + std::to_string(f.sum.drops) +
             ",\"last_step\":" + std::to_string(f.sum.last_step) + "}";
    }
  }
  out += "]";
  if (have_sched_) {
    out += ",\"server\":{\"round\":" + std::to_string(last_sched_.round) +
           ",\"queue_depth\":" + std::to_string(last_sched_.queue_depth) +
           ",\"in_flight\":" + std::to_string(last_sched_.in_flight) +
           ",\"wave_ms\":[" + json::num(last_sched_.wave_a_ms) + "," +
           json::num(last_sched_.wave_b_ms) + "," +
           json::num(last_sched_.wave_c_ms) +
           "],\"fused_launches\":" +
           std::to_string(last_sched_.fused_launches) + "}";
  }
  out += "}\n";

  // Atomic replace: readers always see a complete document.
  const std::string tmp = cfg_.path + ".tmp";
  {
    std::ofstream f(tmp);
    f << out;
  }
  std::rename(tmp.c_str(), cfg_.path.c_str());
}

}  // namespace mlk::tools::telemetry
