#include "tools/memory_tracker.hpp"

#include <cstdio>

#include "tools/json.hpp"

namespace mlk::tools {

void MemorySpaceTracker::allocate_data(const char* space,
                                       const std::string& label,
                                       const void* ptr, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  SpaceStat& s = spaces_[space];
  s.alloc_count++;
  s.total_alloc_bytes += bytes;
  s.live_bytes += bytes;
  s.live_allocs++;
  if (s.live_bytes > s.high_water_bytes) s.high_water_bytes = s.live_bytes;
  live_[ptr] = LiveAlloc{space, label, bytes};
}

void MemorySpaceTracker::deallocate_data(const char* space,
                                         const std::string& /*label*/,
                                         const void* ptr,
                                         std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(ptr);
  // Allocations made before this tool was registered die untracked: ignore
  // them rather than driving live_bytes negative.
  if (it == live_.end()) return;
  SpaceStat& s = spaces_[space];
  s.dealloc_count++;
  s.live_bytes -= bytes < s.live_bytes ? bytes : s.live_bytes;
  if (s.live_allocs > 0) s.live_allocs--;
  live_.erase(it);
}

void MemorySpaceTracker::finalize() {
  if (!print_leaks_) return;
  const auto leaks = live_allocations();
  if (leaks.empty()) return;
  std::fprintf(stderr,
               "# MemorySpaceTracker: %zu allocation(s) still live at "
               "finalize:\n",
               leaks.size());
  for (const auto& l : leaks)
    std::fprintf(stderr, "#   [%s] %-32s %llu bytes\n", l.space.c_str(),
                 l.label.c_str(), static_cast<unsigned long long>(l.bytes));
}

std::map<std::string, MemorySpaceTracker::SpaceStat>
MemorySpaceTracker::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spaces_;
}

std::vector<MemorySpaceTracker::LiveAlloc>
MemorySpaceTracker::live_allocations() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LiveAlloc> out;
  out.reserve(live_.size());
  for (const auto& [ptr, l] : live_) {
    (void)ptr;
    out.push_back(l);
  }
  return out;
}

std::string MemorySpaceTracker::text_report() const {
  const auto spaces = stats();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-10s %14s %10s %10s %14s %16s\n", "space",
                "live(bytes)", "allocs", "deallocs", "high-water",
                "total-alloc'd");
  out += buf;
  for (const auto& [name, s] : spaces) {
    std::snprintf(buf, sizeof buf, "%-10s %14llu %10llu %10llu %14llu %16llu\n",
                  name.c_str(), (unsigned long long)s.live_bytes,
                  (unsigned long long)s.alloc_count,
                  (unsigned long long)s.dealloc_count,
                  (unsigned long long)s.high_water_bytes,
                  (unsigned long long)s.total_alloc_bytes);
    out += buf;
  }
  return out;
}

std::string MemorySpaceTracker::json_fragment() const {
  const auto spaces = stats();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, s] : spaces) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":{";
    out += "\"live_bytes\":" + std::to_string(s.live_bytes);
    out += ",\"live_allocs\":" + std::to_string(s.live_allocs);
    out += ",\"alloc_count\":" + std::to_string(s.alloc_count);
    out += ",\"dealloc_count\":" + std::to_string(s.dealloc_count);
    out += ",\"high_water_bytes\":" + std::to_string(s.high_water_bytes);
    out += ",\"total_alloc_bytes\":" + std::to_string(s.total_alloc_bytes);
    out += "}";
  }
  out += "}";
  return out;
}

void MemorySpaceTracker::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spaces_.clear();
  live_.clear();
}

}  // namespace mlk::tools
