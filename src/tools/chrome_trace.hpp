// ChromeTrace — a built-in tool exporting the chrome://tracing /
// Perfetto trace-event JSON format. Kernel dispatches, per-pool-worker
// chunks, named regions, and DualView deep copies become spans on
// per-thread tracks, so a run's timeline (Verlet phases enclosing kernel
// launches enclosing worker execution) is directly visible in the viewer.
//
// Span encoding:
//   kernels       -> "X" complete events, cat "kernel" (host) /
//                    "kernel,device" (device), on the dispatching thread
//   worker chunks -> "X" events, cat "chunk", on the pool worker's track
//   regions       -> "B"/"E" duration events, cat "region"
//   deep copies   -> "X" events, cat "deep_copy"
//   fences        -> "i" instant events
//   counters      -> "C" counter events (value tracks in the viewer): any
//                    kk::profiling::count_event (telemetry ring drops, the
//                    batch scheduler's queue depth) plus the View memory
//                    counters this tool derives itself from allocate/
//                    deallocate callbacks ("mem.live_bytes", "mem.hwm_bytes")
// Thread tracks are labelled from kk::profiling::set_thread_name
// ("rank-N", "pool-worker-N") via "thread_name" metadata events.
//
// Under simmpi, events carry the emitting thread's rank tag. Two scoping
// modes: `only_tag` keeps a single rank's events (per-rank tool
// registration), and split-by-tag (the default for the env-var wiring)
// writes path.rank<r> per rank plus the base path for untagged events.
#pragma once

#include <climits>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kokkos/profiling.hpp"

namespace mlk::tools {

class ChromeTrace : public kk::profiling::Tool {
 public:
  static constexpr int kNoFilter = INT_MIN;

  /// Records from construction; finalize() (or destruction) writes `path`.
  /// With only_tag >= -1, only events from threads carrying that tag are
  /// kept and everything lands in the single `path` file.
  explicit ChromeTrace(std::string path, int only_tag = kNoFilter);
  ~ChromeTrace() override;

  void begin_parallel_for(const std::string& name, bool device,
                          std::uint64_t items, std::uint64_t kid) override;
  void end_parallel_for(std::uint64_t kid) override;
  void begin_parallel_reduce(const std::string& name, bool device,
                             std::uint64_t items, std::uint64_t kid) override;
  void end_parallel_reduce(std::uint64_t kid) override;
  void begin_parallel_scan(const std::string& name, bool device,
                           std::uint64_t items, std::uint64_t kid) override;
  void end_parallel_scan(std::uint64_t kid) override;
  void push_region(const std::string& name) override;
  void pop_region(const std::string& name) override;
  void begin_deep_copy(const char* dst_space, const std::string& dst_label,
                       const char* src_space, const std::string& src_label,
                       std::uint64_t bytes, std::uint64_t id) override;
  void end_deep_copy(std::uint64_t id) override;
  void fence(const std::string& name) override;
  void counter(const std::string& name, double value) override;
  void allocate_data(const char* space, const std::string& label,
                     const void* ptr, std::uint64_t bytes) override;
  void deallocate_data(const char* space, const std::string& label,
                       const void* ptr, std::uint64_t bytes) override;
  void begin_worker_chunk(std::uint64_t kid, int worker, std::uint64_t begin,
                          std::uint64_t end) override;
  void end_worker_chunk(std::uint64_t kid, int worker) override;

  /// Write the trace file(s). Idempotent; also invoked by the destructor.
  void finalize() override;

  std::size_t event_count() const;

 private:
  struct Event {
    std::string name;
    const char* cat;
    char ph;              // 'X', 'B', 'E', 'i', 'C'
    double ts_us = 0.0;
    double dur_us = 0.0;  // 'X' only
    int tid = 0;
    int tag = -1;
    std::uint64_t arg_items = 0;  // items ('X' kernel) or bytes (deep_copy)
    double arg_value = 0.0;       // counter value ('C' only)
  };

  struct OpenSpan {
    std::string name;
    const char* cat;
    double ts_us;
    int tid;
    int tag;
    std::uint64_t items;
  };

  double now_us() const;
  bool accepts_current_thread() const;
  void open(std::uint64_t key, const std::string& name, const char* cat,
            std::uint64_t items);
  void close(std::uint64_t key);
  static void write_file(const std::string& path,
                         const std::vector<const Event*>& events,
                         const std::map<int, std::string>& names);

  std::string path_;
  int only_tag_;
  double t0_us_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, OpenSpan> open_;
  std::vector<Event> events_;
  bool finalized_ = false;
  // View-memory accounting for the derived "mem.*" counter tracks
  // (allocate_data/deallocate_data callbacks; guarded by mu_).
  std::uint64_t live_bytes_ = 0;
  std::uint64_t hwm_bytes_ = 0;
};

}  // namespace mlk::tools
