#include "tools/kernel_timer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "tools/json.hpp"

namespace mlk::tools {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void KernelTimer::begin(const std::string& name, bool device,
                        std::uint64_t items, std::uint64_t kid) {
  const int tag = kk::profiling::thread_tag();
  std::lock_guard<std::mutex> lk(mu_);
  open_[kid] = Open{tag, name, device, items, now_seconds()};
}

void KernelTimer::end(std::uint64_t kid) {
  const double t1 = now_seconds();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(kid);
  if (it == open_.end()) return;  // began before this tool was registered
  const Open& o = it->second;
  const double dt = t1 - o.t0;
  Stat& s = stats_[{o.tag, o.name}];
  if (s.count == 0 || dt < s.min_s) s.min_s = dt;
  if (dt > s.max_s) s.max_s = dt;
  s.count++;
  if (o.device) s.device_count++;
  s.total_items += o.items;
  s.total_s += dt;
  open_.erase(it);
}

void KernelTimer::begin_parallel_for(const std::string& name, bool device,
                                     std::uint64_t items, std::uint64_t kid) {
  begin(name, device, items, kid);
}
void KernelTimer::end_parallel_for(std::uint64_t kid) { end(kid); }
void KernelTimer::begin_parallel_reduce(const std::string& name, bool device,
                                        std::uint64_t items,
                                        std::uint64_t kid) {
  begin(name, device, items, kid);
}
void KernelTimer::end_parallel_reduce(std::uint64_t kid) { end(kid); }
void KernelTimer::begin_parallel_scan(const std::string& name, bool device,
                                      std::uint64_t items, std::uint64_t kid) {
  begin(name, device, items, kid);
}
void KernelTimer::end_parallel_scan(std::uint64_t kid) { end(kid); }

void KernelTimer::begin_deep_copy(const char* dst_space,
                                  const std::string& /*dst_label*/,
                                  const char* src_space,
                                  const std::string& /*src_label*/,
                                  std::uint64_t bytes, std::uint64_t id) {
  begin(std::string("deep_copy[") + dst_space + "<-" + src_space + "]",
        /*device=*/true, bytes, id);
}
void KernelTimer::end_deep_copy(std::uint64_t id) { end(id); }

void KernelTimer::finalize() {
  if (output_.empty()) return;
  if (output_ == "-") {
    std::fputs(text_report().c_str(), stderr);
  } else {
    write_json(output_);
  }
}

std::map<std::string, KernelTimer::Stat> KernelTimer::stats() const {
  std::map<std::string, Stat> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, s] : stats_) {
    Stat& o = out[key.second];
    if (o.count == 0 || s.min_s < o.min_s) o.min_s = s.min_s;
    if (s.max_s > o.max_s) o.max_s = s.max_s;
    o.count += s.count;
    o.device_count += s.device_count;
    o.total_items += s.total_items;
    o.total_s += s.total_s;
  }
  return out;
}

std::map<std::string, KernelTimer::Stat> KernelTimer::stats_for_tag(
    int tag) const {
  std::map<std::string, Stat> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, s] : stats_)
    if (key.first == tag) out[key.second] = s;
  return out;
}

std::vector<int> KernelTimer::tags() const {
  std::vector<int> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, s] : stats_) {
    (void)s;
    if (key.first >= 0 &&
        std::find(out.begin(), out.end(), key.first) == out.end())
      out.push_back(key.first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string KernelTimer::text_report() const {
  const auto merged = stats();
  std::vector<std::pair<std::string, Stat>> rows(merged.begin(), merged.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_s > b.second.total_s;
  });
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-40s %8s %12s %12s %12s %12s %14s\n",
                "kernel", "count", "total(s)", "min(s)", "max(s)", "mean(s)",
                "items/s");
  out += buf;
  for (const auto& [name, s] : rows) {
    std::snprintf(buf, sizeof buf,
                  "%-40s %8llu %12.6f %12.3e %12.3e %12.3e %14.4e\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.total_s, s.min_s, s.max_s, s.mean_s(), s.items_per_s());
    out += buf;
  }
  return out;
}

std::string KernelTimer::json_for(const std::map<std::string, Stat>& stats) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, s] : stats) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":{";
    out += "\"count\":" + std::to_string(s.count);
    out += ",\"device_count\":" + std::to_string(s.device_count);
    out += ",\"total_items\":" + std::to_string(s.total_items);
    out += ",\"total_s\":" + json::num(s.total_s);
    out += ",\"min_s\":" + json::num(s.min_s);
    out += ",\"max_s\":" + json::num(s.max_s);
    out += ",\"mean_s\":" + json::num(s.mean_s());
    out += ",\"items_per_s\":" + json::num(s.items_per_s());
    out += "}";
  }
  out += "}";
  return out;
}

std::string KernelTimer::json_fragment() const { return json_for(stats()); }

void KernelTimer::write_json(const std::string& path) const {
  {
    std::ofstream f(path);
    f << "{\"kernels\":" << json_for(stats()) << "}\n";
  }
  for (const int tag : tags()) {
    std::ofstream f(path + ".rank" + std::to_string(tag));
    f << "{\"kernels\":" << json_for(stats_for_tag(tag)) << "}\n";
  }
}

void KernelTimer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  open_.clear();
  stats_.clear();
}

}  // namespace mlk::tools
