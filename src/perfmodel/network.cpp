#include "perfmodel/network.hpp"

#include <algorithm>
#include <cmath>

namespace mlk::perf {

ScalingPoint MachineModel::step_time(
    bigint global_atoms, int nodes,
    const std::function<std::vector<KernelWorkload>(bigint)>& gpu_workloads,
    double density, double ghost_cut, double bytes_per_ghost,
    double extra_halo_rounds, double allreduces, double imbalance) const {
  ScalingPoint out;
  out.nodes = nodes;
  const double ngpus = double(nodes) * machine_.gpus_per_node;
  const double n_local = double(global_atoms) / ngpus;
  out.atoms_per_gpu = n_local;

  // Critical path: the most-loaded rank holds imbalance x the average atoms.
  out.t_gpu = std::max(imbalance, 1.0) *
              gpu_.total_seconds(gpu_workloads(bigint(std::max(n_local, 1.0))));

  // Halo: ghost shell of thickness ghost_cut around a cubic sub-domain.
  const double sub_vol = n_local / density;
  const double sub_len = std::cbrt(std::max(sub_vol, 1e-30));
  const double ghost_vol = std::pow(sub_len + 2.0 * ghost_cut, 3.0) - sub_vol;
  const double ghosts = density * ghost_vol;
  // 6 swaps, forward each step (+ reverse for ghost-force styles folded into
  // bytes_per_ghost); message latency per swap pair.
  const double t_bw =
      ghosts * (bytes_per_ghost + 8.0 * extra_halo_rounds) / machine_.nic_bw;
  const double t_lat = 12.0 * machine_.nic_latency * (1.0 + extra_halo_rounds);
  // Global reductions: log2(P) hops each.
  const double t_coll = 2.0 * std::log2(std::max(ngpus, 2.0)) *
                        machine_.nic_latency * allreduces;
  out.t_comm = t_bw + t_lat + t_coll;

  out.steps_per_second =
      1.0 / (out.t_gpu + out.t_comm + machine_.host_overhead);
  return out;
}

}  // namespace mlk::perf
