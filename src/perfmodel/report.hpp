// Small table/series printers so every bench binary emits the same
// aligned-rows format as the paper's artifacts.
#pragma once

#include <string>
#include <vector>

namespace mlk::perf {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(const std::vector<std::string>& cells);
  /// Print with aligned columns to stdout.
  void print() const;

  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner for bench output.
void banner(const std::string& title, const std::string& paper_ref);

}  // namespace mlk::perf
