// Analytical GPU kernel timing model.
//
// Substitute for the real hardware of the paper's evaluation (see
// DESIGN.md): an extended roofline that prices, per kernel launch,
//   * DRAM traffic (unique bytes / HBM bandwidth),
//   * cache-served reuse traffic (working set vs L1 / L2 capacity, with a
//     carveout-adjustable L1 on NVIDIA — the §4.4 experiment),
//   * FP64 arithmetic,
//   * thread-atomic operations,
//   * occupancy loss from shared-memory usage,
//   * parallel saturation (not enough exposed work, Fig. 4's left side),
//   * kernel launch latency (Fig. 4 / Fig. 7 small-problem limits).
//
// Workload descriptors are produced from *measured* quantities of the real
// kernels running on this CPU (neighbor counts, quad survival, CG
// iterations, SNAP index sizes), so shapes follow real algorithmic behavior.
#pragma once

#include <string>
#include <vector>

#include "perfmodel/archdb.hpp"

namespace mlk::perf {

struct KernelWorkload {
  std::string name;
  double flops = 0;           // FP64 operations
  double unique_bytes = 0;    // compulsory DRAM traffic
  double reuse_bytes = 0;     // traffic served by caches when resident
  double working_set = 0;     // bytes that must fit for reuse to hit in L1
  double atomics = 0;         // FP64 atomic ops
  double parallel_items = 0;  // exposed concurrency (work items)
  double shared_per_sm = 0;   // bytes of scratch needed per SM for full occ.
  bool uses_shared = false;
  int launches = 1;
};

struct KernelTime {
  double seconds = 0;
  double t_mem = 0, t_flop = 0, t_atomic = 0, t_launch = 0;
  double saturation = 1.0, occupancy = 1.0;
  const char* limiter = "mem";
};

class GpuModel {
 public:
  explicit GpuModel(const GpuArch& a) : arch_(a) {}

  /// NVIDIA shared-memory carveout (fraction of the unified pool reserved
  /// for shared memory). Negative = the built-in heuristic (§4.4): pick
  /// per-kernel from its shared usage.
  double carveout = -1.0;

  KernelTime time(const KernelWorkload& w) const;

  /// Sum over a kernel sequence (one timestep, typically).
  double total_seconds(const std::vector<KernelWorkload>& ws) const;

  const GpuArch& arch() const { return arch_; }

 private:
  GpuArch arch_;
};

}  // namespace mlk::perf
