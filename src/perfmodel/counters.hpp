// Workload extraction: runs the *real* kernels at a reference size on this
// CPU, measures the quantities that drive cost (neighbor counts, bond/quad
// statistics, CG iteration counts, SNAP index-space sums), and generates
// per-timestep KernelWorkload descriptors for any atom count. This is the
// bridge between the real implementation and the architecture model
// (DESIGN.md, "measurement vs modelling split").
#pragma once

#include <vector>

#include "perfmodel/gpumodel.hpp"
#include "util/types.hpp"

namespace mlk::perf {

/// Statistics measured from real runs of each case-study potential.
struct PotentialStats {
  // Common.
  double neighbors_per_atom = 0;  // full-list rows within force cutoff
  // Per-rank atom imbalance (max/avg nlocal) of the decomposed workload.
  // 1.0 for the uniform-density benchmark crystals the measure_* functions
  // run; bench_fig6's droplet sweep overrides it with the value measured
  // from the real engine under simmpi (docs/DECOMPOSITION.md).
  double imbalance = 1.0;

  // ReaxFF.
  double bonds_per_atom = 0;
  double triples_per_atom = 0;
  double quads_per_atom = 0;
  double quad_candidates_per_atom = 0;
  double qeq_iterations = 0;
  double qeq_nnz_per_atom = 0;

  // SNAP (exact index-space sizes + inner-loop sums from the CG tables).
  int snap_idxu = 0;
  int snap_idxz = 0;
  int snap_idxb = 0;
  double snap_z_inner_ops = 0;  // sum over idxz of na*nb (Z dot products)
  double snap_neighbors = 0;    // within SNAP rcut
};

/// Measure by running the real engine at a small reference size.
PotentialStats measure_lj_stats();
PotentialStats measure_reaxff_stats();
PotentialStats measure_snap_stats(int twojmax = 8);

// --- per-timestep workload generators --------------------------------------

struct LJConfig {
  bool full_list = true;       // vs half + atomics (Fig. 2b)
  bool team_parallel = false;  // neighbor-level concurrency (Fig. 2a)
  bool newton = false;
};

std::vector<KernelWorkload> lj_workloads(bigint natoms,
                                         const PotentialStats& s,
                                         const LJConfig& cfg = {});

struct ReaxConfig {
  bool preprocessed = true;  // quad/triple tables vs divergent loops
  bool hierarchical_qeq = true;
  bool fused_solve = true;
};

std::vector<KernelWorkload> reaxff_workloads(bigint natoms,
                                             const PotentialStats& s,
                                             const ReaxConfig& cfg = {});

struct SnapConfig {
  int ui_batch = 4;   // Table 2 work batching
  int yi_batch = 4;
  bool fused_deidrj = true;
};

std::vector<KernelWorkload> snap_workloads(bigint natoms,
                                           const PotentialStats& s,
                                           const SnapConfig& cfg = {});

}  // namespace mlk::perf
