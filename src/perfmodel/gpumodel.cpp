#include "perfmodel/gpumodel.hpp"

#include <algorithm>
#include <cmath>

namespace mlk::perf {

KernelTime GpuModel::time(const KernelWorkload& w) const {
  KernelTime out;
  const GpuArch& a = arch_;

  // --- effective L1 / shared split -------------------------------------
  double l1_kb = a.l1_kb;
  double shared_kb = a.shared_kb;
  if (a.unified_l1) {
    double c = carveout;
    if (c < 0.0) {
      // Built-in heuristic (§4.4): kernels using scratch get a generous
      // shared carveout, others leave the pool to L1.
      c = w.uses_shared
              ? std::clamp(w.shared_per_sm / (a.l1_total_kb() * 1024.0), 0.125,
                           0.875)
              : 0.125;
    }
    shared_kb = a.l1_total_kb() * c;
    l1_kb = a.l1_total_kb() - shared_kb;
  }

  // --- memory time -------------------------------------------------------
  // Unique traffic always comes from HBM. Reuse traffic is served by the
  // highest cache level whose capacity covers the working set; capacity
  // coverage degrades smoothly (partial residency -> partial hits).
  const double l1_bytes = l1_kb * 1024.0 * a.num_sm;
  const double l1_bw = 16.0 * a.hbm_bw;  // aggregate L1 ~ an order above HBM
  const double l2_bw = 4.0 * a.hbm_bw;
  double t_reuse = 0.0;
  if (w.reuse_bytes > 0.0) {
    const double ws = std::max(w.working_set, 1.0);
    const double l1_frac = std::min(1.0, l1_bytes / ws);
    const double l2_frac =
        std::min(1.0 - l1_frac, std::max(0.0, a.l2_bytes / ws - l1_frac));
    const double hbm_frac = std::max(0.0, 1.0 - l1_frac - l2_frac);
    t_reuse = w.reuse_bytes * (l1_frac / l1_bw + l2_frac / l2_bw +
                               hbm_frac / a.hbm_bw);
  }
  out.t_mem = w.unique_bytes / a.hbm_bw + t_reuse;

  // --- compute and atomics ------------------------------------------------
  out.t_flop = w.flops / a.fp64;
  out.t_atomic = w.atomics / a.atomic_rate;

  // --- occupancy / saturation ---------------------------------------------
  // Shared-memory pressure: occupancy proportional to how much scratch fits
  // ("occupancy is proportional to shared memory utilisation", §4.4).
  out.occupancy = 1.0;
  if (w.uses_shared && w.shared_per_sm > 0.0) {
    const double avail = shared_kb * 1024.0;
    out.occupancy = std::clamp(avail / w.shared_per_sm, 0.05, 1.0);
  }
  // Parallel saturation: p/(p + p_half) rises to 1 as exposed work exceeds
  // the device's concurrency (Fig. 4's saturation curve).
  const double p = std::max(w.parallel_items, 1.0);
  out.saturation = p / (p + a.saturation_threads);

  const double t_exec = std::max({out.t_mem, out.t_flop, out.t_atomic}) /
                        (out.saturation * out.occupancy);
  out.t_launch = w.launches * a.launch_latency;
  out.seconds = t_exec + out.t_launch;

  out.limiter = "mem";
  if (out.t_flop >= out.t_mem && out.t_flop >= out.t_atomic)
    out.limiter = "fp64";
  else if (out.t_atomic >= out.t_mem && out.t_atomic >= out.t_flop)
    out.limiter = "atomic";
  if (out.t_launch > t_exec) out.limiter = "launch";
  return out;
}

double GpuModel::total_seconds(const std::vector<KernelWorkload>& ws) const {
  double t = 0.0;
  for (const auto& w : ws) t += time(w).seconds;
  return t;
}

}  // namespace mlk::perf
