// Architecture database: Table 1 of the paper plus the public parameters
// (L2, SM counts, atomic throughput, launch latency) the model needs.
// All bandwidths bytes/s, capacities bytes, rates per second.
#pragma once

#include <string>
#include <vector>

namespace mlk::perf {

struct GpuArch {
  std::string name;
  double hbm_bw = 0;          // HBM bandwidth
  double hbm_capacity = 0;    // HBM capacity
  double fp64 = 0;            // FP64 throughput (no matrix units, as Table 1)
  double l1_kb = 0;           // hardware-managed L1 per SM/CU (kB)
  double shared_kb = 0;       // software-managed scratch per SM/CU (kB)
  bool unified_l1 = false;    // NVIDIA: L1+shared share one pool (carveout)
  double l2_bytes = 0;        // device-level L2/LLC
  int num_sm = 0;             // SMs / CUs / Xe-cores
  double atomic_rate = 0;     // sustained FP64 atomic adds/s to HBM
  double launch_latency = 0;  // kernel launch overhead (s)
  double saturation_threads = 0;  // concurrency for ~50% of peak

  /// Unified pool size (NVIDIA) or l1+shared (fixed architectures).
  double l1_total_kb() const { return l1_kb + shared_kb; }
};

/// Table 1 rows (single logical GPU for MI250X and PVC) + the Skylake CPU
/// baseline node used for Fig. 5 normalization.
const std::vector<GpuArch>& arch_table();

/// Lookup by name ("V100", "A100", "H100", "GH200", "MI250X", "MI300A",
/// "PVC", "CPU"). Throws on unknown names.
const GpuArch& arch(const std::string& name);

struct Machine {
  std::string name;
  std::string gpu;        // arch() key
  int gpus_per_node = 1;  // logical GPUs (GCDs / stacks)
  double nic_bw = 0;      // bytes/s per logical GPU
  double nic_latency = 0; // per message (s)
  int max_nodes = 0;
  /// Per-step host-side overhead (MPI stack, style callbacks, forced
  /// device synchronization) — the ~1 ms/step floor that caps real LAMMPS
  /// runs near 1000 steps/s (paper section 5.2).
  double host_overhead = 0.6e-3;
};

/// The five machines of §5.2 / Appendix C.
const std::vector<Machine>& machine_table();
const Machine& machine(const std::string& name);

}  // namespace mlk::perf
