// Machine-level strong-scaling model (§5.2, Appendix C).
//
// One MPI rank per logical GPU. Per timestep:
//   t_step = t_gpu(n_local) + t_halo + t_collectives
// where t_halo exchanges ghost shells (surface scaling) over the NIC and
// t_collectives is a log(P) latency term. The paper observes relative
// machine performance dominated by single-GPU speed with "network effects
// subleading" — which this decomposition reproduces while still bending the
// deep-strong-scaling tail (Fig. 6/7).
#pragma once

#include <functional>

#include "perfmodel/archdb.hpp"
#include "perfmodel/gpumodel.hpp"
#include "util/types.hpp"

namespace mlk::perf {

struct ScalingPoint {
  int nodes = 0;
  double atoms_per_gpu = 0;
  double t_gpu = 0;
  double t_comm = 0;
  double steps_per_second = 0;
};

class MachineModel {
 public:
  MachineModel(const Machine& m, double carveout = -1.0)
      : machine_(m), gpu_(arch(m.gpu)) {
    gpu_.carveout = carveout;
  }

  /// Strong-scale a global problem across `nodes`.
  /// `gpu_workloads(n_local)` yields the per-step kernel sequence.
  /// `density` (atoms/A^3 equivalent) and `ghost_cut` set halo volume;
  /// `bytes_per_ghost` the exchange payload (forward+reverse per step).
  /// `extra_halo_rounds`: additional per-step ghost exchanges beyond the
  /// position forward (ReaxFF: one per QEq CG iteration, 8 bytes/ghost).
  /// `allreduces`: global reductions per step (ReaxFF: 2 per CG iteration).
  /// `imbalance`: per-rank atom imbalance (max/avg nlocal) of the
  /// decomposition — the step completes when the most-loaded rank does, so
  /// the GPU term scales by it. 1.0 = uniform density (the melt); droplet
  /// workloads on a static grid measure 2-4x (docs/DECOMPOSITION.md), which
  /// `balance rcb` drives back toward 1.
  ScalingPoint step_time(
      bigint global_atoms, int nodes,
      const std::function<std::vector<KernelWorkload>(bigint)>& gpu_workloads,
      double density, double ghost_cut, double bytes_per_ghost = 48.0,
      double extra_halo_rounds = 0.0, double allreduces = 1.0,
      double imbalance = 1.0) const;

  const Machine& machine() const { return machine_; }
  const GpuModel& gpu() const { return gpu_; }

 private:
  Machine machine_;
  GpuModel gpu_;
};

}  // namespace mlk::perf
