#include "perfmodel/report.hpp"

#include <cstdio>
#include <sstream>

namespace mlk::perf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::scientific << v;
  return os.str();
}

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s  ", int(width[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace mlk::perf
