#include "perfmodel/counters.hpp"

#include <cmath>

#include "minilammps.hpp"
#include "reaxff/pair_reaxff_lite.hpp"
#include "snap/clebsch_gordan.hpp"
#include "snap/pair_snap.hpp"

namespace mlk::perf {

namespace {

/// Count full-list neighbors within `cut` (not the padded list cutoff).
double neighbors_within(Simulation& sim, double cut) {
  auto& l = sim.neighbor.list;
  l.k_neighbors.sync<kk::Host>();
  l.k_numneigh.sync<kk::Host>();
  const auto x = sim.atom.k_x.h_view;
  bigint count = 0;
  for (localint i = 0; i < l.inum; ++i)
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c) {
      const int j = l.k_neighbors.h_view(std::size_t(i), std::size_t(c));
      const double dx = x(std::size_t(i), 0) - x(std::size_t(j), 0);
      const double dy = x(std::size_t(i), 1) - x(std::size_t(j), 1);
      const double dz = x(std::size_t(i), 2) - x(std::size_t(j), 2);
      if (dx * dx + dy * dy + dz * dz < cut * cut) ++count;
    }
  return double(count) / double(l.inum);
}

}  // namespace

PotentialStats measure_lj_stats() {
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 6 6 6 jitter 0.03 991");
  in.line("mass 1 1.0");
  in.line("pair_style lj/cut 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  sim.newton_override = 0;
  sim.pair = StyleRegistry::instance().create_pair("lj/cut/kk");  // full list
  sim.pair->settings({"2.5"});
  sim.pair->coeff({"*", "*", "1.0", "1.0"});
  sim.setup();
  PotentialStats s;
  s.neighbors_per_atom = neighbors_within(sim, 2.5);
  return s;
}

PotentialStats measure_reaxff_stats() {
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.line("units real");
  in.line("lattice hns_like 5.2");
  in.line("create_atoms 3 3 3 jitter 0.03 4411");
  in.line("mass 1 12.0");
  in.line("mass 2 16.0");
  in.line("pair_style reaxff-lite");
  in.line("pair_coeff * * hns");
  sim.setup();
  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim.pair.get());
  PotentialStats s;
  const double n = double(sim.atom.nlocal);
  s.neighbors_per_atom = neighbors_within(sim, pair->params().rcut_nonb);
  s.bonds_per_atom = double(pair->bonds().total_bonds()) / n;
  s.quads_per_atom = double(pair->quads().count) / n;
  s.quad_candidates_per_atom = double(pair->quads().candidates) / n;
  // triples per atom: nb*(nb-1)/2 summed == rebuildable from bonds.
  double triples = 0;
  for (localint i = 0; i < sim.atom.nlocal; ++i) {
    const double nb = pair->bonds().nbonds(std::size_t(i));
    triples += nb * (nb - 1) / 2.0;
  }
  s.triples_per_atom = triples / n;
  s.qeq_iterations = pair->qeq().last_iterations();
  s.qeq_nnz_per_atom = double(pair->qeq().matrix().total_nonzeros()) / n;
  return s;
}

PotentialStats measure_snap_stats(int twojmax) {
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");
  in.line("create_atoms 4 4 4 jitter 0.02 5511");
  in.line("mass 1 183.84");
  in.line("pair_style snap");
  in.line("pair_coeff * * 4.7 " + std::to_string(twojmax) + " 7771");
  sim.setup();
  PotentialStats s;
  s.snap_neighbors = neighbors_within(sim, 4.7);
  snap::SnaIndexes idx;
  idx.build(twojmax);
  s.snap_idxu = idx.idxu_max;
  s.snap_idxz = idx.idxz_max;
  s.snap_idxb = idx.idxb_max;
  double inner = 0;
  for (const auto& e : idx.idxz) inner += double(e.na) * double(e.nb);
  s.snap_z_inner_ops = inner;
  return s;
}

// ---------------------------------------------------------------------------

std::vector<KernelWorkload> lj_workloads(bigint natoms,
                                         const PotentialStats& s,
                                         const LJConfig& cfg) {
  const double n = double(natoms);
  const double nn = s.neighbors_per_atom;
  std::vector<KernelWorkload> out;

  KernelWorkload force;
  force.name = "PairComputeLJCut";
  const double pair_visits = cfg.full_list ? n * nn : n * nn / 2.0;
  force.flops = pair_visits * 30.0;
  // Neighbor indices + own coords/forces are compulsory; neighbor coords are
  // gathered (2 sectors per access) and cache-served when resident.
  force.unique_bytes = pair_visits * 4.0 + n * 48.0;
  force.reuse_bytes = pair_visits * 48.0;
  // Spatial locality: binned traversal keeps the active coordinate working
  // set bounded regardless of total size.
  force.working_set = 24.0 * std::min(n, 1.2e6);
  force.atomics = cfg.full_list ? 0.0 : pair_visits * 3.0;
  force.parallel_items = cfg.team_parallel ? n * std::min(nn, 32.0) : n;
  out.push_back(force);

  KernelWorkload integrate;
  integrate.name = "FixNVE";
  integrate.flops = n * 18.0;
  integrate.unique_bytes = n * 96.0;
  integrate.parallel_items = n;
  integrate.launches = 2;
  out.push_back(integrate);

  KernelWorkload neigh;  // rebuild amortized over ~20 steps
  neigh.name = "NeighborBuild/20";
  neigh.flops = n * nn * 10.0 / 20.0;
  neigh.unique_bytes = (n * nn * 4.0 + n * 60.0) / 20.0;
  neigh.parallel_items = n;
  out.push_back(neigh);

  KernelWorkload misc;  // pack/unpack, thermo, small glue launches
  misc.name = "misc-launches";
  misc.parallel_items = n;
  misc.unique_bytes = n * 8.0;
  misc.launches = 1;
  out.push_back(misc);
  return out;
}

std::vector<KernelWorkload> reaxff_workloads(bigint natoms,
                                             const PotentialStats& s,
                                             const ReaxConfig& cfg) {
  const double n = double(natoms);
  std::vector<KernelWorkload> out;

  KernelWorkload bonds;
  bonds.name = "BondOrder count+fill";
  bonds.flops = n * s.neighbors_per_atom * 12.0 + n * s.bonds_per_atom * 60.0;
  bonds.unique_bytes = n * s.neighbors_per_atom * 4.0 + n * s.bonds_per_atom * 44.0;
  bonds.reuse_bytes = n * s.neighbors_per_atom * 48.0;
  bonds.working_set = 24.0 * std::min(n, 1.2e6);
  bonds.parallel_items = n;
  bonds.launches = 6;
  out.push_back(bonds);

  KernelWorkload angle;
  angle.name = "Angles";
  angle.flops = n * s.triples_per_atom * 130.0;
  angle.unique_bytes = n * s.triples_per_atom * 24.0;
  angle.atomics = n * s.triples_per_atom * 9.0;
  angle.parallel_items = cfg.preprocessed ? n * s.triples_per_atom : n;
  angle.launches = cfg.preprocessed ? 3 : 1;  // count+scan+fill glue
  out.push_back(angle);

  // Torsion: the §4.2.1 divergence model. In the direct kernel the expensive
  // work runs only on surviving quads, but a whole warp stalls if any lane
  // survives: effective cost multiplies by min(32, (1-(1-s)^32)/s).
  const double survival =
      s.quad_candidates_per_atom > 0
          ? s.quads_per_atom / s.quad_candidates_per_atom
          : 0.0;
  KernelWorkload tors;
  tors.name = cfg.preprocessed ? "Torsion (pre-processed)" : "Torsion (direct)";
  const double quad_flops = 260.0;
  if (cfg.preprocessed) {
    // Cheap divergent pre-pass + fully convergent compute over quads.
    KernelWorkload pre;
    pre.name = "Torsion pre-process";
    pre.flops = n * s.quad_candidates_per_atom * 18.0;
    pre.unique_bytes = n * s.quads_per_atom * 16.0;
    pre.parallel_items = n;
    pre.launches = 3;  // count, scan, fill
    out.push_back(pre);
    tors.flops = n * s.quads_per_atom * quad_flops;
    tors.parallel_items = n * std::max(s.quads_per_atom, 1.0);
  } else {
    const double warp_factor =
        survival > 0.0
            ? std::min(32.0, (1.0 - std::pow(1.0 - survival, 32.0)) / survival)
            : 1.0;
    tors.flops = n * s.quad_candidates_per_atom * 18.0 +
                 n * s.quads_per_atom * quad_flops * warp_factor;
    tors.parallel_items = n;
  }
  tors.unique_bytes = n * s.quads_per_atom * 16.0;
  tors.atomics = n * s.quads_per_atom * 12.0;
  out.push_back(tors);

  KernelWorkload build;
  build.name = cfg.hierarchical_qeq ? "QEq build (team rows)" : "QEq build (flat)";
  build.flops = n * s.qeq_nnz_per_atom * 40.0;
  build.unique_bytes = n * s.qeq_nnz_per_atom * 12.0;
  build.reuse_bytes =
      n * s.qeq_nnz_per_atom * (cfg.hierarchical_qeq ? 32.0 : 64.0);
  build.working_set = 24.0 * std::min(n, 1.2e6);
  build.parallel_items = cfg.hierarchical_qeq ? n * 32.0 : n;
  build.launches = 4;
  out.push_back(build);

  // CG: bandwidth-bound sparse matvecs dominate (§4.2.3). The fused dual
  // solve loads the matrix once per iteration for both systems.
  KernelWorkload cg;
  cg.name = cfg.fused_solve ? "QEq CG (fused dual)" : "QEq CG (2 solves)";
  const double iters = std::max(s.qeq_iterations, 1.0);
  const double matrix_bytes = n * s.qeq_nnz_per_atom * 12.0;
  const double vector_bytes = n * 8.0 * 10.0;
  const double passes = cfg.fused_solve ? 1.0 : 2.0;
  cg.flops = iters * n * s.qeq_nnz_per_atom * 4.0 * 2.0;
  cg.unique_bytes = iters * (matrix_bytes * passes + vector_bytes * 2.0);
  cg.parallel_items = n * 4.0;
  cg.launches = int(iters * (cfg.fused_solve ? 6 : 12));
  out.push_back(cg);

  KernelWorkload vdw;
  vdw.name = "VdW + Coulomb force";
  vdw.flops = n * s.neighbors_per_atom * 45.0 + n * s.qeq_nnz_per_atom * 30.0;
  vdw.unique_bytes = n * s.neighbors_per_atom * 4.0 + n * s.qeq_nnz_per_atom * 12.0;
  vdw.reuse_bytes = n * s.neighbors_per_atom * 48.0;
  vdw.working_set = 32.0 * std::min(n, 1.2e6);
  vdw.atomics = n * s.qeq_nnz_per_atom * 6.0;
  vdw.parallel_items = n;
  vdw.launches = 4;
  out.push_back(vdw);

  KernelWorkload integrate;
  integrate.name = "FixNVE + glue";
  integrate.flops = n * 18.0;
  integrate.unique_bytes = n * 96.0;
  integrate.parallel_items = n;
  integrate.launches = 12;  // ReaxFF steps launch many small glue kernels
  out.push_back(integrate);
  return out;
}

std::vector<KernelWorkload> snap_workloads(bigint natoms,
                                           const PotentialStats& s,
                                           const SnapConfig& cfg) {
  const double n = double(natoms);
  const double nn = s.snap_neighbors;
  const double iu = double(s.snap_idxu);
  std::vector<KernelWorkload> out;

  // ComputeUi: recursion per (atom, neighbor); batching sums `ui_batch`
  // neighbors locally before the atomic accumulation (Table 2) — atomics
  // divide by the batch factor and the batched recursions expose ILP
  // (modelled as a small FP64 efficiency gain).
  KernelWorkload ui;
  ui.name = "ComputeUi";
  const double ilp_gain = 1.0 + 0.25 * std::log2(double(std::max(cfg.ui_batch, 1)));
  ui.flops = n * nn * iu * 16.0 / ilp_gain;
  ui.unique_bytes = n * nn * 32.0 + n * iu * 16.0;
  ui.atomics = n * (nn / std::max(cfg.ui_batch, 1)) * iu * 2.0;
  ui.parallel_items = n * std::max(nn / std::max(cfg.ui_batch, 1), 1.0);
  ui.uses_shared = true;
  ui.shared_per_sm = iu * 4.0 * 8.0 * 32.0;  // 4 buffers x 32 threads/SM
  out.push_back(ui);

  // ComputeYi: Z dot products from cached U; L1-throughput limited. Batching
  // over atoms reduces lookup-table transactions (Table 2).
  KernelWorkload yi;
  yi.name = "ComputeYi";
  const double yi_batch_gain =
      1.0 + 0.15 * std::log2(double(std::max(cfg.yi_batch, 1)));
  yi.flops = n * s.snap_z_inner_ops * 8.0 / yi_batch_gain;
  yi.unique_bytes = n * double(s.snap_idxz) * 8.0;
  yi.reuse_bytes = n * s.snap_z_inner_ops * 32.0 / yi_batch_gain;
  // Tiled traversal: per-tile U sets of v=32 atoms per SM stay resident
  // (constant aggregate working set; the point of the 3-d tiling).
  yi.working_set = iu * 16.0 * 32.0 * 132.0;
  yi.atomics = n * double(s.snap_idxz) * 2.0;
  yi.parallel_items = n * 32.0;
  out.push_back(yi);

  // ComputeFusedDeidrj: dU recursion in all 3 directions + Y contraction.
  // Unfused: 3 launches, each recomputing U and reloading Y.
  KernelWorkload dei;
  dei.name = cfg.fused_deidrj ? "ComputeFusedDeidrj" : "ComputeDeidrj x3";
  if (cfg.fused_deidrj) {
    dei.flops = n * nn * iu * (16.0 + 3.0 * 24.0);
    dei.unique_bytes = n * iu * 16.0 + n * nn * 56.0;
    dei.launches = 1;
  } else {
    dei.flops = 3.0 * (n * nn * iu * (16.0 + 24.0 + 8.0));
    dei.unique_bytes = 3.0 * (n * iu * 16.0) + n * nn * 56.0;
    dei.launches = 3;
  }
  dei.atomics = n * nn * 6.0;
  dei.parallel_items = n * nn;
  dei.uses_shared = true;
  dei.shared_per_sm = iu * 8.0 * 8.0 * 32.0;
  out.push_back(dei);

  KernelWorkload integrate;
  integrate.name = "FixNVE + glue";
  integrate.flops = n * 18.0;
  integrate.unique_bytes = n * 96.0;
  integrate.parallel_items = n;
  integrate.launches = 4;
  out.push_back(integrate);
  return out;
}

}  // namespace mlk::perf
