#include "perfmodel/archdb.hpp"

#include "util/error.hpp"

namespace mlk::perf {

namespace {
constexpr double TB = 1e12;
constexpr double GB = 1e9;
constexpr double MB = 1e6;
constexpr double TF = 1e12;
constexpr double US = 1e-6;
}  // namespace

const std::vector<GpuArch>& arch_table() {
  // Paper Table 1 values; L2 sizes, SM counts, atomic rates and launch
  // latencies from vendor documentation and the paper's qualitative
  // statements (NVIDIA atomic throughput high, §4.1; GH200 launch latency
  // higher than H100, Appendix C.1).
  static const std::vector<GpuArch> table = {
      //  name     BW        cap      FP64    L1    shm  uni  L2        SM  atomics  launch  sat-threads
      {"V100", 0.9 * TB, 16 * GB, 7.8 * TF, 128, 0, true, 6 * MB, 80,
       60e9, 6 * US, 80e3},
      {"A100", 1.5 * TB, 40 * GB, 9.7 * TF, 192, 0, true, 40 * MB, 108,
       100e9, 6 * US, 110e3},
      {"H100", 3.3 * TB, 80 * GB, 34 * TF, 256, 0, true, 50 * MB, 132,
       200e9, 6 * US, 135e3},
      {"GH200", 4.0 * TB, 96 * GB, 34 * TF, 256, 0, true, 60 * MB, 132,
       200e9, 9 * US, 135e3},
      {"MI250X", 1.6 * TB, 64 * GB, 24 * TF, 16, 64, false, 8 * MB, 110,
       25e9, 8 * US, 115e3},
      {"MI300A", 5.3 * TB, 128 * GB, 61 * TF, 32, 64, false, 256 * MB, 228,
       50e9, 8 * US, 230e3},
      {"PVC", 1.6 * TB, 64 * GB, 26 * TF, 0, 128, false, 102 * MB, 64,
       30e9, 10 * US, 65e3},
      // 36-core Skylake node (Fig. 5 normalization baseline): per-core AVX512
      // FP64 and aggregate bandwidth; "launch latency" ~ a parallel-region
      // fork; effectively always saturated.
      {"CPU", 0.2 * TB, 192 * GB, 2.4 * TF, 32, 0, false, 50 * MB, 36,
       0.5e9, 1 * US, 36},
  };
  return table;
}

const GpuArch& arch(const std::string& name) {
  for (const auto& a : arch_table())
    if (a.name == name) return a;
  fatal("unknown architecture '" + name + "'");
}

const std::vector<Machine>& machine_table() {
  // Node configurations of §5.2: Frontier (4x MI250X = 8 GCDs, Slingshot-11,
  // 4 NICs), El Capitan (4x MI300A, Slingshot-11), Aurora (6x PVC = 12
  // stacks, 8 NICs), Alps (4x GH200, Slingshot-11 1:1), Eos (DGX H100 used
  // with 4 GPUs + 4 NDR400 NICs to mirror Alps, Appendix C).
  static const std::vector<Machine> table = {
      {"Frontier", "MI250X", 8, 12.5 * GB, 2 * US, 8192},
      {"ElCapitan", "MI300A", 4, 25 * GB, 2 * US, 8192},
      {"Aurora", "PVC", 12, 16.6 * GB, 2.5 * US, 2048},
      {"Alps", "GH200", 4, 25 * GB, 2 * US, 2048},
      // NDR400 nominal 50 GB/s; effective per-GPU rate set comparable to
      // Slingshot-11 per the paper ("comparable network bandwidths between
      // NDR 400 and Slingshot-11", Appendix C).
      {"Eos", "H100", 4, 25 * GB, 1.5 * US, 256},
  };
  return table;
}

const Machine& machine(const std::string& name) {
  for (const auto& m : machine_table())
    if (m.name == name) return m;
  fatal("unknown machine '" + name + "'");
}

}  // namespace mlk::perf
