#include "comm/decomposition.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mlk {

std::array<int, 3> factor_grid(int nranks, double lx, double ly, double lz) {
  require(nranks >= 1, "factor_grid: nranks must be >= 1");
  std::array<int, 3> best = {nranks, 1, 1};
  double best_surf = std::numeric_limits<double>::max();
  for (int nx = 1; nx <= nranks; ++nx) {
    if (nranks % nx) continue;
    const int rem = nranks / nx;
    for (int ny = 1; ny <= rem; ++ny) {
      if (rem % ny) continue;
      const int nz = rem / ny;
      const double sx = lx / nx, sy = ly / ny, sz = lz / nz;
      const double surf = sx * sy + sy * sz + sx * sz;
      if (surf < best_surf) {
        best_surf = surf;
        best = {nx, ny, nz};
      }
    }
  }
  return best;
}

ProcGrid make_grid(int rank, int nranks, double lx, double ly, double lz) {
  require(rank >= 0 && rank < nranks, "make_grid: bad rank");
  ProcGrid g;
  g.rank = rank;
  g.nranks = nranks;
  const auto np = factor_grid(nranks, lx, ly, lz);
  for (int d = 0; d < 3; ++d) g.np[d] = np[std::size_t(d)];
  // Row-major rank layout: rank = (ix * npy + iy) * npz + iz.
  g.coord[2] = rank % g.np[2];
  g.coord[1] = (rank / g.np[2]) % g.np[1];
  g.coord[0] = rank / (g.np[1] * g.np[2]);
  for (int d = 0; d < 3; ++d) {
    int lo[3] = {g.coord[0], g.coord[1], g.coord[2]};
    int hi[3] = {g.coord[0], g.coord[1], g.coord[2]};
    lo[d] = (g.coord[d] - 1 + g.np[d]) % g.np[d];
    hi[d] = (g.coord[d] + 1) % g.np[d];
    g.neighbor_lo[d] = grid_rank(g, lo[0], lo[1], lo[2]);
    g.neighbor_hi[d] = grid_rank(g, hi[0], hi[1], hi[2]);
  }
  return g;
}

int grid_rank(const ProcGrid& g, int ix, int iy, int iz) {
  ix = (ix + g.np[0]) % g.np[0];
  iy = (iy + g.np[1]) % g.np[1];
  iz = (iz + g.np[2]) % g.np[2];
  return (ix * g.np[1] + iy) * g.np[2] + iz;
}

void subbox_bounds(const ProcGrid& g, int d, double lo, double hi,
                   double* sublo, double* subhi) {
  const double span = hi - lo;
  *sublo = lo + span * double(g.coord[d]) / double(g.np[d]);
  *subhi = lo + span * double(g.coord[d] + 1) / double(g.np[d]);
}

}  // namespace mlk
