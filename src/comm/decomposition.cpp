#include "comm/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mlk {

std::array<int, 3> factor_grid(int nranks, double lx, double ly, double lz) {
  require(nranks >= 1, "factor_grid: nranks must be >= 1");
  std::array<int, 3> best = {nranks, 1, 1};
  double best_surf = std::numeric_limits<double>::max();
  for (int nx = 1; nx <= nranks; ++nx) {
    if (nranks % nx) continue;
    const int rem = nranks / nx;
    for (int ny = 1; ny <= rem; ++ny) {
      if (rem % ny) continue;
      const int nz = rem / ny;
      const double sx = lx / nx, sy = ly / ny, sz = lz / nz;
      const double surf = sx * sy + sy * sz + sx * sz;
      if (surf < best_surf) {
        best_surf = surf;
        best = {nx, ny, nz};
      }
    }
  }
  return best;
}

ProcGrid make_grid(int rank, int nranks, double lx, double ly, double lz) {
  require(rank >= 0 && rank < nranks, "make_grid: bad rank");
  ProcGrid g;
  g.rank = rank;
  g.nranks = nranks;
  const auto np = factor_grid(nranks, lx, ly, lz);
  for (int d = 0; d < 3; ++d) g.np[d] = np[std::size_t(d)];
  // Row-major rank layout: rank = (ix * npy + iy) * npz + iz.
  g.coord[2] = rank % g.np[2];
  g.coord[1] = (rank / g.np[2]) % g.np[1];
  g.coord[0] = rank / (g.np[1] * g.np[2]);
  for (int d = 0; d < 3; ++d) {
    int lo[3] = {g.coord[0], g.coord[1], g.coord[2]};
    int hi[3] = {g.coord[0], g.coord[1], g.coord[2]};
    lo[d] = (g.coord[d] - 1 + g.np[d]) % g.np[d];
    hi[d] = (g.coord[d] + 1) % g.np[d];
    g.neighbor_lo[d] = grid_rank(g, lo[0], lo[1], lo[2]);
    g.neighbor_hi[d] = grid_rank(g, hi[0], hi[1], hi[2]);
  }
  return g;
}

int grid_rank(const ProcGrid& g, int ix, int iy, int iz) {
  ix = (ix + g.np[0]) % g.np[0];
  iy = (iy + g.np[1]) % g.np[1];
  iz = (iz + g.np[2]) % g.np[2];
  return (ix * g.np[1] + iy) * g.np[2] + iz;
}

void subbox_bounds(const ProcGrid& g, int d, double lo, double hi,
                   double* sublo, double* subhi) {
  const double span = hi - lo;
  *sublo = lo + span * double(g.coord[d]) / double(g.np[d]);
  *subhi = lo + span * double(g.coord[d] + 1) / double(g.np[d]);
}

std::vector<double> uniform_cuts(int np, double lo, double hi) {
  require(np >= 1, "uniform_cuts: np must be >= 1");
  require(hi > lo, "uniform_cuts: empty interval");
  // Same arithmetic as subbox_bounds, so sub-boxes of a never-rebalanced run
  // are bitwise identical to the historical static decomposition.
  std::vector<double> cuts(std::size_t(np) + 1);
  const double span = hi - lo;
  for (int i = 0; i <= np; ++i)
    cuts[std::size_t(i)] = lo + span * double(i) / double(np);
  return cuts;
}

std::vector<double> rcb_cuts(const std::vector<double>& weights, int np,
                             double lo, double hi, double min_width) {
  require(np >= 1, "rcb_cuts: np must be >= 1");
  require(hi > lo, "rcb_cuts: empty interval");
  if (np == 1) return {lo, hi};
  require(min_width > 0.0, "rcb_cuts: min_width must be positive");
  require(min_width * np <= hi - lo,
          "rcb_cuts: interval cannot fit np slabs of min_width (sub-domain "
          "would be thinner than the ghost cutoff)");

  const int nb = int(weights.size());
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "rcb_cuts: negative weight");
    total += w;
  }
  if (nb == 0 || total <= 0.0) return uniform_cuts(np, lo, hi);

  // Cumulative weight at bin edges; linear interpolation inside a bin turns
  // the histogram into a piecewise-linear CDF we can evaluate both ways.
  const double binw = (hi - lo) / double(nb);
  std::vector<double> cum(std::size_t(nb) + 1, 0.0);
  for (int k = 0; k < nb; ++k)
    cum[std::size_t(k) + 1] = cum[std::size_t(k)] + weights[std::size_t(k)];

  auto position_of = [&](double target) {  // CDF^-1
    target = std::clamp(target, 0.0, cum[std::size_t(nb)]);
    int k = int(std::upper_bound(cum.begin(), cum.end(), target) -
                cum.begin()) -
            1;
    k = std::clamp(k, 0, nb - 1);
    const double wk = weights[std::size_t(k)];
    const double frac = wk > 0.0 ? (target - cum[std::size_t(k)]) / wk : 0.0;
    return lo + (double(k) + std::clamp(frac, 0.0, 1.0)) * binw;
  };
  auto weight_below = [&](double x) {  // CDF
    const double b = std::clamp((x - lo) / binw, 0.0, double(nb));
    const int k = std::min(nb - 1, int(b));
    return cum[std::size_t(k)] + (b - double(k)) * weights[std::size_t(k)];
  };

  std::vector<double> cuts(std::size_t(np) + 1);
  cuts[0] = lo;
  cuts[std::size_t(np)] = hi;
  // Recursive bisection over rank slabs [rlo, rhi): split the rank interval
  // in half (uneven halves for odd counts) and place the cut at the matching
  // weight quantile of the current window, clamped so every rank on either
  // side keeps at least min_width.
  auto bisect = [&](auto&& self, int rlo, int rhi, double wlo,
                    double whi) -> void {
    if (rhi - rlo <= 1) return;
    const int nleft = (rhi - rlo) / 2;
    const int rmid = rlo + nleft;
    const double target = wlo + (whi - wlo) * double(nleft) / double(rhi - rlo);
    const double lo_limit = cuts[std::size_t(rlo)] + min_width * nleft;
    const double hi_limit = cuts[std::size_t(rhi)] - min_width * (rhi - rmid);
    const double xcut = std::clamp(position_of(target), lo_limit, hi_limit);
    cuts[std::size_t(rmid)] = xcut;
    const double wmid = weight_below(xcut);
    self(self, rlo, rmid, wlo, wmid);
    self(self, rmid, rhi, wmid, whi);
  };
  bisect(bisect, 0, np, 0.0, total);

  for (int i = 0; i < np; ++i)
    require(cuts[std::size_t(i)] < cuts[std::size_t(i) + 1],
            "rcb_cuts: produced non-increasing cuts");
  return cuts;
}

}  // namespace mlk
