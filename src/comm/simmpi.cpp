#include "comm/simmpi.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "kokkos/profiling.hpp"

namespace simmpi {

World::World(int nranks) : nranks_(nranks) {
  mlk::require(nranks >= 1, "simmpi world needs >= 1 rank");
  mailboxes_.reserve(std::size_t(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  reduce_slots_.resize(std::size_t(nranks));
  // Optional modelled link from the environment (see set_link).
  double lat = 0.0, bw = 0.0;
  if (const char* s = std::getenv("MLK_SIMMPI_LATENCY_US"))
    lat = std::atof(s) * 1e-6;
  if (const char* s = std::getenv("MLK_SIMMPI_BW_MBS"))
    bw = std::atof(s) * 1e6;
  if (lat > 0.0 || bw > 0.0) set_link(lat, bw);
}

void World::set_link(double latency_seconds, double bytes_per_second) {
  link_latency_ = latency_seconds > 0.0 ? latency_seconds : 0.0;
  link_sec_per_byte_ =
      bytes_per_second > 0.0 ? 1.0 / bytes_per_second : 0.0;
}

void World::run(const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors{std::size_t(nranks_)};
  threads.reserve(std::size_t(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      // Tag the thread so profiling tools can scope events (and output
      // files) to this rank, as one-process-per-rank MPI gets for free.
      kk::profiling::set_thread_tag(r);
      kk::profiling::set_thread_name("rank-" + std::to_string(r));
      Comm comm(*this, r);
      try {
        rank_main(comm);
      } catch (...) {
        errors[std::size_t(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void Comm::send_raw(int dest, int tag, std::vector<char> payload) {
  mlk::require(dest >= 0 && dest < size(), "simmpi: bad destination rank");
  auto& box = *world_.mailboxes_[std::size_t(dest)];
  World::Message msg{tag, std::move(payload), {}};
  // Modelled wire: the message materializes at the receiver only after the
  // link's latency + serialization time (the sender, like a real NIC posting
  // a send, does not block).
  const double wire =
      world_.link_latency_ +
      double(msg.payload.size()) * world_.link_sec_per_byte_;
  if (wire > 0.0) {
    msg.deliver_at = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(wire));
  }
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.queues[rank_].push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<char> Comm::recv_raw(int src, int tag) {
  mlk::require(src >= 0 && src < size(), "simmpi: bad source rank");
  auto& box = *world_.mailboxes_[std::size_t(rank_)];
  std::unique_lock<std::mutex> lk(box.mu);
  for (;;) {
    auto& q = box.queues[src];
    auto it = std::find_if(q.begin(), q.end(),
                           [tag](const World::Message& m) { return m.tag == tag; });
    if (it != q.end()) {
      std::vector<char> payload = std::move(it->payload);
      const auto deliver_at = it->deliver_at;
      q.erase(it);
      lk.unlock();  // let other senders post while we sit on the wire
      if (deliver_at != std::chrono::steady_clock::time_point{})
        std::this_thread::sleep_until(deliver_at);
      return payload;
    }
    box.cv.wait(lk);
  }
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lk(world_.bar_mu_);
  const bool sense = world_.bar_sense_;
  if (++world_.bar_count_ == world_.nranks_) {
    world_.bar_count_ = 0;
    world_.bar_sense_ = !sense;
    world_.bar_cv_.notify_all();
  } else {
    world_.bar_cv_.wait(lk, [&] { return world_.bar_sense_ != sense; });
  }
}

template <class T, class Op>
T Comm::allreduce_impl(T v, Op op) {
  auto& slot = world_.reduce_slots_[std::size_t(rank_)];
  slot.resize(sizeof(T));
  std::memcpy(slot.data(), &v, sizeof(T));
  barrier();  // all contributions posted
  T acc = v;
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    T other;
    std::memcpy(&other, world_.reduce_slots_[std::size_t(r)].data(), sizeof(T));
    acc = op(acc, other);
  }
  barrier();  // all ranks done reading before slots can be reused
  return acc;
}

double Comm::allreduce_sum(double v) {
  return allreduce_impl(v, [](double a, double b) { return a + b; });
}

mlk::bigint Comm::allreduce_sum(mlk::bigint v) {
  return allreduce_impl(v, [](mlk::bigint a, mlk::bigint b) { return a + b; });
}

double Comm::allreduce_max(double v) {
  return allreduce_impl(v, [](double a, double b) { return a > b ? a : b; });
}

double Comm::allreduce_min(double v) {
  return allreduce_impl(v, [](double a, double b) { return a < b ? a : b; });
}

std::vector<double> Comm::allreduce_sum(const std::vector<double>& v) {
  auto& slot = world_.reduce_slots_[std::size_t(rank_)];
  slot.resize(v.size() * sizeof(double));
  if (!v.empty()) std::memcpy(slot.data(), v.data(), slot.size());
  barrier();
  std::vector<double> acc = v;
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    const auto& other = world_.reduce_slots_[std::size_t(r)];
    mlk::require(other.size() == slot.size(),
                 "simmpi: allreduce vector length mismatch");
    const double* p = reinterpret_cast<const double*>(other.data());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += p[i];
  }
  barrier();
  return acc;
}

}  // namespace simmpi
