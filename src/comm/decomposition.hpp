// Spatial domain decomposition: factor P ranks into a 3-D processor grid
// minimizing communication surface (LAMMPS's default brick decomposition),
// and map each rank to a sub-box plus its 6 face-neighbor ranks.
//
// Cut planes along each dimension may be non-uniform: `balance rcb` computes
// them by recursive coordinate bisection of per-axis atom-density histograms
// (docs/DECOMPOSITION.md). The cuts stay *rectilinear* — one shared set of
// planes per dimension — so the 6-swap brick communication pattern (face
// neighbors only, no diagonal messages) keeps working unchanged; this is the
// brick-topology subset of LAMMPS's balance command, not the tiled one.
#pragma once

#include <array>
#include <vector>

#include "util/types.hpp"

namespace mlk {

struct ProcGrid {
  int np[3] = {1, 1, 1};          // ranks per dimension
  int coord[3] = {0, 0, 0};       // this rank's grid coordinates
  int neighbor_lo[3] = {0, 0, 0}; // rank of -x/-y/-z face neighbor (periodic)
  int neighbor_hi[3] = {0, 0, 0}; // rank of +x/+y/+z face neighbor (periodic)
  int rank = 0;
  int nranks = 1;
};

/// Choose np[0..2] with np0*np1*np2 == nranks minimizing the total surface
/// area of sub-boxes for a box of extents (lx, ly, lz).
std::array<int, 3> factor_grid(int nranks, double lx, double ly, double lz);

/// Build the full grid info for `rank` of `nranks` over box extents.
ProcGrid make_grid(int rank, int nranks, double lx, double ly, double lz);

/// Rank owning grid coordinates (ix,iy,iz) with periodic wrap.
int grid_rank(const ProcGrid& g, int ix, int iy, int iz);

/// Sub-box bounds of this rank along dimension d within [lo, hi).
void subbox_bounds(const ProcGrid& g, int d, double lo, double hi,
                   double* sublo, double* subhi);

/// The np+1 uniform cut planes over [lo, hi]. uniform_cuts(...)[coord] and
/// [coord+1] reproduce subbox_bounds bitwise (same arithmetic), so a run
/// that never rebalances keeps its historical sub-box bounds exactly.
std::vector<double> uniform_cuts(int np, double lo, double hi);

/// Recursive coordinate bisection of one axis: given per-bin weights
/// (atom counts) over [lo, hi] split uniformly into weights.size() bins,
/// place np-1 interior cuts so each of the np slabs carries ~1/np of the
/// total weight. Splits recurse LAMMPS-RCB style: each level divides the
/// rank interval in half (uneven halves for odd np) and positions the cut
/// at the matching weight quantile, interpolating linearly inside a bin.
/// Every slab is clamped to a width of at least `min_width` (the comm
/// ghost cutoff — CommBrick::setup rejects thinner sub-domains); with zero
/// total weight the cuts degrade to uniform. Returns np+1 ascending planes
/// with front() == lo and back() == hi.
std::vector<double> rcb_cuts(const std::vector<double>& weights, int np,
                             double lo, double hi, double min_width);

}  // namespace mlk
