// Spatial domain decomposition: factor P ranks into a 3-D processor grid
// minimizing communication surface (LAMMPS's default brick decomposition),
// and map each rank to a sub-box plus its 6 face-neighbor ranks.
#pragma once

#include <array>

#include "util/types.hpp"

namespace mlk {

struct ProcGrid {
  int np[3] = {1, 1, 1};          // ranks per dimension
  int coord[3] = {0, 0, 0};       // this rank's grid coordinates
  int neighbor_lo[3] = {0, 0, 0}; // rank of -x/-y/-z face neighbor (periodic)
  int neighbor_hi[3] = {0, 0, 0}; // rank of +x/+y/+z face neighbor (periodic)
  int rank = 0;
  int nranks = 1;
};

/// Choose np[0..2] with np0*np1*np2 == nranks minimizing the total surface
/// area of sub-boxes for a box of extents (lx, ly, lz).
std::array<int, 3> factor_grid(int nranks, double lx, double ly, double lz);

/// Build the full grid info for `rank` of `nranks` over box extents.
ProcGrid make_grid(int rank, int nranks, double lx, double ly, double lz);

/// Rank owning grid coordinates (ix,iy,iz) with periodic wrap.
int grid_rank(const ProcGrid& g, int ix, int iy, int iz);

/// Sub-box bounds of this rank along dimension d within [lo, hi).
void subbox_bounds(const ProcGrid& g, int d, double lo, double hi,
                   double* sublo, double* subhi);

}  // namespace mlk
