// simmpi — an in-process message-passing substrate standing in for MPI.
//
// The paper's multi-node runs use MPI domain decomposition (one rank per
// GPU/GCD/stack). No network exists in this environment, so simmpi runs each
// rank as a thread inside one process with mailbox-based point-to-point
// messaging, barriers, and allreduce — enough to drive the *same* pack /
// exchange / border / forward / reverse communication code paths LAMMPS runs
// over a fabric, with testable correctness.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace simmpi {

class Comm;

/// A communicator "world" of nranks. Construct, then run(main) which spawns
/// one thread per rank executing main(comm).
class World {
 public:
  explicit World(int nranks);

  int size() const { return nranks_; }

  /// Execute `rank_main` on every rank concurrently; rethrows the first
  /// rank's exception (if any) after all ranks have finished.
  void run(const std::function<void(Comm&)>& rank_main);

  /// Modelled interconnect (DESIGN.md's measurement-vs-modelling split).
  /// The in-process mailbox has no physical wire, so by default messages
  /// arrive instantly; with a link set, every point-to-point message is
  /// delivered `latency + bytes/bandwidth` seconds after the send posts and
  /// the *receiver* blocks idle until then — emulating a NIC moving bytes
  /// while compute continues, the time window the comm/compute overlap of
  /// the Verlet loop hides (docs/EXECUTION_MODEL.md, bench_overlap).
  /// Self-sends and collectives are unaffected. Also armed by the
  /// MLK_SIMMPI_LATENCY_US / MLK_SIMMPI_BW_MBS environment variables.
  void set_link(double latency_seconds, double bytes_per_second);

 private:
  friend class Comm;

  struct Message {
    int tag;
    std::vector<char> payload;
    std::chrono::steady_clock::time_point deliver_at{};
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // keyed by source rank; FIFO per (src); tag matched at receive.
    std::map<int, std::deque<Message>> queues;
  };

  // Sense-reversing barrier state.
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ = 0;
  bool bar_sense_ = false;

  // Allreduce scratch (one slot per rank, double-buffered by barrier).
  std::vector<std::vector<char>> reduce_slots_;

  // Modelled link: seconds of latency per message + seconds per byte.
  double link_latency_ = 0.0;
  double link_sec_per_byte_ = 0.0;

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

/// Per-rank handle. All operations are blocking (MPI_Send semantics with
/// infinite buffering; MPI_Recv blocks until a matching message arrives).
class Comm {
 public:
  Comm(World& world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_.nranks_; }

  /// Typed vector send/recv for trivially copyable T.
  template <class T>
  void send(int dest, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<char> payload(data.size() * sizeof(T));
    if (!data.empty())
      std::memcpy(payload.data(), data.data(), payload.size());
    send_raw(dest, tag, std::move(payload));
  }

  template <class T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<char> payload = recv_raw(src, tag);
    mlk::require(payload.size() % sizeof(T) == 0,
                 "simmpi: message size not a multiple of element size");
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty())
      std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }

  /// Paired exchange: send to `dest`, receive from `src` (sendrecv pattern
  /// used by the 6-direction halo exchange).
  template <class T>
  std::vector<T> sendrecv(int dest, int src, int tag,
                          const std::vector<T>& data) {
    send(dest, tag, data);
    return recv<T>(src, tag);
  }

  void barrier();

  double allreduce_sum(double v);
  mlk::bigint allreduce_sum(mlk::bigint v);
  double allreduce_max(double v);
  double allreduce_min(double v);

  /// Element-wise sum allreduce of a vector (same length on all ranks).
  std::vector<double> allreduce_sum(const std::vector<double>& v);

 private:
  void send_raw(int dest, int tag, std::vector<char> payload);
  std::vector<char> recv_raw(int src, int tag);

  template <class T, class Op>
  T allreduce_impl(T v, Op op);

  World& world_;
  int rank_;
};

}  // namespace simmpi
