// Fault injection + recovery harness for exercising the checkpoint/restart
// path the way a node failure would at scale (paper §4's multi-day exascale
// campaigns survive on exactly this machinery).
//
// FaultInjector kills a run mid-step — after the first integration half-kick,
// before the end-of-step checkpoint write — at a configurable timestep, by
// throwing FaultInjected. Configure via the `fault_inject <step>` script
// command or the MLK_FAULT_STEP environment variable (env wins; "off"/unset
// disables). A single injector fires at most once so the recovered run does
// not immediately re-kill itself at the same step.
//
// Recovery: `recover_latest` scans `<base>.<step>` checkpoint sets, skips any
// whose header/payload CRC fails (torn or truncated files), and restores the
// newest valid one — the fallback-to-previous-checkpoint behavior a
// production scheduler wrapper implements around srun.
#pragma once

#include <string>

#include "util/error.hpp"
#include "util/types.hpp"

namespace mlk {

class Simulation;

namespace io {

/// Thrown by FaultInjector::maybe_fail — distinct from Error so tests and
/// drivers can tell an injected crash from a genuine failure.
class FaultInjected : public Error {
 public:
  explicit FaultInjected(bigint step)
      : Error("fault injected at step " + std::to_string(step)),
        step_(step) {}
  bigint step() const { return step_; }

 private:
  bigint step_;
};

class FaultInjector {
 public:
  /// Arm the injector to fire when the run reaches `step` (-1 disarms).
  void arm(bigint step) { fault_step_ = step; }

  /// Read MLK_FAULT_STEP from the environment; overrides arm() if set.
  void arm_from_env();

  bool armed() const { return fault_step_ >= 0; }
  bigint fault_step() const { return fault_step_; }

  /// Called from the integration loop: throws FaultInjected once when
  /// `step` reaches the armed step, then disarms.
  void maybe_fail(bigint step) {
    if (fault_step_ >= 0 && step >= fault_step_) {
      fault_step_ = -1;
      throw FaultInjected(step);
    }
  }

 private:
  bigint fault_step_ = -1;
};

/// Restore the newest CRC-valid checkpoint set `<base>.<step>` into `sim`.
/// Returns the step resumed from. Throws when no valid checkpoint exists.
bigint recover_latest(Simulation& sim, const std::string& base);

}  // namespace io
}  // namespace mlk
