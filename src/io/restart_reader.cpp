#include "io/restart_reader.hpp"

#include <cstring>
#include <fstream>

#include "engine/simulation.hpp"
#include "engine/style_registry.hpp"
#include "io/binary_io.hpp"
#include "io/restart.hpp"
#include "util/error.hpp"

namespace mlk::io {

namespace {

/// Load + validate one rank file; returns the payload ready for parsing and
/// reports the file's format version so the caller can gate newer sections.
BinaryReader load_payload(const std::string& path, int nranks_expected,
                          int rank_expected, std::uint32_t& version_out) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "read_restart: cannot open '" + path + "'");

  RestartHeader h;
  require(bool(in.read(reinterpret_cast<char*>(&h), sizeof(h))),
          "read_restart: '" + path + "' is too short for a restart header");
  require(std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
          "read_restart: '" + path + "' is not a restart file (bad magic)");
  require(h.endian_tag == kEndianTag,
          "read_restart: '" + path + "' was written on a machine with "
          "different endianness");
  require(h.version >= 1 && h.version <= kFormatVersion,
          "read_restart: '" + path + "' has format version " +
              std::to_string(h.version) + "; this build reads up to " +
              std::to_string(kFormatVersion));
  require(h.header_crc ==
              crc32(&h, sizeof(RestartHeader) - sizeof(std::uint32_t)),
          "read_restart: '" + path + "' header CRC mismatch (corrupt file)");
  require(h.nranks == nranks_expected,
          "read_restart: checkpoint was written by " +
              std::to_string(h.nranks) + " rank(s) but this run has " +
              std::to_string(nranks_expected) +
              "; resume with the same rank count");
  require(h.rank == rank_expected,
          "read_restart: '" + path + "' belongs to rank " +
              std::to_string(h.rank) + ", not rank " +
              std::to_string(rank_expected));

  std::vector<char> payload(std::size_t(h.payload_size));
  require(bool(in.read(payload.data(), std::streamsize(payload.size()))),
          "read_restart: '" + path + "' payload is truncated");
  require(crc32(payload.data(), payload.size()) == h.payload_crc,
          "read_restart: '" + path + "' payload CRC mismatch (torn or "
          "corrupt checkpoint)");
  version_out = h.version;
  return BinaryReader(std::move(payload));
}

}  // namespace

void RestartReader::read(Simulation& sim, const std::string& base) {
  const int rank = sim.mpi ? sim.mpi->rank() : 0;
  const int nranks = sim.mpi ? sim.mpi->size() : 1;
  std::uint32_t version = 0;
  BinaryReader r = load_payload(restart_file_name(base, rank, nranks), nranks,
                                rank, version);

  // --- run state (set_units resets dt/skin defaults, so restore them after)
  const bigint ntimestep = r.get<bigint>();
  sim.set_units(r.get_string());
  sim.ntimestep = ntimestep;
  sim.dt = r.get<double>();
  sim.global_suffix = r.get_string();
  sim.newton_override = int(r.get<std::int32_t>());

  sim.neighbor.skin = r.get<double>();
  sim.neighbor.every = int(r.get<std::int32_t>());
  sim.neighbor.delay = int(r.get<std::int32_t>());
  sim.neighbor.check = r.get<std::uint8_t>() != 0;
  sim.thermo.every = r.get<bigint>();

  // --- domain ---
  double lo[3], hi[3];
  for (int d = 0; d < 3; ++d) lo[d] = r.get<double>();
  for (int d = 0; d < 3; ++d) hi[d] = r.get<double>();
  sim.domain.set_box(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2]);
  for (int d = 0; d < 3; ++d)
    sim.domain.periodic[d] = r.get<std::uint8_t>() != 0;
  if (sim.mpi) sim.domain.decompose(sim.mpi->rank(), sim.mpi->size());

  // --- v2: decomposition + sort/balance state. decompose() above reset the
  // cut planes to the uniform grid; restore the writer's (possibly RCB)
  // cuts after it so the resumed run owns exactly the atoms it wrote.
  if (version >= 2) {
    for (int d = 0; d < 3; ++d) sim.domain.set_cuts(d, r.get_vector<double>());
    sim.neighbor.canonical = r.get<std::uint8_t>() != 0;
    sim.sorter.every = int(r.get<std::int32_t>());
    sim.sorter.builds_since_sort = int(r.get<std::int32_t>());
    sim.sorter.path = r.get<std::uint8_t>() == 0 ? AtomSorter::Path::Scalar
                                                 : AtomSorter::Path::Binned;
    sim.sorter.nsorts = r.get<bigint>();
    sim.balancer.enabled = r.get<std::uint8_t>() != 0;
    sim.balancer.thresh = r.get<double>();
    sim.balancer.nbins = int(r.get<std::int32_t>());
    sim.balancer.nbalances = r.get<bigint>();
  }

  // --- atoms ---
  Atom& a = sim.atom;
  require(a.nlocal == 0 && a.nghost == 0,
          "read_restart: atoms already exist; restart must be read into a "
          "fresh simulation");
  const bigint natoms = r.get<bigint>();
  a.set_ntypes(int(r.get<std::int32_t>()));
  {
    const auto mass = r.get_vector<double>();
    require(mass.size() == std::size_t(a.ntypes) + 1,
            "read_restart: mass table size mismatch");
    for (int t = 1; t <= a.ntypes; ++t) a.set_mass(t, mass[std::size_t(t)]);
  }
  const std::int32_t nlocal = r.get<std::int32_t>();
  const auto tags = r.get_vector<tagint>();
  const auto types = r.get_vector<std::int32_t>();
  const auto x = r.get_vector<double>();
  const auto v = r.get_vector<double>();
  const auto q = r.get_vector<double>();
  const std::size_t n = std::size_t(nlocal);
  require(tags.size() == n && types.size() == n && x.size() == 3 * n &&
              v.size() == 3 * n && q.size() == n,
          "read_restart: per-atom array size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    a.add_atom(int(types[i]), tags[i], x[3 * i], x[3 * i + 1], x[3 * i + 2]);
    for (std::size_t d = 0; d < 3; ++d) a.k_v.h_view(i, d) = v[3 * i + d];
    a.k_q.h_view(i) = q[i];
  }
  a.modified<kk::Host>(V_MASK | Q_MASK);
  a.natoms = natoms;

  // --- pair style: a style declared in the resume script wins; otherwise
  // re-instantiate from the checkpoint (only styles that packed coeffs) ---
  if (r.get<std::uint8_t>()) {
    const std::string pair_name = r.get_string();
    const bool supported = r.get<std::uint8_t>() != 0;
    BinaryReader blob =
        supported ? r.get_blob() : BinaryReader(std::vector<char>{});
    if (!sim.pair) {
      require(supported,
              "read_restart: pair style '" + pair_name +
                  "' does not serialize its coefficients; re-specify "
                  "pair_style/pair_coeff before read_restart");
      sim.pair = StyleRegistry::instance().create_pair(pair_name);
      sim.pair->ntypes_hint = a.ntypes;
      sim.pair->unpack_restart(blob);
    }
  }

  // --- fixes: restore state into script-declared fixes by id+style, and
  // re-instantiate any fix the resume script did not re-declare ---
  const std::uint32_t nfix = r.get<std::uint32_t>();
  for (std::uint32_t k = 0; k < nfix; ++k) {
    const std::string id = r.get_string();
    const std::string style = r.get_string();
    BinaryReader blob = r.get_blob();
    Fix* target = nullptr;
    for (auto& fix : sim.fixes)
      if (fix->id == id && fix->style_name == style) target = fix.get();
    if (!target) {
      auto fix = StyleRegistry::instance().create_fix(style);
      fix->id = id;
      target = fix.get();
      sim.fixes.push_back(std::move(fix));
    }
    target->unpack_restart(blob);
  }

  // Resume goes through a full setup (ghosts, neighbor list, forces).
  sim.setup_done = false;
}

}  // namespace mlk::io
