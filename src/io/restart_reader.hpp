// RestartReader — rebuilds a Simulation from a RestartWriter checkpoint.
//
// Validation order: header magic/version/endianness, header CRC, payload
// size, payload CRC — all before any field is parsed, so torn or truncated
// files are rejected with a clear error instead of producing a corrupt
// resume. A checkpoint written by N ranks can only be read by an N-rank
// world (the per-rank atom partition is not re-balanced on read).
//
// Styles: the pair style and fixes recorded in the checkpoint are
// re-instantiated through the StyleRegistry and their state restored via
// unpack_restart. If the resume script already declared a pair style or a
// fix with the same id+style, the declared instance wins and only its
// private state is overwritten — this is how styles whose coefficients
// cannot be serialized (EAM tables, SNAP) resume: re-specify them in the
// script, then read_restart.
#pragma once

#include <string>

#include "util/types.hpp"

namespace mlk {

class Simulation;

namespace io {

class RestartReader {
 public:
  /// Read this rank's file of the checkpoint set at `base` into `sim`.
  /// Throws mlk::Error on any validation failure or rank-count mismatch.
  void read(Simulation& sim, const std::string& base);
};

}  // namespace io
}  // namespace mlk
