#include "io/fault.hpp"

#include <cstdlib>

#include "engine/simulation.hpp"
#include "io/restart.hpp"
#include "io/restart_reader.hpp"
#include "util/string_utils.hpp"

namespace mlk::io {

void FaultInjector::arm_from_env() {
  const char* env = std::getenv("MLK_FAULT_STEP");
  if (!env) return;
  const std::string s(env);
  if (s.empty() || s == "off" || s == "0") {
    fault_step_ = -1;
    return;
  }
  fault_step_ = to_bigint(s);
}

bigint recover_latest(Simulation& sim, const std::string& base) {
  const int nranks = sim.mpi ? sim.mpi->size() : 1;
  const bigint step = find_latest_valid_checkpoint(base, nranks);
  require(step >= 0,
          "recover: no valid checkpoint found for '" + base +
              "' (all candidates missing, torn, or CRC-corrupt)");
  RestartReader().read(sim, checkpoint_base(base, step));
  // A recovered run exists to finish the job: disarm any pending injected
  // fault (MLK_FAULT_STEP re-arms each fresh Simulation) so recovery cannot
  // crash-loop on the very step it is replaying.
  sim.fault.arm(-1);
  return step;
}

}  // namespace mlk::io
