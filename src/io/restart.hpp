// Versioned binary restart format shared by RestartWriter / RestartReader.
//
// On-disk layout of one per-rank checkpoint file:
//
//   RestartHeader (fixed 40 bytes)
//     magic[8]      "MLKRSTRT"
//     version       u32, format revision (readers reject newer versions)
//     endian_tag    u32, 0x01020304 as written — a foreign-endian reader
//                   sees 0x04030201 and rejects the file
//     nranks, rank  i32 x2 — world size that wrote the set and this file's
//                   rank; resuming with a different world size is an error
//     payload_size  u64
//     payload_crc   u32, CRC-32 of the payload bytes
//     header_crc    u32, CRC-32 of the 36 header bytes above it
//   payload (payload_size bytes, BinaryWriter stream — see RestartWriter)
//
// Torn/truncated files fail either the header CRC, the size check, or the
// payload CRC and are rejected before any field is parsed.
//
// File naming: a serial run writes `<base>`; under simmpi each rank writes
// `<base>.<rank>`. Periodic checkpoints embed the step: `<base>.<step>` /
// `<base>.<step>.<rank>`, which is what recovery scans for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mlk::io {

inline constexpr char kMagic[8] = {'M', 'L', 'K', 'R', 'S', 'T', 'R', 'T'};
// v2: per-dim RCB cut planes, sorter cadence/counters, balancer settings,
// and the canonical neighbor-order flag (docs/DECOMPOSITION.md). Readers
// accept v1 files (those fields keep their defaults: uniform cuts, sort and
// balance off).
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

struct RestartHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::int32_t nranks;
  std::int32_t rank;
  std::uint64_t payload_size;
  std::uint32_t payload_crc;
  std::uint32_t header_crc;  // CRC of the 36 bytes preceding this field
};
static_assert(sizeof(RestartHeader) == 40);

/// Per-rank file name: `<base>` in serial, `<base>.<rank>` under simmpi.
std::string restart_file_name(const std::string& base, int rank, int nranks);

/// Periodic-checkpoint base name embedding the step: `<base>.<step>`.
std::string checkpoint_base(const std::string& base, bigint step);

/// Validate one file: magic, version, endianness, header CRC, size, payload
/// CRC. Returns false (never throws) on any defect including a missing file.
bool validate_restart_file(const std::string& path);

/// Validate a whole checkpoint set: every rank's file of `<base>[.rank]`.
bool validate_checkpoint(const std::string& base, int nranks);

/// Steps of all periodic checkpoints `<base>.<step>[...]` present on disk,
/// newest first. Lists what exists; validity is checked separately.
std::vector<bigint> list_checkpoint_steps(const std::string& base);

/// Newest step whose full checkpoint set passes validation, or -1 if none.
/// Torn checkpoints are skipped — this is the recovery fallback path.
bigint find_latest_valid_checkpoint(const std::string& base, int nranks);

}  // namespace mlk::io
