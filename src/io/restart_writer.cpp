#include "io/restart_writer.hpp"

#include <cstring>
#include <fstream>

#include "engine/simulation.hpp"
#include "io/binary_io.hpp"
#include "io/restart.hpp"
#include "util/error.hpp"

namespace mlk::io {

void RestartWriter::write(Simulation& sim, const std::string& base) {
  const int rank = sim.mpi ? sim.mpi->rank() : 0;
  const int nranks = sim.mpi ? sim.mpi->size() : 1;

  BinaryWriter w;

  // --- run state ---
  w.put(sim.ntimestep);
  w.put_string(sim.units.name);
  w.put(sim.dt);
  w.put_string(sim.global_suffix);
  w.put(std::int32_t(sim.newton_override));

  // --- neighbor / thermo cadence settings ---
  w.put(sim.neighbor.skin);
  w.put(std::int32_t(sim.neighbor.every));
  w.put(std::int32_t(sim.neighbor.delay));
  w.put(std::uint8_t(sim.neighbor.check ? 1 : 0));
  w.put(sim.thermo.every);

  // --- domain (global box; sub-boxes are re-derived by decompose on read) ---
  for (int d = 0; d < 3; ++d) w.put(sim.domain.boxlo[d]);
  for (int d = 0; d < 3; ++d) w.put(sim.domain.boxhi[d]);
  for (int d = 0; d < 3; ++d) w.put(std::uint8_t(sim.domain.periodic[d]));

  // --- v2: decomposition + sort/balance state (docs/DECOMPOSITION.md).
  // The RCB cut planes are part of the trajectory: a resume that silently
  // reset them to the uniform grid would migrate atoms at the first rebuild
  // and diverge from the writer. Likewise the sorter's rebuild counter — a
  // pending sort must fire on the same rebuild after resume.
  for (int d = 0; d < 3; ++d) w.put_vector(sim.domain.cuts(d));
  w.put(std::uint8_t(sim.neighbor.canonical ? 1 : 0));
  w.put(std::int32_t(sim.sorter.every));
  w.put(std::int32_t(sim.sorter.builds_since_sort));
  w.put(std::uint8_t(sim.sorter.path == AtomSorter::Path::Scalar ? 0 : 1));
  w.put(sim.sorter.nsorts);
  w.put(std::uint8_t(sim.balancer.enabled ? 1 : 0));
  w.put(sim.balancer.thresh);
  w.put(std::int32_t(sim.balancer.nbins));
  w.put(sim.balancer.nbalances);

  // --- atoms (owned only; ghosts are rebuilt from scratch on resume) ---
  Atom& a = sim.atom;
  a.sync<kk::Host>(X_MASK | V_MASK | TYPE_MASK | TAG_MASK | Q_MASK);
  w.put(a.natoms);
  w.put(std::int32_t(a.ntypes));
  {
    std::vector<double> mass(std::size_t(a.ntypes) + 1, 0.0);
    for (int t = 1; t <= a.ntypes; ++t) mass[std::size_t(t)] = a.mass_of_type(t);
    w.put_vector(mass);
  }
  const std::size_t n = std::size_t(a.nlocal);
  w.put(std::int32_t(a.nlocal));
  {
    std::vector<tagint> tags(n);
    std::vector<std::int32_t> types(n);
    std::vector<double> x(3 * n), v(3 * n), q(n);
    for (std::size_t i = 0; i < n; ++i) {
      tags[i] = a.k_tag.h_view(i);
      types[i] = a.k_type.h_view(i);
      for (std::size_t d = 0; d < 3; ++d) {
        x[3 * i + d] = a.k_x.h_view(i, d);
        v[3 * i + d] = a.k_v.h_view(i, d);
      }
      q[i] = a.k_q.h_view(i);
    }
    w.put_vector(tags);
    w.put_vector(types);
    w.put_vector(x);
    w.put_vector(v);
    w.put_vector(q);
  }

  // --- pair style ---
  w.put(std::uint8_t(sim.pair ? 1 : 0));
  if (sim.pair) {
    w.put_string(sim.pair->style_name);
    BinaryWriter pw;
    const bool supported = sim.pair->pack_restart(pw);
    w.put(std::uint8_t(supported ? 1 : 0));
    if (supported) w.put_blob(pw);
  }

  // --- fixes (id + style + private state, RNG streams included) ---
  w.put(std::uint32_t(sim.fixes.size()));
  for (const auto& fix : sim.fixes) {
    w.put_string(fix->id);
    w.put_string(fix->style_name);
    BinaryWriter fw;
    fix->pack_restart(fw);
    w.put_blob(fw);
  }

  // --- header + atomic publish (write to a temp name, then rename, so a
  // crash mid-write can never leave a plausible-looking torn file) ---
  RestartHeader h;
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kFormatVersion;
  h.endian_tag = kEndianTag;
  h.nranks = nranks;
  h.rank = rank;
  h.payload_size = w.bytes().size();
  h.payload_crc = w.crc();
  h.header_crc = crc32(&h, sizeof(RestartHeader) - sizeof(std::uint32_t));

  const std::string path = restart_file_name(base, rank, nranks);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "write_restart: cannot open '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(w.bytes().data(), std::streamsize(w.bytes().size()));
    require(out.good(), "write_restart: short write to '" + tmp + "'");
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "write_restart: cannot publish '" + path + "'");

  // The checkpoint set is only complete once every rank has published.
  if (sim.mpi) sim.mpi->barrier();
}

}  // namespace mlk::io
