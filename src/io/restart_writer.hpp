// RestartWriter — serializes the complete resumable state of a Simulation
// into the versioned binary format of restart.hpp.
//
// The payload captures everything the bitwise-identical-resume guarantee
// needs: the timestep counter, units, dt, global suffix and newton override,
// neighbor and thermo cadence settings, the Domain box, every owned atom's
// tag/type/x/v/q plus per-type masses, the pair style (with coefficients for
// styles that support restart), and each fix's private state — including RNG
// internals (RanPark seed_/save_/second_) so stochastic thermostats resume
// mid-stream instead of restarting their sequence.
#pragma once

#include <string>

#include "util/types.hpp"

namespace mlk {

class Simulation;

namespace io {

class RestartWriter {
 public:
  /// Write this rank's checkpoint of `sim` to `restart_file_name(base)`.
  /// Under simmpi every rank calls this and writes its own file; the call
  /// ends with a barrier so the set is complete when any rank returns.
  void write(Simulation& sim, const std::string& base);
};

}  // namespace io
}  // namespace mlk
