// Binary serialization primitives for the checkpoint/restart subsystem.
//
// BinaryWriter/BinaryReader move POD scalars, strings, and vectors through a
// flat byte buffer in the native byte order (the restart header carries an
// endianness tag so a reader on a foreign-endian machine fails loudly instead
// of silently mis-parsing). The reader bounds-checks every extraction and
// throws mlk::Error on truncation, so a torn file can never read past its
// payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace mlk::io {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip convention) over a byte span.
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0);

class BinaryWriter {
 public:
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(buf_.data() + at, &v, sizeof(T));
  }

  void put_string(const std::string& s) {
    put(std::uint64_t(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  template <class T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(std::uint64_t(v.size()));
    const std::size_t at = buf_.size();
    buf_.resize(at + v.size() * sizeof(T));
    if (!v.empty())
      std::memcpy(buf_.data() + at, v.data(), v.size() * sizeof(T));
  }

  /// Append another writer's buffer as a length-prefixed blob (used to nest
  /// per-fix / per-pair state so a reader can skip styles it cannot restore).
  void put_blob(const BinaryWriter& w) { put_vector(w.buf_); }

  const std::vector<char>& bytes() const { return buf_; }
  std::uint32_t crc() const { return crc32(buf_.data(), buf_.size()); }

 private:
  std::vector<char> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<char> bytes) : buf_(std::move(bytes)) {}

  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    const std::uint64_t n = get<std::uint64_t>();
    need(std::size_t(n));
    std::string s(buf_.data() + pos_, std::size_t(n));
    pos_ += std::size_t(n);
    return s;
  }

  template <class T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = get<std::uint64_t>();
    need(std::size_t(n) * sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n) std::memcpy(v.data(), buf_.data() + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

  /// Extract a nested length-prefixed blob as its own reader.
  BinaryReader get_blob() { return BinaryReader(get_vector<char>()); }

  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    require(n <= buf_.size() - pos_,
            "restart: truncated payload (wanted " + std::to_string(n) +
                " bytes, " + std::to_string(buf_.size() - pos_) + " left)");
  }

  std::vector<char> buf_;
  std::size_t pos_ = 0;
};

}  // namespace mlk::io
