#include "io/restart.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "io/binary_io.hpp"

namespace mlk::io {

namespace fs = std::filesystem;

std::string restart_file_name(const std::string& base, int rank, int nranks) {
  if (nranks <= 1) return base;
  return base + "." + std::to_string(rank);
}

std::string checkpoint_base(const std::string& base, bigint step) {
  return base + "." + std::to_string(step);
}

bool validate_restart_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;

  RestartHeader h;
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h))) return false;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) return false;
  if (h.version == 0 || h.version > kFormatVersion) return false;
  if (h.endian_tag != kEndianTag) return false;
  if (h.nranks <= 0 || h.rank < 0 || h.rank >= h.nranks) return false;
  const std::uint32_t expect =
      crc32(&h, sizeof(RestartHeader) - sizeof(std::uint32_t));
  if (h.header_crc != expect) return false;

  std::vector<char> payload(std::size_t(h.payload_size));
  if (!in.read(payload.data(), std::streamsize(payload.size()))) return false;
  return crc32(payload.data(), payload.size()) == h.payload_crc;
}

bool validate_checkpoint(const std::string& base, int nranks) {
  for (int r = 0; r < nranks; ++r)
    if (!validate_restart_file(restart_file_name(base, r, nranks)))
      return false;
  return true;
}

std::vector<bigint> list_checkpoint_steps(const std::string& base) {
  const fs::path p(base);
  const fs::path dir = p.has_parent_path() ? p.parent_path() : fs::path(".");
  const std::string stem = p.filename().string() + ".";

  std::vector<bigint> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem, 0) != 0) continue;
    // Accept `<stem><digits>` and `<stem><digits>.<rank>`.
    std::string rest = name.substr(stem.size());
    const std::size_t dot = rest.find('.');
    if (dot != std::string::npos) rest = rest.substr(0, dot);
    if (rest.empty() ||
        rest.find_first_not_of("0123456789") != std::string::npos)
      continue;
    const bigint step = std::stoll(rest);
    if (std::find(steps.begin(), steps.end(), step) == steps.end())
      steps.push_back(step);
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

bigint find_latest_valid_checkpoint(const std::string& base, int nranks) {
  for (const bigint step : list_checkpoint_steps(base))
    if (validate_checkpoint(checkpoint_base(base, step), nranks)) return step;
  return -1;
}

}  // namespace mlk::io
