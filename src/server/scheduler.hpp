// Scheduler — multiplexes N co-resident Simulations over the shared
// thread-pool Device and fuses their force kernels (docs/SERVER.md).
//
// Policy: lockstep round-robin. Each scheduling round advances every
// resident job by exactly one timestep in three waves —
//
//   wave A  step_begin on each job's pooled DeviceInstance (integration
//           half, rebuild decision + rebuild/halo comm), then fence;
//   wave B  force phase: jobs whose pair styles report matching batch
//           signatures enlist into one PairBatch and share a single fused
//           launch (groups of >= 2); the rest run their solo force path on
//           their instances, then fence;
//   wave C  step_end on each instance (second half, checkpoint/thermo),
//           then fence.
//
// Fairness is structural: a round gives every resident job one step, so a
// long job cannot starve short ones, and a completed job's slot is refilled
// from the queue at the next round boundary. A task exception surfaces at
// the owning job's fence and fails only that job; the cohort keeps going.
#pragma once

#include <string>
#include <vector>

#include "kokkos/instance.hpp"
#include "server/job_queue.hpp"
#include "server/jobset_io.hpp"

namespace mlk::server {

struct SchedulerConfig {
  /// Co-resident Simulations (the N of the paper's batching regime).
  int max_resident = 4;
  /// Cross-job fused force launches (PairBatch). Off = solo forces.
  bool batch = true;
  /// Drive per-job phases on pooled DeviceInstances. Off = every phase runs
  /// sequentially on the scheduler thread (still lockstep, still batched).
  bool fanout = true;
  /// Per-job stdout (thermo rows). Results carry the rows either way.
  bool thermo_print = false;
  /// Job-set checkpointing: every N job-local steps each resident job
  /// writes <checkpoint_base>.job<id>.<step> and the scheduler rewrites
  /// <checkpoint_base>.manifest.json (0 = off).
  bigint checkpoint_every = 0;
  std::string checkpoint_base;
  /// Stop after this many scheduling rounds even if jobs remain (0 =
  /// unlimited): graceful drain for server shutdown, and the test harness
  /// for restart-mid-batch scenarios. Unfinished state lands in the
  /// manifest when checkpointing is on.
  bigint max_rounds = 0;
};

class Scheduler {
 public:
  Scheduler(JobQueue& queue, SchedulerConfig cfg = {});

  /// Drive until the queue is closed and drained and every admitted job
  /// finished (or max_rounds hit). Call from one thread.
  void run();

  /// Terminal results in admission order (after run() returns).
  const std::vector<JobResult>& results() const { return results_; }

  /// Counters for benches/tests.
  struct Stats {
    bigint rounds = 0;         // scheduling rounds driven
    bigint steps = 0;          // job-steps advanced in total
    bigint fused_launches = 0; // PairBatch launches dispatched
    bigint fused_jobs = 0;     // job-steps that rode a fused launch
    bigint solo_forces = 0;    // job-steps that took the solo force path
  };
  const Stats& stats() const { return stats_; }

 private:
  void admit();
  void step_cohort();
  void finish_job(std::size_t idx, JobState state, const std::string& error);
  void update_manifest_entry(const Job& job);
  void write_manifest_snapshot();

  /// Retire one finished/failed job: release its instance, flush its
  /// per-job tools and telemetry (explicitly, at job end — not via atexit),
  /// and append its JobResult (telemetry summary included).
  /// `assign_finish_order` is false on the graceful max_rounds drain, where
  /// unfinished jobs carry no completion sequence.
  void retire_job(Job& job, bool assign_finish_order);

  /// Publish a scheduler event into the telemetry ring (no-op when the hub
  /// is not streaming). The scheduler thread is the single producer.
  void publish_sched_event(tools::telemetry::SchedKind kind, int job_id,
                           float wave_a_ms = 0.0f, float wave_b_ms = 0.0f,
                           float wave_c_ms = 0.0f);

  JobQueue& queue_;
  SchedulerConfig cfg_;
  std::vector<std::unique_ptr<Job>> resident_;
  std::vector<JobResult> results_;
  std::vector<ManifestEntry> manifest_;  // every job admitted so far
  kk::InstancePool pool_;
  Stats stats_;
  int finish_counter_ = 0;
  /// Ring block for scheduler events while the telemetry hub streams.
  std::shared_ptr<tools::telemetry::SchedTelemetry> telemetry_;
};

/// Submit specs, run a scheduler to completion, return results — the
/// one-call entry point for tests, benches and simple embedders.
std::vector<JobResult> run_jobs(std::vector<JobSpec> specs,
                                SchedulerConfig cfg = {});

}  // namespace mlk::server
