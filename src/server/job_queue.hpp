// JobQueue — thread-safe FIFO of submitted jobs (docs/SERVER.md).
//
// Clients submit JobSpecs (from any thread); the scheduler pops them as
// resident slots free up. close() marks the end of submissions so the
// scheduler can drain and return. Ids are assigned in submission order.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "server/job.hpp"

namespace mlk::server {

class JobQueue {
 public:
  /// Enqueue a job; returns its id (0, 1, ... in submission order).
  int submit(JobSpec spec);

  /// No more submissions; unblocks any waiting pop().
  void close();
  bool closed() const;

  /// Jobs currently queued (admitted jobs no longer count).
  std::size_t pending() const;

  /// Pop the oldest queued job. With wait=true, blocks until a job arrives
  /// or the queue is closed and empty (then returns nullptr); with
  /// wait=false, returns nullptr immediately when empty.
  std::unique_ptr<Job> pop(bool wait);

  /// Copy of the still-queued jobs' (id, spec), for job-set manifests.
  std::vector<std::pair<int, JobSpec>> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Job>> q_;
  int next_id_ = 0;
  bool closed_ = false;
};

}  // namespace mlk::server
