#include "server/job.hpp"

#include <array>
#include <map>

#include "io/fault.hpp"
#include "io/restart.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk::server {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Failed: return "failed";
  }
  return "?";
}

std::vector<double> capture_state(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<kk::Host>(X_MASK | V_MASK | TAG_MASK);
  std::map<tagint, std::array<double, 6>> by_tag;
  for (localint i = 0; i < a.nlocal; ++i) {
    std::array<double, 6>& s = by_tag[a.k_tag.h_view(std::size_t(i))];
    for (std::size_t d = 0; d < 3; ++d) {
      s[d] = a.k_x.h_view(std::size_t(i), d);
      s[3 + d] = a.k_v.h_view(std::size_t(i), d);
    }
  }
  std::vector<double> packed;
  packed.reserve(by_tag.size() * 6);
  for (const auto& [tag, s] : by_tag)
    packed.insert(packed.end(), s.begin(), s.end());
  return packed;
}

JobSpec JobSpec::from_script(std::string name, const std::string& text) {
  JobSpec spec;
  spec.name = std::move(name);
  std::string line;
  for (std::size_t pos = 0; pos <= text.size();) {
    const std::size_t nl = text.find('\n', pos);
    line = text.substr(pos, nl == std::string::npos ? nl : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;

    const auto words = tokenize(line);
    if (words.empty()) continue;
    if (words[0] == "run") {
      require(words.size() >= 2, "job script: 'run' needs a step count");
      spec.steps += to_bigint(words[1]);
    } else {
      spec.setup.push_back(line);
    }
  }
  return spec;
}

void Job::start(bigint checkpoint_every, const std::string& checkpoint_base,
                bool thermo_print) {
  sim = std::make_unique<Simulation>();
  input = std::make_unique<Input>(*sim);
  // Co-resident jobs interleave on stdout; per-job rows stay queryable via
  // JobResult::thermo, so printing defaults to off under the server.
  sim->thermo.print = thermo_print;
  // Telemetry attribution: every sample this job's Simulation publishes
  // carries the job id and name (Verlet::begin attaches the ring block).
  sim->telemetry_label = spec.name;
  sim->telemetry_job_id = id;

  bigint remaining = spec.steps;
  // Resume when a valid checkpoint set exists; a job interrupted before its
  // first checkpoint simply restarts from its setup script (deterministic
  // either way — the trajectory is bitwise the same by the resume guarantee).
  const bool resume =
      !spec.resume_from.empty() &&
      io::find_latest_valid_checkpoint(spec.resume_from, /*nranks=*/1) >= 0;
  if (resume) {
    // Style-only preamble (see JobSpec::restore), then recover from the
    // newest CRC-valid checkpoint set of this job's base. The checkpoint
    // carries ntimestep, so the job continues where the writer stopped.
    for (const std::string& cmd : spec.restore) input->line(cmd);
    io::recover_latest(*sim, spec.resume_from);
    remaining = spec.steps - sim->ntimestep;
    require(remaining >= 0, "job '" + spec.name +
                                "': checkpoint is past the requested steps");
  } else {
    for (const std::string& cmd : spec.setup) input->line(cmd);
  }

  if (checkpoint_every > 0 && !checkpoint_base.empty()) {
    // Per-job periodic checkpoints: <base>.job<id>.<step>, on the job-local
    // step counter. The Verlet checkpoint step forces a neighbor rebuild,
    // preserving the bitwise-identical-resume guarantee per job.
    sim->restart_every = checkpoint_every;
    sim->restart_base = checkpoint_base + ".job" + std::to_string(id);
  }

  sim->prepare_run();
  verlet = std::make_unique<Verlet>(*sim);
  verlet->begin(remaining);
  state = JobState::Running;
}

}  // namespace mlk::server
