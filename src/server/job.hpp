// Job — one unit of MD work submitted to the batch server (docs/SERVER.md).
//
// A job is an independent simulation: its own Simulation, Input interpreter
// and phase-driven Verlet, co-resident with other jobs in one process. The
// multi-instance audit in this PR removed the remaining cross-Simulation
// static state (style-registry construction, observability init, QEq
// scratch), so any number of Jobs coexist safely.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/input.hpp"
#include "engine/simulation.hpp"
#include "engine/thermo.hpp"
#include "tools/telemetry/telemetry.hpp"

namespace kk {
class DeviceInstance;
}

namespace mlk::server {

/// What a client submits: a name, the setup script (style declarations,
/// lattice spec, fixes — everything except `run`), and how many timesteps
/// to advance. Scripts are LAMMPS-style input lines (engine/input.hpp).
struct JobSpec {
  std::string name;
  std::vector<std::string> setup;  // executed once at admission
  bigint steps = 0;                // total timesteps to advance

  /// Job-set restore (jobset_io.hpp): when non-empty, the job resumes from
  /// the newest valid checkpoint of this base instead of running `setup`.
  /// `restore` then holds the style-only preamble executed before the
  /// recover — never atom-creating commands, since read_restart requires an
  /// empty atom store and the checkpoint already carries atoms, velocities,
  /// fix state and (for styles that serialize coefficients) the pair style.
  std::string resume_from;
  std::vector<std::string> restore;

  /// Split a full script into a JobSpec: `run N` lines are summed into
  /// `steps`; every other non-blank, non-comment line joins `setup`.
  static JobSpec from_script(std::string name, const std::string& text);
};

enum class JobState { Queued, Running, Completed, Failed };
const char* to_string(JobState s);

/// Terminal record the server hands back for one job.
struct JobResult {
  int id = -1;
  std::string name;
  JobState state = JobState::Queued;
  std::string error;        // exception text when state == Failed
  bigint steps_done = 0;
  int finish_order = -1;    // 0-based completion sequence (fairness tests)
  std::vector<ThermoRow> thermo;  // the job's recorded thermo rows
  std::vector<double> state_xv;   // final state (capture_state) for bitwise checks
  /// Telemetry accounting for this job, filled when the scheduler flushes
  /// the job's telemetry at retirement (zeros when the hub never streamed).
  tools::telemetry::TelemetrySummary telemetry;
};

/// Tag-sorted packed {x[3], v[3]} of every owned atom — the fingerprint the
/// isolation tests and the throughput bench compare bitwise against solo
/// runs. Tag order makes it independent of local index permutations.
std::vector<double> capture_state(Simulation& sim);

/// A live job owned by the scheduler while resident.
class Job {
 public:
  Job(int id_in, JobSpec spec_in) : id(id_in), spec(std::move(spec_in)) {}

  /// Build the Simulation and enter the run: execute the setup script (or
  /// the restore preamble + checkpoint recovery when resuming), apply the
  /// server's checkpoint/thermo policy, then prepare_run + Verlet::begin
  /// over the remaining steps. Throws on script or recovery errors.
  void start(bigint checkpoint_every, const std::string& checkpoint_base,
             bool thermo_print);

  /// Job-local steps advanced so far (== sim->ntimestep; jobs start at 0).
  bigint steps_done() const { return sim ? sim->ntimestep : 0; }

  int id;
  JobSpec spec;
  JobState state = JobState::Queued;
  std::string error;

  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Input> input;
  std::unique_ptr<Verlet> verlet;

  /// Pooled stream handle while resident (null when fan-out is off).
  kk::DeviceInstance* instance = nullptr;
  /// Current step's phase decisions (valid between step_begin and step_end).
  Verlet::Phase phase;
  /// This step's force work was delegated to the shared PairBatch.
  bool enlisted = false;
};

}  // namespace mlk::server
