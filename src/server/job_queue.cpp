#include "server/job_queue.hpp"

#include "util/error.hpp"

namespace mlk::server {

int JobQueue::submit(JobSpec spec) {
  int id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    require(!closed_, "JobQueue: submit after close");
    id = next_id_++;
    q_.push_back(std::make_unique<Job>(id, std::move(spec)));
  }
  cv_.notify_one();
  return id;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

std::unique_ptr<Job> JobQueue::pop(bool wait) {
  std::unique_lock<std::mutex> lk(mu_);
  if (wait) cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
  if (q_.empty()) return nullptr;
  std::unique_ptr<Job> job = std::move(q_.front());
  q_.pop_front();
  return job;
}

std::vector<std::pair<int, JobSpec>> JobQueue::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<int, JobSpec>> out;
  out.reserve(q_.size());
  for (const auto& job : q_) out.emplace_back(job->id, job->spec);
  return out;
}

}  // namespace mlk::server
