#include "server/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "kokkos/profiling.hpp"
#include "pair/pair_batch.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mlk::server {

namespace tel = tools::telemetry;

Scheduler::Scheduler(JobQueue& queue, SchedulerConfig cfg)
    : queue_(queue), cfg_(cfg), pool_("job") {}

void Scheduler::run() {
  // Scheduler events stream into one ring whose producer is this thread.
  if (tel::active() && !telemetry_)
    telemetry_ = tel::Hub::instance().attach_sched("server");

  for (;;) {
    admit();
    if (resident_.empty()) break;  // queue closed and drained
    if (cfg_.max_rounds > 0 && stats_.rounds >= cfg_.max_rounds) break;
    step_cohort();
    ++stats_.rounds;
  }

  // Graceful drain (max_rounds): unfinished residents hand back partial
  // results with state Running; the manifest records how far each got so
  // restore_jobset can resume them.
  for (auto& jp : resident_) retire_job(*jp, /*assign_finish_order=*/false);
  resident_.clear();

  if (telemetry_) {
    tel::Hub::instance().detach_sched(telemetry_);
    telemetry_.reset();
  }

  if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_base.empty())
    write_manifest_snapshot();

  std::sort(results_.begin(), results_.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
}

void Scheduler::admit() {
  while (int(resident_.size()) < cfg_.max_resident) {
    // Block only when idle — with live jobs the cohort keeps stepping and
    // new submissions are picked up at the next round boundary.
    const bool wait = resident_.empty();
    std::unique_ptr<Job> job = queue_.pop(wait);
    if (!job) break;

    try {
      job->start(cfg_.checkpoint_every, cfg_.checkpoint_base,
                 cfg_.thermo_print);
      if (cfg_.fanout) job->instance = &pool_.acquire();
    } catch (const std::exception& e) {
      JobResult r;
      r.id = job->id;
      r.name = job->spec.name;
      r.state = JobState::Failed;
      r.error = e.what();
      r.finish_order = finish_counter_++;
      results_.push_back(std::move(r));
      ManifestEntry m;
      m.id = job->id;
      m.name = job->spec.name;
      m.state = JobState::Failed;
      m.steps_total = job->spec.steps;
      m.setup = job->spec.setup;
      manifest_.push_back(std::move(m));
      continue;
    }

    ManifestEntry m;
    m.id = job->id;
    m.name = job->spec.name;
    m.state = JobState::Running;
    m.steps_total = job->spec.steps;
    m.steps_done = job->steps_done();
    m.setup = job->spec.setup;
    m.restart_base = job->sim->restart_base;
    manifest_.push_back(std::move(m));
    const int admitted_id = job->id;
    resident_.push_back(std::move(job));
    publish_sched_event(tel::SchedKind::Admit, admitted_id);
  }
}

void Scheduler::publish_sched_event(tel::SchedKind kind, int job_id,
                                    float wave_a_ms, float wave_b_ms,
                                    float wave_c_ms) {
  if (!telemetry_ || !tel::active()) return;
  tel::SchedSample ev;
  ev.kind = std::int32_t(kind);
  ev.job_id = job_id;
  ev.round = stats_.rounds;
  ev.queue_depth = std::int32_t(queue_.pending());
  ev.in_flight = std::int32_t(resident_.size());
  ev.wave_a_ms = wave_a_ms;
  ev.wave_b_ms = wave_b_ms;
  ev.wave_c_ms = wave_c_ms;
  ev.fused_launches = stats_.fused_launches;
  telemetry_->events.push(ev);
}

void Scheduler::retire_job(Job& job, bool assign_finish_order) {
  if (job.instance) {
    try {
      pool_.release(*job.instance);
    } catch (const std::exception& e) {
      job.state = JobState::Failed;
      job.error = e.what();
    }
    job.instance = nullptr;
  }

  JobResult r;
  r.id = job.id;
  r.name = job.spec.name;
  r.state = job.state;
  r.error = job.error;
  r.steps_done = job.steps_done();
  if (assign_finish_order) r.finish_order = finish_counter_++;
  if (job.sim) {
    r.thermo = job.sim->thermo.rows();
    if (job.state != JobState::Failed) r.state_xv = capture_state(*job.sim);
    // Flush per-job observability NOW, while the job retires — a server
    // that stays up for days must not defer per-job profile/trace output
    // and telemetry attribution to the global atexit flush. The telemetry
    // final drain fills the result's summary.
    job.sim->flush_tools();
    job.sim->detach_telemetry(&r.telemetry);
  }
  results_.push_back(std::move(r));
  update_manifest_entry(job);
  publish_sched_event(tel::SchedKind::JobFinish, job.id);
}

void Scheduler::step_cohort() {
  // A job resumed at (or past) its final step has nothing to run.
  for (auto& jp : resident_)
    if (jp->state == JobState::Running && jp->verlet->done())
      jp->state = JobState::Completed;

  auto alive = [&](const Job& job) { return job.state == JobState::Running; };

  // Run a phase for one job: enqueued on its pooled instance under fan-out,
  // inline (with the same error-to-job-failure mapping) otherwise.
  auto dispatch = [&](Job& job, const char* label,
                      std::function<void()> fn) {
    if (job.instance) {
      job.instance->enqueue(label, std::move(fn));
    } else {
      try {
        fn();
      } catch (const std::exception& e) {
        job.state = JobState::Failed;
        job.error = e.what();
      }
    }
  };

  // Per-instance fence; a task exception fails only the owning job.
  auto barrier = [&] {
    for (auto& jp : resident_) {
      Job& job = *jp;
      if (!alive(job) || !job.instance) continue;
      try {
        job.instance->fence();
      } catch (const std::exception& e) {
        job.state = JobState::Failed;
        job.error = e.what();
      }
    }
  };

  // --- wave A: first integration half + neighbor/halo maintenance ---
  Timer wave_timer;
  for (auto& jp : resident_) {
    Job& job = *jp;
    if (!alive(job)) continue;
    Job* j = &job;
    dispatch(job, "Job::step_begin",
             [j] { j->phase = j->verlet->step_begin(); });
  }
  barrier();
  const float wave_a_ms = float(wave_timer.seconds() * 1e3);
  wave_timer.start();

  // --- wave B: force phase, fused across jobs where signatures match ---
  std::map<std::string, std::vector<Job*>> groups;
  for (auto& jp : resident_) {
    Job& job = *jp;
    if (!alive(job)) continue;
    job.enlisted = false;
    if (!cfg_.batch || job.phase.rebuild || job.phase.overlap ||
        job.phase.eflag)
      continue;
    const std::string sig =
        job.sim->pair->batch_signature(*job.sim, /*eflag=*/false);
    if (!sig.empty()) groups[sig].push_back(&job);
  }
  for (auto& [sig, members] : groups) {
    if (members.size() < 2) continue;  // a lone job gains nothing from fusing
    PairBatch batch;
    try {
      for (Job* j : members) {
        j->sim->pair->batch_enlist(*j->sim, /*eflag=*/false, batch);
        j->enlisted = true;
      }
      batch.launch();
      ++stats_.fused_launches;
      stats_.fused_jobs += bigint(members.size());
      for (Job* j : members) j->sim->finish_external_forces();
    } catch (const std::exception& e) {
      // An enlist/launch failure is not attributable to one member; fail
      // the whole group rather than continue with half-computed forces.
      for (Job* j : members) {
        j->state = JobState::Failed;
        j->error = e.what();
      }
    }
  }
  for (auto& jp : resident_) {
    Job& job = *jp;
    if (!alive(job) || job.enlisted) continue;
    ++stats_.solo_forces;
    Job* j = &job;
    dispatch(job, "Job::step_force", [j] { j->verlet->step_force(j->phase); });
  }
  barrier();
  const float wave_b_ms = float(wave_timer.seconds() * 1e3);
  wave_timer.start();

  // --- wave C: second integration half + checkpoint/thermo output ---
  bool any_checkpoint = false;
  for (auto& jp : resident_) {
    Job& job = *jp;
    if (!alive(job)) continue;
    any_checkpoint = any_checkpoint || job.phase.checkpoint;
    Job* j = &job;
    dispatch(job, "Job::step_end", [j] { j->verlet->step_end(j->phase); });
  }
  barrier();
  const float wave_c_ms = float(wave_timer.seconds() * 1e3);

  // --- end of round: retire finished/failed jobs, persist the manifest ---
  std::vector<std::unique_ptr<Job>> still_resident;
  still_resident.reserve(resident_.size());
  for (auto& jp : resident_) {
    Job& job = *jp;
    if (job.state == JobState::Running) ++stats_.steps;
    if (job.state == JobState::Running && !job.verlet->done()) {
      still_resident.push_back(std::move(jp));
      continue;
    }
    if (job.state != JobState::Failed) {
      job.verlet->finish();
      job.state = JobState::Completed;
    }
    retire_job(job, /*assign_finish_order=*/true);
  }
  resident_ = std::move(still_resident);

  publish_sched_event(tel::SchedKind::Round, -1, wave_a_ms, wave_b_ms,
                      wave_c_ms);
  // Counter tracks on any live Chrome trace (no-ops when none registered).
  kk::profiling::count_event("server.queue_depth", double(queue_.pending()));
  kk::profiling::count_event("server.in_flight", double(resident_.size()));

  if (any_checkpoint && cfg_.checkpoint_every > 0 &&
      !cfg_.checkpoint_base.empty())
    write_manifest_snapshot();
}

void Scheduler::update_manifest_entry(const Job& job) {
  for (ManifestEntry& e : manifest_) {
    if (e.id != job.id) continue;
    e.state = job.state;
    e.steps_done = job.steps_done();
    return;
  }
}

void Scheduler::write_manifest_snapshot() {
  // Admitted jobs (manifest_, kept current) + still-queued jobs, so a
  // restore resubmits the full set. steps_done for running jobs is whatever
  // the last *checkpoint* captured on disk — recover_latest resumes from
  // there, not from the in-memory step counter.
  std::vector<ManifestEntry> entries = manifest_;
  for (ManifestEntry& e : entries)
    for (const auto& jp : resident_)
      if (jp->id == e.id) e.steps_done = jp->steps_done();
  for (const auto& [id, spec] : queue_.snapshot()) {
    ManifestEntry e;
    e.id = id;
    e.name = spec.name;
    e.state = JobState::Queued;
    e.steps_total = spec.steps;
    e.setup = spec.setup;
    entries.push_back(std::move(e));
  }
  write_manifest(cfg_.checkpoint_base, entries);
}

std::vector<JobResult> run_jobs(std::vector<JobSpec> specs,
                                SchedulerConfig cfg) {
  JobQueue queue;
  for (JobSpec& spec : specs) queue.submit(std::move(spec));
  queue.close();
  Scheduler scheduler(queue, cfg);
  scheduler.run();
  return scheduler.results();
}

}  // namespace mlk::server
