#include "server/jobset_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tools/json.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace mlk::server {

namespace {
namespace json = mlk::json;

JobState state_from_string(const std::string& s) {
  if (s == "queued") return JobState::Queued;
  if (s == "running") return JobState::Running;
  if (s == "completed") return JobState::Completed;
  if (s == "failed") return JobState::Failed;
  fatal("jobset manifest: unknown job state '" + s + "'");
}

}  // namespace

std::string manifest_path(const std::string& base) {
  return base + ".manifest.json";
}

void write_manifest(const std::string& base,
                    const std::vector<ManifestEntry>& entries) {
  std::ostringstream out;
  out << "{\"version\":1,\"jobs\":[";
  bool first_job = true;
  for (const ManifestEntry& e : entries) {
    if (!first_job) out << ",";
    first_job = false;
    out << "{\"id\":" << e.id << ",\"name\":" << json::quote(e.name)
        << ",\"state\":" << json::quote(to_string(e.state))
        << ",\"steps_total\":" << e.steps_total
        << ",\"steps_done\":" << e.steps_done
        << ",\"restart_base\":" << json::quote(e.restart_base)
        << ",\"setup\":[";
    bool first_line = true;
    for (const std::string& line : e.setup) {
      if (!first_line) out << ",";
      first_line = false;
      out << json::quote(line);
    }
    out << "]}";
  }
  out << "]}\n";

  const std::string path = manifest_path(base);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    require(f.good(), "jobset manifest: cannot write '" + tmp + "'");
    f << out.str();
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "jobset manifest: rename to '" + path + "' failed");
}

std::vector<ManifestEntry> read_manifest(const std::string& base) {
  const std::string path = manifest_path(base);
  std::ifstream f(path);
  require(f.good(), "jobset manifest: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();

  const json::Value doc = json::parse(buf.str());
  require(doc.is_object() && doc["jobs"].is_array(),
          "jobset manifest: '" + path + "' is not a manifest");
  std::vector<ManifestEntry> entries;
  for (const json::Value& j : doc["jobs"].arr) {
    ManifestEntry e;
    e.id = int(j["id"].number);
    e.name = j["name"].str;
    e.state = state_from_string(j["state"].str);
    e.steps_total = bigint(j["steps_total"].number);
    e.steps_done = bigint(j["steps_done"].number);
    e.restart_base = j["restart_base"].str;
    for (const json::Value& line : j["setup"].arr) e.setup.push_back(line.str);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<std::string> restore_lines(const std::vector<std::string>& setup) {
  // Commands that create or mutate per-atom state, or control the run, must
  // not precede read_restart (the reader demands an empty atom store and the
  // checkpoint supplies that state). Everything else — style declarations,
  // neighbor/comm settings — replays so non-serializing styles (EAM, SNAP
  // table coefficients) are re-specified before recovery.
  static const char* kDrop[] = {"lattice",       "create_atoms", "mass",
                                "velocity",      "set",          "run",
                                "read_restart",  "write_restart", "recover",
                                "restart",       "fault_inject"};
  std::vector<std::string> out;
  for (const std::string& line : setup) {
    const auto words = tokenize(line);
    if (words.empty()) continue;
    bool drop = false;
    for (const char* d : kDrop) drop = drop || words[0] == d;
    if (!drop) out.push_back(line);
  }
  return out;
}

std::vector<JobSpec> restore_jobset(const std::string& base) {
  std::vector<JobSpec> specs;
  for (const ManifestEntry& e : read_manifest(base)) {
    if (e.state == JobState::Completed || e.state == JobState::Failed)
      continue;
    JobSpec spec;
    spec.name = e.name;
    spec.setup = e.setup;
    spec.steps = e.steps_total;
    if (e.state == JobState::Running && !e.restart_base.empty()) {
      spec.resume_from = e.restart_base;
      spec.restore = restore_lines(e.setup);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace mlk::server
