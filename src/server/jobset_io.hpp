// Job-set checkpoint/restart (docs/SERVER.md).
//
// Per-job state reuses the engine's periodic restart machinery (src/io):
// each resident job writes CRC-validated checkpoints to
// `<base>.job<id>.<step>` on its job-local step counter. What src/io cannot
// know is the *set*: which jobs exist, how far each got, and how to rebuild
// the ones that never started. That lives in a JSON manifest at
// `<base>.manifest.json`, rewritten atomically (tmp + rename) by the
// scheduler at every checkpoint epoch and at shutdown.
//
// Restore: restore_jobset() reads the manifest and returns fresh JobSpecs —
// running jobs resume from their newest valid checkpoint via a style-only
// preamble (restore_lines), queued jobs restart from their setup script,
// completed/failed jobs are skipped (their results are not replayed).
// Resubmitting the returned specs in order reproduces the original ids.
#pragma once

#include <string>
#include <vector>

#include "server/job.hpp"

namespace mlk::server {

/// One manifest row; covers every job the server has seen.
struct ManifestEntry {
  int id = -1;
  std::string name;
  JobState state = JobState::Queued;
  bigint steps_total = 0;
  bigint steps_done = 0;
  std::vector<std::string> setup;  // original setup script
  std::string restart_base;        // per-job checkpoint base ("" = none yet)
};

std::string manifest_path(const std::string& base);

/// Write the manifest atomically (tmp file + rename): a crash mid-write
/// leaves the previous manifest intact, matching src/io's torn-write story.
void write_manifest(const std::string& base,
                    const std::vector<ManifestEntry>& entries);

/// Parse `<base>.manifest.json`; throws on missing or malformed manifests.
std::vector<ManifestEntry> read_manifest(const std::string& base);

/// Derive the style-only resume preamble from a setup script: atom-creating
/// and run-control commands are dropped, because read_restart requires an
/// empty atom store and the checkpoint already carries atoms, velocities,
/// fix state and serialized pair coefficients. Style declarations are kept —
/// script-declared styles win and receive their checkpointed state by id.
std::vector<std::string> restore_lines(const std::vector<std::string>& setup);

/// Manifest -> resubmittable specs (see file comment).
std::vector<JobSpec> restore_jobset(const std::string& base);

}  // namespace mlk::server
