// Reproduces Fig. 7 / Appendix C: Alps (GH200, 4 GPUs/node) vs Eos
// (DGX H100 intentionally run with 4 GPUs + 4 NICs per node). The curves
// should lie nearly on top of each other, with GH200 slightly ahead for
// bandwidth-bound LJ at large per-GPU sizes and H100 slightly ahead in the
// deep strong-scaling regime (GH200's higher launch latency).
#include <cstdio>
#include <functional>

#include "bench_common.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

void run_case(const char* name, bigint global,
              const std::function<std::vector<KernelWorkload>(bigint)>& w,
              double density, double ghost_cut,
              double extra_halo_rounds = 0.0, double allreduces = 1.0) {
  std::printf("\n--- %s, %lld atoms ---\n", name, (long long)global);
  Table t({"nodes", "atoms/GPU", "Alps GH200 [steps/s]", "Eos H100 [steps/s]",
           "Alps/Eos"});
  MachineModel alps(machine("Alps"));
  MachineModel eos(machine("Eos"));
  for (int nodes : {4, 16, 64, 256}) {
    const auto a = alps.step_time(global, nodes, w, density, ghost_cut, 48.0,
                                  extra_halo_rounds, allreduces);
    const auto e = eos.step_time(global, nodes, w, density, ghost_cut, 48.0,
                                 extra_halo_rounds, allreduces);
    t.add_row({std::to_string(nodes), Table::num(a.atoms_per_gpu, 0),
               Table::num(a.steps_per_second, 1),
               Table::num(e.steps_per_second, 1),
               Table::num(a.steps_per_second / e.steps_per_second, 3)});
  }
  t.print();
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_fig7_alps_eos");
  const auto& lj = bench::lj_stats();
  const auto& rx = bench::reaxff_stats();
  const auto& sn = bench::snap_stats();

  banner("Alps (GH200) vs Eos (H100, 4 GPUs/node)", "Figure 7 / Appendix C");

  run_case("Lennard-Jones", 134217728,
           [&](bigint nl) { return lj_workloads(nl, lj); },
           bench::lj_density(), 2.8);
  run_case("ReaxFF", 3720000,
           [&](bigint nl) { return reaxff_workloads(nl, rx); },
           bench::hns_density(), 10.0, rx.qeq_iterations,
           2.0 * rx.qeq_iterations + 1.0);
  run_case("SNAP", 2048000, [&](bigint nl) { return snap_workloads(nl, sn); },
           bench::bcc_density(), 6.7);

  std::printf(
      "\nshape checks (Appendix C):\n"
      "  * LJ: Alps > Eos at large atoms/GPU (20%% higher HBM/L2 bandwidth), "
      "Eos >= Alps deep in strong scaling (lower launch latency)\n"
      "  * ReaxFF: broadly similar; Eos ahead when latency-dominated\n"
      "  * SNAP: curves nearly identical (FP64/L1-limited kernels are the "
      "same on both parts; comm negligible)\n");
  return 0;
}
