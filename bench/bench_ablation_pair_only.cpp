// Appendix C.1 ablation: "reverse offload" — running everything except the
// pair kernel back on the host ("-pk kokkos pair/only on") to amortize
// kernel-launch latencies in the deep strong-scaling regime.
//
// Modelled on GH200 (whose higher launch latency motivated the paper's
// remark): device-resident vs pair-only, sweeping atoms/GPU. The real
// mechanism exists in this repo too — any fix can run on the host against a
// device pair style (suffix system, §3.3) — and is measured below.
#include <cstdio>

#include "bench_common.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

double device_resident_step(const GpuModel& g, bigint n,
                            const PotentialStats& s) {
  return g.total_seconds(lj_workloads(n, s));
}

double pair_only_step(const GpuModel& g, const GpuModel& cpu, bigint n,
                      const PotentialStats& s, double link_bw) {
  // Pair (and neighbor) kernels stay on the device; integrate/glue run on
  // the host with no GPU launches; positions/forces cross the link each step.
  double t = 0.0;
  for (const auto& w : lj_workloads(n, s)) {
    if (w.name.find("LJCut") != std::string::npos ||
        w.name.find("Neighbor") != std::string::npos) {
      t += g.time(w).seconds;
    } else {
      KernelWorkload host = w;
      host.launches = 0;  // host code: no device launch latency
      t += cpu.time(host).seconds;
    }
  }
  t += 2.0 * double(n) * 24.0 / link_bw;  // x down + f up per step
  return t;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_ablation_pair_only");
  const auto& s = bench::lj_stats();
  banner("Reverse offload (pair/only) vs fully device-resident, LJ on GH200",
         "Appendix C.1 ('-pk kokkos pair/only on')");

  const GpuModel gh200(arch("GH200"));
  const GpuModel cpu(arch("CPU"));
  const double c2c = 450e9;  // Grace-Hopper NVLink-C2C bandwidth

  Table t({"atoms/GPU", "device-resident [us/step]", "pair/only [us/step]",
           "pair-only speedup"});
  for (bigint n : {bigint(500), bigint(2000), bigint(8000), bigint(32000),
                   bigint(128000), bigint(512000), bigint(2000000)}) {
    const double dev = device_resident_step(gh200, n, s);
    const double po = pair_only_step(gh200, cpu, n, s, c2c);
    t.add_row({std::to_string(n), Table::num(1e6 * dev, 1),
               Table::num(1e6 * po, 1), Table::num(dev / po, 2)});
  }
  t.print();
  std::printf(
      "shape check: pair/only wins at small atoms/GPU (launch latencies "
      "amortized) and loses at large sizes (host integration + transfers "
      "dominate) — the crossover the paper alludes to.\n");

  banner("Real mixed host/device run on this machine",
         "Section 3.3 execution control (measured)");
  {
    init_all();
    auto run_combo = [&](const std::string& fix_style) {
      Simulation sim;
      sim.thermo.print = false;
      Input in(sim);
      in.line("units lj");
      in.line("lattice fcc 0.8442");
      in.line("create_atoms 6 6 6 jitter 0.02 771");
      in.line("mass 1 1.0");
      in.line("velocity all create 1.44 87287");
      in.line("pair_style lj/cut/kk 2.5");
      in.line("pair_coeff * * 1.0 1.0");
      in.line("fix 1 all " + fix_style);
      in.line("thermo 100");
      sim.setup();
      const double t0 = bench::time_seconds([&] { sim.run(20); });
      return t0 / 20.0;
    };
    Table m({"configuration", "us/step (measured)"});
    m.add_row({"pair /kk/device + nve/kk (device resident)",
               Table::num(1e6 * run_combo("nve/kk"), 1)});
    m.add_row({"pair /kk/device + nve (host integrate = pair/only)",
               Table::num(1e6 * run_combo("nve"), 1)});
    m.print();
    std::printf("note: on this CPU both 'spaces' share silicon, so the "
                "difference is only the DualView sync traffic the mixed run "
                "induces (tested in DataMovement.*)\n");
  }
  return 0;
}
