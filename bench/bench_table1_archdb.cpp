// Reproduces Table 1: GPU architecture properties, plus derived balance
// ratios the analysis sections lean on (FLOP/byte, cache per SM).
#include <cstdio>

#include "bench_common.hpp"
#include "perfmodel/archdb.hpp"

int main() {
  bench::Metrics metrics("bench_table1_archdb");
  using namespace mlk::perf;
  banner("GPU architecture properties", "Table 1");

  Table t({"GPU", "BW [TB/s]", "Capacity [GB]", "FP64 [TF]", "L1 [kB]",
           "Shared [kB]", "L2 [MB]", "SMs"});
  for (const auto& a : arch_table()) {
    if (a.name == "CPU") continue;
    t.add_row({a.name, Table::num(a.hbm_bw / 1e12, 1),
               Table::num(a.hbm_capacity / 1e9, 0), Table::num(a.fp64 / 1e12, 1),
               a.unified_l1 ? "unified" : Table::num(a.l1_kb, 0),
               a.unified_l1 ? Table::num(a.l1_total_kb(), 0)
                            : Table::num(a.shared_kb, 0),
               Table::num(a.l2_bytes / 1e6, 0), Table::num(a.num_sm, 0)});
  }
  t.print();

  std::printf("\nDerived machine balance (not in the paper's table, used by the model):\n");
  Table b({"GPU", "FLOP/byte", "L1+sh/SM [kB]", "atomics [Gops/s]",
           "launch [us]"});
  for (const auto& a : arch_table()) {
    if (a.name == "CPU") continue;
    b.add_row({a.name, Table::num(a.fp64 / a.hbm_bw, 1),
               Table::num(a.l1_total_kb(), 0),
               Table::num(a.atomic_rate / 1e9, 0),
               Table::num(a.launch_latency * 1e6, 0)});
  }
  b.print();
  return 0;
}
