// E12 ablation: ScatterView deconflicting strategies (atomics vs data
// duplication vs sequential) for the LJ half-list force kernel — the §3.2
// discussion of why ScatterView swaps strategies per architecture.
// Real kernels, google-benchmark harness.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pair/pair_lj_cut_kokkos.hpp"

using namespace mlk;

namespace {

std::unique_ptr<Simulation> make_system(kk::ScatterMode mode) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  sim->thermo.print = false;
  Input in(*sim);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 10 10 10 jitter 0.02 771");
  in.line("mass 1 1.0");
  in.line("pair_style lj/cut/kk 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  auto* pair = dynamic_cast<PairLJCutKokkos<kk::Device>*>(sim->pair.get());
  pair->set_neighbor_mode(NeighStyle::Half, true);
  pair->set_scatter_mode(mode);
  sim->setup();
  return sim;
}

void BM_scatter(benchmark::State& state, kk::ScatterMode mode) {
  auto sim = make_system(mode);
  for (auto _ : state) {
    sim->compute_forces(false);
    benchmark::DoNotOptimize(sim->atom.k_f.h_view.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * sim->atom.nlocal);
  state.counters["atoms"] = double(sim->atom.nlocal);
}

}  // namespace

BENCHMARK_CAPTURE(BM_scatter, half_list_atomics, kk::ScatterMode::Atomic);
BENCHMARK_CAPTURE(BM_scatter, half_list_duplicated, kk::ScatterMode::Duplicated);
BENCHMARK_CAPTURE(BM_scatter, half_list_sequential, kk::ScatterMode::Sequential);

int main(int argc, char** argv) {
  bench::Metrics metrics("bench_ablation_scatter");
  mlk::perf::banner(
      "ScatterView deconflicting ablation: atomics vs duplication vs "
      "sequential (LJ half list, 4000 atoms, real kernels)",
      "Section 3.2 (ScatterView strategy swap)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nshape check: with few threads duplication ~ sequential and beats "
      "contended atomics; on GPUs (O(100k) threads) duplication is "
      "infeasible and atomics win — why ScatterView swaps strategies per "
      "backend\n");
  return 0;
}
