// Shared helpers for the per-figure bench binaries.
//
// Every bench combines two ingredients (DESIGN.md "measurement vs modelling
// split"): quantities *measured* from the real kernels running on this CPU
// (neighbor counts, bond/quad statistics, CG iterations, index-space sums,
// and wall-clock timings of real kernel code), and the architecture model
// that maps workload descriptors to per-architecture predictions. Columns
// are labelled "measured" or "modelled" accordingly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "minilammps.hpp"
#include "perfmodel/counters.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/report.hpp"
#include "tools/kernel_timer.hpp"
#include "tools/memory_tracker.hpp"
#include "tools/observability.hpp"
#include "util/timer.hpp"

namespace bench {

/// Structured per-kernel metrics for a bench run. Declare one at the top of
/// a bench main(); when MLK_BENCH_METRICS is set it registers a KernelTimer
/// + MemorySpaceTracker for the program's lifetime and writes
/// `<name>.metrics.json` ({"kernels": ..., "memory": ...}) on destruction —
/// per-kernel count/min/max/mean seconds and items/s for every *measured*
/// kernel the bench ran, alongside the modelled columns it prints.
/// MLK_BENCH_METRICS=1 writes to the current directory; any other value is
/// used as the output directory.
class Metrics {
 public:
  explicit Metrics(std::string name) : name_(std::move(name)) {
    const char* v = std::getenv("MLK_BENCH_METRICS");
    if (!v || !*v || std::string(v) == "0") return;
    dir_ = std::string(v) == "1" ? "." : v;
    timer_ = std::make_shared<mlk::tools::KernelTimer>();
    memory_ = std::make_shared<mlk::tools::MemorySpaceTracker>();
    memory_->set_print_leaks(false);
    kk::profiling::register_tool(timer_);
    kk::profiling::register_tool(memory_);
  }

  ~Metrics() {
    if (!timer_) return;
    kk::profiling::deregister_tool(timer_);
    kk::profiling::deregister_tool(memory_);
    const std::string path = dir_ + "/" + name_ + ".metrics.json";
    if (extras_.empty()) {
      mlk::tools::write_profile_json(path, *timer_, *memory_);
    } else {
      std::ofstream f(path);
      f << "{\"kernels\":" << timer_->json_fragment()
        << ",\"memory\":" << memory_->json_fragment();
      for (const auto& [key, fragment] : extras_)
        f << ",\"" << key << "\":" << fragment;
      f << "}\n";
    }
    std::printf("# per-kernel metrics written to %s\n", path.c_str());
  }

  /// Attach an extra top-level section (pre-rendered JSON) to the metrics
  /// file — bench-specific results like gate measurements. No-op when
  /// MLK_BENCH_METRICS is off.
  void set_extra(const std::string& key, const std::string& json_fragment) {
    if (timer_) extras_[key] = json_fragment;
  }

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

 private:
  std::string name_;
  std::string dir_;
  std::map<std::string, std::string> extras_;
  std::shared_ptr<mlk::tools::KernelTimer> timer_;
  std::shared_ptr<mlk::tools::MemorySpaceTracker> memory_;
};

using mlk::perf::PotentialStats;

/// Measured stats, cached per process (measurement runs the real engine).
inline const PotentialStats& lj_stats() {
  static const PotentialStats s = mlk::perf::measure_lj_stats();
  return s;
}
inline const PotentialStats& reaxff_stats() {
  static const PotentialStats s = mlk::perf::measure_reaxff_stats();
  return s;
}
inline const PotentialStats& snap_stats() {
  static const PotentialStats s = mlk::perf::measure_snap_stats(8);
  return s;
}

/// Atom-steps/s for a modelled per-step kernel sequence.
inline double atom_steps_per_second(
    const mlk::perf::GpuModel& gpu, mlk::bigint natoms,
    const std::vector<mlk::perf::KernelWorkload>& ws) {
  return double(natoms) / gpu.total_seconds(ws);
}

/// Wall-clock a callable (median of `reps`, after one warmup).
inline double time_seconds(const std::function<void()>& fn, int reps = 3) {
  fn();  // warmup
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    mlk::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Density (atoms per unit volume) of the standard benchmark systems.
inline double lj_density() { return 0.8442; }
inline double hns_density() { return 64.0 / (5.2 * 5.2 * 5.2); }  // atoms/A^3
inline double bcc_density() { return 2.0 / (3.16 * 3.16 * 3.16); }

}  // namespace bench
