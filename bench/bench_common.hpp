// Shared helpers for the per-figure bench binaries.
//
// Every bench combines two ingredients (DESIGN.md "measurement vs modelling
// split"): quantities *measured* from the real kernels running on this CPU
// (neighbor counts, bond/quad statistics, CG iterations, index-space sums,
// and wall-clock timings of real kernel code), and the architecture model
// that maps workload descriptors to per-architecture predictions. Columns
// are labelled "measured" or "modelled" accordingly.
#pragma once

#include <functional>
#include <string>

#include "minilammps.hpp"
#include "perfmodel/counters.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/report.hpp"
#include "util/timer.hpp"

namespace bench {

using mlk::perf::PotentialStats;

/// Measured stats, cached per process (measurement runs the real engine).
inline const PotentialStats& lj_stats() {
  static const PotentialStats s = mlk::perf::measure_lj_stats();
  return s;
}
inline const PotentialStats& reaxff_stats() {
  static const PotentialStats s = mlk::perf::measure_reaxff_stats();
  return s;
}
inline const PotentialStats& snap_stats() {
  static const PotentialStats s = mlk::perf::measure_snap_stats(8);
  return s;
}

/// Atom-steps/s for a modelled per-step kernel sequence.
inline double atom_steps_per_second(
    const mlk::perf::GpuModel& gpu, mlk::bigint natoms,
    const std::vector<mlk::perf::KernelWorkload>& ws) {
  return double(natoms) / gpu.total_seconds(ws);
}

/// Wall-clock a callable (median of `reps`, after one warmup).
inline double time_seconds(const std::function<void()>& fn, int reps = 3) {
  fn();  // warmup
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    mlk::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Density (atoms per unit volume) of the standard benchmark systems.
inline double lj_density() { return 0.8442; }
inline double hns_density() { return 64.0 / (5.2 * 5.2 * 5.2); }  // atoms/A^3
inline double bcc_density() { return 2.0 / (3.16 * 3.16 * 3.16); }

}  // namespace bench
