// Reproduces Fig. 4: saturation of normalized performance (atom-steps/s) on
// one NVIDIA H100 for the three case studies as a function of atom count.
// SNAP saturates at much lower atom counts (parallelism beyond particle
// count); ReaxFF runs out of HBM before reaching full saturation.
#include <cstdio>

#include "bench_common.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

/// Approximate per-atom device memory footprint (bytes) for the HBM limit.
double reaxff_bytes_per_atom(const PotentialStats& s) {
  // CSR (val+col+offsets) + neighbor table + bonded tables + vectors.
  return s.qeq_nnz_per_atom * 16.0 + s.neighbors_per_atom * 8.0 + 400.0;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_fig4_saturation");
  const auto& lj = bench::lj_stats();
  const auto& rx = bench::reaxff_stats();
  const auto& sn = bench::snap_stats();
  const GpuModel h100(arch("H100"));

  banner("Single-GPU saturation: atom-steps/s vs atom count (H100)",
         "Figure 4");

  // Peak values for normalization (largest size that fits).
  auto lj_rate = [&](bigint n) {
    return bench::atom_steps_per_second(h100, n, lj_workloads(n, lj));
  };
  auto rx_rate = [&](bigint n) {
    return bench::atom_steps_per_second(h100, n, reaxff_workloads(n, rx));
  };
  auto sn_rate = [&](bigint n) {
    return bench::atom_steps_per_second(h100, n, snap_workloads(n, sn));
  };

  const double hbm = arch("H100").hbm_capacity;
  const bigint rx_max = bigint(0.8 * hbm / reaxff_bytes_per_atom(rx));
  const double lj_peak = lj_rate(64000000);
  const double rx_peak = rx_rate(rx_max);
  const double sn_peak = sn_rate(4000000);

  Table t({"atoms", "LJ [Gasteps/s]", "LJ norm", "ReaxFF [Masteps/s]",
           "ReaxFF norm", "SNAP [Masteps/s]", "SNAP norm"});
  for (bigint n :
       {bigint(1000), bigint(4000), bigint(16000), bigint(64000),
        bigint(256000), bigint(1000000), bigint(4000000), bigint(16000000),
        bigint(64000000)}) {
    std::string rx_cell = "OOM";
    std::string rx_norm = "-";
    if (n <= rx_max) {
      rx_cell = Table::num(rx_rate(n) / 1e6, 2);
      rx_norm = Table::num(rx_rate(n) / rx_peak, 3);
    }
    t.add_row({std::to_string(n), Table::num(lj_rate(n) / 1e9, 3),
               Table::num(lj_rate(n) / lj_peak, 3), rx_cell, rx_norm,
               Table::num(sn_rate(n) / 1e6, 2),
               Table::num(sn_rate(n) / sn_peak, 3)});
  }
  t.print();

  // Report the half-saturation points (atoms where normalized rate = 0.5).
  auto half_point = [&](const std::function<double(bigint)>& rate, double peak,
                        bigint cap) {
    bigint lo = 100, hi = cap;
    while (hi > lo * 105 / 100) {
      const bigint mid = (lo + hi) / 2;
      (rate(mid) / peak < 0.5 ? lo : hi) = mid;
    }
    return lo;
  };
  std::printf("\nhalf-saturation atom counts (modelled):\n");
  std::printf("  LJ     : %lld\n",
              (long long)half_point(lj_rate, lj_peak, 64000000));
  std::printf("  ReaxFF : %lld (HBM limit at %lld atoms, before full "
              "saturation)\n",
              (long long)half_point(rx_rate, rx_peak, rx_max),
              (long long)rx_max);
  std::printf("  SNAP   : %lld\n",
              (long long)half_point(sn_rate, sn_peak, 4000000));
  std::printf("shape check: SNAP saturates at far lower atom counts than "
              "LJ/ReaxFF (extra parallelism dimensions, section 5.1)\n");
  return 0;
}
