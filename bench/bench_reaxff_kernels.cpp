// Reproduces the §4.2 kernel-level claims with *real measurements* of the
// actual ReaxFF-lite kernels on this CPU plus modelled GPU columns:
//   E10 — quad census: <5%-ish survival; pre-processing vs divergent direct
//         kernels (identical physics, different cost structure);
//   E11 — over-allocated CSR build (flat vs hierarchical) and the fused
//         dual-RHS CG solve (matrix-load reuse).
#include <cstdio>

#include "bench_common.hpp"
#include "reaxff/pair_reaxff_lite.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

std::unique_ptr<Simulation> make_system(int cells) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  sim->thermo.print = false;
  Input in(*sim);
  in.line("units real");
  in.line("lattice hns_like 5.2");
  const std::string c = std::to_string(cells);
  in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.03 4411");
  in.line("mass 1 12.0");
  in.line("mass 2 16.0");
  in.line("pair_style reaxff-lite");
  in.line("pair_coeff * * hns");
  sim->setup();
  return sim;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_reaxff_kernels");
  banner("ReaxFF kernel studies: divergence pre-processing, hierarchical CSR "
         "build, fused Krylov solves",
         "Sections 4.2.1-4.2.3 (HNS-like molecular crystal)");

  auto sim = make_system(3);
  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim->pair.get());

  // --- E10: quad census -----------------------------------------------------
  {
    const auto& q = pair->quads();
    std::printf("\nQuad census (measured from the real pre-processing "
                "kernels):\n");
    std::printf("  atoms               : %d\n", sim->atom.nlocal);
    std::printf("  candidate quads     : %lld\n", (long long)q.candidates);
    std::printf("  surviving quads     : %lld\n", (long long)q.count);
    std::printf("  survival fraction   : %.2f%%  (paper: <5%% for HNS)\n",
                100.0 * q.survival_fraction());
  }

  // --- E10: direct vs pre-processed (measured + modelled) -------------------
  {
    pair->use_preprocessing = true;
    const double t_pre =
        bench::time_seconds([&] { sim->compute_forces(false); }, 3);
    pair->use_preprocessing = false;
    const double t_dir =
        bench::time_seconds([&] { sim->compute_forces(false); }, 3);
    pair->use_preprocessing = true;

    const auto& s = bench::reaxff_stats();
    const GpuModel h100(arch("H100"));
    ReaxConfig pre, direct;
    direct.preprocessed = false;
    const bigint n = 465000;
    auto torsion_time = [&](const ReaxConfig& cfg) {
      double t = 0;
      for (const auto& w : reaxff_workloads(n, s, cfg))
        if (w.name.find("Torsion") != std::string::npos)
          t += h100.time(w).seconds;
      return t;
    };
    Table t({"variant", "this CPU, full step [ms] (measured)",
             "H100 torsion kernels [us] (modelled)"});
    t.add_row({"divergent direct", Table::num(1e3 * t_dir, 2),
               Table::num(1e6 * torsion_time(direct), 1)});
    t.add_row({"pre-processed", Table::num(1e3 * t_pre, 2),
               Table::num(1e6 * torsion_time(pre), 1)});
    t.print();
    std::printf("shape check: on the GPU model the divergent kernel pays the "
                "warp-divergence multiplier; on one CPU core both are "
                "similar (no warps) — exactly the paper's motivation\n");
  }

  // --- E11: flat vs hierarchical matrix build -------------------------------
  {
    auto& qeq = pair->qeq();
    const double t_flat = bench::time_seconds([&] {
      qeq.build_mode = reaxff::MatrixBuildMode::Flat;
      qeq.build_matrix(sim->atom, sim->neighbor.list);
    });
    const double t_hier = bench::time_seconds([&] {
      qeq.build_mode = reaxff::MatrixBuildMode::Hierarchical;
      qeq.build_matrix(sim->atom, sim->neighbor.list);
    });
    qeq.build_mode = reaxff::MatrixBuildMode::Flat;

    const auto& s = bench::reaxff_stats();
    const GpuModel h100(arch("H100"));
    const bigint n = 465000;
    auto build_time = [&](bool hier) {
      ReaxConfig cfg;
      cfg.hierarchical_qeq = hier;
      for (const auto& w : reaxff_workloads(n, s, cfg))
        if (w.name.find("QEq build") != std::string::npos)
          return h100.time(w).seconds;
      return 0.0;
    };
    std::printf("\nOver-allocated CSR build (nnz = %lld, 64-bit row offsets):\n",
                (long long)qeq.matrix().total_nonzeros());
    Table t({"variant", "this CPU [ms] (measured)",
             "H100 [us] (modelled)"});
    t.add_row({"flat (row per work item)", Table::num(1e3 * t_flat, 2),
               Table::num(1e6 * build_time(false), 1)});
    t.add_row({"hierarchical (team per row)", Table::num(1e3 * t_hier, 2),
               Table::num(1e6 * build_time(true), 1)});
    t.print();
    std::printf("shape check: hierarchical wins on the GPU model (convergent "
                "row access), not on the serial CPU — the paper's "
                "host/device bifurcation (sections 4.2.2, 3.3)\n");
  }

  // --- E11: fused dual-RHS CG ------------------------------------------------
  {
    auto& qeq = pair->qeq();
    const double t_fused = bench::time_seconds([&] {
      qeq.fused_solve = true;
      qeq.solve(sim->atom, sim->comm, sim->mpi);
    });
    const double t_sep = bench::time_seconds([&] {
      qeq.fused_solve = false;
      qeq.solve(sim->atom, sim->comm, sim->mpi);
    });
    qeq.fused_solve = true;

    const auto& s = bench::reaxff_stats();
    const GpuModel h100(arch("H100"));
    const bigint n = 465000;
    auto cg_time = [&](bool fused) {
      ReaxConfig cfg;
      cfg.fused_solve = fused;
      for (const auto& w : reaxff_workloads(n, s, cfg))
        if (w.name.find("QEq CG") != std::string::npos)
          return h100.time(w).seconds;
      return 0.0;
    };
    std::printf("\nCharge equilibration: two Krylov solves, %d CG iterations "
                "(measured):\n", qeq.last_iterations());
    Table t({"variant", "this CPU [ms] (measured)", "H100 [ms] (modelled)"});
    t.add_row({"two separate solves", Table::num(1e3 * t_sep, 2),
               Table::num(1e3 * cg_time(false), 2)});
    t.add_row({"fused dual-RHS solve", Table::num(1e3 * t_fused, 2),
               Table::num(1e3 * cg_time(true), 2)});
    t.print();
    std::printf("shape check: fusing reuses every matrix load across both "
                "right-hand sides — approaching 2x for the bandwidth-bound "
                "SpMV (section 4.2.3)\n");
  }
  return 0;
}
