// Reproduces Fig. 5: single GPU/GCD/stack performance for the three case
// studies across hardware generations and vendors, normalized by the 36-core
// Skylake CPU node running the base non-Kokkos code (LJ: 16M atoms,
// ReaxFF: 465k, SNAP: 64k).
#include <cstdio>

#include "bench_common.hpp"

using namespace mlk;
using namespace mlk::perf;

int main() {
  bench::Metrics metrics("bench_fig5_arch_comparison");
  const auto& lj = bench::lj_stats();
  const auto& rx = bench::reaxff_stats();
  const auto& sn = bench::snap_stats();

  const bigint n_lj = 16000000, n_rx = 465000, n_sn = 64000;

  banner("Single-GPU comparison across architectures, normalized to a "
         "Skylake CPU node",
         "Figure 5 (LJ 16M, ReaxFF 465k, SNAP 64k atoms)");

  const GpuModel cpu(arch("CPU"));
  const double cpu_lj = bench::atom_steps_per_second(cpu, n_lj, lj_workloads(n_lj, lj));
  const double cpu_rx = bench::atom_steps_per_second(cpu, n_rx, reaxff_workloads(n_rx, rx));
  const double cpu_sn = bench::atom_steps_per_second(cpu, n_sn, snap_workloads(n_sn, sn));

  Table t({"GPU", "LJ speedup", "ReaxFF speedup", "SNAP speedup"});
  for (const char* name :
       {"V100", "A100", "H100", "GH200", "MI250X", "MI300A", "PVC"}) {
    const GpuModel g(arch(name));
    const double slj =
        bench::atom_steps_per_second(g, n_lj, lj_workloads(n_lj, lj)) / cpu_lj;
    const double srx =
        bench::atom_steps_per_second(g, n_rx, reaxff_workloads(n_rx, rx)) /
        cpu_rx;
    const double ssn =
        bench::atom_steps_per_second(g, n_sn, snap_workloads(n_sn, sn)) /
        cpu_sn;
    t.add_row({name, Table::num(slj, 1), Table::num(srx, 1),
               Table::num(ssn, 1)});
  }
  t.print();
  std::printf(
      "\nshape checks (paper section 5.1):\n"
      "  * performance ordering follows hardware generation within vendors\n"
      "  * V100 -> A100 jump exceeds raw BW/FLOP growth (L1+L2 capacity)\n"
      "  * MI250X and PVC rows are a single GCD/stack (half the package)\n"
      "  * NVIDIA parts outperform same-class peers beyond bandwidth ratios "
      "(cache size + carveout flexibility)\n");
  return 0;
}
