// bench_neigh_rebuild — compares the two device fill strategies of the
// neighbor build (docs/NEIGHBOR.md) across successive rebuilds of an
// evolving melt:
//   * count-then-fill — the two-traversal baseline: a count pass sizes the
//     table exactly, then a second pass fills it;
//   * resize-and-retry — the production single-pass path: fill directly into
//     a guessed-capacity table, detect overflow with a max-reduction, and
//     regrow + repeat only on overflow. The capacity high-water mark
//     persists across rebuilds, so retries amortize to zero at steady state
//     and each rebuild is one traversal instead of two.
//
// All columns are *measured* from the real builders running on this CPU; the
// same atom configuration is handed to both strategies at every rebuild.
// The exit status checks the acceptance criterion: at most one retry total
// after the warm-up (first) rebuild.
//
// Usage: bench_neigh_rebuild [cells] [nrebuilds] [steps_between]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "engine/neighbor_kokkos.hpp"

int main(int argc, char** argv) {
  bench::Metrics metrics("bench_neigh_rebuild");
  const int cells = argc > 1 ? std::atoi(argv[1]) : 12;
  const int nrebuilds = argc > 2 ? std::atoi(argv[2]) : 6;
  const int steps_between = argc > 3 ? std::atoi(argv[3]) : 5;

  mlk::init_all();
  mlk::Simulation sim;
  sim.thermo.print = false;
  mlk::Input in(sim);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  const std::string c = std::to_string(cells);
  in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.02 771");
  in.line("mass 1 1.0");
  in.line("velocity all create 1.44 87287");
  in.line("suffix kk");
  in.line("pair_style lj/cut 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  in.line("fix 1 all nve");
  in.line("run 0");  // setup: ghosts + initial list

  mlk::NeighborKokkos retry, twopass;
  for (mlk::NeighborKokkos* nk : {&retry, &twopass}) {
    nk->cutoff = 2.5;
    nk->skin = sim.neighbor.skin;
    nk->style = mlk::NeighStyle::Full;
  }
  twopass.strategy = mlk::DeviceFillStrategy::CountThenFill;

  mlk::perf::banner("Neighbor rebuild: count-then-fill vs resize-and-retry",
                    "all columns measured");
  std::printf("LJ melt, %d^3 fcc cells (%d atoms), full list, %d NVE steps "
              "between rebuilds\ncold [ms] = the one real build at that "
              "configuration (includes retry passes);\nsteady [ms] = best of "
              "5 re-fills at warmed capacity\n\n",
              cells, 4 * cells * cells * cells, steps_between);

  mlk::perf::Table t({"rebuild", "count+fill [ms]", "retry cold [ms]",
                      "retry steady [ms]", "steady speedup", "retries",
                      "capacity"});
  mlk::bigint prev_retries = 0;
  mlk::bigint warm_retries = 0;
  for (int r = 0; r < nrebuilds; ++r) {
    if (r > 0) in.line("run " + std::to_string(steps_between));

    // The one "real" rebuild of this configuration: exactly what the engine
    // would pay, including any overflow retry passes.
    mlk::Timer t0;
    retry.build(sim.atom, sim.domain);
    const double cold = t0.seconds();
    const mlk::bigint dret = retry.nretries - prev_retries;
    prev_retries = retry.nretries;
    if (r > 0) warm_retries += dret;

    // Steady-state re-fills on the identical configuration.
    const double steady = bench::time_seconds(
        [&] { retry.build(sim.atom, sim.domain); }, 5);
    const double two = bench::time_seconds(
        [&] { twopass.build(sim.atom, sim.domain); }, 5);

    t.add_row({std::to_string(r), mlk::perf::Table::num(two * 1e3, 3),
               mlk::perf::Table::num(cold * 1e3, 3),
               mlk::perf::Table::num(steady * 1e3, 3),
               mlk::perf::Table::num(two / steady, 2) + "x",
               std::to_string(static_cast<long long>(dret)),
               std::to_string(retry.maxneighs_hint)});
  }
  t.print();

  std::printf(
      "\nshape checks:\n"
      "  * retries column: nonzero only at rebuild 0 (cold capacity guess);\n"
      "    the high-water mark makes later rebuilds retry-free\n"
      "  * steady speedup ~2x: one traversal instead of two once warm\n");
  const bool ok = warm_retries <= 1;
  std::printf("retries after warm-up <= 1: %s (%lld)\n", ok ? "yes" : "NO",
              static_cast<long long>(warm_retries));
  return ok ? 0 : 1;
}
