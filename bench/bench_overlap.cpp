// bench_overlap — measures the comm/compute overlap of the Verlet force
// phase (docs/EXECUTION_MODEL.md): interior pair forces launched on one
// kk::DeviceInstance while the halo exchange runs on another, versus the
// serialized pack -> exchange -> unpack -> force baseline.
//
// Two ingredients, per the DESIGN.md measurement-vs-modelling split:
//   * measured — the real engine (lj/cut/kk melt) decomposed over simulated
//     MPI ranks, timed with `overlap off` vs `overlap on`;
//   * modelled — the interconnect. The in-process simmpi mailbox has no
//     physical wire, so "link none" rows only expose scheduling effects; the
//     "link wire" rows arm simmpi's modelled link (World::set_link) with
//     Frontier's Slingshot-11 parameters (2 us / 12.5 GB/s per GCD) scaled
//     by ~150x to match this miniature engine's step time, which runs orders
//     of magnitude fewer atoms per rank than a saturated MI250X GCD. That
//     reproduces the paper's regime where halo wire time is a double-digit
//     share of the step — the share the overlapped Verlet loop hides.
//
// System size matters: overlap can only hide wire time behind *interior*
// rows (no ghost neighbors), and with the 2.5 sigma cutoff a box below
// ~12^3 cells is nearly all boundary once decomposed. The 14^3 default
// keeps the interior share of the force phase above the wire time.
//
// Usage: bench_overlap [cells] [steps] [latency_us] [bw_MB/s]
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "bench_common.hpp"
#include "comm/simmpi.hpp"

namespace {

struct RunResult {
  double step_seconds = 0.0;  // loop wall time per step (rank 0)
  double comm_seconds = 0.0;  // Comm timer bucket over the timed run
};

RunResult run_melt(int nranks, int cells, int steps, bool overlap,
                   double latency_s, double bytes_per_s) {
  mlk::init_all();
  RunResult out;
  std::mutex mu;
  simmpi::World world(nranks);
  world.set_link(latency_s, bytes_per_s);
  world.run([&](simmpi::Comm& comm) {
    mlk::Simulation sim;
    sim.mpi = nranks > 1 ? &comm : nullptr;
    sim.overlap_enabled = overlap;
    sim.thermo.print = false;
    mlk::Input in(sim);
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    const std::string c = std::to_string(cells);
    in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.02 771");
    in.line("mass 1 1.0");
    in.line("velocity all create 1.44 87287");
    in.line("suffix kk");  // device style: full list + atom parallelism
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("fix 1 all nve");
    in.line("thermo " + std::to_string(steps));

    in.line("run 10");  // warmup: setup, first rebuilds, pool spin-up

    sim.allreduce_sum(1.0);  // align ranks before timing
    const double comm_before = sim.timers.total("Comm");
    mlk::Timer t;
    in.line("run " + std::to_string(steps));
    sim.allreduce_sum(1.0);
    const double sec = t.seconds();
    const double comm_after = sim.timers.total("Comm");

    std::lock_guard<std::mutex> lk(mu);
    if (comm.rank() == 0) {
      out.step_seconds = sec / double(steps);
      out.comm_seconds = comm_after - comm_before;
    }
  });
  return out;
}

struct Row {
  double ser = 1e300, ovl = 1e300;
  double ser_comm = 0.0;
};

Row measure(int nranks, int cells, int steps, double lat, double bw) {
  // Best of 3 interleaved repetitions per mode to suppress drift.
  Row r;
  for (int rep = 0; rep < 3; ++rep) {
    const RunResult s = run_melt(nranks, cells, steps, false, lat, bw);
    const RunResult o = run_melt(nranks, cells, steps, true, lat, bw);
    if (s.step_seconds < r.ser) {
      r.ser = s.step_seconds;
      r.ser_comm = s.comm_seconds;
    }
    r.ovl = std::min(r.ovl, o.step_seconds);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Metrics metrics("bench_overlap");
  const int cells = argc > 1 ? std::atoi(argv[1]) : 14;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;
  // Frontier Slingshot-11 (2 us, 12.5 GB/s per GCD) scaled ~150x to the
  // miniature engine's atoms-per-rank (see file comment).
  const double lat = (argc > 3 ? std::atof(argv[3]) : 300.0) * 1e-6;
  const double bw = (argc > 4 ? std::atof(argv[4]) : 30.0) * 1e6;

  mlk::perf::banner("Comm/compute overlap in the Verlet loop",
                    "engine measured, interconnect modelled");
  std::printf("LJ melt, %d^3 fcc cells (%d atoms total), %d timed steps, "
              "lj/cut/kk full list\nmodelled link: %.0f us/message, %.0f "
              "MB/s (none = in-process mailbox only)\n\n",
              cells, 4 * cells * cells * cells, steps, lat * 1e6, bw * 1e-6);

  mlk::perf::Table t({"ranks", "link", "serialized [ms/step]",
                      "overlapped [ms/step]", "reduction", "comm share",
                      "overlap efficiency"});
  bool ok_multirank = false;
  for (int nranks : {1, 2, 4}) {
    for (const bool wire : {false, true}) {
      if (!wire && nranks > 2) continue;  // scheduling-only rows: one suffices
      const Row r = measure(nranks, cells, steps, wire ? lat : 0.0,
                            wire ? bw : 0.0);
      const double reduction = 1.0 - r.ovl / r.ser;
      const double comm_share = r.ser_comm / (r.ser * steps);
      const double efficiency =
          r.ser_comm > 0 ? (r.ser - r.ovl) * steps / r.ser_comm : 0.0;
      t.add_row({std::to_string(nranks), wire ? "wire" : "none",
                 mlk::perf::Table::num(r.ser * 1e3, 3),
                 mlk::perf::Table::num(r.ovl * 1e3, 3),
                 mlk::perf::Table::num(reduction * 100.0, 1) + "%",
                 mlk::perf::Table::num(comm_share * 100.0, 1) + "%",
                 mlk::perf::Table::num(efficiency, 2)});
      if (wire && nranks >= 2 && reduction >= 0.10) ok_multirank = true;
    }
  }
  t.print();

  std::printf(
      "\nshape checks:\n"
      "  * 'none' rows ~0%%: without wire time there is nothing to hide\n"
      "  * 'wire' rows: reduction approaches the comm share — the halo\n"
      "    exchange runs on the comm instance while interior forces "
      "compute\n"
      "  * efficiency near 1.0 means the wire time is fully hidden\n");
  std::printf("multirank >=10%% step-time reduction with modelled link: %s\n",
              ok_multirank ? "yes" : "NO");
  return ok_multirank ? 0 : 1;
}
