// Reproduces Fig. 6: strong scaling of the three case studies across the
// exascale machines (Frontier, Aurora, El Capitan) and Alps, up to 8192
// nodes, for several global problem sizes.
//
// Also runs the load-imbalance sweep (docs/DECOMPOSITION.md): the real
// engine on the non-uniform droplet workload, decomposed over 4 simmpi
// ranks, static uniform grid vs `balance rcb` — measured per-rank critical
// path (max-over-ranks Pair+Neigh time; with threads-as-ranks wall clock
// reflects total work, not the critical path a real machine pays) — and
// feeds the measured imbalance into the machine model's imbalance factor.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "bench_common.hpp"
#include "comm/simmpi.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

struct Case {
  const char* potential;
  bigint global_atoms;
  std::function<std::vector<KernelWorkload>(bigint)> workloads;
  double density;     // atoms per A^3 (or sigma^3 for LJ)
  double ghost_cut;   // halo thickness in the same length unit
  double extra_halo_rounds = 0.0;  // QEq: one ghost exchange per CG iter
  double allreduces = 1.0;         // QEq: two dot products per CG iter
};

void run_case(const Case& c) {
  std::printf("\n--- %s, %lld atoms ---\n", c.potential,
              (long long)c.global_atoms);
  Table t({"nodes", "Frontier [steps/s]", "Aurora", "ElCapitan", "Alps",
           "best atoms/GPU"});
  for (int nodes : {8, 32, 128, 512, 2048, 8192}) {
    std::vector<std::string> row = {std::to_string(nodes)};
    double best_apg = 0;
    for (const char* mname : {"Frontier", "Aurora", "ElCapitan", "Alps"}) {
      const Machine& m = machine(mname);
      if (nodes > m.max_nodes) {
        row.push_back("-");
        continue;
      }
      MachineModel model(m);
      const auto pt =
          model.step_time(c.global_atoms, nodes, c.workloads, c.density,
                          c.ghost_cut, 48.0, c.extra_halo_rounds, c.allreduces);
      row.push_back(Table::num(pt.steps_per_second, 1));
      best_apg = pt.atoms_per_gpu;
    }
    row.push_back(Table::num(best_apg, 0));
    t.add_row(row);
  }
  t.print();
}

// --- measured droplet imbalance sweep --------------------------------------

struct DropletResult {
  double critical_ms = 0.0;  // max-over-ranks (Pair+Neigh) per step [ms]
  double imbalance = 1.0;    // max/avg nlocal at run end
  long long nbalances = 0;
};

DropletResult run_droplet(int nranks, int cells, int steps, bool balance) {
  mlk::init_all();
  DropletResult out;
  std::mutex mu;
  double max_bucket = 0.0, max_nlocal = 0.0, sum_nlocal = 0.0;
  simmpi::World world(nranks);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.thermo.print = false;
    Input in(sim);
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    const std::string c = std::to_string(cells);
    // Droplet: lattice only in the lower corner, the rest vacuum. A static
    // uniform grid leaves one rank holding nearly all atoms.
    in.line("create_atoms " + c + " " + c + " " + c +
            " jitter 0.02 771 region 0 0.55 0 0.55 0 0.55");
    in.line("mass 1 1.0");
    in.line("velocity all create 1.44 87287");
    in.line("suffix kk");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("fix 1 all nve");
    in.line("thermo " + std::to_string(steps));
    if (balance) in.line("balance rcb 1.1");

    in.line("run 20");  // warmup: setup, first rebuilds (+ first rebalance)

    sim.allreduce_sum(1.0);
    const double before =
        sim.timers.total("Pair") + sim.timers.total("Neigh");
    in.line("run " + std::to_string(steps));
    sim.allreduce_sum(1.0);
    const double bucket =
        sim.timers.total("Pair") + sim.timers.total("Neigh") - before;

    std::lock_guard<std::mutex> lk(mu);
    max_bucket = std::max(max_bucket, bucket);
    max_nlocal = std::max(max_nlocal, double(sim.atom.nlocal));
    sum_nlocal += double(sim.atom.nlocal);
    if (comm.rank() == 0) out.nbalances = (long long)sim.balancer.nbalances;
  });
  out.critical_ms = max_bucket * 1e3 / double(steps);
  out.imbalance = sum_nlocal > 0.0
                      ? max_nlocal / (sum_nlocal / double(nranks))
                      : 1.0;
  return out;
}

bool run_imbalance_sweep(bench::Metrics& metrics) {
  banner("Load imbalance: droplet on 4 ranks, static grid vs balance rcb",
         "engine measured + modelled imbalance factor");
  const int nranks = 4, cells = 12, steps = 50;
  std::printf("LJ droplet: fcc in [0,0.55)^3 of a %d^3-cell box (vacuum "
              "elsewhere), %d ranks, %d timed steps\ncritical path = "
              "max-over-ranks Pair+Neigh per step (best of 3)\n\n",
              cells, nranks, steps);

  DropletResult stat, rcb;
  stat.critical_ms = rcb.critical_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {  // interleaved best-of-3
    const DropletResult s = run_droplet(nranks, cells, steps, false);
    const DropletResult b = run_droplet(nranks, cells, steps, true);
    if (s.critical_ms < stat.critical_ms) {
      const long long nb = stat.nbalances;
      stat = s;
      (void)nb;
    }
    if (b.critical_ms < rcb.critical_ms) rcb = b;
  }
  const double speedup = stat.critical_ms / rcb.critical_ms;

  Table t({"decomposition", "imbalance (measured)", "critical path [ms/step]",
           "rebalances"});
  t.add_row({"static uniform grid", Table::num(stat.imbalance, 2),
             Table::num(stat.critical_ms, 3), std::to_string(stat.nbalances)});
  t.add_row({"balance rcb 1.1", Table::num(rcb.imbalance, 2),
             Table::num(rcb.critical_ms, 3), std::to_string(rcb.nbalances)});
  t.print();

  // Feed the measured imbalance into the machine model: same droplet atom
  // count strong-scaled on Frontier with each decomposition's imbalance.
  const auto& lj = bench::lj_stats();
  MachineModel model(machine("Frontier"));
  Table m({"nodes", "Frontier static [steps/s]", "Frontier rcb", "modelled gain"});
  for (int nodes : {8, 32, 128}) {
    const auto ps = model.step_time(
        16000000, nodes, [&](bigint nl) { return lj_workloads(nl, lj); },
        bench::lj_density(), 2.8, 48.0, 0.0, 1.0, stat.imbalance);
    const auto pb = model.step_time(
        16000000, nodes, [&](bigint nl) { return lj_workloads(nl, lj); },
        bench::lj_density(), 2.8, 48.0, 0.0, 1.0, rcb.imbalance);
    m.add_row({std::to_string(nodes), Table::num(ps.steps_per_second, 1),
               Table::num(pb.steps_per_second, 1),
               Table::num(pb.steps_per_second / ps.steps_per_second, 2) + "x"});
  }
  m.print();

  const bool ok = speedup >= 1.3;
  std::printf("\nmeasured critical-path speedup with balance rcb: %.2fx "
              "(gate >= 1.30x): %s\n", speedup, ok ? "yes" : "NO");
  metrics.set_extra(
      "balance_gate",
      "{\"static_imbalance\":" + std::to_string(stat.imbalance) +
          ",\"rcb_imbalance\":" + std::to_string(rcb.imbalance) +
          ",\"static_critical_ms\":" + std::to_string(stat.critical_ms) +
          ",\"rcb_critical_ms\":" + std::to_string(rcb.critical_ms) +
          ",\"speedup\":" + std::to_string(speedup) + "}");
  return ok;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_fig6_strong_scaling");
  const auto& lj = bench::lj_stats();
  const auto& rx = bench::reaxff_stats();
  const auto& sn = bench::snap_stats();

  banner("Strong scaling on exascale machines", "Figure 6");

  // LJ: reduced units; density 0.8442 sigma^-3, halo = cutoff + skin.
  for (bigint n : {bigint(16000000), bigint(512000000)})
    run_case({"Lennard-Jones", n,
              [&](bigint nl) { return lj_workloads(nl, lj); },
              bench::lj_density(), 2.8});

  // ReaxFF: HNS-like crystal (atoms/A^3), halo = nonbonded cutoff + skin.
  for (bigint n : {bigint(465000), bigint(14880000)})
    run_case({"ReaxFF", n, [&](bigint nl) { return reaxff_workloads(nl, rx); },
              bench::hns_density(), 10.0, rx.qeq_iterations,
              2.0 * rx.qeq_iterations + 1.0});

  // SNAP: bcc W, halo = SNAP cutoff + skin.
  for (bigint n : {bigint(64000), bigint(2048000), bigint(65536000)})
    run_case({"SNAP", n, [&](bigint nl) { return snap_workloads(nl, sn); },
              bench::bcc_density(), 6.7});

  std::printf(
      "\nshape checks (paper section 5.2):\n"
      "  * LJ and SNAP approach ~1000 steps/s with enough nodes\n"
      "  * SNAP scales deepest (low saturation point, high compute hides "
      "launch/comm)\n"
      "  * ReaxFF never exceeds ~100 steps/s on any machine (no saturation "
      "plateau: any extra nodes reduce efficiency immediately)\n"
      "  * machine ordering matches single-GPU ordering (Fig. 5), network "
      "effects subleading\n");

  const bool balance_ok = run_imbalance_sweep(metrics);
  return balance_ok ? 0 : 1;
}
