// Reproduces Fig. 6: strong scaling of the three case studies across the
// exascale machines (Frontier, Aurora, El Capitan) and Alps, up to 8192
// nodes, for several global problem sizes.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

struct Case {
  const char* potential;
  bigint global_atoms;
  std::function<std::vector<KernelWorkload>(bigint)> workloads;
  double density;     // atoms per A^3 (or sigma^3 for LJ)
  double ghost_cut;   // halo thickness in the same length unit
  double extra_halo_rounds = 0.0;  // QEq: one ghost exchange per CG iter
  double allreduces = 1.0;         // QEq: two dot products per CG iter
};

void run_case(const Case& c) {
  std::printf("\n--- %s, %lld atoms ---\n", c.potential,
              (long long)c.global_atoms);
  Table t({"nodes", "Frontier [steps/s]", "Aurora", "ElCapitan", "Alps",
           "best atoms/GPU"});
  for (int nodes : {8, 32, 128, 512, 2048, 8192}) {
    std::vector<std::string> row = {std::to_string(nodes)};
    double best_apg = 0;
    for (const char* mname : {"Frontier", "Aurora", "ElCapitan", "Alps"}) {
      const Machine& m = machine(mname);
      if (nodes > m.max_nodes) {
        row.push_back("-");
        continue;
      }
      MachineModel model(m);
      const auto pt =
          model.step_time(c.global_atoms, nodes, c.workloads, c.density,
                          c.ghost_cut, 48.0, c.extra_halo_rounds, c.allreduces);
      row.push_back(Table::num(pt.steps_per_second, 1));
      best_apg = pt.atoms_per_gpu;
    }
    row.push_back(Table::num(best_apg, 0));
    t.add_row(row);
  }
  t.print();
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_fig6_strong_scaling");
  const auto& lj = bench::lj_stats();
  const auto& rx = bench::reaxff_stats();
  const auto& sn = bench::snap_stats();

  banner("Strong scaling on exascale machines", "Figure 6");

  // LJ: reduced units; density 0.8442 sigma^-3, halo = cutoff + skin.
  for (bigint n : {bigint(16000000), bigint(512000000)})
    run_case({"Lennard-Jones", n,
              [&](bigint nl) { return lj_workloads(nl, lj); },
              bench::lj_density(), 2.8});

  // ReaxFF: HNS-like crystal (atoms/A^3), halo = nonbonded cutoff + skin.
  for (bigint n : {bigint(465000), bigint(14880000)})
    run_case({"ReaxFF", n, [&](bigint nl) { return reaxff_workloads(nl, rx); },
              bench::hns_density(), 10.0, rx.qeq_iterations,
              2.0 * rx.qeq_iterations + 1.0});

  // SNAP: bcc W, halo = SNAP cutoff + skin.
  for (bigint n : {bigint(64000), bigint(2048000), bigint(65536000)})
    run_case({"SNAP", n, [&](bigint nl) { return snap_workloads(nl, sn); },
              bench::bcc_density(), 6.7});

  std::printf(
      "\nshape checks (paper section 5.2):\n"
      "  * LJ and SNAP approach ~1000 steps/s with enough nodes\n"
      "  * SNAP scales deepest (low saturation point, high compute hides "
      "launch/comm)\n"
      "  * ReaxFF never exceeds ~100 steps/s on any machine (no saturation "
      "plateau: any extra nodes reduce efficiency immediately)\n"
      "  * machine ordering matches single-GPU ordering (Fig. 5), network "
      "effects subleading\n");
  return 0;
}
