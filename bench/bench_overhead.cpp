// Profiling hot-path overhead: what does a parallel dispatch cost on top of
// the kernel body, with profiling (a) disabled, (b) counting launches, and
// (c) driving a registered KernelTimer tool?
//
// The disabled path must be a fast early-out (one relaxed atomic load — no
// lock, no map, no string): the gate is <2% overhead versus executing the
// same body inline, measured on a work-bearing kernel. The counting path is
// sharded per thread (uncontended lock + one hash lookup), replacing the
// seed's process-global mutex that serialized every dispatch in the
// simulation.
#include <cstdio>

#include "bench_common.hpp"
#include "kokkos/core.hpp"
#include "tools/kernel_timer.hpp"

namespace {

// A kernel body with measurable but small work, so dispatch overhead is
// visible yet the comparison reflects a realistic small launch (the Fig. 4
// latency-limit regime: many launches of modest kernels).
constexpr std::size_t kItems = 4096;
constexpr int kReps = 2000;

double body_sink = 0.0;

inline double body(std::size_t i) {
  const double x = double(i) * 1e-3;
  return x * x + 0.5 * x;
}

/// The exact work a Host-space dispatch performs, without the dispatch.
double run_inline() {
  mlk::Timer t;
  for (int r = 0; r < kReps; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < kItems; ++i) acc += body(i);
    body_sink += acc;
  }
  return t.seconds();
}

double run_dispatched() {
  mlk::Timer t;
  for (int r = 0; r < kReps; ++r) {
    double acc = 0.0;
    kk::parallel_for("bench::overhead", kk::RangePolicy<kk::Host>(kItems),
                     [&](std::size_t i) { acc += body(i); });
    body_sink += acc;
  }
  return t.seconds();
}

double best_of(double (*fn)(), int trials = 5) {
  double best = 1e300;
  for (int i = 0; i < trials; ++i) {
    const double t = fn();
    if (t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_overhead");
  mlk::perf::banner("Profiling hot-path overhead per dispatch",
                    "gate: disabled-mode dispatch overhead < 2%");

  run_inline();  // warmup
  const double t_inline = best_of(run_inline);

  const bool prev = kk::profiling::set_enabled(false);
  const double t_disabled = best_of(run_dispatched);
  kk::profiling::set_enabled(true);
  const double t_counting = best_of(run_dispatched);

  auto timer = std::make_shared<mlk::tools::KernelTimer>();
  kk::profiling::register_tool(timer);
  const double t_tool = best_of(run_dispatched);
  kk::profiling::deregister_tool(timer);
  kk::profiling::set_enabled(prev);

  const double ns_per = 1e9 / double(kReps);
  auto row = [&](const char* mode, double t) {
    std::printf("%-28s %10.3f ms   %8.1f ns/launch   %+7.2f%% vs inline\n",
                mode, t * 1e3, (t - t_inline) * ns_per,
                100.0 * (t - t_inline) / t_inline);
  };
  std::printf("%zu-item Host kernel, %d launches; best of 5 trials\n\n",
              kItems, kReps);
  row("inline loop (no dispatch)", t_inline);
  row("dispatch, profiling off", t_disabled);
  row("dispatch, launch counting", t_counting);
  row("dispatch, KernelTimer tool", t_tool);

  const double overhead_pct = 100.0 * (t_disabled - t_inline) / t_inline;
  std::printf("\nprofiling-disabled dispatch overhead: %.2f%% -> %s\n",
              overhead_pct, overhead_pct < 2.0 ? "PASS (< 2%)" : "FAIL");
  (void)body_sink;
  return overhead_pct < 2.0 ? 0 : 1;
}
