// Profiling hot-path overhead: what does a parallel dispatch cost on top of
// the kernel body, with profiling (a) disabled, (b) counting launches, and
// (c) driving a registered KernelTimer tool?
//
// The disabled path must be a fast early-out (one relaxed atomic load — no
// lock, no map, no string): the gate is <2% overhead versus executing the
// same body inline, measured on a work-bearing kernel. The counting path is
// sharded per thread (uncontended lock + one hash lookup), replacing the
// seed's process-global mutex that serialized every dispatch in the
// simulation.
//
// Second gate: the live telemetry stream (docs/OBSERVABILITY.md). An LJ
// melt stepped with the full hub active — wait-free ring publishes from the
// step loop, periodic coordinate captures, and the sink thread draining +
// running the in-situ RDF/MSD — must cost <2% step time versus the same
// melt with telemetry off. The ring drop rate is reported alongside (and
// lands in the metrics JSON under "telemetry" with MLK_BENCH_METRICS).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "kokkos/core.hpp"
#include "tools/kernel_timer.hpp"
#include "tools/telemetry/telemetry.hpp"

namespace {

// A kernel body with measurable but small work, so dispatch overhead is
// visible yet the comparison reflects a realistic small launch (the Fig. 4
// latency-limit regime: many launches of modest kernels).
constexpr std::size_t kItems = 4096;
constexpr int kReps = 2000;

double body_sink = 0.0;

inline double body(std::size_t i) {
  const double x = double(i) * 1e-3;
  return x * x + 0.5 * x;
}

/// The exact work a Host-space dispatch performs, without the dispatch.
double run_inline() {
  mlk::Timer t;
  for (int r = 0; r < kReps; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < kItems; ++i) acc += body(i);
    body_sink += acc;
  }
  return t.seconds();
}

double run_dispatched() {
  mlk::Timer t;
  for (int r = 0; r < kReps; ++r) {
    double acc = 0.0;
    kk::parallel_for("bench::overhead", kk::RangePolicy<kk::Host>(kItems),
                     [&](std::size_t i) { acc += body(i); });
    body_sink += acc;
  }
  return t.seconds();
}

double best_of(double (*fn)(), int trials = 5) {
  double best = 1e300;
  for (int i = 0; i < trials; ++i) {
    const double t = fn();
    if (t < best) best = t;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Telemetry step-time gate
// ---------------------------------------------------------------------------

constexpr int kMeltSteps = 200;

/// One fresh LJ melt advanced kMeltSteps; returns loop seconds per step.
/// When the hub is streaming, the Verlet loop attaches and publishes; the
/// detach summary accumulates into the published/drop tallies.
double melt_step_seconds(std::uint64_t* published, std::uint64_t* drops) {
  mlk::init_all();
  mlk::Simulation sim;
  mlk::Input in(sim);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 5 5 5 jitter 0.05 78123");
  in.line("mass 1 1.0");
  in.line("velocity all create 1.44 87287");
  in.line("pair_style lj/cut 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  in.line("fix 1 all nve");
  in.line("thermo 20");
  sim.thermo.print = false;
  sim.setup();

  mlk::Timer t;
  in.line("run " + std::to_string(kMeltSteps));
  const double sec = t.seconds();

  if (published && drops) {
    mlk::tools::telemetry::TelemetrySummary s;
    sim.detach_telemetry(&s);
    *published += s.steps_published + s.thermo_published;
    *drops += s.drops;
  }
  return sec / kMeltSteps;
}

double melt_best_of(std::uint64_t* published, std::uint64_t* drops,
                    int trials = 5) {
  double best = 1e300;
  for (int i = 0; i < trials; ++i)
    best = std::min(best, melt_step_seconds(published, drops));
  return best;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_overhead");
  mlk::perf::banner("Profiling hot-path overhead per dispatch",
                    "gate: disabled-mode dispatch overhead < 2%");

  run_inline();  // warmup
  const double t_inline = best_of(run_inline);

  const bool prev = kk::profiling::set_enabled(false);
  const double t_disabled = best_of(run_dispatched);
  kk::profiling::set_enabled(true);
  const double t_counting = best_of(run_dispatched);

  auto timer = std::make_shared<mlk::tools::KernelTimer>();
  kk::profiling::register_tool(timer);
  const double t_tool = best_of(run_dispatched);
  kk::profiling::deregister_tool(timer);
  kk::profiling::set_enabled(prev);

  const double ns_per = 1e9 / double(kReps);
  auto row = [&](const char* mode, double t) {
    std::printf("%-28s %10.3f ms   %8.1f ns/launch   %+7.2f%% vs inline\n",
                mode, t * 1e3, (t - t_inline) * ns_per,
                100.0 * (t - t_inline) / t_inline);
  };
  std::printf("%zu-item Host kernel, %d launches; best of 5 trials\n\n",
              kItems, kReps);
  row("inline loop (no dispatch)", t_inline);
  row("dispatch, profiling off", t_disabled);
  row("dispatch, launch counting", t_counting);
  row("dispatch, KernelTimer tool", t_tool);

  const double overhead_pct = 100.0 * (t_disabled - t_inline) / t_inline;
  std::printf("\nprofiling-disabled dispatch overhead: %.2f%% -> %s\n",
              overhead_pct, overhead_pct < 2.0 ? "PASS (< 2%)" : "FAIL");
  (void)body_sink;

  // --- gate 2: live telemetry streaming vs off, same melt ----------------
  namespace tel = mlk::tools::telemetry;
  std::printf("\nLJ melt (500 atoms, %d steps/trial, best of 5): "
              "telemetry off vs streaming\n", kMeltSteps);

  const double t_off = melt_best_of(nullptr, nullptr);

  const std::string tel_path =
      (std::filesystem::temp_directory_path() / "bench_overhead.telemetry")
          .string();
  // Default configuration — the gate covers what MLK_TELEMETRY=<path>
  // gives you: 50ms drain cadence, coordinate capture every 50 steps,
  // subsampled in-situ RDF + MSD on the sink thread. The sink competes for
  // cores with the step loop (this box may have a single core), so the
  // budget covers consumer-side work too, not just the ring publishes.
  tel::Config cfg;
  cfg.path = tel_path;
  tel::Hub::instance().start(cfg);
  std::uint64_t published = 0, drops = 0;
  const double t_on = melt_best_of(&published, &drops);
  tel::Hub::instance().stop();
  std::remove(tel_path.c_str());
  std::remove((tel_path + ".ndjson").c_str());

  const double tel_pct = 100.0 * (t_on - t_off) / t_off;
  const double drop_rate =
      published > 0 ? double(drops) / double(published) : 0.0;
  std::printf("  telemetry off   %10.3f us/step\n", t_off * 1e6);
  std::printf("  telemetry on    %10.3f us/step   (ring publish + sink + "
              "in-situ RDF/MSD)\n", t_on * 1e6);
  std::printf("  %llu samples published, %llu dropped (drop rate %.4f)\n",
              (unsigned long long)published, (unsigned long long)drops,
              drop_rate);
  std::printf("telemetry step-time overhead: %.2f%% -> %s\n", tel_pct,
              tel_pct < 2.0 ? "PASS (< 2%)" : "FAIL");

  metrics.set_extra(
      "telemetry",
      "{\"step_us_off\":" + std::to_string(t_off * 1e6) +
          ",\"step_us_on\":" + std::to_string(t_on * 1e6) +
          ",\"overhead_pct\":" + std::to_string(tel_pct) +
          ",\"published\":" + std::to_string(published) +
          ",\"drops\":" + std::to_string(drops) +
          ",\"drop_rate\":" + std::to_string(drop_rate) + "}");

  return overhead_pct < 2.0 && tel_pct < 2.0 ? 0 : 1;
}
