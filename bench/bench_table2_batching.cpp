// Reproduces Table 2: relative performance uplift from work-batching in the
// top three SNAP kernels on NVIDIA H100 and AMD MI300A (64k atoms), plus a
// measured column running the real batched kernels on this CPU.
//
// Paper values: ComputeUi 2.23x (batch 4) H100 / 1.75x (batch 2) MI300A;
//               ComputeYi 1.54x / 1.04x (batch 4);
//               ComputeFusedDeidrj 1.49x / 1.74x (fused all 3 directions).
#include <cstdio>

#include "bench_common.hpp"
#include "snap/pair_snap_kokkos.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

double kernel_time(const GpuModel& gpu, const std::vector<KernelWorkload>& ws,
                   const std::string& name) {
  for (const auto& w : ws)
    if (w.name.find(name) != std::string::npos) return gpu.time(w).seconds;
  return 0.0;
}

double cpu_snap_step(int ui_batch) {
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");
  in.line("create_atoms 4 4 4 jitter 0.02 5511");
  in.line("mass 1 183.84");
  in.line("pair_style snap/kk");
  in.line("pair_coeff * * 4.7 8 7771");
  auto* pair = dynamic_cast<PairSNAPKokkos<kk::Device>*>(sim.pair.get());
  pair->set_ui_batch(ui_batch);
  sim.setup();
  return bench::time_seconds([&] { sim.compute_forces(false); }, 3);
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_table2_batching");
  const auto& s = bench::snap_stats();
  const bigint n = 64000;
  std::printf("SNAP twojmax=8: idxu=%d idxz=%d idxb=%d, neighbors/atom=%.1f "
              "(measured)\n",
              s.snap_idxu, s.snap_idxz, s.snap_idxb, s.snap_neighbors);

  banner("Work-batching speedups for the top three SNAP kernels",
         "Table 2 (64k atoms)");

  Table t({"Kernel", "MI300A model", "MI300A paper", "H100 model",
           "H100 paper"});
  const GpuModel h100(arch("H100"));
  const GpuModel mi300(arch("MI300A"));

  {
    SnapConfig base;
    base.ui_batch = 1;
    SnapConfig b4 = base;
    b4.ui_batch = 4;
    SnapConfig b2 = base;
    b2.ui_batch = 2;
    const double h = kernel_time(h100, snap_workloads(n, s, base), "ComputeUi") /
                     kernel_time(h100, snap_workloads(n, s, b4), "ComputeUi");
    const double m = kernel_time(mi300, snap_workloads(n, s, base), "ComputeUi") /
                     kernel_time(mi300, snap_workloads(n, s, b2), "ComputeUi");
    t.add_row({"ComputeUi", Table::num(m, 2) + "x (batch 2)", "1.75x (batch 2)",
               Table::num(h, 2) + "x (batch 4)", "2.23x (batch 4)"});
  }
  {
    SnapConfig base;
    base.yi_batch = 1;
    SnapConfig b4 = base;
    b4.yi_batch = 4;
    const double h = kernel_time(h100, snap_workloads(n, s, base), "ComputeYi") /
                     kernel_time(h100, snap_workloads(n, s, b4), "ComputeYi");
    const double m = kernel_time(mi300, snap_workloads(n, s, base), "ComputeYi") /
                     kernel_time(mi300, snap_workloads(n, s, b4), "ComputeYi");
    t.add_row({"ComputeYi", Table::num(m, 2) + "x (batch 4)", "1.04x (batch 4)",
               Table::num(h, 2) + "x (batch 4)", "1.54x (batch 4)"});
  }
  {
    SnapConfig fused;
    SnapConfig unfused;
    unfused.fused_deidrj = false;
    const double h =
        kernel_time(h100, snap_workloads(n, s, unfused), "Deidrj") /
        kernel_time(h100, snap_workloads(n, s, fused), "Deidrj");
    const double m =
        kernel_time(mi300, snap_workloads(n, s, unfused), "Deidrj") /
        kernel_time(mi300, snap_workloads(n, s, fused), "Deidrj");
    t.add_row({"ComputeFusedDeidrj", Table::num(m, 2) + "x", "1.74x",
               Table::num(h, 2) + "x", "1.49x"});
  }
  t.print();
  std::printf("shape check: all uplifts > 1 on both architectures; batching "
              "helps everywhere because it reduces atomics and exposes ILP\n");

  banner("Real batched ComputeUi on this CPU (2k atoms, twojmax=8)",
         "Table 2 measured sanity column");
  {
    Table m({"ui_batch", "force eval [ms] (measured)"});
    for (int b : {1, 2, 4, 8})
      m.add_row({std::to_string(b), Table::num(1e3 * cpu_snap_step(b), 2)});
    m.print();
    std::printf("note: batching helps on the CPU too — fewer accumulation "
                "passes over the U arrays — though the device-side win "
                "(fewer FP64 atomics + ILP) is the paper's point\n");
  }
  return 0;
}
