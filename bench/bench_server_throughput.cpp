// Batch-server throughput (docs/SERVER.md): jobs/sec for N independent
// small LJ melt jobs driven three ways —
//
//   naive       one Simulation at a time, sequentially (the no-server
//               baseline a queue of scripts would get);
//   coscheduled the scheduler's lockstep rounds + pooled instances, but no
//               cross-job fusion (batch off);
//   batched     full server: co-resident jobs with same-signature force
//               phases fused into single launches (batch on).
//
// Small jobs are the launch-overhead regime the server targets: per step a
// solo job pays a zero-forces launch plus a force launch for a few dozen
// atoms, so fusing the whole cohort's force phase into one launch is where
// the win comes from. The acceptance gate is >= 1.5x jobs/sec for N >= 8
// small jobs, batched vs naive, with every per-job trajectory bitwise
// identical to its solo run.
//
// Measured wall-clock only — no modelled columns; jobs/sec is the product.
// With MLK_BENCH_METRICS set, writes BENCH_server.json (summary) next to
// the standard per-kernel bench_server_throughput.metrics.json.
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "server/scheduler.hpp"

using namespace mlk;
using namespace mlk::server;

namespace {

constexpr int kJobs = 8;
constexpr bigint kSteps = 100;

JobSpec melt_job(int i) {
  JobSpec spec;
  spec.name = "melt-" + std::to_string(i);
  // Identical lattice, per-job temperature/seed: same batch signature
  // (structural), different trajectories and neighbor lists.
  const double temp = 0.7 + 0.1 * i;
  spec.setup = {
      "units lj",
      "lattice fcc 0.8442",
      "create_atoms 2 2 2 jitter 0.05 78123",
      "mass 1 1.0",
      "velocity all create " + std::to_string(temp) + " " +
          std::to_string(87287 + i),
      "suffix kk",
      "pair_style lj/cut 1.3",
      "pair_coeff * * 1.0 1.0",
      "neighbor 0.3 bin",
      "neigh_modify every 20 check no",
      "fix 1 all nve",
      "thermo 50",
  };
  spec.steps = kSteps;
  return spec;
}

/// The no-server baseline: run each job's script to completion, one after
/// another, through the plain Verlet loop.
std::vector<std::vector<double>> run_naive(const std::vector<JobSpec>& specs) {
  std::vector<std::vector<double>> states;
  for (const JobSpec& spec : specs) {
    Simulation sim;
    Input in(sim);
    sim.thermo.print = false;
    for (const std::string& line : spec.setup) in.line(line);
    sim.run(spec.steps);
    states.push_back(capture_state(sim));
  }
  return states;
}

}  // namespace

int main() {
  // The container defaults to one worker; small-kernel launch overhead is
  // only meaningful against a real pool. Respect an explicit setting.
  setenv("MLK_NUM_THREADS", "16", /*overwrite=*/0);
  init_all();
  bench::Metrics metrics("bench_server_throughput");

  std::vector<JobSpec> specs;
  for (int i = 0; i < kJobs; ++i) specs.push_back(melt_job(i));

  // Reference states (also warms the pool and style caches).
  const std::vector<std::vector<double>> solo = run_naive(specs);

  // Instance fan-out buys comm/compute overlap on multi-core hosts but is
  // pure context-switch overhead when the pool already oversubscribes the
  // machine — drive phases inline so the cosched->batched delta isolates
  // what fusion saves.
  SchedulerConfig cosched_cfg;
  cosched_cfg.max_resident = kJobs;
  cosched_cfg.batch = false;
  cosched_cfg.fanout = false;

  SchedulerConfig batched_cfg;
  batched_cfg.max_resident = kJobs;
  batched_cfg.fanout = false;
  std::vector<JobResult> batched_results;

  // Interleaved best-of-N: one pass times each mode back to back, so slow
  // phases of the (shared, single-core) machine hit all three modes alike
  // instead of biasing whichever mode ran during the quiet window.
  double t_naive = 1e300, t_cosched = 1e300, t_batched = 1e300;
  run_jobs(specs, batched_cfg);  // warmup
  for (int pass = 0; pass < 7; ++pass) {
    Timer tn;
    run_naive(specs);
    t_naive = std::min(t_naive, tn.seconds());
    Timer tc;
    run_jobs(specs, cosched_cfg);
    t_cosched = std::min(t_cosched, tc.seconds());
    Timer tb;
    batched_results = run_jobs(specs, batched_cfg);
    t_batched = std::min(t_batched, tb.seconds());
  }

  // Bitwise isolation check: every batched job's final state must equal its
  // solo run exactly.
  int mismatches = 0;
  for (int i = 0; i < kJobs; ++i) {
    const JobResult& r = batched_results[std::size_t(i)];
    if (r.state != JobState::Completed ||
        r.state_xv != solo[std::size_t(i)]) {
      std::printf("# BITWISE MISMATCH job %d '%s' (%s)\n", r.id,
                  r.name.c_str(), r.error.c_str());
      ++mismatches;
    }
  }

  const double naive_jps = kJobs / t_naive;
  const double cosched_jps = kJobs / t_cosched;
  const double batched_jps = kJobs / t_batched;
  const double speedup = t_naive / t_batched;

  std::printf("# bench_server_throughput: %d LJ jobs (32 atoms, %lld steps "
              "each), measured wall-clock\n",
              kJobs, static_cast<long long>(kSteps));
  std::printf("%-14s %12s %12s %10s\n", "mode", "seconds", "jobs/sec",
              "speedup");
  std::printf("%-14s %12.4f %12.2f %10s\n", "naive", t_naive, naive_jps, "1.00x");
  std::printf("%-14s %12.4f %12.2f %9.2fx\n", "coscheduled", t_cosched,
              cosched_jps, t_naive / t_cosched);
  std::printf("%-14s %12.4f %12.2f %9.2fx\n", "batched", t_batched,
              batched_jps, speedup);
  std::printf("# bitwise vs solo: %s\n",
              mismatches == 0 ? "identical" : "MISMATCH");
  std::printf("# gate (>= 1.5x batched vs naive): %s\n",
              speedup >= 1.5 ? "PASS" : "FAIL");

  if (const char* v = std::getenv("MLK_BENCH_METRICS");
      v && *v && std::string(v) != "0") {
    const std::string dir = std::string(v) == "1" ? "." : v;
    const std::string path = dir + "/BENCH_server.json";
    std::ofstream f(path, std::ios::trunc);
    f << "{\n"
      << "  \"bench\": \"bench_server_throughput\",\n"
      << "  \"jobs\": " << kJobs << ",\n"
      << "  \"steps_per_job\": " << kSteps << ",\n"
      << "  \"atoms_per_job\": 32,\n"
      << "  \"naive_seconds\": " << t_naive << ",\n"
      << "  \"coscheduled_seconds\": " << t_cosched << ",\n"
      << "  \"batched_seconds\": " << t_batched << ",\n"
      << "  \"naive_jobs_per_sec\": " << naive_jps << ",\n"
      << "  \"coscheduled_jobs_per_sec\": " << cosched_jps << ",\n"
      << "  \"batched_jobs_per_sec\": " << batched_jps << ",\n"
      << "  \"speedup_batched_vs_naive\": " << speedup << ",\n"
      << "  \"bitwise_identical_to_solo\": "
      << (mismatches == 0 ? "true" : "false") << ",\n"
      << "  \"gate_1p5x\": " << (speedup >= 1.5 ? "true" : "false") << "\n"
      << "}\n";
    std::printf("# summary written to %s\n", path.c_str());
  }

  return (mismatches == 0 && speedup >= 1.5) ? 0 : 1;
}
