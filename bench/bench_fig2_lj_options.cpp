// Reproduces Fig. 2: performance effect of neighbor-list options for the
// Lennard-Jones pair kernel on NVIDIA H100 and AMD MI250X.
//   (a) atom-parallel vs hierarchical neighbor-parallel vs atom count
//   (b) half list + atomics vs full list + redundant compute
// Modelled atom-steps/s from workload descriptors whose neighbor statistics
// are measured from the real kernels; a "measured on this CPU" section
// exercises the real code paths for the same variants.
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "kokkos/simd.hpp"
#include "pair/pair_lj_cut_kokkos.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

double cpu_variant_time(NeighStyle style, bool newton, PairParallelism par,
                        int cells) {
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  const std::string c = std::to_string(cells);
  in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.02 771");
  in.line("mass 1 1.0");
  in.line("pair_style lj/cut/kk 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  auto* pair = dynamic_cast<PairLJCutKokkos<kk::Device>*>(sim.pair.get());
  pair->set_neighbor_mode(style, newton);
  pair->set_parallelism(par);
  sim.setup();
  return bench::time_seconds([&] { sim.compute_forces(false); }, 5);
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_fig2_lj_options");
  const auto& s = bench::lj_stats();
  std::printf("measured neighbors/atom within cutoff (full list): %.1f\n",
              s.neighbors_per_atom);

  banner("LJ: exposing parallelism over neighbors vs atom count",
         "Figure 2a (H100 red, MI250X blue)");
  {
    Table t({"atoms", "H100 atom-par [Masteps/s]", "H100 team-par",
             "team/atom", "MI250X atom-par", "MI250X team-par", "team/atom"});
    for (bigint n : {bigint(2000), bigint(8000), bigint(32000), bigint(128000),
                     bigint(512000), bigint(2000000), bigint(16000000)}) {
      LJConfig atom_cfg;  // full list, atom-parallel
      LJConfig team_cfg;
      team_cfg.team_parallel = true;
      const GpuModel h100(arch("H100"));
      const GpuModel mi250(arch("MI250X"));
      const double ha = bench::atom_steps_per_second(h100, n, lj_workloads(n, s, atom_cfg)) / 1e6;
      const double ht = bench::atom_steps_per_second(h100, n, lj_workloads(n, s, team_cfg)) / 1e6;
      const double ma = bench::atom_steps_per_second(mi250, n, lj_workloads(n, s, atom_cfg)) / 1e6;
      const double mt = bench::atom_steps_per_second(mi250, n, lj_workloads(n, s, team_cfg)) / 1e6;
      t.add_row({std::to_string(n), Table::num(ha, 1), Table::num(ht, 1),
                 Table::num(ht / ha, 2), Table::num(ma, 1), Table::num(mt, 1),
                 Table::num(mt / ma, 2)});
    }
    t.print();
    std::printf("shape check: team-parallel wins at small N (ratio > 1), "
                "converges at large N\n");
  }

  banner("LJ: full list + redundant compute vs half list + atomics",
         "Figure 2b");
  {
    Table t({"atoms", "H100 full [Masteps/s]", "H100 half+atomics",
             "full/half", "MI250X full", "MI250X half+atomics", "full/half"});
    for (bigint n : {bigint(32000), bigint(128000), bigint(512000),
                     bigint(2000000), bigint(16000000)}) {
      LJConfig full_cfg;
      LJConfig half_cfg;
      half_cfg.full_list = false;
      const GpuModel h100(arch("H100"));
      const GpuModel mi250(arch("MI250X"));
      const double hf = bench::atom_steps_per_second(h100, n, lj_workloads(n, s, full_cfg)) / 1e6;
      const double hh = bench::atom_steps_per_second(h100, n, lj_workloads(n, s, half_cfg)) / 1e6;
      const double mf = bench::atom_steps_per_second(mi250, n, lj_workloads(n, s, full_cfg)) / 1e6;
      const double mh = bench::atom_steps_per_second(mi250, n, lj_workloads(n, s, half_cfg)) / 1e6;
      t.add_row({std::to_string(n), Table::num(hf, 1), Table::num(hh, 1),
                 Table::num(hf / hh, 2), Table::num(mf, 1), Table::num(mh, 1),
                 Table::num(mf / mh, 2)});
    }
    t.print();
    std::printf("shape check: full list wins on GPUs for cheap pair styles "
                "(redundant compute beats thread atomics, section 4.1)\n");
  }

  banner("Real kernels on this CPU (same code paths, small system)",
         "Fig. 2 measured sanity column");
  {
    if (kk::simd_enabled())
      std::printf("measured path: SIMD packs (kk::simd<double,%d>, "
                  "MLK_SIMD=on)\n",
                  kk::native_simd_width);
    else
      std::printf("measured path: scalar (MLK_SIMD off — the reference "
                  "path)\n");
    Table t({"variant", "time/step [ms] (measured)"});
    t.add_row({"full + atom-parallel",
               Table::num(1e3 * cpu_variant_time(NeighStyle::Full, false,
                                                 PairParallelism::Atom, 8), 3)});
    t.add_row({"full + team-parallel",
               Table::num(1e3 * cpu_variant_time(NeighStyle::Full, false,
                                                 PairParallelism::Team, 8), 3)});
    t.add_row({"half(newton) + atomics",
               Table::num(1e3 * cpu_variant_time(NeighStyle::Half, true,
                                                 PairParallelism::Atom, 8), 3)});
    t.print();
    std::printf("note: on one CPU core the half list wins (half the pair "
                "visits, no atomic contention) — the paper's CPU-side "
                "conclusion (section 4.1)\n");
  }

  banner("LJ scalar vs kk::simd packs on this CPU (full + atom-parallel)",
         "docs/VECTORIZATION.md acceptance gate");
  {
    const bool simd_was = kk::simd_enabled();
    kk::simdstats::reset();
    kk::set_simd_enabled(false);
    const double t_scalar =
        cpu_variant_time(NeighStyle::Full, false, PairParallelism::Atom, 8);
    kk::set_simd_enabled(true);
    const double t_simd =
        cpu_variant_time(NeighStyle::Full, false, PairParallelism::Atom, 8);
    kk::set_simd_enabled(simd_was);
    const double speedup = t_scalar / t_simd;

    Table t({"path", "time/step [ms] (measured)"});
    t.add_row({"scalar", Table::num(1e3 * t_scalar, 3)});
    t.add_row({std::string("simd W=") + std::to_string(kk::native_simd_width),
               Table::num(1e3 * t_simd, 3)});
    t.print();
    std::printf("# simd speedup (scalar/simd per-step): %.2fx\n", speedup);
    std::printf("# gate (>= 1.5x with MLK_SIMD=on vs scalar): %s\n",
                speedup >= 1.5 ? "PASS" : "FAIL");

    std::ostringstream os;
    os << "{\"width\":" << kk::native_simd_width
       << ",\"scalar_ms_per_step\":" << 1e3 * t_scalar
       << ",\"simd_ms_per_step\":" << 1e3 * t_simd
       << ",\"speedup\":" << speedup
       << ",\"gate_1p5x\":" << (speedup >= 1.5 ? "true" : "false")
       << ",\"launches\":" << kk::simdstats::launches_json() << "}";
    metrics.set_extra("simd", os.str());
  }
  return 0;
}
