// Reproduces Fig. 3: kernel performance vs shared-memory carveout on
// NVIDIA H100 at 1,024,000 atoms, normalized to the default carveout, for
// PairComputeLJCut and the three top SNAP kernels.
//
// Expected shapes (paper): LJ and ComputeYi benefit from large L1 (drop
// ~50% at max shared carveout / +85% from 32kB->224kB L1); ComputeUi and
// ComputeFusedDeidrj scale nearly linearly with the shared carveout
// (occupancy proportional to shared memory).
#include <cstdio>

#include "bench_common.hpp"

using namespace mlk;
using namespace mlk::perf;

namespace {

double kernel_time(const GpuModel& gpu, const std::vector<KernelWorkload>& ws,
                   const std::string& name) {
  for (const auto& w : ws)
    if (w.name.find(name) != std::string::npos) return gpu.time(w).seconds;
  return 0.0;
}

}  // namespace

int main() {
  bench::Metrics metrics("bench_fig3_carveout");
  const bigint n = 1024000;
  const auto& lj = bench::lj_stats();
  const auto& sn = bench::snap_stats();

  banner("Kernel performance vs shared-memory carveout (H100, 1,024,000 atoms)",
         "Figure 3");

  // Default-carveout reference (the built-in heuristic).
  const GpuModel def(arch("H100"));
  const double ref_lj = kernel_time(def, lj_workloads(n, lj), "LJCut");
  const double ref_ui = kernel_time(def, snap_workloads(n, sn), "ComputeUi");
  const double ref_yi = kernel_time(def, snap_workloads(n, sn), "ComputeYi");
  const double ref_de = kernel_time(def, snap_workloads(n, sn), "Deidrj");

  Table t({"carveout %", "shared kB", "L1 kB", "PairComputeLJCut",
           "ComputeUi", "ComputeYi", "ComputeFusedDeidrj"});
  for (double pct : {0.0, 12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0}) {
    GpuModel g(arch("H100"));
    g.carveout = pct / 100.0;
    const double unified = arch("H100").l1_total_kb();
    t.add_row(
        {Table::num(pct, 0), Table::num(unified * pct / 100.0, 0),
         Table::num(unified * (1.0 - pct / 100.0), 0),
         Table::num(ref_lj / kernel_time(g, lj_workloads(n, lj), "LJCut"), 2),
         Table::num(ref_ui / kernel_time(g, snap_workloads(n, sn), "ComputeUi"), 2),
         Table::num(ref_yi / kernel_time(g, snap_workloads(n, sn), "ComputeYi"), 2),
         Table::num(ref_de / kernel_time(g, snap_workloads(n, sn), "Deidrj"), 2)});
  }
  t.print();
  std::printf(
      "shape check: LJ/ComputeYi peak at small carveout (want L1), "
      "ComputeUi/FusedDeidrj rise ~linearly with carveout (occupancy "
      "proportional to shared memory)\n");

  // The paper's MI300A-match experiment (§4.4 conclusion): force H100's
  // cache split to MI300A's fixed 32 kB L1 / 64 kB shared.
  banner("H100 constrained to MI300A's cache split", "Section 4.4 conclusion");
  {
    // Per kernel, match "the L1 cache or shared memory capacity, as
    // appropriate": L1-hungry kernels get L1 clamped to MI300A's 32 kB
    // (carveout 87.5%), scratch-hungry kernels get shared clamped to 64 kB
    // (carveout 25%).
    const double unified = arch("H100").l1_total_kb();
    GpuModel l1_match(arch("H100"));
    l1_match.carveout = (unified - 32.0) / unified;
    GpuModel sh_match(arch("H100"));
    sh_match.carveout = 64.0 / unified;
    Table t2({"kernel", "matched capacity", "perf vs H100 default"});
    t2.add_row({"PairComputeLJCut", "L1 -> 32 kB",
                Table::num(ref_lj / kernel_time(l1_match, lj_workloads(n, lj), "LJCut"), 2)});
    t2.add_row({"ComputeUi", "shared -> 64 kB",
                Table::num(ref_ui / kernel_time(sh_match, snap_workloads(n, sn), "ComputeUi"), 2)});
    t2.add_row({"ComputeYi", "L1 -> 32 kB",
                Table::num(ref_yi / kernel_time(l1_match, snap_workloads(n, sn), "ComputeYi"), 2)});
    t2.add_row({"ComputeFusedDeidrj", "shared -> 64 kB",
                Table::num(ref_de / kernel_time(sh_match, snap_workloads(n, sn), "Deidrj"), 2)});
    t2.print();
    std::printf("paper: 20%%-60%% performance drops when matching MI300A's "
                "L1/shared capacities\n");
  }
  return 0;
}
