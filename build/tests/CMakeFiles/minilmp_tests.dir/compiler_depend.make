# Empty compiler generated dependencies file for minilmp_tests.
# This may be replaced when dependencies are built.
