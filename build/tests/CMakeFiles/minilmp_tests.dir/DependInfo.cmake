
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bigint.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_bigint.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_bigint.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_decomposition.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_decomposition.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_decomposition.cpp.o.d"
  "/root/repo/tests/test_eam_table.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_eam_table.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_eam_table.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_kokkos_dualview.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_dualview.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_dualview.cpp.o.d"
  "/root/repo/tests/test_kokkos_parallel.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_parallel.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_parallel.cpp.o.d"
  "/root/repo/tests/test_kokkos_scatterview.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_scatterview.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_scatterview.cpp.o.d"
  "/root/repo/tests/test_kokkos_team.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_team.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_team.cpp.o.d"
  "/root/repo/tests/test_kokkos_view.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_view.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_kokkos_view.cpp.o.d"
  "/root/repo/tests/test_lj.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_lj.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_lj.cpp.o.d"
  "/root/repo/tests/test_neighbor.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_neighbor.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_neighbor.cpp.o.d"
  "/root/repo/tests/test_perfmodel.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_perfmodel.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_perfmodel.cpp.o.d"
  "/root/repo/tests/test_reaxff.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_reaxff.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_reaxff.cpp.o.d"
  "/root/repo/tests/test_simmpi.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_simmpi.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_simmpi.cpp.o.d"
  "/root/repo/tests/test_snap_math.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_snap_math.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_snap_math.cpp.o.d"
  "/root/repo/tests/test_snap_pair.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_snap_pair.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_snap_pair.cpp.o.d"
  "/root/repo/tests/test_sparse_qeq.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_sparse_qeq.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_sparse_qeq.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/minilmp_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/minilmp_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_all.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_snap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_reaxff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_pair.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_kokkos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
