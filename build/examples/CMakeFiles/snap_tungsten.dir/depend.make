# Empty dependencies file for snap_tungsten.
# This may be replaced when dependencies are built.
