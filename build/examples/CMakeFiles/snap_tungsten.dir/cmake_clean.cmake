file(REMOVE_RECURSE
  "CMakeFiles/snap_tungsten.dir/snap_tungsten.cpp.o"
  "CMakeFiles/snap_tungsten.dir/snap_tungsten.cpp.o.d"
  "snap_tungsten"
  "snap_tungsten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_tungsten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
