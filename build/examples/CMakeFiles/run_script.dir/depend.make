# Empty dependencies file for run_script.
# This may be replaced when dependencies are built.
