file(REMOVE_RECURSE
  "CMakeFiles/run_script.dir/run_script.cpp.o"
  "CMakeFiles/run_script.dir/run_script.cpp.o.d"
  "run_script"
  "run_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
