file(REMOVE_RECURSE
  "CMakeFiles/multirank_scaling.dir/multirank_scaling.cpp.o"
  "CMakeFiles/multirank_scaling.dir/multirank_scaling.cpp.o.d"
  "multirank_scaling"
  "multirank_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirank_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
