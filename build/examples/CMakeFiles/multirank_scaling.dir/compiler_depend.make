# Empty compiler generated dependencies file for multirank_scaling.
# This may be replaced when dependencies are built.
