# Empty compiler generated dependencies file for reaxff_hns.
# This may be replaced when dependencies are built.
