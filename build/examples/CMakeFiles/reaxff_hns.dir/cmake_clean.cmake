file(REMOVE_RECURSE
  "CMakeFiles/reaxff_hns.dir/reaxff_hns.cpp.o"
  "CMakeFiles/reaxff_hns.dir/reaxff_hns.cpp.o.d"
  "reaxff_hns"
  "reaxff_hns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaxff_hns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
