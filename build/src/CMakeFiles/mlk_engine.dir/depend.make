# Empty dependencies file for mlk_engine.
# This may be replaced when dependencies are built.
