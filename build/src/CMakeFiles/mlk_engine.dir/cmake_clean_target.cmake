file(REMOVE_RECURSE
  "libmlk_engine.a"
)
