
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/atom.cpp" "src/CMakeFiles/mlk_engine.dir/engine/atom.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/atom.cpp.o.d"
  "/root/repo/src/engine/atom_vec_kokkos.cpp" "src/CMakeFiles/mlk_engine.dir/engine/atom_vec_kokkos.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/atom_vec_kokkos.cpp.o.d"
  "/root/repo/src/engine/comm_pair.cpp" "src/CMakeFiles/mlk_engine.dir/engine/comm_pair.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/comm_pair.cpp.o.d"
  "/root/repo/src/engine/compute_pressure.cpp" "src/CMakeFiles/mlk_engine.dir/engine/compute_pressure.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/compute_pressure.cpp.o.d"
  "/root/repo/src/engine/compute_rdf.cpp" "src/CMakeFiles/mlk_engine.dir/engine/compute_rdf.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/compute_rdf.cpp.o.d"
  "/root/repo/src/engine/compute_temp.cpp" "src/CMakeFiles/mlk_engine.dir/engine/compute_temp.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/compute_temp.cpp.o.d"
  "/root/repo/src/engine/domain.cpp" "src/CMakeFiles/mlk_engine.dir/engine/domain.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/domain.cpp.o.d"
  "/root/repo/src/engine/dump_xyz.cpp" "src/CMakeFiles/mlk_engine.dir/engine/dump_xyz.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/dump_xyz.cpp.o.d"
  "/root/repo/src/engine/fix_langevin.cpp" "src/CMakeFiles/mlk_engine.dir/engine/fix_langevin.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/fix_langevin.cpp.o.d"
  "/root/repo/src/engine/fix_langevin_kokkos.cpp" "src/CMakeFiles/mlk_engine.dir/engine/fix_langevin_kokkos.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/fix_langevin_kokkos.cpp.o.d"
  "/root/repo/src/engine/fix_nve.cpp" "src/CMakeFiles/mlk_engine.dir/engine/fix_nve.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/fix_nve.cpp.o.d"
  "/root/repo/src/engine/fix_nvt.cpp" "src/CMakeFiles/mlk_engine.dir/engine/fix_nvt.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/fix_nvt.cpp.o.d"
  "/root/repo/src/engine/input.cpp" "src/CMakeFiles/mlk_engine.dir/engine/input.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/input.cpp.o.d"
  "/root/repo/src/engine/lattice.cpp" "src/CMakeFiles/mlk_engine.dir/engine/lattice.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/lattice.cpp.o.d"
  "/root/repo/src/engine/neighbor.cpp" "src/CMakeFiles/mlk_engine.dir/engine/neighbor.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/neighbor.cpp.o.d"
  "/root/repo/src/engine/neighbor_kokkos.cpp" "src/CMakeFiles/mlk_engine.dir/engine/neighbor_kokkos.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/neighbor_kokkos.cpp.o.d"
  "/root/repo/src/engine/simulation.cpp" "src/CMakeFiles/mlk_engine.dir/engine/simulation.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/simulation.cpp.o.d"
  "/root/repo/src/engine/style_registry.cpp" "src/CMakeFiles/mlk_engine.dir/engine/style_registry.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/style_registry.cpp.o.d"
  "/root/repo/src/engine/thermo.cpp" "src/CMakeFiles/mlk_engine.dir/engine/thermo.cpp.o" "gcc" "src/CMakeFiles/mlk_engine.dir/engine/thermo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_kokkos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
