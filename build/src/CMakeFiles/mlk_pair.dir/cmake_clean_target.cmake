file(REMOVE_RECURSE
  "libmlk_pair.a"
)
