# Empty dependencies file for mlk_pair.
# This may be replaced when dependencies are built.
