
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pair/pair_eam.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_eam.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_eam.cpp.o.d"
  "/root/repo/src/pair/pair_eam_kokkos.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_eam_kokkos.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_eam_kokkos.cpp.o.d"
  "/root/repo/src/pair/pair_external.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_external.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_external.cpp.o.d"
  "/root/repo/src/pair/pair_lj_cut.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_lj_cut.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_lj_cut.cpp.o.d"
  "/root/repo/src/pair/pair_lj_cut_coul_cut.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_coul_cut.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_coul_cut.cpp.o.d"
  "/root/repo/src/pair/pair_lj_cut_kokkos.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_kokkos.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_kokkos.cpp.o.d"
  "/root/repo/src/pair/pair_table.cpp" "src/CMakeFiles/mlk_pair.dir/pair/pair_table.cpp.o" "gcc" "src/CMakeFiles/mlk_pair.dir/pair/pair_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_kokkos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
