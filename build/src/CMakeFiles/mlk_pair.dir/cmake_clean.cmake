file(REMOVE_RECURSE
  "CMakeFiles/mlk_pair.dir/pair/pair_eam.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_eam.cpp.o.d"
  "CMakeFiles/mlk_pair.dir/pair/pair_eam_kokkos.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_eam_kokkos.cpp.o.d"
  "CMakeFiles/mlk_pair.dir/pair/pair_external.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_external.cpp.o.d"
  "CMakeFiles/mlk_pair.dir/pair/pair_lj_cut.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_lj_cut.cpp.o.d"
  "CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_coul_cut.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_coul_cut.cpp.o.d"
  "CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_kokkos.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_lj_cut_kokkos.cpp.o.d"
  "CMakeFiles/mlk_pair.dir/pair/pair_table.cpp.o"
  "CMakeFiles/mlk_pair.dir/pair/pair_table.cpp.o.d"
  "libmlk_pair.a"
  "libmlk_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
