file(REMOVE_RECURSE
  "libmlk_util.a"
)
