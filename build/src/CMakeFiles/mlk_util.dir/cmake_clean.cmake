file(REMOVE_RECURSE
  "CMakeFiles/mlk_util.dir/util/error.cpp.o"
  "CMakeFiles/mlk_util.dir/util/error.cpp.o.d"
  "CMakeFiles/mlk_util.dir/util/random.cpp.o"
  "CMakeFiles/mlk_util.dir/util/random.cpp.o.d"
  "CMakeFiles/mlk_util.dir/util/string_utils.cpp.o"
  "CMakeFiles/mlk_util.dir/util/string_utils.cpp.o.d"
  "CMakeFiles/mlk_util.dir/util/timer.cpp.o"
  "CMakeFiles/mlk_util.dir/util/timer.cpp.o.d"
  "libmlk_util.a"
  "libmlk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
