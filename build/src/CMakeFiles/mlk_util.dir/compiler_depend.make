# Empty compiler generated dependencies file for mlk_util.
# This may be replaced when dependencies are built.
