file(REMOVE_RECURSE
  "libmlk_perfmodel.a"
)
