# Empty compiler generated dependencies file for mlk_perfmodel.
# This may be replaced when dependencies are built.
