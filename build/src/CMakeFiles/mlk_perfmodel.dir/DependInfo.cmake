
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/archdb.cpp" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/archdb.cpp.o" "gcc" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/archdb.cpp.o.d"
  "/root/repo/src/perfmodel/counters.cpp" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/counters.cpp.o" "gcc" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/counters.cpp.o.d"
  "/root/repo/src/perfmodel/gpumodel.cpp" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/gpumodel.cpp.o" "gcc" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/gpumodel.cpp.o.d"
  "/root/repo/src/perfmodel/network.cpp" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/network.cpp.o" "gcc" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/network.cpp.o.d"
  "/root/repo/src/perfmodel/report.cpp" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/report.cpp.o" "gcc" "src/CMakeFiles/mlk_perfmodel.dir/perfmodel/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_all.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_snap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_reaxff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_pair.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_kokkos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
