file(REMOVE_RECURSE
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/archdb.cpp.o"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/archdb.cpp.o.d"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/counters.cpp.o"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/counters.cpp.o.d"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/gpumodel.cpp.o"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/gpumodel.cpp.o.d"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/network.cpp.o"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/network.cpp.o.d"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/report.cpp.o"
  "CMakeFiles/mlk_perfmodel.dir/perfmodel/report.cpp.o.d"
  "libmlk_perfmodel.a"
  "libmlk_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
