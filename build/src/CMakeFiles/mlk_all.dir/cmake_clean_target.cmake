file(REMOVE_RECURSE
  "libmlk_all.a"
)
