file(REMOVE_RECURSE
  "CMakeFiles/mlk_all.dir/init_all.cpp.o"
  "CMakeFiles/mlk_all.dir/init_all.cpp.o.d"
  "libmlk_all.a"
  "libmlk_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
