# Empty compiler generated dependencies file for mlk_all.
# This may be replaced when dependencies are built.
