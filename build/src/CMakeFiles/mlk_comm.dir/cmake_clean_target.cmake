file(REMOVE_RECURSE
  "libmlk_comm.a"
)
