file(REMOVE_RECURSE
  "CMakeFiles/mlk_comm.dir/comm/decomposition.cpp.o"
  "CMakeFiles/mlk_comm.dir/comm/decomposition.cpp.o.d"
  "CMakeFiles/mlk_comm.dir/comm/simmpi.cpp.o"
  "CMakeFiles/mlk_comm.dir/comm/simmpi.cpp.o.d"
  "libmlk_comm.a"
  "libmlk_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
