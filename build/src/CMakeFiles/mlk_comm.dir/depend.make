# Empty dependencies file for mlk_comm.
# This may be replaced when dependencies are built.
