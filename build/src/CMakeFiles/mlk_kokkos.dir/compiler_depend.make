# Empty compiler generated dependencies file for mlk_kokkos.
# This may be replaced when dependencies are built.
