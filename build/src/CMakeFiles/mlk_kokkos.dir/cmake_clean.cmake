file(REMOVE_RECURSE
  "CMakeFiles/mlk_kokkos.dir/kokkos/core.cpp.o"
  "CMakeFiles/mlk_kokkos.dir/kokkos/core.cpp.o.d"
  "CMakeFiles/mlk_kokkos.dir/kokkos/threadpool.cpp.o"
  "CMakeFiles/mlk_kokkos.dir/kokkos/threadpool.cpp.o.d"
  "libmlk_kokkos.a"
  "libmlk_kokkos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_kokkos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
