
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kokkos/core.cpp" "src/CMakeFiles/mlk_kokkos.dir/kokkos/core.cpp.o" "gcc" "src/CMakeFiles/mlk_kokkos.dir/kokkos/core.cpp.o.d"
  "/root/repo/src/kokkos/threadpool.cpp" "src/CMakeFiles/mlk_kokkos.dir/kokkos/threadpool.cpp.o" "gcc" "src/CMakeFiles/mlk_kokkos.dir/kokkos/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
