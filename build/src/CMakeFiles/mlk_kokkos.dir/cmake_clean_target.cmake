file(REMOVE_RECURSE
  "libmlk_kokkos.a"
)
