# Empty compiler generated dependencies file for mlk_snap.
# This may be replaced when dependencies are built.
