
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snap/clebsch_gordan.cpp" "src/CMakeFiles/mlk_snap.dir/snap/clebsch_gordan.cpp.o" "gcc" "src/CMakeFiles/mlk_snap.dir/snap/clebsch_gordan.cpp.o.d"
  "/root/repo/src/snap/compute_snap_bispectrum.cpp" "src/CMakeFiles/mlk_snap.dir/snap/compute_snap_bispectrum.cpp.o" "gcc" "src/CMakeFiles/mlk_snap.dir/snap/compute_snap_bispectrum.cpp.o.d"
  "/root/repo/src/snap/pair_snap.cpp" "src/CMakeFiles/mlk_snap.dir/snap/pair_snap.cpp.o" "gcc" "src/CMakeFiles/mlk_snap.dir/snap/pair_snap.cpp.o.d"
  "/root/repo/src/snap/pair_snap_kokkos.cpp" "src/CMakeFiles/mlk_snap.dir/snap/pair_snap_kokkos.cpp.o" "gcc" "src/CMakeFiles/mlk_snap.dir/snap/pair_snap_kokkos.cpp.o.d"
  "/root/repo/src/snap/sna.cpp" "src/CMakeFiles/mlk_snap.dir/snap/sna.cpp.o" "gcc" "src/CMakeFiles/mlk_snap.dir/snap/sna.cpp.o.d"
  "/root/repo/src/snap/sna_kernels.cpp" "src/CMakeFiles/mlk_snap.dir/snap/sna_kernels.cpp.o" "gcc" "src/CMakeFiles/mlk_snap.dir/snap/sna_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_pair.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_kokkos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
