file(REMOVE_RECURSE
  "CMakeFiles/mlk_snap.dir/snap/clebsch_gordan.cpp.o"
  "CMakeFiles/mlk_snap.dir/snap/clebsch_gordan.cpp.o.d"
  "CMakeFiles/mlk_snap.dir/snap/compute_snap_bispectrum.cpp.o"
  "CMakeFiles/mlk_snap.dir/snap/compute_snap_bispectrum.cpp.o.d"
  "CMakeFiles/mlk_snap.dir/snap/pair_snap.cpp.o"
  "CMakeFiles/mlk_snap.dir/snap/pair_snap.cpp.o.d"
  "CMakeFiles/mlk_snap.dir/snap/pair_snap_kokkos.cpp.o"
  "CMakeFiles/mlk_snap.dir/snap/pair_snap_kokkos.cpp.o.d"
  "CMakeFiles/mlk_snap.dir/snap/sna.cpp.o"
  "CMakeFiles/mlk_snap.dir/snap/sna.cpp.o.d"
  "CMakeFiles/mlk_snap.dir/snap/sna_kernels.cpp.o"
  "CMakeFiles/mlk_snap.dir/snap/sna_kernels.cpp.o.d"
  "libmlk_snap.a"
  "libmlk_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
