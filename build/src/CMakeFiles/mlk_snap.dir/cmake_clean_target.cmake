file(REMOVE_RECURSE
  "libmlk_snap.a"
)
