file(REMOVE_RECURSE
  "libmlk_reaxff.a"
)
