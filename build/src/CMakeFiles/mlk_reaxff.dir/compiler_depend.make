# Empty compiler generated dependencies file for mlk_reaxff.
# This may be replaced when dependencies are built.
