
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reaxff/angle.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/angle.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/angle.cpp.o.d"
  "/root/repo/src/reaxff/bond_order.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/bond_order.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/bond_order.cpp.o.d"
  "/root/repo/src/reaxff/nonbonded.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/nonbonded.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/nonbonded.cpp.o.d"
  "/root/repo/src/reaxff/pair_reaxff_lite.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/pair_reaxff_lite.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/pair_reaxff_lite.cpp.o.d"
  "/root/repo/src/reaxff/qeq.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/qeq.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/qeq.cpp.o.d"
  "/root/repo/src/reaxff/sparse.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/sparse.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/sparse.cpp.o.d"
  "/root/repo/src/reaxff/torsion.cpp" "src/CMakeFiles/mlk_reaxff.dir/reaxff/torsion.cpp.o" "gcc" "src/CMakeFiles/mlk_reaxff.dir/reaxff/torsion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlk_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_pair.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_kokkos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
