file(REMOVE_RECURSE
  "CMakeFiles/mlk_reaxff.dir/reaxff/angle.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/angle.cpp.o.d"
  "CMakeFiles/mlk_reaxff.dir/reaxff/bond_order.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/bond_order.cpp.o.d"
  "CMakeFiles/mlk_reaxff.dir/reaxff/nonbonded.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/nonbonded.cpp.o.d"
  "CMakeFiles/mlk_reaxff.dir/reaxff/pair_reaxff_lite.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/pair_reaxff_lite.cpp.o.d"
  "CMakeFiles/mlk_reaxff.dir/reaxff/qeq.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/qeq.cpp.o.d"
  "CMakeFiles/mlk_reaxff.dir/reaxff/sparse.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/sparse.cpp.o.d"
  "CMakeFiles/mlk_reaxff.dir/reaxff/torsion.cpp.o"
  "CMakeFiles/mlk_reaxff.dir/reaxff/torsion.cpp.o.d"
  "libmlk_reaxff.a"
  "libmlk_reaxff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlk_reaxff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
