file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pair_only.dir/bench_ablation_pair_only.cpp.o"
  "CMakeFiles/bench_ablation_pair_only.dir/bench_ablation_pair_only.cpp.o.d"
  "bench_ablation_pair_only"
  "bench_ablation_pair_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pair_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
