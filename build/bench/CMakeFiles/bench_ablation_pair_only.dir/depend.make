# Empty dependencies file for bench_ablation_pair_only.
# This may be replaced when dependencies are built.
