file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_batching.dir/bench_table2_batching.cpp.o"
  "CMakeFiles/bench_table2_batching.dir/bench_table2_batching.cpp.o.d"
  "bench_table2_batching"
  "bench_table2_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
