file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lj_options.dir/bench_fig2_lj_options.cpp.o"
  "CMakeFiles/bench_fig2_lj_options.dir/bench_fig2_lj_options.cpp.o.d"
  "bench_fig2_lj_options"
  "bench_fig2_lj_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lj_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
