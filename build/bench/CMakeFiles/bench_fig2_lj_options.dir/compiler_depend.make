# Empty compiler generated dependencies file for bench_fig2_lj_options.
# This may be replaced when dependencies are built.
