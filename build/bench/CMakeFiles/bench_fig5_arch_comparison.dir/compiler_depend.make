# Empty compiler generated dependencies file for bench_fig5_arch_comparison.
# This may be replaced when dependencies are built.
