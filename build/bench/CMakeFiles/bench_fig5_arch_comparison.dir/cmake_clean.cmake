file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_arch_comparison.dir/bench_fig5_arch_comparison.cpp.o"
  "CMakeFiles/bench_fig5_arch_comparison.dir/bench_fig5_arch_comparison.cpp.o.d"
  "bench_fig5_arch_comparison"
  "bench_fig5_arch_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_arch_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
