# Empty dependencies file for bench_fig3_carveout.
# This may be replaced when dependencies are built.
