file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_carveout.dir/bench_fig3_carveout.cpp.o"
  "CMakeFiles/bench_fig3_carveout.dir/bench_fig3_carveout.cpp.o.d"
  "bench_fig3_carveout"
  "bench_fig3_carveout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_carveout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
