# Empty dependencies file for bench_ablation_scatter.
# This may be replaced when dependencies are built.
