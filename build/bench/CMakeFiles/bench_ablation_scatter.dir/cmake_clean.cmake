file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scatter.dir/bench_ablation_scatter.cpp.o"
  "CMakeFiles/bench_ablation_scatter.dir/bench_ablation_scatter.cpp.o.d"
  "bench_ablation_scatter"
  "bench_ablation_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
