file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_archdb.dir/bench_table1_archdb.cpp.o"
  "CMakeFiles/bench_table1_archdb.dir/bench_table1_archdb.cpp.o.d"
  "bench_table1_archdb"
  "bench_table1_archdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_archdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
