# Empty dependencies file for bench_table1_archdb.
# This may be replaced when dependencies are built.
