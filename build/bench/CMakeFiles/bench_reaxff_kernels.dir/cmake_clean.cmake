file(REMOVE_RECURSE
  "CMakeFiles/bench_reaxff_kernels.dir/bench_reaxff_kernels.cpp.o"
  "CMakeFiles/bench_reaxff_kernels.dir/bench_reaxff_kernels.cpp.o.d"
  "bench_reaxff_kernels"
  "bench_reaxff_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reaxff_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
