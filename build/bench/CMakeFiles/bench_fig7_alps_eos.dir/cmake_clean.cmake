file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_alps_eos.dir/bench_fig7_alps_eos.cpp.o"
  "CMakeFiles/bench_fig7_alps_eos.dir/bench_fig7_alps_eos.cpp.o.d"
  "bench_fig7_alps_eos"
  "bench_fig7_alps_eos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_alps_eos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
