# Empty compiler generated dependencies file for bench_fig7_alps_eos.
# This may be replaced when dependencies are built.
