file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_saturation.dir/bench_fig4_saturation.cpp.o"
  "CMakeFiles/bench_fig4_saturation.dir/bench_fig4_saturation.cpp.o.d"
  "bench_fig4_saturation"
  "bench_fig4_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
