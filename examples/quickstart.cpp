// quickstart — the classic LAMMPS "melt" benchmark in ~30 lines.
//
// Builds an fcc Lennard-Jones crystal at reduced density 0.8442, gives it a
// Maxwell-Boltzmann velocity distribution at T* = 1.44, and integrates NVE
// with the Kokkos-accelerated pair style (suffix /kk, §3.1), printing thermo
// output every 50 steps. Energy should be conserved to ~0.1%.
//
// Usage: quickstart [cells] [steps]
#include <cstdio>
#include <cstdlib>

#include "minilammps.hpp"

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 6;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 250;

  mlk::init_all();
  mlk::Simulation sim;
  mlk::Input in(sim);

  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms " + std::to_string(cells) + " " +
          std::to_string(cells) + " " + std::to_string(cells));
  in.line("mass 1 1.0");
  in.line("velocity all create 1.44 87287");
  in.line("suffix kk");                 // use Kokkos styles everywhere
  in.line("pair_style lj/cut 2.5");     // resolves to lj/cut/kk
  in.line("pair_coeff * * 1.0 1.0");
  in.line("neighbor 0.3 bin");
  in.line("neigh_modify every 20 check yes");
  in.line("fix 1 all nve");
  in.line("thermo 50");
  in.line("run " + std::to_string(steps));

  std::printf("\n%lld atoms, %d steps, pair style %s\n",
              static_cast<long long>(sim.atom.natoms), steps,
              sim.pair->style_name.c_str());
  std::printf("Timing breakdown (s): Pair %.3f  Neigh %.3f  Comm %.3f\n",
              sim.timers.total("Pair"), sim.timers.total("Neigh"),
              sim.timers.total("Comm"));
  return 0;
}
