// multirank_scaling — runs the same LJ melt decomposed across 1, 2, 4 and 8
// simulated MPI ranks (simmpi: the paper's one-rank-per-GPU domain
// decomposition, §5.2, with ranks as threads) and verifies that the physics
// is rank-count independent while showing the halo/exchange machinery at
// work.
//
// Usage: multirank_scaling [cells] [steps]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "minilammps.hpp"

namespace {

struct Result {
  double etotal = 0.0;
  double temp = 0.0;
  mlk::bigint natoms = 0;
  int nghost_rank0 = 0;
};

Result run_on(int nranks, int cells, int steps) {
  mlk::init_all();
  Result out;
  std::mutex mu;
  simmpi::World world(nranks);
  world.run([&](simmpi::Comm& comm) {
    mlk::Simulation sim;
    sim.mpi = nranks > 1 ? &comm : nullptr;
    sim.thermo.print = false;
    mlk::Input in(sim);
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    const std::string c = std::to_string(cells);
    in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.02 771");
    in.line("mass 1 1.0");
    in.line("velocity all create 1.44 87287");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("fix 1 all nve");
    in.line("thermo " + std::to_string(steps));
    in.line("run " + std::to_string(steps));
    // Collectives must run on every rank; only rank 0 records the result.
    const mlk::bigint natoms = sim.global_natoms();
    std::lock_guard<std::mutex> lk(mu);
    if (comm.rank() == 0) {
      out.etotal = sim.thermo.rows().back().etotal;
      out.temp = sim.thermo.rows().back().temp;
      out.natoms = natoms;
      out.nghost_rank0 = sim.atom.nghost;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 5;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;

  std::printf("LJ melt, %d^3 fcc cells, %d steps, decomposed over simulated "
              "MPI ranks:\n\n", cells, steps);
  std::printf("%7s %12s %14s %12s %14s\n", "ranks", "atoms", "TotEng", "Temp",
              "ghosts(rank0)");
  double e1 = 0.0;
  for (int p : {1, 2, 4, 8}) {
    const Result r = run_on(p, cells, steps);
    if (p == 1) e1 = r.etotal;
    std::printf("%7d %12lld %14.8f %12.6f %14d\n", p,
                static_cast<long long>(r.natoms), r.etotal, r.temp,
                r.nghost_rank0);
    if (std::abs(r.etotal - e1) > 1e-6 * std::abs(e1)) {
      std::printf("  WARNING: trajectory diverged from the serial run!\n");
      return 1;
    }
  }
  std::printf("\nTotal energy is identical across decompositions: the halo "
              "exchange, reverse force communication, and atom migration "
              "reproduce the serial trajectory (up to floating-point summation order).\n");
  return 0;
}
