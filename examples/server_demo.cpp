// Batch-server demo (docs/SERVER.md): submit four independent LJ melt jobs
// of different sizes/temperatures to the scheduler, let it multiplex them
// over the shared device with cross-job fused force launches, then verify
// each job completed with sane, energy-conserving thermo output.
//
// Exits 0 and prints "server demo: OK" on success — run_tier1.sh --server
// and the server_smoke ctest entry key off that.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "minilammps.hpp"
#include "server/scheduler.hpp"

using namespace mlk;
using namespace mlk::server;

namespace {

JobSpec melt_job(const std::string& name, int cells, double temp,
                 bigint steps) {
  const std::string c = std::to_string(cells);
  JobSpec spec;
  spec.name = name;
  spec.setup = {
      "units lj",
      "lattice fcc 0.8442",
      "create_atoms " + c + " " + c + " " + c + " jitter 0.05 78123",
      "mass 1 1.0",
      "velocity all create " + std::to_string(temp) + " 87287",
      "suffix kk",
      "pair_style lj/cut 2.5",
      "pair_coeff * * 1.0 1.0",
      "neighbor 0.3 bin",
      "neigh_modify every 10 check no",
      "fix 1 all nve",
      "thermo 10",
  };
  spec.steps = steps;
  return spec;
}

}  // namespace

int main() {
  init_all();

  JobQueue queue;
  queue.submit(melt_job("melt-3-hot", 3, 1.44, 50));
  queue.submit(melt_job("melt-3-cold", 3, 0.70, 50));
  queue.submit(melt_job("melt-4-warm", 4, 1.00, 50));
  queue.submit(melt_job("melt-3-mid", 3, 1.10, 50));
  queue.close();

  SchedulerConfig cfg;
  cfg.max_resident = 4;
  Scheduler scheduler(queue, cfg);
  scheduler.run();

  int failures = 0;
  for (const JobResult& r : scheduler.results()) {
    if (r.state != JobState::Completed) {
      std::printf("job %d '%s': %s (%s)\n", r.id, r.name.c_str(),
                  to_string(r.state), r.error.c_str());
      ++failures;
      continue;
    }
    const ThermoRow& first = r.thermo.front();
    const ThermoRow& last = r.thermo.back();
    const double drift = std::abs(last.etotal - first.etotal);
    const double tol = 1e-2 * std::max(1.0, std::abs(first.etotal));
    std::printf(
        "job %d '%s': %lld steps, finish_order %d, etotal %+.6f -> %+.6f\n",
        r.id, r.name.c_str(), static_cast<long long>(r.steps_done),
        r.finish_order, first.etotal, last.etotal);
    if (r.steps_done != 50 || last.step != 50) {
      std::printf("  FAIL: expected 50 steps\n");
      ++failures;
    }
    if (!(drift <= tol)) {
      std::printf("  FAIL: energy drift %.3g exceeds %.3g\n", drift, tol);
      ++failures;
    }
  }

  const auto& s = scheduler.stats();
  std::printf(
      "scheduler: %lld rounds, %lld job-steps, %lld fused launches covering "
      "%lld job-steps, %lld solo force phases\n",
      static_cast<long long>(s.rounds), static_cast<long long>(s.steps),
      static_cast<long long>(s.fused_launches),
      static_cast<long long>(s.fused_jobs),
      static_cast<long long>(s.solo_forces));
  if (s.fused_launches == 0) {
    std::printf("FAIL: no cross-job fused launches happened\n");
    ++failures;
  }

  if (failures > 0) {
    std::printf("server demo: FAILED (%d)\n", failures);
    return 1;
  }
  std::printf("server demo: OK\n");
  return 0;
}
