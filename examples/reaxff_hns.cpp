// reaxff_hns — the paper's key ReaxFF benchmark workload: a short NVE
// simulation of an HNS-like energetic molecular crystal (§4.2), printing
// the reactive-chemistry diagnostics the KOKKOS port optimizes around:
// dynamic bond counts, torsion-quad survival, and QEq convergence.
//
// Usage: reaxff_hns [cells] [steps]
#include <cstdio>
#include <cstdlib>

#include "minilammps.hpp"
#include "reaxff/pair_reaxff_lite.hpp"

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 3;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;

  mlk::init_all();
  mlk::Simulation sim;
  mlk::Input in(sim);

  in.line("units real");
  in.line("lattice hns_like 5.2");
  const std::string c = std::to_string(cells);
  in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.02 4411");
  in.line("mass 1 12.0");   // carbon-like backbone
  in.line("mass 2 16.0");   // oxygen-like substituent
  in.line("velocity all create 300.0 7123");
  in.line("pair_style reaxff-lite");
  in.line("pair_coeff * * hns");
  in.line("timestep 0.1");  // fs
  in.line("fix 1 all nve");
  in.line("thermo 10");
  in.line("run " + std::to_string(steps));

  auto* pair =
      dynamic_cast<mlk::PairReaxFFLite<kk::Host>*>(sim.pair.get());
  std::printf("\nReactive-chemistry diagnostics after %d steps:\n", steps);
  std::printf("  atoms                  : %lld\n",
              static_cast<long long>(sim.atom.natoms));
  std::printf("  dynamic bonds          : %lld (%.2f per atom)\n",
              static_cast<long long>(pair->bonds().total_bonds()),
              double(pair->bonds().total_bonds()) / double(sim.atom.nlocal));
  std::printf("  torsion quads          : %lld of %lld candidates (%.2f%%)\n",
              static_cast<long long>(pair->quads().count),
              static_cast<long long>(pair->quads().candidates),
              100.0 * pair->quads().survival_fraction());
  std::printf("  QEq CG iterations      : %d\n",
              pair->qeq().last_iterations());
  std::printf("  QEq matrix nonzeros    : %lld (over-allocated CSR, 64-bit "
              "row offsets)\n",
              static_cast<long long>(pair->qeq().matrix().total_nonzeros()));
  std::printf("  energy breakdown kcal/mol: bond %.1f angle %.1f torsion %.1f "
              "vdW %.1f coulomb %.1f\n",
              pair->last_ebond, pair->last_eangle, pair->last_etors,
              pair->last_evdw, pair->last_ecoul);
  return 0;
}
