// snap_tungsten — the paper's machine-learning potential case study (§4.3):
// bcc tungsten driven by the SNAP bispectrum potential, run with the Kokkos
// device pipeline (ComputeUi -> ComputeYi -> ComputeFusedDeidrj) and the
// Table 2 work-batching knobs exposed on the command line.
//
// Usage: snap_tungsten [cells] [steps] [twojmax] [ui_batch]
#include <cstdio>
#include <cstdlib>

#include "minilammps.hpp"
#include "snap/pair_snap_kokkos.hpp"

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const int twojmax = argc > 3 ? std::atoi(argv[3]) : 8;
  const int ui_batch = argc > 4 ? std::atoi(argv[4]) : 4;

  mlk::init_all();
  mlk::Simulation sim;
  mlk::Input in(sim);

  in.line("units metal");
  in.line("lattice bcc 3.16");  // tungsten lattice constant (A)
  const std::string c = std::to_string(cells);
  in.line("create_atoms " + c + " " + c + " " + c + " jitter 0.01 5511");
  in.line("mass 1 183.84");
  in.line("velocity all create 600.0 9182");
  in.line("pair_style snap/kk");  // Kokkos device pipeline
  in.line("pair_coeff * * 4.7 " + std::to_string(twojmax) + " 7771");
  in.line("timestep 0.0005");  // ps
  in.line("fix 1 all nve/kk");
  in.line("thermo 5");

  auto* pair =
      dynamic_cast<mlk::PairSNAPKokkos<kk::Device>*>(sim.pair.get());
  pair->set_ui_batch(ui_batch);

  in.line("run " + std::to_string(steps));

  const auto& idx = pair->kernels()->idx();
  std::printf("\nSNAP configuration:\n");
  std::printf("  twojmax=%d -> %d U components, %d Z entries, %d bispectrum "
              "coefficients\n",
              twojmax, idx.idxu_max, idx.idxz_max, idx.idxb_max);
  std::printf("  ComputeUi neighbor batch: %d (Table 2 knob)\n", ui_batch);
  std::printf("  energy conservation: compare TotEng across the thermo rows "
              "above (drift should be well under 0.1%%)\n");
  return 0;
}
