// run_script — a miniature `lmp` executable: runs a LAMMPS-style input
// script from a file (or, with no argument, a built-in LJ melt script),
// demonstrating the §2.1 command -> C++ class mapping end to end.
//
// Usage: run_script [input.lmp]
#include <cstdio>

#include "minilammps.hpp"

namespace {
const char* kBuiltin[] = {
    "units lj",
    "lattice fcc 0.8442",
    "create_atoms 5 5 5",
    "mass 1 1.0",
    "velocity all create 1.44 87287",
    "suffix kk",
    "pair_style lj/cut 2.5",
    "pair_coeff * * 1.0 1.0",
    "neighbor 0.3 bin",
    "neigh_modify every 20 check yes",
    "fix 1 all nve",
    "thermo 50",
    "run 100",
};
}  // namespace

int main(int argc, char** argv) {
  mlk::init_all();
  mlk::Simulation sim;
  mlk::Input in(sim);
  try {
    if (argc > 1) {
      std::printf("# running script: %s\n", argv[1]);
      in.file(argv[1]);
    } else {
      std::printf("# no script given; running the built-in LJ melt\n");
      for (const char* line : kBuiltin) {
        std::printf("> %s\n", line);
        in.line(line);
      }
    }
  } catch (const mlk::Error& e) {
    std::fprintf(stderr, "ERROR: %s\n", e.what());
    return 1;
  }
  return 0;
}
