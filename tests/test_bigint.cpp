// Appendix B regression tests: exascale-preparedness against 32-bit integer
// overflow — 64-bit scan offsets, 2-D neighbor tables, and the typed
// bigint plumbing.
#include <gtest/gtest.h>

#include <limits>

#include "kokkos/core.hpp"
#include "reaxff/sparse.hpp"
#include "util/types.hpp"

namespace mlk {
namespace {

TEST(BigInt, TypesAre64Bit) {
  static_assert(sizeof(bigint) == 8);
  static_assert(sizeof(tagint) == 8);
  // Row offsets of the over-allocated CSR are bigint (Appendix B: only the
  // cumulative offsets can overflow; columns and counts stay 32-bit).
  static_assert(
      std::is_same_v<decltype(reaxff::OACSR<kk::Host>{}.row_offset(0)),
                     bigint&>);
  static_assert(
      std::is_same_v<decltype(reaxff::OACSR<kk::Host>{}.row_count(0)), int&>);
}

TEST(BigInt, ScanAccumulatesPast32Bits) {
  // A cumulative neighbor-count scan whose total exceeds 2^31 — exactly the
  // quantity that overflowed in production ReaxFF runs (Appendix B). Each
  // of 1e6 rows contributes 4000 "neighbors": total 4e9 > 2^31.
  const std::size_t rows = 1000000;
  const bigint per_row = 4000;
  bigint total = 0;
  bigint last_offset = -1;
  kk::parallel_scan("bigint_scan", kk::RangePolicy<kk::Host>(0, rows),
                    [&](std::size_t i, bigint& update, bool final) {
                      if (final && i == rows - 1) last_offset = update;
                      update += per_row;
                    },
                    total);
  EXPECT_EQ(total, bigint(4000000000));
  EXPECT_GT(total, bigint(std::numeric_limits<std::int32_t>::max()));
  EXPECT_EQ(last_offset, total - per_row);
}

TEST(BigInt, DeviceScanAlsoPast32Bits) {
  const std::size_t rows = 500000;
  bigint total = 0;
  kk::parallel_scan("bigint_scan_dev", kk::RangePolicy<kk::Device>(0, rows),
                    [&](std::size_t, bigint& update, bool) { update += 9000; },
                    total);
  EXPECT_EQ(total, bigint(4500000000));
}

TEST(BigInt, TwoDNeighborTableAvoidsFlatIndexOverflow) {
  // The Appendix B refactor: a (rows x width) 2-D table indexes with two
  // 32-bit-safe coordinates even when rows*width exceeds 2^31. We verify
  // the indexing arithmetic (not a 17 GB allocation): with LayoutRight the
  // element offset is computed in size_t, never through int.
  const std::size_t rows = 70000, width = 35000;  // rows*width = 2.45e9
  static_assert(sizeof(std::size_t) == 8);
  // Offset of the last element must exceed INT32_MAX without wrapping.
  const std::size_t last = (rows - 1) * width + (width - 1);
  EXPECT_GT(last, std::size_t(std::numeric_limits<std::int32_t>::max()));
  // Spot-check the View stride math on a small table with the same types.
  kk::View<int, 2> t("t", 3, 5);
  t(2, 4) = 42;
  EXPECT_EQ(t.data()[2 * 5 + 4], 42);
}

TEST(BigInt, GlobalAtomCountArithmetic) {
  // 8192 nodes x 8 GCDs x 40M atoms/GCD > 2^31 atoms.
  const bigint per_gpu = 40000000;
  const bigint total = bigint(8192) * 8 * per_gpu;
  EXPECT_EQ(total, bigint(2621440000000));
  EXPECT_GT(total, bigint(std::numeric_limits<std::int32_t>::max()));
}

}  // namespace
}  // namespace mlk
