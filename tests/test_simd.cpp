// kk::simd pack-layer unit tests plus scalar-vs-SIMD equivalence per the
// policy table in docs/VECTORIZATION.md: bitwise where the port preserves
// the scalar operation order, tolerance where lane reductions reassociate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "kokkos/simd.hpp"
#include "snap/sna_recursion.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using pd = kk::simd<double, 4>;
using pm = kk::simd_mask<4>;

/// Restores the runtime SIMD toggle on scope exit so tests can flip it
/// freely without leaking state into other suites (default is off).
struct SimdGuard {
  bool was = kk::simd_enabled();
  ~SimdGuard() { kk::set_simd_enabled(was); }
};

TEST(SimdPack, BroadcastLoadStoreRoundTrip) {
  const double src[4] = {1.5, -2.0, 3.25, 0.0};
  double dst[4] = {0, 0, 0, 0};
  pd::load(src).store(dst);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(src[l], dst[l]);

  const pd b(7.5);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(b[l], 7.5);
}

TEST(SimdPack, ArithmeticIsLanewiseExact) {
  const double av[4] = {1.0, -2.5, 1e-3, 4.0};
  const double bv[4] = {3.0, 0.5, -7.0, 0.125};
  const pd a = pd::load(av), b = pd::load(bv);
  const pd sum = a + b, diff = a - b, prod = a * b, quot = a / b;
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(sum[l], av[l] + bv[l]);
    EXPECT_EQ(diff[l], av[l] - bv[l]);
    EXPECT_EQ(prod[l], av[l] * bv[l]);
    EXPECT_EQ(quot[l], av[l] / bv[l]);
    EXPECT_EQ((-a)[l], -av[l]);
    EXPECT_EQ((a * 2.0)[l], av[l] * 2.0);
    EXPECT_EQ((1.0 / b)[l], 1.0 / bv[l]);
  }
  pd c = a;
  c += b;
  c *= a;
  for (int l = 0; l < 4; ++l) EXPECT_EQ(c[l], (av[l] + bv[l]) * av[l]);
}

TEST(SimdPack, ComparisonsAndSelect) {
  const pd a = pd::iota(0.0);  // 0 1 2 3
  const pm lt = a < pd(2.0);
  EXPECT_TRUE(lt[0]);
  EXPECT_TRUE(lt[1]);
  EXPECT_FALSE(lt[2]);
  EXPECT_FALSE(lt[3]);
  EXPECT_EQ(lt.count(), 2);
  EXPECT_TRUE(lt.any());
  EXPECT_FALSE(lt.all());
  EXPECT_FALSE(lt.none());

  const pd blended = kk::select(lt, pd(1.0), pd(-1.0));
  for (int l = 0; l < 4; ++l) EXPECT_EQ(blended[l], l < 2 ? 1.0 : -1.0);
}

TEST(SimdPack, GatherMatchesScalarReference) {
  const double table[8] = {10, 11, 12, 13, 14, 15, 16, 17};
  const int map[4] = {6, 0, 3, 5};
  const pd g = pd::gather([&](int l) { return table[map[l]]; });
  for (int l = 0; l < 4; ++l) EXPECT_EQ(g[l], table[map[l]]);
}

TEST(SimdPack, MaskedGatherNeverTouchesInactiveLanes) {
  int calls = 0;
  const pm m = pm::first(2);
  const pd g = pd::gather_masked(m, [&](int l) {
    ++calls;
    return double(l + 1);
  }, -9.0);
  EXPECT_EQ(calls, 2);  // inactive sources must not be dereferenced
  EXPECT_EQ(g[0], 1.0);
  EXPECT_EQ(g[1], 2.0);
  EXPECT_EQ(g[2], -9.0);
  EXPECT_EQ(g[3], -9.0);
}

TEST(SimdPack, ReduceSumIsLaneOrdered) {
  // Values whose sum depends on association order: only the documented
  // lane-0-first order yields 1.0.
  pd a;
  a.set_lane(0, 1e16);
  a.set_lane(1, 1.0);
  a.set_lane(2, -1e16);
  a.set_lane(3, 1.0);
  EXPECT_EQ(kk::reduce_sum(a), ((1e16 + 1.0) + -1e16) + 1.0);
  EXPECT_EQ(kk::reduce_max(pd::iota(-3.0)), 0.0);
}

TEST(SimdPack, MaskedReductionSkipsInactive) {
  pd a = pd::iota(1.0);  // 1 2 3 4
  EXPECT_EQ(kk::reduce_sum_masked(pm::first(3), a), 6.0);
  EXPECT_EQ(kk::reduce_sum_masked(pm(false), a), 0.0);  // all-false mask
  // Signed zero: a skipped scalar loop never adds +0.0, so a single active
  // -0.0 lane must stay -0.0 (seeded, not accumulated onto +0.0).
  pd z;
  z.set_lane(0, -0.0);
  EXPECT_TRUE(std::signbit(kk::reduce_sum_masked(pm::first(1), z)));
}

TEST(SimdPack, MathFunctionsAreLanewise) {
  const pd a = pd::iota(1.0);
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(kk::sqrt(a)[l], std::sqrt(double(l + 1)));
    EXPECT_EQ(kk::exp(a)[l], std::exp(double(l + 1)));
  }
  EXPECT_EQ(kk::min(pd(2.0), pd::iota(0.0))[3], 2.0);
  EXPECT_EQ(kk::max(pd(2.0), pd::iota(0.0))[3], 3.0);
}

TEST(SimdMask, FirstAndLogicalOps) {
  EXPECT_TRUE(pm::first(0).none());
  EXPECT_TRUE(pm::first(4).all());
  const pm a = pm::first(3), b = !pm::first(1);
  const pm both = a && b;  // lanes 1, 2
  EXPECT_FALSE(both[0]);
  EXPECT_TRUE(both[1]);
  EXPECT_TRUE(both[2]);
  EXPECT_FALSE(both[3]);
  EXPECT_EQ((a || b).count(), 4);
}

TEST(SimdWhere, MaskedAccumulateLeavesInactiveLanesUntouched) {
  pd acc(1.0);
  kk::where(pm::first(2), acc) += pd(10.0);
  EXPECT_EQ(acc[0], 11.0);
  EXPECT_EQ(acc[1], 11.0);
  EXPECT_EQ(acc[2], 1.0);
  EXPECT_EQ(acc[3], 1.0);

  // All-false mask: a no-op even when the contribution is poisonous.
  pd poisoned(0.0);
  kk::where(pm(false), poisoned) += pd(std::numeric_limits<double>::quiet_NaN());
  for (int l = 0; l < 4; ++l) EXPECT_EQ(poisoned[l], 0.0);
}

TEST(SimdWhere, RemainderLoopMatchesScalarSum) {
  // The canonical remainder pattern: 7 elements in W=4 chunks, masked tail.
  const double v[7] = {0.5, 1.25, -2.0, 3.0, 4.5, -0.75, 2.25};
  double scalar = 0.0;
  for (double e : v) scalar += e * e;

  pd acc;
  const int nfull = 7 & ~3;
  for (int i = 0; i < nfull; i += 4) {
    const pd p = pd::load(v + i);
    acc += p * p;
  }
  const pm tail = pm::first(7 - nfull);
  const pd p = pd::load_masked(v + nfull, tail);
  kk::where(tail, acc) += p * p;
  EXPECT_NEAR(kk::reduce_sum(acc), scalar, 1e-15 * std::abs(scalar));
}

TEST(SimdWidthOne, IsTheScalarReferencePath) {
  using p1 = kk::simd<double, 1>;
  const p1 a(3.0), b(4.0);
  EXPECT_EQ((a * b + a)[0], 3.0 * 4.0 + 3.0);
  EXPECT_EQ(kk::reduce_sum(a), 3.0);
  kk::simd_mask<1> m(true);
  EXPECT_TRUE(m.all());
  EXPECT_EQ(kk::select(m, a, b)[0], 3.0);
}

TEST(SimdStats, LaunchCountersAccumulate) {
  kk::simdstats::reset();
  kk::simdstats::count_launch("TestKernel");
  kk::simdstats::count_launch("TestKernel");
  const auto launches = kk::simdstats::launches();
  ASSERT_EQ(launches.count("TestKernel"), 1u);
  EXPECT_EQ(launches.at("TestKernel"), 2u);
  EXPECT_NE(kk::simdstats::json_fragment().find("\"width\""), std::string::npos);
  kk::simdstats::reset();
  EXPECT_TRUE(kk::simdstats::launches().empty());
}

TEST(SimdInput, ScriptCommandTogglesPackPath) {
  SimdGuard guard;
  init_all();
  Simulation sim;
  Input in(sim);
  in.line("simd on");
  EXPECT_TRUE(kk::simd_enabled());
  in.line("simd off");
  EXPECT_FALSE(kk::simd_enabled());
}

// --- SNAP Z-entry lane evaluation vs the scalar triple product -------------

TEST(SimdSnap, ZEntryLanesBitwiseMatchScalarPerLane) {
  snap::SnaIndexes idx;
  idx.build(6);
  // Synthetic U tables for 4 "atoms": smooth deterministic values.
  const int n = idx.idxu_max;
  std::vector<double> ur(std::size_t(4 * n)), ui(std::size_t(4 * n));
  for (int a = 0; a < 4; ++a)
    for (int k = 0; k < n; ++k) {
      ur[std::size_t(a * n + k)] = std::sin(0.1 * k + a) / (1.0 + 0.01 * k);
      ui[std::size_t(a * n + k)] = std::cos(0.07 * k - a) * 0.5;
    }
  for (int jjz = 0; jjz < idx.idxz_max; jjz += 7) {
    const auto& e = idx.idxz[std::size_t(jjz)];
    pd zr_l, zi_l;
    snap::compute_z_entry_lanes<4>(
        idx, e,
        [&](int k) {
          return pd::gather([&](int l) { return ur[std::size_t(l * n + k)]; });
        },
        [&](int k) {
          return pd::gather([&](int l) { return ui[std::size_t(l * n + k)]; });
        },
        &zr_l, &zi_l);
    for (int l = 0; l < 4; ++l) {
      double zr_s, zi_s;
      snap::compute_z_entry(
          idx, e, [&](int k) { return ur[std::size_t(l * n + k)]; },
          [&](int k) { return ui[std::size_t(l * n + k)]; }, &zr_s, &zi_s);
      // Lanes repeat the scalar op sequence exactly: bitwise policy.
      EXPECT_EQ(zr_l[l], zr_s) << "jjz " << jjz << " lane " << l;
      EXPECT_EQ(zi_l[l], zi_s) << "jjz " << jjz << " lane " << l;
    }
  }
}

// --- Scalar-vs-SIMD trajectory equivalence ---------------------------------

struct MeltState {
  double pe = 0.0;
  std::vector<double> x;
};

MeltState run_melt(bool simd) {
  SimdGuard guard;
  kk::set_simd_enabled(simd);
  auto sim = testing::make_lj_system(4, 0.8442, 0.05, "lj/cut/kk", 1.44);
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("run 40");
  MeltState out;
  out.pe = testing::total_pe(*sim);
  sim->atom.sync<kk::Host>(X_MASK);
  auto x = sim->atom.k_x.h_view;
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      out.x.push_back(x(std::size_t(i), std::size_t(d)));
  return out;
}

TEST(SimdEquivalence, MeltTrajectoryMatchesScalarWithinTolerance) {
  // LJ rows reduce i-side sums across lanes (tolerance policy): after 40
  // NVE steps the trajectories must agree to well below thermo precision.
  const MeltState scalar = run_melt(false);
  const MeltState simd = run_melt(true);
  ASSERT_EQ(scalar.x.size(), simd.x.size());
  EXPECT_NEAR(simd.pe, scalar.pe, 1e-8 * std::abs(scalar.pe));
  for (std::size_t k = 0; k < scalar.x.size(); ++k)
    EXPECT_NEAR(simd.x[k], scalar.x[k], 1e-8)
        << "coordinate " << k << " diverged";
}

std::vector<double> snap_forces(bool simd) {
  SimdGuard guard;
  kk::set_simd_enabled(simd);
  init_all();
  Simulation sim;
  Input in(sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");
  in.line("create_atoms 3 3 3 jitter 0.04 5511");
  in.line("mass 1 183.84");
  in.line("pair_style snap/kk");
  in.line("pair_coeff * * 4.7 6 7771");
  sim.thermo.print = false;
  testing::total_pe(sim);
  sim.atom.sync<kk::Host>(F_MASK);
  std::vector<double> f;
  for (localint i = 0; i < sim.atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      f.push_back(sim.atom.k_f.h_view(std::size_t(i), std::size_t(d)));
  return f;
}

TEST(SimdEquivalence, SnapForcesMatchScalarWithinTolerance) {
  // Ui accumulation and the Zi/Yi atom-lane path are bitwise; the fused
  // dEi/dRj contraction reduces lane partials (tolerance policy), so the
  // net forces are compared to tight tolerance rather than bitwise.
  const std::vector<double> scalar = snap_forces(false);
  const std::vector<double> simd = snap_forces(true);
  ASSERT_EQ(scalar.size(), simd.size());
  double fmax = 1.0;
  for (double v : scalar) fmax = std::max(fmax, std::abs(v));
  for (std::size_t k = 0; k < scalar.size(); ++k)
    EXPECT_NEAR(simd[k], scalar[k], 1e-10 * fmax) << "component " << k;
}

}  // namespace
}  // namespace mlk
