#!/usr/bin/env bash
# Docs link checker (tier-1): fails on dead *relative* links in the repo's
# markdown files. External URLs and pure #anchors are skipped; a link's
# target is resolved against the file that contains it, with any #fragment
# stripped. Fenced code blocks are ignored (C++ lambdas like `[&](int l)`
# would otherwise parse as links). Build trees and .git are excluded.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
fail=0
checked=0

while IFS= read -r -d '' md; do
  dir="$(dirname "$md")"
  # Pull out every inline link/image target: the (...) part of [text](...).
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"   # drop fragment
    path="${path%% *}"     # drop optional "title"
    [[ -z "$path" ]] && continue
    checked=$((checked + 1))
    if [[ ! -e "$dir/$path" ]]; then
      echo "dead link: ${md#"$repo"/} -> $target" >&2
      fail=1
    fi
  done < <(awk '/^[[:space:]]*(```|~~~)/ {fence = !fence; next} !fence' "$md" |
           grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//' || true)
done < <(find "$repo" -name '*.md' \
              -not -path '*/build*' -not -path '*/.git/*' -print0)

if [[ "$fail" -ne 0 ]]; then
  echo "check_doc_links: FAILED" >&2
  exit 1
fi
echo "check_doc_links: OK ($checked relative links verified)"
