// Device neighbor-build path wired into the engine (docs/NEIGHBOR.md):
// `neighbor style device` / MLK_NEIGH routing, and bitwise identity of
// trajectories built with the device list against the host list — serial
// and decomposed over simmpi ranks, with comm/compute overlap off and on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "comm/simmpi.hpp"
#include "engine/neighbor_kokkos.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;

struct Snapshot {
  std::vector<double> x, v;
  double pe = 0.0;
  double ke = 0.0;
};

Snapshot snapshot(Simulation& sim) {
  sim.atom.sync<kk::Host>(X_MASK | V_MASK);
  const auto x = sim.atom.k_x.h_view;
  const auto v = sim.atom.k_v.h_view;
  Snapshot s;
  for (localint i = 0; i < sim.atom.nlocal; ++i) {
    for (int d = 0; d < 3; ++d) {
      s.x.push_back(x(std::size_t(i), std::size_t(d)));
      s.v.push_back(v(std::size_t(i), std::size_t(d)));
    }
  }
  s.pe = sim.potential_energy();
  s.ke = sim.kinetic_energy();
  return s;
}

void expect_bitwise(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.x.size(), b.x.size());
  ASSERT_EQ(a.v.size(), b.v.size());
  for (std::size_t k = 0; k < a.x.size(); ++k) {
    ASSERT_EQ(a.x[k], b.x[k]) << "position diverged at component " << k;
    ASSERT_EQ(a.v[k], b.v[k]) << "velocity diverged at component " << k;
  }
  EXPECT_NEAR(a.pe, b.pe, 1e-9 * std::abs(a.pe) + 1e-12);
  EXPECT_NEAR(a.ke, b.ke, 1e-9 * std::abs(a.ke) + 1e-12);
}

TEST(NeighDevice, InputCommandSelectsBuildPath) {
  init_all();
  Simulation sim;
  Input in(sim);
  EXPECT_EQ(sim.neighbor.build_path, NeighBuildPath::Host);
  in.line("neighbor style device");
  EXPECT_EQ(sim.neighbor.build_path, NeighBuildPath::Device);
  in.line("neighbor style host");
  EXPECT_EQ(sim.neighbor.build_path, NeighBuildPath::Host);
  in.line("neighbor 0.4 bin");  // plain form still sets the skin
  EXPECT_DOUBLE_EQ(sim.neighbor.skin, 0.4);
  EXPECT_THROW(in.line("neighbor style gpu"), Error);
}

TEST(NeighDevice, EnvVarSelectsBuildPath) {
  init_all();
  setenv("MLK_NEIGH", "device", 1);
  Simulation dev;
  EXPECT_EQ(dev.neighbor.build_path, NeighBuildPath::Device);
  setenv("MLK_NEIGH", "host", 1);
  Simulation host;
  EXPECT_EQ(host.neighbor.build_path, NeighBuildPath::Host);
  setenv("MLK_NEIGH", "cuda", 1);
  EXPECT_THROW(Simulation bad, Error);
  unsetenv("MLK_NEIGH");
  Simulation unset;
  EXPECT_EQ(unset.neighbor.build_path, NeighBuildPath::Host);
}

TEST(NeighDevice, EngineBuildPopulatesPartition) {
  // Satellite of the stale-partition bug: the device build must leave the
  // engine list with a valid interior/boundary partition, or the overlapped
  // force phase would silently run on empty row sets.
  auto sim = make_lj_system(3, 0.8442, 0.05, "lj/cut/kk");
  sim->neighbor.build_path = NeighBuildPath::Device;
  sim->setup();
  const NeighborList& l = sim->neighbor.list;
  EXPECT_EQ(l.ninterior + l.nboundary, l.inum);
  EXPECT_TRUE(sim->pair->supports_overlap(l));
  EXPECT_EQ(sim->neighbor.nbuilds, 1);
}

// One melt trajectory with every combination of build path x overlap.
Snapshot run_serial_melt(NeighBuildPath path, bool overlap, int steps) {
  auto sim = make_lj_system(3, 0.8442, 0.02, "lj/cut/kk", 1.44);
  sim->neighbor.build_path = path;
  sim->overlap_enabled = overlap;
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("thermo 10");
  in.line("run " + std::to_string(steps));
  return snapshot(*sim);
}

TEST(NeighDevice, SerialMeltBitwiseMatchesHostBuild) {
  const Snapshot host = run_serial_melt(NeighBuildPath::Host, false, 40);
  const Snapshot device = run_serial_melt(NeighBuildPath::Device, false, 40);
  expect_bitwise(host, device);
}

TEST(NeighDevice, SerialMeltBitwiseMatchesHostBuildWithOverlap) {
  const Snapshot host = run_serial_melt(NeighBuildPath::Host, true, 40);
  const Snapshot device = run_serial_melt(NeighBuildPath::Device, true, 40);
  expect_bitwise(host, device);
}

TEST(NeighDevice, PlainHostPairStyleRunsOnDeviceList) {
  // A non-kokkos pair style consumes the device-built list through the
  // DualView sync machinery: trajectories must not depend on the build path.
  auto host = make_lj_system(2, 0.8442, 0.03, "lj/cut", 1.44);
  auto dev = make_lj_system(2, 0.8442, 0.03, "lj/cut", 1.44);
  dev->neighbor.build_path = NeighBuildPath::Device;
  for (Simulation* sim : {host.get(), dev.get()}) {
    Input in(*sim);
    in.line("fix 1 all nve");
    in.line("run 20");
  }
  expect_bitwise(snapshot(*host), snapshot(*dev));
}

std::vector<Snapshot> run_multirank_melt(int nranks, NeighBuildPath path,
                                         bool overlap, int steps) {
  init_all();
  std::vector<Snapshot> out(static_cast<std::size_t>(nranks));
  std::mutex mu;
  simmpi::World world(nranks);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.neighbor.build_path = path;
    sim.overlap_enabled = overlap;
    sim.thermo.print = false;
    Input in(sim);
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    in.line("create_atoms 4 4 4 jitter 0.02 771");
    in.line("mass 1 1.0");
    in.line("velocity all create 1.44 87287");
    in.line("suffix kk");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("fix 1 all nve");
    in.line("thermo 10");
    in.line("run " + std::to_string(steps));
    Snapshot s = snapshot(sim);  // collectives: every rank participates
    std::lock_guard<std::mutex> lk(mu);
    out[std::size_t(comm.rank())] = std::move(s);
  });
  return out;
}

TEST(NeighDevice, TwoRankMeltBitwiseMatchesHostBuild) {
  const auto host = run_multirank_melt(2, NeighBuildPath::Host, false, 30);
  const auto device = run_multirank_melt(2, NeighBuildPath::Device, false, 30);
  ASSERT_EQ(host.size(), device.size());
  for (std::size_t r = 0; r < host.size(); ++r)
    expect_bitwise(host[r], device[r]);
}

TEST(NeighDevice, TwoRankMeltBitwiseMatchesHostBuildWithOverlap) {
  const auto host = run_multirank_melt(2, NeighBuildPath::Host, true, 30);
  const auto device = run_multirank_melt(2, NeighBuildPath::Device, true, 30);
  ASSERT_EQ(host.size(), device.size());
  for (std::size_t r = 0; r < host.size(); ++r)
    expect_bitwise(host[r], device[r]);
}

// --- sort x balance x build-path bitwise sweep ------------------------------
//
// Spatial sorting permutes storage order and `balance rcb` permutes atom
// *ownership*; with canonical neighbor rows (neigh_modify canonical yes) a
// trajectory must not depend on either (docs/DECOMPOSITION.md "bitwise
// policy"). The sweep runs melt (uniform) and droplet (vacuum-gap lattice,
// examples/in.droplet) under every combination of build path x sort x
// balance x rank count and compares per-tag positions/velocities exactly
// against the plain host/sort-off/balance-off reference.

struct GlobalSnapshot {
  std::map<tagint, std::array<double, 6>> atoms;  // tag -> x[3], v[3]
  double pe = 0.0, ke = 0.0;
};

struct SweepConfig {
  bool droplet = false;
  NeighBuildPath path = NeighBuildPath::Host;
  bool sort = false;
  bool balance = false;
};

GlobalSnapshot run_sweep(int nranks, const SweepConfig& cfg, int steps) {
  init_all();
  GlobalSnapshot out;
  std::mutex mu;
  simmpi::World world(nranks);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.neighbor.build_path = cfg.path;
    sim.thermo.print = false;
    Input in(sim);
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    if (cfg.droplet)
      in.line("create_atoms 6 6 6 jitter 0.02 771 region 0 0.55 0 0.55 0 0.55");
    else
      in.line("create_atoms 4 4 4 jitter 0.02 771");
    in.line("mass 1 1.0");
    in.line("velocity all create 1.44 87287");
    in.line("suffix kk");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("neigh_modify canonical yes");
    if (cfg.sort) in.line("sort every 2");
    if (cfg.balance) in.line("balance rcb 1.1");
    in.line("fix 1 all nve");
    in.line("thermo 10");
    in.line("run " + std::to_string(steps));

    sim.atom.sync<kk::Host>(X_MASK | V_MASK | TAG_MASK);
    const double pe = sim.potential_energy();  // collectives: all ranks
    const double ke = sim.kinetic_energy();
    std::lock_guard<std::mutex> lk(mu);
    for (localint i = 0; i < sim.atom.nlocal; ++i) {
      std::array<double, 6> rec;
      for (int d = 0; d < 3; ++d) {
        rec[std::size_t(d)] = sim.atom.k_x.h_view(std::size_t(i), std::size_t(d));
        rec[std::size_t(3 + d)] =
            sim.atom.k_v.h_view(std::size_t(i), std::size_t(d));
      }
      const tagint t = sim.atom.k_tag.h_view(std::size_t(i));
      EXPECT_TRUE(out.atoms.emplace(t, rec).second)
          << "tag " << t << " owned by two ranks";
    }
    if (comm.rank() == 0) {
      out.pe = pe;
      out.ke = ke;
    }
  });
  return out;
}

void expect_same_trajectory(const GlobalSnapshot& ref, const GlobalSnapshot& got,
                            const std::string& what) {
  ASSERT_EQ(ref.atoms.size(), got.atoms.size()) << what;
  for (const auto& [tag, rec] : ref.atoms) {
    const auto it = got.atoms.find(tag);
    ASSERT_NE(it, got.atoms.end()) << what << ": tag " << tag << " lost";
    for (std::size_t k = 0; k < 6; ++k)
      ASSERT_EQ(rec[k], it->second[k])
          << what << ": tag " << tag << (k < 3 ? " position" : " velocity")
          << " component " << k % 3 << " diverged";
  }
  // Energy sums permute across ownership changes: NEAR, not EQ.
  EXPECT_NEAR(ref.pe, got.pe, 1e-9 * std::abs(ref.pe) + 1e-12) << what;
  EXPECT_NEAR(ref.ke, got.ke, 1e-9 * std::abs(ref.ke) + 1e-12) << what;
}

void sweep_scenario(bool droplet, int steps) {
  for (const int nranks : {1, 2}) {
    SweepConfig refcfg;
    refcfg.droplet = droplet;
    const GlobalSnapshot ref = run_sweep(nranks, refcfg, steps);
    ASSERT_FALSE(ref.atoms.empty());
    for (const NeighBuildPath path :
         {NeighBuildPath::Host, NeighBuildPath::Device}) {
      for (const bool sort : {false, true}) {
        for (const bool balance : {false, true}) {
          if (path == NeighBuildPath::Host && !sort && !balance) continue;
          SweepConfig cfg;
          cfg.droplet = droplet;
          cfg.path = path;
          cfg.sort = sort;
          cfg.balance = balance;
          const std::string what =
              std::string(droplet ? "droplet" : "melt") + " ranks=" +
              std::to_string(nranks) +
              (path == NeighBuildPath::Device ? " device" : " host") +
              (sort ? " sort" : "") + (balance ? " balance" : "");
          expect_same_trajectory(ref, run_sweep(nranks, cfg, steps), what);
        }
      }
    }
  }
}

TEST(SortBalanceSweep, MeltBitwiseAcrossSortBalancePathsAndRanks) {
  sweep_scenario(/*droplet=*/false, 30);
}

TEST(SortBalanceSweep, DropletBitwiseAcrossSortBalancePathsAndRanks) {
  sweep_scenario(/*droplet=*/true, 30);
}

}  // namespace
}  // namespace mlk
