// ReaxFF-lite tests: bond-order math, pre-processing equivalence, quad
// survival statistics, QEq correctness, force-vs-gradient, conservation.
#include <gtest/gtest.h>

#include <cmath>

#include "reaxff/pair_reaxff_lite.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using reaxff::ReaxParams;
using testing::numerical_force;
using testing::total_pe;

std::unique_ptr<Simulation> make_hns_system(const std::string& style,
                                            int cells = 2, double jitter = 0.03) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units real");
  in.line("lattice hns_like 5.2");
  in.line("create_atoms " + std::to_string(cells) + " " +
          std::to_string(cells) + " " + std::to_string(cells) + " jitter " +
          std::to_string(jitter) + " 4411");
  in.line("mass 1 12.0");
  in.line("mass 2 16.0");
  in.line("pair_style " + style);
  in.line("pair_coeff * * hns");
  sim->thermo.print = false;
  return sim;
}

TEST(BondOrder, DecaysMonotonically) {
  ReaxParams p;
  EXPECT_NEAR(reaxff::bond_order(p, 1e-6), 1.0, 1e-6);
  double prev = 2.0;
  for (double r = 0.5; r < 4.0; r += 0.25) {
    const double bo = reaxff::bond_order(p, r);
    EXPECT_LT(bo, prev);
    EXPECT_GT(bo, 0.0);
    prev = bo;
  }
}

TEST(BondOrder, DerivativeMatchesNumerics) {
  ReaxParams p;
  for (double r : {0.9, 1.4, 2.2, 2.9}) {
    const double h = 1e-7;
    const double num =
        (reaxff::bond_order(p, r + h) - reaxff::bond_order(p, r - h)) / (2 * h);
    EXPECT_NEAR(reaxff::dbond_order(p, r), num, 1e-6 * std::abs(num) + 1e-10);
  }
}

TEST(Taper, SmoothAtEnds) {
  EXPECT_DOUBLE_EQ(reaxff::taper7(0.0, 8.0), 1.0);
  EXPECT_NEAR(reaxff::taper7(8.0, 8.0), 0.0, 1e-14);
  EXPECT_NEAR(reaxff::dtaper7(7.999999, 8.0), 0.0, 1e-4);
  for (double r : {1.0, 3.0, 5.0, 7.0}) {
    const double h = 1e-6;
    const double num =
        (reaxff::taper7(r + h, 8.0) - reaxff::taper7(r - h, 8.0)) / (2 * h);
    EXPECT_NEAR(reaxff::dtaper7(r, 8.0), num, 1e-7);
  }
}

TEST(ShieldedCoulomb, FiniteAtZeroAndDecays) {
  const double g = 0.9;
  // Shielding keeps the kernel finite at r -> 0 (no Coulomb catastrophe).
  EXPECT_NEAR(reaxff::shielded_coulomb(0.0, g), g, 1e-12);
  EXPECT_LT(reaxff::shielded_coulomb(5.0, g), reaxff::shielded_coulomb(1.0, g));
  for (double r : {0.5, 1.5, 4.0}) {
    const double h = 1e-6;
    const double num = (reaxff::shielded_coulomb(r + h, g) -
                        reaxff::shielded_coulomb(r - h, g)) /
                       (2 * h);
    EXPECT_NEAR(reaxff::dshielded_coulomb(r, g), num, 1e-8);
  }
}

TEST(ReaxFF, BondListIsSymmetricOnLocalPairs) {
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim->pair.get());
  ASSERT_NE(pair, nullptr);
  const auto& b = pair->bonds();
  ASSERT_GT(b.total_bonds(), 0);
  // If j is a local bond partner of i, i must be a bond partner of j.
  for (localint i = 0; i < sim->atom.nlocal; ++i) {
    for (int s = 0; s < b.nbonds(std::size_t(i)); ++s) {
      const int j = b.j(std::size_t(i), std::size_t(s));
      if (j >= sim->atom.nlocal) continue;
      bool found = false;
      for (int s2 = 0; s2 < b.nbonds(std::size_t(j)); ++s2)
        if (b.j(std::size_t(j), std::size_t(s2)) == i) found = true;
      EXPECT_TRUE(found) << "bond " << i << "->" << j << " not mirrored";
    }
  }
}

TEST(ReaxFF, QuadSurvivalIsSmall) {
  // §4.2.1: "fewer than 5% of possible quads satisfy each constraint".
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim->pair.get());
  const auto& q = pair->quads();
  ASSERT_GT(q.candidates, 0);
  ASSERT_GT(q.count, 0) << "no torsions at all: parameterization too sparse";
  EXPECT_LT(q.survival_fraction(), 0.30)
      << "survival " << q.survival_fraction();
}

TEST(ReaxFF, PreprocessedMatchesDirect) {
  auto a = make_hns_system("reaxff-lite");
  auto* pa = dynamic_cast<PairReaxFFLite<kk::Host>*>(a->pair.get());
  pa->use_preprocessing = true;
  const double e_pre = total_pe(*a);
  a->atom.sync<kk::Host>(F_MASK);

  auto b = make_hns_system("reaxff-lite");
  auto* pb = dynamic_cast<PairReaxFFLite<kk::Host>*>(b->pair.get());
  pb->use_preprocessing = false;
  const double e_dir = total_pe(*b);
  b->atom.sync<kk::Host>(F_MASK);

  EXPECT_NEAR(e_pre, e_dir, 1e-9 * std::abs(e_dir));
  for (localint i = 0; i < a->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(a->atom.k_f.h_view(std::size_t(i), std::size_t(d)),
                  b->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 1e-9);
}

TEST(ReaxFF, HierarchicalMatrixBuildMatchesFlat) {
  auto a = make_hns_system("reaxff-lite");
  auto* pa = dynamic_cast<PairReaxFFLite<kk::Host>*>(a->pair.get());
  pa->qeq_build = reaxff::MatrixBuildMode::Flat;
  const double e_flat = total_pe(*a);

  auto b = make_hns_system("reaxff-lite");
  auto* pb = dynamic_cast<PairReaxFFLite<kk::Host>*>(b->pair.get());
  pb->qeq_build = reaxff::MatrixBuildMode::Hierarchical;
  const double e_hier = total_pe(*b);

  EXPECT_NEAR(e_flat, e_hier, 1e-10 * std::abs(e_flat));
  // Identical sparsity too.
  EXPECT_EQ(pa->qeq().matrix().total_nonzeros(),
            pb->qeq().matrix().total_nonzeros());
}

TEST(ReaxFF, FusedAndSeparateSolvesAgree) {
  auto a = make_hns_system("reaxff-lite");
  dynamic_cast<PairReaxFFLite<kk::Host>*>(a->pair.get())->qeq_fused = true;
  const double e_fused = total_pe(*a);
  auto b = make_hns_system("reaxff-lite");
  dynamic_cast<PairReaxFFLite<kk::Host>*>(b->pair.get())->qeq_fused = false;
  const double e_sep = total_pe(*b);
  EXPECT_NEAR(e_fused, e_sep, 1e-7 * std::abs(e_sep));
}

TEST(ReaxFF, ChargesAreNeutralAndNontrivial) {
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  sim->atom.sync<kk::Host>(Q_MASK);
  double qsum = 0.0, qabs = 0.0;
  for (localint i = 0; i < sim->atom.nlocal; ++i) {
    qsum += sim->atom.k_q.h_view(std::size_t(i));
    qabs += std::abs(sim->atom.k_q.h_view(std::size_t(i)));
  }
  EXPECT_NEAR(qsum, 0.0, 1e-8);                    // charge conservation
  EXPECT_GT(qabs / sim->atom.nlocal, 1e-3);        // charge transfer happened
  // Two species: type 1 (low chi) positive, type 2 (high chi) negative.
  double q1 = 0.0, q2 = 0.0;
  for (localint i = 0; i < sim->atom.nlocal; ++i) {
    if (sim->atom.k_type.h_view(std::size_t(i)) == 1)
      q1 += sim->atom.k_q.h_view(std::size_t(i));
    else
      q2 += sim->atom.k_q.h_view(std::size_t(i));
  }
  EXPECT_GT(q1, 0.0);
  EXPECT_LT(q2, 0.0);
}

TEST(ReaxFF, QEqMinimizesElectrostaticEnergy) {
  // Perturbing the QEq solution must increase the (constrained) energy.
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim->pair.get());
  const double e0 = pair->qeq().energy(sim->atom);
  auto q = sim->atom.k_q.h_view;
  // Neutral perturbation: move charge between two atoms.
  q(0) += 0.05;
  q(1) -= 0.05;
  sim->atom.k_q.modify<kk::Host>();
  sim->comm.forward_charges(sim->atom);
  const double e1 = pair->qeq().energy(sim->atom);
  EXPECT_GT(e1, e0);
}

TEST(ReaxFF, ForcesMatchNumericalGradient) {
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i : {0, 9}) {
    for (int d = 0; d < 3; ++d) {
      const double fa = sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
      const double fn = numerical_force(*sim, i, d, 1e-5);
      EXPECT_NEAR(fa, fn, 5e-3 * std::max(1.0, std::abs(fa)))
          << "atom " << i << " dim " << d;
      sim->atom.sync<kk::Host>(F_MASK);
    }
  }
}

TEST(ReaxFF, TotalForceIsZero) {
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  sim->atom.sync<kk::Host>(F_MASK);
  double ftot[3] = {0, 0, 0};
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      ftot[d] += sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(ftot[d], 0.0, 1e-7);
}

TEST(ReaxFF, DeviceMatchesHost) {
  auto ref = make_hns_system("reaxff-lite");
  const double e_ref = total_pe(*ref);
  ref->atom.sync<kk::Host>(F_MASK);

  auto sim = make_hns_system("reaxff-lite/kk");
  const double e = total_pe(*sim);
  EXPECT_NEAR(e, e_ref, 1e-8 * std::abs(e_ref));
  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sim->atom.k_f.h_view(std::size_t(i), std::size_t(d)),
                  ref->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 1e-6);
}

TEST(ReaxFF, EnergyConservedInNVE) {
  auto sim = make_hns_system("reaxff-lite", 2, 0.02);
  Input in(*sim);
  in.line("velocity all create 300.0 7123");
  in.line("timestep 0.2");
  in.line("fix 1 all nve");
  in.line("thermo 5");
  in.line("run 25");
  const auto& rows = sim->thermo.rows();
  const double e0 = rows.front().etotal;
  for (const auto& r : rows)
    EXPECT_NEAR(r.etotal, e0, 2e-3 * std::max(1.0, std::abs(e0)))
        << "step " << r.step;
}

TEST(ReaxFF, EnergyBreakdownIsRecorded) {
  auto sim = make_hns_system("reaxff-lite");
  total_pe(*sim);
  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim->pair.get());
  EXPECT_LT(pair->last_ebond, 0.0);   // cohesive bonds
  EXPECT_GE(pair->last_eangle, 0.0);  // harmonic-like penalty
  EXPECT_GE(pair->last_etors, 0.0);   // 1 + cos(phi) >= 0
  EXPECT_NE(pair->last_ecoul, 0.0);
  EXPECT_GT(pair->qeq().last_iterations(), 1);
}

}  // namespace
}  // namespace mlk
