#!/usr/bin/env bash
# Sanitized build of the kk::simd pack layer (ctest `simd_sanitize`,
# run_tier1.sh --simd): compile tests/simd_sanitize_main.cpp standalone with
# address+undefined sanitizers — the same flag set CMake's MLK_SANITIZE
# option would inject — and run it. The pack layer is header-only, so this
# covers every masked load, gather, remainder chunk, and where() blend
# without rebuilding the whole tree under sanitizers.
#
# Usage: simd_sanitize.sh <src_dir> [compiler]
set -euo pipefail

src_dir="$1"
cxx="${2:-${CXX:-c++}}"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
bin="$scratch/simd_sanitize"

"$cxx" -std=c++20 -O1 -g -Wall -Wextra -Werror \
  -fsanitize=address,undefined -fno-omit-frame-pointer \
  -I "$src_dir/src" \
  "$src_dir/tests/simd_sanitize_main.cpp" -o "$bin"

# halt_on_error: make any UBSan finding fail the test, not just print.
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 "$bin"
echo "simd_sanitize: pack layer clean under address+undefined"
