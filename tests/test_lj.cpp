#include <gtest/gtest.h>

#include <cmath>

#include "pair/pair_lj_cut.hpp"
#include "pair/pair_lj_cut_kokkos.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;
using testing::numerical_force;
using testing::total_pe;

TEST(LJMath, MinimumAtTwoToTheSixth) {
  // dE/dr = 0 at r = 2^(1/6) sigma; fpair crosses zero there.
  const double lj1 = 48.0, lj2 = 24.0;  // eps=sigma=1
  const double rmin_sq = std::pow(2.0, 1.0 / 3.0);
  EXPECT_NEAR(PairLJCut::pair_force(rmin_sq, lj1, lj2), 0.0, 1e-12);
  EXPECT_GT(PairLJCut::pair_force(rmin_sq * 0.9, lj1, lj2), 0.0);  // repulsive
  EXPECT_LT(PairLJCut::pair_force(rmin_sq * 1.1, lj1, lj2), 0.0);  // attractive
}

TEST(LJMath, EnergyAtMinimumIsMinusEpsilon) {
  const double lj3 = 4.0, lj4 = 4.0;
  const double rmin_sq = std::pow(2.0, 1.0 / 3.0);
  EXPECT_NEAR(PairLJCut::pair_energy(rmin_sq, lj3, lj4), -1.0, 1e-12);
}

TEST(LJHost, ForcesMatchNumericalGradient) {
  auto sim = make_lj_system(2, 0.8442, 0.06);
  total_pe(*sim);
  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i : {0, 5, 13}) {
    for (int d = 0; d < 3; ++d) {
      const double fa = sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
      const double fn = numerical_force(*sim, i, d);
      EXPECT_NEAR(fa, fn, 1e-5 * std::max(1.0, std::abs(fa)))
          << "atom " << i << " dim " << d;
      sim->atom.sync<kk::Host>(F_MASK);
    }
  }
}

TEST(LJHost, NewtonsThirdLawTotalForceZero) {
  auto sim = make_lj_system(3, 0.8442, 0.06);
  total_pe(*sim);
  sim->atom.sync<kk::Host>(F_MASK);
  double fx = 0, fy = 0, fz = 0;
  for (localint i = 0; i < sim->atom.nlocal; ++i) {
    fx += sim->atom.k_f.h_view(std::size_t(i), 0);
    fy += sim->atom.k_f.h_view(std::size_t(i), 1);
    fz += sim->atom.k_f.h_view(std::size_t(i), 2);
  }
  EXPECT_NEAR(fx, 0.0, 1e-9);
  EXPECT_NEAR(fy, 0.0, 1e-9);
  EXPECT_NEAR(fz, 0.0, 1e-9);
}

TEST(LJHost, ColdFccLatticeEnergyIsNegativeAndExtensive) {
  auto e_small = make_lj_system(2, 0.8442, 0.0);
  auto e_large = make_lj_system(4, 0.8442, 0.0);
  const double e2 = total_pe(*e_small) / double(e_small->atom.nlocal);
  const double e4 = total_pe(*e_large) / double(e_large->atom.nlocal);
  EXPECT_LT(e2, 0.0);
  // Per-atom energy is intensive: independent of system size.
  EXPECT_NEAR(e2, e4, 1e-9);
}

// --- All Kokkos variants must agree with the host reference --------------

struct Variant {
  const char* name;
  bool device;
  NeighStyle style;
  bool newton;
  PairParallelism par;
  kk::ScatterMode scatter;
};

class LJVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(LJVariants, MatchesHostReference) {
  const Variant v = GetParam();

  auto ref = make_lj_system(3, 0.8442, 0.06);
  const double e_ref = total_pe(*ref);
  ref->atom.sync<kk::Host>(F_MASK);

  auto sim = make_lj_system(3, 0.8442, 0.06, "lj/cut/kk");
  auto* pair = v.device
                   ? static_cast<PairLJCut*>(
                         dynamic_cast<PairLJCutKokkos<kk::Device>*>(sim->pair.get()))
                   : nullptr;
  if (v.device) {
    auto* kkpair = dynamic_cast<PairLJCutKokkos<kk::Device>*>(sim->pair.get());
    ASSERT_NE(kkpair, nullptr);
    kkpair->set_neighbor_mode(v.style, v.newton);
    kkpair->set_parallelism(v.par);
    kkpair->set_scatter_mode(v.scatter);
    pair = kkpair;
  } else {
    // Re-create as host-space Kokkos style.
    sim->pair = StyleRegistry::instance().create_pair("lj/cut/kk/host");
    sim->pair->settings({"2.5"});
    sim->pair->ntypes_hint = 1;
    sim->pair->coeff({"*", "*", "1.0", "1.0"});
    auto* kkpair = dynamic_cast<PairLJCutKokkos<kk::Host>*>(sim->pair.get());
    ASSERT_NE(kkpair, nullptr);
    kkpair->set_neighbor_mode(v.style, v.newton);
    kkpair->set_parallelism(v.par);
    kkpair->set_scatter_mode(v.scatter);
    pair = kkpair;
  }
  ASSERT_NE(pair, nullptr);

  const double e = total_pe(*sim);
  EXPECT_NEAR(e, e_ref, 1e-9 * std::abs(e_ref)) << v.name;

  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sim->atom.k_f.h_view(std::size_t(i), std::size_t(d)),
                  ref->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 1e-9)
          << v.name << " atom " << i << " dim " << d;

  // Virial must agree too (pressure correctness).
  for (int k = 0; k < 6; ++k)
    EXPECT_NEAR(sim->pair->virial[k], ref->pair->virial[k],
                1e-8 * std::max(1.0, std::abs(ref->pair->virial[k])))
        << v.name << " virial " << k;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, LJVariants,
    ::testing::Values(
        Variant{"dev_full_atom_atomic", true, NeighStyle::Full, false,
                PairParallelism::Atom, kk::ScatterMode::Atomic},
        Variant{"dev_half_newton_atom_atomic", true, NeighStyle::Half, true,
                PairParallelism::Atom, kk::ScatterMode::Atomic},
        Variant{"dev_half_nonewton_atom_atomic", true, NeighStyle::Half, false,
                PairParallelism::Atom, kk::ScatterMode::Atomic},
        Variant{"dev_full_team_atomic", true, NeighStyle::Full, false,
                PairParallelism::Team, kk::ScatterMode::Atomic},
        Variant{"dev_half_newton_team_atomic", true, NeighStyle::Half, true,
                PairParallelism::Team, kk::ScatterMode::Atomic},
        Variant{"dev_half_newton_atom_duplicated", true, NeighStyle::Half,
                true, PairParallelism::Atom, kk::ScatterMode::Duplicated},
        Variant{"host_half_newton_atom_seq", false, NeighStyle::Half, true,
                PairParallelism::Atom, kk::ScatterMode::Sequential},
        Variant{"host_full_atom_seq", false, NeighStyle::Full, false,
                PairParallelism::Atom, kk::ScatterMode::Sequential},
        Variant{"host_half_newton_atom_dup", false, NeighStyle::Half, true,
                PairParallelism::Atom, kk::ScatterMode::Duplicated}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(LJKokkos, DeviceForcesMatchNumericalGradient) {
  auto sim = make_lj_system(2, 0.8442, 0.06, "lj/cut/kk");
  total_pe(*sim);
  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i : {1, 8}) {
    for (int d = 0; d < 3; ++d) {
      const double fa = sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
      const double fn = numerical_force(*sim, i, d);
      EXPECT_NEAR(fa, fn, 1e-5 * std::max(1.0, std::abs(fa)));
      sim->atom.sync<kk::Host>(F_MASK);
    }
  }
}

}  // namespace
}  // namespace mlk
