#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/simmpi.hpp"

namespace {

TEST(SimMPI, RankIdentity) {
  simmpi::World world(4);
  std::vector<int> seen(4, -1);
  world.run([&](simmpi::Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    seen[std::size_t(comm.rank())] = comm.rank();
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[std::size_t(r)], r);
}

TEST(SimMPI, PointToPoint) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.5, 2.5});
      auto back = comm.recv<double>(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 4.0);
    } else {
      auto in = comm.recv<double>(0, 7);
      comm.send(0, 8, std::vector<double>{in[0] + in[1]});
    }
  });
}

TEST(SimMPI, TagMatchingOutOfOrder) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<int>{111});
      comm.send(1, 2, std::vector<int>{222});
    } else {
      // Receive in reverse tag order; matching must be by tag, not FIFO.
      auto b = comm.recv<int>(0, 2);
      auto a = comm.recv<int>(0, 1);
      EXPECT_EQ(a[0], 111);
      EXPECT_EQ(b[0], 222);
    }
  });
}

TEST(SimMPI, SendRecvRing) {
  const int P = 5;
  simmpi::World world(P);
  world.run([&](simmpi::Comm& comm) {
    const int next = (comm.rank() + 1) % P;
    const int prev = (comm.rank() + P - 1) % P;
    auto in = comm.sendrecv(next, prev, 3, std::vector<int>{comm.rank()});
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(in[0], prev);
  });
}

TEST(SimMPI, SendToSelf) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) {
    comm.send(comm.rank(), 9, std::vector<int>{comm.rank() * 10});
    auto in = comm.recv<int>(comm.rank(), 9);
    EXPECT_EQ(in[0], comm.rank() * 10);
  });
}

TEST(SimMPI, AllreduceSumDouble) {
  simmpi::World world(6);
  world.run([](simmpi::Comm& comm) {
    const double r = comm.allreduce_sum(double(comm.rank()) + 0.5);
    EXPECT_DOUBLE_EQ(r, 15.0 + 3.0);
  });
}

TEST(SimMPI, AllreduceRepeatedUsesAreIndependent) {
  simmpi::World world(3);
  world.run([](simmpi::Comm& comm) {
    for (int iter = 1; iter <= 10; ++iter) {
      const mlk::bigint r = comm.allreduce_sum(mlk::bigint(iter));
      EXPECT_EQ(r, mlk::bigint(3 * iter));
    }
  });
}

TEST(SimMPI, AllreduceMaxMin) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(double(comm.rank())), 3.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_min(double(comm.rank())), 0.0);
  });
}

TEST(SimMPI, AllreduceVector) {
  simmpi::World world(3);
  world.run([](simmpi::Comm& comm) {
    std::vector<double> v = {double(comm.rank()), 1.0};
    auto r = comm.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    EXPECT_DOUBLE_EQ(r[1], 3.0);
  });
}

TEST(SimMPI, BigintAllreduceBeyond32Bit) {
  // Appendix B: global atom counts exceed 2^31 at scale.
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const mlk::bigint each = 700000000;  // 0.7B per rank
    EXPECT_EQ(comm.allreduce_sum(each), mlk::bigint(2800000000));
  });
}

TEST(SimMPI, ExceptionInRankPropagates) {
  simmpi::World world(2);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 if (comm.rank() == 1) throw mlk::Error("rank 1 failed");
               }),
               mlk::Error);
}

TEST(SimMPI, BarrierOrdersPhases) {
  simmpi::World world(4);
  std::vector<int> stage(4, 0);
  world.run([&](simmpi::Comm& comm) {
    stage[std::size_t(comm.rank())] = 1;
    comm.barrier();
    for (int r = 0; r < 4; ++r) EXPECT_EQ(stage[std::size_t(r)], 1);
  });
}

}  // namespace
