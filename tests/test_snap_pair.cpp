// End-to-end SNAP pair style tests: force-vs-gradient, host-vs-Kokkos
// agreement, batching invariance, energy conservation.
#include <gtest/gtest.h>

#include <cmath>

#include "snap/pair_snap.hpp"
#include "snap/pair_snap_kokkos.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::numerical_force;
using testing::total_pe;

std::unique_ptr<Simulation> make_snap_system(const std::string& style,
                                             int cells = 3) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");  // tungsten-like
  in.line("create_atoms " + std::to_string(cells) + " " +
          std::to_string(cells) + " " + std::to_string(cells) +
          " jitter 0.04 5511");
  in.line("mass 1 183.84");
  in.line("pair_style " + style);
  in.line("pair_coeff * * 4.7 6 7771");  // rcut=4.7 A, twojmax=6
  sim->thermo.print = false;
  return sim;
}

TEST(SNAPHost, ForcesMatchNumericalGradient) {
  auto sim = make_snap_system("snap");
  total_pe(*sim);
  sim->atom.template sync<kk::Host>(F_MASK);
  for (localint i : {0, 7}) {
    for (int d = 0; d < 3; ++d) {
      const double fa = sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
      const double fn = numerical_force(*sim, i, d, 1e-6);
      EXPECT_NEAR(fa, fn, 2e-4 * std::max(1.0, std::abs(fa)))
          << "atom " << i << " dim " << d;
      sim->atom.template sync<kk::Host>(F_MASK);
    }
  }
}

TEST(SNAPHost, TotalForceIsZero) {
  auto sim = make_snap_system("snap");
  total_pe(*sim);
  // Newton's third law holds after ghost-force reverse communication.
  sim->atom.template sync<kk::Host>(F_MASK);
  double ftot[3] = {0, 0, 0};
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      ftot[d] += sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(ftot[d], 0.0, 1e-9);
}

TEST(SNAPHost, PerfectLatticeHasZeroForce) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");
  in.line("create_atoms 3 3 3");  // no jitter: every site equivalent
  in.line("mass 1 183.84");
  in.line("pair_style snap");
  in.line("pair_coeff * * 4.7 6 7771");
  sim->thermo.print = false;
  total_pe(*sim);
  sim->atom.template sync<kk::Host>(F_MASK);
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sim->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 0.0,
                  1e-9);
}

template <class Space>
void expect_matches_host(int ui_batch, int yi_tile) {
  auto ref = make_snap_system("snap");
  const double e_ref = total_pe(*ref);
  ref->atom.sync<kk::Host>(F_MASK);

  auto sim = make_snap_system(Space::is_device ? "snap/kk" : "snap/kk/host");
  auto* pair = dynamic_cast<PairSNAPKokkos<Space>*>(sim->pair.get());
  ASSERT_NE(pair, nullptr);
  pair->set_ui_batch(ui_batch);
  pair->set_yi_tile(yi_tile);
  const double e = total_pe(*sim);
  EXPECT_NEAR(e, e_ref, 1e-9 * std::max(1.0, std::abs(e_ref)));

  sim->atom.template sync<kk::Host>(F_MASK);
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sim->atom.k_f.h_view(std::size_t(i), std::size_t(d)),
                  ref->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 1e-8)
          << "atom " << i << " dim " << d;
  for (int k = 0; k < 6; ++k)
    EXPECT_NEAR(sim->pair->virial[k], ref->pair->virial[k],
                1e-7 * std::max(1.0, std::abs(ref->pair->virial[k])));
}

TEST(SNAPKokkos, DeviceMatchesHostBatch1) {
  expect_matches_host<kk::Device>(1, 32);
}
TEST(SNAPKokkos, DeviceMatchesHostBatch4) {
  expect_matches_host<kk::Device>(4, 32);
}
TEST(SNAPKokkos, DeviceMatchesHostTile16) {
  expect_matches_host<kk::Device>(2, 16);
}
TEST(SNAPKokkos, HostSpaceMatches) { expect_matches_host<kk::Host>(4, 32); }

TEST(SNAPKokkos, BatchingChangesNothingNumerically) {
  // Table 2's knobs are performance-only: results identical across batch
  // factors (up to atomics ordering, which the serial-team emulation makes
  // deterministic per configuration).
  auto run = [&](int batch) {
    auto sim = make_snap_system("snap/kk");
    auto* pair = dynamic_cast<PairSNAPKokkos<kk::Device>*>(sim->pair.get());
    pair->set_ui_batch(batch);
    return total_pe(*sim);
  };
  const double e1 = run(1);
  const double e2 = run(2);
  const double e8 = run(8);
  EXPECT_NEAR(e1, e2, 1e-10 * std::abs(e1));
  EXPECT_NEAR(e1, e8, 1e-10 * std::abs(e1));
}

TEST(SNAP, EnergyConservedInNVE) {
  auto sim = make_snap_system("snap", 3);
  Input in(*sim);
  in.line("velocity all create 600.0 9182");
  in.line("timestep 0.0005");
  in.line("fix 1 all nve");
  in.line("thermo 5");
  in.line("run 30");
  const auto& rows = sim->thermo.rows();
  const double e0 = rows.front().etotal;
  for (const auto& r : rows)
    EXPECT_NEAR(r.etotal, e0, 5e-4 * std::max(1.0, std::abs(e0)))
        << "step " << r.step;
}

TEST(SNAP, BispectrumFeedsEnergyLinearly) {
  // E is linear in beta: scaling beta scales E exactly.
  auto sim = make_snap_system("snap");
  auto* pair = dynamic_cast<PairSNAP*>(sim->pair.get());
  ASSERT_NE(pair, nullptr);
  const double e1 = total_pe(*sim);
  auto beta = pair->beta();
  for (double& b : beta) b *= 2.0;
  pair->set_beta(beta);
  const double e2 = total_pe(*sim);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9 * std::abs(e1));
}

}  // namespace
}  // namespace mlk
