// Telemetry layer tests (docs/OBSERVABILITY.md): the lock-free SPSC ring's
// drop-oldest accounting and torn-read impossibility under a hammering
// producer, the CoordCapture seqlock double buffer, the in-situ RDF/MSD
// math against analytic cases, and the Hub end-to-end — a live melt run
// streaming snapshots + NDJSON, and a clean shutdown with full rings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "minilammps.hpp"
#include "server/scheduler.hpp"
#include "test_helpers.hpp"
#include "tools/json.hpp"
#include "tools/telemetry/telemetry.hpp"

namespace mlk {
namespace {

namespace tel = tools::telemetry;
namespace fs = std::filesystem;

std::string slurp(const std::string& p) {
  std::ifstream f(p);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// TelemetryRing
// ---------------------------------------------------------------------------

struct Seq {
  std::uint64_t seq = 0;
};

TEST(TelemetryRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(tel::TelemetryRing<Seq>(0).capacity(), 2u);
  EXPECT_EQ(tel::TelemetryRing<Seq>(1).capacity(), 2u);
  EXPECT_EQ(tel::TelemetryRing<Seq>(5).capacity(), 8u);
  EXPECT_EQ(tel::TelemetryRing<Seq>(64).capacity(), 64u);
  EXPECT_EQ(tel::TelemetryRing<Seq>(65).capacity(), 128u);
}

TEST(TelemetryRing, FifoOrderNoDropsBelowCapacity) {
  tel::TelemetryRing<Seq> ring(128);
  for (std::uint64_t i = 0; i < 100; ++i) ring.push(Seq{i});
  EXPECT_EQ(ring.pushed(), 100u);
  EXPECT_EQ(ring.approx_size(), 100u);

  Seq s;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.pop(s));
    EXPECT_EQ(s.seq, i);
  }
  EXPECT_FALSE(ring.pop(s));
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(TelemetryRing, DropOldestIsExact) {
  tel::TelemetryRing<Seq> ring(16);
  const std::uint64_t n = 1000;
  for (std::uint64_t i = 0; i < n; ++i) ring.push(Seq{i});
  EXPECT_EQ(ring.pushed(), n);
  EXPECT_EQ(ring.approx_size(), ring.capacity());

  // The survivors are exactly the newest `capacity` samples, in order.
  Seq s;
  std::uint64_t popped = 0;
  std::uint64_t expect = n - ring.capacity();
  while (ring.pop(s)) {
    EXPECT_EQ(s.seq, expect++);
    ++popped;
  }
  EXPECT_EQ(popped, ring.capacity());
  EXPECT_EQ(popped + ring.drops(), ring.pushed());
}

TEST(TelemetryRing, InterleavedLapsKeepAccountingExact) {
  tel::TelemetryRing<Seq> ring(8);
  std::uint64_t pushed = 0, popped = 0;
  std::uint64_t last = 0;
  bool have_last = false;
  Seq s;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) ring.push(Seq{pushed++});
    if (ring.pop(s)) {
      if (have_last) {
        EXPECT_GT(s.seq, last);
      }
      last = s.seq;
      have_last = true;
      ++popped;
    }
    // Every few rounds, lap the consumer hard.
    if (round % 7 == 0)
      for (int i = 0; i < 20; ++i) ring.push(Seq{pushed++});
  }
  while (ring.pop(s)) {
    EXPECT_GT(s.seq, last);
    last = s.seq;
    ++popped;
  }
  EXPECT_EQ(popped + ring.drops(), pushed);
  EXPECT_EQ(ring.pushed(), pushed);
}

TEST(TelemetryRing, ProducerProgressesAgainstStalledConsumer) {
  // Wait-free producer contract: with nobody draining, pushes keep landing
  // (overwriting the oldest) instead of blocking or failing.
  tel::TelemetryRing<Seq> ring(16);
  for (std::uint64_t i = 0; i < 10 * ring.capacity(); ++i) ring.push(Seq{i});
  EXPECT_EQ(ring.pushed(), 10 * ring.capacity());
  EXPECT_EQ(ring.approx_size(), ring.capacity());

  Seq s;
  std::uint64_t popped = 0;
  while (ring.pop(s)) ++popped;
  EXPECT_EQ(popped, ring.capacity());
  EXPECT_EQ(popped + ring.drops(), ring.pushed());
}

// Payload whose fields are all derived from the sequence number: any torn
// read (fields from two different generations) breaks the checksum.
struct Stamped {
  std::uint64_t seq;
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t check;
};

Stamped make_stamped(std::uint64_t seq) {
  Stamped s;
  s.seq = seq;
  s.a = seq * 2654435761ull + 17;
  s.b = ~seq;
  s.check = s.seq ^ s.a ^ s.b;
  return s;
}

TEST(TelemetryRing, HammeredConsumerNeverSeesTornSample) {
  tel::TelemetryRing<Stamped> ring(64);
  const std::uint64_t n = 200000;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> out_of_order{0};

  std::thread consumer([&] {
    Stamped s;
    std::uint64_t last = 0;
    bool have_last = false;
    for (;;) {
      if (!ring.pop(s)) {
        if (done.load(std::memory_order_acquire)) {
          if (!ring.pop(s)) break;  // ring confirmed empty after done
        } else {
          std::this_thread::yield();
          continue;
        }
      }
      const Stamped want = make_stamped(s.seq);
      if (s.a != want.a || s.b != want.b || s.check != want.check)
        torn.fetch_add(1);
      if (have_last && s.seq <= last) out_of_order.fetch_add(1);
      last = s.seq;
      have_last = true;
      popped.fetch_add(1);
    }
  });

  for (std::uint64_t i = 0; i < n; ++i) ring.push(make_stamped(i));
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(out_of_order.load(), 0u);
  EXPECT_EQ(ring.pushed(), n);
  // Exactness: every sequence number was returned once or dropped once.
  EXPECT_EQ(popped.load() + ring.drops(), n);
  // The producer lapped a yielding consumer on a 64-slot ring; at least
  // something must have been popped and something dropped.
  EXPECT_GT(popped.load(), 0u);
  EXPECT_GT(ring.drops(), 0u);
}

// ---------------------------------------------------------------------------
// CoordCapture
// ---------------------------------------------------------------------------

TEST(CoordCapture, LatestWinsAndRegrowKeepsReadsValid) {
  tel::CoordCapture cap;
  tel::CoordCapture::Snapshot snap;
  EXPECT_FALSE(cap.read(snap));  // nothing captured yet

  const double prd[3] = {10.0, 10.0, 10.0};
  auto capture = [&](std::size_t n, std::int64_t step, double fill) {
    auto buf = cap.begin(n);
    for (std::size_t i = 0; i < 3 * n; ++i) buf.x[i] = fill;
    for (std::size_t i = 0; i < n; ++i) buf.tag[i] = std::int64_t(i) + 1;
    cap.end(step, prd);
  };

  capture(4, 10, 1.0);
  ASSERT_TRUE(cap.read(snap));
  EXPECT_EQ(snap.step, 10);
  EXPECT_EQ(snap.natoms(), 4u);
  EXPECT_DOUBLE_EQ(snap.x[0], 1.0);
  EXPECT_FALSE(cap.read(snap));  // nothing newer than snap.gen

  // Growing captures force the regrow path; the newest always wins.
  capture(8, 20, 2.0);
  capture(100, 30, 3.0);
  ASSERT_TRUE(cap.read(snap));
  EXPECT_EQ(snap.step, 30);
  EXPECT_EQ(snap.natoms(), 100u);
  for (double v : snap.x) EXPECT_DOUBLE_EQ(v, 3.0);
  EXPECT_EQ(cap.captures(), 3u);
}

TEST(CoordCapture, ConcurrentReadsAreNeverTorn) {
  tel::CoordCapture cap;
  const std::size_t n = 64;
  const double prd[3] = {10.0, 10.0, 10.0};
  const std::uint64_t gens = 20000;

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::uint64_t g = 1; g <= gens; ++g) {
      auto buf = cap.begin(n);
      // Every coordinate and tag of generation g encodes g: a mixed copy
      // is detectable.
      for (std::size_t i = 0; i < 3 * n; ++i) buf.x[i] = double(g);
      for (std::size_t i = 0; i < n; ++i) buf.tag[i] = std::int64_t(g);
      cap.end(std::int64_t(g), prd);
    }
    done.store(true, std::memory_order_release);
  });

  tel::CoordCapture::Snapshot snap;
  std::uint64_t reads = 0, torn = 0;
  while (!done.load(std::memory_order_acquire) || reads == 0) {
    if (!cap.read(snap)) continue;
    ++reads;
    const double want = double(snap.tag[0]);
    for (std::size_t i = 0; i < snap.x.size(); ++i)
      if (snap.x[i] != want) ++torn;
    for (std::size_t i = 0; i < snap.natoms(); ++i)
      if (snap.tag[i] != snap.tag[0]) ++torn;
    if (std::int64_t(snap.gen) != snap.tag[0]) ++torn;
  }
  producer.join();

  EXPECT_EQ(torn, 0u);
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(cap.captures(), gens);
}

// ---------------------------------------------------------------------------
// In-situ analysis math
// ---------------------------------------------------------------------------

TEST(Insitu, MinImageWrapsToNearestPeriodicImage) {
  EXPECT_DOUBLE_EQ(tel::min_image(0.3, 10.0), 0.3);
  EXPECT_DOUBLE_EQ(tel::min_image(9.4, 10.0), -0.6);
  EXPECT_DOUBLE_EQ(tel::min_image(-9.4, 10.0), 0.6);
  EXPECT_DOUBLE_EQ(tel::min_image(7.0, 0.0), 7.0);  // non-periodic passthrough
}

TEST(Insitu, RdfTwoAtomAnalyticCase) {
  // Two atoms 1.05 apart in a 20^3 box: exactly one pair, landing in bin 5
  // of 10 over rcut 2.0, with g(r) = 1 / ideal_pairs for that shell.
  const double prd[3] = {20.0, 20.0, 20.0};
  const std::vector<double> x = {0.0, 0.0, 0.0, 1.05, 0.0, 0.0};
  const int nbins = 10;
  const double rcut = 2.0;
  const auto res = tel::rdf_from_coords(x.data(), 2, prd, nbins, rcut);

  ASSERT_EQ(res.gr.size(), std::size_t(nbins));
  const double dr = rcut / nbins;
  constexpr double kPi = 3.14159265358979323846;
  const double r_lo = 5 * dr, r_hi = 6 * dr;
  const double shell =
      4.0 / 3.0 * kPi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
  const double rho = 2.0 / (prd[0] * prd[1] * prd[2]);
  const double ideal_pairs = 0.5 * 2.0 * rho * shell;
  for (int b = 0; b < nbins; ++b) {
    if (b == 5)
      EXPECT_NEAR(res.gr[std::size_t(b)], 1.0 / ideal_pairs, 1e-12);
    else
      EXPECT_DOUBLE_EQ(res.gr[std::size_t(b)], 0.0);
  }
  EXPECT_NEAR(res.r_peak, (5 + 0.5) * dr, 1e-12);
  EXPECT_EQ(res.atoms_used, 2u);
}

TEST(Insitu, RdfSeparationAcrossBoundaryUsesMinimumImage) {
  // 19.5 apart in a 20-box is 0.5 by minimum image.
  const double prd[3] = {20.0, 20.0, 20.0};
  const std::vector<double> x = {0.2, 0.0, 0.0, 19.7, 0.0, 0.0};
  const auto res = tel::rdf_from_coords(x.data(), 2, prd, 10, 2.0);
  EXPECT_NEAR(res.r_peak, 0.5, 0.1 + 1e-12);  // bin 2 center = 0.5
  EXPECT_GT(res.peak, 0.0);
}

TEST(Insitu, MsdUnwrapsAcrossPeriodicBoundary) {
  tel::MsdTracker msd;
  const double prd[3] = {10.0, 10.0, 10.0};
  const std::int64_t tags[2] = {1, 2};

  // Both atoms drift +0.6/observation in x, wrapped into [0, 10).
  double pos[2] = {9.5, 4.0};
  auto observe = [&] {
    double x[6] = {pos[0], 0.0, 0.0, pos[1], 0.0, 0.0};
    return msd.observe(x, tags, 2, prd);
  };

  EXPECT_DOUBLE_EQ(observe(), 0.0);  // first observation is the reference
  for (int k = 1; k <= 8; ++k) {
    for (double& p : pos) {
      p += 0.6;
      if (p >= 10.0) p -= 10.0;  // atom 1 wraps on the first move
    }
    const double got = observe();
    const double want = (0.6 * k) * (0.6 * k);
    EXPECT_NEAR(got, want, 1e-9) << "after " << k << " moves";
  }
  EXPECT_EQ(msd.tracked(), 2u);
  msd.reset();
  EXPECT_EQ(msd.tracked(), 0u);
  EXPECT_DOUBLE_EQ(msd.msd(), 0.0);
}

TEST(Insitu, ComputeMsdMatchesTrackerOnStaticSystem) {
  // A freshly created system that has not moved has MSD exactly 0; the
  // engine compute must agree with the tracker's convention.
  auto sim = testing::make_lj_system(2, 0.8442, 0.0, "lj/cut", 0.0);
  Input in(*sim);
  in.line("compute msd1 all msd");
  sim->setup();
  Compute* c = in.find_compute("msd1");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->compute_scalar(*sim), 0.0);
  EXPECT_DOUBLE_EQ(c->compute_scalar(*sim), 0.0);  // still the reference
}

// ---------------------------------------------------------------------------
// Hub — end-to-end streaming and shutdown semantics
// ---------------------------------------------------------------------------

TEST(TelemetryHub, MeltRunStreamsSnapshotAndNdjson) {
  const std::string path =
      (fs::temp_directory_path() / "mlk_tel_e2e.json").string();

  auto sim = testing::make_lj_system(2);
  Input in(*sim);
  in.line("thermo 10");
  // Input-command activation path (same parser as MLK_TELEMETRY).
  in.line("telemetry " + path + ":interval_ms=5,coords_every=10,rdf_bins=20");
  ASSERT_TRUE(tel::active());
  in.line("run 40");
  ASSERT_NE(sim->telemetry, nullptr);  // Verlet::begin attached to the hub

  tel::Hub::instance().drain_now();  // deterministic pass before we assert

  // Snapshot: a complete JSON document with live per-sim aggregation.
  const json::Value doc = json::parse(slurp(path));
  EXPECT_EQ(doc["schema"].str, "mlk-telemetry-1");
  EXPECT_GE(doc["pass"].number, 1.0);
  EXPECT_GT(doc["launches"]["total"].number, 0.0);
  ASSERT_TRUE(doc["sims"].is_array());
  ASSERT_EQ(doc["sims"].arr.size(), 1u);
  const json::Value& s = doc["sims"].arr[0];
  EXPECT_EQ(s["name"].str, "main");
  EXPECT_DOUBLE_EQ(s["drops"].number, 0.0);  // 40 steps << ring capacity
  EXPECT_DOUBLE_EQ(s["step"]["step"].number, 40.0);
  EXPECT_GE(s["step"]["wall_ms"].number, 0.0);
  EXPECT_DOUBLE_EQ(s["thermo"]["step"].number, 40.0);
  EXPECT_GT(s["thermo"]["temp"].number, 0.0);
  // In-situ ran on the consumer thread off captured coordinates.
  EXPECT_GE(s["insitu"]["captures"].number, 4.0);  // steps 10,20,30,40
  EXPECT_GT(s["insitu"]["rdf_peak"].number, 0.0);
  EXPECT_GE(s["insitu"]["msd"].number, 0.0);

  // Detach hands back exact per-producer accounting.
  tel::TelemetrySummary sum;
  sim->detach_telemetry(&sum);
  EXPECT_EQ(sum.steps_published, 40u);
  EXPECT_EQ(sum.last_step, 40);
  EXPECT_GE(sum.thermo_published, 4u);
  EXPECT_GE(sum.coord_captures, 4u);
  EXPECT_EQ(sum.drops, 0u);

  in.line("telemetry stop");
  EXPECT_FALSE(tel::active());
  EXPECT_FALSE(tel::Hub::instance().running());

  // NDJSON tail: every line parses; the run's 40 steps all landed (no
  // drops), thermo and insitu records are present.
  std::ifstream nd(path + ".ndjson");
  ASSERT_TRUE(nd.good());
  std::string line;
  int steps = 0, thermos = 0, insitus = 0;
  std::int64_t last_step = -1;
  while (std::getline(nd, line)) {
    const json::Value v = json::parse(line);  // throws on a torn line
    const std::string& type = v["type"].str;
    if (type == "step") {
      ++steps;
      EXPECT_GT(std::int64_t(v["step"].number), last_step);
      last_step = std::int64_t(v["step"].number);
    } else if (type == "thermo") {
      ++thermos;
    } else if (type == "insitu") {
      ++insitus;
    }
  }
  EXPECT_EQ(steps, 40);
  EXPECT_GE(thermos, 4);
  EXPECT_GE(insitus, 1);

  std::remove(path.c_str());
  std::remove((path + ".ndjson").c_str());
}

TEST(TelemetryHub, ShutdownWithFullRingsDrainsAndAccountsDrops) {
  const std::string path =
      (fs::temp_directory_path() / "mlk_tel_full.json").string();

  // A huge interval keeps the sink asleep: nothing drains until stop(),
  // so the final-drain path faces maximally full rings.
  tel::Config cfg;
  cfg.path = path;
  cfg.interval_ms = 60000;
  tel::Hub::instance().start(cfg);
  ASSERT_TRUE(tel::Hub::instance().running());

  auto st = tel::Hub::instance().attach_sim("hammer", 7);
  const std::uint64_t nsteps = 3000;   // step ring capacity 1024
  const std::uint64_t nthermo = 700;   // thermo ring capacity 512
  for (std::uint64_t i = 0; i < nsteps; ++i) {
    tel::StepSample s;
    s.step = std::int64_t(i);
    s.job_id = 7;
    st->steps.push(s);
  }
  for (std::uint64_t i = 0; i < nthermo; ++i) {
    tel::ThermoSample t;
    t.step = std::int64_t(i);
    st->thermo.push(t);
  }

  // Detach: final drain with attribution + exact drop accounting. With no
  // concurrent drain, drop-oldest arithmetic is fully deterministic.
  tel::TelemetrySummary sum;
  tel::Hub::instance().detach_sim(st, &sum);
  EXPECT_EQ(sum.steps_published, nsteps);
  EXPECT_EQ(sum.thermo_published, nthermo);
  const std::uint64_t want_drops =
      (nsteps - st->steps.capacity()) + (nthermo - st->thermo.capacity());
  EXPECT_EQ(sum.drops, want_drops);
  EXPECT_EQ(sum.last_step, std::int64_t(nsteps - 1));
  EXPECT_GE(tel::Hub::instance().total_drops(), want_drops);

  tel::Hub::instance().stop();
  EXPECT_FALSE(tel::active());

  // Everything that was not dropped reached the NDJSON tail, in order.
  std::ifstream nd(path + ".ndjson");
  ASSERT_TRUE(nd.good());
  std::string line;
  std::uint64_t steps = 0, thermos = 0;
  std::int64_t last_step = -1;
  while (std::getline(nd, line)) {
    const json::Value v = json::parse(line);
    if (v["name"].str != "hammer") continue;
    if (v["type"].str == "step") {
      ++steps;
      EXPECT_GT(std::int64_t(v["step"].number), last_step);
      last_step = std::int64_t(v["step"].number);
    } else if (v["type"].str == "thermo") {
      ++thermos;
    }
  }
  EXPECT_EQ(steps, st->steps.capacity());
  EXPECT_EQ(thermos, st->thermo.capacity());
  EXPECT_EQ(last_step, std::int64_t(nsteps - 1));  // newest survived

  // Snapshot survives shutdown with the drop total on record, and the
  // detached producer's terminal summary stays visible in "finished".
  const json::Value doc = json::parse(slurp(path));
  EXPECT_EQ(doc["schema"].str, "mlk-telemetry-1");
  EXPECT_GE(doc["drops"]["total"].number, double(want_drops));
  ASSERT_TRUE(doc["finished"].is_array());
  bool found = false;
  for (const auto& f : doc["finished"].arr) {
    if (f["name"].str != "hammer") continue;
    found = true;
    EXPECT_DOUBLE_EQ(f["steps"].number, double(nsteps));
    EXPECT_DOUBLE_EQ(f["drops"].number, double(want_drops));
    EXPECT_DOUBLE_EQ(f["last_step"].number, double(nsteps - 1));
  }
  EXPECT_TRUE(found);

  std::remove(path.c_str());
  std::remove((path + ".ndjson").c_str());
}

TEST(TelemetryHub, SchedulerEventsStreamThroughServerRun) {
  const std::string path =
      (fs::temp_directory_path() / "mlk_tel_sched.json").string();
  init_all();
  tel::Config cfg;
  cfg.path = path;
  cfg.interval_ms = 5;
  cfg.coords_every = 0;  // focus on the scheduler stream
  tel::Hub::instance().start(cfg);

  std::vector<server::JobSpec> specs;
  for (int i = 0; i < 3; ++i) {
    server::JobSpec spec;
    spec.name = "tel" + std::to_string(i);
    spec.steps = 15;
    spec.setup = {"units lj",          "lattice fcc 0.8442",
                  "create_atoms 2 2 2 jitter 0.05 1234",
                  "mass 1 1.0",        "velocity all create 1.44 87287",
                  "pair_style lj/cut 2.5", "pair_coeff * * 1.0 1.0"};
    specs.push_back(spec);
  }
  server::SchedulerConfig scfg;
  scfg.max_resident = 2;
  const auto results = server::run_jobs(specs, scfg);

  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.state, server::JobState::Completed);
    // Satellite contract: each JobResult carries its telemetry summary,
    // filled at retirement (not atexit).
    EXPECT_EQ(r.telemetry.steps_published, 15u);
    EXPECT_EQ(r.telemetry.last_step, 15);
    EXPECT_EQ(r.telemetry.drops, 0u);
  }

  tel::Hub::instance().stop();

  // The NDJSON stream carries admit/round/finish scheduler events with
  // queue-depth and wave-latency payloads.
  std::ifstream nd(path + ".ndjson");
  ASSERT_TRUE(nd.good());
  std::string line;
  int admits = 0, rounds = 0, finishes = 0;
  while (std::getline(nd, line)) {
    const json::Value v = json::parse(line);
    if (v["type"].str != "sched") continue;
    const std::string& kind = v["kind"].str;
    if (kind == "admit") ++admits;
    if (kind == "round") ++rounds;
    if (kind == "finish") ++finishes;
    EXPECT_GE(v["queue_depth"].number, 0.0);
    EXPECT_GE(v["in_flight"].number, 0.0);
    ASSERT_TRUE(v["wave_ms"].is_array());
    EXPECT_EQ(v["wave_ms"].arr.size(), 3u);
  }
  EXPECT_EQ(admits, 3);
  EXPECT_EQ(finishes, 3);
  EXPECT_GE(rounds, 15);  // >= 15 lockstep rounds to finish 15-step jobs

  std::remove(path.c_str());
  std::remove((path + ".ndjson").c_str());
}

}  // namespace
}  // namespace mlk
